#!/bin/sh
# Tier-1 gate: full build, then the whole test tree — the alcotest
# suites plus the check-quick schedule-exploration gate wired into
# `dune runtest` (see bin/dune).
set -eu
cd "$(dirname "$0")/.."
dune build
dune runtest
