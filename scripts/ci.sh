#!/bin/sh
# Tier-1 gate: full build, static analysis (mm-lint), then the whole
# test tree — the alcotest suites plus the check-quick schedule-
# exploration gate and the @lint alias wired into `dune runtest` (see
# bin/dune and the root dune file).
set -eu
cd "$(dirname "$0")/.."
dune build
# Machine-readable lint report, kept as a CI artifact even when the
# enforcement gates below fail.
mkdir -p _build/ci
dune exec bin/lint.exe -- --root . --format json lib bin \
  > _build/ci/lint-report.json || true
dune build @lint
dune runtest
