#!/bin/sh
# Tier-1 gate: full build, static analysis (mm-lint), then the whole
# test tree — the alcotest suites plus the check-quick schedule-
# exploration gate and the @lint alias wired into `dune runtest` (see
# bin/dune and the root dune file).
set -eu
cd "$(dirname "$0")/.."
dune build
# Machine-readable lint report, kept as a CI artifact even when the
# enforcement gates below fail.
mkdir -p _build/ci
dune exec bin/lint.exe -- --root . --format json lib bin \
  > _build/ci/lint-report.json || true
# Machine-readable contention census (DESIGN.md §12): the threadtest
# failed-CAS report on the seeded simulator, archived so per-site retry
# rates are diffable across commits.
dune exec bin/trace.exe -- report threadtest --threads 16 --heaps 1 \
  --format json > _build/ci/trace-report.json || true
# Machine-readable benchmark results (quick mode): bechamel estimates
# plus every experiment table, archived so the bench trajectory is
# diffable across commits (BENCH_0.json in the repo root is the seed).
MM_BENCH_JSON=_build/ci/bench-report.json dune exec bench/main.exe || true
dune build @lint
dune runtest
# Executable docs: run every fenced `dune exec` command in README.md,
# EXPERIMENTS.md and DESIGN.md (scripts/doc_check.sh).
dune build @doc-check
