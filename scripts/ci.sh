#!/bin/sh
# Tier-1 gate: full build, static analysis (mm-lint and the
# flow-sensitive mm-sa), then the whole test tree — the alcotest
# suites plus the check-quick schedule-exploration gate and the
# @lint / @sa aliases wired into `dune runtest` (see bin/dune and the
# root dune file).
set -eu
cd "$(dirname "$0")/.."
dune build
# Machine-readable lint report, kept as a CI artifact even when the
# enforcement gates below fail.
mkdir -p _build/ci
dune exec bin/lint.exe -- --root . --format json lib bin \
  > _build/ci/lint-report.json || true
# Machine-readable mm-sa report (DESIGN.md §16) over the typed ASTs;
# @check guarantees the .cmt files exist.
dune build @check
dune exec bin/sa.exe -- --root . --format json \
  > _build/ci/sa-report.json || true
# Machine-readable contention census (DESIGN.md §12): the threadtest
# failed-CAS report on the seeded simulator, archived so per-site retry
# rates are diffable across commits.
dune exec bin/trace.exe -- report threadtest --threads 16 --heaps 1 \
  --format json > _build/ci/trace-report.json || true
# Machine-readable benchmark results (quick mode): bechamel estimates
# plus every experiment table, archived so the bench trajectory is
# diffable across commits (BENCH_0.json in the repo root is the seed).
MM_BENCH_JSON=_build/ci/bench-report.json dune exec bench/main.exe || true
# Real-runtime latency gate (DESIGN.md §18): contention-free
# malloc+free on the specialized real stack must stay under the bounds
# below (measured ~203 ns for "new" and ~80 ns for "new-cached" at the
# commit that functorized the stack, vs 268.8 / 120.7 ns on the
# value-dispatched runtime it replaced — BENCH_3.json vs BENCH_4.json).
# A breach means per-operation dispatch overhead crept back into the
# hot path. Exit code 2 fails the gate.
dune exec bench/main.exe -- --gate-only \
  --max-ns-per-op malloc+free/new:240 \
  --max-ns-per-op malloc+free/new-cached:105 > /dev/null
# OS-traffic regression gate (DESIGN.md §14): the 16-thread threadtest
# churn with the warm superblock cache on must keep simulated mmap
# syscalls under 2 per 1k allocator ops (measured 0.36/1k at the
# commit that introduced the cache; the store pool and the cache
# together make churn mmap-free, so a rate above 2 means a recycling
# path regressed). Exit code 2 fails the gate.
dune exec bin/trace.exe -- report threadtest --threads 16 --heaps 1 \
  --sb-cache 8 --max-mmap-per-1k 2.0 > /dev/null
# Large-path OS-traffic gate (DESIGN.md §15): the 8-thread large-alloc
# churn with the page manager on must keep large-path mmap calls (site
# store.mmap.large) under 5 per 1k allocator ops (measured 0.00/1k at
# the commit that introduced the page manager vs 250.75/1k without it,
# so any rate above 5 means large blocks stopped routing through the
# span reservoir). Exit code 2 fails the gate.
dune exec bin/trace.exe -- report large-alloc --threads 8 \
  --page-manager --max-large-mmap-per-1k 5.0 > /dev/null
# Reclamation gate (DESIGN.md §17): the reuse-in-place descriptor pool
# must record ZERO hazard-pointer scans on the 16-thread threadtest —
# it never retires, so a single hp.scan event means a hazard-protected
# path leaked back into the Reuse variant. Exit code 2 fails the gate.
dune exec bin/trace.exe -- report threadtest --threads 16 --heaps 1 \
  --allocator new-reuse --max-hp-scan 0 > /dev/null
# Anchor-contention gate (DESIGN.md §19): the owner-biased free-list
# mode on the one-heap 16-thread threadtest must keep the summed
# anchor.pop+anchor.free failed-CAS count under 5 per 1k allocator ops
# (measured 0.00/1k at the commit that introduced the mode vs
# 1915.59/1k under the anchor mode on the same run — the private LIFO
# absorbs owner frees and the pub word batches remote ones, so any
# rate above 5 means frees leaked back onto the shared anchor). Exit
# code 2 fails the gate.
dune exec bin/trace.exe -- report threadtest --threads 16 --heaps 1 \
  --allocator new-ob --max-failed-cas-per-1k anchor.pop+anchor.free:5.0 \
  > /dev/null
dune build @lint
dune build @sa
dune runtest
# Executable docs: run every fenced `dune exec` command in README.md,
# EXPERIMENTS.md and DESIGN.md (scripts/doc_check.sh).
dune build @doc-check
