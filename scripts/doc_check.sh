#!/bin/sh
# Executable docs: extract every `dune exec ...` command from the fenced
# code blocks of README.md, EXPERIMENTS.md and DESIGN.md and run it, so
# a documented CLI invocation cannot rot — if a flag is renamed or a
# subcommand removed, this script (the `@doc-check` alias, part of
# scripts/ci.sh) fails.
#
# Commands run in documented order (a walkthrough may record a trace
# file and then report on it). Backslash continuations are joined and
# trailing `# comment` text is stripped. Exit codes 0 AND 2 both count
# as a pass: 2 is the designed "findings reported" outcome of the check
# and lint CLIs (a documented command that *demonstrates* a planted
# violation is working as documented); anything else fails.
#
# Two modes:
#   ./scripts/doc_check.sh        standalone: builds once, then runs the
#                                 built executables from the repo root.
#   DOC_CHECK_IN_DUNE=1 ...       invoked by the @doc-check alias with
#                                 cwd=_build/default; executables are
#                                 run directly (./bin/x.exe) because
#                                 nested `dune exec` would contend for
#                                 the dune lock.
set -eu

if [ "${DOC_CHECK_IN_DUNE:-0}" = "1" ]; then
  root=.
else
  cd "$(dirname "$0")/.."
  dune build
  root=_build/default
fi

docs="${*:-README.md EXPERIMENTS.md DESIGN.md}"

extract() {
  awk '
    /^```/ { fence = !fence; next }
    {
      if (!fence) next
      if (cont) buf = buf " " $0
      else if ($0 ~ /^[[:space:]]*dune exec /) buf = $0
      else next
      if (buf ~ /\\[[:space:]]*$/) { sub(/\\[[:space:]]*$/, "", buf); cont = 1; next }
      cont = 0
      sub(/[[:space:]]+#.*$/, "", buf)
      print buf
    }
  ' "$1"
}

pass=0
fail=0
for doc in $docs; do
  extract "$doc" > /tmp/doc_check_cmds.$$
  while IFS= read -r line; do
    # "dune exec EXE [-- args...]" -> run the built EXE directly.
    eval "set -- $line"
    shift 2
    exe=$1
    shift
    [ "${1:-}" = "--" ] && shift
    rc=0
    "$root/$exe" "$@" > /dev/null 2>&1 || rc=$?
    case $rc in
    0 | 2)
      pass=$((pass + 1))
      printf 'doc-check PASS (%s, rc=%d): %s\n' "$doc" "$rc" "$line"
      ;;
    *)
      fail=$((fail + 1))
      printf 'doc-check FAIL (%s, rc=%d): %s\n' "$doc" "$rc" "$line" >&2
      ;;
    esac
  done < /tmp/doc_check_cmds.$$
  rm -f /tmp/doc_check_cmds.$$
  printf 'doc-check: %s done (%d passed so far, %d failed)\n' \
    "$doc" "$pass" "$fail"
done

if [ "$fail" -gt 0 ]; then
  echo "doc-check: $fail documented command(s) broken" >&2
  exit 1
fi
echo "doc-check: all $pass documented commands run"
