type meta = {
  workload : string;
  allocator : string;
  threads : int;
  seed : int;
  nheaps : int;
  cpus : int;
  ops : int;
  mallocs : int;
  frees : int;
  capacity : int;
}

type t = { meta : meta; dropped : int; events : Event.t list }

let meta_to_json m =
  Json.Obj
    [
      ("workload", Json.Str m.workload);
      ("allocator", Json.Str m.allocator);
      ("threads", Json.Int m.threads);
      ("seed", Json.Int m.seed);
      ("nheaps", Json.Int m.nheaps);
      ("cpus", Json.Int m.cpus);
      ("ops", Json.Int m.ops);
      ("mallocs", Json.Int m.mallocs);
      ("frees", Json.Int m.frees);
      ("capacity", Json.Int m.capacity);
    ]

(* Events as a columnar quadruple array: compact and trivially
   streamable. *)
let to_json t =
  Json.Obj
    [
      ("format", Json.Str "mmalloc-trace/1");
      ("meta", meta_to_json t.meta);
      ("dropped", Json.Int t.dropped);
      ( "events",
        Json.Arr
          (List.map
             (fun (e : Event.t) ->
               Json.Arr
                 [
                   Json.Int e.tid;
                   Json.Str (Event.kind_name e.kind);
                   Json.Str e.label;
                   Json.Int e.cycle;
                 ])
             t.events) );
    ]

let ( let* ) r f = Result.bind r f

let need name = function
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "trace file: bad or missing %S" name)

let jint j name = need name (Option.bind (Json.member name j) Json.to_int)
let jstr j name = need name (Option.bind (Json.member name j) Json.to_str)

let meta_of_json j =
  let* workload = jstr j "workload" in
  let* allocator = jstr j "allocator" in
  let* threads = jint j "threads" in
  let* seed = jint j "seed" in
  let* nheaps = jint j "nheaps" in
  let* cpus = jint j "cpus" in
  let* ops = jint j "ops" in
  let* mallocs = jint j "mallocs" in
  let* frees = jint j "frees" in
  let* capacity = jint j "capacity" in
  Ok
    {
      workload;
      allocator;
      threads;
      seed;
      nheaps;
      cpus;
      ops;
      mallocs;
      frees;
      capacity;
    }

let event_of_json = function
  | Json.Arr [ Json.Int tid; Json.Str kind; Json.Str label; Json.Int cycle ]
    -> (
      match Event.kind_of_name kind with
      | Some kind -> Ok { Event.tid; label; kind; cycle }
      | None -> Error (Printf.sprintf "trace file: unknown kind %S" kind))
  | _ -> Error "trace file: malformed event row"

let of_json j =
  let* fmt = jstr j "format" in
  let* () =
    if fmt = "mmalloc-trace/1" then Ok ()
    else Error (Printf.sprintf "trace file: unsupported format %S" fmt)
  in
  let* meta = need "meta" (Json.member "meta" j) in
  let* meta = meta_of_json meta in
  let* dropped = jint j "dropped" in
  let* rows = need "events" (Option.bind (Json.member "events" j) Json.to_list) in
  let* events =
    List.fold_left
      (fun acc row ->
        let* acc = acc in
        let* e = event_of_json row in
        Ok (e :: acc))
      (Ok []) rows
  in
  Ok { meta; dropped; events = List.rev events }

let save path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let buf = Buffer.create 65536 in
      Json.to_buffer buf (to_json t);
      Buffer.output_buffer oc buf;
      output_char oc '\n')

let load path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | s -> Result.bind (Json.of_string s) of_json
  | exception Sys_error msg -> Error msg

let agg t = Agg.of_events ~dropped:t.dropped t.events
