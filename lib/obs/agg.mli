(** Aggregation: a stream of events folded into per-site counters. *)

type site = {
  label : string;
  cas_ok : int;
  cas_fail : int;  (** failed CAS = one retry of that site's loop *)
  transitions : int;
  hp_scans : int;
  mmaps : int;
}

type t = {
  sites : site list;  (** sorted by label *)
  total : int;  (** recorded events *)
  dropped : int;  (** lost to ring overflow *)
  by_kind : (Event.kind * int) list;  (** in [Event.all_kinds] order *)
}

val of_events : dropped:int -> Event.t list -> t
val site : t -> string -> site option

val cas_fail : t -> string -> int
(** Failed-CAS count at one label site (0 when never seen). *)

val retries : t -> labels:string list -> int
(** Sum of {!cas_fail} over a label group — one "contention site" may
    cover several registry labels (e.g. the Active word is CASed from
    both MallocFromActive and UpdateActive). *)

val pp : Format.formatter -> t -> unit
