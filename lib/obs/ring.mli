(** Per-thread fixed-capacity lock-free event ring (DESIGN.md §12).

    Single writer (the owning thread), any number of concurrent
    {!snapshot} readers. Overflow policy is {e drop}, never overwrite:
    a published slot is immutable for the ring's lifetime, which is
    what makes the snapshot torn-read-free — the collector copies the
    prefix \[0, head) and every slot in it was fully written before
    [head] was advanced past it. Dropped events are counted, not
    silent. Recording neither allocates nor takes a lock. *)

type t

val create : tid:int -> capacity:int -> t
val tid : t -> int
val capacity : t -> int

val record : t -> kind:Event.kind -> label:string -> cycle:int -> unit
(** Append one event; drops (and counts) it when the ring is full.
    Must only be called by the owning thread. *)

val length : t -> int
(** Number of events published so far (monotone; never exceeds
    [capacity]). Safe from any thread. *)

val dropped : t -> int
(** Events lost to overflow. The count is maintained by the writer with
    plain stores; read it quiescently (after the run) for an exact
    value. *)

val snapshot : t -> Event.t array
(** Consistent copy of everything published so far, in recording order.
    Safe to call while the writer is still recording: returns exactly
    the events whose publication happened before the [head] read. *)
