(** chrome://tracing (Trace Event Format, JSON object form) export.

    Each event becomes an instant event: [name] = site label, [cat] =
    kind, [ts] = cycle (microsecond column reused for virtual cycles),
    [tid] = recording thread, [pid] = 0. Load the output in
    chrome://tracing or https://ui.perfetto.dev. [otherData] carries
    the dropped-event count so overflow is visible in the export too. *)

val to_json : ?process_name:string -> dropped:int -> Event.t list -> Json.t
val to_string : ?process_name:string -> dropped:int -> Event.t list -> string

val of_json : Json.t -> (Event.t list * int, string) result
(** Decode a trace produced by {!to_json} (metadata events are
    ignored): the events plus the recorded dropped count. *)

val of_string : string -> (Event.t list * int, string) result
