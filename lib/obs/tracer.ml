open Mm_runtime

type t = { cap : int; rings : Ring.t array }

let default_capacity = 1 lsl 16

let create ?(capacity = default_capacity) () =
  {
    cap = capacity;
    rings = Array.init Rt.max_threads (fun tid -> Ring.create ~tid ~capacity);
  }

let capacity t = t.cap

let install t =
  Rt.Obs.set_hook
    (Some
       (fun ~tid ~kind ~label ~cycle ->
         Ring.record t.rings.(tid) ~kind ~label ~cycle))

let uninstall () = Rt.Obs.set_hook None
let ring t tid = t.rings.(tid)

let events t =
  let all =
    Array.to_list t.rings
    |> List.concat_map (fun r -> Array.to_list (Ring.snapshot r))
  in
  (* Stable sort: per-ring recording order breaks cycle+tid ties. *)
  List.stable_sort
    (fun (a : Event.t) (b : Event.t) ->
      match compare a.cycle b.cycle with
      | 0 -> compare a.tid b.tid
      | c -> c)
    all

let dropped t = Array.fold_left (fun n r -> n + Ring.dropped r) 0 t.rings

let with_tracing ?capacity f =
  let t = create ?capacity () in
  install t;
  let r = Fun.protect ~finally:uninstall f in
  (r, t)
