(** Minimal self-contained JSON, enough for the trace file formats.
    No external dependency; encoder and decoder round-trip each other.
    Numbers without [.]/[e] parse as [Int], everything else as
    [Float]; strings support the standard escapes incl. [\uXXXX]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string
val to_buffer : Buffer.t -> t -> unit

val of_string : string -> (t, string) result
(** [Error] carries a position-annotated parse diagnostic. *)

(** Accessors: [None] on shape mismatch. *)

val member : string -> t -> t option
val to_int : t -> int option
val to_str : t -> string option
val to_list : t -> t list option
