type kind = Mm_runtime.Rt.Obs.kind =
  | Cas_ok
  | Cas_fail
  | Transition
  | Hp_scan
  | Mmap

type t = { tid : int; label : string; kind : kind; cycle : int }

let all_kinds = [ Cas_ok; Cas_fail; Transition; Hp_scan; Mmap ]

let kind_name = function
  | Cas_ok -> "cas_ok"
  | Cas_fail -> "cas_fail"
  | Transition -> "transition"
  | Hp_scan -> "hp_scan"
  | Mmap -> "mmap"

let kind_of_name = function
  | "cas_ok" -> Some Cas_ok
  | "cas_fail" -> Some Cas_fail
  | "transition" -> Some Transition
  | "hp_scan" -> Some Hp_scan
  | "mmap" -> Some Mmap
  | _ -> None

let pp fmt e =
  Format.fprintf fmt "[%d @ %d] %s %s" e.tid e.cycle (kind_name e.kind)
    e.label
