(** One recorded observability event (DESIGN.md §12). *)

type kind = Mm_runtime.Rt.Obs.kind =
  | Cas_ok
  | Cas_fail
  | Transition
  | Hp_scan
  | Mmap

type t = {
  tid : int;  (** recording thread (body index under [Rt.parallel_run]) *)
  label : string;
      (** site: an [Rt.label] registry name for CAS events, an event
          name ("sb.full->partial", "store.mmap", ...) otherwise *)
  kind : kind;
  cycle : int;
      (** [Sim.now_cycles] under simulation; a global ordinal on the
          real runtime *)
}

val all_kinds : kind list

val kind_name : kind -> string
(** Stable lowercase name ("cas_ok", ...) used in reports and JSON. *)

val kind_of_name : string -> kind option

val pp : Format.formatter -> t -> unit
