(* The ring is three parallel preallocated arrays plus a published
   cursor. The writer fills slot [h] with plain stores, then publishes
   with one atomic store of [h + 1]; because slots are never reused
   (drop-on-full), a reader that observes head = h knows slots
   [0, h) are complete and immutable. No CAS anywhere — hence no
   Rt.label either: there is no retry window for a scheduler to bite
   (DESIGN.md §12). *)

(* mm-lint: allow raw-primitive: the published head cursor is
   deliberately a host-side Stdlib.Atomic — going through Rt.Atomic
   would charge Sim's cost model and perturb the very run being
   observed. Confined to this module; see DESIGN.md §12. *)
module Cursor = struct
  type t = int Stdlib.Atomic.t

  let make () : t = Stdlib.Atomic.make 0
  let read (c : t) = Stdlib.Atomic.get c

  (* seq_cst store: orders the slot writes before the publication. *)
  let publish (c : t) v = Stdlib.Atomic.set c v
end

type t = {
  ring_tid : int;
  cap : int;
  labels : string array;
  kinds : Event.kind array;
  cycles : int array;
  head : Cursor.t;
  mutable dropped_ : int;  (* writer-only; read quiescently *)
}

let create ~tid ~capacity =
  if capacity <= 0 then invalid_arg "Ring.create: capacity must be positive";
  {
    ring_tid = tid;
    cap = capacity;
    labels = Array.make capacity "";
    kinds = Array.make capacity Event.Cas_ok;
    cycles = Array.make capacity 0;
    head = Cursor.make ();
    dropped_ = 0;
  }

let tid t = t.ring_tid
let capacity t = t.cap

let record t ~kind ~label ~cycle =
  let h = Cursor.read t.head in
  if h >= t.cap then t.dropped_ <- t.dropped_ + 1
  else begin
    t.labels.(h) <- label;
    t.kinds.(h) <- kind;
    t.cycles.(h) <- cycle;
    Cursor.publish t.head (h + 1)
  end

let length t = Cursor.read t.head
let dropped t = t.dropped_

let snapshot t =
  let h = Cursor.read t.head in
  Array.init h (fun i ->
      {
        Event.tid = t.ring_tid;
        label = t.labels.(i);
        kind = t.kinds.(i);
        cycle = t.cycles.(i);
      })
