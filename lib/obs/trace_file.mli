(** The native on-disk trace format: run metadata + the raw events,
    as JSON. [bin/trace.exe record] writes it; [report] and [export]
    read it back. *)

type meta = {
  workload : string;
  allocator : string;
  threads : int;
  seed : int;
  nheaps : int;
  cpus : int;
  ops : int;  (** workload-defined work units *)
  mallocs : int;  (** allocator op census (0 when not available) *)
  frees : int;
  capacity : int;  (** per-thread ring capacity used *)
}

type t = { meta : meta; dropped : int; events : Event.t list }

val to_json : t -> Json.t
val of_json : Json.t -> (t, string) result
val save : string -> t -> unit
val load : string -> (t, string) result

val agg : t -> Agg.t
(** Aggregate the stored events (with the stored dropped count). *)
