type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Encoding. *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f ->
      (* Keep it re-parseable: no "inf"/"nan" in JSON. *)
      if Float.is_finite f then
        Buffer.add_string buf (Printf.sprintf "%.17g" f)
      else Buffer.add_string buf "null"
  | Str s -> escape buf s
  | Arr xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          to_buffer buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape buf k;
          Buffer.add_char buf ':';
          to_buffer buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  to_buffer buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Decoding: plain recursive descent. *)

exception Parse of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let h = int_of_string ("0x" ^ String.sub s !pos 4) in
    pos := !pos + 4;
    h
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          (match peek () with
          | Some '"' -> Buffer.add_char buf '"'
          | Some '\\' -> Buffer.add_char buf '\\'
          | Some '/' -> Buffer.add_char buf '/'
          | Some 'n' -> Buffer.add_char buf '\n'
          | Some 'r' -> Buffer.add_char buf '\r'
          | Some 't' -> Buffer.add_char buf '\t'
          | Some 'b' -> Buffer.add_char buf '\b'
          | Some 'f' -> Buffer.add_char buf '\012'
          | Some 'u' ->
              advance ();
              let cp = hex4 () in
              pos := !pos - 1 (* hex4 consumed; realign for advance below *);
              (* Encode the code point as UTF-8 (surrogates left as-is:
                 the encoder never emits them for OCaml strings). *)
              if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
              else if cp < 0x800 then begin
                Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
                Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
              end
              else begin
                Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
                Buffer.add_char buf
                  (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
                Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
              end
          | _ -> fail "bad escape");
          advance ();
          go ())
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') tok then
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail "bad number"
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          Arr (items [])
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else
          let pair () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            (k, parse_value ())
          in
          let rec members acc =
            let kv = pair () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members (kv :: acc)
            | Some '}' ->
                advance ();
                List.rev (kv :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (members [])
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected %C" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse (p, msg) ->
      Error (Printf.sprintf "JSON parse error at offset %d: %s" p msg)

(* ------------------------------------------------------------------ *)

let member k = function
  | Obj kvs -> List.assoc_opt k kvs
  | _ -> None

let to_int = function Int i -> Some i | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_list = function Arr xs -> Some xs | _ -> None
