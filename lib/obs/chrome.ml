let event_to_json (e : Event.t) =
  Json.Obj
    [
      ("name", Json.Str e.label);
      ("cat", Json.Str (Event.kind_name e.kind));
      ("ph", Json.Str "i");
      ("ts", Json.Int e.cycle);
      ("pid", Json.Int 0);
      ("tid", Json.Int e.tid);
      ("s", Json.Str "t");
    ]

let to_json ?(process_name = "mmalloc") ~dropped events =
  let meta =
    Json.Obj
      [
        ("name", Json.Str "process_name");
        ("ph", Json.Str "M");
        ("pid", Json.Int 0);
        ("args", Json.Obj [ ("name", Json.Str process_name) ]);
      ]
  in
  Json.Obj
    [
      ("traceEvents", Json.Arr (meta :: List.map event_to_json events));
      ("displayTimeUnit", Json.Str "ns");
      ("otherData", Json.Obj [ ("dropped", Json.Int dropped) ]);
    ]

let to_string ?process_name ~dropped events =
  Json.to_string (to_json ?process_name ~dropped events)

let ( let* ) r f = Result.bind r f

let event_of_json j =
  match Json.member "ph" j with
  | Some (Json.Str "i") -> (
      let field name conv =
        match Option.bind (Json.member name j) conv with
        | Some v -> Ok v
        | None -> Error (Printf.sprintf "chrome event: bad %S field" name)
      in
      let* label = field "name" Json.to_str in
      let* cat = field "cat" Json.to_str in
      let* cycle = field "ts" Json.to_int in
      let* tid = field "tid" Json.to_int in
      match Event.kind_of_name cat with
      | Some kind -> Ok (Some { Event.tid; label; kind; cycle })
      | None -> Error (Printf.sprintf "chrome event: unknown cat %S" cat))
  | _ -> Ok None (* metadata or foreign phase: skip *)

let of_json j =
  let* items =
    match Option.bind (Json.member "traceEvents" j) Json.to_list with
    | Some xs -> Ok xs
    | None -> Error "chrome trace: no traceEvents array"
  in
  let* events =
    List.fold_left
      (fun acc item ->
        let* acc = acc in
        let* ev = event_of_json item in
        Ok (match ev with Some e -> e :: acc | None -> acc))
      (Ok []) items
  in
  let dropped =
    match
      Option.bind
        (Option.bind (Json.member "otherData" j) (Json.member "dropped"))
        Json.to_int
    with
    | Some d -> d
    | None -> 0
  in
  Ok (List.rev events, dropped)

let of_string s =
  let* j = Json.of_string s in
  of_json j
