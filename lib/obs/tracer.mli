(** One ring per possible thread + the [Rt.Obs] hook gluing them in. *)

type t

val create : ?capacity:int -> unit -> t
(** Fresh tracer: [Rt.max_threads] rings of [capacity] events each
    (default 65536). *)

val capacity : t -> int

val install : t -> unit
(** Route [Rt.Obs] events into this tracer's rings (replaces any
    previously installed hook). *)

val uninstall : unit -> unit
(** Remove the hook; recording stops, collected data stays. *)

val ring : t -> int -> Ring.t

val events : t -> Event.t list
(** All recorded events merged across threads, sorted by cycle
    (ties: by tid, then recording order). *)

val dropped : t -> int
(** Total events lost to ring overflow, across all threads. *)

val with_tracing : ?capacity:int -> (unit -> 'a) -> 'a * t
(** [with_tracing f] installs a fresh tracer around [f ()] and returns
    [f]'s result with the (uninstalled) tracer for collection. The hook
    is removed even if [f] raises. *)
