type site = {
  label : string;
  cas_ok : int;
  cas_fail : int;
  transitions : int;
  hp_scans : int;
  mmaps : int;
}

type t = {
  sites : site list;
  total : int;
  dropped : int;
  by_kind : (Event.kind * int) list;
}

let empty_site label =
  { label; cas_ok = 0; cas_fail = 0; transitions = 0; hp_scans = 0; mmaps = 0 }

let bump s (kind : Event.kind) =
  match kind with
  | Cas_ok -> { s with cas_ok = s.cas_ok + 1 }
  | Cas_fail -> { s with cas_fail = s.cas_fail + 1 }
  | Transition -> { s with transitions = s.transitions + 1 }
  | Hp_scan -> { s with hp_scans = s.hp_scans + 1 }
  | Mmap -> { s with mmaps = s.mmaps + 1 }

let of_events ~dropped events =
  let tbl : (string, site) Hashtbl.t = Hashtbl.create 64 in
  let kinds = Hashtbl.create 8 in
  let total = ref 0 in
  List.iter
    (fun (e : Event.t) ->
      incr total;
      let s =
        Option.value (Hashtbl.find_opt tbl e.label)
          ~default:(empty_site e.label)
      in
      Hashtbl.replace tbl e.label (bump s e.kind);
      Hashtbl.replace kinds e.kind
        (1 + Option.value (Hashtbl.find_opt kinds e.kind) ~default:0))
    events;
  let sites =
    Hashtbl.fold (fun _ s acc -> s :: acc) tbl []
    |> List.sort (fun a b -> compare a.label b.label)
  in
  let by_kind =
    List.map
      (fun k -> (k, Option.value (Hashtbl.find_opt kinds k) ~default:0))
      Event.all_kinds
  in
  { sites; total = !total; dropped; by_kind }

let site t label = List.find_opt (fun s -> s.label = label) t.sites
let cas_fail t label = match site t label with None -> 0 | Some s -> s.cas_fail

let retries t ~labels =
  List.fold_left (fun n l -> n + cas_fail t l) 0 labels

let pp fmt t =
  Format.fprintf fmt "@[<v>%d events (%d dropped)@," t.total t.dropped;
  List.iter
    (fun (k, n) ->
      if n > 0 then Format.fprintf fmt "  %-10s %d@," (Event.kind_name k) n)
    t.by_kind;
  List.iter
    (fun s ->
      Format.fprintf fmt "  %-22s ok=%-7d fail=%-7d tr=%-4d hp=%-4d mmap=%d@,"
        s.label s.cas_ok s.cas_fail s.transitions s.hp_scans s.mmaps)
    t.sites;
  Format.fprintf fmt "@]"
