(* Specification oracles replayed online against the history the
   controlled scheduler produces. Under simulation every thread segment
   executes on one host thread, so recording an event right next to the
   operation it brackets (with no Rt operation in between) observes the
   history in true execution order — no extra synchronization, and no
   perturbation of the schedule being explored. *)

exception Violation of string

let violation fmt = Printf.ksprintf (fun s -> raise (Violation s)) fmt

(* Allocator correctness as address-interval exclusivity: between a
   malloc returning address [a] and a free of [a] taking effect, no other
   malloc may return [a]. Frees are not atomic events from the client's
   viewpoint — the linearization point lies somewhere between invocation
   and response — so an in-flight free is allowed to explain a re-issue
   of its address: the oracle then commits that free to "linearized
   before the malloc". Each in-flight free can explain at most one
   re-issue; a malloc returning a live address with no unconsumed
   in-flight free is a genuine double allocation (the ABA symptom). *)

type pending = { p_addr : int; mutable consumed : bool }
type cell = { mutable live : bool; mutable inflight : pending list }

type alloc = { cells : (int, cell) Hashtbl.t }

let create_alloc () = { cells = Hashtbl.create 64 }

let cell t addr =
  match Hashtbl.find_opt t.cells addr with
  | Some c -> c
  | None ->
      let c = { live = false; inflight = [] } in
      Hashtbl.add t.cells addr c;
      c

let malloc_returned t addr =
  let c = cell t addr in
  if not c.live then c.live <- true
  else
    match List.find_opt (fun p -> not p.consumed) c.inflight with
    | Some p -> p.consumed <- true
    | None ->
        violation "malloc returned address %#x which is already allocated"
          addr

let free_invoked t addr =
  let c = cell t addr in
  if not c.live then
    violation "free invoked on non-live address %#x" addr;
  let p = { p_addr = addr; consumed = false } in
  c.inflight <- c.inflight @ [ p ];
  p

let free_returned t p =
  let c = cell t p.p_addr in
  c.inflight <- List.filter (fun q -> q != p) c.inflight;
  if not p.consumed then c.live <- false

let live_count t =
  Hashtbl.fold (fun _ c n -> if c.live then n + 1 else n) t.cells 0

(* Exclusive ownership of integer-identified resources (descriptor ids):
   a resource handed to one thread must not be handed to another before
   it is released. *)

type ownership = { held : (int, int) Hashtbl.t (* id -> holder tid *) }

let create_ownership () = { held = Hashtbl.create 16 }

let acquire t ~tid id =
  match Hashtbl.find_opt t.held id with
  | Some other ->
      violation "resource %d handed to thread %d while thread %d holds it"
        id tid other
  | None -> Hashtbl.replace t.held id tid

let release t ~tid id =
  match Hashtbl.find_opt t.held id with
  | Some holder when holder = tid -> Hashtbl.remove t.held id
  | Some holder ->
      violation "thread %d released resource %d held by thread %d" tid id
        holder
  | None -> violation "thread %d released unheld resource %d" tid id

let held_count t = Hashtbl.length t.held

(* FIFO-queue checking, per producer: values dequeued at most once, only
   ever values that were enqueued, and two values enqueued by the same
   producer are dequeued in enqueue order (a linearizability-necessary
   condition that needs no linearization-point search). *)

type fifo = {
  mutable enq : (int * int) list; (* producer, value — reverse order *)
  mutable deq : (int * int) list; (* producer, value — reverse order *)
  seen : (int * int, unit) Hashtbl.t;
}

let create_fifo () = { enq = []; deq = []; seen = Hashtbl.create 64 }

let enqueued t ~tid v = t.enq <- (tid, v) :: t.enq

let dequeued t ~producer v =
  if Hashtbl.mem t.seen (producer, v) then
    violation "value %d of producer %d dequeued twice" v producer;
  Hashtbl.replace t.seen (producer, v) ();
  t.deq <- (producer, v) :: t.deq

let fifo_check t =
  let enq = List.rev t.enq and deq = List.rev t.deq in
  List.iter
    (fun (p, v) ->
      if not (List.mem (p, v) enq) then
        violation "dequeued value %d of producer %d was never enqueued" v p)
    deq;
  (* Per-producer order: the dequeued subsequence of each producer must
     appear in its enqueue order. *)
  let producers = List.sort_uniq compare (List.map fst enq) in
  List.iter
    (fun p ->
      let order = List.filter_map
          (fun (q, v) -> if q = p then Some v else None) enq in
      let got = List.filter_map
          (fun (q, v) -> if q = p then Some v else None) deq in
      let rec subseq xs = function
        | [] -> true
        | y :: ys -> (
            match xs with
            | [] -> false
            | x :: rest -> if x = y then subseq rest ys else subseq rest (y :: ys))
      in
      if not (subseq order got) then
        violation "producer %d's values dequeued out of FIFO order" p)
    producers
