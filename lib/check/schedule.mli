(** Sparse schedules for the explorer: a schedule is the list of points
    where it deviates from the default policy ("keep running the current
    thread; at a fork pick the smallest runnable tid").

    [at] numbers the scheduling decision points of a run from 0; the run
    is replayable because controlled-mode {!Mm_runtime.Sim} runs are pure
    functions of (config, bodies, decisions). The textual form is
    ["at:tid,at:tid,..."], e.g. ["7:2,12:0"]; the empty string is the
    default schedule. *)

type deviation = { at : int; tid : int }

type t

val empty : t
val deviations : t -> deviation list
val length : t -> int

val last_at : t -> int
(** Index of the last deviation, [-1] if none. The exhaustive explorer
    only branches at indices beyond this, which makes its enumeration of
    deviation sets duplicate-free. *)

val add : t -> at:int -> tid:int -> t
(** Append a deviation; [at] must exceed {!last_at}. *)

val find : t -> int -> int option
(** The deviating tid at decision point [at], if any. *)

val remove_nth : t -> int -> t
(** Drop the [n]-th deviation (shrinking). *)

val to_string : t -> string
val of_string : string -> t
(** Raises [Invalid_argument] on malformed input. *)
