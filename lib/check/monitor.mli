(** Lock-freedom monitor: fault injection at every instrumentation label
    of a target, under the explorer's controlled schedules.

    For each label of [target.labels], the first thread to reach it is
    either killed or stalled until every other thread has finished its
    whole workload. Lock-freedom demands the remaining threads complete
    either way; a deadlock, livelock or oracle violation in the
    remainder of the run falsifies it. This is the same claim the
    fault-injection test-suite checks for the full allocator, made
    available per-target and per-schedule from the [check] CLI. *)

type mode = Kill | Stall

type entry = {
  label : string;
  mode : mode;
  round : int;  (** 0 = default schedule, >0 = seeded random schedule *)
  fired : bool;  (** whether the workload reached the label at all *)
  result : (unit, string) result;
}

type report = {
  entries : entry list;
  ok : bool;  (** every entry that fired completed cleanly *)
}

val mode_name : mode -> string

val probe :
  Target.t ->
  threads:int ->
  label:string ->
  mode:mode ->
  round:int ->
  entry

val run : Target.t -> threads:int -> modes:mode list -> rounds:int -> report
