open Mm_runtime

(* Everything here drives controlled schedules, so the whole file works
   on the simulated instantiation of the functorized stack: [Sim_rt]
   handles are the simulator instance itself, no value dispatch. *)
module A = Mm_core.Lf_alloc.Make (Sim_rt)
module Bc = Mm_core.Block_cache.Make (Sim_rt)
module Descr = Mm_core.Descriptor.Make (Sim_rt)
module Dp = Mm_core.Desc_pool.Make (Sim_rt)
module St = Mm_mem.Store.Make (Sim_rt)
module Pm = Mm_pages.Page_manager.Make (Sim_rt)
module Labels = Mm_core.Labels
module Lf_labels = Mm_lockfree.Lf_labels
module Q = Mm_lockfree.Ms_queue.Make (Sim_rt)
module Ts = Mm_lockfree.Treiber_stack.Make (Sim_rt)
module Tis = Mm_lockfree.Tagged_id_stack.Make (Sim_rt)
module Cfg = Mm_mem.Alloc_config

type t = {
  name : string;
  doc : string;
  default_threads : int;
  labels : string list;
  run :
    threads:int ->
    ?on_label:(tid:int -> string -> Sim.action) ->
    ?notify_done:(int -> unit) ->
    ?quiescent_checks:bool ->
    sched:(Sim.sched_point -> int) ->
    unit ->
    (unit, string) result;
}

(* Every run uses a fresh simulator instance, so a (target, threads,
   decisions) triple is a pure function — the property replay relies on.
   Cycles still accumulate in controlled mode; the budget below is far
   above anything these tiny bodies reach, so hitting it means livelock. *)
let max_cycles = 10_000_000_000

let make_sim ~threads ?on_label ~sched () =
  let cpus = max threads 1 in
  match on_label with
  | Some on_label -> Sim.create ~cpus ~max_cycles ~on_label ~sched ()
  | None -> Sim.create ~cpus ~max_cycles ~sched ()

let guarded f =
  try
    f ();
    Ok ()
  with
  | Oracle.Violation msg -> Error ("violation: " ^ msg)
  | Sim.Deadlock msg -> Error ("deadlock: " ^ msg)
  | Sim.Progress_timeout msg -> Error ("livelock: " ^ msg)
  | Failure msg -> Error ("invariant: " ^ msg)

let spawn s ~threads ?notify_done body =
  let wrap tid _ =
    body tid;
    match notify_done with Some f -> f tid | None -> ()
  in
  ignore (Sim.run s (Array.init threads wrap))

(* The allocator target: every thread mallocs three blocks and frees
   them, all in one processor heap with maxcredits=2 and an eagerly
   scanning descriptor pool, so reserving, credit return, FULL/EMPTY
   transitions and descriptor recycling all happen within a handful of
   operations — the smallest workload whose schedule space contains the
   tag-protected ABA window. *)
let alloc_cfg ~anchor_tag =
  (* store_capacity is tiny because the explorer builds a fresh heap per
     execution and runs tens of thousands of them. *)
  Cfg.make ~nheaps:1 ~sbsize:4096 ~maxcredits:2 ~desc_scan_threshold:1
    ~store_capacity:128 ~anchor_tag ()

let alloc_run ~anchor_tag ~threads ?on_label ?notify_done
    ?(quiescent_checks = true) ~sched () =
  let s = make_sim ~threads ?on_label ~sched () in
  let t = A.create s (alloc_cfg ~anchor_tag) in
  let orc = Oracle.create_alloc () in
  let m () =
    let a = A.malloc t 8 in
    Oracle.malloc_returned orc a;
    a
  in
  let f a =
    let p = Oracle.free_invoked orc a in
    A.free t a;
    Oracle.free_returned orc p
  in
  let body _tid =
    let w = m () in
    let a = m () in
    let b = m () in
    f w;
    f a;
    f b
  in
  guarded (fun () ->
      spawn s ~threads ?notify_done body;
      if quiescent_checks then A.check_invariants t)

let lf_alloc =
  {
    name = "lf_alloc";
    doc = "the paper's allocator; malloc/free exclusivity + invariants";
    default_threads = 2;
    labels = Labels.all;
    run = (fun ~threads -> alloc_run ~anchor_tag:true ~threads);
  }

let lf_alloc_notag =
  {
    name = "lf_alloc_notag";
    doc = "planted bug: anchor tag disabled, ABA on the pop CAS";
    default_threads = 2;
    labels = Labels.all;
    run = (fun ~threads -> alloc_run ~anchor_tag:false ~threads);
  }

(* The cached-frontend target: same oracle workload through
   Block_cache with a tiny cache (capacity 2, batch 2) so refills,
   hits, overflow flushes and the batched bc.* CAS windows all fall
   inside three mallocs + three frees per thread. A killed thread's
   cached blocks leak, so kill runs skip quiescent conservation — the
   exclusivity oracle still proves they are never handed out twice. *)
let cached_cfg =
  Cfg.make ~nheaps:1 ~sbsize:4096 ~maxcredits:2 ~desc_scan_threshold:1
    ~store_capacity:128 ~cache:true ~cache_blocks:2 ~cache_batch:2 ()

let cached_run ~threads ?on_label ?notify_done ?(quiescent_checks = true)
    ~sched () =
  let s = make_sim ~threads ?on_label ~sched () in
  let t = Bc.create s cached_cfg in
  let orc = Oracle.create_alloc () in
  let m () =
    let a = Bc.malloc t 8 in
    Oracle.malloc_returned orc a;
    a
  in
  let f a =
    let p = Oracle.free_invoked orc a in
    Bc.free t a;
    Oracle.free_returned orc p
  in
  let body _tid =
    let w = m () in
    let a = m () in
    let b = m () in
    f w;
    f a;
    f b
  in
  guarded (fun () ->
      spawn s ~threads ?notify_done body;
      if quiescent_checks then Bc.check_invariants t)

let lf_alloc_cached =
  {
    name = "lf_alloc_cached";
    doc = "block-cache frontend over the allocator; same exclusivity oracle";
    default_threads = 2;
    labels = Labels.all;
    run = cached_run;
  }

(* The warm-superblock-cache target: the allocator with a depth-1 cache
   (DESIGN.md §14) and one extra malloc/free round per thread, so every
   EMPTY transition parks the superblock (sbc.park), the next round
   adopts it back (sbc.adopt), and with two threads racing a depth-1
   cache both the watermark-overflow unmap and the lose-install re-park
   fall inside the explored window. The oracle and quiescent invariants
   (including the parked-free-list walk) are the plain allocator's. *)
let sbcache_cfg =
  Cfg.make ~nheaps:1 ~sbsize:4096 ~maxcredits:2 ~desc_scan_threshold:1
    ~store_capacity:128 ~sb_cache_depth:1 ()

let sbcache_run ~threads ?on_label ?notify_done ?(quiescent_checks = true)
    ~sched () =
  let s = make_sim ~threads ?on_label ~sched () in
  let t = A.create s sbcache_cfg in
  let orc = Oracle.create_alloc () in
  let m () =
    let a = A.malloc t 8 in
    Oracle.malloc_returned orc a;
    a
  in
  let f a =
    let p = Oracle.free_invoked orc a in
    A.free t a;
    Oracle.free_returned orc p
  in
  let body _tid =
    let w = m () in
    let a = m () in
    let b = m () in
    f w;
    f a;
    f b;
    (* Second round: adopt what the first round parked. *)
    let c = m () in
    f c
  in
  guarded (fun () ->
      spawn s ~threads ?notify_done body;
      if quiescent_checks then A.check_invariants t)

let lf_alloc_sbcache =
  {
    name = "lf_alloc_sbcache";
    doc = "warm superblock cache on; park/adopt windows + same oracle";
    default_threads = 2;
    labels = Labels.all;
    run = sbcache_run;
  }

(* The owner-biased target: the allocator with `Owner_biased free
   lists (DESIGN.md §19) and two-block superblocks (1900-byte requests
   in 4096-byte superblocks), so three mallocs per thread force an
   ownership handoff (pub.claim) and the block each thread mails to
   its neighbour comes back as a remote free (pub.push) whose rescue
   and owner-refill claims all fall inside the explored window. The
   mailbox is a plain single-producer/single-consumer slot per thread
   — written and drained between simulation points, never waited on,
   so killed threads just leak their slice. *)
let ob_cfg =
  Cfg.make ~nheaps:1 ~sbsize:4096 ~maxcredits:2 ~desc_scan_threshold:1
    ~store_capacity:128 ~free_lists:`Owner_biased ()

let ob_run ~threads ?on_label ?notify_done ?(quiescent_checks = true) ~sched
    () =
  let s = make_sim ~threads ?on_label ~sched () in
  let t = A.create s ob_cfg in
  let orc = Oracle.create_alloc () in
  let mailbox = Array.make (max threads 1) 0 in
  let m () =
    let a = A.malloc t 1900 in
    Oracle.malloc_returned orc a;
    a
  in
  let f a =
    let p = Oracle.free_invoked orc a in
    A.free t a;
    Oracle.free_returned orc p
  in
  let body tid =
    let w = m () in
    let a = m () in
    let b = m () in
    mailbox.((tid + 1) mod threads) <- w;
    f a;
    f b;
    (* Non-blocking drain: a neighbour that has not mailed yet (or was
       killed) just leaves the slot empty. *)
    let incoming = mailbox.(tid) in
    if incoming <> 0 then begin
      mailbox.(tid) <- 0;
      f incoming
    end
  in
  guarded (fun () ->
      spawn s ~threads ?notify_done body;
      if quiescent_checks then A.check_invariants t)

let lf_alloc_owner_biased =
  {
    name = "lf_alloc_owner_biased";
    doc = "owner-biased free lists; pub.push/pub.claim windows + same oracle";
    default_threads = 2;
    labels = Labels.all;
    run = ob_run;
  }

(* The page-manager target: the span reservoir + lock-free buddy
   (lib/pages) driven directly, against per-page address exclusivity —
   no two live grants may overlap in any page. Spans are 4 pages, so
   each thread's 1+2+1-page pattern forces splits, an exact fit,
   coalescing, and (with two threads racing a fresh reservoir)
   order-0 exhaustion into a second span reservation — every Pg_labels
   window falls inside six operations. Release is
   fragmentation-tolerant (abandoned coalesces leave split-but-free
   trees), so quiescence asserts the conservation invariant and zero
   live grants, not a fully-folded tree. *)
let buddy_run ~threads ?on_label ?notify_done ?(quiescent_checks = true)
    ~sched () =
  let s = make_sim ~threads ?on_label ~sched () in
  let store = St.create s ~capacity:128 ~sbsize:4096 () in
  let pm = Pm.create s store ~max_spans:4 ~span_pages:4 () in
  let page = Mm_mem.Store.page in
  let orc = Oracle.create_alloc () in
  let m pages =
    match Pm.alloc pm ~len:(pages * page) with
    | None -> None
    | Some a ->
        for i = 0 to pages - 1 do
          Oracle.malloc_returned orc (a + (i * page))
        done;
        Some a
  in
  let f a pages =
    let ps =
      List.init pages (fun i -> Oracle.free_invoked orc (a + (i * page)))
    in
    if not (Pm.free pm a ~len:(pages * page)) then
      failwith "page manager disowned a granted extent";
    List.iter (Oracle.free_returned orc) ps
  in
  let body _tid =
    let a = m 1 in
    let b = m 2 in
    Option.iter (fun x -> f x 1) a;
    let c = m 1 in
    Option.iter (fun x -> f x 2) b;
    Option.iter (fun x -> f x 1) c
  in
  guarded (fun () ->
      spawn s ~threads ?notify_done body;
      if quiescent_checks then begin
        Pm.check_invariants pm;
        if Oracle.live_count orc <> 0 then
          failwith "buddy grants still live at quiescence"
      end)

let buddy =
  {
    name = "buddy";
    doc = "span reservoir + lock-free buddy; per-page exclusivity oracle";
    default_threads = 2;
    labels = Mm_pages.Pg_labels.all;
    run = buddy_run;
  }

(* MS queue target: per-thread enqueue/dequeue bursts checked against the
   per-producer FIFO oracle. Enqueues are recorded before invocation
   (so a concurrent dequeue of the value is never "thin air"), dequeues
   after response. *)
let queue_run ~threads ?on_label ?notify_done ?(quiescent_checks = true)
    ~sched () =
  let s = make_sim ~threads ?on_label ~sched () in
  let q = Q.create s in
  let orc = Oracle.create_fifo () in
  let enq tid v =
    Oracle.enqueued orc ~tid v;
    Q.enqueue q v
  in
  let deq () =
    match Q.dequeue q with
    | Some v -> Oracle.dequeued orc ~producer:(v / 1000) v
    | None -> ()
  in
  let body tid =
    let v i = (tid * 1000) + i in
    enq tid (v 0);
    enq tid (v 1);
    deq ();
    enq tid (v 2);
    deq ();
    deq ()
  in
  guarded (fun () ->
      spawn s ~threads ?notify_done body;
      if quiescent_checks then Oracle.fifo_check orc)

let ms_queue =
  {
    name = "ms_queue";
    doc = "Michael-Scott queue; per-producer FIFO oracle";
    default_threads = 2;
    labels =
      Lf_labels.
        [ msq_enq_cas; msq_enq_swing; msq_deq_cas; msq_deq_help ];
    run = queue_run;
  }

(* Descriptor-pool target: threads alloc and retire descriptors through
   the hazard-pointer pool (batch 2, scan threshold 1, so recycling is
   immediate); the ownership oracle rejects the same descriptor being
   handed to two threads at once. *)
let pool_run ~threads ?on_label ?notify_done ?(quiescent_checks = true)
    ~sched () =
  let s = make_sim ~threads ?on_label ~sched () in
  let table = Descr.create_table s ~capacity:256 in
  let pool =
    Dp.create s table ~kind:Cfg.Hazard ~batch_size:2 ~scan_threshold:1 ()
  in
  let own = Oracle.create_ownership () in
  let body tid =
    for _ = 1 to 3 do
      let d = Dp.alloc pool in
      Oracle.acquire own ~tid d.Descr.id;
      Sim_rt.yield s;
      Oracle.release own ~tid d.Descr.id;
      Dp.retire pool d
    done
  in
  guarded (fun () ->
      spawn s ~threads ?notify_done body;
      if quiescent_checks && Oracle.held_count own <> 0 then
        failwith "descriptors still held at quiescence")

let desc_pool =
  {
    name = "desc_pool";
    doc = "hazard-pointer descriptor pool; exclusive-ownership oracle";
    default_threads = 2;
    labels =
      Labels.[ desc_alloc; desc_refill; desc_retire; desc_push ];
    run = pool_run;
  }

(* Reuse-in-place pool target (DESIGN.md §17): batch_size 1 means a
   thread holding two descriptors spills on the second retire and
   steals on the second alloc, so the explored schedule space contains
   the shared-stack hand-off windows. Two oracles: exclusive ownership
   (a reused slot is never handed to two threads at once) and per-slot
   tag monotonicity — each life bumps the anchor tag once, the way
   every anchor CAS does in the allocator, and a slot coming back off
   the shared stack must never show an older tag than its last life. *)
let pool_reuse_run ~threads ?on_label ?notify_done
    ?(quiescent_checks = true) ~sched () =
  let s = make_sim ~threads ?on_label ~sched () in
  let table = Descr.create_table s ~capacity:256 in
  let pool = Dp.create s table ~kind:Cfg.Reuse ~batch_size:1 () in
  let own = Oracle.create_ownership () in
  let last_tag = Hashtbl.create 16 in
  let take tid =
    let d = Dp.alloc pool in
    let id = d.Descr.id in
    Oracle.acquire own ~tid id;
    let a = Sim_rt.Atomic.get d.Descr.anchor in
    let tag = Mm_core.Anchor.tag a in
    (match Hashtbl.find_opt last_tag id with
    | Some prev when tag < prev ->
        failwith
          (Printf.sprintf
             "descriptor %d resurfaced with tag %d after reaching %d" id
             tag prev)
    | _ -> ());
    let a' = Mm_core.Anchor.incr_tag a in
    Sim_rt.Atomic.set d.Descr.anchor a';
    Hashtbl.replace last_tag id (Mm_core.Anchor.tag a');
    Sim_rt.yield s;
    d
  in
  let put tid (d : Descr.t) =
    Oracle.release own ~tid d.Descr.id;
    Dp.retire pool d
  in
  let body tid =
    for _ = 1 to 2 do
      let a = take tid in
      let b = take tid in
      put tid a;
      (* the private LIFO (capacity 1) is full: this retire spills *)
      put tid b
    done
  in
  guarded (fun () ->
      spawn s ~threads ?notify_done body;
      if quiescent_checks && Oracle.held_count own <> 0 then
        failwith "descriptors still held at quiescence")

let desc_pool_reuse =
  {
    name = "desc_pool_reuse";
    doc = "reuse-in-place descriptor pool; exclusivity + tag monotonicity";
    default_threads = 2;
    labels = Labels.[ desc_retire; desc_spill; desc_steal ];
    run = pool_reuse_run;
  }

(* Stack targets: the two freelist building blocks under the same
   ownership discipline as the descriptor pool — the stack is pre-seeded
   with one id per thread, and each thread repeatedly pops an id,
   briefly owns it, and pushes it back. The ownership oracle rejects two
   threads holding one id at once; at quiescence every id must be back
   on the stack. *)
let ts_run ~threads ?on_label ?notify_done ?(quiescent_checks = true)
    ~sched () =
  let s = make_sim ~threads ?on_label ~sched () in
  let st = Ts.create s in
  for id = 0 to threads - 1 do
    Ts.push st id
  done;
  let own = Oracle.create_ownership () in
  let body tid =
    for _ = 1 to 3 do
      match Ts.pop st with
      | Some id ->
          Oracle.acquire own ~tid id;
          Sim_rt.yield s;
          Oracle.release own ~tid id;
          Ts.push st id
      | None -> Sim_rt.yield s
    done
  in
  guarded (fun () ->
      spawn s ~threads ?notify_done body;
      if quiescent_checks then begin
        if Oracle.held_count own <> 0 then
          failwith "stack ids still held at quiescence";
        let n = Ts.length st in
        if n <> threads then
          failwith
            (Printf.sprintf "stack has %d ids at quiescence, expected %d"
               n threads)
      end)

let treiber_stack =
  {
    name = "treiber_stack";
    doc = "Treiber LIFO stack; exclusive-ownership oracle";
    default_threads = 2;
    labels = Lf_labels.[ ts_push_cas; ts_pop_cas ];
    run = ts_run;
  }

let tis_run ~threads ?on_label ?notify_done ?(quiescent_checks = true)
    ~sched () =
  let s = make_sim ~threads ?on_label ~sched () in
  let links = Array.make (max threads 1) (-1) in
  let st =
    Tis.create s
      ~get_next:(fun id -> links.(id))
      ~set_next:(fun id n -> links.(id) <- n)
      ()
  in
  for id = 0 to threads - 1 do
    Tis.push st id
  done;
  let own = Oracle.create_ownership () in
  let body tid =
    for _ = 1 to 3 do
      match Tis.pop st with
      | Some id ->
          Oracle.acquire own ~tid id;
          Sim_rt.yield s;
          Oracle.release own ~tid id;
          Tis.push st id
      | None -> Sim_rt.yield s
    done
  in
  guarded (fun () ->
      spawn s ~threads ?notify_done body;
      if quiescent_checks then begin
        if Oracle.held_count own <> 0 then
          failwith "stack ids still held at quiescence";
        let n = List.length (Tis.to_list st) in
        if n <> threads then
          failwith
            (Printf.sprintf "stack has %d ids at quiescence, expected %d"
               n threads)
      end)

let tagged_id_stack =
  {
    name = "tagged_id_stack";
    doc = "tagged id freelist stack; exclusive-ownership oracle";
    default_threads = 2;
    labels = Lf_labels.[ tis_push_cas; tis_pop_cas ];
    run = tis_run;
  }

let all =
  [ lf_alloc; lf_alloc_notag; lf_alloc_cached; lf_alloc_sbcache;
    lf_alloc_owner_biased; buddy; ms_queue; desc_pool; desc_pool_reuse;
    treiber_stack; tagged_id_stack ]

let find name = List.find_opt (fun t -> t.name = name) all
