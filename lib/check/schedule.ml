(* A schedule is stored as its deviations from the default scheduling
   policy ("keep running the current thread; at a fork pick the smallest
   runnable tid"). Everything the explorer manipulates — bounding,
   enumeration order, shrinking, the replay format — works on this sparse
   representation, so a minimized counterexample reads as "at decision
   point 7 switch to thread 2, at 12 to thread 0" rather than as an
   opaque full decision vector. *)

type deviation = { at : int; tid : int }

type t = deviation list (* strictly increasing [at] *)

let empty = []
let deviations t = t
let length = List.length
let last_at t = List.fold_left (fun _ d -> d.at) (-1) t

let add t ~at ~tid =
  if at < 0 || tid < 0 then invalid_arg "Schedule.add: negative field";
  if at <= last_at t then invalid_arg "Schedule.add: non-increasing index";
  t @ [ { at; tid } ]

let find t at =
  List.find_map (fun d -> if d.at = at then Some d.tid else None) t

let remove_nth t n = List.filteri (fun i _ -> i <> n) t

let to_string t =
  String.concat ","
    (List.map (fun d -> Printf.sprintf "%d:%d" d.at d.tid) t)

let of_string s =
  let s = String.trim s in
  if s = "" then []
  else
    let parse_one part =
      match String.split_on_char ':' (String.trim part) with
      | [ a; tid ] -> (
          match (int_of_string_opt a, int_of_string_opt tid) with
          | Some at, Some tid when at >= 0 && tid >= 0 -> { at; tid }
          | _ -> invalid_arg ("Schedule.of_string: bad deviation " ^ part))
      | _ -> invalid_arg ("Schedule.of_string: bad deviation " ^ part)
    in
    let ds = List.map parse_one (String.split_on_char ',' s) in
    let rec check_incr prev = function
      | [] -> ()
      | d :: rest ->
          if d.at <= prev then
            invalid_arg "Schedule.of_string: indices must increase";
          check_incr d.at rest
    in
    check_incr (-1) ds;
    ds
