open Mm_runtime

type mode = Kill | Stall

type entry = {
  label : string;
  mode : mode;
  round : int;
  fired : bool;
  result : (unit, string) result;
}

type report = { entries : entry list; ok : bool }

let mode_name = function Kill -> "kill" | Stall -> "stall"

let run_with target ~threads ~on_label ~notify_done ~quiescent_checks
    strategy =
  let idx = ref 0 in
  let sched sp =
    let c = strategy sp !idx in
    incr idx;
    if List.mem c sp.Sim.sp_runnable then c else Explore.default_choice sp
  in
  target.Target.run ~threads ~on_label ~notify_done ~quiescent_checks
    ~sched ()

(* One run: the first thread to reach [label] is killed, or stalled
   until every other thread has completed its whole workload (the
   paper's availability claim: no thread's progress may depend on
   another's — a stalled run that deadlocks, or a kill run whose
   survivors never finish, falsifies it). Round 0 uses the default
   schedule; later rounds a seeded uniformly random one, so the victim
   leaves its partial state behind under varied interleavings. *)
let probe (target : Target.t) ~threads ~label ~mode ~round =
  let fired = ref false in
  let victim = ref (-1) in
  let finished = Array.make threads false in
  let others_done () =
    let ok = ref true in
    Array.iteri
      (fun i f -> if i <> !victim && not f then ok := false)
      finished;
    !ok
  in
  let on_label ~tid l =
    if l = label && not !fired then begin
      fired := true;
      victim := tid;
      match mode with
      | Kill -> Sim.Kill
      | Stall -> Sim.Block_until others_done
    end
    else Sim.Continue
  in
  let rng = Prng.create ((round * 6361) + 1) in
  let strategy (sp : Sim.sched_point) _idx =
    if round = 0 then Explore.default_choice sp
    else
      List.nth sp.Sim.sp_runnable
        (Prng.int rng (List.length sp.Sim.sp_runnable))
  in
  let notify_done tid = finished.(tid) <- true in
  let result =
    run_with target ~threads ~on_label ~notify_done
      ~quiescent_checks:(mode <> Kill) strategy
  in
  { label; mode; round; fired = !fired; result }

let run (target : Target.t) ~threads ~modes ~rounds =
  let entries = ref [] in
  List.iter
    (fun label ->
      List.iter
        (fun mode ->
          for round = 0 to rounds - 1 do
            entries :=
              probe target ~threads ~label ~mode ~round :: !entries
          done)
        modes)
    target.Target.labels;
  let entries = List.rev !entries in
  let ok =
    List.for_all (fun e -> (not e.fired) || Result.is_ok e.result) entries
  in
  { entries; ok }
