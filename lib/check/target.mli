(** Checkable systems under test.

    A target bundles a structure, a small oracle-instrumented workload
    over it, and the instrumentation labels at which its schedules
    branch. [run] builds a {e fresh} simulator in controlled mode and
    executes the workload under the given strategy, so a (target,
    threads, decisions) triple determines the run completely — the
    explorer's replay guarantee. *)

type t = {
  name : string;
  doc : string;
  default_threads : int;
  labels : string list;
      (** instrumentation points relevant to this target (for the
          lock-freedom monitor) *)
  run :
    threads:int ->
    ?on_label:(tid:int -> string -> Mm_runtime.Sim.action) ->
    ?notify_done:(int -> unit) ->
    ?quiescent_checks:bool ->
    sched:(Mm_runtime.Sim.sched_point -> int) ->
    unit ->
    (unit, string) result;
      (** [Error] carries an oracle violation, invariant failure,
          deadlock or livelock diagnostic. [on_label] injects faults (it
          applies before the strategy is consulted); [notify_done tid]
          is called as each thread body completes, which is how the
          monitor expresses "stall until every other thread is done";
          [quiescent_checks] (default true) runs the end-of-run
          invariant/conservation checks — disable for kill runs, after
          which quiescent invariants legitimately do not hold. *)
}

val lf_alloc : t
(** The paper's allocator (tagged anchors): one shared processor heap,
    maxcredits 2, eager descriptor recycling; three malloc/free per
    thread under the address-exclusivity oracle. Expected clean. *)

val lf_alloc_notag : t
(** Same workload with {!Mm_mem.Alloc_config.t.anchor_tag} off — the
    deliberately planted ABA bug the explorer must find. *)

val lf_alloc_cached : t
(** The same oracle workload through the block-cache frontend
    ([Mm_core.Block_cache], cache capacity 2, batch 2), exercising the
    batched refill/flush CAS windows. Expected clean: cached blocks of
    a killed thread leak but are never double-allocated. *)

val lf_alloc_sbcache : t
(** The oracle workload with the warm EMPTY-superblock cache on
    ([Mm_core.Sb_cache], depth 1), exercising the park/adopt CAS
    windows (labels [sbc.park] / [sbc.adopt]) and the adoption install
    race. Expected clean: a descriptor lost between stack pop and
    anchor install leaks with its superblock, never double-serves. *)

val lf_alloc_owner_biased : t
(** The oracle workload with owner-biased private/public free lists on
    ({!Mm_mem.Alloc_config.t.free_lists} = [`Owner_biased], DESIGN.md
    §19) and two-block superblocks, exercising the remote-free push
    and bulk-claim CAS windows (labels [pub.push] / [pub.claim]):
    ownership handoff, pusher-driven rescue and owner refill all fall
    inside three mallocs + a mailed remote free per thread. Expected
    clean: a thread killed holding a claimed chain leaks it, never
    double-serves. *)

val buddy : t
(** The page manager's span reservoir + lock-free buddy
    ([Mm_pages.Page_manager], 4-page spans) driven directly: each
    thread's 1+2+1-page pattern forces splits, exact fits, coalescing
    and a racing second span reservation, under per-page address
    exclusivity (no two live grants may overlap in any page). Expected
    clean: a thread killed mid-claim strands its extent, never hands it
    out twice. *)

val ms_queue : t
val desc_pool : t

val desc_pool_reuse : t
(** The reuse-in-place descriptor pool (DESIGN.md §17) with batch_size
    1, so the shared-stack spill/steal hand-off windows ([desc.spill] /
    [desc.steal]) are in the schedule space, under the
    exclusive-ownership oracle plus a per-slot anchor-tag monotonicity
    check across reuse lives. Expected clean. *)

val treiber_stack : t
(** Treiber stack as an id freelist: pre-seeded with one id per thread,
    each thread pops, briefly owns, and pushes back under the
    exclusive-ownership oracle. Expected clean. *)

val tagged_id_stack : t
(** Same workload over the tag-protected id stack (links held in an
    external array, as the descriptor pool uses it). Expected clean. *)

val all : t list
val find : string -> t option
