open Mm_runtime

type point = {
  pt_runnable : int list;
  pt_current : int;
  pt_default : int;
  pt_chosen : int;
  pt_label : string option;
}

type trace = { points : point array; outcome : (unit, string) result }

type finding = {
  schedule : Schedule.t;
  minimized : Schedule.t;
  error : string;
}

type report = {
  executions : int;
  decision_points : int;
  complete : bool;
  finding : finding option;
}

(* The default policy the deviation representation is relative to: keep
   running the current thread; when it cannot continue, the smallest
   runnable tid. It never preempts, so a schedule's preemption count is
   exactly its number of preemptive deviations. *)
let default_choice (sp : Sim.sched_point) =
  if List.mem sp.Sim.sp_current sp.Sim.sp_runnable then sp.Sim.sp_current
  else List.hd sp.Sim.sp_runnable

let run_strategy (target : Target.t) ~threads ?on_label ?quiescent_checks
    strategy =
  let points = ref [] in
  let idx = ref 0 in
  let sched sp =
    let d = default_choice sp in
    let c = strategy sp !idx in
    let chosen = if List.mem c sp.Sim.sp_runnable then c else d in
    points :=
      {
        pt_runnable = sp.Sim.sp_runnable;
        pt_current = sp.Sim.sp_current;
        pt_default = d;
        pt_chosen = chosen;
        pt_label = sp.Sim.sp_label;
      }
      :: !points;
    incr idx;
    chosen
  in
  let outcome = target.Target.run ~threads ?on_label ?quiescent_checks ~sched () in
  { points = Array.of_list (List.rev !points); outcome }

let replay target ~threads schedule =
  run_strategy target ~threads (fun sp idx ->
      match Schedule.find schedule idx with
      | Some tid when List.mem tid sp.Sim.sp_runnable -> tid
      | _ -> default_choice sp)

let schedule_of_trace tr =
  let s = ref Schedule.empty in
  Array.iteri
    (fun i p ->
      if p.pt_chosen <> p.pt_default then
        s := Schedule.add !s ~at:i ~tid:p.pt_chosen)
    tr.points;
  !s

(* Greedy ddmin: repeatedly drop any single deviation whose removal
   preserves the failure, until none can be dropped. Counterexamples here
   have a handful of deviations, so the quadratic number of replays is
   cheap and the result is 1-minimal. *)
let shrink target ~threads s0 =
  let fails s = Result.is_error (replay target ~threads s).outcome in
  if not (fails s0) then s0
  else
    let rec fixpoint s =
      let n = Schedule.length s in
      let rec try_drop i =
        if i >= n then s
        else
          let cand = Schedule.remove_nth s i in
          if fails cand then fixpoint cand else try_drop (i + 1)
      in
      try_drop 0
    in
    fixpoint s0

let found target ~threads schedule error =
  Some { schedule; minimized = shrink target ~threads schedule; error }

(* A deviation choosing [tid] at point [p] is preemptive iff the current
   thread could have continued and was not chosen. Deviations at forks
   the default policy must resolve anyway (current finished, blocked or
   killed) are free: they pick a different branch, they do not preempt. *)
let preemptive p ~tid =
  List.mem p.pt_current p.pt_runnable && tid <> p.pt_current

(* Iterative-deepening-free bounded exhaustive search, enumerated BFS so
   simpler schedules run first. Children of a schedule branch only at
   decision points strictly after its last deviation: every deviation set
   is generated exactly once, from the schedule holding its prefix. *)
let exhaustive target ~threads ~bound ~budget =
  let q = Queue.create () in
  Queue.push (Schedule.empty, 0) q;
  let executions = ref 0 in
  let truncated = ref false in
  let dpoints = ref 0 in
  let finding = ref None in
  (try
     while not (Queue.is_empty q) do
       let s, preempts = Queue.pop q in
       if !executions >= budget then begin
         truncated := true;
         raise Exit
       end;
       incr executions;
       let tr = replay target ~threads s in
       if !executions = 1 then dpoints := Array.length tr.points;
       match tr.outcome with
       | Error e ->
           finding := found target ~threads s e;
           raise Exit
       | Ok () ->
           for i = Schedule.last_at s + 1 to Array.length tr.points - 1 do
             let p = tr.points.(i) in
             List.iter
               (fun tid ->
                 if tid <> p.pt_chosen then
                   let pre =
                     preempts + (if preemptive p ~tid then 1 else 0)
                   in
                   if pre <= bound then begin
                     (* Cap the frontier too, so a huge schedule space
                        cannot exhaust memory before the budget trips. *)
                     if Queue.length q + !executions < budget then
                       Queue.push (Schedule.add s ~at:i ~tid, pre) q
                     else truncated := true
                   end)
               p.pt_runnable
           done
     done
   with Exit -> ());
  {
    executions = !executions;
    decision_points = !dpoints;
    complete = !finding = None && not !truncated;
    finding = !finding;
  }

(* PCT (Burckhardt et al., ASPLOS 2010): random thread priorities plus
   [depth - 1] random priority-demotion points; always run the
   highest-priority runnable thread. Detects any bug of preemption depth
   <= depth with probability >= 1/(n * k^(depth-1)) per run. Each run's
   choices are re-expressed as deviations from the default policy, so
   PCT counterexamples replay and shrink exactly like exhaustive ones. *)
let pct target ~threads ~depth ~runs ~seed =
  if depth < 1 then invalid_arg "Explore.pct: depth must be >= 1";
  let base = replay target ~threads Schedule.empty in
  let k = max 1 (Array.length base.points) in
  match base.outcome with
  | Error e ->
      {
        executions = 1;
        decision_points = k;
        complete = false;
        finding = found target ~threads Schedule.empty e;
      }
  | Ok () ->
      let executions = ref 1 in
      let finding = ref None in
      (try
         for r = 1 to runs do
           let rng = Prng.create (seed + (r * 7919)) in
           let prio = Array.init threads (fun i -> i) in
           Prng.shuffle rng prio;
           let changes =
             Array.init (depth - 1) (fun _ -> Prng.int rng (2 * k))
           in
           let floor = ref (-1) in
           let best_of runnable =
             match runnable with
             | [] -> assert false
             | tid :: rest ->
                 List.fold_left
                   (fun b t -> if prio.(t) > prio.(b) then t else b)
                   tid rest
           in
           let strategy (sp : Sim.sched_point) idx =
             if Array.exists (( = ) idx) changes then begin
               prio.(best_of sp.Sim.sp_runnable) <- !floor;
               decr floor
             end;
             best_of sp.Sim.sp_runnable
           in
           let tr = run_strategy target ~threads strategy in
           incr executions;
           match tr.outcome with
           | Error e ->
               finding :=
                 found target ~threads (schedule_of_trace tr) e;
               raise Exit
           | Ok () -> ()
         done
       with Exit -> ());
      {
        executions = !executions;
        decision_points = k;
        complete = !finding = None;
        finding = !finding;
      }
