(** Specification oracles for the schedule explorer.

    Oracles are driven online: targets call the recording functions
    immediately around the operations they bracket. Under the controlled
    simulator the whole run executes on one host thread, so this observes
    the true execution order without perturbing the schedule. A violated
    specification raises {!Violation}, which aborts the run and surfaces
    as the counterexample the explorer then shrinks. *)

exception Violation of string

(** {2 Allocator histories}

    Address-exclusivity checking: between a [malloc] returning address
    [a] and a [free] of [a] taking effect, no other [malloc] may return
    [a]. A free is an interval, not a point — an in-flight free (invoked,
    not yet returned) may have linearized already, so it can explain one
    re-issue of its address; the oracle consumes it when it does. A
    malloc returning a live address with no in-flight free to consume is
    a double allocation (the ABA symptom the planted bug produces). Also
    rejects frees of non-live addresses. Kill-tolerant: a thread killed
    mid-free leaves its pending free in flight forever, which is exactly
    the uncertainty the specification allows. *)

type alloc
type pending

val create_alloc : unit -> alloc

val malloc_returned : alloc -> int -> unit
(** Record a malloc response. Raises {!Violation} on double allocation. *)

val free_invoked : alloc -> int -> pending
(** Record a free invocation; pair with {!free_returned}. Raises
    {!Violation} if the address is not currently allocated. *)

val free_returned : alloc -> pending -> unit

val live_count : alloc -> int

(** {2 Exclusive ownership} — descriptor-pool checking: an id handed out
    by [alloc] must not be handed out again before it is retired. *)

type ownership

val create_ownership : unit -> ownership
val acquire : ownership -> tid:int -> int -> unit
val release : ownership -> tid:int -> int -> unit
val held_count : ownership -> int

(** {2 FIFO queues} — per-producer checking for the MS queue: no value
    dequeued twice or from thin air, and each producer's values leave in
    enqueue order. *)

type fifo

val create_fifo : unit -> fifo
val enqueued : fifo -> tid:int -> int -> unit
val dequeued : fifo -> producer:int -> int -> unit

val fifo_check : fifo -> unit
(** Run the end-of-history checks. Raises {!Violation}. *)
