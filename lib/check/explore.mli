(** Systematic schedule exploration over controlled-mode
    {!Mm_runtime.Sim} runs.

    Two strategies over the same substrate: [exhaustive] enumerates
    every schedule with at most [bound] preemptive deviations from the
    default policy (stateless model checking with a preemption bound, as
    in CHESS); [pct] samples schedules with randomized thread priorities
    and [depth - 1] priority-change points (probabilistic concurrency
    testing). Both report counterexamples as {!Schedule.t} values that
    replay deterministically and arrive already shrunk. *)

type point = {
  pt_runnable : int list;
  pt_current : int;
  pt_default : int;  (** what the default policy would have picked *)
  pt_chosen : int;
  pt_label : string option;
}

type trace = { points : point array; outcome : (unit, string) result }

type finding = {
  schedule : Schedule.t;  (** as first encountered *)
  minimized : Schedule.t;  (** 1-minimal: no single deviation removable *)
  error : string;
}

type report = {
  executions : int;  (** runs actually performed *)
  decision_points : int;  (** length of the default-schedule run *)
  complete : bool;
      (** exhaustive: the bounded space was drained within budget; pct:
          all runs executed. [false] whenever a finding stopped the
          search or the budget truncated it — never silently. *)
  finding : finding option;  (** first violation, if any *)
}

val default_choice : Mm_runtime.Sim.sched_point -> int
(** The deviation-free policy: continue the current thread, else the
    smallest runnable tid. *)

val run_strategy :
  Target.t ->
  threads:int ->
  ?on_label:(tid:int -> string -> Mm_runtime.Sim.action) ->
  ?quiescent_checks:bool ->
  (Mm_runtime.Sim.sched_point -> int -> int) ->
  trace
(** Run once under an arbitrary strategy (also given the decision
    index); a strategy answer that is not runnable falls back to the
    default policy. The returned trace records every decision point. *)

val replay : Target.t -> threads:int -> Schedule.t -> trace
(** Deterministically re-execute a schedule. *)

val schedule_of_trace : trace -> Schedule.t
(** The trace's choices re-expressed as deviations from the default
    policy — how PCT runs become replayable schedules. *)

val shrink : Target.t -> threads:int -> Schedule.t -> Schedule.t
(** Greedy ddmin on the deviation list (replays candidates; returns the
    input unchanged if it does not fail). *)

val exhaustive :
  Target.t -> threads:int -> bound:int -> budget:int -> report
(** BFS over deviation sets with at most [bound] preemptive deviations,
    stopping at the first violation or after [budget] executions. *)

val pct :
  Target.t -> threads:int -> depth:int -> runs:int -> seed:int -> report
(** [runs] independent PCT samples at bug depth [depth]. *)
