(** The page manager (DESIGN.md §15): a span reservoir over the store
    plus one lock-free {!Buddy} per span.

    Spans of [span_pages] pages are reserved up front (one simulated
    mmap each, scalloc-style) and published into a fixed slot array by
    CAS; they are never unmapped — released extents coalesce in place
    for reuse. [Lf_alloc] routes large blocks and superblock carving
    here when [Alloc_config.page_manager] is on; requests no span can
    serve ([None]) fail over to the store's direct-map path, so the
    reservoir running out is a performance event, never an error. *)

module Make (Rt : Mm_runtime.Runtime_intf.S) : sig
  type t

  type stats = {
    spans : int;  (** spans reserved (won the publish CAS) *)
    span_races : int;  (** candidate spans mapped but lost the publish *)
    grants : int;
    releases : int;
    fallbacks : int;  (** requests the reservoir could not serve *)
  }

  val create :
    Rt.t ->
    Mm_mem.Store.Make(Rt).t ->
    ?max_spans:int ->
    ?on_acquire_retry:(unit -> unit) ->
    ?on_release_retry:(unit -> unit) ->
    ?on_coalesce_retry:(unit -> unit) ->
    ?on_span_retry:(unit -> unit) ->
    span_pages:int ->
    unit ->
    t
  (** [span_pages] must be a power of two. Default [max_spans] 64. The
      retry callbacks feed the allocator's striped CAS-retry census. *)

  val span_pages : t -> int

  val alloc : t -> len:int -> int option
  (** A page-aligned extent of at least [len] bytes (rounded up to a
      power-of-two page count — the internal fragmentation the OS census
      reports). Reserves a fresh span when every published one is
      exhausted; [None] once the slot array is full or the request
      exceeds a whole span. *)

  val free : t -> int -> len:int -> bool
  (** [free t addr ~len] returns the extent granted for [addr] (with the
      same [len] as the matching {!alloc}) to its span's buddy and
      coalesces. [false] if [addr] lies in no span — i.e. it came from
      the direct-map fallback and the caller must unmap it instead. *)

  val owns : t -> int -> bool
  (** Whether [addr] lies inside a published span. *)

  val stats : t -> stats
  val spans : t -> int
  (** Number of published spans. *)

  val check_invariants : t -> unit
  (** Quiescent: every span's buddy passes {!Buddy.check_invariants}. *)
end
