module Make (Rt : Mm_runtime.Runtime_intf.S) = struct

  (* Non-blocking binary buddy over one span of [2^order] pages, after
     Marotta et al. (PAPERS.md): an array-encoded tree of page-order
     nodes whose states move only by CAS, with a fragmentation-tolerant
     release — a coalesce that loses a claim race simply leaves the two
     halves FREE rather than blocking or retrying forever.

     Node states:
     - [free]: published and claimable. A node is {e published} exactly
       while its parent is SPLIT (the root is always published).
     - [split]: both children are published; allocations live below.
     - [busy]: an extent handed out by {!acquire}.
     - [merged]: unpublished — either never published since the parent's
       last split, or claimed by an in-flight coalesce. Never CASed by
       anyone but the claim owner, so a descending thread that reads it
       treats the node as unavailable and moves on.

     The ABA story mirrors the allocator's anchors: every transition CASes
     from an observed immediate state, and the only plain stores target
     nodes the writer owns exclusively — the split winner re-publishing
     its two children (unreachable as FREE until that store), and a
     coalescer rolling its own claim back. A stale CAS from a node's
     previous life can only be [free -> busy/split], and [free] is
     re-entered only via those exclusive stores, after which the tree
     position means exactly the same thing — so a late CAS is
     indistinguishable from a fresh, correct claim. *)

  let free_s = 0
  let split_s = 1
  let busy_s = 2
  let merged_s = 3

  type t = {
    rt : Rt.t;
    order : int;  (* span covers 2^order pages; node 1 is the root *)
    nodes : int Rt.atomic array;  (* 1-based heap layout, node i: 2i, 2i+1 *)
    on_acquire_retry : unit -> unit;
    on_release_retry : unit -> unit;
    on_coalesce_retry : unit -> unit;
  }

  let nop () = ()

  let create rt ?(on_acquire_retry = nop) ?(on_release_retry = nop)
      ?(on_coalesce_retry = nop) ~order () =
    if order < 0 || order > 24 then invalid_arg "Buddy.create: bad order";
    (* Eight node words share a synthetic cache line, modelling the dense
       status array a real implementation would use (false sharing between
       neighbouring tree nodes is part of what the simulator measures). *)
    let n = 1 lsl (order + 1) in
    let line = ref (Rt.fresh_line ()) in
    let nodes =
      Array.init n (fun i ->
          if i > 0 && i mod 8 = 0 then line := Rt.fresh_line ();
          Rt.Atomic.make rt ~line:!line (if i = 1 then free_s else merged_s))
    in
    { rt; order; nodes; on_acquire_retry; on_release_retry; on_coalesce_retry }

  let order t = t.order
  let pages t = 1 lsl t.order

  (* Node [n] at tree depth [t.order - node_ord] covers [2^node_ord] pages
     starting at page [(n - 2^(order - node_ord)) * 2^node_ord]. *)
  let page_of_node t n ~node_ord =
    (n - (1 lsl (t.order - node_ord))) * (1 lsl node_ord)

  let node_of t ~page ~order:k = (1 lsl (t.order - k)) + (page lsr k)

  (* First-fit descent from the root. An exact-fit FREE node is claimed
     BUSY; a larger FREE node is split (CAS to SPLIT, then the winner —
     sole owner of the still-unpublished children — stores them FREE).
     BUSY and MERGED nodes are unavailable: no spinning on them, the
     search falls through to the sibling subtree or fails over to the
     caller (span reservation), which is what keeps a stalled splitter
     from blocking anyone. A failed CAS means another thread moved the
     node, i.e. global progress, so the bounded re-dispatch is lock-free. *)
  let acquire t ~order:k =
    if k < 0 || k > t.order then invalid_arg "Buddy.acquire: bad order";
    let rec descend n node_ord =
      let s = Rt.Atomic.get t.nodes.(n) in
      if node_ord = k then
        if s = free_s then begin
          Rt.label t.rt Pg_labels.buddy_acquire;
          if Rt.Atomic.compare_and_set t.nodes.(n) free_s busy_s then Some n
          else begin
            t.on_acquire_retry ();
            descend n node_ord
          end
        end
        else None
      else if s = split_s then begin
        match descend (2 * n) (node_ord - 1) with
        | Some _ as r -> r
        | None -> descend ((2 * n) + 1) (node_ord - 1)
      end
      else if s = free_s then begin
        Rt.label t.rt Pg_labels.buddy_acquire;
        if Rt.Atomic.compare_and_set t.nodes.(n) free_s split_s then begin
          (* Split winner: the children are unpublished (MERGED) until
             these stores, so no other thread can have claimed them. *)
          Rt.Atomic.set t.nodes.(2 * n) free_s;
          Rt.Atomic.set t.nodes.((2 * n) + 1) free_s;
          Rt.obs_event t.rt Rt.Obs.Transition "buddy.split";
          match descend (2 * n) (node_ord - 1) with
          | Some _ as r -> r
          | None -> descend ((2 * n) + 1) (node_ord - 1)
        end
        else begin
          t.on_acquire_retry ();
          descend n node_ord
        end
      end
      else None
    in
    match descend 1 t.order with
    | None -> None
    | Some n -> Some (page_of_node t n ~node_ord:k)

  (* Merge [n] (just made FREE by its releaser) with its buddy, upward
     while both halves can be claimed. Claim order is fixed — own node
     first, then the sibling — and a failed claim aborts the merge with
     the claimed half rolled back to FREE (fragmentation-tolerant: two
     FREE siblings under a SPLIT parent are a legal resting state; a
     later release at either side re-attempts the fold). Once both
     children are MERGED the parent is pinned: acquirers only CAS FREE
     nodes and coalescers need a FREE child, so the SPLIT -> FREE fold
     cannot be contended. *)
  let rec coalesce t n =
    if n > 1 then begin
      let parent = n / 2 in
      let sibling = n lxor 1 in
      let s = Rt.Atomic.get t.nodes.(n) in
      if s = free_s then begin
        Rt.label t.rt Pg_labels.buddy_coalesce;
        if Rt.Atomic.compare_and_set t.nodes.(n) free_s merged_s then begin
          let sb = Rt.Atomic.get t.nodes.(sibling) in
          if
            sb = free_s
            && begin
                 Rt.label t.rt Pg_labels.buddy_coalesce;
                 Rt.Atomic.compare_and_set t.nodes.(sibling) free_s merged_s
               end
          then begin
            let p = Rt.Atomic.get t.nodes.(parent) in
            Rt.label t.rt Pg_labels.buddy_coalesce;
            if
              p <> split_s
              || not (Rt.Atomic.compare_and_set t.nodes.(parent) split_s free_s)
            then failwith "Buddy: SPLIT parent moved under a two-sided claim";
            Rt.obs_event t.rt Rt.Obs.Transition "buddy.merge";
            coalesce t parent
          end
          else begin
            (* Sibling busy, split, or claimed by a racing coalescer:
               tolerate the fragmentation and re-publish our half. *)
            t.on_coalesce_retry ();
            Rt.Atomic.set t.nodes.(n) free_s
          end
        end
        else
          (* An acquirer re-claimed the block between our release and this
             claim; the merge is moot. *)
          t.on_coalesce_retry ()
      end
    end

  let release t ~page ~order:k =
    if k < 0 || k > t.order then invalid_arg "Buddy.release: bad order";
    if
      page < 0
      || page land ((1 lsl k) - 1) <> 0
      || page lsr k >= 1 lsl (t.order - k)
    then invalid_arg "Buddy.release: not an extent base";
    let n = node_of t ~page ~order:k in
    let s = Rt.Atomic.get t.nodes.(n) in
    if s <> busy_s then
      failwith "Buddy.release: extent is not allocated (double free?)";
    Rt.label t.rt Pg_labels.buddy_release;
    if not (Rt.Atomic.compare_and_set t.nodes.(n) busy_s free_s) then begin
      (* Only the extent's owner releases it and nothing else CASes a
         BUSY node, so a failure here is tree corruption, not contention. *)
      t.on_release_retry ();
      failwith "Buddy.release: BUSY node moved under its owner"
    end;
    coalesce t n

  (* Quiescent walk of the published tree: descend through SPLIT nodes,
     count FREE and BUSY page capacity. Every page is covered by exactly
     one terminal node, so free + busy = 2^order whenever the walk
     completes — a reachable MERGED node (an in-flight claim, impossible
     at quiescence unless a thread was killed mid-protocol) raises. *)
  let census t =
    let rec walk n node_ord (f, b) =
      let s = Rt.Atomic.get t.nodes.(n) in
      if s = split_s then begin
        if node_ord = 0 then failwith "Buddy: SPLIT leaf";
        walk (2 * n) (node_ord - 1) (walk ((2 * n) + 1) (node_ord - 1) (f, b))
      end
      else if s = free_s then (f + (1 lsl node_ord), b)
      else if s = busy_s then (f, b + (1 lsl node_ord))
      else failwith "Buddy: reachable node still merge-claimed at quiescence"
    in
    walk 1 t.order (0, 0)

  let check_invariants t =
    let f, b = census t in
    if f + b <> pages t then
      failwith
        (Printf.sprintf "Buddy: %d free + %d busy pages != span %d" f b
           (pages t))
end
