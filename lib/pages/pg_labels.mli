(** Instrumentation points inside the page manager, the counterpart of
    [Mm_core.Labels] for this layer (same audit rule, enforced by
    mm-lint: every CAS retry loop carries a label between the read of
    the shared word and the CAS on it, so fault injection and
    [lib/check]'s schedule explorer can interpose in every
    read-modify-write window). *)

val buddy_acquire : string
(** Buddy acquire: before a node CAS on the descent — claiming an
    exact-fit FREE node, or splitting a FREE node one order up. *)

val buddy_release : string
(** Buddy release: before the CAS returning a BUSY node to FREE. *)

val buddy_coalesce : string
(** Buddy coalesce: before each CAS of the merge protocol — claiming
    the just-freed node, claiming its sibling, or folding the pair into
    their SPLIT parent. *)

val span_reserve : string
(** Span reservoir: before the CAS publishing a freshly mapped span
    into an empty reservoir slot. *)

val all : string list
(** Every label above; fault-injection tests iterate this list. *)

val census_sites : (string * string list) list
(** This layer's contention-sites census rows, appended after
    [Mm_core.Labels.census_sites] by every failed-CAS census. *)

val census_markers : string list
(** Labels with no striped retry counter (none in this layer);
    [census_sites]'s labels and this list partition [all]. *)
