let buddy_acquire = "buddy.acquire"
let buddy_release = "buddy.release"
let buddy_coalesce = "buddy.coalesce"
let span_reserve = "span.reserve"

let all =
  [
    buddy_acquire;
    buddy_release;
    buddy_coalesce;
    span_reserve;
  ]

(* Census registry for this layer, appended after
   [Mm_core.Labels.census_sites] by every failed-CAS census (see the
   comment there). Each buddy/span label has its own striped counter,
   so sites and labels coincide; there are no marker labels. *)
let census_sites =
  [
    ("buddy.acquire", [ buddy_acquire ]);
    ("buddy.release", [ buddy_release ]);
    ("buddy.coalesce", [ buddy_coalesce ]);
    ("span.reserve", [ span_reserve ]);
  ]

let census_markers : string list = []
