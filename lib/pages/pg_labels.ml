let buddy_acquire = "buddy.acquire"
let buddy_release = "buddy.release"
let buddy_coalesce = "buddy.coalesce"
let span_reserve = "span.reserve"

let all =
  [
    buddy_acquire;
    buddy_release;
    buddy_coalesce;
    span_reserve;
  ]
