(** Lock-free binary buddy allocator over one span (DESIGN.md §15).

    An array-encoded tree of page-order nodes in the style of Marotta
    et al.'s non-blocking buddy system (PAPERS.md): node states move
    only by CAS ([acquire] claims or splits, [release] frees and then
    tries to fold sibling pairs back), and a coalesce that loses a
    claim race aborts fragmentation-tolerantly instead of blocking —
    two FREE siblings under a SPLIT parent are a legal resting state
    that the next release on either side re-folds. Single-threaded,
    release always coalesces maximally.

    Node state words are runtime atomics packed eight to a synthetic
    cache line (the same modelling substitution the allocator's anchors
    use — see {!Mm_runtime.Rt.fresh_line}), so the simulator charges
    the line traffic of the dense status array a real implementation
    would keep, and the [lib/check] explorer drives every CAS window
    through the {!Pg_labels} labels. *)

module Make (Rt : Mm_runtime.Runtime_intf.S) : sig
  type t

  val create :
    Rt.t ->
    ?on_acquire_retry:(unit -> unit) ->
    ?on_release_retry:(unit -> unit) ->
    ?on_coalesce_retry:(unit -> unit) ->
    order:int ->
    unit ->
    t
  (** A fully-free buddy over [2^order] pages. The retry callbacks feed
      the allocator's striped CAS-retry census (one call per failed or
      abandoned CAS at the matching label). *)

  val order : t -> int
  val pages : t -> int

  val acquire : t -> order:int -> int option
  (** First-fit descent for an extent of [2^order] pages; returns its
      first page index within the span, or [None] when no subtree can
      serve the order (the caller fails over to the next span). *)

  val release : t -> page:int -> order:int -> unit
  (** Return the extent granted as ([page], [order]) and coalesce as far
      as claim races allow. Raises [Failure] on a double free. *)

  val census : t -> int * int
  (** Quiescent ([free_pages], [busy_pages]) over the published tree.
      Raises [Failure] if a node is still merge-claimed (only possible
      after a mid-protocol kill). *)

  val check_invariants : t -> unit
  (** {!census} plus the conservation check free + busy = {!pages}. *)
end
