module Make (Rt : Mm_runtime.Runtime_intf.S) = struct
  module Buddy = Buddy.Make (Rt)

  module Store = Mm_mem.Store.Make (Rt)
  module Addr = Mm_mem.Addr

  (* Span reservoir (scalloc-style, PAPERS.md): virtual spans of
     [2^span_order] pages are reserved from the store up front — one
     simulated mmap per span — and page-aligned extents are carved out of
     them by the per-span lock-free buddy. Spans are published into a
     fixed array of slots with a single CAS and never unmapped: freed
     extents coalesce inside the span for reuse, which is what collapses
     the per-request mmap traffic the census measures. *)

  type span = { base : int; buddy : Buddy.t }

  type stats = {
    spans : int;
    span_races : int;
    grants : int;
    releases : int;
    fallbacks : int;
  }

  type t = {
    rt : Rt.t;
    store : Store.t;
    span_order : int;
    max_spans : int;
    slots : span option Rt.atomic array;
    on_acquire_retry : unit -> unit;
    on_release_retry : unit -> unit;
    on_coalesce_retry : unit -> unit;
    on_span_retry : unit -> unit;
    (* striped per-thread counters, summed by [stats] *)
    spans_n : int array;
    races_n : int array;
    grants_n : int array;
    releases_n : int array;
    fallbacks_n : int array;
  }

  let nop () = ()

  let log2_exact n =
    let rec go k = if 1 lsl k = n then Some k else if 1 lsl k > n then None else go (k + 1) in
    go 0

  let create rt store ?(max_spans = 64) ?(on_acquire_retry = nop)
      ?(on_release_retry = nop) ?(on_coalesce_retry = nop)
      ?(on_span_retry = nop) ~span_pages () =
    let span_order =
      match log2_exact span_pages with
      | Some k -> k
      | None ->
          invalid_arg "Page_manager.create: span_pages must be a power of two"
    in
    if max_spans < 1 then invalid_arg "Page_manager.create: max_spans < 1";
    {
      rt;
      store;
      span_order;
      max_spans;
      slots = Array.init max_spans (fun _ -> Rt.Atomic.make rt None);
      on_acquire_retry;
      on_release_retry;
      on_coalesce_retry;
      on_span_retry;
      spans_n = Array.make Rt.max_threads 0;
      races_n = Array.make Rt.max_threads 0;
      grants_n = Array.make Rt.max_threads 0;
      releases_n = Array.make Rt.max_threads 0;
      fallbacks_n = Array.make Rt.max_threads 0;
    }

  let bump t arr = arr.(Rt.self t.rt) <- arr.(Rt.self t.rt) + 1
  let span_pages t = 1 lsl t.span_order

  (* Smallest buddy order covering [len] bytes. *)
  let order_for len =
    let pages = (len + Store.page - 1) / Store.page in
    let rec go k = if 1 lsl k >= pages then k else go (k + 1) in
    go 0

  let mk_buddy t =
    Buddy.create t.rt ~on_acquire_retry:t.on_acquire_retry
      ~on_release_retry:t.on_release_retry
      ~on_coalesce_retry:t.on_coalesce_retry ~order:t.span_order ()

  let alloc t ~len =
    if len <= 0 then invalid_arg "Page_manager.alloc: len must be positive";
    let k = order_for len in
    if k > t.span_order then begin
      (* Larger than a whole span: the caller direct-maps it. *)
      bump t t.fallbacks_n;
      None
    end
    else begin
      let requested = (len + Store.page - 1) / Store.page in
      let rec scan i =
        if i >= t.max_spans then begin
          (* Every slot full and exhausted — fail over to a direct map. *)
          bump t t.fallbacks_n;
          None
        end
        else
          match Rt.Atomic.get t.slots.(i) with
          | Some span -> (
              match Buddy.acquire span.buddy ~order:k with
              | Some page ->
                  Store.note_buddy_grant t.store ~requested
                    ~granted:(1 lsl k);
                  bump t t.grants_n;
                  Some (span.base + (page * Store.page))
              | None -> scan (i + 1))
          | None ->
              (* Empty slot: map a candidate span and race to publish it.
                 The loser's mapping is genuinely returned — optimistic
                 reservation keeps the install path a single CAS. *)
              let base = Store.alloc_span t.store ~pages:(span_pages t) in
              let span = { base; buddy = mk_buddy t } in
              Rt.label t.rt Pg_labels.span_reserve;
              if Rt.Atomic.compare_and_set t.slots.(i) None (Some span)
              then begin
                bump t t.spans_n;
                Rt.obs_event t.rt Rt.Obs.Transition "span.reserved";
                scan i
              end
              else begin
                t.on_span_retry ();
                bump t t.races_n;
                Store.free_span t.store base;
                scan i
              end
      in
      scan 0
    end

  let find_span t addr =
    let region = Addr.region addr in
    let rec go i =
      if i >= t.max_spans then None
      else
        match Rt.Atomic.get t.slots.(i) with
        | Some span when Addr.region span.base = region -> Some span
        | _ -> go (i + 1)
    in
    go 0

  let owns t addr = find_span t addr <> None

  let free t addr ~len =
    match find_span t addr with
    | None -> false
    | Some span ->
        let k = order_for len in
        let page = (addr - span.base) / Store.page in
        Buddy.release span.buddy ~page ~order:k;
        bump t t.releases_n;
        true

  let stats t =
    let sum a = Array.fold_left ( + ) 0 a in
    {
      spans = sum t.spans_n;
      span_races = sum t.races_n;
      grants = sum t.grants_n;
      releases = sum t.releases_n;
      fallbacks = sum t.fallbacks_n;
    }

  let spans t =
    Array.fold_left
      (fun n slot -> if Rt.Atomic.get slot = None then n else n + 1)
      0 t.slots

  let check_invariants t =
    Array.iter
      (fun slot ->
        match Rt.Atomic.get slot with
        | Some span -> Buddy.check_invariants span.buddy
        | None -> ())
      t.slots
end
