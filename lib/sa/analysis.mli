(** The mm-sa analysis set: flow-sensitive typestate automata over
    per-function CFGs built from the compiler's typed ASTs (DESIGN.md
    §16). Names are the tokens used by findings, the [--analysis] CLI
    filter and in-source suppressions [(* mm-sa: allow <analysis> *)]. *)

type t =
  | Hp_protocol  (** S1 *)
  | Cas_loop_progress  (** S2 *)
  | Write_before_publish  (** S3 *)
  | Label_dominance  (** S4 *)

val all : t list
val name : t -> string
val of_name : string -> t option
val describe : t -> string
