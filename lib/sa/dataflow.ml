(* A small forward may-analysis engine over Cfg.t. States form a finite
   join-semilattice supplied by the client; [edge] lets backedges demote
   facts (read freshness, label windows) differently from sequential
   flow. Returns the in-state of every reachable node ([None] for
   unreachable ones). *)

let fixpoint (cfg : Cfg.t) ~(init : 's) ~(equal : 's -> 's -> bool)
    ~(join : 's -> 's -> 's) ~(transfer : Cfg.node -> 's -> 's)
    ~(edge : Cfg.ekind -> 's -> 's) : 's option array =
  let n = Array.length cfg.nodes in
  let ins = Array.make n None in
  if n = 0 then ins
  else begin
    ins.(cfg.entry) <- Some init;
    let work = Queue.create () in
    let inq = Array.make n false in
    Queue.add cfg.entry work;
    inq.(cfg.entry) <- true;
    (* the lattices here are tiny; the bound is a pure safety net *)
    let fuel = ref ((n + 1) * 256) in
    while (not (Queue.is_empty work)) && !fuel > 0 do
      decr fuel;
      let i = Queue.pop work in
      inq.(i) <- false;
      match ins.(i) with
      | None -> ()
      | Some s ->
          let node = cfg.nodes.(i) in
          let out = transfer node s in
          List.iter
            (fun (kind, j) ->
              let contrib = edge kind out in
              let updated =
                match ins.(j) with
                | None -> Some contrib
                | Some old ->
                    let merged = join old contrib in
                    if equal old merged then None else Some merged
              in
              match updated with
              | None -> ()
              | Some s' ->
                  ins.(j) <- Some s';
                  if not inq.(j) then begin
                    Queue.add j work;
                    inq.(j) <- true
                  end)
            node.n_succ
    done;
    ins
  end

(* Out-states of the function's exit frontier (for exit-invariant
   checks such as "hazard slot released on every return path"). *)
let exit_outs (cfg : Cfg.t) ~(transfer : Cfg.node -> 's -> 's)
    (ins : 's option array) : (Cfg.node * 's) list =
  List.filter_map
    (fun i ->
      match ins.(i) with
      | Some s -> Some (cfg.nodes.(i), transfer cfg.nodes.(i) s)
      | None -> None)
    cfg.exits
