type t =
  | Hp_protocol
  | Cas_loop_progress
  | Write_before_publish
  | Label_dominance

let all =
  [ Hp_protocol; Cas_loop_progress; Write_before_publish; Label_dominance ]

let name = function
  | Hp_protocol -> "hp-protocol"
  | Cas_loop_progress -> "cas-loop-progress"
  | Write_before_publish -> "write-before-publish"
  | Label_dominance -> "label-dominance"

let of_name s = List.find_opt (fun a -> name a = s) all

let describe = function
  | Hp_protocol ->
      "S1: a descriptor popped from a shared freelist head must be \
       hazard-protected, re-validated by a fresh read of the head, and \
       only then dereferenced; the hazard slot is released on every path \
       (Fig. 7 SafeRead, checked flow-sensitively over the CFG)"
  | Cas_loop_progress ->
      "S2: every CAS retry loop re-reads the contended word after each \
       backedge before using it as the CAS expected value (no \
       stale-expected loops), and each labelled window commits at most \
       one result-bearing CAS"
  | Write_before_publish ->
      "S3: plain stores into a block must be ordered (Rt.fence) before \
       the CAS that publishes the block to other threads; unfenced \
       writes reachable from the CAS desired value are reported"
  | Label_dominance ->
      "S4: the registry Rt.label dominates its CAS on every CFG path \
       (upgrading the lexical R1), including calls into functions whose \
       CAS window label is a parameter (Tagged_id_stack push/pop): such \
       calls must be dominated by a registry label, carry a registry \
       label argument, or the stack must be created with a registry \
       label override"
