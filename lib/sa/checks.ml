(* The S1-S4 typestate analyses over per-function CFGs (DESIGN.md §16).

   Each analysis is a forward may-analysis: states are small finite
   lattices joined by union, so a fact like "unprotected on some path"
   survives a join and is reported. S1-S3 are per-function; S4 adds an
   interprocedural demand fixpoint so a function whose CAS window label
   is a parameter (Tagged_id_stack.push/pop) pushes the obligation to
   its call sites. *)

module SM = Map.Make (String)
module SS = Set.Make (String)
module IM = Map.Make (Int)

let finding analysis ~file ~line ~col msg =
  Mm_report.Finding.v ~rule:(Analysis.name analysis) ~file ~line ~col msg

let node_finding analysis (fn : Cfg.fn) (n : Cfg.node) msg =
  finding analysis ~file:fn.Cfg.f_file ~line:n.Cfg.n_line ~col:n.Cfg.n_col msg

(* ================================================================== *)
(* S1 hp-protocol: protect -> re-validating read -> deref; slot
   released consistently across exits.

   Per-value masks over {unprot, prot, valid}; values are only tracked
   when they derive from an atomic read of a shared cell (an opaque
   parameter is a documented gap, covered dynamically and by lint R4).
   Backedges demote valid -> prot: the slot still holds the value, but
   the validation belongs to the previous iteration. *)

let unprot = 1
let prot = 2
let valid = 4

type s1 = {
  hp : (int * string option) SM.t;  (* value key -> mask, source cell *)
  held : SS.t;  (* possibly-occupied hazard slots (by value key) *)
}

let s1_join a b =
  {
    hp =
      SM.union
        (fun _ (m1, c1) (m2, c2) ->
          Some (m1 lor m2, if c1 = None then c2 else c1))
        a.hp b.hp;
    held = SS.union a.held b.held;
  }

let s1_equal a b =
  SM.equal ( = ) a.hp b.hp && SS.equal a.held b.held

let s1_demote m = (if m land valid <> 0 then prot else 0) lor (m land (prot lor unprot))

let s1_transfer (node : Cfg.node) s =
  match node.Cfg.n_ev with
  | Cfg.Eprotect { v } ->
      let key = Cfg.value_key v in
      {
        hp = SM.add key (prot, Option.map fst (Cfg.read_source v)) s.hp;
        (* single-slot approximation: a new protect supersedes *)
        held = SS.singleton key;
      }
  | Cfg.Eclear ->
      {
        hp = SM.map (fun (_, c) -> (unprot, c)) s.hp;
        held = SS.empty;
      }
  | Cfg.Eread { cell } ->
      {
        s with
        hp =
          SM.map
            (fun (m, c) ->
              if m land prot <> 0 && c = Some cell then (valid, c) else (m, c))
            s.hp;
      }
  | _ -> s

let s1_edge kind s =
  match kind with
  | Cfg.Seq -> s
  | Cfg.Back_strong | Cfg.Back_weak ->
      { s with hp = SM.map (fun (m, c) -> (s1_demote m, c)) s.hp }

let s1_check (fn : Cfg.fn) =
  let cfg = fn.Cfg.cfg in
  let init = { hp = SM.empty; held = SS.empty } in
  let ins =
    Dataflow.fixpoint cfg ~init ~equal:s1_equal ~join:s1_join
      ~transfer:s1_transfer ~edge:s1_edge
  in
  let out = ref [] in
  Array.iteri
    (fun i node ->
      match (ins.(i), node.Cfg.n_ev) with
      | Some s, Cfg.Ederef { v; field } when Cfg.read_source v <> None -> (
          match SM.find_opt (Cfg.value_key v) s.hp with
          | None ->
              out :=
                node_finding Analysis.Hp_protocol fn node
                  (Printf.sprintf
                     "dereference of .%s on a descriptor read from a shared \
                      cell without hazard protection (protect, then \
                      re-validate with a fresh read, before dereferencing)"
                     field)
                :: !out
          | Some (m, _) ->
              if m land unprot <> 0 then
                out :=
                  node_finding Analysis.Hp_protocol fn node
                    (Printf.sprintf
                       "dereference of .%s may happen without hazard \
                        protection on some path" field)
                  :: !out
              else if m land prot <> 0 then
                out :=
                  node_finding Analysis.Hp_protocol fn node
                    (Printf.sprintf
                       "descriptor is hazard-protected but not re-validated \
                        by a fresh read of its source cell before .%s is \
                        dereferenced" field)
                  :: !out)
      | _ -> ())
    cfg.Cfg.nodes;
  (* release on every path: flag exits that may still hold a slot when
     another exit releases it *)
  let exits = Dataflow.exit_outs cfg ~transfer:s1_transfer ins in
  let holding = List.filter (fun (_, s) -> not (SS.is_empty s.held)) exits in
  let releasing = List.exists (fun (_, s) -> SS.is_empty s.held) exits in
  if releasing && holding <> [] then
    List.iter
      (fun (node, _) ->
        out :=
          node_finding Analysis.Hp_protocol fn node
            "hazard slot is released on some return paths but may still be \
             held on this one"
          :: !out)
      holding;
  !out

(* ================================================================== *)
(* S2 cas-loop-progress, two obligations:

   (a) No stale-expected loop: a result-bearing CAS retried through a
   strong backedge must take its expected value from a read inside the
   same retry cycle, or the loop can never succeed once the word has
   changed. Checked structurally: for every strong backedge, the cycle
   is the set of nodes on a forward path from the backedge target to
   its source; a used CAS in the cycle whose expected value derives
   from a read outside the cycle is stale. Inner data loops (for,
   inlined iterators, a chaining helper) are cycles that do not contain
   the CAS, so reads made before them stay fresh.

   (b) At most one result-bearing CAS per labelled window (two commits
   under one label would be two linearization points with one name).
   Helping CASes (ignore (CAS ...)) are exempt from both. *)

let l_unarmed = 1
let l_armed = 2
let l_consumed = 4

let reachable adj start n =
  let seen = Array.make n false in
  let q = Queue.create () in
  Queue.add start q;
  seen.(start) <- true;
  while not (Queue.is_empty q) do
    let i = Queue.pop q in
    List.iter
      (fun j ->
        if not seen.(j) then begin
          seen.(j) <- true;
          Queue.add j q
        end)
      adj.(i)
  done;
  seen

let s2_stale_check (fn : Cfg.fn) =
  let cfg = fn.Cfg.cfg in
  let n = Array.length cfg.Cfg.nodes in
  let fwd = Array.make n [] and rev = Array.make n [] in
  let backs = ref [] in
  Array.iter
    (fun (node : Cfg.node) ->
      List.iter
        (fun (k, j) ->
          match k with
          | Cfg.Seq ->
              fwd.(node.Cfg.n_id) <- j :: fwd.(node.Cfg.n_id);
              rev.(j) <- node.Cfg.n_id :: rev.(j)
          | Cfg.Back_strong -> backs := (node.Cfg.n_id, j) :: !backs
          | Cfg.Back_weak -> ())
        node.Cfg.n_succ)
    cfg.Cfg.nodes;
  let out = ref [] in
  List.iter
    (fun (src, head) ->
      let from_head = reachable fwd head n in
      let to_src = reachable rev src n in
      let in_cycle i = from_head.(i) && to_src.(i) in
      Array.iter
        (fun (node : Cfg.node) ->
          match node.Cfg.n_ev with
          | Cfg.Ecas { expected; used = true; cell; _ }
            when in_cycle node.Cfg.n_id -> (
              match Cfg.read_source expected with
              | Some (_, rid) when rid < n && not (in_cycle rid) ->
                  out :=
                    node_finding Analysis.Cas_loop_progress fn node
                      (Printf.sprintf
                         "CAS on %s retries with an expected value read \
                          outside the retry loop: re-read the contended \
                          word on every iteration" cell)
                    :: !out
              | _ -> ())
          | _ -> ())
        cfg.Cfg.nodes)
    !backs;
  !out

let s2_transfer (node : Cfg.node) s =
  match node.Cfg.n_ev with
  | Cfg.Elabel _ -> l_armed
  | Cfg.Ecas { used = true; _ } ->
      s land (l_unarmed lor l_consumed)
      lor (if s land l_armed <> 0 then l_consumed else 0)
  | _ -> s

let s2_edge kind s =
  match kind with
  | Cfg.Seq | Cfg.Back_weak -> s
  | Cfg.Back_strong -> l_unarmed

let s2_check (fn : Cfg.fn) =
  let cfg = fn.Cfg.cfg in
  let ins =
    Dataflow.fixpoint cfg ~init:l_unarmed ~equal:( = ) ~join:( lor )
      ~transfer:s2_transfer ~edge:s2_edge
  in
  let out = ref (s2_stale_check fn) in
  Array.iteri
    (fun i node ->
      match (ins.(i), node.Cfg.n_ev) with
      | Some s, Cfg.Ecas { used = true; _ } ->
          if s land l_consumed <> 0 then
            out :=
              node_finding Analysis.Cas_loop_progress fn node
                "second result-bearing CAS in the same labelled window: \
                 each label covers exactly one linearizing CAS"
              :: !out
      | _ -> ())
    cfg.Cfg.nodes;
  !out

(* ================================================================== *)
(* S3 write-before-publish: plain stores whose roots feed the desired
   value of a publishing CAS must be ordered by Rt.fence first. *)

let s3_transfer (node : Cfg.node) s =
  match node.Cfg.n_ev with
  | Cfg.Ewrite { roots } -> SS.union s (SS.of_list roots)
  | Cfg.Efence -> SS.empty
  | _ -> s

let s3_check (fn : Cfg.fn) =
  let cfg = fn.Cfg.cfg in
  let ins =
    Dataflow.fixpoint cfg ~init:SS.empty ~equal:SS.equal ~join:SS.union
      ~transfer:s3_transfer ~edge:(fun _ s -> s)
  in
  let out = ref [] in
  Array.iteri
    (fun i node ->
      match (ins.(i), node.Cfg.n_ev) with
      | Some s, Cfg.Ecas { cell; desired_deps; _ } ->
          let dirty = List.filter (fun r -> SS.mem r s) desired_deps in
          if dirty <> [] then
            out :=
              node_finding Analysis.Write_before_publish fn node
                (Printf.sprintf
                   "plain stores into the block being published by the CAS \
                    on %s are not ordered by Rt.fence on every path to the \
                    publish" cell)
              :: !out
      | _ -> ())
    cfg.Cfg.nodes;
  !out

(* ================================================================== *)
(* S4 label-dominance: every CAS is dominated by an Rt.label on every
   CFG path, re-established inside each retry loop. Intraprocedurally
   the armed state is a may-set over

     uentry     no label since function entry
     uback      no label since a retry backedge
     reg        dominated by a registry-constant label
     param:<p>  dominated by a label taken from parameter/field <p>
     other      dominated by a label the analysis cannot classify

   uback at a CAS is an immediate finding. uentry and param demands
   flow to call sites: the interprocedural fixpoint discharges them
   with a registry-labelled argument, a module-level create override,
   or a dominating registry label at the call site. *)

let t_uentry = "uentry"
let t_uback = "uback"
let t_reg = "reg"
let t_other = "other"
let t_param p = "param:" ^ p

let s4_transfer (node : Cfg.node) s =
  match node.Cfg.n_ev with
  | Cfg.Elabel { kind } ->
      SS.singleton
        (match kind with
        | Cfg.Kreg _ -> t_reg
        | Cfg.Kparam p -> t_param p
        | Cfg.Kother -> t_other)
  | _ -> s

let s4_edge kind s =
  match kind with
  | Cfg.Seq | Cfg.Back_weak -> s
  | Cfg.Back_strong -> SS.singleton t_uback

let param_tokens s =
  SS.fold
    (fun t acc ->
      if String.length t > 6 && String.sub t 0 6 = "param:" then
        String.sub t 6 (String.length t - 6) :: acc
      else acc)
    s []

type demand = Dentry | Dparam of string

type origin = { o_line : int; o_col : int; o_why : string }

type call = {
  c_fn : string list;
  c_labeled : (string * Cfg.lkind) list;
  c_armed : SS.t;
  c_node : Cfg.node;
}

type summary = {
  s_fn : Cfg.fn;
  s_calls : call list;
  mutable s_demands : (demand * origin) list;
}

let add_demand s d origin =
  if List.mem_assoc d s.s_demands then false
  else begin
    s.s_demands <- (d, origin) :: s.s_demands;
    true
  end

let s4_summarize (fn : Cfg.fn) =
  let cfg = fn.Cfg.cfg in
  let ins =
    Dataflow.fixpoint cfg ~init:(SS.singleton t_uentry) ~equal:SS.equal
      ~join:SS.union ~transfer:s4_transfer ~edge:s4_edge
  in
  let findings = ref [] in
  let calls = ref [] in
  let summary = { s_fn = fn; s_calls = []; s_demands = [] } in
  Array.iteri
    (fun i node ->
      match (ins.(i), node.Cfg.n_ev) with
      | Some armed, Cfg.Ecas { cell; _ } ->
          let origin why = { o_line = node.Cfg.n_line; o_col = node.Cfg.n_col; o_why = why } in
          if SS.mem t_uback armed then
            findings :=
              node_finding Analysis.Label_dominance fn node
                (Printf.sprintf
                   "CAS on %s is not dominated by an Rt.label inside its \
                    retry loop: the label must be re-established on every \
                    iteration" cell)
              :: !findings
          else begin
            if SS.mem t_uentry armed then
              ignore
                (add_demand summary Dentry
                   (origin (Printf.sprintf "CAS on %s" cell)));
            List.iter
              (fun p ->
                ignore
                  (add_demand summary (Dparam p)
                     (origin (Printf.sprintf "CAS on %s labelled by %s" cell p))))
              (param_tokens armed)
          end
      | Some armed, Cfg.Ecall { fn = c_fn; labeled } ->
          calls := { c_fn; c_labeled = labeled; c_armed = armed; c_node = node } :: !calls
      | _ -> ())
    cfg.Cfg.nodes;
  ({ summary with s_calls = List.rev !calls }, !findings)

(* --- interprocedural resolution ----------------------------------- *)

type unit_info = {
  ui_module : string;
  ui_aliases : (string * string list) list;
}

let resolve_callee ~known ~(infos : unit_info SM.t) caller_module path =
  match List.rev path with
  | [] -> None
  | name :: rev_mods -> (
      let mods = List.rev rev_mods in
      match mods with
      | [] -> Some (caller_module, name)
      | first :: rest -> (
          let expanded =
            match SM.find_opt caller_module infos with
            | Some ui -> (
                match List.assoc_opt first ui.ui_aliases with
                | Some target -> target @ rest
                | None -> mods)
            | None -> mods
          in
          (* the innermost segment naming an analyzed unit wins:
             Mm_lockfree.Tagged_id_stack -> Tagged_id_stack *)
          match
            List.fold_left
              (fun acc seg -> if SS.mem seg known then Some seg else acc)
              None expanded
          with
          | Some m -> Some (m, name)
          | None -> None))

let is_kreg = function Cfg.Kreg _ -> true | _ -> false

let s4_interproc ~(infos : unit_info SM.t) (summaries : summary list) =
  let known =
    SS.of_list (List.map (fun s -> s.s_fn.Cfg.f_unit) summaries)
  in
  let by_key = Hashtbl.create 64 in
  List.iter
    (fun s ->
      Hashtbl.replace by_key (s.s_fn.Cfg.f_unit, s.s_fn.Cfg.f_name) s)
    summaries;
  (* module-level label overrides: module M called Callee.create with
     ~p:<registry constant> somewhere, so Callee instances in M carry a
     registry label for parameter p *)
  let overrides = Hashtbl.create 16 in
  List.iter
    (fun s ->
      let m = s.s_fn.Cfg.f_unit in
      List.iter
        (fun c ->
          match
            resolve_callee ~known ~infos m c.c_fn
          with
          | Some (callee_m, "create") ->
              List.iter
                (fun (p, k) ->
                  if is_kreg k then Hashtbl.replace overrides (m, callee_m, p) ())
                c.c_labeled
          | _ -> ())
        s.s_calls)
    summaries;
  let findings = ref [] in
  let flagged = Hashtbl.create 16 in
  let flag fn node msg =
    let key = (fn.Cfg.f_file, node.Cfg.n_line, msg) in
    if not (Hashtbl.mem flagged key) then begin
      Hashtbl.replace flagged key ();
      findings := node_finding Analysis.Label_dominance fn node msg :: !findings
    end
  in
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds < 64 do
    changed := false;
    incr rounds;
    List.iter
      (fun s ->
        let m = s.s_fn.Cfg.f_unit in
        List.iter
          (fun c ->
            match resolve_callee ~known ~infos m c.c_fn with
            | None -> ()
            | Some key -> (
                match Hashtbl.find_opt by_key key with
                | None -> ()
                | Some callee ->
                    List.iter
                      (fun (d, dorigin) ->
                        let discharged =
                          match d with
                          | Dparam p ->
                              List.exists
                                (fun (n, k) -> n = p && is_kreg k)
                                c.c_labeled
                              || Hashtbl.mem overrides (m, fst key, p)
                          | Dentry -> false
                        in
                        if not discharged then begin
                          let what =
                            match d with
                            | Dparam p ->
                                Printf.sprintf
                                  "%s.%s (its %s is a label parameter)"
                                  (fst key) (snd key) p
                            | Dentry ->
                                Printf.sprintf
                                  "%s.%s (its %s relies on a label armed by \
                                   the caller)" (fst key) (snd key)
                                  dorigin.o_why
                          in
                          if SS.mem t_uback c.c_armed then
                            flag s.s_fn c.c_node
                              (Printf.sprintf
                                 "call to %s inside a retry loop without a \
                                  dominating Rt.label" what)
                          else begin
                            if SS.mem t_uentry c.c_armed then begin
                              let o =
                                {
                                  o_line = c.c_node.Cfg.n_line;
                                  o_col = c.c_node.Cfg.n_col;
                                  o_why = "call to " ^ what;
                                }
                              in
                              if add_demand s Dentry o then changed := true
                            end;
                            List.iter
                              (fun q ->
                                let o =
                                  {
                                    o_line = c.c_node.Cfg.n_line;
                                    o_col = c.c_node.Cfg.n_col;
                                    o_why = "call to " ^ what;
                                  }
                                in
                                if add_demand s (Dparam q) o then
                                  changed := true)
                              (param_tokens c.c_armed)
                          end
                        end)
                      callee.s_demands))
          s.s_calls)
      summaries
  done;
  (* Entry demands that no analyzed caller can vouch for: if nothing in
     the analyzed units calls the function at all, the obligation
     escapes to the public API and is reported at its origins. Param
     demands at roots are fine: the parameter's default is a registry
     constant. *)
  let called = Hashtbl.create 64 in
  List.iter
    (fun s ->
      List.iter
        (fun c ->
          match resolve_callee ~known ~infos s.s_fn.Cfg.f_unit c.c_fn with
          | Some key -> Hashtbl.replace called key ()
          | None -> ())
        s.s_calls)
    summaries;
  List.iter
    (fun s ->
      let key = (s.s_fn.Cfg.f_unit, s.s_fn.Cfg.f_name) in
      if not (Hashtbl.mem called key) then
        List.iter
          (fun (d, o) ->
            match d with
            | Dentry ->
                findings :=
                  finding Analysis.Label_dominance ~file:s.s_fn.Cfg.f_file
                    ~line:o.o_line ~col:o.o_col
                    (Printf.sprintf
                       "%s reaches an exported entry point %s.%s with no \
                        dominating Rt.label on some path"
                       o.o_why s.s_fn.Cfg.f_unit s.s_fn.Cfg.f_name)
                  :: !findings
            | Dparam _ -> ())
          s.s_demands)
    summaries;
  !findings

(* ================================================================== *)

let analyze ~analyses (units : Tast.unit_t list) =
  let want a = List.mem a analyses in
  let fns = List.concat_map Cfg.functions_of_unit units in
  let per_fn =
    List.concat_map
      (fun fn ->
        (if want Analysis.Hp_protocol then s1_check fn else [])
        @ (if want Analysis.Cas_loop_progress then s2_check fn else [])
        @ (if want Analysis.Write_before_publish then s3_check fn else []))
      fns
  in
  let s4 =
    if want Analysis.Label_dominance then begin
      let infos =
        List.fold_left
          (fun acc (u : Tast.unit_t) ->
            SM.add u.Tast.u_module
              {
                ui_module = u.Tast.u_module;
                ui_aliases = Cfg.collect_aliases u.Tast.u_str.str_items;
              }
              acc)
          SM.empty units
      in
      let pairs = List.map s4_summarize fns in
      let summaries = List.map fst pairs in
      List.concat_map snd pairs @ s4_interproc ~infos summaries
    end
    else []
  in
  List.sort_uniq Mm_report.Finding.compare (per_fn @ s4)

