type result = Mm_report.Output.result = {
  tool : string;
  findings : Mm_report.Finding.t list;
  suppressed : Mm_report.Finding.t list;
  errors : (string * string) list;
  files : int;
}

(* The units mm-sa analyzes by default: the allocator's lock-free core.
   Harness/check/obs code is exercised dynamically and has no
   lock-free publication protocol of its own. *)
let default_paths = [ "lib/core"; "lib/lockfree"; "lib/mem"; "lib/pages" ]

let collect ~root paths =
  let out = ref [] in
  let rec walk rel =
    let full = Filename.concat root rel in
    if Sys.is_directory full then
      Array.iter
        (fun name ->
          if name.[0] <> '.' && name <> "_build" then
            walk (Filename.concat rel name))
        (Sys.readdir full)
    else if Filename.check_suffix rel ".ml" then out := rel :: !out
  in
  List.iter
    (fun p -> if Sys.file_exists (Filename.concat root p) then walk p)
    paths;
  List.sort String.compare !out

let load ~root files =
  let units = ref [] and errors = ref [] in
  List.iter
    (fun path ->
      match Tast.load_cmt ~root path with
      | Ok u -> units := u :: !units
      | Error msg -> errors := (path, msg) :: !errors)
    files;
  (List.rev !units, List.rev !errors)

let suppressions (u : Tast.unit_t) =
  Mm_report.Suppress.scan ~marker:"mm-sa:"
    ~known:(fun tok -> Analysis.of_name tok <> None)
    u.Tast.u_text

(* Analyze already-loaded units (the label-deletion regression walk
   re-typechecks one modified unit and reuses cached .cmt loads for the
   rest, then calls this directly). *)
let analyze_units ?(analyses = Analysis.all) (units : Tast.unit_t list) =
  let findings = Checks.analyze ~analyses units in
  let by_path = List.map (fun (u : Tast.unit_t) -> (u.Tast.u_path, u)) units in
  let errors = ref [] in
  let sups_by_path =
    List.map
      (fun (u : Tast.unit_t) ->
        let sups, bad = suppressions u in
        List.iter
          (fun (line, token) ->
            errors :=
              ( u.Tast.u_path,
                Printf.sprintf
                  "line %d: mm-sa suppression names no known analysis (%s)"
                  line token )
              :: !errors)
          bad;
        (u.Tast.u_path, sups))
      units
  in
  let kept, dropped =
    List.partition
      (fun (f : Mm_report.Finding.t) ->
        match List.assoc_opt f.Mm_report.Finding.file by_path with
        | None -> true
        | Some u ->
            let sups = List.assoc f.Mm_report.Finding.file sups_by_path in
            not
              (Mm_report.Suppress.covers ~item_spans:(Cfg.item_spans u) sups f))
      findings
  in
  {
    tool = "mm-sa";
    findings = kept;
    suppressed = dropped;
    errors = List.rev !errors;
    files = List.length units;
  }

let run ~root ?(analyses = Analysis.all) ?(paths = default_paths) () =
  let files = collect ~root paths in
  let units, load_errors = load ~root files in
  let r = analyze_units ~analyses units in
  { r with errors = load_errors @ r.errors }
