(* Typed-AST access for mm-sa: loading compiler-produced .cmt files out
   of _build, re-typechecking modified sources in-process against the
   same compiled interfaces (the label-deletion walk in the tests), and
   the path utilities every analysis shares. *)

(* ------------------------------------------------------------------ *)
(* Paths. Typedtree paths are as written (module aliases like
   [module Tis = Mm_lockfree.Tagged_id_stack] are not expanded), so the
   CFG records both the flattened path and lets Summary resolve aliases
   per unit. *)

let rec flatten_path (p : Path.t) =
  match p with
  | Path.Pident id -> [ Ident.name id ]
  | Path.Pdot (p, s) -> flatten_path p @ [ s ]
  | Path.Papply (p, _) -> flatten_path p
  | Path.Pextra_ty (p, _) -> flatten_path p

let rec ends_with ~suffix path =
  let lp = List.length path and ls = List.length suffix in
  if lp < ls then false
  else if lp = ls then path = suffix
  else match path with [] -> false | _ :: tl -> ends_with ~suffix tl

let is_atomic_get fn = ends_with ~suffix:[ "Atomic"; "get" ] fn
let is_cas fn = ends_with ~suffix:[ "Atomic"; "compare_and_set" ] fn
let is_label fn = ends_with ~suffix:[ "Rt"; "label" ] fn
let is_fence fn = ends_with ~suffix:[ "Rt"; "fence" ] fn

let is_hp_protect fn =
  match List.rev fn with
  | "protect" :: m :: _ -> m = "Hp" || m = "Hazard_pointers"
  | _ -> false

let is_hp_clear fn =
  match List.rev fn with
  | "clear" :: m :: _ -> m = "Hp" || m = "Hazard_pointers"
  | _ -> false

(* Plain (non-atomic) stores into block memory: the runtime's word store
   and the store-layer initializers built on it. *)
let is_plain_write fn =
  match List.rev fn with
  | "write_word" :: _ -> true
  | name :: "Store" :: _ ->
      String.length name >= 5 && String.sub name 0 5 = "init_"
  | _ -> false

let registry_modules = [ "Labels"; "Lf_labels"; "Pg_labels" ]

(* ["Mm_core"; "Labels"; "desc_alloc"] -> Some "Labels.desc_alloc" *)
let registry_const path =
  let rec scan = function
    | m :: name :: [] when List.mem m registry_modules ->
        Some (m ^ "." ^ name)
    | _ :: rest -> scan rest
    | [] -> None
  in
  scan path

(* ------------------------------------------------------------------ *)
(* Structure of an analyzed unit. *)

type unit_t = {
  u_path : string;  (** root-relative source path, e.g. lib/core/desc_pool.ml *)
  u_module : string;  (** unqualified module name, e.g. Desc_pool *)
  u_str : Typedtree.structure;
  u_text : string;  (** source text: suppressions, item spans *)
}

let module_of_path path =
  String.capitalize_ascii (Filename.remove_extension (Filename.basename path))

(* ------------------------------------------------------------------ *)
(* Locating compiled artifacts. dune keeps each library's objects in
   _build/default/<libdir>/.<libname>.objs/byte; `dune build @check`
   produces a .cmt per module there. *)

(* The compiled artifacts live under <root>/_build/default — unless we
   are already running inside the build tree (dune rule actions, the
   @sa alias: cwd is _build/default), where root itself is the mirror
   holding the .objs dirs. *)
let build_dir ~root =
  let cand = Filename.concat root "_build/default" in
  if Sys.file_exists cand && Sys.is_directory cand then cand else root

let objs_dirs ~root =
  let build_lib = Filename.concat (build_dir ~root) "lib" in
  if not (Sys.file_exists build_lib && Sys.is_directory build_lib) then []
  else
    Array.to_list (Sys.readdir build_lib)
    |> List.concat_map (fun sub ->
           let dir = Filename.concat build_lib sub in
           if not (Sys.is_directory dir) then []
           else
             Array.to_list (Sys.readdir dir)
             |> List.filter_map (fun entry ->
                    if Filename.check_suffix entry ".objs" then
                      let byte =
                        Filename.concat (Filename.concat dir entry) "byte"
                      in
                      if Sys.file_exists byte then Some byte else None
                    else None))
    |> List.sort String.compare

(* The .cmt for a source file: search the byte dir of its own library
   for <anything>__<Module>.cmt (wrapped) or <module>.cmt (the lib's
   namesake / unwrapped). *)
let cmt_path ~root src_path =
  let dir = Filename.dirname src_path in
  let full_dir = Filename.concat (build_dir ~root) dir in
  let module_name = module_of_path src_path in
  let wrapped_suffix = "__" ^ module_name ^ ".cmt" in
  let plain = String.uncapitalize_ascii module_name ^ ".cmt" in
  if not (Sys.file_exists full_dir && Sys.is_directory full_dir) then None
  else
    let candidates = ref [] in
    Array.iter
      (fun entry ->
        if Filename.check_suffix entry ".objs" then
          let byte = Filename.concat (Filename.concat full_dir entry) "byte" in
          if Sys.file_exists byte then
            Array.iter
              (fun f ->
                if
                  Filename.check_suffix f wrapped_suffix
                  || String.lowercase_ascii f = plain
                then candidates := Filename.concat byte f :: !candidates)
              (Sys.readdir byte))
      (Sys.readdir full_dir);
    match !candidates with c :: _ -> Some c | [] -> None

let read_text full =
  let ic = open_in_bin full in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_cmt ~root src_path =
  match cmt_path ~root src_path with
  | None -> Error "no .cmt found (run `dune build @check` first)"
  | Some cmt -> (
      match Cmt_format.read_cmt cmt with
      | { cmt_annots = Implementation str; _ } ->
          Ok
            {
              u_path = src_path;
              u_module = module_of_path src_path;
              u_str = str;
              u_text = read_text (Filename.concat root src_path);
            }
      | _ -> Error (cmt ^ ": cmt holds no implementation")
      | exception exn ->
          Error (cmt ^ ": " ^ Printexc.to_string exn))

(* ------------------------------------------------------------------ *)
(* In-process re-typechecking of a (possibly modified) library source
   against the already-compiled interfaces in _build. Used by the
   label-deletion regression walk: delete a line, re-type, re-analyze.

   The unit is typed under a fresh name so it can never shadow its own
   compiled interface, and with its library's alias module opened
   (dune compiles wrapped libraries with -open). The open is prepended
   with a ghost location, so source line numbers are unchanged. *)

let lib_alias_module src_path =
  match String.split_on_char '/' src_path with
  | "lib" :: sub :: _ -> Some ("Mm_" ^ sub)
  | _ -> None

let env_ready = ref false

let prepare_env ~root =
  if not !env_ready then begin
    Clflags.include_dirs := objs_dirs ~root;
    Compmisc.init_path ();
    ignore (Warnings.parse_options false "-a");
    env_ready := true
  end

let typecheck ~root ~path text =
  prepare_env ~root;
  Env.set_unit_name "Mm_sa_retypecheck";
  match
    let lexbuf = Lexing.from_string text in
    Lexing.set_filename lexbuf path;
    let parsed = Parse.implementation lexbuf in
    let parsed =
      match lib_alias_module path with
      | None -> parsed
      | Some m ->
          let open Ast_helper in
          Str.open_
            (Opn.mk
               (Mod.ident
                  { Asttypes.txt = Longident.Lident m; loc = Location.none }))
          :: parsed
    in
    let env = Compmisc.initial_env () in
    Typemod.type_structure env parsed
  with
  | str, _, _, _, _ ->
      Ok
        {
          u_path = path;
          u_module = module_of_path path;
          u_str = str;
          u_text = text;
        }
  | exception exn -> (
      match Location.error_of_exn exn with
      | Some (`Ok e) ->
          Error
            (String.concat " "
               (String.split_on_char '\n'
                  (Format.asprintf "%a" Location.print_report e)))
      | _ -> Error (Printexc.to_string exn))
