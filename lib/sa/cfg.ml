(* Per-function control-flow graphs over the typed AST.

   Nodes carry the events the analyses reason about (atomic reads, CAS,
   labels, hazard-pointer traffic, plain stores, fences, calls); edges
   carry control flow, with backedges distinguished so the typestate
   automata can demote per-iteration facts:

   - strong backedges (while/for bodies, recursive retry loops): a new
     iteration of a CAS retry loop — read freshness and label windows
     reset;
   - weak backedges (inlined iterator lambdas: List.iter etc.): a data
     loop, not a retry loop — windows reset but an enclosing label still
     dominates every iteration (desc_pool.tagged_refill's pushes all
     belong to the caller's one labelled refill).

   Let-bound values are resolved at construction time (OCaml bindings
   are immutable, and construction follows scope), giving the analyses
   alias-aware values: an ident may name an atomic cell, the result of
   a specific read of a cell, or a pattern-extracted payload of one. *)

type lkind =
  | Kreg of string  (* registry constant: "Labels.desc_alloc" *)
  | Kparam of string  (* function parameter or record field: "pop_label" *)
  | Kother

type value =
  | Vcell of string  (* names an atomic cell, e.g. "p.head" *)
  | Vread of string * int  (* result of read node [id] on a cell *)
  | Vpayload of value  (* extracted from / wrapped over [value] *)
  | Vlabel of string  (* let-bound registry label constant *)
  | Vopaque

type ev =
  | Enop
  | Eread of { cell : string }
  | Ecas of {
      cell : string;
      expected : value;
      desired_deps : string list;
      used : bool;  (* false for ignore (CAS ...): a helping CAS *)
    }
  | Elabel of { kind : lkind }
  | Eprotect of { v : value }
  | Eclear
  | Ederef of { v : value; field : string }
  | Ewrite of { roots : string list }
  | Efence
  | Ecall of { fn : string list; labeled : (string * lkind) list }

type ekind = Seq | Back_strong | Back_weak

type node = {
  n_id : int;
  mutable n_ev : ev;  (* ignore (CAS ...) downgrades the node in place *)
  n_line : int;
  n_col : int;
  mutable n_succ : (ekind * int) list;
}

type t = { nodes : node array; entry : int; exits : int list }

type fn = {
  f_unit : string;  (* unqualified module name, e.g. "Desc_pool" *)
  f_file : string;
  f_name : string;
  cfg : t;
}

(* ------------------------------------------------------------------ *)

let value_key v =
  let rec go = function
    | Vcell c -> "cell:" ^ c
    | Vread (c, n) -> Printf.sprintf "read:%s:%d" c n
    | Vpayload v -> "pay:" ^ go v
    | Vlabel l -> "lab:" ^ l
    | Vopaque -> "opaque"
  in
  go v

let rec read_source = function
  | Vread (c, n) -> Some (c, n)
  | Vpayload v -> read_source v
  | _ -> None

(* ------------------------------------------------------------------ *)

(* [Typedtree] also defines a type called [value] (the pattern
   category); alias ours before opening it. *)
type avalue = value

open Typedtree

type ctx = {
  mutable nodes : node list;  (* reversed *)
  mutable n : int;
  venv : (string, avalue) Hashtbl.t;  (* Ident.unique_name -> value *)
  denv : (string, string list) Hashtbl.t;  (* ident -> dep roots *)
  fenv : (string, local_fn) Hashtbl.t;  (* local functions (inlined) *)
  mutable params : (string * string) list;  (* unique name -> source name *)
  mutable active : (string * int) list;  (* rec inlines -> entry node *)
  mutable depth : int;
}

and local_fn = { lf_expr : expression; lf_uniq : string }

let fresh_node ctx ev (loc : Location.t) preds =
  let id = ctx.n in
  ctx.n <- id + 1;
  let node =
    {
      n_id = id;
      n_ev = ev;
      n_line = loc.loc_start.pos_lnum;
      n_col = loc.loc_start.pos_cnum - loc.loc_start.pos_bol;
      n_succ = [];
    }
  in
  ctx.nodes <- node :: ctx.nodes;
  List.iter (fun p -> p.n_succ <- (Seq, id) :: p.n_succ) preds;
  node

let connect kind (src : node) (dst : node) =
  src.n_succ <- (kind, dst.n_id) :: src.n_succ

(* ------------------------------------------------------------------ *)
(* Expression utilities. *)

let rec strip e =
  match e.exp_desc with
  | Texp_open (_, e') -> strip e'
  | _ -> e

let ident_path e =
  match (strip e).exp_desc with
  | Texp_ident (p, _, _) -> Some (Tast.flatten_path p)
  | _ -> None

(* Free identifiers of an expression (deep), as unique names. *)
let free_idents e =
  let acc = ref [] in
  let it =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.exp_desc with
          | Texp_ident (Path.Pident id, _, _) ->
              acc := Ident.unique_name id :: !acc
          | _ -> ());
          Tast_iterator.default_iterator.expr self e);
    }
  in
  it.expr it e;
  !acc

let dep_roots ctx e =
  List.sort_uniq String.compare
    (List.concat_map
       (fun u -> match Hashtbl.find_opt ctx.denv u with
         | Some roots -> roots
         | None -> [ u ])
       (free_idents e))

let is_array_get fn =
  Tast.ends_with ~suffix:[ "Array"; "get" ] fn
  || Tast.ends_with ~suffix:[ "Array"; "unsafe_get" ] fn

(* A stable name for the atomic cell an expression denotes. *)
let rec cell_key ctx e =
  let e = strip e in
  match e.exp_desc with
  | Texp_ident (Path.Pident id, _, _) -> (
      let u = Ident.unique_name id in
      match Hashtbl.find_opt ctx.venv u with
      | Some (Vcell c) -> Some c
      | _ -> Some u)
  | Texp_ident (p, _, _) -> Some (String.concat "." (Tast.flatten_path p))
  | Texp_field (b, _, lbl) -> (
      match cell_key ctx b with
      | Some k -> Some (k ^ "." ^ lbl.Types.lbl_name)
      | None -> None)
  | Texp_apply (f, [ (_, Some a); (_, Some i) ]) -> (
      match ident_path f with
      | Some fn when is_array_get fn -> (
          match (cell_key ctx a, cell_key ctx i) with
          | Some ka, Some ki -> Some (ka ^ ".(" ^ ki ^ ")")
          | Some ka, None -> Some (ka ^ ".(?)")
          | _ -> None)
      | _ -> None)
  | _ -> None

(* Classify an expression used as an Rt.label argument (or a labelled
   argument at a call site). *)
let label_kind ctx e =
  let e = strip e in
  let e =
    (* optional args arrive wrapped: ~l:(Some x) *)
    match e.exp_desc with
    | Texp_construct (_, { Types.cstr_name = "Some"; _ }, [ x ]) -> x
    | _ -> e
  in
  match e.exp_desc with
  | Texp_ident (Path.Pident id, _, _) -> (
      let u = Ident.unique_name id in
      match Hashtbl.find_opt ctx.venv u with
      | Some (Vlabel r) -> Kreg r
      | _ -> (
          match List.assoc_opt u ctx.params with
          | Some src -> Kparam src
          | None -> Kother))
  | Texp_ident (p, _, _) -> (
      match Tast.registry_const (Tast.flatten_path p) with
      | Some r -> Kreg r
      | None -> Kother)
  | Texp_field (_, _, lbl) -> Kparam lbl.Types.lbl_name
  | _ -> Kother

(* Iterator-style higher-order functions whose function argument we
   inline as a (weak) loop at the call point. *)
let hof_iterators =
  [
    [ "List"; "iter" ]; [ "List"; "iteri" ]; [ "List"; "map" ];
    [ "List"; "fold_left" ]; [ "List"; "fold_right" ]; [ "List"; "filter" ];
    [ "Array"; "iter" ]; [ "Array"; "iteri" ]; [ "Array"; "init" ];
    [ "Array"; "map" ]; [ "Option"; "iter" ]; [ "Option"; "map" ];
  ]

let is_hof fn = List.exists (fun s -> Tast.ends_with ~suffix:s fn) hof_iterators

(* ------------------------------------------------------------------ *)
(* Pattern binding. *)

let rec bind_pat : type k. ctx -> avalue -> k general_pattern -> unit =
 fun ctx v pat ->
  match pat.pat_desc with
  | Tpat_var (id, _) ->
      Hashtbl.replace ctx.venv (Ident.unique_name id) v;
      Hashtbl.replace ctx.denv (Ident.unique_name id)
        (match v with
        | Vread (c, _) | Vcell c -> [ c ]
        | _ -> [ Ident.unique_name id ])
  | Tpat_alias (p, id, _) ->
      Hashtbl.replace ctx.venv (Ident.unique_name id) v;
      bind_pat ctx v p
  | Tpat_construct (_, _, ps, _) ->
      List.iter (bind_pat ctx (Vpayload v)) ps
  | Tpat_variant (_, po, _) -> Option.iter (bind_pat ctx (Vpayload v)) po
  | Tpat_tuple ps | Tpat_array ps ->
      List.iter (bind_pat ctx (Vpayload v)) ps
  | Tpat_record (fields, _) ->
      List.iter (fun (_, _, p) -> bind_pat ctx (Vpayload v) p) fields
  | Tpat_lazy p -> bind_pat ctx (Vpayload v) p
  | Tpat_or (a, b, _) ->
      bind_pat ctx v a;
      bind_pat ctx v b
  | Tpat_value arg -> bind_pat ctx v (arg :> value general_pattern)
  | Tpat_exception p -> bind_pat ctx Vopaque p
  | Tpat_any | Tpat_constant _ -> ()

let bind_params ctx pat =
  (* a top-level function parameter: opaque, but remembered by name so
     Rt.label arguments that are parameters classify as Kparam *)
  let ids = pat_bound_idents pat in
  List.iter
    (fun id ->
      Hashtbl.replace ctx.venv (Ident.unique_name id) Vopaque;
      ctx.params <- (Ident.unique_name id, Ident.name id) :: ctx.params)
    ids

(* ------------------------------------------------------------------ *)
(* The walk: returns the CFG frontier after the expression and the
   abstract value the expression evaluates to. *)

let rec walk ctx preds e : node list * avalue =
  let e = strip e in
  let loc = e.exp_loc in
  match e.exp_desc with
  | Texp_ident (Path.Pident id, _, _) -> (
      let u = Ident.unique_name id in
      match Hashtbl.find_opt ctx.venv u with
      | Some v -> (preds, v)
      | None -> (preds, Vopaque))
  | Texp_ident (p, _, _) -> (
      let path = Tast.flatten_path p in
      match Tast.registry_const path with
      | Some r -> (preds, Vlabel r)
      | None -> (preds, Vopaque))
  | Texp_constant _ | Texp_unreachable | Texp_extension_constructor _ ->
      (preds, Vopaque)
  | Texp_function _ ->
      (* a lambda in value position: analyzed only if later inlined *)
      (preds, Vopaque)
  | Texp_let (rf, vbs, body) ->
      let preds = walk_bindings ctx preds rf vbs in
      walk ctx preds body
  | Texp_sequence (a, b) ->
      let preds, _ = walk ctx preds a in
      walk ctx preds b
  | Texp_ifthenelse (c, t, eo) ->
      let cpreds, _ = walk ctx preds c in
      let tpreds, _ = walk ctx cpreds t in
      let epreds =
        match eo with
        | Some el -> fst (walk ctx cpreds el)
        | None -> cpreds
      in
      (tpreds @ epreds, Vopaque)
  | Texp_match (scrut, cases, _) ->
      let spreds, sv = walk ctx preds scrut in
      let exits =
        List.concat_map
          (fun case ->
            (match split_pattern case.c_lhs with
            | Some vp, _ -> bind_pat ctx sv vp
            | None, _ -> ());
            (match case.c_lhs.pat_desc with
            | Tpat_exception p -> bind_pat ctx Vopaque p
            | _ -> ());
            let gpreds =
              match case.c_guard with
              | Some g -> fst (walk ctx spreds g)
              | None -> spreds
            in
            fst (walk ctx gpreds case.c_rhs))
          cases
      in
      (exits, Vopaque)
  | Texp_try (body, handlers) ->
      let bpreds, bv = walk ctx preds body in
      let hexits =
        List.concat_map
          (fun case ->
            bind_pat ctx Vopaque case.c_lhs;
            fst (walk ctx (preds @ bpreds) case.c_rhs))
          handlers
      in
      (bpreds @ hexits, bv)
  | Texp_while (cond, body) ->
      let head = fresh_node ctx Enop loc preds in
      let cpreds, _ = walk ctx [ head ] cond in
      let bexits, _ = walk ctx cpreds body in
      List.iter (fun b -> connect Back_strong b head) bexits;
      (cpreds, Vopaque)
  | Texp_for (_, _, lo, hi, _, body) ->
      (* a counted loop is a data traversal, not a CAS retry cycle:
         weak, like an inlined iterator lambda (retry loops in this
         codebase are recursive calls or while loops) *)
      let preds, _ = walk ctx preds lo in
      let preds, _ = walk ctx preds hi in
      let head = fresh_node ctx Enop loc preds in
      let bexits, _ = walk ctx [ head ] body in
      List.iter (fun b -> connect Back_weak b head) bexits;
      ([ head ], Vopaque)
  | Texp_construct (_, _, args) ->
      let preds, vs = walk_list ctx preds args in
      let v =
        match vs with [ v ] when v <> Vopaque -> Vpayload v | _ -> Vopaque
      in
      (preds, v)
  | Texp_variant (_, eo) -> (
      match eo with Some e -> walk ctx preds e | None -> (preds, Vopaque))
  | Texp_tuple es | Texp_array es ->
      let preds, _ = walk_list ctx preds es in
      (preds, Vopaque)
  | Texp_record { fields; extended_expression; _ } ->
      let preds =
        match extended_expression with
        | Some e -> fst (walk ctx preds e)
        | None -> preds
      in
      let preds =
        Array.fold_left
          (fun preds (_, def) ->
            match def with
            | Overridden (_, e) -> fst (walk ctx preds e)
            | Kept _ -> preds)
          preds fields
      in
      (preds, Vopaque)
  | Texp_field (b, _, lbl) ->
      let preds, bv = walk ctx preds b in
      let name = lbl.Types.lbl_name in
      let preds =
        if name = "next_d" then
          [ fresh_node ctx (Ederef { v = bv; field = name }) loc preds ]
        else preds
      in
      let v =
        match cell_key ctx b with
        | Some k -> Vcell (k ^ "." ^ name)
        | None -> Vopaque
      in
      (preds, v)
  | Texp_setfield (b, _, _, v) ->
      let preds, _ = walk ctx preds b in
      let preds, _ = walk ctx preds v in
      let roots = dep_roots ctx b in
      ([ fresh_node ctx (Ewrite { roots }) loc preds ], Vopaque)
  | Texp_assert (e, _) | Texp_lazy e ->
      let preds, _ = walk ctx preds e in
      (preds, Vopaque)
  | Texp_apply (f, args) -> walk_apply ctx preds e f args
  | Texp_letmodule (_, _, _, _, body) -> walk ctx preds body
  | Texp_letexception (_, body) -> walk ctx preds body
  | Texp_letop { let_; ands; body; _ } ->
      let preds, _ = walk ctx preds let_.bop_exp in
      let preds =
        List.fold_left
          (fun preds bop -> fst (walk ctx preds bop.bop_exp))
          preds ands
      in
      let exits = fst (walk ctx preds body.c_rhs) in
      (exits, Vopaque)
  | _ -> (walk_children ctx preds e, Vopaque)

and walk_bindings ctx preds rf vbs =
  List.fold_left
    (fun preds vb ->
      match (vb.vb_pat.pat_desc, vb.vb_expr.exp_desc) with
      | Tpat_var (id, _), Texp_function _ ->
          (* local function: registered for call-site inlining *)
          Hashtbl.replace ctx.fenv (Ident.unique_name id)
            { lf_expr = vb.vb_expr; lf_uniq = Ident.unique_name id };
          ignore rf;
          preds
      | _ ->
          let preds', v = walk ctx preds vb.vb_expr in
          bind_pat ctx v vb.vb_pat;
          List.iter
            (fun id ->
              Hashtbl.replace ctx.denv (Ident.unique_name id)
                (dep_roots ctx vb.vb_expr))
            (pat_bound_idents vb.vb_pat);
          (* keep direct value aliases precise *)
          (match vb.vb_pat.pat_desc with
          | Tpat_var (id, _) when v <> Vopaque ->
              Hashtbl.replace ctx.venv (Ident.unique_name id) v
          | _ -> ());
          preds')
    preds vbs

and walk_list ctx preds es =
  let preds, rvs =
    List.fold_left
      (fun (preds, vs) e ->
        let preds, v = walk ctx preds e in
        (preds, v :: vs))
      (preds, []) es
  in
  (preds, List.rev rvs)

(* Fallback for constructs with no dedicated case: visit the immediate
   sub-expressions in declaration order. *)
and walk_children ctx preds e =
  let children = ref [] in
  let shallow =
    {
      Tast_iterator.default_iterator with
      expr = (fun _ c -> children := c :: !children);
    }
  in
  Tast_iterator.default_iterator.expr shallow e;
  List.fold_left
    (fun preds c -> fst (walk ctx preds c))
    preds (List.rev !children)

(* Inline a lambda argument of an iterator HOF as a weak loop: the body
   may run any number of times, but an enclosing label still dominates
   every iteration. *)
and inline_weak_loop ctx preds lam =
  let head = fresh_node ctx Enop lam.exp_loc preds in
  let rec peel e =
    match (strip e).exp_desc with
    | Texp_function { cases; _ } ->
        List.concat_map
          (fun case ->
            bind_pat ctx Vopaque case.c_lhs;
            peel case.c_rhs)
          cases
    | _ -> [ e ]
  in
  let bodies = peel lam in
  let bexits =
    List.concat_map (fun body -> fst (walk ctx [ head ] body)) bodies
  in
  List.iter (fun b -> connect Back_weak b head) bexits;
  head :: bexits

(* Inline a local function at a call site, binding parameters to the
   argument values. Recursive self-calls become strong backedges. *)
and inline_local ctx preds lf argvals loc =
  match List.assoc_opt lf.lf_uniq ctx.active with
  | Some entry_id ->
      (* recursive call: a retry-loop backedge *)
      let call = fresh_node ctx Enop loc preds in
      let entry = List.find (fun n -> n.n_id = entry_id) ctx.nodes in
      connect Back_strong call entry;
      [ call ]
  | None ->
      if ctx.depth > 40 then (
        ignore (argvals);
        preds)
      else begin
        ctx.depth <- ctx.depth + 1;
        let entry = fresh_node ctx Enop loc preds in
        ctx.active <- (lf.lf_uniq, entry.n_id) :: ctx.active;
        let rec apply preds e argvals =
          match ((strip e).exp_desc, argvals) with
          | Texp_function { cases = [ c ]; _ }, v :: rest ->
              bind_pat ctx v c.c_lhs;
              apply preds c.c_rhs rest
          | Texp_function { cases; _ }, v :: _ ->
              (* multi-case parameter (function ...): branch per case *)
              List.concat_map
                (fun case ->
                  bind_pat ctx v case.c_lhs;
                  fst (walk ctx preds case.c_rhs))
                cases
          | Texp_let (rf, vbs, body), _ :: _ ->
              (* defaults of optional parameters, between layers *)
              apply (walk_bindings ctx preds rf vbs) body argvals
          | _, _ -> fst (walk ctx preds e)
        in
        let exits = apply [ entry ] lf.lf_expr argvals in
        ctx.active <- List.remove_assoc lf.lf_uniq ctx.active;
        ctx.depth <- ctx.depth - 1;
        exits
      end

and walk_apply ctx preds e f args =
  let loc = e.exp_loc in
  let fn = match ident_path f with Some p -> p | None -> [] in
  (* ignore (CAS ...) marks a helping CAS *)
  if Tast.ends_with ~suffix:[ "ignore" ] fn then begin
    let preds, _ = walk_args ctx preds args in
    (match ctx.nodes with
    | ({ n_ev = Ecas c; _ } as n) :: _ ->
        n.n_ev <- Ecas { c with used = false }
    | _ -> ());
    (preds, Vopaque)
  end
  else if Tast.is_atomic_get fn then begin
    match args with
    | [ (_, Some cell_e) ] ->
        let preds, _ = walk ctx preds cell_e in
        let cell =
          match cell_key ctx cell_e with
          | Some k -> k
          | None -> Printf.sprintf "anon:%d" ctx.n
        in
        let node = fresh_node ctx (Eread { cell }) loc preds in
        ([ node ], Vread (cell, node.n_id))
    | _ ->
        let preds, _ = walk_args ctx preds args in
        (preds, Vopaque)
  end
  else if Tast.is_cas fn then begin
    match args with
    | [ (_, Some cell_e); (_, Some exp_e); (_, Some des_e) ] ->
        let preds, _ = walk ctx preds cell_e in
        let preds, expected = walk ctx preds exp_e in
        let preds, _ = walk ctx preds des_e in
        let cell =
          match cell_key ctx cell_e with
          | Some k -> k
          | None -> Printf.sprintf "anon:%d" ctx.n
        in
        let desired_deps = dep_roots ctx des_e in
        let node =
          fresh_node ctx
            (Ecas { cell; expected; desired_deps; used = true })
            loc preds
        in
        ([ node ], Vopaque)
    | _ ->
        let preds, _ = walk_args ctx preds args in
        (preds, Vopaque)
  end
  else if Tast.is_label fn then begin
    let kind =
      match args with
      | [ _; (_, Some lab_e) ] -> label_kind ctx lab_e
      | _ -> Kother
    in
    let preds, _ = walk_args ctx preds args in
    ([ fresh_node ctx (Elabel { kind }) loc preds ], Vopaque)
  end
  else if Tast.is_fence fn then begin
    let preds, _ = walk_args ctx preds args in
    ([ fresh_node ctx Efence loc preds ], Vopaque)
  end
  else if Tast.is_hp_protect fn then begin
    let preds, vs = walk_args ctx preds args in
    (* the protected value is the last positional argument *)
    let v =
      match
        List.filter_map
          (fun ((l : Asttypes.arg_label), v) ->
            match l with Asttypes.Nolabel -> Some v | _ -> None)
          vs
      with
      | [] -> Vopaque
      | l -> List.nth l (List.length l - 1)
    in
    ([ fresh_node ctx (Eprotect { v }) loc preds ], Vopaque)
  end
  else if Tast.is_hp_clear fn then begin
    let preds, _ = walk_args ctx preds args in
    ([ fresh_node ctx Eclear loc preds ], Vopaque)
  end
  else if Tast.is_plain_write fn then begin
    let preds, _ = walk_args ctx preds args in
    let roots =
      List.concat_map
        (fun (l, a) ->
          match (l, a) with
          | Asttypes.Nolabel, Some a -> dep_roots ctx a
          | _ -> [])
        args
    in
    ( [ fresh_node ctx (Ewrite { roots = List.sort_uniq compare roots }) loc
          preds ],
      Vopaque )
  end
  else begin
    (* local function known for inlining? *)
    let local =
      match (strip f).exp_desc with
      | Texp_ident (Path.Pident id, _, _) ->
          Hashtbl.find_opt ctx.fenv (Ident.unique_name id)
      | _ -> None
    in
    match local with
    | Some lf when List.for_all (fun (_, a) -> a <> None) args ->
        let preds, vs = walk_args ctx preds args in
        let argvals = List.map snd vs in
        (inline_local ctx preds lf argvals loc, Vopaque)
    | _ ->
        let inline_lambdas = is_hof fn in
        let preds =
          if fn = [] then fst (walk ctx preds f) else preds
        in
        let preds, vs =
          List.fold_left
            (fun (preds, vs) ((l : Asttypes.arg_label), arg) ->
              match arg with
              | None -> (preds, vs)
              | Some a -> (
                  match (strip a).exp_desc with
                  | Texp_function _ when inline_lambdas ->
                      (inline_weak_loop ctx preds a, (l, Vopaque) :: vs)
                  | _ ->
                      let preds, v = walk ctx preds a in
                      (preds, (l, v) :: vs)))
            (preds, []) args
        in
        ignore vs;
        let labeled =
          List.filter_map
            (fun ((l : Asttypes.arg_label), arg) ->
              match (l, arg) with
              | (Asttypes.Labelled name | Asttypes.Optional name), Some a ->
                  Some (name, label_kind ctx a)
              | _ -> None)
            args
        in
        if fn = [] then (preds, Vopaque)
        else ([ fresh_node ctx (Ecall { fn; labeled }) loc preds ], Vopaque)
  end

and walk_args ctx preds args =
  List.fold_left
    (fun (preds, vs) (l, arg) ->
      match arg with
      | None -> (preds, vs)
      | Some a ->
          let preds, v = walk ctx preds a in
          (preds, vs @ [ (l, v) ]))
    (preds, []) args

(* ------------------------------------------------------------------ *)
(* Top-level functions of a unit. *)

let build_function ~unit_name ~file ~name ?self expr =
  let ctx =
    {
      nodes = [];
      n = 0;
      venv = Hashtbl.create 64;
      denv = Hashtbl.create 64;
      fenv = Hashtbl.create 8;
      params = [];
      active = [];
      depth = 0;
    }
  in
  let entry = fresh_node ctx Enop expr.exp_loc [] in
  (* A top-level [let rec] retries by calling itself: register it so
     self-calls become strong backedges to the function entry. *)
  (match self with
  | Some uniq ->
      Hashtbl.replace ctx.fenv uniq { lf_expr = expr; lf_uniq = uniq };
      ctx.active <- [ (uniq, entry.n_id) ]
  | None -> ());
  (* Peel curried parameters. Optional arguments with defaults compile
     to lets interleaved between the function layers
     (fun ?(x=e) y -> b  ==>  fun *opt* -> let x = ... in fun y -> b),
     so the peel walks through lets whose body is still a function. *)
  let rec eventually_function e =
    match (strip e).exp_desc with
    | Texp_function _ -> true
    | Texp_let (_, _, body) -> eventually_function body
    | _ -> false
  in
  let rec peel preds e =
    match (strip e).exp_desc with
    | Texp_function { cases = [ c ]; _ } when c.c_guard = None ->
        bind_params ctx c.c_lhs;
        peel preds c.c_rhs
    | Texp_function { cases; _ } ->
        List.concat_map
          (fun case ->
            bind_params ctx case.c_lhs;
            fst (walk ctx preds case.c_rhs))
          cases
    | Texp_let (rf, vbs, body) when eventually_function body ->
        let preds = walk_bindings ctx preds rf vbs in
        peel preds body
    | _ -> fst (walk ctx preds e)
  in
  let exits = peel [ entry ] expr in
  let arr = Array.make ctx.n entry in
  List.iter (fun n -> arr.(n.n_id) <- n) ctx.nodes;
  {
    f_unit = unit_name;
    f_file = file;
    f_name = name;
    cfg =
      {
        nodes = arr;
        entry = entry.n_id;
        exits = List.map (fun n -> n.n_id) exits;
      };
  }

let is_function e =
  match (strip e).exp_desc with Texp_function _ -> true | _ -> false

(* Module aliases declared in a unit: [module Tis = Mm_lockfree.X] or,
   inside a functor body, [module Tis = Mm_lockfree.X.Make (Rt)]. The
   [Make (Rt : RUNTIME)] wrapper (DESIGN.md §18) is transparent: its
   body's aliases keep their bare names, because that is how the body's
   own functions spell them at call sites. *)
let rec collect_aliases items =
  List.concat_map
    (fun item ->
      match item.str_desc with
      | Tstr_module mb -> alias_of_binding mb
      | Tstr_recmodule mbs -> List.concat_map alias_of_binding mbs
      | _ -> [])
    items

and alias_of_binding mb =
  match (mb.mb_id, mb.mb_expr.mod_desc) with
  | Some id, Tmod_ident (p, _) -> [ (Ident.name id, Tast.flatten_path p) ]
  | Some id, Tmod_apply _ -> (
      (* A functor application aliases the applied head:
         [module Hp = Mm_lockfree.Hazard_pointers.Make (Rt)] maps Hp to
         Mm_lockfree.Hazard_pointers.Make. Summary resolution keeps the
         innermost segment naming an analyzed unit, so the trailing
         functor name is harmless. *)
      match applied_head mb.mb_expr with
      | Some p -> [ (Ident.name id, p) ]
      | None -> [])
  | Some id, Tmod_structure str ->
      List.map
        (fun (a, p) -> (Ident.name id ^ "." ^ a, p))
        (collect_aliases str.str_items)
  | Some _, Tmod_functor (_, body) -> collect_aliases (body_items body)
  | Some _, Tmod_constraint (m, _, _, _) ->
      alias_of_binding { mb with mb_expr = m }
  | _ -> []

and applied_head me =
  match me.mod_desc with
  | Tmod_ident (p, _) -> Some (Tast.flatten_path p)
  | Tmod_apply (f, _, _) -> applied_head f
  | Tmod_constraint (m, _, _, _) -> applied_head m
  | _ -> None

(* Structure items of a module expression, looking through functor
   abstraction and signature constraints. *)
and body_items me =
  match me.mod_desc with
  | Tmod_structure s -> s.str_items
  | Tmod_functor (_, body) -> body_items body
  | Tmod_constraint (m, _, _, _) -> body_items m
  | _ -> []

let functions_of_unit (u : Tast.unit_t) =
  let rec of_items prefix items =
    List.concat_map
      (fun item ->
        match item.str_desc with
        | Tstr_value (rf, vbs) ->
            List.filter_map
              (fun vb ->
                match vb.vb_pat.pat_desc with
                | Tpat_var (id, _) when is_function vb.vb_expr ->
                    let self =
                      match rf with
                      | Asttypes.Recursive -> Some (Ident.unique_name id)
                      | Asttypes.Nonrecursive -> None
                    in
                    Some
                      (build_function ~unit_name:u.Tast.u_module
                         ~file:u.Tast.u_path
                         ~name:(prefix ^ Ident.name id)
                         ?self vb.vb_expr)
                | _ -> None)
              vbs
        | Tstr_module { mb_id = Some id; mb_expr; _ } ->
            (* A plain nested module prefixes its functions' names. A
               functor wrapper — the [Make (Rt : RUNTIME)] specialization
               idiom (DESIGN.md §18) — is transparent instead, so
               [Tagged_id_stack]'s pop summarizes under the bare key
               (Tagged_id_stack, "pop") that interprocedural demand
               resolution looks up. *)
            let rec descend me =
              match me.mod_desc with
              | Tmod_structure s ->
                  of_items (prefix ^ Ident.name id ^ ".") s.str_items
              | Tmod_functor (_, body) -> of_items prefix (body_items body)
              | Tmod_constraint (m, _, _, _) -> descend m
              | _ -> []
            in
            descend mb_expr
        | _ -> [])
      items
  in
  of_items "" u.Tast.u_str.str_items

(* Line spans of top-level structure items (suppression scoping). *)
let item_spans (u : Tast.unit_t) =
  List.map
    (fun item ->
      ( item.str_loc.Location.loc_start.pos_lnum,
        item.str_loc.Location.loc_end.pos_lnum ))
    u.Tast.u_str.str_items
