(** A mixed-size churn workload straddling the large-allocation
    threshold (shbench-style slot churn, biased toward blocks the
    superblock machinery refuses). The paper's six benchmarks never
    leave the size-class range, so the one-mmap-per-large-block OS
    traffic of Fig. 4 lines 2-3 goes unmeasured by them; this workload
    makes it the dominant cost, which is what the page-manager ablation
    (DESIGN.md §15) and the CI large-mmap gate measure. *)

type params = {
  slots : int;  (** live blocks per thread *)
  rounds : int;  (** operations per thread *)
  small_size : int;  (** small requests are drawn from [8, small_size] *)
  max_size : int;  (** large requests from (threshold, max_size] *)
  large_frac : int;  (** percentage of mallocs that go large, [0, 100] *)
  seed : int;
}

val default : params
val quick : params

val run :
  Mm_mem.Alloc_intf.instance -> threads:int -> params -> Metrics.t
