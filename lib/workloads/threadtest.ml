open Mm_runtime
open Mm_mem.Alloc_intf

type params = { iterations : int; blocks : int; size : int }

let default = { iterations = 100; blocks = 100_000; size = 8 }
let quick = { iterations = 10; blocks = 500; size = 8 }

let run instance ~threads p =
  let rt = instance_rt instance in
  let body _tid =
    let addrs = Array.make p.blocks 0 in
    for _ = 1 to p.iterations do
      for i = 0 to p.blocks - 1 do
        addrs.(i) <- instance_malloc instance p.size
      done;
      for i = 0 to p.blocks - 1 do
        instance_free instance addrs.(i)
      done
    done
  in
  let run = Rt.parallel_run rt (Array.make threads body) in
  Metrics.make ~workload:"threadtest" ~instance ~threads
    ~ops:(threads * p.iterations * p.blocks)
    ~run ()
