open Mm_runtime
open Mm_mem.Alloc_intf

type params = {
  slots : int;
  rounds : int;
  min_size : int;
  max_size : int;
  seed : int;
}

let default =
  { slots = 256; rounds = 100_000; min_size = 8; max_size = 1_000; seed = 17 }

let quick = { default with slots = 32; rounds = 2_000 }

let run instance ~threads p =
  let rt = instance_rt instance in
  let body tid =
    let rng = Prng.create (p.seed + (tid * 101)) in
    let slots = Array.make p.slots 0 in
    for _ = 1 to p.rounds do
      let i = Prng.int rng p.slots in
      let choice = Prng.int rng 3 in
      if slots.(i) = 0 then
        slots.(i) <- instance_malloc instance (Prng.int_in rng p.min_size p.max_size)
      else if choice = 0 then begin
        instance_free instance slots.(i);
        slots.(i) <- 0
      end
      else
        slots.(i) <-
          Mm_mem.Alloc_ops.realloc instance slots.(i)
            (Prng.int_in rng p.min_size p.max_size)
    done;
    Array.iter (fun a -> if a <> 0 then instance_free instance a) slots
  in
  let run = Rt.parallel_run rt (Array.init threads (fun i _ -> body i)) in
  Metrics.make ~workload:"shbench" ~instance ~threads
    ~ops:(threads * p.rounds) ~run ()
