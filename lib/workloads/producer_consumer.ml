open Mm_runtime
open Mm_mem.Alloc_intf
module Msq_r = Mm_lockfree.Ms_queue.Make (Mm_runtime.Real_rt)
module Msq_s = Mm_lockfree.Ms_queue.Make (Mm_runtime.Sim_rt)

(* Value-level dispatch over the two specialized queue instantiations:
   the task queue is workload infrastructure, not allocator hot path,
   so one variant match per queue operation is fine (it is exactly what
   the old dispatched runtime paid). *)
module Backoff_r = Mm_lockfree.Backoff.Make (Mm_runtime.Real_rt)
module Backoff_s = Mm_lockfree.Backoff.Make (Mm_runtime.Sim_rt)

module Backoff = struct
  type t = Rb of Backoff_r.t | Sb of Backoff_s.t

  let create rt =
    match Rt.sim rt with
    | None -> Rb (Backoff_r.create ())
    | Some s -> Sb (Backoff_s.create s)

  let reset = function Rb b -> Backoff_r.reset b | Sb b -> Backoff_s.reset b
  let once = function Rb b -> Backoff_r.once b | Sb b -> Backoff_s.once b
end

module Msq = struct
  type 'a t = Rq of 'a Msq_r.t | Sq of 'a Msq_s.t

  let create rt =
    match Rt.sim rt with
    | None -> Rq (Msq_r.create ())
    | Some s -> Sq (Msq_s.create s)

  let enqueue q v = match q with Rq q -> Msq_r.enqueue q v | Sq q -> Msq_s.enqueue q v
  let dequeue = function Rq q -> Msq_r.dequeue q | Sq q -> Msq_s.dequeue q
  let is_empty = function Rq q -> Msq_r.is_empty q | Sq q -> Msq_s.is_empty q
end

type params = {
  tasks : int;
  work : int;
  db_size : int;
  set_min : int;
  set_max : int;
  queue_cap : int;
  seed : int;
}

let default =
  {
    tasks = 100_000;
    work = 750;
    db_size = 1_000_000;
    set_min = 10;
    set_max = 20;
    queue_cap = 1000;
    seed = 11;
  }

let quick = { default with tasks = 400; db_size = 10_000; queue_cap = 50 }

let with_work p work = { p with work }

(* A task in flight: the three blocks the producer allocated plus the
   index count. Indexes live in [idx_block]. *)
type task = { task_block : int; idx_block : int; node_block : int; k : int }

let cost_per_index = 20

(* One unit of the paper's [work] parameter corresponds to one iteration
   of Threadtest-like local work — several machine instructions. With 25
   cycles per unit, the producer/consumer cost ratio puts the knee of
   Fig. 8(f) (work=500) near 13 processors, as in the paper. *)
let work_scale = 25

let run instance ~threads p =
  if threads < 1 then invalid_arg "Producer_consumer.run: threads >= 1";
  let rt = instance_rt instance in
  let db =
    let rng = Prng.create p.seed in
    Array.init p.db_size (fun _ -> Prng.int rng 1024)
  in
  let queue : task Msq.t = Msq.create rt in
  let qlen = Rt.Atomic.make rt 0 in
  let producing_done = Rt.Atomic.make rt 0 in
  let consumed = Rt.Atomic.make rt 0 in
  let process task =
    (* Histograms over the database for the task's indexes. *)
    let acc = ref 0 in
    for w = 0 to task.k - 1 do
      let word = instance_read_word instance (task.idx_block + (8 * (w / 2))) in
      let idx = (if w land 1 = 0 then word land 0xFFFFFFFF else word lsr 32)
                mod p.db_size in
      acc := !acc + db.(idx);
      Rt.work rt cost_per_index
    done;
    (* Task-local work proportional to the [work] parameter. *)
    Rt.work rt (p.work * work_scale);
    (* Consumer side: 1 malloc + 4 frees. *)
    let hist_block = instance_malloc instance 64 in
    instance_write_word instance hist_block !acc;
    instance_free instance hist_block;
    instance_free instance task.idx_block;
    instance_free instance task.task_block;
    instance_free instance task.node_block;
    Rt.Atomic.incr consumed
  in
  let try_consume () =
    match Msq.dequeue queue with
    | Some task ->
        ignore (Rt.Atomic.fetch_and_add qlen (-1));
        process task;
        true
    | None -> false
  in
  let producer _tid =
    let rng = Prng.create (p.seed + 1) in
    for _ = 1 to p.tasks do
      let k = Prng.int_in rng p.set_min p.set_max in
      (* Block of matching size recording the indexes (4 bytes each). *)
      let idx_block = instance_malloc instance (4 * k) in
      for w = 0 to ((k + 1) / 2) - 1 do
        let lo = Prng.int rng p.db_size in
        let hi = Prng.int rng p.db_size in
        instance_write_word instance
          (idx_block + (8 * w))
          (lo lor (hi lsl 32))
      done;
      let task_block = instance_malloc instance 32 in
      instance_write_word instance task_block k;
      let node_block = instance_malloc instance 16 in
      Msq.enqueue queue { task_block; idx_block; node_block; k };
      let len = Rt.Atomic.fetch_and_add qlen 1 + 1 in
      (* Help the consumers when the queue grows too long. *)
      if len > p.queue_cap then ignore (try_consume ())
    done;
    Rt.Atomic.set producing_done 1;
    (* Drain whatever remains (also covers threads = 1). *)
    while try_consume () do () done
  in
  let consumer _tid =
    let b = Backoff.create rt in
    let rec loop () =
      if try_consume () then begin
        Backoff.reset b;
        loop ()
      end
      else if Rt.Atomic.get producing_done = 0 || not (Msq.is_empty queue)
      then begin
        Backoff.once b;
        loop ()
      end
    in
    loop ()
  in
  let bodies =
    Array.init threads (fun i -> if i = 0 then producer else consumer)
  in
  let run = Rt.parallel_run rt bodies in
  assert (Rt.Atomic.get consumed = p.tasks);
  Metrics.make ~workload:"producer-consumer" ~instance ~threads ~ops:p.tasks
    ~run ()
