open Mm_runtime
open Mm_mem.Alloc_intf

type params = {
  pairs : int;
  size : int;
  writes_per_byte : int;
  passive : bool;
}

let default_active =
  { pairs = 10_000; size = 8; writes_per_byte = 1_000; passive = false }

let default_passive = { default_active with passive = true }

let quick_active =
  { pairs = 300; size = 8; writes_per_byte = 100; passive = false }

let quick_passive = { quick_active with passive = true }

let run instance ~threads p =
  let rt = instance_rt instance in
  (* Passive variant: thread 0 allocates everyone's first block up front;
     each thread frees its handed block before proceeding. *)
  let handed =
    if p.passive then
      Array.init threads (fun _ -> instance_malloc instance p.size)
    else [||]
  in
  let body tid =
    if p.passive then instance_free instance handed.(tid);
    for _ = 1 to p.pairs do
      let a = instance_malloc instance p.size in
      instance_write_payload_round instance a ~len:p.size
        ~times:p.writes_per_byte;
      instance_free instance a
    done
  in
  let run = Rt.parallel_run rt (Array.make threads body) in
  Metrics.make
    ~workload:(if p.passive then "passive-false" else "active-false")
    ~instance ~threads
    ~ops:(threads * p.pairs)
    ~run ()
