open Mm_runtime
open Mm_mem.Alloc_intf

type params = {
  slots : int;
  rounds : int;
  small_size : int;
  max_size : int;
  large_frac : int;
  seed : int;
}

let default =
  {
    slots = 64;
    rounds = 50_000;
    small_size = 256;
    max_size = 32 * 1024;
    large_frac = 50;
    seed = 23;
  }

let quick = { default with slots = 16; rounds = 2_000 }

let run instance ~threads p =
  let rt = instance_rt instance in
  let threshold =
    (* Straddle the superblock/large boundary of the shared class table
       regardless of the instance's sbsize: the default table's largest
       superblock-served payload. *)
    Mm_mem.Size_class.large_threshold (Mm_mem.Size_class.make ())
  in
  let body tid =
    let rng = Prng.create (p.seed + (tid * 131)) in
    let slots = Array.make p.slots 0 in
    for _ = 1 to p.rounds do
      let i = Prng.int rng p.slots in
      if slots.(i) <> 0 then begin
        instance_free instance slots.(i);
        slots.(i) <- 0
      end
      else begin
        let sz =
          if Prng.int rng 100 < p.large_frac then
            (* Large path: just past the threshold up to [max_size]. *)
            Prng.int_in rng (threshold + 1) p.max_size
          else Prng.int_in rng 8 p.small_size
        in
        let a = instance_malloc instance sz in
        instance_write_payload_round instance a ~len:(min sz 64) ~times:1;
        slots.(i) <- a
      end
    done;
    Array.iter (fun a -> if a <> 0 then instance_free instance a) slots
  in
  let run = Rt.parallel_run rt (Array.init threads (fun i _ -> body i)) in
  Metrics.make ~workload:"large-alloc" ~instance ~threads
    ~ops:(threads * p.rounds) ~run ()
