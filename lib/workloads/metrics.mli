(** Result record produced by every workload run. *)

type t = {
  workload : string;
  allocator : string;
  runtime : string;  (** "real" or "sim" *)
  threads : int;
  ops : int;  (** total work units completed (workload-defined) *)
  elapsed : float;  (** wall seconds (real) or virtual seconds (sim) *)
  throughput : float;  (** ops per second *)
  space : Mm_mem.Space.snapshot;
  os : Mm_mem.Store.os_stats;
  sim : Mm_runtime.Sim.counters option;
  obs : Mm_obs.Agg.t option;
      (** per-site event counters ([Mm_obs]), when the run was traced *)
}

val make :
  ?obs:Mm_obs.Agg.t ->
  workload:string ->
  instance:Mm_mem.Alloc_intf.instance ->
  threads:int ->
  ops:int ->
  run:Mm_runtime.Rt.run_result ->
  unit ->
  t

val pp : Format.formatter -> t -> unit

val speedup : t -> baseline:t -> float
(** Throughput ratio against a baseline run (the paper's
    "speedup over contention-free libc malloc"). *)
