open Mm_runtime
open Mm_mem.Alloc_intf

type event =
  | Malloc of { id : int; size : int; thread : int }
  | Free of { id : int; thread : int }

type t = { events : event array; threads : int; mallocs : int }

(* Size mixture: mostly small, some medium, a few large (beyond the
   size-class threshold). *)
let pick_size rng =
  let r = Prng.int rng 100 in
  if r < 80 then Prng.int_in rng 8 128
  else if r < 95 then Prng.int_in rng 128 2_040
  else Prng.int_in rng 2_041 16_384

let generate ?(seed = 1) ?(threads = 4) ?(ops = 2_000) ?(live_target = 200)
    ?(cross_thread_fraction = 0.3) () =
  if threads < 1 then invalid_arg "Trace.generate: threads";
  let rng = Prng.create seed in
  let events = ref [] in
  let live = ref [] in
  (* (id, allocating thread) *)
  let n_live = ref 0 in
  let next_id = ref 0 in
  let emit_malloc () =
    let id = !next_id in
    incr next_id;
    let thread = Prng.int rng threads in
    events := Malloc { id; size = pick_size rng; thread } :: !events;
    live := (id, thread) :: !live;
    incr n_live
  in
  let emit_free () =
    match !live with
    | [] -> ()
    | l ->
        let i = Prng.int rng (List.length l) in
        let id, owner = List.nth l i in
        live := List.filteri (fun j _ -> j <> i) l;
        decr n_live;
        let thread =
          if Prng.float rng 1.0 < cross_thread_fraction then
            Prng.int rng threads
          else owner
        in
        events := Free { id; thread } :: !events
  in
  for _ = 1 to ops do
    (* Drift toward the live target. *)
    let p_malloc =
      if !n_live >= 2 * live_target then 0.1
      else if !n_live <= live_target / 2 then 0.9
      else 0.5
    in
    if !n_live = 0 || Prng.float rng 1.0 < p_malloc then emit_malloc ()
    else emit_free ()
  done;
  (* Drain: free everything still live. *)
  while !live <> [] do
    emit_free ()
  done;
  { events = Array.of_list (List.rev !events); threads; mallocs = !next_id }

let to_string t =
  let buf = Buffer.create (Array.length t.events * 12) in
  Buffer.add_string buf
    (Printf.sprintf "trace %d %d %d\n" t.threads t.mallocs
       (Array.length t.events));
  Array.iter
    (fun e ->
      match e with
      | Malloc { id; size; thread } ->
          Buffer.add_string buf (Printf.sprintf "M %d %d %d\n" id size thread)
      | Free { id; thread } ->
          Buffer.add_string buf (Printf.sprintf "F %d %d\n" id thread))
    t.events;
  Buffer.contents buf

let of_string s =
  match String.split_on_char '\n' (String.trim s) with
  | [] -> failwith "Trace.of_string: empty"
  | header :: lines ->
      let threads, mallocs, n =
        match String.split_on_char ' ' header with
        | [ "trace"; a; b; c ] ->
            (int_of_string a, int_of_string b, int_of_string c)
        | _ -> failwith "Trace.of_string: bad header"
      in
      let events =
        List.map
          (fun line ->
            match String.split_on_char ' ' line with
            | [ "M"; id; size; thread ] ->
                Malloc
                  {
                    id = int_of_string id;
                    size = int_of_string size;
                    thread = int_of_string thread;
                  }
            | [ "F"; id; thread ] ->
                Free { id = int_of_string id; thread = int_of_string thread }
            | _ -> failwith ("Trace.of_string: bad event: " ^ line))
          (List.filter (fun l -> l <> "") lines)
      in
      if List.length events <> n then
        failwith "Trace.of_string: event count mismatch";
      { events = Array.of_list events; threads; mallocs }

let max_live t =
  let live = ref 0 and peak = ref 0 in
  Array.iter
    (fun e ->
      (match e with
      | Malloc _ -> incr live
      | Free _ -> decr live);
      if !live > !peak then peak := !live)
    t.events;
  !peak

let total_bytes t =
  Array.fold_left
    (fun acc e -> match e with Malloc { size; _ } -> acc + size | Free _ -> acc)
    0 t.events

let run instance t =
  let rt = instance_rt instance in
  (* Published payload addresses, indexed by block id; 0 = not yet
     allocated. Atomics give replay the needed publish/wait semantics. *)
  let table = Array.init t.mallocs (fun _ -> Rt.Atomic.make rt 0) in
  let per_thread = Array.make t.threads [] in
  Array.iter
    (fun e ->
      let th = match e with Malloc { thread; _ } | Free { thread; _ } -> thread in
      per_thread.(th) <- e :: per_thread.(th))
    t.events;
  let per_thread = Array.map List.rev per_thread in
  let body tid =
    List.iter
      (fun e ->
        match e with
        | Malloc { id; size; _ } ->
            Rt.Atomic.set table.(id) (instance_malloc instance size)
        | Free { id; _ } ->
            (* The allocating thread may not have got there yet. *)
            let rec wait () =
              let a = Rt.Atomic.get table.(id) in
              if a = 0 then begin
                Rt.yield rt;
                wait ()
              end
              else a
            in
            instance_free instance (wait ()))
      per_thread.(tid)
  in
  let run = Rt.parallel_run rt (Array.init t.threads (fun i _ -> body i)) in
  Metrics.make ~workload:"trace" ~instance ~threads:t.threads
    ~ops:(Array.length t.events) ~run ()
