open Mm_runtime

type t = {
  workload : string;
  allocator : string;
  runtime : string;
  threads : int;
  ops : int;
  elapsed : float;
  throughput : float;
  space : Mm_mem.Space.snapshot;
  os : Mm_mem.Store.os_stats;
  sim : Sim.counters option;
  obs : Mm_obs.Agg.t option;
      (* per-site event counters, when the run was traced *)
}

let make ?obs ~workload ~instance ~threads ~ops ~run () =
  let open Mm_mem.Alloc_intf in
  let elapsed = run.Rt.elapsed in
  {
    workload;
    allocator = instance_name instance;
    runtime = Rt.name (instance_rt instance);
    threads;
    ops;
    elapsed;
    throughput = (if elapsed > 0.0 then float_of_int ops /. elapsed else 0.0);
    space = instance_space instance;
    os = instance_os_stats instance;
    sim = (match run.Rt.sim_result with
          | Some r -> Some r.Sim.counters
          | None -> None);
    obs;
  }

let pp fmt t =
  Format.fprintf fmt
    "%-16s %-9s %-4s t=%-2d ops=%-9d elapsed=%.6fs thr=%.3e ops/s peak=%dKB"
    t.workload t.allocator t.runtime t.threads t.ops t.elapsed t.throughput
    (t.space.Mm_mem.Space.mapped_peak / 1024)

let speedup t ~baseline =
  if baseline.throughput > 0.0 then t.throughput /. baseline.throughput
  else 0.0
