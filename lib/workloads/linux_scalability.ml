open Mm_runtime
open Mm_mem.Alloc_intf

type params = { pairs : int; size : int }

let default = { pairs = 10_000_000; size = 8 }
let quick = { pairs = 10_000; size = 8 }

let run instance ~threads p =
  let rt = instance_rt instance in
  let body _tid =
    for _ = 1 to p.pairs do
      let a = instance_malloc instance p.size in
      instance_free instance a
    done
  in
  let run = Rt.parallel_run rt (Array.make threads body) in
  Metrics.make ~workload:"linux-scalability" ~instance ~threads
    ~ops:(threads * p.pairs) ~run ()
