open Mm_runtime
open Mm_mem.Alloc_intf

type params = {
  slots_per_thread : int;
  min_size : int;
  max_size : int;
  rounds : int;
  seed : int;
}

let default =
  { slots_per_thread = 1024; min_size = 16; max_size = 80;
    rounds = 100_000; seed = 7 }

let quick = { default with slots_per_thread = 64; rounds = 2_000 }

let run instance ~threads p =
  let rt = instance_rt instance in
  let rand_size rng = Prng.int_in rng p.min_size p.max_size in
  (* Warmup (paper: one thread allocates and frees random blocks in
     random order), then hand each thread its slots. *)
  let warmup_rng = Prng.create p.seed in
  let warm =
    Array.init (4 * p.slots_per_thread) (fun _ ->
        instance_malloc instance (rand_size warmup_rng))
  in
  Prng.shuffle warmup_rng warm;
  Array.iter (instance_free instance) warm;
  let slots =
    Array.init threads (fun _ ->
        Array.init p.slots_per_thread (fun _ ->
            instance_malloc instance (rand_size warmup_rng)))
  in
  let body tid =
    let rng = Prng.create (p.seed + (1000 * (tid + 1))) in
    let mine = slots.(tid) in
    for _ = 1 to p.rounds do
      let slot = Prng.int rng p.slots_per_thread in
      instance_free instance mine.(slot);
      mine.(slot) <- instance_malloc instance (rand_size rng)
    done
  in
  let run = Rt.parallel_run rt (Array.make threads body) in
  (* Drain so invariants can be checked by callers. *)
  Array.iter (fun arr -> Array.iter (instance_free instance) arr) slots;
  Metrics.make ~workload:"larson" ~instance ~threads
    ~ops:(threads * p.rounds) ~run ()
