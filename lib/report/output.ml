(* One report schema for every static-analysis tool (mm-lint, mm-sa):
   the same summary line, text rendering and JSON shape, so CI and the
   doc-check harness consume both tools identically. *)

type result = {
  tool : string;
  findings : Finding.t list;
  suppressed : Finding.t list;
  errors : (string * string) list;  (* path, message *)
  files : int;
}

let summary r =
  Printf.sprintf "%d finding%s, %d suppressed, %d error%s, %d files scanned"
    (List.length r.findings)
    (if List.length r.findings = 1 then "" else "s")
    (List.length r.suppressed)
    (List.length r.errors)
    (if List.length r.errors = 1 then "" else "s")
    r.files

let text fmt r =
  List.iter
    (fun (path, msg) -> Format.fprintf fmt "%s: error: %s@." path msg)
    r.errors;
  List.iter (fun f -> Format.fprintf fmt "%a@." Finding.pp f) r.findings;
  if r.findings = [] && r.errors = [] then
    Format.fprintf fmt "%s: clean (%s)@." r.tool (summary r)
  else Format.fprintf fmt "%s: %s@." r.tool (summary r)

(* ------------------------------------------------------------------ *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let finding_json (f : Finding.t) =
  Printf.sprintf {|{"rule":"%s","file":"%s","line":%d,"col":%d,"message":"%s"}|}
    (json_escape f.Finding.rule)
    (json_escape f.Finding.file)
    f.Finding.line f.Finding.col
    (json_escape f.Finding.message)

let json fmt r =
  let list xs f = String.concat "," (List.map f xs) in
  Format.fprintf fmt
    {|{"version":1,"tool":"%s","files_scanned":%d,"clean":%b,"findings":[%s],"suppressed":[%s],"errors":[%s]}@.|}
    (json_escape r.tool) r.files
    (r.findings = [] && r.errors = [])
    (list r.findings finding_json)
    (list r.suppressed finding_json)
    (list r.errors (fun (path, msg) ->
         Printf.sprintf {|{"file":"%s","message":"%s"}|} (json_escape path)
           (json_escape msg)))
