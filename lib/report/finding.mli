(** A located diagnostic shared by every static-analysis tool in the
    repository (mm-lint, mm-sa). *)

type t = {
  rule : string;  (** registered rule / analysis name *)
  file : string;  (** root-relative source path *)
  line : int;
  col : int;
  message : string;
}

val v : rule:string -> file:string -> line:int -> col:int -> string -> t
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
