(** One report schema for every static-analysis tool (mm-lint, mm-sa). *)

type result = {
  tool : string;  (** "mm-lint" / "mm-sa"; appears in text and JSON *)
  findings : Finding.t list;
  suppressed : Finding.t list;
  errors : (string * string) list;  (** (path, message) *)
  files : int;  (** files scanned *)
}

val summary : result -> string
val text : Format.formatter -> result -> unit
val json : Format.formatter -> result -> unit
