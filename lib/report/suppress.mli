(** In-source suppression comments shared by mm-lint and mm-sa:
    [(* <marker> allow <rule>: <reason> *)]. *)

type t = { sup_rule : string; sup_line : int; sup_reason : string option }

val scan :
  marker:string ->
  known:(string -> bool) ->
  string ->
  t list * (int * string) list
(** [scan ~marker ~known text] returns the recognized suppressions and
    the [(line, token)] pairs whose token names no known rule (an error
    at the tool level: typos must not silently fail to suppress). *)

val covers : item_spans:(int * int) list -> t list -> Finding.t -> bool
(** Whether any suppression covers the finding. A suppression covers its
    rule from the comment's line to the end of the enclosing top-level
    item ([item_spans] are [(start_line, end_line)] per item); a comment
    between items covers the following item. *)
