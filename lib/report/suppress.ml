(* In-source suppression comments, shared by mm-lint and mm-sa:

       (* <marker> allow <rule> *)
       (* <marker> allow <rule>: <reason> *)

   where <marker> is the tool's tag ("mm-lint:" / "mm-sa:"). The scan is
   textual — comments are not in any AST. A marker not followed by
   "allow" plus a non-empty rule token is not a suppression attempt,
   which keeps prose mentions of the syntax (docs, the tools' own
   sources) inert — but a non-empty token naming no known rule is an
   error, so typos cannot silently fail to suppress. *)

type t = { sup_rule : string; sup_line : int; sup_reason : string option }

let is_token_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '-' || c = '_'

let line_of_offset text off =
  let n = ref 1 in
  for i = 0 to off - 1 do
    if text.[i] = '\n' then incr n
  done;
  !n

let scan ~marker ~known text =
  let ok = ref [] and bad = ref [] in
  let len = String.length text in
  let rec find from =
    match
      if from >= len then None
      else
        let rec at i =
          if i + String.length marker > len then None
          else if String.sub text i (String.length marker) = marker then Some i
          else at (i + 1)
        in
        at from
    with
    | None -> ()
    | Some i ->
        let j = ref (i + String.length marker) in
        while !j < len && (text.[!j] = ' ' || text.[!j] = '\t') do
          incr j
        done;
        let line = line_of_offset text i in
        (if !j + 5 <= len && String.sub text !j 5 = "allow" then begin
           j := !j + 5;
           while !j < len && (text.[!j] = ' ' || text.[!j] = '\t') do
             incr j
           done;
           let start = !j in
           while !j < len && is_token_char text.[!j] do
             incr j
           done;
           let token = String.sub text start (!j - start) in
           if token = "" then ()
           else if known token then
             let reason =
               if !j < len && text.[!j] = ':' then
                 let rs = !j + 1 in
                 let re = ref rs in
                 while
                   !re + 1 < len
                   && not (text.[!re] = '*' && text.[!re + 1] = ')')
                 do
                   incr re
                 done;
                 Some (String.trim (String.sub text rs (!re - rs)))
               else None
             in
             ok := { sup_rule = token; sup_line = line; sup_reason = reason } :: !ok
           else bad := (line, token) :: !bad
         end);
        find !j
  in
  find 0;
  (List.rev !ok, List.rev !bad)

(* A suppression covers findings of its rule from the comment's line to
   the end of the enclosing top-level item; a comment between items
   covers the following item. This keeps a suppression adjacent to the
   code it excuses — it can never silence a whole file. *)

let range (spans : (int * int) list) line =
  match List.find_opt (fun (s, e) -> s <= line && line <= e) spans with
  | Some (_, e) -> Some (line, e)
  | None -> (
      match List.find_opt (fun (s, _) -> s > line) spans with
      | Some (s, e) -> Some (s, e)
      | None -> None)

let covers ~item_spans (sups : t list) (f : Finding.t) =
  List.exists
    (fun s ->
      s.sup_rule = f.Finding.rule
      &&
      match range item_spans s.sup_line with
      | Some (lo, hi) -> lo <= f.Finding.line && f.Finding.line <= hi
      | None -> false)
    sups
