(* A located diagnostic shared by every static-analysis tool in the
   repository (mm-lint, mm-sa). The rule is carried as its registered
   name so one report schema serves tools with different rule types. *)

type t = {
  rule : string;
  file : string;
  line : int;
  col : int;
  message : string;
}

let v ~rule ~file ~line ~col message = { rule; file; line; col; message }

let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c else String.compare a.rule b.rule

let pp fmt t =
  Format.fprintf fmt "%s:%d:%d: [%s] %s" t.file t.line t.col t.rule t.message
