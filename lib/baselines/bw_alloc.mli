(** Comparison target "bw": a Blelloch–Wei-style constant-time
    fixed-size allocator (arXiv:2008.04296, see PAPERS.md and
    docs/RECLAMATION.md).

    Per thread and size class, a private allocation list and a private
    free list of at most B = 16 blocks (plain O(1) pointer pops/pushes,
    no atomics), balanced through one shared lock-free Treiber stack of
    exactly-B-block batches: an empty allocation list adopts the
    thread's own free list, else steals a batch from the shared stack
    (one CAS per B operations), else carves a fresh superblock. A free
    list reaching B blocks is published as a batch in one CAS. Blocks
    are identified by a size-class id in the 8-byte prefix — no
    descriptors, no reclamation, and superblocks are never unmapped:
    the scheme trades bounded space for constant time, the opposite
    corner of the design space from the paper's
    credit/anchor machinery. Implements
    {!Mm_mem.Alloc_intf.ALLOCATOR}. *)

module Make (Rt : Mm_runtime.Runtime_intf.S) : sig
  type t

  val name : string
  val create : Rt.t -> Mm_mem.Alloc_config.t -> t
  val malloc : t -> int -> int
  val free : t -> int -> unit
  val usable_size : t -> int -> int
  val store : t -> Mm_mem.Store.Make(Rt).t
  val rt : t -> Rt.t

  val instance : ?name:string -> Mm_runtime.Rt.t -> t -> Mm_mem.Alloc_intf.instance

  val op_counts : t -> int * int
  (** Total (mallocs, frees) issued so far (striped; quiescent reads). *)

  val check_invariants : t -> unit
  (** Quiescent: every free block on exactly one null-terminated chain of
      its bookkept length; shared batches hold exactly B blocks. *)
end
