module Make (Rt : Mm_runtime.Runtime_intf.S) = struct
  (* Blelloch & Wei's constant-time fixed-size allocation scheme, scaled
     down to a comparison allocator: per thread and size class, a private
     allocation list and a private free list of at most B blocks each
     (plain field writes, O(1), no atomics), balanced through one shared
     lock-free Treiber stack of exactly-B-block batches. Every malloc and
     free is O(1) except the 1-in-B batch hand-offs (one stack CAS) and
     the carving of a fresh superblock when the whole system is out of
     blocks. The class prefix is written once per block at carve time and
     never again — free blocks link through their *payload* words, so the
     malloc hot path is a single link read with no store write. A batch
     may mix blocks of many superblocks; superblocks are never returned
     to the OS (the scheme trades space for constant time, like the
     reuse-in-place descriptor pool it accompanies — DESIGN.md §17). *)

  module Cfg = Mm_mem.Alloc_config
  module Store = Mm_mem.Store.Make (Rt)
  module Addr = Mm_mem.Addr
  module Sc = Mm_mem.Size_class
  module Prefix = Mm_mem.Block_prefix
  module Ts = Mm_lockfree.Treiber_stack.Make (Rt)

  type t = {
    rt : Rt.t;
    store : Store.t;
    classes : Sc.t;
    nclasses : int;
    batch : int array;  (* B per size class *)
    shared : int Ts.t array;  (* per class: heads of exactly-B-block batches *)
    (* Private lists, indexed tid * nclasses + sc; heads are block base
       addresses chained through the blocks' own words, Addr.null = empty. *)
    alloc_head : int array;
    alloc_len : int array;
    free_head : int array;
    free_len : int array;
    mallocs : int array;
    frees : int array;
  }

  let name = "bw"

  (* Batch size B: the constant that bounds both the private lists and the
     amortization period of the shared-stack CAS. *)
  let batch_cap = 16

  let create rt (cfg : Cfg.t) =
    let classes = Sc.make ~sbsize:cfg.sbsize () in
    let nclasses = Sc.count classes in
    {
      rt;
      store =
        Store.create rt ~capacity:cfg.store_capacity ~sbsize:cfg.sbsize
          ~hyperblocks:cfg.hyperblocks ();
      classes;
      nclasses;
      batch =
        Array.init nclasses (fun sc ->
            min batch_cap (Sc.blocks_per_superblock classes sc));
      shared = Array.init nclasses (fun _ -> Ts.create rt);
      alloc_head = Array.make (Rt.max_threads * nclasses) Addr.null;
      alloc_len = Array.make (Rt.max_threads * nclasses) 0;
      free_head = Array.make (Rt.max_threads * nclasses) Addr.null;
      free_len = Array.make (Rt.max_threads * nclasses) 0;
      mallocs = Array.make Rt.max_threads 0;
      frees = Array.make Rt.max_threads 0;
    }

  let rt t = t.rt
  let store t = t.store

  (* Carve a fresh superblock into batches: the first batch (plus the
     sub-B remainder) becomes the thread's allocation list, the other
     full batches go on the shared stack. O(maxcount), amortized over the
     maxcount allocations it enables — exactly init_free_list's cost in
     the other allocators. Each block's class prefix is stamped here,
     once, for its whole life; the free-list links live one word past it
     (the payload word), so neither malloc nor free ever rewrites the
     prefix. *)
  let link_off = Prefix.prefix_bytes

  let carve t k sc =
    let sz = Sc.block_size t.classes sc in
    let maxcount = Sc.blocks_per_superblock t.classes sc in
    let b = t.batch.(sc) in
    let sb = Store.alloc_superblock t.store in
    let addr i = sb + (i * sz) in
    for i = 0 to maxcount - 1 do
      Store.write_word t.store (addr i) (Prefix.small ~desc_id:(sc + 1))
    done;
    let chain lo hi =
      (* link blocks [lo, hi] in address order, null-terminated *)
      for i = lo to hi - 1 do
        Store.write_word t.store (addr i + link_off) (addr (i + 1))
      done;
      Store.write_word t.store (addr hi + link_off) Addr.null
    in
    let full = maxcount / b in
    if full = 0 then begin
      chain 0 (maxcount - 1);
      t.alloc_head.(k) <- addr 0;
      t.alloc_len.(k) <- maxcount
    end
    else begin
      for j = 1 to full - 1 do
        chain (j * b) ((j * b) + b - 1);
        Ts.push t.shared.(sc) (addr (j * b))
      done;
      let rem = maxcount - (full * b) in
      chain 0 (b - 1);
      if rem > 0 then begin
        chain (full * b) (maxcount - 1);
        (* splice the remainder behind the kept batch *)
        Store.write_word t.store (addr (b - 1) + link_off) (addr (full * b))
      end;
      t.alloc_head.(k) <- addr 0;
      t.alloc_len.(k) <- b + rem
    end

  let refill t k sc =
    if t.free_len.(k) > 0 then begin
      (* cheapest source: adopt the thread's own free list wholesale *)
      t.alloc_head.(k) <- t.free_head.(k);
      t.alloc_len.(k) <- t.free_len.(k);
      t.free_head.(k) <- Addr.null;
      t.free_len.(k) <- 0
    end
    else
      match Ts.pop t.shared.(sc) with
      | Some head ->
          t.alloc_head.(k) <- head;
          t.alloc_len.(k) <- t.batch.(sc)
      | None -> carve t k sc

  let large_malloc t n =
    let len = n + Prefix.prefix_bytes in
    let base = Store.alloc_large t.store ~len in
    Store.write_word t.store base (Prefix.large ~total_len:len);
    base + Prefix.prefix_bytes

  let malloc t n =
    if n < 0 then invalid_arg "Bw_alloc.malloc: negative size";
    let tid = Rt.self t.rt in
    t.mallocs.(tid) <- t.mallocs.(tid) + 1;
    match Sc.class_of_request t.classes n with
    | None -> large_malloc t n
    | Some sc ->
        let k = (tid * t.nclasses) + sc in
        if t.alloc_len.(k) = 0 then refill t k sc;
        let base = t.alloc_head.(k) in
        (* the prefix was stamped at carve time; just unlink and return *)
        t.alloc_head.(k) <- Store.read_word t.store (base + link_off);
        t.alloc_len.(k) <- t.alloc_len.(k) - 1;
        base + Prefix.prefix_bytes

  let free t payload =
    if payload = Addr.null then ()
    else begin
      let tid = Rt.self t.rt in
      t.frees.(tid) <- t.frees.(tid) + 1;
      let payload, prefix, _ = Store.resolve t.store payload in
      let base = payload - Prefix.prefix_bytes in
      if Prefix.is_large prefix then Store.free_large t.store base
      else begin
        let sc = Prefix.desc_id prefix - 1 in
        if sc < 0 || sc >= t.nclasses then
          invalid_arg "Bw_alloc.free: corrupt block prefix";
        let k = (tid * t.nclasses) + sc in
        Store.write_word t.store (base + link_off) t.free_head.(k);
        t.free_head.(k) <- base;
        t.free_len.(k) <- t.free_len.(k) + 1;
        if t.free_len.(k) = t.batch.(sc) then begin
          (* exactly B blocks: publish the batch in one CAS *)
          Ts.push t.shared.(sc) t.free_head.(k);
          t.free_head.(k) <- Addr.null;
          t.free_len.(k) <- 0
        end
      end
    end

  let usable_size t payload =
    let _, prefix, delta = Store.resolve t.store payload in
    let base =
      if Prefix.is_large prefix then
        Prefix.large_len prefix - Prefix.prefix_bytes
      else begin
        let sc = Prefix.desc_id prefix - 1 in
        if sc < 0 || sc >= t.nclasses then
          invalid_arg "Bw_alloc.usable_size: corrupt block prefix";
        Sc.block_size t.classes sc - Prefix.prefix_bytes
      end
    in
    base - delta

  let op_counts t =
    (Array.fold_left ( + ) 0 t.mallocs, Array.fold_left ( + ) 0 t.frees)

  let fail fmt = Format.kasprintf failwith fmt

  (* Quiescent: every free block is on exactly one list, every chain is
     null-terminated with the bookkept length, every shared batch holds
     exactly B blocks, and every free block still carries the class
     prefix stamped at carve time (links go through the payload word, so
     a list operation that clobbered a prefix is a bug). *)
  let check_invariants t =
    let seen : (int, string) Hashtbl.t = Hashtbl.create 256 in
    let walk src ~sc head expect =
      let n = ref 0 in
      let cur = ref head in
      while !cur <> Addr.null do
        (match Hashtbl.find_opt seen !cur with
        | Some prev -> fail "block %d on both %s and %s" !cur prev src
        | None -> Hashtbl.add seen !cur src);
        let prefix = Store.read_word t.store !cur in
        if prefix <> Prefix.small ~desc_id:(sc + 1) then
          fail "%s: block %d prefix clobbered (class %d)" src !cur sc;
        incr n;
        if !n > expect then fail "%s: chain longer than bookkept %d" src expect;
        cur := Store.read_word t.store (!cur + link_off)
      done;
      if !n <> expect then fail "%s: chain has %d blocks, bookkept %d" src !n expect
    in
    for sc = 0 to t.nclasses - 1 do
      List.iteri
        (fun i head ->
          walk (Printf.sprintf "shared[%d]#%d" sc i) ~sc head t.batch.(sc))
        (Ts.to_list t.shared.(sc))
    done;
    for k = 0 to Array.length t.alloc_head - 1 do
      let sc = k mod t.nclasses in
      walk (Printf.sprintf "alloc[%d]" k) ~sc t.alloc_head.(k) t.alloc_len.(k);
      walk (Printf.sprintf "free[%d]" k) ~sc t.free_head.(k) t.free_len.(k)
    done

  module Pack = Mm_mem.Alloc_intf.Pack (Rt)

  let instance ?name:(n = name) vrt t =
    Pack.make ~name:n ~rt:vrt ~store:(store t) ~malloc:(malloc t)
      ~free:(free t) ~usable_size:(usable_size t)
      ~check:(fun () -> check_invariants t)
end
