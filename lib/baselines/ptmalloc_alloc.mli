(** Ptmalloc-style baseline: serial heaps ("arenas") each behind one lock;
    malloc trylocks its last arena, sweeps the others, and creates new
    arenas when all are busy; free locks the owning arena (paper §2.2). *)

module Make (Rt : Mm_runtime.Runtime_intf.S) : sig
  type t

  val name : string
  val create : Rt.t -> Mm_mem.Alloc_config.t -> t
  val malloc : t -> int -> int
  val free : t -> int -> unit
  val usable_size : t -> int -> int
  val store : t -> Mm_mem.Store.Make(Rt).t
  val rt : t -> Rt.t
  val check_invariants : t -> unit

  val instance : ?name:string -> Mm_runtime.Rt.t -> t -> Mm_mem.Alloc_intf.instance
  (** Package one heap as a runtime-erased {!Mm_mem.Alloc_intf.instance};
      the value-level runtime handle comes from the caller. *)

  val arena_count : t -> int
  (** Arenas currently in the list — the paper observes this exceeding the
      thread count under Larson (22 arenas for 16 threads). *)
end
