module Make (Rt : Mm_runtime.Runtime_intf.S) = struct
  module Sb_heap = Sb_heap.Make (Rt)
  module Locks = Locks.Make (Rt)

  (** Baseline 2: Ptmalloc-style arena allocator (paper §2.2).

      Multiple arenas, each a serial heap behind one lock. malloc tries the
      thread's last-used arena with a trylock; if it is held it walks the
      arena list trying each, and if every arena is locked it creates a new
      arena and adds it to the list — which is why the paper observes
      Ptmalloc running with more arenas than threads (22 arenas for 16
      threads in Larson) and why its memory use is the highest of the
      compared allocators. free must return the block to the arena it came
      from, taking that arena's lock, wherever the freeing thread runs —
      the source of its cross-thread degradation. *)

  module Cfg = Mm_mem.Alloc_config
  module Prefix = Mm_mem.Block_prefix
  module Addr = Mm_mem.Addr

  type t = {
    ctx : Sb_heap.ctx;
    lock_kind : Cfg.lock_kind;
    arena_limit : int;
    arenas : Sb_heap.heap option Rt.atomic array;
    n_arenas : int Rt.atomic;
    last_arena : int array;  (* per-thread preferred arena index *)
    list_lock : Locks.t;  (* guards arena creation *)
  }

  let name = "ptmalloc"

  (* dlmalloc-derived bookkeeping: lighter than stock libc. *)
  let op_overhead = 80

  let create rt (cfg : Cfg.t) =
    let ctx = Sb_heap.create_ctx rt cfg ~op_overhead in
    let t =
      {
        ctx;
        lock_kind = cfg.lock_kind;
        arena_limit = cfg.arena_limit;
        arenas = Array.init 256 (fun _ -> Rt.Atomic.make rt None);
        n_arenas = Rt.Atomic.make rt 0;
        last_arena = Array.make Rt.max_threads 0;
        list_lock = Locks.create rt Cfg.Tas_backoff;
      }
    in
    (* The main arena always exists. *)
    let main = Sb_heap.create_heap ctx ~lock_kind:cfg.lock_kind in
    Rt.Atomic.set t.arenas.(0) (Some main);
    Rt.Atomic.set t.n_arenas 1;
    t

  let rt t = Sb_heap.rt t.ctx
  let store t = Sb_heap.store t.ctx
  let arena_count t = Rt.Atomic.get t.n_arenas

  let arena t i =
    match Rt.Atomic.get t.arenas.(i) with
    | Some h -> h
    | None -> invalid_arg "Ptmalloc_alloc: bad arena index"

  (* Find an arena we can lock: last-used first, then sweep, then grow the
     list, finally block on the preferred one. Returns with the arena's
     lock held. *)
  let acquire_arena t =
    let me = Rt.self (rt t) in
    let preferred = t.last_arena.(me) in
    let n = Rt.Atomic.get t.n_arenas in
    let preferred = if preferred < n then preferred else 0 in
    if Locks.try_acquire (Sb_heap.heap_lock (arena t preferred)) then
      (preferred, arena t preferred)
    else begin
      let found = ref None in
      let i = ref 0 in
      while !found = None && !i < n do
        let idx = (preferred + 1 + !i) mod n in
        if Locks.try_acquire (Sb_heap.heap_lock (arena t idx)) then
          found := Some (idx, arena t idx);
        incr i
      done;
      match !found with
      | Some r -> r
      | None ->
          if n < t.arena_limit && Locks.try_acquire t.list_lock then begin
            (* All arenas busy: create a new one. *)
            let h = Sb_heap.create_heap t.ctx ~lock_kind:t.lock_kind in
            let idx = Rt.Atomic.get t.n_arenas in
            Rt.Atomic.set t.arenas.(idx) (Some h);
            Rt.Atomic.set t.n_arenas (idx + 1);
            Locks.release t.list_lock;
            Locks.acquire (Sb_heap.heap_lock h);
            (idx, h)
          end
          else begin
            Locks.acquire (Sb_heap.heap_lock (arena t preferred));
            (preferred, arena t preferred)
          end
    end

  let malloc t n =
    if n < 0 then invalid_arg "Ptmalloc_alloc.malloc: negative size";
    Sb_heap.charge_overhead t.ctx;
    match Sb_heap.class_of_request t.ctx n with
    | None -> Sb_heap.large_malloc t.ctx n
    | Some sc ->
        let idx, heap = acquire_arena t in
        t.last_arena.(Rt.self (rt t)) <- idx;
        let payload =
          match Sb_heap.pop_block t.ctx heap sc with
          | Some payload -> payload
          | None ->
              ignore (Sb_heap.new_superblock t.ctx heap sc);
              (match Sb_heap.pop_block t.ctx heap sc with
              | Some payload -> payload
              | None -> assert false)
        in
        Locks.release (Sb_heap.heap_lock heap);
        payload

  let usable_size t payload = Sb_heap.usable_size t.ctx payload

  let free t payload =
    if payload = Addr.null then ()
    else begin
      Sb_heap.charge_overhead t.ctx;
      let payload, prefix, _ = Sb_heap.resolve_payload t.ctx payload in
      let base = payload - Prefix.prefix_bytes in
      if Prefix.is_large prefix then Sb_heap.large_free t.ctx base
      else begin
        let d = Sb_heap.sdesc_of_prefix t.ctx prefix in
        (* The chunk goes back to its original arena, whose lock we must
           take (paper §2.2). The owner is stable: ptmalloc never migrates
           superblocks between arenas. *)
        let heap = Sb_heap.heap_of_uid t.ctx d.Sb_heap.Sdesc.owner in
        Locks.with_lock (Sb_heap.heap_lock heap) (fun () ->
            match Sb_heap.push_block t.ctx d payload with
            | `Stays -> ()
            | `Superblock_empty -> Sb_heap.maybe_release t.ctx heap d ~surplus:1)
      end
    end

  let check_invariants t =
    for i = 0 to Rt.Atomic.get t.n_arenas - 1 do
      Sb_heap.check_heap_invariants t.ctx (arena t i)
    done

  module Pack = Mm_mem.Alloc_intf.Pack (Rt)

  let instance ?name:(n = name) vrt t =
    Pack.make ~name:n ~rt:vrt ~store:(store t) ~malloc:(malloc t)
      ~free:(free t) ~usable_size:(usable_size t)
      ~check:(fun () -> check_invariants t)
end
