module Make (Rt : Mm_runtime.Runtime_intf.S) = struct
  module Sb_heap = Sb_heap.Make (Rt)
  module Locks = Locks.Make (Rt)

  (** Baseline 3: Hoard-style allocator (Berger et al., ASPLOS 2000; paper
      §2.2).

      Per-processor heaps plus one global heap, all lock-based. malloc locks
      the calling thread's processor heap (one acquisition in the common
      case) and pulls superblocks from the global heap when the processor
      heap runs dry. free returns the block to the superblock's {e owning}
      heap — wherever that is — taking that heap's lock and the superblock's
      own lock for the fullness-statistics update, the "typically two lock
      acquisitions" of the paper's description, and the reason the
      producer-consumer pattern hammers the producer's heap lock. When a
      superblock in a processor heap becomes completely free it is moved to
      the global heap, bounding space blowup as in Hoard; the global heap
      releases surplus empty superblocks to the OS. *)

  module Cfg = Mm_mem.Alloc_config
  module Prefix = Mm_mem.Block_prefix
  module Addr = Mm_mem.Addr

  type t = {
    ctx : Sb_heap.ctx;
    global : Sb_heap.heap;  (* uid 0 *)
    procs : Sb_heap.heap array;  (* uids 1..n *)
  }

  let name = "hoard"

  (* Superblock-and-fullness-statistics bookkeeping. *)
  let op_overhead = 90

  (* Empty superblocks the global heap keeps per size class before
     releasing to the OS. *)
  let global_empty_surplus = 2

  let create rt (cfg : Cfg.t) =
    let ctx = Sb_heap.create_ctx rt cfg ~op_overhead in
    let global = Sb_heap.create_heap ctx ~lock_kind:cfg.lock_kind in
    assert (Sb_heap.heap_uid global = 0);
    let n = Cfg.resolve_nheaps cfg ~num_cpus:(Rt.num_cpus rt) in
    let procs =
      Array.init n (fun _ -> Sb_heap.create_heap ctx ~lock_kind:cfg.lock_kind)
    in
    { ctx; global; procs }

  let rt t = Sb_heap.rt t.ctx
  let store t = Sb_heap.store t.ctx

  let my_heap t = t.procs.(Rt.self (rt t) mod Array.length t.procs)

  (* Lock ordering: processor heap before global heap, everywhere. *)

  let malloc t n =
    if n < 0 then invalid_arg "Hoard_alloc.malloc: negative size";
    Sb_heap.charge_overhead t.ctx;
    match Sb_heap.class_of_request t.ctx n with
    | None -> Sb_heap.large_malloc t.ctx n
    | Some sc ->
        let heap = my_heap t in
        Locks.with_lock (Sb_heap.heap_lock heap) (fun () ->
            match Sb_heap.pop_block t.ctx heap sc with
            | Some payload -> payload
            | None ->
                (* Check the global heap for a superblock of this class. *)
                Locks.acquire (Sb_heap.heap_lock t.global);
                let moved = Sb_heap.take_superblock t.ctx t.global sc in
                Locks.release (Sb_heap.heap_lock t.global);
                (match moved with
                | Some d -> Sb_heap.attach_superblock t.ctx heap d
                | None -> ignore (Sb_heap.new_superblock t.ctx heap sc));
                (match Sb_heap.pop_block t.ctx heap sc with
                | Some payload -> payload
                | None -> assert false))

  let usable_size t payload = Sb_heap.usable_size t.ctx payload

  let free t payload =
    if payload = Addr.null then ()
    else begin
      Sb_heap.charge_overhead t.ctx;
      let payload, prefix, _ = Sb_heap.resolve_payload t.ctx payload in
      let base = payload - Prefix.prefix_bytes in
      if Prefix.is_large prefix then Sb_heap.large_free t.ctx base
      else begin
        let d = Sb_heap.sdesc_of_prefix t.ctx prefix in
        (* First acquisition: the owning heap. The owner may migrate while
           we wait, so re-check after locking. *)
        let rec lock_owner () =
          let heap = Sb_heap.heap_of_uid t.ctx d.Sb_heap.Sdesc.owner in
          Locks.acquire (Sb_heap.heap_lock heap);
          if d.Sb_heap.Sdesc.owner = Sb_heap.heap_uid heap then heap
          else begin
            Locks.release (Sb_heap.heap_lock heap);
            lock_owner ()
          end
        in
        let heap = lock_owner () in
        (* Second acquisition: the superblock's fullness statistics. *)
        Locks.acquire d.Sb_heap.Sdesc.lock;
        let status = Sb_heap.push_block t.ctx d payload in
        Locks.release d.Sb_heap.Sdesc.lock;
        (match status with
        | `Stays -> ()
        | `Superblock_empty ->
            if Sb_heap.heap_uid heap = 0 then begin
              (* Already global: release OS surplus. *)
              let empties =
                Sb_heap.empty_superblocks t.ctx t.global d.Sb_heap.Sdesc.sc
              in
              if List.length empties > global_empty_surplus then
                Sb_heap.release_superblock t.ctx t.global d
            end
            else begin
              (* Hoard's emptiness invariant (f = 1/4, K = 2): migrate a
                 superblock to the global heap only once the heap holds
                 more than two superblocks' worth of free blocks and is
                 more than a quarter empty. *)
              let a = Sb_heap.total_blocks heap in
              let f = Sb_heap.free_blocks heap in
              if f > 2 * d.Sb_heap.Sdesc.maxcount && 4 * f > a then begin
                Sb_heap.detach_superblock t.ctx heap d;
                Locks.acquire (Sb_heap.heap_lock t.global);
                Sb_heap.attach_superblock t.ctx t.global d;
                Locks.release (Sb_heap.heap_lock t.global)
              end
            end);
        Locks.release (Sb_heap.heap_lock heap)
      end
    end

  let check_invariants t =
    Sb_heap.check_heap_invariants t.ctx t.global;
    Array.iter (Sb_heap.check_heap_invariants t.ctx) t.procs

  module Pack = Mm_mem.Alloc_intf.Pack (Rt)

  let instance ?name:(n = name) vrt t =
    Pack.make ~name:n ~rt:vrt ~store:(store t) ~malloc:(malloc t)
      ~free:(free t) ~usable_size:(usable_size t)
      ~check:(fun () -> check_invariants t)
end
