(** Mutual-exclusion locks for the lock-based baseline allocators.

    Three kinds, mirroring the locks the paper evaluates (§4):
    - [Tas_backoff] — the "lightweight" test-and-set lock with exponential
      backoff the paper substitutes into Hoard and Ptmalloc (it halved
      Ptmalloc's contention-free latency);
    - [Ticket] — a FIFO-fair ticket lock;
    - [Pthread_like] — a test-and-set core plus extra fixed overhead
      modelling a kernel-assisted pthread mutex (the baselines' stock
      configuration).

    Acquire performs the instruction fence a critical section needs on
    entry and release the memory fence it needs on exit (the paper's
    §4.2.1 accounting of lock fence costs), so the latency comparison
    against the fence-light lock-free allocator is faithful. Spinners
    yield the processor periodically, so a preempted lock holder can run
    again (§1 preemption discussion). *)

val holder_label : string
(** [Rt.label] point reached immediately after every successful
    acquisition; fault-injection tests kill or pause threads here to
    create dead or preempted lock holders. Shared by every runtime
    instantiation. *)

module Make (Rt : Mm_runtime.Runtime_intf.S) : sig
  type t

  val create : Rt.t -> Mm_mem.Alloc_config.lock_kind -> t
  val acquire : t -> unit
  val try_acquire : t -> bool
  val release : t -> unit
  val with_lock : t -> (unit -> 'a) -> 'a
  (** Not exception-safe on purpose: baseline allocators never raise while
      holding a lock, and unwinding would mask bugs in tests. *)

  val acquisitions : t -> int
  (** Total successful acquisitions (quiescent snapshot; tests/metrics). *)

  val contended_acquisitions : t -> int
  (** Acquisitions that found the lock held at least once. *)
end
