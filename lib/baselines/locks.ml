let holder_label = "lock.held"

module Make (Rt : Mm_runtime.Runtime_intf.S) = struct
  module Backoff = Mm_lockfree.Backoff.Make (Rt)


  (* Extra per-operation cost modelling the kernel-assisted slow path of a
     pthread-style mutex (futex bookkeeping, ownership records). *)
  let pthread_acquire_overhead = 150
  let pthread_release_overhead = 100

  (* Spinners yield after this many failed attempts so a preempted holder
     can be rescheduled. *)
  let yield_every = 32

  (* MCS queue node: one per (thread, lock); each thread spins on its own
     node's flag, so waiters generate no traffic on shared lines. *)
  type mcs_node = {
    locked : int Rt.atomic;
    next : mcs_node option Rt.atomic;
  }

  type kind_impl =
    | Tas of { flag : int Rt.atomic }
    | Ticket of { next : int Rt.atomic; serving : int Rt.atomic }
    | Mcs of { tail : mcs_node option Rt.atomic; nodes : mcs_node array }
    | Pthread of { flag : int Rt.atomic }

  type t = {
    rt : Rt.t;
    impl : kind_impl;
    acq : int array;  (* striped per-thread counters *)
    contended : int array;
  }

  let create rt kind =
    let impl =
      match kind with
      | Mm_mem.Alloc_config.Tas_backoff -> Tas { flag = Rt.Atomic.make rt 0 }
      | Mm_mem.Alloc_config.Ticket ->
          Ticket
            { next = Rt.Atomic.make rt 0; serving = Rt.Atomic.make rt 0 }
      | Mm_mem.Alloc_config.Mcs ->
          Mcs
            {
              tail = Rt.Atomic.make rt None;
              nodes =
                Array.init Rt.max_threads (fun _ ->
                    {
                      locked = Rt.Atomic.make rt 0;
                      next = Rt.Atomic.make rt None;
                    });
            }
      | Mm_mem.Alloc_config.Pthread_like ->
          Pthread { flag = Rt.Atomic.make rt 0 }
    in
    {
      rt;
      impl;
      acq = Array.make Rt.max_threads 0;
      contended = Array.make Rt.max_threads 0;
    }

  (* Fault-injection point: a thread paused or killed here is a lock
     holder — the scenario lock-freedom is immune to and locks are not. *)

  let note t ~contended =
    let me = Rt.self t.rt in
    t.acq.(me) <- t.acq.(me) + 1;
    if contended then t.contended.(me) <- t.contended.(me) + 1;
    Rt.label t.rt holder_label

  let tas_acquire t flag =
    let b = Backoff.create t.rt in
    let rec go attempts contended =
      if Rt.Atomic.get flag = 0 && Rt.Atomic.compare_and_set flag 0 1 then
        note t ~contended
      else begin
        Backoff.once b;
        if attempts mod yield_every = yield_every - 1 then Rt.yield t.rt;
        go (attempts + 1) true
      end
    in
    go 0 false;
    Rt.fence t.rt (* entry instruction fence *)

  let tas_release t flag =
    Rt.fence t.rt (* exit memory fence *);
    Rt.Atomic.set flag 0

  (* Atomic exchange built from CAS. *)
  let rec swap_tail tail desired =
    let old = Rt.Atomic.get tail in
    if Rt.Atomic.compare_and_set tail old desired then old
    else swap_tail tail desired

  let mcs_acquire t tail nodes =
    let my = nodes.(Rt.self t.rt) in
    Rt.Atomic.set my.locked 1;
    Rt.Atomic.set my.next None;
    match swap_tail tail (Some my) with
    | None ->
        note t ~contended:false;
        Rt.fence t.rt
    | Some pred ->
        Rt.Atomic.set pred.next (Some my);
        let b = Backoff.create t.rt in
        let rec wait attempts =
          if Rt.Atomic.get my.locked = 1 then begin
            Backoff.once b;
            if attempts mod yield_every = yield_every - 1 then Rt.yield t.rt;
            wait (attempts + 1)
          end
        in
        wait 0;
        note t ~contended:true;
        Rt.fence t.rt

  let mcs_release t tail nodes =
    let my = nodes.(Rt.self t.rt) in
    Rt.fence t.rt;
    let rec go attempts =
      match Rt.Atomic.get my.next with
      | Some succ -> Rt.Atomic.set succ.locked 0
      | None -> (
          (* CAS against the physically-stored option box: a freshly built
             [Some my] would never compare equal. *)
          match Rt.Atomic.get tail with
          | Some n as cur when n == my ->
              if not (Rt.Atomic.compare_and_set tail cur None) then begin
                Rt.cpu_relax t.rt;
                go (attempts + 1)
              end
          | _ ->
              (* A successor won the tail but has not linked yet. *)
              Rt.cpu_relax t.rt;
              if attempts mod yield_every = yield_every - 1 then Rt.yield t.rt;
              go (attempts + 1))
    in
    go 0

  let acquire t =
    match t.impl with
    | Tas { flag } -> tas_acquire t flag
    | Mcs { tail; nodes } -> mcs_acquire t tail nodes
    | Pthread { flag } ->
        Rt.work t.rt pthread_acquire_overhead;
        tas_acquire t flag
    | Ticket { next; serving } ->
        let mine = Rt.Atomic.fetch_and_add next 1 in
        let b = Backoff.create t.rt in
        let rec wait attempts contended =
          if Rt.Atomic.get serving = mine then note t ~contended
          else begin
            Backoff.once b;
            if attempts mod yield_every = yield_every - 1 then Rt.yield t.rt;
            wait (attempts + 1) true
          end
        in
        wait 0 false;
        Rt.fence t.rt

  let try_acquire t =
    let won =
      match t.impl with
      | Mcs { tail; nodes } ->
          let my = nodes.(Rt.self t.rt) in
          Rt.Atomic.set my.locked 1;
          Rt.Atomic.set my.next None;
          Rt.Atomic.compare_and_set tail None (Some my)
      | Tas { flag } | Pthread { flag } ->
          (match t.impl with
          | Pthread _ -> Rt.work t.rt pthread_acquire_overhead
          | _ -> ());
          Rt.Atomic.get flag = 0 && Rt.Atomic.compare_and_set flag 0 1
      | Ticket { next; serving } ->
          let s = Rt.Atomic.get serving in
          let n = Rt.Atomic.get next in
          s = n && Rt.Atomic.compare_and_set next n (n + 1)
    in
    if won then begin
      note t ~contended:false;
      Rt.fence t.rt
    end;
    won

  let release t =
    match t.impl with
    | Tas { flag } -> tas_release t flag
    | Mcs { tail; nodes } -> mcs_release t tail nodes
    | Pthread { flag } ->
        Rt.work t.rt pthread_release_overhead;
        tas_release t flag
    | Ticket { serving; _ } ->
        Rt.fence t.rt;
        Rt.Atomic.set serving (Rt.Atomic.get serving + 1)

  let with_lock t f =
    acquire t;
    let r = f () in
    release t;
    r

  let acquisitions t = Array.fold_left ( + ) 0 t.acq
  let contended_acquisitions t = Array.fold_left ( + ) 0 t.contended
end
