(** Serial superblock-heap core shared by the lock-based baseline
    allocators (libc-style, Hoard, Ptmalloc).

    Same geometry as the lock-free allocator — superblocks carved into
    equal blocks per size class, an in-block free list, an 8-byte prefix
    holding the (serial) descriptor id — but all descriptor state is plain
    mutable data; the baseline allocators protect it with {!Locks}, each
    with its own locking topology. Sharing the substrate keeps latency and
    space comparisons between baselines and the lock-free allocator about
    the algorithms, not about the data layout.

    Locking contract: every function that takes a {!heap} requires the
    caller to hold that heap's lock. *)

module Make (Rt : Mm_runtime.Runtime_intf.S) : sig
  module Sdesc : sig
    type t = {
      id : int;
      lock : Locks.Make(Rt).t;  (** per-superblock lock (Hoard's stats updates) *)
      line : int;  (** simulated cache line of the hot descriptor fields *)
      mutable sb : int;
      mutable sz : int;
      mutable maxcount : int;
      mutable avail : int;  (** free-list head block index *)
      mutable count : int;  (** free blocks *)
      mutable owner : int;  (** uid of the owning heap *)
      mutable sc : int;  (** size class *)
    }
  end

  type ctx
  (** Substrate shared by all heaps of one allocator instance: store, size
      classes, descriptor table. *)

  type heap

  val create_ctx :
    Rt.t -> Mm_mem.Alloc_config.t -> op_overhead:int -> ctx
  (** [op_overhead] is charged as local work on every malloc/free, modelling
      the allocator's bookkeeping (binning, boundary tags); the baselines
      differ in how heavy theirs is. *)

  val rt : ctx -> Rt.t
  val store : ctx -> Mm_mem.Store.Make(Rt).t
  val classes : ctx -> Mm_mem.Size_class.t
  val charge_overhead : ctx -> unit

  val create_heap : ctx -> lock_kind:Mm_mem.Alloc_config.lock_kind -> heap
  val heap_uid : heap -> int
  val heap_lock : heap -> Locks.Make(Rt).t
  val heap_of_uid : ctx -> int -> heap
  val sdesc_of_prefix : ctx -> int -> Sdesc.t

  val class_of_request : ctx -> int -> int option
  val large_malloc : ctx -> int -> int
  val large_free : ctx -> int -> unit

  val resolve_payload : ctx -> int -> int * int * int
  (** See {!Mm_mem.Alloc_ops.resolve}: [(payload, prefix, delta)]. *)

  val usable_size : ctx -> int -> int

  val pop_block : ctx -> heap -> int -> int option
  (** [pop_block ctx heap sc] takes a block from one of the heap's partial
      superblocks of class [sc], writing its prefix; [None] if the heap has
      no free block of that class. Returns the payload address. *)

  val new_superblock : ctx -> heap -> int -> Sdesc.t
  (** mmap a superblock for class [sc] into the heap. *)

  val push_block : ctx -> Sdesc.t -> int -> [ `Stays | `Superblock_empty ]
  (** Return payload [addr] to its superblock. The caller must hold the lock
      of the heap that owns the superblock. *)

  val release_superblock : ctx -> heap -> Sdesc.t -> unit
  (** munmap a (typically empty) superblock and discard its descriptor. *)

  val maybe_release : ctx -> heap -> Sdesc.t -> surplus:int -> unit
  (** Release the (empty) superblock only if the heap already caches more
      than [surplus] empty superblocks of its class — the trim hysteresis
      real dlmalloc-family allocators apply instead of unmapping eagerly. *)

  val detach_superblock : ctx -> heap -> Sdesc.t -> unit
  (** Remove the superblock from the heap's lists and accounting, leaving it
      owned by nobody (migration, step 1 — both heap locks held by caller as
      its topology requires). *)

  val attach_superblock : ctx -> heap -> Sdesc.t -> unit
  (** Migration, step 2: give the superblock to [heap]. *)

  val take_superblock : ctx -> heap -> int -> Sdesc.t option
  (** Detach and return a superblock of class [sc] with free blocks,
      preferring the emptiest (Hoard's global-heap handout). *)

  val empty_superblocks : ctx -> heap -> int -> Sdesc.t list
  (** The heap's fully-empty superblocks of class [sc]. *)

  val free_blocks : heap -> int
  val total_blocks : heap -> int

  val check_heap_invariants : ctx -> heap -> unit
  (** Quiescent: free-list walks, counts, prefix integrity. Raises on
      violation. *)
end
