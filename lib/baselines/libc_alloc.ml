module Make (Rt : Mm_runtime.Runtime_intf.S) = struct
  module Sb_heap = Sb_heap.Make (Rt)
  module Locks = Locks.Make (Rt)

  (** Baseline 1: a libc-style serial allocator behind one global lock —
      the paper's "default AIX 5.1 libc malloc" comparison point.

      One heap, one pthread-style mutex around every operation, and
      relatively heavy per-operation bookkeeping (general-purpose allocators
      maintain boundary tags, bins and coalescing state). Scales not at all;
      its single-thread latency is the denominator of every speedup the
      paper reports. *)

  module Cfg = Mm_mem.Alloc_config
  module Prefix = Mm_mem.Block_prefix
  module Addr = Mm_mem.Addr

  type t = { ctx : Sb_heap.ctx; heap : Sb_heap.heap }

  let name = "libc"

  (* Heavier bookkeeping than the purpose-built multithread allocators. *)
  let op_overhead = 120

  let create rt (cfg : Cfg.t) =
    let ctx = Sb_heap.create_ctx rt cfg ~op_overhead in
    (* The stock libc lock is a kernel-assisted mutex regardless of the
       configured baseline lock kind. *)
    let heap = Sb_heap.create_heap ctx ~lock_kind:Cfg.Pthread_like in
    { ctx; heap }

  let rt t = Sb_heap.rt t.ctx
  let store t = Sb_heap.store t.ctx

  let malloc t n =
    if n < 0 then invalid_arg "Libc_alloc.malloc: negative size";
    Sb_heap.charge_overhead t.ctx;
    match Sb_heap.class_of_request t.ctx n with
    | None -> Sb_heap.large_malloc t.ctx n
    | Some sc ->
        Locks.with_lock (Sb_heap.heap_lock t.heap) (fun () ->
            match Sb_heap.pop_block t.ctx t.heap sc with
            | Some payload -> payload
            | None ->
                ignore (Sb_heap.new_superblock t.ctx t.heap sc);
                (match Sb_heap.pop_block t.ctx t.heap sc with
                | Some payload -> payload
                | None -> assert false))

  let usable_size t payload = Sb_heap.usable_size t.ctx payload

  let free t payload =
    if payload = Addr.null then ()
    else begin
      Sb_heap.charge_overhead t.ctx;
      let payload, prefix, _ = Sb_heap.resolve_payload t.ctx payload in
      let base = payload - Prefix.prefix_bytes in
      if Prefix.is_large prefix then Sb_heap.large_free t.ctx base
      else
        Locks.with_lock (Sb_heap.heap_lock t.heap) (fun () ->
            let d = Sb_heap.sdesc_of_prefix t.ctx prefix in
            match Sb_heap.push_block t.ctx d payload with
            | `Stays -> ()
            | `Superblock_empty ->
                Sb_heap.maybe_release t.ctx t.heap d ~surplus:1)
    end

  let check_invariants t = Sb_heap.check_heap_invariants t.ctx t.heap

  module Pack = Mm_mem.Alloc_intf.Pack (Rt)

  let instance ?name:(n = name) vrt t =
    Pack.make ~name:n ~rt:vrt ~store:(store t) ~malloc:(malloc t)
      ~free:(free t) ~usable_size:(usable_size t)
      ~check:(fun () -> check_invariants t)
end
