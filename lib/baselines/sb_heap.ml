module Make (Rt : Mm_runtime.Runtime_intf.S) = struct
  module Locks = Locks.Make (Rt)
  module Ts = Mm_lockfree.Treiber_stack.Make (Rt)

  module Cfg = Mm_mem.Alloc_config
  module Store = Mm_mem.Store.Make (Rt)
  module Addr = Mm_mem.Addr
  module Sc = Mm_mem.Size_class
  module Prefix = Mm_mem.Block_prefix

  module Sdesc = struct
    type t = {
      id : int;
      lock : Locks.t;
      line : int;  (* cache line of the descriptor's hot fields *)
      mutable sb : int;
      mutable sz : int;
      mutable maxcount : int;
      mutable avail : int;
      mutable count : int;
      mutable owner : int;
      mutable sc : int;
    }
  end

  type ctx = {
    rt : Rt.t;
    store : Store.t;
    classes : Sc.t;
    op_overhead : int;
    slots : Sdesc.t option Rt.atomic array;
    next_id : int Rt.atomic;
    free_ids : int Ts.t;
    heap_slots : heap option Rt.atomic array;  (* uid -> heap registry *)
    heap_count : int Rt.atomic;
  }

  and heap = {
    uid : int;
    hlock : Locks.t;
    hline : int;  (* cache line of the heap's lists and statistics *)
    partial : Sdesc.t list ref array;  (* per class, MRU first *)
    mutable h_free_blocks : int;
    mutable h_total_blocks : int;
  }

  let create_ctx rt (cfg : Cfg.t) ~op_overhead =
    {
      rt;
      store =
        Store.create rt ~capacity:cfg.store_capacity ~sbsize:cfg.sbsize
          ~hyperblocks:cfg.hyperblocks ();
      classes = Sc.make ~sbsize:cfg.sbsize ();
      op_overhead;
      slots =
        Array.init (2 * cfg.store_capacity) (fun _ -> Rt.Atomic.make rt None);
      next_id = Rt.Atomic.make rt 1;
      free_ids = Ts.create rt;
      heap_slots = Array.init 256 (fun _ -> Rt.Atomic.make rt None);
      heap_count = Rt.Atomic.make rt 0;
    }

  let rt ctx = ctx.rt
  let store ctx = ctx.store
  let classes ctx = ctx.classes
  let charge_overhead ctx = Rt.work ctx.rt ctx.op_overhead

  let create_heap ctx ~lock_kind =
    let uid = Rt.Atomic.fetch_and_add ctx.heap_count 1 in
    if uid >= Array.length ctx.heap_slots then
      failwith "Sb_heap: too many heaps";
    let heap =
      {
        uid;
        hlock = Locks.create ctx.rt lock_kind;
        hline = Rt.fresh_line ();
        partial = Array.init (Sc.count ctx.classes) (fun _ -> ref []);
        h_free_blocks = 0;
        h_total_blocks = 0;
      }
    in
    Rt.Atomic.set ctx.heap_slots.(uid) (Some heap);
    heap

  let heap_uid h = h.uid
  let heap_lock h = h.hlock

  let heap_of_uid ctx uid =
    if uid < 0 || uid >= Array.length ctx.heap_slots then
      invalid_arg "Sb_heap.heap_of_uid: unknown heap";
    match Rt.Atomic.get ctx.heap_slots.(uid) with
    | Some h -> h
    | None -> invalid_arg "Sb_heap.heap_of_uid: unknown heap"

  let sdesc_of_prefix ctx prefix =
    let id = Prefix.desc_id prefix in
    if id < 1 || id >= Array.length ctx.slots then
      invalid_arg "Sb_heap: corrupt block prefix";
    match Rt.Atomic.get ctx.slots.(id) with
    | Some d -> d
    | None -> invalid_arg "Sb_heap: block prefix names a dead descriptor"

  let class_of_request ctx n = Sc.class_of_request ctx.classes n

  let resolve_payload ctx payload = Store.resolve ctx.store payload

  let usable_size ctx payload =
    let _, prefix, delta = resolve_payload ctx payload in
    let base =
      if Prefix.is_large prefix then
        Prefix.large_len prefix - Prefix.prefix_bytes
      else (sdesc_of_prefix ctx prefix).Sdesc.sz - Prefix.prefix_bytes
    in
    base - delta

  let large_malloc ctx n =
    let len = n + Prefix.prefix_bytes in
    let base = Store.alloc_large ctx.store ~len in
    Store.write_word ctx.store base (Prefix.large ~total_len:len);
    base + Prefix.prefix_bytes

  let large_free ctx base = Store.free_large ctx.store base

  (* ------------------------------------------------------------------ *)
  (* Superblock lifecycle. Caller holds the owning heap's lock. *)

  let fresh_id ctx =
    match Ts.pop ctx.free_ids with
    | Some id -> id
    | None ->
        let id = Rt.Atomic.fetch_and_add ctx.next_id 1 in
        if id >= Array.length ctx.slots then
          failwith "Sb_heap: descriptor table exhausted";
        id

  let new_superblock ctx heap sc =
    let sz = Sc.block_size ctx.classes sc in
    let maxcount = Sc.blocks_per_superblock ctx.classes sc in
    let sb = Store.alloc_superblock ctx.store in
    Store.init_free_list ctx.store sb ~sz ~maxcount;
    let d =
      {
        Sdesc.id = fresh_id ctx;
        lock = Locks.create ctx.rt Cfg.Tas_backoff;
        line = Rt.fresh_line ();
        sb;
        sz;
        maxcount;
        avail = 0;
        count = maxcount;
        owner = heap.uid;
        sc;
      }
    in
    Rt.Atomic.set ctx.slots.(d.Sdesc.id) (Some d);
    heap.partial.(sc) := d :: !(heap.partial.(sc));
    heap.h_free_blocks <- heap.h_free_blocks + maxcount;
    heap.h_total_blocks <- heap.h_total_blocks + maxcount;
    d

  let remove_from_list heap (d : Sdesc.t) =
    let cell = heap.partial.(d.sc) in
    cell := List.filter (fun x -> x != d) !cell

  let release_superblock ctx heap (d : Sdesc.t) =
    remove_from_list heap d;
    heap.h_free_blocks <- heap.h_free_blocks - d.Sdesc.count;
    heap.h_total_blocks <- heap.h_total_blocks - d.Sdesc.maxcount;
    Store.free_superblock ctx.store d.Sdesc.sb;
    Rt.Atomic.set ctx.slots.(d.Sdesc.id) None;
    Ts.push ctx.free_ids d.Sdesc.id

  let detach_superblock _ctx heap (d : Sdesc.t) =
    remove_from_list heap d;
    heap.h_free_blocks <- heap.h_free_blocks - d.Sdesc.count;
    heap.h_total_blocks <- heap.h_total_blocks - d.Sdesc.maxcount

  let attach_superblock _ctx heap (d : Sdesc.t) =
    d.Sdesc.owner <- heap.uid;
    if d.Sdesc.count > 0 then heap.partial.(d.sc) := d :: !(heap.partial.(d.sc));
    heap.h_free_blocks <- heap.h_free_blocks + d.Sdesc.count;
    heap.h_total_blocks <- heap.h_total_blocks + d.Sdesc.maxcount

  let take_superblock ctx heap sc =
    match !(heap.partial.(sc)) with
    | [] -> None
    | l ->
        let best =
          List.fold_left
            (fun acc d ->
              if d.Sdesc.count > acc.Sdesc.count then d else acc)
            (List.hd l) l
        in
        detach_superblock ctx heap best;
        Some best

  let empty_superblocks _ctx heap sc =
    List.filter (fun d -> d.Sdesc.count = d.Sdesc.maxcount) !(heap.partial.(sc))

  (* ------------------------------------------------------------------ *)
  (* Block pop / push. *)

  let pop_block ctx heap sc =
    match !(heap.partial.(sc)) with
    | [] -> None
    | d :: rest ->
        (* The heap's lists/stats and the descriptor's hot fields migrate
           to the operating CPU — the coherence traffic that makes a
           single-lock allocator degrade, not just serialize (paper Fig.
           8(a), libc below 1.0). The lock-free allocator pays the
           equivalent costs through its Anchor/Active atomics. *)
        Rt.touch ctx.rt ~line:heap.hline ~write:true;
        Rt.touch ctx.rt ~line:d.Sdesc.line ~write:true;
        let base = d.Sdesc.sb + (d.Sdesc.avail * d.Sdesc.sz) in
        d.Sdesc.avail <- Store.read_word ctx.store base;
        d.Sdesc.count <- d.Sdesc.count - 1;
        heap.h_free_blocks <- heap.h_free_blocks - 1;
        if d.Sdesc.count = 0 then heap.partial.(sc) := rest;
        Store.write_word ctx.store base (Prefix.small ~desc_id:d.Sdesc.id);
        Some (base + Prefix.prefix_bytes)

  let push_block ctx (d : Sdesc.t) payload =
    Rt.touch ctx.rt ~line:d.Sdesc.line ~write:true;
    let base = payload - Prefix.prefix_bytes in
    Store.write_word ctx.store base d.Sdesc.avail;
    d.Sdesc.avail <- (base - d.Sdesc.sb) / d.Sdesc.sz;
    d.Sdesc.count <- d.Sdesc.count + 1;
    let heap = heap_of_uid ctx d.Sdesc.owner in
    Rt.touch ctx.rt ~line:heap.hline ~write:true;
    heap.h_free_blocks <- heap.h_free_blocks + 1;
    if d.Sdesc.count = 1 then heap.partial.(d.sc) := d :: !(heap.partial.(d.sc));
    if d.Sdesc.count = d.Sdesc.maxcount then `Superblock_empty else `Stays

  let maybe_release ctx heap (d : Sdesc.t) ~surplus =
    (* Real dlmalloc-family allocators do not unmap a region the moment it
       empties; keep up to [surplus] empty superblocks per class cached in
       the heap. *)
    let empties =
      List.filter
        (fun (x : Sdesc.t) -> x.count = x.maxcount)
        !(heap.partial.(d.Sdesc.sc))
    in
    if List.length empties > surplus then release_superblock ctx heap d

  let free_blocks heap = heap.h_free_blocks
  let total_blocks heap = heap.h_total_blocks

  (* ------------------------------------------------------------------ *)

  let fail fmt = Format.kasprintf failwith fmt

  let check_heap_invariants ctx heap =
    let free = ref 0 and total = ref 0 in
    (* Superblocks fully allocated are not on any list; find every
       superblock owned by this heap through the descriptor table. *)
    Array.iter
      (fun slot ->
        match Rt.Atomic.get slot with
        | Some d when d.Sdesc.owner = heap.uid ->
            free := !free + d.Sdesc.count;
            total := !total + d.Sdesc.maxcount;
            let on_list = List.memq d !(heap.partial.(d.Sdesc.sc)) in
            if d.Sdesc.count > 0 && not on_list then
              fail "sdesc %d has free blocks but is not listed" d.Sdesc.id;
            if d.Sdesc.count = 0 && on_list then
              fail "sdesc %d is full but still listed" d.Sdesc.id;
            let seen = Array.make d.Sdesc.maxcount false in
            let idx = ref d.Sdesc.avail in
            for step = 1 to d.Sdesc.count do
              if !idx < 0 || !idx >= d.Sdesc.maxcount then
                fail "sdesc %d: bad free index %d at step %d" d.Sdesc.id !idx
                  step;
              if seen.(!idx) then
                fail "sdesc %d: free list cycles at %d" d.Sdesc.id !idx;
              seen.(!idx) <- true;
              idx :=
                Store.read_word ctx.store (d.Sdesc.sb + (!idx * d.Sdesc.sz))
            done;
            for i = 0 to d.Sdesc.maxcount - 1 do
              if not seen.(i) then begin
                let p =
                  Store.read_word ctx.store (d.Sdesc.sb + (i * d.Sdesc.sz))
                in
                if Prefix.is_large p || Prefix.desc_id p <> d.Sdesc.id then
                  fail "sdesc %d: allocated block %d prefix corrupt" d.Sdesc.id
                    i
              end
            done
        | _ -> ())
      ctx.slots;
    if !free <> heap.h_free_blocks then
      fail "heap %d: free_blocks=%d but descriptors sum to %d" heap.uid
        heap.h_free_blocks !free;
    if !total <> heap.h_total_blocks then
      fail "heap %d: total_blocks=%d but descriptors sum to %d" heap.uid
        heap.h_total_blocks !total
end
