(** Hoard-style baseline: lock-based per-processor heaps plus a global
    heap; malloc takes one lock in the common case, free two; empty
    superblocks migrate to the global heap, bounding space blowup
    (Berger et al., ASPLOS 2000; paper §2.2). *)

module Make (Rt : Mm_runtime.Runtime_intf.S) : sig
  type t

  val name : string
  val create : Rt.t -> Mm_mem.Alloc_config.t -> t
  val malloc : t -> int -> int
  val free : t -> int -> unit
  val usable_size : t -> int -> int
  val store : t -> Mm_mem.Store.Make(Rt).t
  val rt : t -> Rt.t
  val check_invariants : t -> unit

  val instance : ?name:string -> Mm_runtime.Rt.t -> t -> Mm_mem.Alloc_intf.instance
  (** Package one heap as a runtime-erased {!Mm_mem.Alloc_intf.instance};
      the value-level runtime handle comes from the caller. *)
end
