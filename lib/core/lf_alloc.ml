module Make (Rt : Mm_runtime.Runtime_intf.S) = struct
  module Descriptor = Descriptor.Make (Rt)
  module Desc_pool = Desc_pool.Make (Rt)
  module Partial_list = Partial_list.Make (Rt)
  module Sb_cache = Sb_cache.Make (Rt)

  module Cfg = Mm_mem.Alloc_config
  module Store = Mm_mem.Store.Make (Rt)
  module Addr = Mm_mem.Addr
  module Sc = Mm_mem.Size_class
  module Prefix = Mm_mem.Block_prefix
  module Backoff = Mm_lockfree.Backoff.Make (Rt)
  module Pm = Mm_pages.Page_manager.Make (Rt)

  (* Line numbers in comments refer to the paper's Figures 4 (malloc) and
     6 (free). *)

  type heap = {
    gid : int;  (* sc * nheaps + h *)
    sc : int;
    active : int Rt.atomic;  (* packed Active_word, 0 = NULL *)
    partial : int Rt.atomic;  (* descriptor id, 0 = none *)
  }

  type t = {
    rt : Rt.t;
    cfg : Cfg.t;
    store : Store.t;
    classes : Sc.t;
    nheaps_ : int;
    heaps : heap array array;  (* [size class].[processor heap] *)
    lists : Partial_list.t array;  (* per size class *)
    table : Descriptor.table;
    pool : Desc_pool.t;
    sbc : Sb_cache.t;  (* warm EMPTY-superblock cache, DESIGN.md §14 *)
    pm : Pm.t option;  (* span reservoir + buddy backend, DESIGN.md §15 *)
    mallocs : int array;  (* striped per-thread op counters *)
    frees : int array;
    (* CAS-retry counters per contention site (striped per thread):
       quantifies where interference lands, cf. the paper's §4.2.3
       discussion of overlapping read-modify-write segments. *)
    retry_reserve : int array;
    retry_pop : int array;
    retry_free : int array;
    retry_update_active : int array;
    retry_partial_slot : int array;
    retry_park : int array;
    retry_adopt : int array;
    retry_buddy_acquire : int array;
    retry_buddy_release : int array;
    retry_buddy_coalesce : int array;
    retry_span_reserve : int array;
    retry_desc_spill : int array;
    retry_desc_steal : int array;
    retry_pub_push : int array;
    retry_pub_claim : int array;
    (* Owner-biased free lists (DESIGN.md §19): [ob] caches the mode
       test off the config; [owned.(tid).(sc)] is the id of the
       superblock thread [tid] currently owns for size class [sc] (0 =
       none). Each slot is written only by thread [tid] itself, so the
       ownership test in [free] reads its own always-coherent entry
       rather than a possibly stale cross-thread descriptor field. *)
    ob : bool;
    owned : int array array;
  }

  (* The contention-site row set is the label registry's census grouping
     (this layer's followed by the page layer's) — a new labeled site
     added to [Labels.census_sites] appears here, in the harness table
     and in the obs equality proof automatically, and one without a
     striped counter fails loudly in [retry_counts]. *)
  let retry_sites =
    List.map fst Labels.census_sites
    @ List.map fst Mm_pages.Pg_labels.census_sites

  let name = "new"

  let create rt (cfg : Cfg.t) =
    let classes = Sc.make ~sbsize:cfg.sbsize () in
    let nheaps = Cfg.resolve_nheaps cfg ~num_cpus:(Rt.num_cpus rt) in
    let store =
      Store.create rt ~capacity:cfg.store_capacity ~sbsize:cfg.sbsize
        ~hyperblocks:cfg.hyperblocks ()
    in
    let table = Descriptor.create_table rt ~capacity:(2 * cfg.store_capacity) in
    let stripe arr () = arr.(Rt.self rt) <- arr.(Rt.self rt) + 1 in
    let retry_desc_spill = Array.make Rt.max_threads 0 in
    let retry_desc_steal = Array.make Rt.max_threads 0 in
    let pool =
      Desc_pool.create rt table ~kind:cfg.desc_pool
        ?scan_threshold:
          (if cfg.desc_scan_threshold > 0 then Some cfg.desc_scan_threshold
           else None)
        ~on_spill_retry:(stripe retry_desc_spill)
        ~on_steal_retry:(stripe retry_desc_steal) ()
    in
    let nclasses = Sc.count classes in
    let heaps =
      Array.init nclasses (fun sc ->
          Array.init nheaps (fun h ->
              {
                gid = (sc * nheaps) + h;
                sc;
                active = Rt.Atomic.make rt Active_word.null;
                partial = Rt.Atomic.make rt 0;
              }))
    in
    let lists =
      Array.init nclasses (fun _ -> Partial_list.create rt cfg.partial_policy)
    in
    let retry_park = Array.make Rt.max_threads 0 in
    let retry_adopt = Array.make Rt.max_threads 0 in
    let sbc =
      Sb_cache.create rt ~depth:cfg.sb_cache_depth ~nclasses ~table
        ~on_park_retry:(fun () ->
          retry_park.(Rt.self rt) <- retry_park.(Rt.self rt) + 1)
        ~on_adopt_retry:(fun () ->
          retry_adopt.(Rt.self rt) <- retry_adopt.(Rt.self rt) + 1)
        ()
    in
    let retry_buddy_acquire = Array.make Rt.max_threads 0 in
    let retry_buddy_release = Array.make Rt.max_threads 0 in
    let retry_buddy_coalesce = Array.make Rt.max_threads 0 in
    let retry_span_reserve = Array.make Rt.max_threads 0 in
    let pm =
      if cfg.page_manager then
        Some
          (Pm.create rt store ~span_pages:cfg.span_pages
             ~on_acquire_retry:(stripe retry_buddy_acquire)
             ~on_release_retry:(stripe retry_buddy_release)
             ~on_coalesce_retry:(stripe retry_buddy_coalesce)
             ~on_span_retry:(stripe retry_span_reserve) ())
      else None
    in
    {
      rt;
      cfg;
      store;
      classes;
      nheaps_ = nheaps;
      heaps;
      lists;
      table;
      pool;
      sbc;
      pm;
      mallocs = Array.make Rt.max_threads 0;
      frees = Array.make Rt.max_threads 0;
      retry_reserve = Array.make Rt.max_threads 0;
      retry_pop = Array.make Rt.max_threads 0;
      retry_free = Array.make Rt.max_threads 0;
      retry_update_active = Array.make Rt.max_threads 0;
      retry_partial_slot = Array.make Rt.max_threads 0;
      retry_park;
      retry_adopt;
      retry_buddy_acquire;
      retry_buddy_release;
      retry_buddy_coalesce;
      retry_span_reserve;
      retry_desc_spill;
      retry_desc_steal;
      retry_pub_push = Array.make Rt.max_threads 0;
      retry_pub_claim = Array.make Rt.max_threads 0;
      ob = cfg.free_lists = `Owner_biased;
      owned = Array.init Rt.max_threads (fun _ -> Array.make nclasses 0);
    }

  let bump t arr = arr.(Rt.self t.rt) <- arr.(Rt.self t.rt) + 1
  let fail fmt = Format.kasprintf failwith fmt

  let site_counter t = function
    | "active.reserve" -> t.retry_reserve
    | "anchor.pop" -> t.retry_pop
    | "anchor.free" -> t.retry_free
    | "update_active" -> t.retry_update_active
    | "partial.slot" -> t.retry_partial_slot
    | "sbc.park" -> t.retry_park
    | "sbc.adopt" -> t.retry_adopt
    | "buddy.acquire" -> t.retry_buddy_acquire
    | "buddy.release" -> t.retry_buddy_release
    | "buddy.coalesce" -> t.retry_buddy_coalesce
    | "span.reserve" -> t.retry_span_reserve
    | "desc.spill" -> t.retry_desc_spill
    | "desc.steal" -> t.retry_desc_steal
    | "pub.push" -> t.retry_pub_push
    | "pub.claim" -> t.retry_pub_claim
    | site ->
        invalid_arg
          (Printf.sprintf
             "Lf_alloc: census site %S has no striped retry counter" site)

  let retry_counts t =
    List.map
      (fun site -> (site, Array.fold_left ( + ) 0 (site_counter t site)))
      retry_sites

  let rt t = t.rt
  let store t = t.store
  let sb_cache t = t.sbc
  let page_manager t = t.pm

  (* Superblock backing: with the page manager on, superblocks are carved
     out of reserved spans (no syscall) and released back to the owning
     span's buddy; the store's mmap/munmap path serves only the
     [page_manager:false] configuration and reservoir exhaustion. A
     released superblock routes by ownership — [Pm.free] recognizes span
     extents by region, so store-mapped superblocks (including any
     allocated before the reservoir filled) still unmap correctly. *)
  let alloc_sb t =
    match t.pm with
    | Some pm -> (
        match Pm.alloc pm ~len:t.cfg.sbsize with
        | Some addr -> addr
        | None -> Store.alloc_superblock t.store)
    | None -> Store.alloc_superblock t.store

  let release_sb t sb =
    match t.pm with
    | Some pm when Pm.free pm sb ~len:t.cfg.sbsize -> ()
    | _ -> Store.free_superblock t.store sb
  let size_classes t = t.classes
  let nheaps t = t.nheaps_
  let descriptor_table t = t.table
  let desc_pool t = t.pool

  let heap_of_gid t gid = t.heaps.(gid / t.nheaps_).(gid mod t.nheaps_)

  (* [heap_at] takes the dense thread id from the caller: [Rt.self] is a
     domain-local lookup on the real runtime, so the hot entry points
     resolve it once per operation and thread it through. *)
  let heap_at t sc tid = t.heaps.(sc).(tid mod t.nheaps_)
  let my_heap t sc = heap_at t sc (Rt.self t.rt)

  (* ------------------------------------------------------------------ *)
  (* HeapPutPartial / HeapGetPartial / RemoveEmptyDesc (Figs. 4 & 6). *)

  let heap_put_partial t desc =
    let heap = heap_of_gid t desc.Descriptor.heap_gid in
    let b = Backoff.create t.rt in
    let rec swap () =
      let prev = Rt.Atomic.get heap.partial in
      Rt.label t.rt Labels.free_put_partial;
      if Rt.Atomic.compare_and_set heap.partial prev desc.Descriptor.id then prev
      else begin
        bump t t.retry_partial_slot;
        Backoff.once b;
        swap ()
      end
    in
    let prev = swap () in
    if prev <> 0 then
      Partial_list.put t.lists.(heap.sc) (Descriptor.get t.table prev)

  (* Release an EMPTY descriptor whose last reference the caller just
     removed — the Desc_pool.retire precondition, which is exactly the
     exclusivity Sb_cache.park requires. With the warm cache enabled the
     superblock is still mapped here (finish_push skips the unmap, below),
     so the whole descriptor — bytes, intact free list, anchor tag — parks
     on the size-class cache; a refused park (watermark) genuinely unmaps
     and retires, keeping the paper's space accounting honest. *)
  let release_empty t desc =
    if Sb_cache.enabled t.sbc && desc.Descriptor.sb <> Addr.null then begin
      let sc = desc.Descriptor.heap_gid / t.nheaps_ in
      if Sb_cache.park t.sbc ~sc desc then
        Rt.obs_event t.rt Rt.Obs.Transition "sb.empty->cached"
      else begin
        release_sb t desc.Descriptor.sb;
        desc.Descriptor.sb <- Addr.null;
        Desc_pool.retire t.pool desc
      end
    end
    else Desc_pool.retire t.pool desc

  let heap_get_partial t heap =
    let rec go () =
      let id = Rt.Atomic.get heap.partial in
      if id = 0 then Partial_list.get t.lists.(heap.sc)
      else begin
        Rt.label t.rt Labels.hgp_slot_cas;
        if Rt.Atomic.compare_and_set heap.partial id 0 then
          Some (Descriptor.get t.table id)
        else go ()
      end
    in
    go ()

  let remove_empty_desc t heap desc =
    Rt.label t.rt Labels.red_slot_cas;
    if Rt.Atomic.compare_and_set heap.partial desc.Descriptor.id 0 then begin
      (* Guard against the (astronomically narrow) slot ABA the paper's
         pseudocode leaves open: between our EMPTY transition and this CAS,
         the descriptor could have been retired by a ListRemoveEmptyDesc,
         reused for a fresh superblock, gone PARTIAL again and landed back
         in this very slot. Retiring it then would corrupt its new life, so
         re-validate the state and reinsert if it is alive. *)
      if
        Anchor.state (Rt.Atomic.get desc.Descriptor.anchor) = Anchor.Empty
      then release_empty t desc
      else heap_put_partial t desc
    end
    else
      Partial_list.remove_empty t.lists.(heap.sc)
        ~retire:(fun d -> release_empty t d)

  (* ------------------------------------------------------------------ *)
  (* UpdateActive (Fig. 4). *)

  let update_active t heap desc morecredits =
    let newactive =
      Active_word.make ~desc_id:desc.Descriptor.id ~credits:(morecredits - 1)
    in
    Rt.label t.rt Labels.ua_install;
    (* line 3 *)
    if Rt.Atomic.compare_and_set heap.active Active_word.null newactive then ()
    else begin
      (* Someone installed another active superblock: return the credits to
         the anchor and make the superblock PARTIAL (lines 4-8). *)
      let b = Backoff.create t.rt in
      let rec return_credits () =
        let oldanchor = Rt.Atomic.get desc.Descriptor.anchor in
        let newanchor =
          Anchor.set_state
            (Anchor.set_count oldanchor (Anchor.count oldanchor + morecredits))
            Anchor.Partial
        in
        Rt.label t.rt Labels.ua_credits_cas;
        if
          not
            (Rt.Atomic.compare_and_set desc.Descriptor.anchor oldanchor
               newanchor)
        then begin
          bump t t.retry_update_active;
          Backoff.once b;
          return_credits ()
        end
      in
      return_credits ();
      Rt.obs_event t.rt Rt.Obs.Transition "sb.active->partial";
      Rt.label t.rt Labels.ua_return_credits;
      heap_put_partial t desc
    end

  (* ------------------------------------------------------------------ *)
  (* The in-superblock pop shared by MallocFromActive (lines 7-18) and
     MallocFromPartial (lines 11-15). [on_anchor] lets the active variant
     fold its credit/state bookkeeping into the same CAS. *)

  let clamp_index next = next land Anchor.max_count

  (* The paper's pop CAS bumps the anchor tag to defeat ABA on the
     in-superblock free list. [anchor_tag = false] (check subsystem's
     planted bug ONLY) omits the bump, reopening exactly the interleaving
     the tag exists to kill; the schedule explorer must find it. *)
  let pop_tag t a = if t.cfg.anchor_tag then Anchor.incr_tag a else a

  let pop_block t (desc : Descriptor.t) ~label ~on_anchor =
    let rec go spins =
      let oldanchor = Rt.Atomic.get desc.anchor in
      let addr = desc.sb + (Anchor.avail oldanchor * desc.sz) in
      (* line 10: may read garbage when racing; the tag CAS rejects it.
         [clamp_index] only keeps the value representable. *)
      let next = Store.read_word ~racy:true t.store addr in
      let newanchor =
        pop_tag t (Anchor.set_avail oldanchor (clamp_index next))
      in
      let newanchor, extra = on_anchor ~oldanchor ~newanchor in
      Rt.label t.rt label;
      if Rt.Atomic.compare_and_set desc.anchor oldanchor newanchor then
        (addr, oldanchor, extra)
      else begin
        bump t t.retry_pop;
        go (Backoff.spin t.rt spins)
      end
    in
    go Backoff.initial

  let finish_block t (desc : Descriptor.t) addr =
    (* line 21: store the descriptor in the block prefix. *)
    Store.write_word t.store addr (Prefix.small ~desc_id:desc.id);
    addr + Prefix.prefix_bytes

  (* ------------------------------------------------------------------ *)
  (* MallocFromActive (Fig. 4). *)

  let malloc_from_active t heap =
    (* First step: reserve a block (lines 1-6). *)
    let rec reserve spins =
      let oldactive = Rt.Atomic.get heap.active in
      if Active_word.is_null oldactive then None
      else begin
        let newactive =
          if Active_word.credits oldactive = 0 then Active_word.null
          else Active_word.dec_credits oldactive
        in
        Rt.label t.rt Labels.ma_read_active;
        if Rt.Atomic.compare_and_set heap.active oldactive newactive then
          Some oldactive
        else begin
          bump t t.retry_reserve;
          reserve (Backoff.spin t.rt spins)
        end
      end
    in
    match reserve Backoff.initial with
    | None -> None
    | Some oldactive ->
        Rt.label t.rt Labels.ma_reserved;
        let desc = Descriptor.get t.table (Active_word.desc_id oldactive) in
        let took_last = Active_word.credits oldactive = 0 in
        (* Second step: pop the reserved block (lines 7-18). *)
        let on_anchor ~oldanchor ~newanchor =
          if took_last then
            if Anchor.count oldanchor = 0 then
              (* line 15: out of blocks entirely. *)
              (Anchor.set_state newanchor Anchor.Full, 0)
            else begin
              (* lines 16-17: grab more credits for UpdateActive. *)
              let morecredits =
                min (Anchor.count oldanchor) t.cfg.maxcredits
              in
              ( Anchor.set_count newanchor
                  (Anchor.count oldanchor - morecredits),
                morecredits )
            end
          else (newanchor, 0)
        in
        let addr, oldanchor, morecredits =
          pop_block t desc ~label:Labels.ma_pop_cas ~on_anchor
        in
        Rt.label t.rt Labels.ma_popped;
        (* lines 19-20 *)
        if took_last then
          if Anchor.count oldanchor > 0 then
            update_active t heap desc morecredits
          else Rt.obs_event t.rt Rt.Obs.Transition "sb.active->full";
        Some (finish_block t desc addr)

  (* ------------------------------------------------------------------ *)
  (* MallocFromPartial (Fig. 4). *)

  let rec malloc_from_partial t heap =
    match heap_get_partial t heap with
    | None -> None
    | Some desc -> (
        Rt.label t.rt Labels.mp_got_partial;
        (* mm-sa: allow write-before-publish: the reserve CAS below only
           moves anchor credits; it publishes no block memory. heap_gid is
           read by remote frees that synchronize through this descriptor's
           anchor anyway, and the CAS itself orders the store. Explicit
           fences are reserved for link words that remote pops read with
           racy loads (flush_group, hazard_refill). *)
        desc.Descriptor.heap_gid <- heap.gid;
        (* line 3 *)
        (* Reserve blocks (lines 4-10). *)
        let b = Backoff.create t.rt in
        let rec reserve () =
          let oldanchor = Rt.Atomic.get desc.Descriptor.anchor in
          if Anchor.state oldanchor = Anchor.Empty then None
          else begin
            (* state must be PARTIAL and count > 0 here. *)
            let count = Anchor.count oldanchor in
            let morecredits = min (count - 1) t.cfg.maxcredits in
            let newanchor =
              Anchor.set_state
                (Anchor.set_count oldanchor (count - morecredits - 1))
                (if morecredits > 0 then Anchor.Active else Anchor.Full)
            in
            Rt.label t.rt Labels.mp_reserve_cas;
            if
              Rt.Atomic.compare_and_set desc.Descriptor.anchor oldanchor
                newanchor
            then Some morecredits
            else begin
              bump t t.retry_reserve;
              Backoff.once b;
              reserve ()
            end
          end
        in
        match reserve () with
        | None ->
            (* lines 5-6: became EMPTY under us — release and retry. *)
            release_empty t desc;
            malloc_from_partial t heap
        | Some morecredits ->
            Rt.obs_event t.rt Rt.Obs.Transition
              (if morecredits > 0 then "sb.partial->active"
               else "sb.partial->full");
            (* Pop the reserved block (lines 11-15). *)
            let addr, _, () =
              pop_block t desc ~label:Labels.mp_pop_cas
                ~on_anchor:(fun ~oldanchor:_ ~newanchor -> (newanchor, ()))
            in
            (* lines 16-17 *)
            if morecredits > 0 then update_active t heap desc morecredits;
            Some (finish_block t desc addr))

  (* ------------------------------------------------------------------ *)
  (* MallocFromNewSB (Fig. 4), preceded by warm adoption (DESIGN.md §14). *)

  (* Adopt a parked EMPTY superblock instead of mapping a fresh one. The
     tag-bumping pop of the cache stack made the descriptor private to us,
     so the anchor read and the head-link read below are non-racy; the
     free list survived the park intact (all [maxcount] blocks chained
     from [avail]), so the whole of Fig. 4's line 2-3 work — the mmap and
     the O(maxcount) free-list initialization — is skipped. The anchor
     install continues the descriptor's own tag sequence, so a stale CAS
     from the superblock's previous life still fails. *)
  let adopt_parked t heap =
    match Sb_cache.adopt t.sbc ~sc:heap.sc with
    | None -> None
    | Some desc ->
        desc.Descriptor.heap_gid <- heap.gid;
        let maxcount = desc.Descriptor.maxcount in
        let a0 = Rt.Atomic.get desc.Descriptor.anchor in
        let avail0 = Anchor.avail a0 in
        let head = desc.Descriptor.sb + (avail0 * desc.Descriptor.sz) in
        let next = clamp_index (Store.read_word t.store head) in
        (* Same credits arithmetic as the fresh-superblock path below. *)
        let credits = min (maxcount - 1) t.cfg.maxcredits - 1 in
        let newactive = Active_word.make ~desc_id:desc.Descriptor.id ~credits in
        Rt.Atomic.set desc.Descriptor.anchor
          (Anchor.make ~avail:next
             ~count:(maxcount - 1 - (credits + 1))
             ~state:Anchor.Active ~tag:(Anchor.tag a0 + 1));
        Rt.fence t.rt;
        Rt.label t.rt Labels.mnsb_install;
        if Rt.Atomic.compare_and_set heap.active Active_word.null newactive
        then begin
          Rt.obs_event t.rt Rt.Obs.Transition "sb.cached->active";
          Some (finish_block t desc head)
        end
        else begin
          (* Lost the install race: nothing was handed out, the links are
             untouched — restore the parked EMPTY anchor (tag moves
             forward, never back) and re-park. *)
          Rt.Atomic.set desc.Descriptor.anchor
            (Anchor.make ~avail:avail0 ~count:(maxcount - 1)
               ~state:Anchor.Empty ~tag:(Anchor.tag a0 + 2));
          if Sb_cache.park t.sbc ~sc:heap.sc desc then
            Rt.obs_event t.rt Rt.Obs.Transition "sb.empty->cached"
          else begin
            release_sb t desc.Descriptor.sb;
            desc.Descriptor.sb <- Addr.null;
            Desc_pool.retire t.pool desc
          end;
          None
        end

  let malloc_from_new_sb_fresh t heap =
    let desc = Desc_pool.alloc t.pool in
    (* line 1 *)
    let sz = Sc.block_size t.classes heap.sc in
    let maxcount =
      min (Sc.blocks_per_superblock t.classes heap.sc) Anchor.max_count
    in
    let sb = alloc_sb t in
    (* line 2 *)
    desc.Descriptor.sb <- sb;
    desc.Descriptor.heap_gid <- heap.gid;
    desc.Descriptor.sz <- sz;
    desc.Descriptor.maxcount <- maxcount;
    Store.init_free_list ~limit:t.cfg.sbsize t.store sb ~sz ~maxcount;
    (* line 3 *)
    (* line 9: newactive.credits = min(maxcount-1, MAXCREDITS) - 1 *)
    let credits = min (maxcount - 1) t.cfg.maxcredits - 1 in
    let newactive = Active_word.make ~desc_id:desc.Descriptor.id ~credits in
    (* lines 5, 10, 11 — the anchor keeps its tag across descriptor reuse,
       preserving the ABA argument over the descriptor's whole history. *)
    let oldtag = Anchor.tag (Rt.Atomic.get desc.Descriptor.anchor) in
    Rt.Atomic.set desc.Descriptor.anchor
      (Anchor.make ~avail:1
         ~count:(maxcount - 1 - (credits + 1))
         ~state:Anchor.Active ~tag:(oldtag + 1));
    Rt.fence t.rt;
    (* line 12 *)
    Rt.label t.rt Labels.mnsb_install;
    (* line 13 *)
    if Rt.Atomic.compare_and_set heap.active Active_word.null newactive then begin
      (* lines 14-15: take block 0. *)
      Rt.obs_event t.rt Rt.Obs.Transition "sb.new->active";
      Some (finish_block t desc sb)
    end
    else begin
      (* lines 16-17: another thread won the race; release everything.
         With the warm cache enabled the just-initialized superblock is a
         perfect parking candidate — its free list threads all [maxcount]
         blocks from index 0 and nothing was handed out — so park it
         instead of throwing the mmap and free-list work away. *)
      let parked =
        Sb_cache.enabled t.sbc
        && begin
             Rt.Atomic.set desc.Descriptor.anchor
               (Anchor.make ~avail:0 ~count:(maxcount - 1) ~state:Anchor.Empty
                  ~tag:(oldtag + 2));
             Sb_cache.park t.sbc ~sc:heap.sc desc
           end
      in
      if parked then Rt.obs_event t.rt Rt.Obs.Transition "sb.empty->cached"
      else begin
        release_sb t sb;
        Rt.Atomic.set desc.Descriptor.anchor
          (Anchor.make ~avail:0 ~count:0 ~state:Anchor.Empty ~tag:(oldtag + 2));
        desc.Descriptor.sb <- Addr.null;
        Desc_pool.retire t.pool desc
      end;
      None
    end

  let malloc_from_new_sb t heap =
    match adopt_parked t heap with
    | Some _ as r -> r
    | None -> malloc_from_new_sb_fresh t heap

  (* ------------------------------------------------------------------ *)
  (* Owner-biased private/public free lists (DESIGN.md §19),
     [Alloc_config.free_lists = `Owner_biased].

     In this mode no free ever CASes the anchor. A superblock is either
     OWNED by one thread — its anchor frozen at FULL(0,0), its free
     blocks split between the owner's private plain-write LIFO
     (descriptor fields [priv_head]/[priv_count], links threaded
     through payload words) and the public {!Pub_word} list — or
     UNOWNED, in which case its free blocks all sit on the anchor
     exactly as in the paper's figures and the pub word is the sole
     gate for (re)gaining ownership. The governing invariant: the
     anchor of a descriptor whose pub word has the owned bit set is
     written only by the thread that set that bit, which turns every
     anchor update below into an exclusive plain [Atomic.set]; the
     EMPTY/FULL state machine, [Sb_cache] parking and [Partial_list]
     publication are shared with the anchor path unchanged. *)

  let ob_block_addr (desc : Descriptor.t) idx =
    desc.Descriptor.sb + (idx * desc.Descriptor.sz)

  (* Private-LIFO pop; caller guarantees [priv_count > 0]. The link
     reads are non-racy: a private block is free and reachable only by
     the owning thread. *)
  let priv_pop t (desc : Descriptor.t) =
    let addr = ob_block_addr desc desc.Descriptor.priv_head in
    desc.Descriptor.priv_head <- clamp_index (Store.read_word t.store addr);
    desc.Descriptor.priv_count <- desc.Descriptor.priv_count - 1;
    addr

  let priv_push t (desc : Descriptor.t) base idx =
    Store.write_word t.store base desc.Descriptor.priv_head;
    desc.Descriptor.priv_head <- idx;
    desc.Descriptor.priv_count <- desc.Descriptor.priv_count + 1

  (* Push one pre-linked chain onto the public list in one CAS. [link]
     rewrites the chain tail's link word against the currently observed
     head; the fence publishes the link writes before the CAS makes
     them reachable (mm-sa write-before-publish). Returns the word the
     CAS replaced so the caller can see whether it pushed onto an
     unowned list (and must rescue, below). *)
  let ob_push_loop t (desc : Descriptor.t) ~link ~make_new =
    let rec go spins =
      let oldpub = Rt.Atomic.get desc.Descriptor.pub in
      link oldpub;
      Rt.fence t.rt;
      Rt.label t.rt Labels.pub_push;
      if Rt.Atomic.compare_and_set desc.Descriptor.pub oldpub (make_new oldpub)
      then oldpub
      else begin
        bump t t.retry_pub_push;
        go (Backoff.spin t.rt spins)
      end
    in
    go Backoff.initial

  (* Walk the [n] blocks of an exclusively held chain to its tail. *)
  let ob_chain_tail t (desc : Descriptor.t) head n =
    let idx = ref head in
    for _ = 2 to n do
      idx := clamp_index (Store.read_word t.store (ob_block_addr desc !idx))
    done;
    !idx

  (* Pusher-driven reconciliation of an unowned superblock: a thread
     whose push lands on an unowned pub word must drain the list back
     into the anchor, because nobody else will (the owner is gone).
     Own-and-claim in one CAS — which excludes acquirers and other
     rescuers from the anchor — then flush the claimed chain:
     FULL→PARTIAL republishes through [heap_put_partial], a
     completely-free superblock takes the EMPTY transition and
     releases, both exactly as the anchor path. Un-own and loop for
     pushes that raced in. Lock-free: every iteration transfers some
     thread's completed frees; a thread killed mid-rescue leaves the
     descriptor owned, which every other thread skips past. *)
  let rec ob_rescue t (desc : Descriptor.t) =
    let oldpub = Rt.Atomic.get desc.Descriptor.pub in
    if Pub_word.owned oldpub || Pub_word.count oldpub = 0 then ()
    else begin
      Rt.label t.rt Labels.pub_claim;
      if
        not
          (Rt.Atomic.compare_and_set desc.Descriptor.pub oldpub
             (Pub_word.claim oldpub))
      then begin
        bump t t.retry_pub_claim;
        ob_rescue t desc
      end
      else begin
        let n = Pub_word.count oldpub and head = Pub_word.head oldpub in
        let a = Rt.Atomic.get desc.Descriptor.anchor in
        let oldstate = Anchor.state a in
        (match oldstate with
        | Anchor.Full | Anchor.Partial -> ()
        | st ->
            fail "ob_rescue: desc %d has pushed frees in state %s"
              desc.Descriptor.id
              (Anchor.state_to_string st));
        let total = Anchor.count a + n in
        let tail = ob_chain_tail t desc head n in
        Store.write_word t.store (ob_block_addr desc tail) (Anchor.avail a);
        if total = desc.Descriptor.maxcount then begin
          (* Every block of the superblock is free, so no thread holds
             one and no further push can race: plain-reset both words.
             The anchor takes the adoptable parked-EMPTY form — all
             [maxcount] blocks chained from avail, count = maxcount-1 —
             matching the anchor path's EMPTY transition. *)
          Rt.Atomic.set desc.Descriptor.anchor
            (Anchor.make ~avail:head
               ~count:(desc.Descriptor.maxcount - 1)
               ~state:Anchor.Empty ~tag:(Anchor.tag a + 1));
          Rt.Atomic.set desc.Descriptor.pub (Pub_word.unowned_empty oldpub);
          (* Same observable transition as the anchor path's EMPTY CAS,
             but no [free_empty] label: this update is exclusive (no
             read→CAS window to interpose on). *)
          Rt.obs_event t.rt Rt.Obs.Transition "sb.empty";
          if not (Sb_cache.enabled t.sbc) then release_sb t desc.Descriptor.sb;
          match oldstate with
          | Anchor.Partial ->
              (* Already in the partial structures: remove-then-release
                 with the same slot-ABA guard as the anchor path. *)
              remove_empty_desc t (heap_of_gid t desc.Descriptor.heap_gid) desc
          | _ ->
              (* FULL: unreferenced, exclusively ours. *)
              release_empty t desc
        end
        else begin
          Rt.fence t.rt;
          Rt.Atomic.set desc.Descriptor.anchor
            (Anchor.make ~avail:head ~count:total ~state:Anchor.Partial
               ~tag:(Anchor.tag a + 1));
          (* Republish BEFORE un-owning: a rescuer that claims the pub
             word after us must find the descriptor already reachable,
             or its own EMPTY transition could release a descriptor
             that is in no structure. *)
          if oldstate = Anchor.Full then begin
            Rt.obs_event t.rt Rt.Obs.Transition "sb.full->partial";
            heap_put_partial t desc
          end;
          let b = Backoff.create t.rt in
          let rec un_own () =
            let p = Rt.Atomic.get desc.Descriptor.pub in
            Rt.label t.rt Labels.pub_claim;
            if
              not
                (Rt.Atomic.compare_and_set desc.Descriptor.pub p
                   (Pub_word.un_own p))
            then begin
              bump t t.retry_pub_claim;
              Backoff.once b;
              un_own ()
            end
          in
          un_own ();
          ob_rescue t desc
        end
      end
    end

  (* Try to set the owned bit (keeping any pending public blocks: the
     new owner claims them on its first refill). [false] means a rescue
     is in flight or a killed thread orphaned the word — callers skip
     the descriptor rather than wait on anyone. *)
  let ob_try_own t (desc : Descriptor.t) =
    let rec go () =
      let oldpub = Rt.Atomic.get desc.Descriptor.pub in
      if Pub_word.owned oldpub then false
      else begin
        Rt.label t.rt Labels.pub_claim;
        if
          Rt.Atomic.compare_and_set desc.Descriptor.pub oldpub
            (Pub_word.own oldpub)
        then true
        else begin
          bump t t.retry_pub_claim;
          go ()
        end
      end
    in
    go ()

  let ob_install t (desc : Descriptor.t) heap tid =
    desc.Descriptor.owner <- tid;
    t.owned.(tid).(heap.sc) <- desc.Descriptor.id

  let rec ob_acquire_partial t heap tid =
    match heap_get_partial t heap with
    | None -> None
    | Some desc ->
        if not (ob_try_own t desc) then begin
          (* Transient rescue or an orphan: put it back, fall through
             to a fresh superblock — never wait. *)
          heap_put_partial t desc;
          None
        end
        else begin
          let a = Rt.Atomic.get desc.Descriptor.anchor in
          match Anchor.state a with
          | Anchor.Empty ->
              (* EMPTY lingering in a partial structure (the
                 remove-empty fallback leaves these in the anchor path
                 too): all blocks free, so no pushers — plain-release
                 and keep looking. *)
              Rt.Atomic.set desc.Descriptor.pub
                (Pub_word.unowned_empty (Rt.Atomic.get desc.Descriptor.pub));
              release_empty t desc;
              ob_acquire_partial t heap tid
          | Anchor.Partial ->
              (* We own the pub word, so this write is exclusive:
                 freeze the anchor and take its whole chain private. *)
              desc.Descriptor.heap_gid <- heap.gid;
              desc.Descriptor.priv_head <- Anchor.avail a;
              desc.Descriptor.priv_count <- Anchor.count a;
              Rt.Atomic.set desc.Descriptor.anchor
                (Anchor.make ~avail:0 ~count:0 ~state:Anchor.Full
                   ~tag:(Anchor.tag a + 1));
              ob_install t desc heap tid;
              Rt.obs_event t.rt Rt.Obs.Transition "sb.partial->owned";
              Some desc
          | st ->
              fail "ob_acquire_partial: desc %d in state %s in partial \
                    structures"
                desc.Descriptor.id
                (Anchor.state_to_string st)
        end

  let ob_acquire_new t heap tid =
    match Sb_cache.adopt t.sbc ~sc:heap.sc with
    | Some desc ->
        (* The tag-bumping cache pop made the descriptor private to us;
           the free list survived parking intact (all [maxcount] blocks
           chained from avail), so it becomes the private list whole —
           no re-zeroing, no free-list rebuild, same as adopt_parked. *)
        desc.Descriptor.heap_gid <- heap.gid;
        let a0 = Rt.Atomic.get desc.Descriptor.anchor in
        desc.Descriptor.priv_head <- Anchor.avail a0;
        desc.Descriptor.priv_count <- desc.Descriptor.maxcount;
        Rt.Atomic.set desc.Descriptor.anchor
          (Anchor.make ~avail:0 ~count:0 ~state:Anchor.Full
             ~tag:(Anchor.tag a0 + 1));
        Rt.Atomic.set desc.Descriptor.pub
          (Pub_word.owned_empty (Rt.Atomic.get desc.Descriptor.pub));
        ob_install t desc heap tid;
        Rt.obs_event t.rt Rt.Obs.Transition "sb.cached->owned";
        desc
    | None ->
        let desc = Desc_pool.alloc t.pool in
        let sz = Sc.block_size t.classes heap.sc in
        let maxcount =
          min (Sc.blocks_per_superblock t.classes heap.sc) Anchor.max_count
        in
        let sb = alloc_sb t in
        desc.Descriptor.sb <- sb;
        desc.Descriptor.heap_gid <- heap.gid;
        desc.Descriptor.sz <- sz;
        desc.Descriptor.maxcount <- maxcount;
        Store.init_free_list ~limit:t.cfg.sbsize t.store sb ~sz ~maxcount;
        desc.Descriptor.priv_head <- 0;
        desc.Descriptor.priv_count <- maxcount;
        (* Ownership is per-thread — there is no install race to lose,
           so both words are plain sets (tags continue the descriptor's
           own sequence, as everywhere). *)
        Rt.Atomic.set desc.Descriptor.anchor
          (Anchor.make ~avail:0 ~count:0 ~state:Anchor.Full
             ~tag:(Anchor.tag (Rt.Atomic.get desc.Descriptor.anchor) + 1));
        Rt.Atomic.set desc.Descriptor.pub
          (Pub_word.owned_empty (Rt.Atomic.get desc.Descriptor.pub));
        ob_install t desc heap tid;
        Rt.obs_event t.rt Rt.Obs.Transition "sb.new->owned";
        desc

  (* The owner's slow path: private list empty. Claim the whole public
     list in one CAS if it has blocks; otherwise hand the superblock
     off — un-own the pub word (the anchor stays FULL(0,0) with every
     block allocated out; remote frees regrow it through pub.push +
     rescue) so the thread can go acquire a superblock with blocks.
     Returns [true] when the private list was refilled. *)
  let rec ob_owner_refill t (desc : Descriptor.t) heap tid =
    let oldpub = Rt.Atomic.get desc.Descriptor.pub in
    if Pub_word.count oldpub > 0 then begin
      Rt.label t.rt Labels.pub_claim;
      if
        Rt.Atomic.compare_and_set desc.Descriptor.pub oldpub
          (Pub_word.claim oldpub)
      then begin
        desc.Descriptor.priv_head <- Pub_word.head oldpub;
        desc.Descriptor.priv_count <- Pub_word.count oldpub;
        true
      end
      else begin
        bump t t.retry_pub_claim;
        ob_owner_refill t desc heap tid
      end
    end
    else begin
      Rt.label t.rt Labels.pub_claim;
      if
        Rt.Atomic.compare_and_set desc.Descriptor.pub oldpub
          (Pub_word.unowned_empty oldpub)
      then begin
        (* [owner] is debug-only (never read for logic), so it is
           cleared after the CAS — nothing belongs in the read→CAS
           window. *)
        desc.Descriptor.owner <- -1;
        t.owned.(tid).(heap.sc) <- 0;
        Rt.obs_event t.rt Rt.Obs.Transition "sb.owned->handoff";
        false
      end
      else begin
        (* A push landed between the read and the CAS: keep owning and
           claim it on the next round. *)
        bump t t.retry_pub_claim;
        ob_owner_refill t desc heap tid
      end
    end

  let rec malloc_ob t sc tid =
    let id = t.owned.(tid).(sc) in
    if id <> 0 then begin
      let desc = Descriptor.get t.table id in
      if desc.Descriptor.priv_count > 0 then
        finish_block t desc (priv_pop t desc)
      else begin
        ignore (ob_owner_refill t desc (heap_at t sc tid) tid : bool);
        malloc_ob t sc tid
      end
    end
    else begin
      let heap = heap_at t sc tid in
      let desc =
        match ob_acquire_partial t heap tid with
        | Some d -> d
        | None -> ob_acquire_new t heap tid
      in
      (* PARTIAL anchors have count > 0 and new superblocks maxcount
         blocks, so the fresh private list is never empty here. *)
      finish_block t desc (priv_pop t desc)
    end

  let free_ob t base prefix tid =
    let desc = Descriptor.get t.table (Prefix.desc_id prefix) in
    (* Same wild-pointer guard as [free_small]. *)
    let off = base - desc.Descriptor.sb in
    let idx = off / desc.Descriptor.sz in
    if
      off < 0 || idx >= desc.Descriptor.maxcount
      || idx * desc.Descriptor.sz <> off
    then invalid_arg "Lf_alloc.free: not a block address";
    let sc = desc.Descriptor.heap_gid / t.nheaps_ in
    if t.owned.(tid).(sc) = desc.Descriptor.id then
      (* Owner: plain-write LIFO push — no CAS, no fence. [sc] is
         trustworthy only combined with the ownership test: if we own
         the descriptor we wrote [heap_gid] ourselves; if we don't, no
         slot of OUR [owned] row can hold its id (ids are unique and
         the row lists exactly what we own), so a stale [heap_gid] can
         only produce a correct "not the owner". *)
      priv_push t desc base idx
    else begin
      let oldpub =
        ob_push_loop t desc
          ~link:(fun p -> Store.write_word t.store base (Pub_word.head p))
          ~make_new:(fun p -> Pub_word.push p ~idx)
      in
      if not (Pub_word.owned oldpub) then ob_rescue t desc
    end

  (* Batched push of one descriptor's group from the block cache: the
     owner's groups go to the private list (plain writes); a remote
     group is pre-chained and pushed onto pub in one CAS, then rescued
     if the word was unowned — the batched form of [free_ob]. *)
  let flush_group_ob t (desc : Descriptor.t) bases tid =
    let sc = desc.Descriptor.heap_gid / t.nheaps_ in
    if t.owned.(tid).(sc) = desc.Descriptor.id then
      List.iter
        (fun base ->
          priv_push t desc base
            ((base - desc.Descriptor.sb) / desc.Descriptor.sz))
        bases
    else begin
      let sb = desc.Descriptor.sb in
      let n = List.length bases in
      let first_idx = (List.hd bases - sb) / desc.Descriptor.sz in
      let rec chain = function
        | [] | [ _ ] -> ()
        | a :: (next :: _ as rest) ->
            Store.write_word t.store a ((next - sb) / desc.Descriptor.sz);
            chain rest
      in
      chain bases;
      let last = List.nth bases (n - 1) in
      let oldpub =
        ob_push_loop t desc
          ~link:(fun p -> Store.write_word t.store last (Pub_word.head p))
          ~make_new:(fun p -> Pub_word.push_n p ~idx:first_idx ~n)
      in
      if not (Pub_word.owned oldpub) then ob_rescue t desc
    end

  (* Batched refill for the block cache: hand out up to [want] private
     blocks. An empty (or absent) private list returns [] and the cache
     falls back to [malloc], whose owner paths run the refill/handoff
     logic — cheap either way. *)
  let refill_batch_ob t ~sc ~want =
    let tid = Rt.self t.rt in
    let id = t.owned.(tid).(sc) in
    if id = 0 then []
    else begin
      let desc = Descriptor.get t.table id in
      let take = min want desc.Descriptor.priv_count in
      let rec go k acc =
        if k = 0 then List.rev acc
        else go (k - 1) (finish_block t desc (priv_pop t desc) :: acc)
      in
      go take []
    end

  (* ------------------------------------------------------------------ *)
  (* malloc (Fig. 4). *)

  (* lines 2-3, rerouted: with the page manager on, large blocks come
     from a span's buddy (no syscall) and only spill to the store's
     direct-map path when no span can serve the size. The prefix records
     the total length either way — [free_large_block] recovers the
     buddy order from it. *)
  let malloc_large t n =
    let len = n + Prefix.prefix_bytes in
    let base =
      match t.pm with
      | Some pm -> (
          match Pm.alloc pm ~len with
          | Some addr -> addr
          | None -> Store.alloc_large t.store ~len)
      | None -> Store.alloc_large t.store ~len
    in
    Store.write_word t.store base (Prefix.large ~total_len:len);
    base + Prefix.prefix_bytes

  let free_large_block t base prefix =
    match t.pm with
    | Some pm when Pm.free pm base ~len:(Prefix.large_len prefix) -> ()
    | _ -> Store.free_large t.store base

  let malloc t n =
    if n < 0 then invalid_arg "Lf_alloc.malloc: negative size";
    let tid = Rt.self t.rt in
    t.mallocs.(tid) <- t.mallocs.(tid) + 1;
    match Sc.class_of_request t.classes n with
    | None -> malloc_large t n (* lines 2-3 *)
    | Some sc ->
        if t.ob then malloc_ob t sc tid
        else begin
          let heap = heap_at t sc tid in
          (* line 1 *)
          let rec attempt () =
            match malloc_from_active t heap with
            | Some payload -> payload
            | None -> (
                match malloc_from_partial t heap with
                | Some payload -> payload
                | None -> (
                    match malloc_from_new_sb t heap with
                    | Some payload -> payload
                    | None -> attempt ()))
          in
          attempt ()
        end

  (* ------------------------------------------------------------------ *)
  (* free (Fig. 6). *)

  (* Post-CAS epilogue shared by the singleton push and the batched flush
     (flush_group below): release an emptied superblock (lines 19-21) or
     re-park a formerly FULL one (lines 22-23). *)
  let finish_push t desc = function
    | _, true, heap_gid ->
        Rt.obs_event t.rt Rt.Obs.Transition "sb.empty";
        Rt.label t.rt Labels.free_empty;
        (* With the warm cache enabled the superblock stays mapped: the
           thread that later removes the descriptor's last reference parks
           bytes + free list + anchor together (release_empty), or unmaps
           there if the cache is full. Unmapping here would tear the
           superblock away before ownership of the descriptor settles. *)
        if not (Sb_cache.enabled t.sbc) then release_sb t desc.Descriptor.sb;
        remove_empty_desc t (heap_of_gid t heap_gid) desc
    | Anchor.Full, false, _ ->
        Rt.obs_event t.rt Rt.Obs.Transition "sb.full->partial";
        heap_put_partial t desc
    | (Anchor.Active | Anchor.Partial | Anchor.Empty), false, _ -> ()

  let free_small t base prefix =
    let desc = Descriptor.get t.table (Prefix.desc_id prefix) in
    let sb = desc.Descriptor.sb in
    (* Wild-pointer guard (cheap, one division): the address must be a
       block boundary of the descriptor's superblock. Catches frees of
       interior pointers and of addresses never returned by malloc before
       they can corrupt the anchor. *)
    let off = base - sb in
    let idx = off / desc.Descriptor.sz in
    if
      off < 0 || idx >= desc.Descriptor.maxcount
      || idx * desc.Descriptor.sz <> off
    then invalid_arg "Lf_alloc.free: not a block address";
    let rec push spins =
      let oldanchor = Rt.Atomic.get desc.Descriptor.anchor in
      (* line 8: thread the block onto the available list. *)
      Store.write_word t.store base (Anchor.avail oldanchor);
      (* line 9 *)
      let with_avail = Anchor.set_avail oldanchor idx in
      let oldstate = Anchor.state oldanchor in
      if Anchor.count oldanchor = desc.Descriptor.maxcount - 1 then begin
        (* lines 12-15: last allocated block — the superblock empties. *)
        let heap_gid = desc.Descriptor.heap_gid in
        (* line 13 *)
        Rt.fence t.rt;
        (* line 14: instruction fence *)
        let newanchor = Anchor.set_state with_avail Anchor.Empty in
        Rt.fence t.rt;
        (* line 17: memory fence *)
        Rt.label t.rt Labels.free_cas;
        if
          Rt.Atomic.compare_and_set desc.Descriptor.anchor oldanchor newanchor
        then (oldstate, true, heap_gid)
        else begin
          bump t t.retry_free;
          push (Backoff.spin t.rt spins)
        end
      end
      else begin
        (* lines 10-11, 16 *)
        let st = if oldstate = Anchor.Full then Anchor.Partial else oldstate in
        let newanchor =
          Anchor.set_count (Anchor.set_state with_avail st)
            (Anchor.count oldanchor + 1)
        in
        Rt.fence t.rt;
        (* line 17: memory fence *)
        Rt.label t.rt Labels.free_cas;
        if
          Rt.Atomic.compare_and_set desc.Descriptor.anchor oldanchor newanchor
        then (oldstate, false, -1)
        else begin
          bump t t.retry_free;
          push (Backoff.spin t.rt spins)
        end
      end
    in
    finish_push t desc (push Backoff.initial)

  let free t payload =
    if payload = Addr.null then ()
    else begin
      let tid = Rt.self t.rt in
      t.frees.(tid) <- t.frees.(tid) + 1;
      (* lines 2-3, extended with aligned-payload resolution *)
      let base_payload, prefix, _delta =
        Store.resolve t.store payload
      in
      let base = base_payload - Prefix.prefix_bytes in
      if Prefix.is_large prefix then free_large_block t base prefix
        (* lines 4-5 *)
      else if t.ob then free_ob t base prefix tid
      else free_small t base prefix
    end

  let usable_size t payload =
    let _, prefix, delta = Store.resolve t.store payload in
    let base_usable =
      if Prefix.is_large prefix then
        Prefix.large_len prefix - Prefix.prefix_bytes
      else
        (Descriptor.get t.table (Prefix.desc_id prefix)).Descriptor.sz
        - Prefix.prefix_bytes
    in
    base_usable - delta

  (* ------------------------------------------------------------------ *)
  (* Batched refill / flush — the entry points of the per-thread
     block-cache frontend (Block_cache, DESIGN.md §13). Not in the
     paper's figures: they amortize Fig. 4's reservation + pop and
     Fig. 6's push over up to [cache_batch] blocks while speaking the
     exact same Active/Anchor protocol, so every shared-structure step
     below stays lock-free and every CAS window carries its own label. *)

  let classify t payload =
    let base_payload, prefix, _delta = Store.resolve t.store payload in
    if Prefix.is_large prefix then `Large
    else begin
      let desc = Descriptor.get t.table (Prefix.desc_id prefix) in
      (* Same wild-pointer guard as [free_small], applied before the block
         can enter a cache and corrupt the anchor much later. *)
      let off = base_payload - Prefix.prefix_bytes - desc.Descriptor.sb in
      let idx = off / desc.Descriptor.sz in
      if
        off < 0 || idx >= desc.Descriptor.maxcount
        || idx * desc.Descriptor.sz <> off
      then invalid_arg "Lf_alloc.free: not a block address";
      let gid = desc.Descriptor.heap_gid in
      let sc = gid / t.nheaps_ in
      `Small
        ( base_payload,
          sc,
          gid - (sc * t.nheaps_) = Rt.self t.rt mod t.nheaps_ )
    end

  let refill_batch t ~sc ~max:want =
    if want < 1 then invalid_arg "Lf_alloc.refill_batch: max must be >= 1";
    if t.ob then refill_batch_ob t ~sc ~want
    else begin
    let heap = my_heap t sc in
    let b = Backoff.create t.rt in
    (* One CAS reserves a whole batch: an Active word with c credits
       entitles its takers to c + 1 pops, so taking
       take = min want (c + 1) reservations at once just subtracts [take]
       (emptying the word when take = c + 1), and the free-list-length
       invariant (length >= count + outstanding reservations) guarantees
       the batched pop below finds [take] linked blocks. *)
    let rec reserve () =
      let oldactive = Rt.Atomic.get heap.active in
      if Active_word.is_null oldactive then None
      else begin
        let credits = Active_word.credits oldactive in
        let take = min want (credits + 1) in
        let newactive =
          if take = credits + 1 then Active_word.null
          else
            Active_word.make
              ~desc_id:(Active_word.desc_id oldactive)
              ~credits:(credits - take)
        in
        Rt.label t.rt Labels.bc_reserve_cas;
        if Rt.Atomic.compare_and_set heap.active oldactive newactive then
          Some (oldactive, take)
        else begin
          bump t t.retry_reserve;
          Backoff.once b;
          reserve ()
        end
      end
    in
    match reserve () with
    | None -> []
    | Some (oldactive, take) ->
        let desc = Descriptor.get t.table (Active_word.desc_id oldactive) in
        let took_last = take = Active_word.credits oldactive + 1 in
        let b = Backoff.create t.rt in
        (* Pop the whole batch in one anchor CAS: walk [take] links of the
           in-superblock free list and swing avail past them. Each link
           read may return garbage when racing — exactly Fig. 4 line 10's
           racy read, [take] times — and the tag bump in the CAS rejects
           any walk that observed a mutated list. *)
        let rec pop () =
          let oldanchor = Rt.Atomic.get desc.Descriptor.anchor in
          let addrs = Array.make take 0 in
          let idx = ref (Anchor.avail oldanchor) in
          for i = 0 to take - 1 do
            let addr = desc.Descriptor.sb + (!idx * desc.Descriptor.sz) in
            addrs.(i) <- addr;
            idx := clamp_index (Store.read_word ~racy:true t.store addr)
          done;
          let newanchor = pop_tag t (Anchor.set_avail oldanchor !idx) in
          let newanchor, morecredits =
            if took_last then
              if Anchor.count oldanchor = 0 then
                (Anchor.set_state newanchor Anchor.Full, 0)
              else begin
                let mc = min (Anchor.count oldanchor) t.cfg.maxcredits in
                (Anchor.set_count newanchor (Anchor.count oldanchor - mc), mc)
              end
            else (newanchor, 0)
          in
          Rt.label t.rt Labels.bc_pop_cas;
          if Rt.Atomic.compare_and_set desc.Descriptor.anchor oldanchor newanchor
          then (addrs, oldanchor, morecredits)
          else begin
            bump t t.retry_pop;
            Backoff.once b;
            pop ()
          end
        in
        let addrs, oldanchor, morecredits = pop () in
        if took_last then
          if Anchor.count oldanchor > 0 then
            update_active t heap desc morecredits
          else Rt.obs_event t.rt Rt.Obs.Transition "sb.active->full";
        Array.to_list (Array.map (fun addr -> finish_block t desc addr) addrs)
    end

  (* Push a batch of blocks of ONE superblock back in one anchor CAS: the
     batch is pre-chained through the blocks' link words (first -> ... ->
     last -> old avail, Fig. 6 line 8 n times) and the CAS adds n to the
     count, with the same EMPTY / FULL->PARTIAL transitions as
     [free_small]. [count = maxcount - n] at the CAS means our n blocks
     were the only allocated ones (so no Active word can reference the
     descriptor), generalizing the paper's n = 1 emptiness test. *)
  let flush_group t (desc : Descriptor.t) bases =
    let n = List.length bases in
    let sb = desc.Descriptor.sb in
    let rec push spins =
      let oldanchor = Rt.Atomic.get desc.Descriptor.anchor in
      let rec chain = function
        | [] -> ()
        | [ last ] -> Store.write_word t.store last (Anchor.avail oldanchor)
        | a :: (next :: _ as rest) ->
            Store.write_word t.store a ((next - sb) / desc.Descriptor.sz);
            chain rest
      in
      chain bases;
      let with_avail =
        Anchor.set_avail oldanchor ((List.hd bases - sb) / desc.Descriptor.sz)
      in
      let oldstate = Anchor.state oldanchor in
      if Anchor.count oldanchor = desc.Descriptor.maxcount - n then begin
        let heap_gid = desc.Descriptor.heap_gid in
        Rt.fence t.rt;
        let newanchor = Anchor.set_state with_avail Anchor.Empty in
        Rt.fence t.rt;
        Rt.label t.rt Labels.bc_flush_cas;
        if
          Rt.Atomic.compare_and_set desc.Descriptor.anchor oldanchor newanchor
        then (oldstate, true, heap_gid)
        else begin
          bump t t.retry_free;
          push (Backoff.spin t.rt spins)
        end
      end
      else begin
        let st = if oldstate = Anchor.Full then Anchor.Partial else oldstate in
        let newanchor =
          Anchor.set_count (Anchor.set_state with_avail st)
            (Anchor.count oldanchor + n)
        in
        Rt.fence t.rt;
        Rt.label t.rt Labels.bc_flush_cas;
        if
          Rt.Atomic.compare_and_set desc.Descriptor.anchor oldanchor newanchor
        then (oldstate, false, -1)
        else begin
          bump t t.retry_free;
          push (Backoff.spin t.rt spins)
        end
      end
    in
    finish_push t desc (push Backoff.initial)

  let flush_batch t payloads =
    (* Group by descriptor, preserving first-seen order so simulated runs
       stay deterministic, then push each group with one CAS. *)
    let groups : (int, int list ref) Hashtbl.t = Hashtbl.create 8 in
    let order = ref [] in
    List.iter
      (fun payload ->
        let base = payload - Prefix.prefix_bytes in
        let prefix = Store.read_word t.store base in
        if Prefix.is_large prefix then free_large_block t base prefix
        else begin
          let id = Prefix.desc_id prefix in
          match Hashtbl.find_opt groups id with
          | Some r -> r := base :: !r
          | None ->
              Hashtbl.add groups id (ref [ base ]);
              order := id :: !order
        end)
      payloads;
    let tid = Rt.self t.rt in
    List.iter
      (fun id ->
        let desc = Descriptor.get t.table id in
        let bases = List.rev !(Hashtbl.find groups id) in
        if t.ob then flush_group_ob t desc bases tid
        else flush_group t desc bases)
      (List.rev !order)

  let op_counts t =
    (Array.fold_left ( + ) 0 t.mallocs, Array.fold_left ( + ) 0 t.frees)

  (* ------------------------------------------------------------------ *)
  (* Introspection and quiescent invariant checking. *)

  let heap_active_desc t ~sc ~heap =
    let aw = Rt.Atomic.get t.heaps.(sc).(heap).active in
    if Active_word.is_null aw then None
    else
      Some (Descriptor.get t.table (Active_word.desc_id aw), Active_word.credits aw)

  let heap_partial_desc t ~sc ~heap =
    let id = Rt.Atomic.get t.heaps.(sc).(heap).partial in
    if id = 0 then None else Some (Descriptor.get t.table id)

  let partial_list t ~sc = t.lists.(sc)

  let pp_heap_summary fmt t =
    Format.fprintf fmt "lock-free heap: %d size classes x %d processor heaps@,"
      (Sc.count t.classes) t.nheaps_;
    let live_by_class = Hashtbl.create 16 in
    Descriptor.fold_live t.table ~init:() ~f:(fun () d ->
        let a = Rt.Atomic.get d.Descriptor.anchor in
        if Anchor.state a <> Anchor.Empty && d.Descriptor.sb <> Addr.null then begin
          let sc =
            match Sc.class_of_request t.classes (d.Descriptor.sz - 8) with
            | Some sc -> sc
            | None -> -1
          in
          let live, free =
            Option.value (Hashtbl.find_opt live_by_class sc) ~default:(0, 0)
          in
          Hashtbl.replace live_by_class sc (live + 1, free + Anchor.count a)
        end);
    Array.iteri
      (fun sc row ->
        match Hashtbl.find_opt live_by_class sc with
        | None -> ()
        | Some (sbs, free) ->
            let actives =
              Array.fold_left
                (fun n h ->
                  if Active_word.is_null (Rt.Atomic.get h.active) then n
                  else n + 1)
                0 row
            in
            let slots =
              Array.fold_left
                (fun n h -> if Rt.Atomic.get h.partial = 0 then n else n + 1)
                0 row
            in
            Format.fprintf fmt
              "  class %2d (%4dB): %3d superblocks, %3d active, %3d partial \
               slots, %5d listed, %6d unreserved free blocks@,"
              sc (Sc.block_size t.classes sc) sbs actives slots
              (Partial_list.length t.lists.(sc))
              free)
      t.heaps;
    let m, f = op_counts t in
    Format.fprintf fmt "  ops: %d mallocs, %d frees@," m f

  let check_invariants t =
    (* 0. Page-manager conservation: every span's buddy accounts for all
       of its pages as free or busy. *)
    Option.iter Pm.check_invariants t.pm;
    (* 1. Collect every reference to a descriptor and ensure uniqueness. *)
    let refs : (int, string) Hashtbl.t = Hashtbl.create 64 in
    let active_reserved : (int, int) Hashtbl.t = Hashtbl.create 64 in
    let add_ref id src =
      if id <> 0 then
        match Hashtbl.find_opt refs id with
        | Some prev -> fail "desc %d referenced from both %s and %s" id prev src
        | None -> Hashtbl.add refs id src
    in
    Array.iteri
      (fun sc row ->
        Array.iteri
          (fun h heap ->
            let aw = Rt.Atomic.get heap.active in
            if not (Active_word.is_null aw) then begin
              let id = Active_word.desc_id aw in
              add_ref id (Printf.sprintf "Active[%d][%d]" sc h);
              Hashtbl.replace active_reserved id (Active_word.credits aw + 1)
            end;
            add_ref
              (Rt.Atomic.get heap.partial)
              (Printf.sprintf "Partial[%d][%d]" sc h))
          row)
      t.heaps;
    Array.iteri
      (fun sc list ->
        List.iter
          (fun d ->
            add_ref d.Descriptor.id (Printf.sprintf "PartialList[%d]" sc))
          (Partial_list.to_list list))
      t.lists;
    let parked_ids = Hashtbl.create 8 in
    for sc = 0 to Sc.count t.classes - 1 do
      List.iter
        (fun id ->
          add_ref id (Printf.sprintf "SbCache[%d]" sc);
          Hashtbl.replace parked_ids id sc)
        (Sb_cache.parked t.sbc ~sc)
    done;
    (* Owner-biased mode: each thread's owned slots reference the
       superblock it holds privately (always empty under `Anchor). *)
    let owned_ids = Hashtbl.create 8 in
    Array.iteri
      (fun tid row ->
        Array.iteri
          (fun sc id ->
            if id <> 0 then begin
              add_ref id (Printf.sprintf "Owned[%d][%d]" tid sc);
              Hashtbl.replace owned_ids id (tid, sc)
            end)
          row)
      t.owned;
    (* 2. Per-descriptor structural checks. *)
    Descriptor.fold_live t.table ~init:() ~f:(fun () d ->
        let a = Rt.Atomic.get d.Descriptor.anchor in
        let id = d.Descriptor.id in
        match Anchor.state a with
        | Anchor.Empty -> (
            (* Retired or awaiting removal (it may linger only in a size
               class partial list) — or parked warm on the superblock
               cache, in which case its whole free list must be intact:
               all [maxcount] blocks chained from [avail] with no repeats,
               ready for adoption without re-initialization. *)
            let pubw = Rt.Atomic.get d.Descriptor.pub in
            if Pub_word.owned pubw || Pub_word.count pubw > 0 then
              fail "EMPTY desc %d with a live pub word %a" id Pub_word.pp pubw;
            (match Hashtbl.find_opt parked_ids id with
            | None -> ()
            | Some sc ->
                if d.Descriptor.sb = Addr.null then
                  fail "parked desc %d without superblock" id;
                if
                  Sc.block_size t.classes sc <> d.Descriptor.sz
                then
                  fail "parked desc %d: sz %d does not match class %d" id
                    d.Descriptor.sz sc;
                let seen = Array.make d.Descriptor.maxcount false in
                let idx = ref (Anchor.avail a) in
                for step = 1 to d.Descriptor.maxcount do
                  if !idx < 0 || !idx >= d.Descriptor.maxcount then
                    fail "parked desc %d: free-list index %d out of range \
                          at step %d" id !idx step;
                  if seen.(!idx) then
                    fail "parked desc %d: free list revisits block %d" id !idx;
                  seen.(!idx) <- true;
                  idx :=
                    Store.read_word t.store
                      (d.Descriptor.sb + (!idx * d.Descriptor.sz))
                done);
            match Hashtbl.find_opt refs id with
            | None -> ()
            | Some src ->
                if
                  not
                    ((String.length src > 11
                     && String.sub src 0 11 = "PartialList")
                    || (String.length src > 7 && String.sub src 0 7 = "SbCache"))
                then fail "EMPTY desc %d referenced from %s" id src)
        | st ->
            if d.Descriptor.sb = Addr.null then
              fail "desc %d in state %s without superblock" id
                (Anchor.state_to_string st);
            let reserved =
              Option.value (Hashtbl.find_opt active_reserved id) ~default:0
            in
            let pubw = Rt.Atomic.get d.Descriptor.pub in
            let owned_here = Hashtbl.mem owned_ids id in
            if Pub_word.owned pubw && not owned_here then
              fail "desc %d: pub word owned but in no thread's owned slot" id;
            if (not (Pub_word.owned pubw)) && Pub_word.count pubw > 0 then
              fail "desc %d: unowned pub word holds %d blocks" id
                (Pub_word.count pubw);
            if owned_here then begin
              if not (Pub_word.owned pubw) then
                fail "owned desc %d: pub word not marked owned" id;
              if st <> Anchor.Full then
                fail "owned desc %d: anchor %s, want FULL" id
                  (Anchor.state_to_string st)
            end;
            (match st with
            | Anchor.Active ->
                if reserved = 0 then
                  fail "ACTIVE desc %d not installed in any heap" id
            | Anchor.Full ->
                if Anchor.count a <> 0 then fail "FULL desc %d with count>0" id;
                (* Owner-biased mode: a FULL anchor is exactly the
                   frozen state of an owned superblock, so an [Owned]
                   reference is legal; anything else is the bug the
                   check has always caught. *)
                (match Hashtbl.find_opt refs id with
                | Some src
                  when not (String.length src >= 5 && String.sub src 0 5 = "Owned")
                  ->
                    fail "FULL desc %d referenced from %s" id src
                | _ -> ())
            | Anchor.Partial ->
                if Anchor.count a = 0 then fail "PARTIAL desc %d with count=0" id;
                if reserved > 0 then
                  fail "PARTIAL desc %d installed as an active superblock" id;
                if not (Hashtbl.mem refs id) then
                  fail "PARTIAL desc %d unreachable" id
            | Anchor.Empty -> assert false);
            let priv_n = if owned_here then d.Descriptor.priv_count else 0 in
            let pub_n = Pub_word.count pubw in
            let free_n = Anchor.count a + reserved in
            if free_n + priv_n + pub_n > d.Descriptor.maxcount then
              fail "desc %d: %d free blocks > maxcount %d" id
                (free_n + priv_n + pub_n)
                d.Descriptor.maxcount;
            (* Walk every free list: the anchor's, and in owner-biased
               mode the private LIFO and the public list, which
               together must cover disjoint blocks. *)
            let seen = Array.make d.Descriptor.maxcount false in
            let walk what head n =
              let idx = ref head in
              for step = 1 to n do
                if !idx < 0 || !idx >= d.Descriptor.maxcount then
                  fail "desc %d: %s index %d out of range at step %d" id what
                    !idx step;
                if seen.(!idx) then
                  fail "desc %d: %s revisits block %d" id what !idx;
                seen.(!idx) <- true;
                idx :=
                  Store.read_word t.store
                    (d.Descriptor.sb + (!idx * d.Descriptor.sz))
              done
            in
            walk "free-list" (Anchor.avail a) free_n;
            if priv_n > 0 then walk "private-list" d.Descriptor.priv_head priv_n;
            if pub_n > 0 then walk "public-list" (Pub_word.head pubw) pub_n;
            (* Every block not on the free list is allocated and must carry
               this descriptor in its prefix. *)
            for i = 0 to d.Descriptor.maxcount - 1 do
              if not seen.(i) then begin
                let p =
                  Store.read_word t.store
                    (d.Descriptor.sb + (i * d.Descriptor.sz))
                in
                if Prefix.is_large p || Prefix.desc_id p <> id then
                  fail "desc %d: allocated block %d has corrupt prefix" id i
              end
            done)

  module Pack = Mm_mem.Alloc_intf.Pack (Rt)

  let instance ?name:(n = name) vrt t =
    Pack.make ~name:n ~rt:vrt ~store:(store t) ~malloc:(malloc t)
      ~free:(free t) ~usable_size:(usable_size t)
      ~check:(fun () -> check_invariants t)
end
