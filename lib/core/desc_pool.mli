(** The lock-free descriptor freelist — [DescAlloc] / [DescRetire]
    (paper Fig. 7 and §3.2.5).

    Descriptors are recycled, so the freelist pop is exposed to the ABA
    problem; the paper offers two cures and we implement both:

    - {b Hazard} (paper default, [SafeCAS] via hazard pointers [17,19]):
      a popping thread publishes a hazard pointer to the candidate head
      and re-validates before CASing; retired descriptors re-enter the
      freelist only after a scan proves no thread protects them.
    - {b Tagged} (paper [18] alternative): the freelist head packs an IBM
      ABA tag next to the descriptor id; pops bump the tag.

    When the freelist is empty, a batch of [batch_size] descriptors is
    created at once (the paper's "superblock of descriptors"); the thread
    keeps one and offers the rest. If another thread stocked the list
    concurrently, the paper returns the whole batch to the OS to avoid
    over-allocating; we do the same by discarding the unused records and
    recycling their ids. *)

type t

val create :
  Mm_runtime.Rt.t ->
  Descriptor.table ->
  kind:Mm_mem.Alloc_config.desc_pool_kind ->
  ?batch_size:int ->
  ?scan_threshold:int ->
  unit ->
  t
(** Default [batch_size]: 64. [scan_threshold] overrides the hazard-pointer
    scan threshold (ignored by the tagged variant); small values make
    descriptor recycling frequent, which the checking subsystem relies on
    to exercise the reclamation path. *)

val alloc : t -> Descriptor.t
(** Pop a descriptor, allocating a fresh batch if none is available. The
    returned descriptor's mutable fields are stale; the caller owns it
    exclusively and must initialize them. *)

val retire : t -> Descriptor.t -> unit
(** Make a descriptor available for reuse (its superblock must already be
    detached). *)

val flush : t -> unit
(** Quiescent teardown helper: force hazard-pointer scans so every retired
    descriptor is back on the freelist (no-op for the tagged variant). *)

val available : t -> int
(** Quiescent snapshot of freelist length plus retired-pending
    descriptors (tests). *)
