(** The lock-free descriptor freelist — [DescAlloc] / [DescRetire]
    (paper Fig. 7 and §3.2.5).

    Descriptors are recycled, so the freelist pop is exposed to the ABA
    problem; the paper offers two cures and we implement both, plus a
    third that sidesteps reclamation entirely:

    - {b Hazard} (paper default, [SafeCAS] via hazard pointers [17,19]):
      a popping thread publishes a hazard pointer to the candidate head
      and re-validates before CASing; retired descriptors re-enter the
      freelist only after a scan proves no thread protects them.
    - {b Tagged} (paper [18] alternative): the freelist head packs an IBM
      ABA tag next to the descriptor id; pops bump the tag.
    - {b Reuse} ("Reuse, don't Recycle" — Arbel-Raviv & Brown;
      DESIGN.md §17): descriptors are immortal per-slot objects reused
      in place. A retired descriptor goes on the retiring thread's
      private LIFO (no CAS); overflow past [batch_size] spills one
      descriptor to a shared tagged stack ([desc.spill]), and an empty
      LIFO steals from it with a tag-bumping pop ([desc.steal]). There
      is no retire list and no scan — [hp.scan] and the [desc.alloc] /
      [desc.refill] / [desc.push] retry rows vanish from the census —
      and ABA safety rests on the same tag discipline that already
      guards every descriptor CAS. Over-allocation is bounded by
      threads x [batch_size].

    When the freelist is empty, a batch of [batch_size] descriptors is
    created at once (the paper's "superblock of descriptors"); the thread
    keeps one and offers the rest. If another thread stocked the list
    concurrently, the paper returns the whole batch to the OS to avoid
    over-allocating; we do the same by discarding the unused records and
    recycling their ids. (The reuse variant stocks its {e private} LIFO
    instead, so that race cannot arise and no descriptor is ever
    discarded.) *)

module Make (Rt : Mm_runtime.Runtime_intf.S) : sig
  type t

  val create :
    Rt.t ->
    Descriptor.Make(Rt).table ->
    kind:Mm_mem.Alloc_config.desc_pool_kind ->
    ?batch_size:int ->
    ?scan_threshold:int ->
    ?on_spill_retry:(unit -> unit) ->
    ?on_steal_retry:(unit -> unit) ->
    unit ->
    t
  (** Default [batch_size]: 64. [scan_threshold] overrides the hazard-pointer
      scan threshold (ignored by the tagged and reuse variants); small values
      make descriptor recycling frequent, which the checking subsystem relies
      on to exercise the reclamation path. [on_spill_retry]/[on_steal_retry]
      fire on each failed CAS of the reuse variant's shared spill stack
      (never for the other kinds) — the allocator stripes them into its
      retry census. For the reuse variant, [batch_size] also bounds the
      per-thread private LIFO; past it, retires spill to the shared stack. *)

  val alloc : t -> Descriptor.Make(Rt).t
  (** Pop a descriptor, allocating a fresh batch if none is available. The
      returned descriptor's mutable fields are stale; the caller owns it
      exclusively and must initialize them. *)

  val retire : t -> Descriptor.Make(Rt).t -> unit
  (** Make a descriptor available for reuse (its superblock must already be
      detached). *)

  val flush : t -> unit
  (** Quiescent teardown helper: force hazard-pointer scans so every retired
      descriptor is back on the freelist (no-op for the tagged and reuse
      variants, which have no retire list). *)

  val available : t -> int
  (** Quiescent snapshot of freelist length plus retired-pending
      descriptors (tests). *)
end
