(** Per-size-class lists of partial superblocks (paper §3.2.6).

    Two managements, both lock-free:
    - {b FIFO} (the paper's preference, reduces contention and false
      sharing): a Michael–Scott queue; [remove_empty] dequeues from the
      head, retiring the first empty descriptor it meets, giving up after
      cycling a small fixed number (4) of non-empty descriptors to the
      tail — each call is O(1), yet an empty descriptor buried behind a
      few partials is reclaimed in one call rather than one call per
      preceding partial.
    - {b LIFO}: a Treiber stack; [remove_empty] pops up to two
      descriptors, retiring empties and re-pushing the rest.

    Descriptors are inserted only by the unique thread that made them
    PARTIAL (or displaced them from a heap's Partial slot), so a
    descriptor is in at most one structure at a time. *)

module Make (Rt : Mm_runtime.Runtime_intf.S) : sig
  type t

  val create : Rt.t -> Mm_mem.Alloc_config.partial_policy -> t

  val put : t -> Descriptor.Make(Rt).t -> unit
  (** [ListPutPartial]. *)

  val get : t -> Descriptor.Make(Rt).t option
  (** [ListGetPartial]. May return a descriptor that has become EMPTY; the
      caller (MallocFromPartial) retires it and retries. *)

  val remove_empty : t -> retire:(Descriptor.Make(Rt).t -> unit) -> unit
  (** [ListRemoveEmptyDesc]: ensure empty descriptors eventually become
      available for reuse. *)

  val length : t -> int
  (** Quiescent snapshot (tests). *)

  val to_list : t -> Descriptor.Make(Rt).t list
  (** Quiescent snapshot, head/top first (tests). *)
end
