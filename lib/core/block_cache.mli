(** Per-thread block-cache frontend over {!Lf_alloc} (DESIGN.md §13).

    Not part of the paper: a single-owner, per-thread, per-size-class
    LIFO of blocks layered in front of the Fig. 4/6 paths. A cache hit
    or a cached free is pure thread-local array traffic — zero shared
    accesses, zero CAS. A miss refills by reserving a whole batch of
    credits in ONE CAS on the Active word and popping the batch with one
    tag-bumping anchor CAS ({!Lf_alloc.refill_batch}); overflowing and
    remote frees are pushed back in batches of one anchor CAS per
    superblock ({!Lf_alloc.flush_batch}). Every shared-structure step is
    therefore still lock-free, and the frontend adds no retry window
    beyond the labelled batched CASes ([bc.*] in {!Labels}).

    With [cfg.cache = false] (the default) every operation passes
    straight through to the backend, preserving the verbatim paper
    allocator bit-for-bit; the harness name ["new-cached"] forces it on.

    Progress and safety: a thread delayed or killed anywhere loses at
    most the blocks its own cache holds (they leak — they stay allocated
    in the backend, so they can never be handed out twice and their
    superblocks can never be reclaimed under a survivor); all other
    threads keep completing, exactly as for the bare allocator. *)

module Make (Rt : Mm_runtime.Runtime_intf.S) : sig
  type t

  val name : string
  (** Short identifier used in experiment output ("new", "hoard", ...). *)

  val create : Rt.t -> Mm_mem.Alloc_config.t -> t
  (** A fresh, independent heap (own store, own descriptors). Thread-safe
      for concurrent [malloc]/[free] once created. *)

  val malloc : t -> int -> int
  (** [malloc t n] allocates a block with at least [n] payload bytes and
      returns its payload address (never [Addr.null]; raises
      [Invalid_argument] on negative [n], [Failure] on substrate
      exhaustion). [malloc t 0] returns a valid unique block. *)

  val free : t -> int -> unit
  (** Returns a block to the heap. [free t Addr.null] is a no-op. Freeing
      an address not obtained from [malloc] (or freeing twice) is a
      programming error with undefined (but memory-safe) behaviour, as in
      C. *)

  val usable_size : t -> int -> int
  (** Payload bytes actually available at an address returned by [malloc]
      (or [Alloc_ops.aligned_alloc]); at least the requested size. *)

  val store : t -> Mm_mem.Store.Make(Rt).t
  val rt : t -> Rt.t

  val check_invariants : t -> unit
  (** Validate internal invariants; requires quiescence (no concurrent
      operations). Raises [Failure] with a diagnostic on violation. *)

  val instance : ?name:string -> Mm_runtime.Rt.t -> t -> Mm_mem.Alloc_intf.instance
  (** Package one heap as a runtime-erased {!Mm_mem.Alloc_intf.instance}.
      The value-level runtime handle is taken from the caller (it knows
      which runtime [Rt] was instantiated with); [?name] overrides the
      harness name. *)

  val backend : t -> Lf_alloc.Make(Rt).t
  (** The wrapped paper allocator (retry census, introspection). *)

  type stats = {
    hits : int;  (** mallocs served from the cache (no shared access) *)
    misses : int;  (** mallocs that went to the backend *)
    refills : int;  (** batched refills performed *)
    refilled_blocks : int;  (** blocks obtained by those refills *)
    flushes : int;  (** batched flushes (overflow, remote, explicit) *)
    flushed_blocks : int;  (** blocks pushed back by those flushes *)
    remote_frees : int;  (** frees of another heap's blocks (buffered) *)
  }

  val stats : t -> stats
  (** Striped counters, quiescent snapshot. *)

  val op_counts : t -> int * int
  (** Total [(mallocs, frees)] the application issued against this
      instance (frontend view; falls back to the backend's counters when
      the cache is disabled). *)

  val cached_blocks : t -> int
  (** Blocks currently parked in all thread caches and remote buffers
      (quiescent snapshot). *)

  val flush_current : t -> unit
  (** Flush the {e calling} thread's entire cache (all classes + remote
      buffer) back to the backend. Tests use it to reach a state where the
      frontend holds nothing; callable only from a thread that owns its
      dense id (inside a run, or quiescently from the host). *)
end
