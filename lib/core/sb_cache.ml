module Make (Rt : Mm_runtime.Runtime_intf.S) = struct
  module Descriptor = Descriptor.Make (Rt)
  module Desc_pool = Desc_pool.Make (Rt)
  module Tis = Mm_lockfree.Tagged_id_stack.Make (Rt)


  (* Warm-superblock cache (DESIGN.md §14): one lock-free recycle stack of
     EMPTY descriptors per size class, bounded by a hysteresis watermark.
     A parked descriptor keeps its superblock bytes, its intact LIFO free
     list and its anchor tag, so adoption skips the mmap, the free-list
     initialization and the descriptor churn of MallocFromNewSB.

     Ownership protocol: only a thread holding exclusive ownership of an
     EMPTY descriptor (it removed the descriptor's last reference — the
     same precondition as Desc_pool.retire) may park it; the tag-bumping
     pop of the tagged stack confers the same exclusivity on the adopter
     that a DescAlloc pop would. Between park and adopt the descriptor
     stays live in the table with its anchor EMPTY, so stale CAS attempts
     from its previous life still fail on the preserved tag (the Fig. 5
     argument, unbroken).

     The watermark is maintained with a reserve-then-push discipline on a
     per-class counter: a parker increments first and backs off (overflow:
     the superblock is genuinely unmapped by the caller) if the cache is
     full, so at most [depth] descriptors are ever parked per class and
     Space peak accounting stays honest. *)

  type stats = { parks : int; adopts : int; overflows : int }

  type t = {
    rt : Rt.t;
    depth : int;
    table : Descriptor.table;
    stacks : Tis.t array;  (* per size class *)
    counts : int Rt.atomic array;  (* parked (or being parked) per class *)
    (* striped per-thread stats *)
    parks : int array;
    adopts : int array;
    overflows : int array;
  }

  let create rt ~depth ~nclasses ~table ?(on_park_retry = fun () -> ())
      ?(on_adopt_retry = fun () -> ()) () =
    if depth < 0 then invalid_arg "Sb_cache.create: depth must be >= 0";
    {
      rt;
      depth;
      table;
      stacks =
        Array.init nclasses (fun _ ->
            Tis.create rt ~push_label:Labels.sbc_park
              ~pop_label:Labels.sbc_adopt ~on_push_retry:on_park_retry
              ~on_pop_retry:on_adopt_retry
              ~get_next:(fun id -> (Descriptor.get table id).Descriptor.next_c)
              ~set_next:(fun id n ->
                (Descriptor.get table id).Descriptor.next_c <- n)
              ());
      counts = Array.init nclasses (fun _ -> Rt.Atomic.make rt 0);
      parks = Array.make Rt.max_threads 0;
      adopts = Array.make Rt.max_threads 0;
      overflows = Array.make Rt.max_threads 0;
    }

  let enabled t = t.depth > 0
  let depth t = t.depth

  let bump t arr = arr.(Rt.self t.rt) <- arr.(Rt.self t.rt) + 1

  let park t ~sc (d : Descriptor.t) =
    if t.depth = 0 then false
    else begin
      (* Reserve a slot under the watermark before publishing: the counter
         transiently overshoots the stack length (between this increment
         and the push), never the other way, so the bound is strict. *)
      let n = Rt.Atomic.fetch_and_add t.counts.(sc) 1 in
      if n >= t.depth then begin
        ignore (Rt.Atomic.fetch_and_add t.counts.(sc) (-1));
        bump t t.overflows;
        false
      end
      else begin
        Tis.push t.stacks.(sc) d.Descriptor.id;
        bump t t.parks;
        true
      end
    end

  let adopt t ~sc =
    if t.depth = 0 then None
    else
      match Tis.pop t.stacks.(sc) with
      | None -> None
      | Some id ->
          ignore (Rt.Atomic.fetch_and_add t.counts.(sc) (-1));
          bump t t.adopts;
          Some (Descriptor.get t.table id)

  let parked t ~sc = Tis.to_list t.stacks.(sc)

  let stats t : stats =
    let sum a = Array.fold_left ( + ) 0 a in
    { parks = sum t.parks; adopts = sum t.adopts; overflows = sum t.overflows }
end
