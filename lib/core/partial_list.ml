module Make (Rt : Mm_runtime.Runtime_intf.S) = struct
  module Descriptor = Descriptor.Make (Rt)
  module Msq = Mm_lockfree.Ms_queue.Make (Rt)
  module Ts = Mm_lockfree.Treiber_stack.Make (Rt)


  type t =
    | Fifo of Descriptor.t Msq.t
    | Lifo of Descriptor.t Ts.t

  let create rt = function
    | Mm_mem.Alloc_config.Fifo -> Fifo (Msq.create rt)
    | Mm_mem.Alloc_config.Lifo -> Lifo (Ts.create rt)

  let put t d =
    match t with Fifo q -> Msq.enqueue q d | Lifo s -> Ts.push s d

  let get t = match t with Fifo q -> Msq.dequeue q | Lifo s -> Ts.pop s

  let is_empty_desc d =
    Anchor.state (Rt.Atomic.get d.Descriptor.anchor) = Anchor.Empty

  (* How many non-empty descriptors one FIFO [remove_empty] call may cycle
     head->tail while hunting for an EMPTY one. Small and fixed: the call
     stays O(1), but an EMPTY descriptor buried behind a few partials is
     still reclaimed in one call instead of waiting for one call per
     preceding partial. *)
  let fifo_scan_bound = 4

  let remove_empty t ~retire =
    match t with
    | Fifo q ->
        let rec go moved =
          if moved >= fifo_scan_bound then ()
          else
            match Msq.dequeue q with
            | None -> ()
            | Some d ->
                if is_empty_desc d then retire d
                else begin
                  Msq.enqueue q d;
                  go (moved + 1)
                end
        in
        go 0
    | Lifo s ->
        let rec go attempts kept =
          if attempts >= 2 then List.iter (Ts.push s) kept
          else
            match Ts.pop s with
            | None -> List.iter (Ts.push s) kept
            | Some d ->
                if is_empty_desc d then begin
                  retire d;
                  List.iter (Ts.push s) kept
                end
                else go (attempts + 1) (d :: kept)
        in
        go 0 []

  let length t = match t with Fifo q -> Msq.length q | Lifo s -> Ts.length s

  let to_list t = match t with Fifo q -> Msq.to_list q | Lifo s -> Ts.to_list s
end
