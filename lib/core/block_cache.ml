module Make (Rt : Mm_runtime.Runtime_intf.S) = struct
  module Lf_alloc = Lf_alloc.Make (Rt)
  module Descriptor = Descriptor.Make (Rt)

  module Cfg = Mm_mem.Alloc_config
  module Addr = Mm_mem.Addr
  module Sc = Mm_mem.Size_class
  module Store = Mm_mem.Store.Make (Rt)
  module Prefix = Mm_mem.Block_prefix

  (* Per-thread state. Strictly single-owner: only the thread with the
     matching dense id ever touches it, so there is no CAS and no retry
     window anywhere in this file — the only shared-structure operations
     are the batched Lf_alloc calls, which are lock-free. *)
  type cache = {
    stacks : int array array;  (* [size class] -> LIFO of base payloads *)
    lens : int array;
    remote : int array;  (* mixed-class buffer of remote-heap payloads *)
    mutable remote_len : int;
  }

  type stats = {
    hits : int;
    misses : int;
    refills : int;
    refilled_blocks : int;
    flushes : int;
    flushed_blocks : int;
    remote_frees : int;
  }

  type t = {
    backend : Lf_alloc.t;
    rt : Rt.t;
    cfg : Cfg.t;
    enabled : bool;
    caches : cache array;  (* indexed by Rt.self *)
    (* striped per-thread statistics *)
    hits : int array;
    misses : int array;
    refills : int array;
    refilled_blocks : int array;
    flushes : int array;
    flushed_blocks : int array;
    remote_frees : int array;
    mallocs : int array;
    frees : int array;
  }

  let name = "new-cached"

  let create rt (cfg : Cfg.t) =
    let backend = Lf_alloc.create rt cfg in
    let nclasses = Sc.count (Lf_alloc.size_classes backend) in
    let mk_cache _ =
      {
        stacks =
          Array.init nclasses (fun _ -> Array.make cfg.cache_blocks Addr.null);
        lens = Array.make nclasses 0;
        remote = Array.make cfg.cache_batch Addr.null;
        remote_len = 0;
      }
    in
    {
      backend;
      rt;
      cfg;
      enabled = cfg.cache;
      caches = Array.init Rt.max_threads mk_cache;
      hits = Array.make Rt.max_threads 0;
      misses = Array.make Rt.max_threads 0;
      refills = Array.make Rt.max_threads 0;
      refilled_blocks = Array.make Rt.max_threads 0;
      flushes = Array.make Rt.max_threads 0;
      flushed_blocks = Array.make Rt.max_threads 0;
      remote_frees = Array.make Rt.max_threads 0;
      mallocs = Array.make Rt.max_threads 0;
      frees = Array.make Rt.max_threads 0;
    }

  let backend t = t.backend
  let rt t = t.rt
  let store t = Lf_alloc.store t.backend
  let usable_size t payload = Lf_alloc.usable_size t.backend payload
  let bump t arr = arr.(Rt.self t.rt) <- arr.(Rt.self t.rt) + 1
  let add_n t arr n = arr.(Rt.self t.rt) <- arr.(Rt.self t.rt) + n
  let my_cache t = t.caches.(Rt.self t.rt)

  (* Hot entry points resolve [Rt.self] once (a domain-local lookup on
     the real runtime) and index the striped state directly. *)
  let bump_at tid arr = arr.(tid) <- arr.(tid) + 1

  let malloc t n =
    if not t.enabled then Lf_alloc.malloc t.backend n
    else begin
      if n < 0 then invalid_arg "Lf_alloc.malloc: negative size";
      let tid = Rt.self t.rt in
      bump_at tid t.mallocs;
      match Sc.class_of_request (Lf_alloc.size_classes t.backend) n with
      | None -> Lf_alloc.malloc t.backend n
      | Some sc -> (
          let c = t.caches.(tid) in
          if c.lens.(sc) > 0 then begin
            (* Hit: pure thread-local pop, zero shared accesses. *)
            bump_at tid t.hits;
            Rt.obs_event t.rt Rt.Obs.Transition "bc.hit";
            c.lens.(sc) <- c.lens.(sc) - 1;
            c.stacks.(sc).(c.lens.(sc))
          end
          else begin
            bump_at tid t.misses;
            Rt.obs_event t.rt Rt.Obs.Transition "bc.miss";
            match
              Lf_alloc.refill_batch t.backend ~sc ~max:t.cfg.cache_batch
            with
            | [] ->
                (* No active superblock: the ordinary Fig. 4 slow paths
                   (partial / new superblock) install one. *)
                Lf_alloc.malloc t.backend n
            | payload :: rest ->
                bump t t.refills;
                add_n t t.refilled_blocks (1 + List.length rest);
                Rt.obs_event t.rt Rt.Obs.Transition "bc.refill";
                List.iter
                  (fun p ->
                    c.stacks.(sc).(c.lens.(sc)) <- p;
                    c.lens.(sc) <- c.lens.(sc) + 1)
                  rest;
                payload
          end)
    end

  let flush_remote t (c : cache) =
    if c.remote_len > 0 then begin
      bump t t.flushes;
      add_n t t.flushed_blocks c.remote_len;
      Rt.obs_event t.rt Rt.Obs.Transition "bc.flush";
      let batch = Array.to_list (Array.sub c.remote 0 c.remote_len) in
      c.remote_len <- 0;
      Lf_alloc.flush_batch t.backend batch
    end

  (* Overflow eviction: flush the [cache_batch] oldest (bottom-of-stack)
     blocks so the most recently freed — hottest in cache — stay. *)
  let flush_overflow t (c : cache) sc =
    let k = t.cfg.cache_batch in
    bump t t.flushes;
    add_n t t.flushed_blocks k;
    Rt.obs_event t.rt Rt.Obs.Transition "bc.flush";
    let st = c.stacks.(sc) in
    let batch = Array.to_list (Array.sub st 0 k) in
    Array.blit st k st 0 (c.lens.(sc) - k);
    c.lens.(sc) <- c.lens.(sc) - k;
    Lf_alloc.flush_batch t.backend batch

  let free t payload =
    if not t.enabled then Lf_alloc.free t.backend payload
    else if payload = Addr.null then ()
    else begin
      let tid = Rt.self t.rt in
      bump_at tid t.frees;
      match Lf_alloc.classify t.backend payload with
      | `Large -> Lf_alloc.free t.backend payload
      | `Small (base_payload, sc, local) ->
          let c = t.caches.(tid) in
          if local then begin
            if c.lens.(sc) = t.cfg.cache_blocks then flush_overflow t c sc;
            c.stacks.(sc).(c.lens.(sc)) <- base_payload;
            c.lens.(sc) <- c.lens.(sc) + 1
          end
          else begin
            (* Remote block: never cache another heap's blocks (they would
               be handed out by the wrong heap's threads and defeat the
               paper's heap affinity); buffer and push back in batches. *)
            bump_at tid t.remote_frees;
            c.remote.(c.remote_len) <- base_payload;
            c.remote_len <- c.remote_len + 1;
            if c.remote_len = t.cfg.cache_batch then flush_remote t c
          end
    end

  let flush_current t =
    let c = my_cache t in
    Array.iteri
      (fun sc len ->
        if len > 0 then begin
          bump t t.flushes;
          add_n t t.flushed_blocks len;
          Rt.obs_event t.rt Rt.Obs.Transition "bc.flush";
          let batch = Array.to_list (Array.sub c.stacks.(sc) 0 len) in
          c.lens.(sc) <- 0;
          Lf_alloc.flush_batch t.backend batch
        end)
      c.lens;
    flush_remote t c

  let sum = Array.fold_left ( + ) 0

  let stats t : stats =
    {
      hits = sum t.hits;
      misses = sum t.misses;
      refills = sum t.refills;
      refilled_blocks = sum t.refilled_blocks;
      flushes = sum t.flushes;
      flushed_blocks = sum t.flushed_blocks;
      remote_frees = sum t.remote_frees;
    }

  let op_counts t =
    if t.enabled then (sum t.mallocs, sum t.frees)
    else Lf_alloc.op_counts t.backend

  let cached_blocks t =
    Array.fold_left
      (fun acc c -> acc + sum c.lens + c.remote_len)
      0 t.caches

  let fail fmt = Format.kasprintf failwith fmt

  let check_invariants t =
    (* Frontend structure: lengths in range, every cached payload unique
       (a double free could smuggle a duplicate in, which would become a
       double allocation on two later hits), and every cached payload
       carries a small-block prefix of the class it is filed under. Then
       the backend's full invariants — cached blocks count as allocated
       there, so nothing below can reclaim their superblocks. *)
    let classes = Lf_alloc.size_classes t.backend in
    let st = store t in
    let seen : (int, unit) Hashtbl.t = Hashtbl.create 64 in
    let check_block ~tid ~where p =
      if Hashtbl.mem seen p then
        fail "block cache: payload %d cached twice (thread %d, %s)" p tid where;
      Hashtbl.add seen p ();
      let prefix = Store.read_word st (p - Prefix.prefix_bytes) in
      if Prefix.is_large prefix then
        fail "block cache: large block %d cached (thread %d, %s)" p tid where
    in
    Array.iteri
      (fun tid c ->
        Array.iteri
          (fun sc len ->
            if len < 0 || len > t.cfg.cache_blocks then
              fail "block cache: thread %d class %d length %d out of [0, %d]"
                tid sc len t.cfg.cache_blocks;
            for i = 0 to len - 1 do
              let p = c.stacks.(sc).(i) in
              check_block ~tid ~where:(Printf.sprintf "class %d" sc) p;
              let prefix = Store.read_word st (p - Prefix.prefix_bytes) in
              let d =
                Descriptor.get (Lf_alloc.descriptor_table t.backend)
                  (Prefix.desc_id prefix)
              in
              if d.Descriptor.sz <> Sc.block_size classes sc then
                fail
                  "block cache: thread %d class %d holds a %d-byte block \
                   (expected %d)"
                  tid sc d.Descriptor.sz
                  (Sc.block_size classes sc)
            done)
          c.lens;
        if c.remote_len < 0 || c.remote_len > t.cfg.cache_batch then
          fail "block cache: thread %d remote buffer length %d out of [0, %d]"
            tid c.remote_len t.cfg.cache_batch;
        for i = 0 to c.remote_len - 1 do
          check_block ~tid ~where:"remote buffer" c.remote.(i)
        done)
      t.caches;
    Lf_alloc.check_invariants t.backend

  module Pack = Mm_mem.Alloc_intf.Pack (Rt)

  let instance ?name:(n = name) vrt t =
    Pack.make ~name:n ~rt:vrt ~store:(store t) ~malloc:(malloc t)
      ~free:(free t) ~usable_size:(usable_size t)
      ~check:(fun () -> check_invariants t)
end
