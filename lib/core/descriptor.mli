(** Superblock descriptors and the descriptor table (paper Fig. 3).

    A descriptor records everything the allocator knows about one
    superblock. Descriptors are identified by small positive ids so they
    can be packed into the [Active] word and the block prefix; the table
    maps ids back to records. Ids of descriptors discarded before first
    use (the install-race path of [DescAlloc]) are recycled; descriptors
    themselves are recycled through [Desc_pool], never freed — matching
    the paper (§3.2.5: "superblock descriptors are not reused as regular
    blocks and cannot be returned to the OS"). *)

module Make (Rt : Mm_runtime.Runtime_intf.S) : sig
  type t = {
    id : int;
    anchor : int Rt.atomic;  (** packed {!Anchor} word *)
    pub : int Rt.atomic;
        (** packed {!Pub_word}: the public remote-free list of the
            owner-biased mode (DESIGN.md §19). Stays at
            [Pub_word.empty] — and costs nothing — under the default
            [`Anchor] free lists. *)
    mutable next_d : t option;
        (** freelist link, hazard-pointer pool variant *)
    mutable next_id : int;  (** freelist link, tagged pool variant; -1 = nil *)
    mutable next_c : int;
        (** recycle-stack link, warm-superblock cache ({!Sb_cache});
            -1 = nil. Distinct from [next_id] so a cache built on the
            tagged stack never aliases the tagged descriptor pool's links. *)
    mutable sb : int;  (** superblock base address; {!Mm_mem.Addr.null} = none *)
    mutable heap_gid : int;  (** owning processor heap (global index) *)
    mutable sz : int;  (** block size (payload + prefix) *)
    mutable maxcount : int;  (** blocks per superblock *)
    mutable owner : int;
        (** owner-biased mode: dense thread id of the current owner, -1
            when unowned. Debug/introspection only — the authoritative
            ownership test is the owner's own [owned] slot in
            [Lf_alloc] (always coherent for the reading thread) plus
            the [pub] word's owned bit. *)
    mutable priv_head : int;
        (** owner-biased mode: head block index of the private LIFO.
            Garbage when [priv_count = 0]; read and written only by the
            owning thread (plain accesses, no fences needed). *)
    mutable priv_count : int;  (** blocks on the private LIFO *)
  }
  (** The mutable fields are written only while the descriptor is privately
      owned (freshly allocated or freshly popped from a partial structure)
      and published by the subsequent CAS, per the paper's fence argument
      (Fig. 4 line 12). *)

  type table

  val create_table : Rt.t -> capacity:int -> table

  val alloc_batch : table -> int -> t list
  (** [alloc_batch tbl n] creates [n] fresh descriptors (a "superblock of
      descriptors", Fig. 7 line 5), installs them in the table and returns
      them unlinked. *)

  val discard : table -> t -> unit
  (** Forget a never-used descriptor and recycle its id (the install-race
      path of Fig. 7 lines 8–9). *)

  val get : table -> int -> t
  (** Raises [Invalid_argument] on a dead or out-of-range id. *)

  val fold_live : table -> init:'a -> f:('a -> t -> 'a) -> 'a
  (** Quiescent iteration over live descriptors (invariant checker). *)

  val live_count : table -> int
end
