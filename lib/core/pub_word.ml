let field_bits = 12
let max_count = (1 lsl field_bits) - 1
let count_shift = field_bits
let owned_shift = 2 * field_bits
let tag_shift = owned_shift + 1
let tag_bits = 62 - tag_shift
let tag_mask = (1 lsl tag_bits) - 1
let field_mask = max_count

let make ~head ~count ~owned ~tag =
  if head < 0 || head > max_count then invalid_arg "Pub_word.make: head";
  if count < 0 || count > max_count then invalid_arg "Pub_word.make: count";
  head
  lor (count lsl count_shift)
  lor ((if owned then 1 else 0) lsl owned_shift)
  lor ((tag land tag_mask) lsl tag_shift)

let empty = make ~head:0 ~count:0 ~owned:false ~tag:0
let head w = w land field_mask
let count w = (w lsr count_shift) land field_mask
let owned w = (w lsr owned_shift) land 1 = 1
let tag w = (w lsr tag_shift) land tag_mask

(* A remote push keeps the tag: pushes never recycle list nodes, so the
   only ABA the tag must defeat is a claim racing a claim (or an
   own/un-own racing anything), and those all bump it. *)
let push w ~idx = make ~head:idx ~count:(count w + 1) ~owned:(owned w) ~tag:(tag w)

let push_n w ~idx ~n =
  make ~head:idx ~count:(count w + n) ~owned:(owned w) ~tag:(tag w)

let claim w = make ~head:0 ~count:0 ~owned:true ~tag:(tag w + 1)
let own w = make ~head:(head w) ~count:(count w) ~owned:true ~tag:(tag w + 1)
let un_own w = make ~head:(head w) ~count:(count w) ~owned:false ~tag:(tag w + 1)
let owned_empty w = make ~head:0 ~count:0 ~owned:true ~tag:(tag w + 1)
let unowned_empty w = make ~head:0 ~count:0 ~owned:false ~tag:(tag w + 1)

let pp fmt w =
  Format.fprintf fmt "{head=%d; count=%d; owned=%b; tag=%d}" (head w) (count w)
    (owned w) (tag w)
