(** The completely lock-free allocator — the paper's contribution (§3).

    The structure is exactly the
    paper's: per size class, an array of processor heaps; each heap an
    [Active] word (descriptor pointer + credits) and a most-recently-used
    [Partial] slot; per size class a lock-free FIFO of partial
    superblocks; descriptors from the lock-free descriptor pool. [malloc]
    tries [MallocFromActive], then [MallocFromPartial], then
    [MallocFromNewSB] (Fig. 4); [free] pushes the block onto its
    superblock's anchor and handles the FULL→PARTIAL and →EMPTY
    transitions (Fig. 6). Every algorithmic CAS, fence and instrumentation
    point follows the figures line by line; comments in the
    implementation cite them.

    When the configuration selects [`Owner_biased] free lists
    (DESIGN.md §19), small malloc/free switch to owner-biased
    private/public superblock free lists: each thread owns at most one
    superblock per size class, serving its own mallocs and frees from a
    private LIFO with plain writes (no CAS at all), while remote frees
    push onto the descriptor's public {!Pub_word} list ([pub.push]) and
    the owner reclaims the whole public list in one CAS ([pub.claim]).
    While a superblock is owned its anchor is frozen at FULL(0,0) and
    written only by the owner, so the anchor state machine, partial
    structures, superblock cache and EMPTY/FULL transitions are shared
    verbatim with the paper's mode — ownership handoff simply re-anchors
    the superblock. Under the default [`Anchor] configuration every path
    is bit-identical to the paper's figures.

    Progress: no operation ever blocks on another thread. A thread delayed
    or killed at any {!Labels} point leaves the heap in a state from which
    every other thread completes its own operations (verified by the
    fault-injection test-suite under the simulated runtime). *)

module Make (Rt : Mm_runtime.Runtime_intf.S) : sig
  type t

  val name : string
  (** Short identifier used in experiment output ("new", "hoard", ...). *)

  val create : Rt.t -> Mm_mem.Alloc_config.t -> t
  (** A fresh, independent heap (own store, own descriptors). Thread-safe
      for concurrent [malloc]/[free] once created. *)

  val malloc : t -> int -> int
  (** [malloc t n] allocates a block with at least [n] payload bytes and
      returns its payload address (never [Addr.null]; raises
      [Invalid_argument] on negative [n], [Failure] on substrate
      exhaustion). [malloc t 0] returns a valid unique block. *)

  val free : t -> int -> unit
  (** Returns a block to the heap. [free t Addr.null] is a no-op. Freeing
      an address not obtained from [malloc] (or freeing twice) is a
      programming error with undefined (but memory-safe) behaviour, as in
      C. *)

  val usable_size : t -> int -> int
  (** Payload bytes actually available at an address returned by [malloc]
      (or [Alloc_ops.aligned_alloc]); at least the requested size. *)

  val store : t -> Mm_mem.Store.Make(Rt).t
  val rt : t -> Rt.t

  val check_invariants : t -> unit
  (** Validate internal invariants; requires quiescence (no concurrent
      operations). Raises [Failure] with a diagnostic on violation. *)

  val instance : ?name:string -> Mm_runtime.Rt.t -> t -> Mm_mem.Alloc_intf.instance
  (** Package one heap as a runtime-erased {!Mm_mem.Alloc_intf.instance}.
      The value-level runtime handle is taken from the caller (it knows
      which runtime [Rt] was instantiated with); [?name] overrides the
      harness name. *)

  (** {2 Introspection beyond the common interface (tests, experiments)} *)

  val size_classes : t -> Mm_mem.Size_class.t
  val nheaps : t -> int
  val descriptor_table : t -> Descriptor.Make(Rt).table
  val desc_pool : t -> Desc_pool.Make(Rt).t

  val sb_cache : t -> Sb_cache.Make(Rt).t
  (** The warm EMPTY-superblock cache (DESIGN.md §14). Disabled — and the
      malloc/free paths bit-identical to the paper's figures — when the
      configuration's [sb_cache_depth] is 0. *)

  val page_manager : t -> Mm_pages.Page_manager.Make(Rt).t option
  (** The span reservoir + lock-free buddy backend (DESIGN.md §15) large
      blocks and superblock carving route through, or [None] — and those
      paths bit-identical to the paper's one-mmap-per-request figures —
      when the configuration's [page_manager] is [false]. *)

  val heap_active_desc : t -> sc:int -> heap:int -> (Descriptor.Make(Rt).t * int) option
  (** The active descriptor of the given processor heap and its current
      credits, if any (quiescent snapshot). *)

  val heap_partial_desc : t -> sc:int -> heap:int -> Descriptor.Make(Rt).t option
  val partial_list : t -> sc:int -> Partial_list.Make(Rt).t

  val op_counts : t -> int * int
  (** Total [(mallocs, frees)] served (striped counters; quiescent). *)

  val retry_sites : string list
  (** Names of the allocator's CAS contention sites, derived from the
      label registry ([Labels.census_sites] then
      [Mm_pages.Pg_labels.census_sites], in registry order). *)

  val pp_heap_summary : Format.formatter -> t -> unit
  (** Human-readable quiescent snapshot of the heap: per size class, the
      number of live superblocks, installed actives, occupied Partial
      slots, listed partials and unreserved free blocks. *)

  val retry_counts : t -> (string * int) list
  (** Failed-CAS counts per contention site since creation (striped
      counters; quiescent snapshot). Quantifies where interference lands
      under a given workload (§4.2.3). *)

  (** {2 Batched operations for the block-cache frontend}

      Used by {!Block_cache} (DESIGN.md §13). They are {e not} part of the
      paper's figures: each amortizes one figure's CAS traffic over a
      batch while speaking the same Active/Anchor protocol, so they
      compose with concurrent Fig. 4/6 operations and remain lock-free.
      Their CAS windows carry the [bc.*] labels. *)

  val refill_batch : t -> sc:int -> max:int -> int list
  (** [refill_batch t ~sc ~max] reserves up to [max] blocks of size class
      [sc] from the calling thread's heap in ONE CAS on the Active word
      (taking the word's remaining credits, at most [max]), then pops the
      whole batch off the superblock free list in one tag-bumping anchor
      CAS. Returns the payload addresses, newest-first; [[]] when the heap
      has no active superblock (the caller falls back to {!malloc}, which
      runs the ordinary MallocFromPartial / MallocFromNewSB paths and
      installs a new Active word). Does not count toward {!op_counts}. *)

  val flush_batch : t -> int list -> unit
  (** [flush_batch t payloads] frees a batch of (base) payloads, grouping
      them by superblock and pushing each group back with one anchor CAS
      (the amortized Fig. 6 push, including the EMPTY and FULL→PARTIAL
      transitions). Payloads must be block payloads as returned by
      {!malloc} / {!refill_batch}. Does not count toward {!op_counts}. *)

  val classify : t -> int -> [ `Large | `Small of int * int * bool ]
  (** [classify t payload] resolves [payload] (following an aligned-alloc
      offset prefix if present) and reports what kind of block it is:
      [`Large], or [`Small (base_payload, sc, local)] where [local] says
      the block's superblock belongs to the calling thread's processor
      heap. Applies {!free}'s wild-pointer guard ([Invalid_argument] on a
      non-block address). Read-only: the caller decides to cache, buffer
      or free. *)
end
