module Make (Rt : Mm_runtime.Runtime_intf.S) = struct
  module Ts = Mm_lockfree.Treiber_stack.Make (Rt)


  type t = {
    id : int;
    anchor : int Rt.atomic;
    pub : int Rt.atomic;
    mutable next_d : t option;
    mutable next_id : int;
    mutable next_c : int;
    mutable sb : int;
    mutable heap_gid : int;
    mutable sz : int;
    mutable maxcount : int;
    mutable owner : int;
    mutable priv_head : int;
    mutable priv_count : int;
  }

  type table = {
    rt : Rt.t;
    slots : t option Rt.atomic array;
    next : int Rt.atomic;
    free_ids : int Ts.t;
  }

  let create_table rt ~capacity =
    if capacity < 2 then invalid_arg "Descriptor.create_table: capacity";
    {
      rt;
      slots = Array.init capacity (fun _ -> Rt.Atomic.make rt None);
      next = Rt.Atomic.make rt 1 (* id 0 is the NULL descriptor *);
      free_ids = Ts.create rt;
    }

  let fresh_id tbl =
    match Ts.pop tbl.free_ids with
    | Some id -> id
    | None ->
        let id = Rt.Atomic.fetch_and_add tbl.next 1 in
        if id >= Array.length tbl.slots then
          failwith "Descriptor: table exhausted (raise store_capacity)";
        id

  let alloc_batch tbl n =
    List.init n (fun _ ->
        let id = fresh_id tbl in
        let d =
          {
            id;
            anchor =
              Rt.Atomic.make tbl.rt
                (Anchor.make ~avail:0 ~count:0 ~state:Anchor.Empty ~tag:0);
            pub = Rt.Atomic.make tbl.rt Pub_word.empty;
            next_d = None;
            next_id = -1;
            next_c = -1;
            sb = Mm_mem.Addr.null;
            heap_gid = -1;
            sz = 0;
            maxcount = 0;
            owner = -1;
            priv_head = 0;
            priv_count = 0;
          }
        in
        Rt.Atomic.set tbl.slots.(id) (Some d);
        d)

  let discard tbl d =
    Rt.Atomic.set tbl.slots.(d.id) None;
    Ts.push tbl.free_ids d.id

  let get tbl id =
    if id < 1 || id >= Array.length tbl.slots then
      invalid_arg "Descriptor.get: id out of range";
    match Rt.Atomic.get tbl.slots.(id) with
    | Some d -> d
    | None -> invalid_arg "Descriptor.get: dead id"

  let fold_live tbl ~init ~f =
    Array.fold_left
      (fun acc slot ->
        match Rt.Atomic.get slot with Some d -> f acc d | None -> acc)
      init tbl.slots

  let live_count tbl = fold_live tbl ~init:0 ~f:(fun n _ -> n + 1)
end
