let ma_read_active = "ma.read_active"
let ma_reserved = "ma.reserved"
let ma_pop_cas = "ma.pop_cas"
let ma_popped = "ma.popped"
let ua_install = "ua.install"
let ua_credits_cas = "ua.credits_cas"
let ua_return_credits = "ua.return_credits"
let mp_got_partial = "mp.got_partial"
let mp_reserve_cas = "mp.reserve_cas"
let mp_pop_cas = "mp.pop_cas"
let hgp_slot_cas = "hgp.slot_cas"
let mnsb_install = "mnsb.install"
let free_cas = "free.cas"
let free_empty = "free.empty"
let free_put_partial = "free.put_partial"
let red_slot_cas = "red.slot_cas"
let desc_alloc = "desc.alloc"
let desc_refill = "desc.refill"
let desc_retire = "desc.retire"
let desc_push = "desc.push"
let desc_spill = "desc.spill"
let desc_steal = "desc.steal"
let bc_reserve_cas = "bc.reserve_cas"
let bc_pop_cas = "bc.pop_cas"
let bc_flush_cas = "bc.flush_cas"
let sbc_park = "sbc.park"
let sbc_adopt = "sbc.adopt"
let pub_push = "pub.push"
let pub_claim = "pub.claim"

let all =
  [
    ma_read_active;
    ma_reserved;
    ma_pop_cas;
    ma_popped;
    ua_install;
    ua_credits_cas;
    ua_return_credits;
    mp_got_partial;
    mp_reserve_cas;
    mp_pop_cas;
    hgp_slot_cas;
    mnsb_install;
    free_cas;
    free_empty;
    free_put_partial;
    red_slot_cas;
    desc_alloc;
    desc_refill;
    desc_retire;
    desc_push;
    desc_spill;
    desc_steal;
    bc_reserve_cas;
    bc_pop_cas;
    bc_flush_cas;
    sbc_park;
    sbc_adopt;
    pub_push;
    pub_claim;
  ]

(* The census registry: how the contention-sites table groups this
   layer's labels. Everything that reports failed CASes — the harness's
   sites table, [Lf_alloc.retry_counts], the obs-vs-striped equality
   proof — derives its row set (and row order) from this list plus
   [Pg_labels.census_sites], so a new label shows up everywhere by
   being added here; one it can't be grouped under fails loudly.
   [census_markers] are the labels with no striped retry counter —
   pure scheduling points, or windows whose sole CAS is one-shot (a
   failure is a state change, not a retry). Together the two lists must
   partition [all] (asserted by the registry-completeness test). *)
let census_sites =
  [
    ("active.reserve", [ ma_read_active; mp_reserve_cas; bc_reserve_cas ]);
    ("anchor.pop", [ ma_pop_cas; mp_pop_cas; bc_pop_cas ]);
    ("anchor.free", [ free_cas; bc_flush_cas ]);
    ("update_active", [ ua_credits_cas ]);
    ("partial.slot", [ free_put_partial ]);
    ("sbc.park", [ sbc_park ]);
    ("sbc.adopt", [ sbc_adopt ]);
    ("desc.spill", [ desc_spill ]);
    ("desc.steal", [ desc_steal ]);
    ("pub.push", [ pub_push ]);
    ("pub.claim", [ pub_claim ]);
  ]

let census_markers =
  [
    ma_reserved;
    ma_popped;
    ua_install;
    ua_return_credits;
    mp_got_partial;
    hgp_slot_cas;
    mnsb_install;
    free_empty;
    red_slot_cas;
    desc_alloc;
    desc_refill;
    desc_retire;
    desc_push;
  ]
