(** Warm-superblock cache: per-size-class lock-free recycle stacks of
    EMPTY descriptors (DESIGN.md §14).

    The paper's allocator returns an emptied superblock to the OS at the
    EMPTY transition and retires its descriptor; churning workloads then
    oscillate through MallocFromNewSB — a simulated mmap plus an
    O(maxcount) free-list initialization per superblock. This cache
    parks the whole descriptor instead: superblock bytes, the intact
    in-block LIFO free list and the anchor tag all survive, so an
    adopting [MallocFromNewSB] pays one tagged-stack pop and one anchor
    store where it used to pay a syscall, a full free-list walk and a
    descriptor-pool round trip.

    Safety: parking requires the same exclusive ownership as
    [Desc_pool.retire] (the caller removed the descriptor's last
    reference); the stack's tag-bumping pop (label {!Labels.sbc_adopt})
    confers exclusive ownership on the adopter. The descriptor's anchor
    keeps its tag across the park→adopt cycle, so a stale anchor CAS
    from the superblock's previous life still fails — the paper's
    Fig. 5 ABA argument carries over unbroken.

    Bound: at most [depth] descriptors per size class (a Hoard-style
    hysteresis watermark); a park beyond the watermark is refused and
    the caller genuinely unmaps, keeping {!Mm_mem.Space} peak accounting
    honest — the cache can hold the mapped footprint above the cache-off
    level by at most [depth * sbsize] per size class in use. *)

module Make (Rt : Mm_runtime.Runtime_intf.S) : sig
  type t

  type stats = { parks : int; adopts : int; overflows : int }

  val create :
    Rt.t ->
    depth:int ->
    nclasses:int ->
    table:Descriptor.Make(Rt).table ->
    ?on_park_retry:(unit -> unit) ->
    ?on_adopt_retry:(unit -> unit) ->
    unit ->
    t
  (** [depth = 0] disables the cache: {!park} always refuses and {!adopt}
      always misses, without touching any shared word — the paper-verbatim
      EMPTY path stays bit-identical. The retry callbacks mirror failed
      stack CASes into the allocator's striped retry census (labels
      {!Labels.sbc_park} / {!Labels.sbc_adopt}). *)

  val enabled : t -> bool
  val depth : t -> int

  val park : t -> sc:int -> Descriptor.Make(Rt).t -> bool
  (** [park t ~sc d] parks EMPTY descriptor [d] (whose superblock must
      still be mapped and whose free list must be intact) on size class
      [sc]'s stack. Returns [false] — caller unmaps and retires — when the
      cache is disabled or at its watermark. The caller must hold
      exclusive ownership of [d], exactly as for [Desc_pool.retire]. *)

  val adopt : t -> sc:int -> Descriptor.Make(Rt).t option
  (** Pop a parked descriptor, transferring exclusive ownership to the
      caller. Its anchor is EMPTY and its [avail] chain threads all
      [maxcount] blocks; its [sz]/[maxcount] match size class [sc]. The
      anchor's [count] field is NOT normalized — an EMPTY reached through
      [free] carries [maxcount - 1] but one reached through the batched
      flush carries [maxcount - n] — so adopters must recompute counts
      from [maxcount] rather than read the parked value (the install in
      [Lf_alloc.malloc_from_new_sb] does). *)

  val parked : t -> sc:int -> int list
  (** Top-first descriptor ids currently parked (quiescent; invariant
      checker and tests). *)

  val stats : t -> stats
  (** Striped totals since creation (quiescent snapshot). *)
end
