module Make (Rt : Mm_runtime.Runtime_intf.S) = struct
  module Descriptor = Descriptor.Make (Rt)
  module Hp = Mm_lockfree.Hazard_pointers.Make (Rt)
  module Tis = Mm_lockfree.Tagged_id_stack.Make (Rt)
  module Backoff = Mm_lockfree.Backoff.Make (Rt)


  type hazard_pool = {
    head : Descriptor.t option Rt.atomic;
    hp : Descriptor.t Hp.t;
  }

  (* "Reuse, don't Recycle" (Arbel-Raviv & Brown; DESIGN.md §17):
     descriptors are immortal — once allocated, a slot is never discarded
     and never passes through a reclamation scan. A retired descriptor
     goes on the retiring thread's private LIFO (plain field writes, no
     CAS, no label: the chain is single-owner); only when that LIFO holds
     [batch_size] descriptors does one spill to the shared tagged stack.
     Allocation drains the private LIFO first, then steals from the
     shared stack (a tag-bumping pop, so the IBM tag discipline that
     already guards every descriptor CAS covers the hand-off), and only
     then creates a fresh batch. Nothing is ever freed, so there is no
     retire list to scan — hp.scan disappears from the census — and the
     over-allocation is bounded by threads x batch_size. *)
  type reuse_pool = {
    local_head : int array;  (* per-thread LIFO head id; -1 = empty *)
    local_len : int array;
    (* Shared spill stack, inline over the descriptors' next_id links with
       the same packed tag|id head word as Tagged_id_stack (24-bit ids,
       tag-bumping pops). Inline rather than a Tagged_id_stack with label
       parameters so the desc.spill / desc.steal labels sit adjacent to
       their CAS (mm-lint R1 covers them); passing registry labels to
       Tis.create here would discharge every Tis obligation in this module
       at once (mm-sa's module-level S4 overrides) and hide the tagged
       variant's desc.alloc window from the static nets. *)
    spill_head : int Rt.atomic;
    next_of : int -> int;  (* descriptor id -> its next_id link *)
    on_spill_retry : unit -> unit;
    on_steal_retry : unit -> unit;
  }

  type variant =
    | Hazard_v of hazard_pool
    | Tagged_v of Tis.t
    | Reuse_v of reuse_pool

  type t = {
    rt : Rt.t;
    table : Descriptor.table;
    batch_size : int;
    variant : variant;
  }

  (* Raw Treiber push over the descriptors' own next_d links. Safe without
     tags: only pops can complete erroneously under ABA (paper [8]). This is
     the push CAS of Fig. 7's DescRetire, reached here via hazard-pointer
     reclamation. *)
  (* Spill-stack head word, shared layout with Tagged_id_stack:
     (tag lsl 25) lor (id + 1); id + 1 = 0 encodes the empty stack. *)
  let spill_id_bits = 24
  let spill_pack ~tag ~id = (tag lsl (spill_id_bits + 1)) lor (id + 1)
  let spill_unpack_id w = (w land ((1 lsl (spill_id_bits + 1)) - 1)) - 1
  let spill_unpack_tag w = w lsr (spill_id_bits + 1)

  let rec raw_push rt head d =
    let old = Rt.Atomic.get head in
    d.Descriptor.next_d <- old;
    Rt.fence rt;
    Rt.label rt Labels.desc_push;
    if not (Rt.Atomic.compare_and_set head old (Some d)) then raw_push rt head d

  let create rt table ~kind ?(batch_size = 64) ?scan_threshold ?on_spill_retry
      ?on_steal_retry () =
    if batch_size < 1 then invalid_arg "Desc_pool.create: batch_size";
    let variant =
      match kind with
      | Mm_mem.Alloc_config.Hazard ->
          let head = Rt.Atomic.make rt None in
          let hp =
            Hp.create ?scan_threshold rt ~reuse:(fun d -> raw_push rt head d)
          in
          Hazard_v { head; hp }
      | Mm_mem.Alloc_config.Tagged ->
          Tagged_v
            (Tis.create rt
               ~get_next:(fun id -> (Descriptor.get table id).Descriptor.next_id)
               ~set_next:(fun id n ->
                 (Descriptor.get table id).Descriptor.next_id <- n)
               ())
      | Mm_mem.Alloc_config.Reuse ->
          let nop () = () in
          Reuse_v
            {
              local_head = Array.make Rt.max_threads (-1);
              local_len = Array.make Rt.max_threads 0;
              spill_head = Rt.Atomic.make rt (spill_pack ~tag:0 ~id:(-1));
              next_of = (fun id -> (Descriptor.get table id).Descriptor.next_id);
              on_spill_retry = Option.value on_spill_retry ~default:nop;
              on_steal_retry = Option.value on_steal_retry ~default:nop;
            }
    in
    { rt; table; batch_size; variant }

  (* Hazard-pointer-protected pop (the paper's SafeCAS): protect the
     candidate, re-validate the head, then CAS. A descriptor can only
     reappear at the head after passing a hazard scan, which our published
     pointer prevents. *)
  let hazard_pop t p =
    let b = Backoff.create t.rt in
    let rec go () =
      match Rt.Atomic.get p.head with
      | None -> None
      | Some d as old ->
          Hp.protect p.hp ~slot:0 d;
          if Rt.Atomic.get p.head != old then begin
            Hp.clear p.hp ~slot:0;
            go ()
          end
          else begin
            let next = d.Descriptor.next_d in
            Rt.label t.rt Labels.desc_alloc;
            if Rt.Atomic.compare_and_set p.head old next then begin
              Hp.clear p.hp ~slot:0;
              Some d
            end
            else begin
              Hp.clear p.hp ~slot:0;
              Backoff.once b;
              go ()
            end
          end
    in
    go ()

  (* Stock the freelist with a fresh batch, keeping one descriptor. Mirrors
     Fig. 7 lines 5-9: if some other thread stocked the list first, discard
     the whole batch ("free the superblock") and go back to popping. *)
  let hazard_refill t p =
    match Descriptor.alloc_batch t.table t.batch_size with
    | [] -> assert false
    | kept :: rest -> (
        let chain =
          List.fold_right
            (fun d acc ->
              d.Descriptor.next_d <- acc;
              Some d)
            rest None
        in
        Rt.fence t.rt;
        match chain with
        | None ->
            if Rt.Atomic.get p.head = None then Some kept
            else begin
              Descriptor.discard t.table kept;
              None
            end
        | Some _ ->
            Rt.label t.rt Labels.desc_refill;
            if Rt.Atomic.compare_and_set p.head None chain then Some kept
            else begin
              Descriptor.discard t.table kept;
              List.iter (Descriptor.discard t.table) rest;
              None
            end)

  let tagged_refill t stack =
    match Descriptor.alloc_batch t.table t.batch_size with
    | [] -> assert false
    | kept :: rest ->
        List.iter (fun d -> Tis.push stack d.Descriptor.id) rest;
        Some kept

  (* Single-owner push/pop on the calling thread's private LIFO — plain
     field writes, no CAS window, no label. A thread killed mid-push leaks
     at most its own chain (bounded by batch_size), which is the reuse
     transformation's stated trade: no reclamation, bounded waste. *)
  let local_push r tid (d : Descriptor.t) =
    d.Descriptor.next_id <- r.local_head.(tid);
    r.local_head.(tid) <- d.Descriptor.id;
    r.local_len.(tid) <- r.local_len.(tid) + 1

  let local_pop t r tid =
    let h = r.local_head.(tid) in
    if h < 0 then None
    else begin
      let d = Descriptor.get t.table h in
      r.local_head.(tid) <- d.Descriptor.next_id;
      r.local_len.(tid) <- r.local_len.(tid) - 1;
      Some d
    end

  (* Spill a full private LIFO's overflow to the shared stack. Pushes
     reuse the old tag: only pops need to change it, because only a pop
     can complete erroneously under ABA (same argument as the anchor's
     tag field and Tagged_id_stack.push). *)
  let spill_push t r (d : Descriptor.t) =
    let b = Backoff.create t.rt in
    let rec go () =
      let old = Rt.Atomic.get r.spill_head in
      d.Descriptor.next_id <- spill_unpack_id old;
      Rt.fence t.rt;
      let desired =
        spill_pack ~tag:(spill_unpack_tag old) ~id:d.Descriptor.id
      in
      Rt.label t.rt Labels.desc_spill;
      if not (Rt.Atomic.compare_and_set r.spill_head old desired) then begin
        r.on_spill_retry ();
        Backoff.once b;
        go ()
      end
    in
    go ()

  (* Steal a spilled descriptor: a tag-bumping pop, so a head that was
     popped and re-pushed between our read and our CAS cannot be confused
     for the unchanged head. The next_id read needs no hazard protection —
     descriptors are immortal under Reuse, so the slot is always readable,
     and a stale link only makes the CAS fail on the bumped tag. *)
  let steal_pop t r =
    let b = Backoff.create t.rt in
    let rec go () =
      let old = Rt.Atomic.get r.spill_head in
      let id = spill_unpack_id old in
      if id < 0 then None
      else begin
        let next = r.next_of id in
        let desired = spill_pack ~tag:(spill_unpack_tag old + 1) ~id:next in
        Rt.label t.rt Labels.desc_steal;
        if Rt.Atomic.compare_and_set r.spill_head old desired then
          Some (Descriptor.get t.table id)
        else begin
          r.on_steal_retry ();
          Backoff.once b;
          go ()
        end
      end
    in
    go ()

  (* Fresh descriptors go straight onto the private LIFO: they have never
     been shared, so no other thread can be stocking the same list — the
     Fig. 7 discard-the-batch race cannot arise and no descriptor is ever
     returned to the table. *)
  let reuse_refill t r =
    let tid = Rt.self t.rt in
    match Descriptor.alloc_batch t.table t.batch_size with
    | [] -> assert false
    | kept :: rest ->
        List.iter (fun d -> local_push r tid d) rest;
        Some kept

  let reuse_alloc t r =
    let tid = Rt.self t.rt in
    match local_pop t r tid with
    | Some _ as d -> d
    | None -> (
        match steal_pop t r with
        | Some _ as d -> d
        | None -> reuse_refill t r)

  let alloc t =
    let rec go () =
      let popped =
        match t.variant with
        | Hazard_v p -> (
            match hazard_pop t p with
            | Some d -> Some d
            | None -> hazard_refill t p)
        | Tagged_v stack -> (
            Rt.label t.rt Labels.desc_alloc;
            match Tis.pop stack with
            | Some id -> Some (Descriptor.get t.table id)
            | None -> tagged_refill t stack)
        | Reuse_v r -> reuse_alloc t r
      in
      match popped with Some d -> d | None -> go ()
    in
    go ()

  let retire t d =
    Rt.label t.rt Labels.desc_retire;
    match t.variant with
    | Hazard_v p -> Hp.retire p.hp d
    | Tagged_v stack -> Tis.push stack d.Descriptor.id
    | Reuse_v r ->
        let tid = Rt.self t.rt in
        if r.local_len.(tid) < t.batch_size then local_push r tid d
        else spill_push t r d

  let flush t =
    match t.variant with
    | Hazard_v p -> Hp.flush p.hp
    | Tagged_v _ | Reuse_v _ -> ()

  (* mm-lint: allow hp-protect: available is a quiescent-only diagnostic
     (tests and stats probes call it with no concurrent pool traffic), so
     walking the freelist without hazard protection cannot race a reuse;
     protecting every hop would serialize the walk for no safety gain. *)
  (* mm-sa: allow hp-protocol: same quiescent-only diagnostic walk; the
     unprotected next_d hops are exactly the hp-protect exemption above. *)
  let available t =
    match t.variant with
    | Hazard_v p ->
        let rec len acc = function
          | None -> acc
          | Some d -> len (acc + 1) d.Descriptor.next_d
        in
        len 0 (Rt.Atomic.get p.head) + Hp.retired_count p.hp
    | Tagged_v stack -> List.length (Tis.to_list stack)
    | Reuse_v r ->
        let rec shared acc id =
          if id < 0 then acc else shared (acc + 1) (r.next_of id)
        in
        Array.fold_left ( + ) 0 r.local_len
        + shared 0 (spill_unpack_id (Rt.Atomic.get r.spill_head))
end
