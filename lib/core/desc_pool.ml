open Mm_runtime
module Hp = Mm_lockfree.Hazard_pointers
module Tis = Mm_lockfree.Tagged_id_stack
module Backoff = Mm_lockfree.Backoff

type hazard_pool = {
  head : Descriptor.t option Rt.atomic;
  hp : Descriptor.t Hp.t;
}

type variant = Hazard_v of hazard_pool | Tagged_v of Tis.t

type t = {
  rt : Rt.t;
  table : Descriptor.table;
  batch_size : int;
  variant : variant;
}

(* Raw Treiber push over the descriptors' own next_d links. Safe without
   tags: only pops can complete erroneously under ABA (paper [8]). This is
   the push CAS of Fig. 7's DescRetire, reached here via hazard-pointer
   reclamation. *)
let rec raw_push rt head d =
  let old = Rt.Atomic.get head in
  d.Descriptor.next_d <- old;
  Rt.fence rt;
  Rt.label rt Labels.desc_push;
  if not (Rt.Atomic.compare_and_set head old (Some d)) then raw_push rt head d

let create rt table ~kind ?(batch_size = 64) ?scan_threshold () =
  if batch_size < 1 then invalid_arg "Desc_pool.create: batch_size";
  let variant =
    match kind with
    | Mm_mem.Alloc_config.Hazard ->
        let head = Rt.Atomic.make rt None in
        let hp =
          Hp.create ?scan_threshold rt ~reuse:(fun d -> raw_push rt head d)
        in
        Hazard_v { head; hp }
    | Mm_mem.Alloc_config.Tagged ->
        Tagged_v
          (Tis.create rt
             ~get_next:(fun id -> (Descriptor.get table id).Descriptor.next_id)
             ~set_next:(fun id n ->
               (Descriptor.get table id).Descriptor.next_id <- n)
             ())
  in
  { rt; table; batch_size; variant }

(* Hazard-pointer-protected pop (the paper's SafeCAS): protect the
   candidate, re-validate the head, then CAS. A descriptor can only
   reappear at the head after passing a hazard scan, which our published
   pointer prevents. *)
let hazard_pop t p =
  let b = Backoff.create t.rt in
  let rec go () =
    match Rt.Atomic.get p.head with
    | None -> None
    | Some d as old ->
        Hp.protect p.hp ~slot:0 d;
        if Rt.Atomic.get p.head != old then begin
          Hp.clear p.hp ~slot:0;
          go ()
        end
        else begin
          let next = d.Descriptor.next_d in
          Rt.label t.rt Labels.desc_alloc;
          if Rt.Atomic.compare_and_set p.head old next then begin
            Hp.clear p.hp ~slot:0;
            Some d
          end
          else begin
            Hp.clear p.hp ~slot:0;
            Backoff.once b;
            go ()
          end
        end
  in
  go ()

(* Stock the freelist with a fresh batch, keeping one descriptor. Mirrors
   Fig. 7 lines 5-9: if some other thread stocked the list first, discard
   the whole batch ("free the superblock") and go back to popping. *)
let hazard_refill t p =
  match Descriptor.alloc_batch t.table t.batch_size with
  | [] -> assert false
  | kept :: rest -> (
      let chain =
        List.fold_right
          (fun d acc ->
            d.Descriptor.next_d <- acc;
            Some d)
          rest None
      in
      Rt.fence t.rt;
      match chain with
      | None ->
          if Rt.Atomic.get p.head = None then Some kept
          else begin
            Descriptor.discard t.table kept;
            None
          end
      | Some _ ->
          Rt.label t.rt Labels.desc_refill;
          if Rt.Atomic.compare_and_set p.head None chain then Some kept
          else begin
            Descriptor.discard t.table kept;
            List.iter (Descriptor.discard t.table) rest;
            None
          end)

let tagged_refill t stack =
  match Descriptor.alloc_batch t.table t.batch_size with
  | [] -> assert false
  | kept :: rest ->
      List.iter (fun d -> Tis.push stack d.Descriptor.id) rest;
      Some kept

let alloc t =
  let rec go () =
    let popped =
      match t.variant with
      | Hazard_v p -> (
          match hazard_pop t p with
          | Some d -> Some d
          | None -> hazard_refill t p)
      | Tagged_v stack -> (
          Rt.label t.rt Labels.desc_alloc;
          match Tis.pop stack with
          | Some id -> Some (Descriptor.get t.table id)
          | None -> tagged_refill t stack)
    in
    match popped with Some d -> d | None -> go ()
  in
  go ()

let retire t d =
  Rt.label t.rt Labels.desc_retire;
  match t.variant with
  | Hazard_v p -> Hp.retire p.hp d
  | Tagged_v stack -> Tis.push stack d.Descriptor.id

let flush t =
  match t.variant with Hazard_v p -> Hp.flush p.hp | Tagged_v _ -> ()

(* mm-lint: allow hp-protect: available is a quiescent-only diagnostic
   (tests and stats probes call it with no concurrent pool traffic), so
   walking the freelist without hazard protection cannot race a reuse;
   protecting every hop would serialize the walk for no safety gain. *)
(* mm-sa: allow hp-protocol: same quiescent-only diagnostic walk; the
   unprotected next_d hops are exactly the hp-protect exemption above. *)
let available t =
  match t.variant with
  | Hazard_v p ->
      let rec len acc = function
        | None -> acc
        | Some d -> len (acc + 1) d.Descriptor.next_d
      in
      len 0 (Rt.Atomic.get p.head) + Hp.retired_count p.hp
  | Tagged_v stack -> List.length (Tis.to_list stack)
