(** Named instrumentation points inside the lock-free allocator.

    Each label marks a place where the paper's progress argument says a
    thread may be {e arbitrarily delayed or killed} without blocking other
    threads. The allocator calls [Rt.label] at each; under simulation the
    fault-injection tests pause or kill a victim thread at every one of
    them and assert system-wide progress (DESIGN.md §6), and [lib/check]'s
    schedule explorer uses them as context-switch points. Zero cost on the
    real runtime unless a hook is installed.

    The discipline this registry rests on — every CAS retry loop of
    Figs. 4-7 carries a label inside its read-to-CAS window, [all] lists
    every binding exactly once, and every binding is used — is no longer
    a manual audit: mm-lint ([lib/lint], rules unlabelled-cas-window and
    label-registry, DESIGN.md §11) enforces it on every [dune runtest]
    via the [@lint] alias. The lock-free building blocks (MS queue,
    Treiber stack, tagged id stack) carry their own labels in
    [Mm_lockfree.Lf_labels]. *)

val ma_read_active : string
(** MallocFromActive: read Active, before the reservation CAS. *)

val ma_reserved : string
(** MallocFromActive: reservation CAS succeeded, before the pop. *)

val ma_pop_cas : string
(** MallocFromActive: before the anchor pop CAS. *)

val ma_popped : string
(** MallocFromActive: block popped, before UpdateActive / prefix write. *)

val ua_install : string
(** UpdateActive: before the CAS reinstalling the superblock. *)

val ua_credits_cas : string
(** UpdateActive: install failed, inside the credit-return loop, before
    the anchor CAS (Fig. 4 UpdateActive lines 4-8). *)

val ua_return_credits : string
(** UpdateActive: install failed, credits returned, before parking the
    superblock in the Partial slot. *)

val mp_got_partial : string
(** MallocFromPartial: obtained a partial descriptor. *)

val mp_reserve_cas : string
(** MallocFromPartial: before the block-reservation CAS. *)

val mp_pop_cas : string
(** MallocFromPartial: before the reserved-block pop CAS. *)

val hgp_slot_cas : string
(** HeapGetPartial: before the CAS taking the descriptor out of the
    heap's Partial slot. *)

val mnsb_install : string
(** MallocFromNewSB: before the CAS installing the new superblock. *)

val free_cas : string
(** free: before the anchor push CAS. *)

val free_empty : string
(** free: superblock became EMPTY, before returning it to the OS. *)

val free_put_partial : string
(** HeapPutPartial: before the Partial-slot swap CAS. *)

val red_slot_cas : string
(** RemoveEmptyDesc: before the CAS clearing the heap's Partial slot. *)

val desc_alloc : string
(** DescAlloc: before the freelist pop CAS. *)

val desc_refill : string
(** DescAlloc: freelist empty, before the CAS installing a fresh batch
    (Fig. 7 lines 5-9). *)

val desc_retire : string
(** DescRetire: before making the descriptor available again. *)

val desc_push : string
(** Descriptor freelist push: inside the push CAS loop (Fig. 7
    DescRetire; reached via hazard-pointer reclamation on the default
    pool). *)

val desc_spill : string
(** Reuse pool ({!Desc_pool} with [Alloc_config.Reuse], DESIGN.md §17):
    before the tagged-stack CAS spilling a retired descriptor from an
    overfull per-thread LIFO onto the shared stack. *)

val desc_steal : string
(** Reuse pool: before the tag-bumping tagged-stack CAS stealing a
    descriptor from the shared spill stack when the per-thread LIFO is
    empty. *)

val bc_reserve_cas : string
(** Block-cache refill: before the CAS reserving a {e batch} of credits
    on Active (the amortized Fig. 4 reservation; DESIGN.md §13). *)

val bc_pop_cas : string
(** Block-cache refill: before the anchor CAS popping the reserved batch
    off the superblock free list in one step. *)

val bc_flush_cas : string
(** Block-cache flush: before the anchor CAS pushing a batch of freed
    blocks back (the amortized Fig. 6 push). *)

val sbc_park : string
(** Warm-superblock cache: before the tagged-stack CAS parking an EMPTY
    descriptor — superblock bytes and free list intact — on its size
    class's recycle stack ({!Sb_cache}, DESIGN.md §14). *)

val sbc_adopt : string
(** Warm-superblock cache: before the tag-bumping tagged-stack CAS
    adopting a parked descriptor in [MallocFromNewSB], conferring
    exclusive ownership exactly like a descriptor-pool pop. *)

val pub_push : string
(** Owner-biased free lists (DESIGN.md §19): before the CAS pushing a
    remotely freed block onto its superblock's public list
    ({!Pub_word}). *)

val pub_claim : string
(** Owner-biased free lists: before a CAS that claims or transfers the
    public list — the owner's bulk claim, the owner handoff, and the
    rescue/acquire own and un-own flips. *)

val all : string list
(** Every label above; fault-injection tests iterate this list. *)

val census_sites : (string * string list) list
(** The contention-sites census registry: [(site, labels)] rows, in
    table order. Each site groups the labels whose failed CASes one
    striped retry counter of {!Lf_alloc} counts; the harness's sites
    table and {!Lf_alloc.retry_counts} both derive their row set from
    this list (followed by [Mm_pages.Pg_labels.census_sites]), so a new
    label appears in every census by being added here. *)

val census_markers : string list
(** Labels with no striped retry counter (pure scheduling points, or
    one-shot CAS windows). [census_sites]'s labels and [census_markers]
    partition [all]; a test asserts this. *)
