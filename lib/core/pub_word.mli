(** The descriptor's public remote-free list word (owner-biased free
    lists, DESIGN.md §19) — the [Anchor]'s counterpart for the
    [`Owner_biased] mode of {!Mm_mem.Alloc_config.free_lists}.

    One OCaml immediate packs the whole public list so remote frees,
    the owner's bulk claim, and ownership transfer are each one CAS:

    {v
    bits 0..11   head   index of the most recently pushed block (12 bits)
    bits 12..23  count  blocks on the public list (12 bits)
    bit  24      owned  a thread holds the superblock (and its anchor)
    bits 25..61  tag    ABA tag, bumped by claims and ownership flips
    v}

    [head] is garbage when [count = 0]; walks are bounded by [count],
    never by a nil sentinel. Remote pushes keep the tag ({!push}): the
    pushed block is exclusively the pusher's, so the only ABA hazards
    are claim-vs-claim and ownership flips, all of which bump it.

    While [owned] is set, the descriptor's anchor is frozen at
    FULL(0,0) and only the owning thread may write it — every other
    thread interacts with the superblock exclusively through this
    word. *)

val max_count : int
(** 4095: largest representable [head]/[count] (same as {!Anchor}). *)

val empty : int
(** Unowned, no blocks, tag 0 — a fresh descriptor's public word. *)

val make : head:int -> count:int -> owned:bool -> tag:int -> int
val head : int -> int
val count : int -> int
val owned : int -> bool
val tag : int -> int

val push : int -> idx:int -> int
(** New word with [idx] pushed on front: head [idx], count + 1,
    [owned]/[tag] unchanged (the pusher pre-links [idx]'s payload word
    to the old head). *)

val push_n : int -> idx:int -> n:int -> int
(** Batched push: [n] pre-chained blocks headed by [idx] (block-cache
    flush). *)

val claim : int -> int
(** The owner's bulk claim: head 0, count 0, owned, tag + 1. *)

val own : int -> int
(** Acquire ownership keeping any pending public blocks (they stay
    claimable by the new owner): owned, tag + 1. *)

val un_own : int -> int
(** Release ownership keeping pending blocks: unowned, tag + 1. *)

val owned_empty : int -> int
(** Owned with no blocks, tag + 1 (fresh/adopted superblock install). *)

val unowned_empty : int -> int
(** Unowned with no blocks, tag + 1 (owner handoff, EMPTY release). *)

val pp : Format.formatter -> int -> unit
