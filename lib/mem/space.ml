type snapshot = {
  mapped : int;
  mapped_peak : int;
  used : int;
  used_peak : int;
}

module Make (Rt : Mm_runtime.Runtime_intf.S) = struct
  type t = {
    a_mapped : int Rt.atomic;
    a_mapped_peak : int Rt.atomic;
    a_used : int Rt.atomic;
    a_used_peak : int Rt.atomic;
  }

  let create rt =
    {
      a_mapped = Rt.Atomic.make rt 0;
      a_mapped_peak = Rt.Atomic.make rt 0;
      a_used = Rt.Atomic.make rt 0;
      a_used_peak = Rt.Atomic.make rt 0;
    }

  (* mm-lint: allow unlabelled-cas-window: bump_peak maintains a monotone
     statistics maximum outside any progress or safety argument; the worst
     a lost race costs is an under-reported peak for one probe. Labelling
     it would add a schedule decision point to every accounting store and
     blow up the exhaustive-exploration budget in lib/check. *)
  (* mm-sa: allow label-dominance: same statistics CAS; no label means no
     dominating label on the retry path, by design (see above). *)
  let bump_peak peak v =
    let rec go () =
      let p = Rt.Atomic.get peak in
      if v > p && not (Rt.Atomic.compare_and_set peak p v) then go ()
    in
    go ()

  let add counter peak delta =
    let v = Rt.Atomic.fetch_and_add counter delta + delta in
    if delta > 0 then bump_peak peak v

  let add_mapped t delta = add t.a_mapped t.a_mapped_peak delta
  let add_used t delta = add t.a_used t.a_used_peak delta

  let read t =
    {
      mapped = Rt.Atomic.get t.a_mapped;
      mapped_peak = Rt.Atomic.get t.a_mapped_peak;
      used = Rt.Atomic.get t.a_used;
      used_peak = Rt.Atomic.get t.a_used_peak;
    }

  let reset_peaks t =
    Rt.Atomic.set t.a_mapped_peak (Rt.Atomic.get t.a_mapped);
    Rt.Atomic.set t.a_used_peak (Rt.Atomic.get t.a_used)
end
