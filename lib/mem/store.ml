(* [clean] = every byte is still zero (fresh mapping). Cleared when the
   region is returned to the superblock pool with its contents stale;
   [init_free_list] restores the all-zero-but-links state lazily, so a
   recycled superblock never pays an eager full-superblock fill. *)
type region = { bytes : Bytes.t; base : int; len : int; mutable clean : bool }

type os_stats = {
  mmap_calls : int;
  munmap_calls : int;
  sb_allocs : int;
  sb_frees : int;
  sb_reuses : int;
  large_mmaps : int;
  large_munmaps : int;
  pages_requested : int;
  pages_granted : int;
}

let page = 4096
let round_pages n = (n + page - 1) / page * page

module Make (Rt : Mm_runtime.Runtime_intf.S) = struct
  let page = page
  module Ts = Mm_lockfree.Treiber_stack.Make (Rt)
  module Space = Space.Make (Rt)

  type t = {
    rt : Rt.t;
    capacity : int;
    regions : region option Rt.atomic array;
    next_id : int Rt.atomic;
    free_ids : int Ts.t;  (* recycled region ids (large blocks) *)
    sb_pool : int Ts.t;  (* recycled superblock region ids, bytes kept *)
    sbsize : int;
    hyperblocks : bool;
    sbs_per_hyper : int;
    space : Space.t;
    mmap_calls : int Rt.atomic;
    munmap_calls : int Rt.atomic;
    sb_allocs : int Rt.atomic;
    sb_frees : int Rt.atomic;
    sb_reuses : int Rt.atomic;
    large_mmaps : int Rt.atomic;
    large_munmaps : int Rt.atomic;
    pages_requested : int Rt.atomic;
    pages_granted : int Rt.atomic;
  }

  let create rt ?(capacity = 65536) ?(sbsize = 16 * 1024) ?(hyperblocks = false)
      () =
    if capacity < 2 then invalid_arg "Store.create: capacity too small";
    {
      rt;
      capacity;
      regions = Array.init capacity (fun _ -> Rt.Atomic.make rt None);
      next_id = Rt.Atomic.make rt 1 (* region 0 reserved: Addr.null *);
      free_ids = Ts.create rt;
      sb_pool = Ts.create rt;
      sbsize;
      hyperblocks;
      sbs_per_hyper = max 1 (1024 * 1024 / sbsize);
      space = Space.create rt;
      mmap_calls = Rt.Atomic.make rt 0;
      munmap_calls = Rt.Atomic.make rt 0;
      sb_allocs = Rt.Atomic.make rt 0;
      sb_frees = Rt.Atomic.make rt 0;
      sb_reuses = Rt.Atomic.make rt 0;
      large_mmaps = Rt.Atomic.make rt 0;
      large_munmaps = Rt.Atomic.make rt 0;
      pages_requested = Rt.Atomic.make rt 0;
      pages_granted = Rt.Atomic.make rt 0;
    }

  let rt t = t.rt
  let sbsize t = t.sbsize
  let space t = t.space

  let os_stats t =
    {
      mmap_calls = Rt.Atomic.get t.mmap_calls;
      munmap_calls = Rt.Atomic.get t.munmap_calls;
      sb_allocs = Rt.Atomic.get t.sb_allocs;
      sb_frees = Rt.Atomic.get t.sb_frees;
      sb_reuses = Rt.Atomic.get t.sb_reuses;
      large_mmaps = Rt.Atomic.get t.large_mmaps;
      large_munmaps = Rt.Atomic.get t.large_munmaps;
      pages_requested = Rt.Atomic.get t.pages_requested;
      pages_granted = Rt.Atomic.get t.pages_granted;
    }

  let fresh_id t =
    match Ts.pop t.free_ids with
    | Some id -> id
    | None ->
        let id = Rt.Atomic.fetch_and_add t.next_id 1 in
        if id >= t.capacity then
          failwith "Store: region table exhausted (raise ~capacity)";
        id

  let install t id region = Rt.Atomic.set t.regions.(id) (Some region)

  (* One simulated mmap of [len] bytes; [slices] regions are carved out of
     it (1 for large blocks / plain superblocks, [sbs_per_hyper] for
     hyperblocks). Returns the ids in order. [site] distinguishes
     superblock, large-block and span traffic in the observability
     stream; [clean:false] marks a region whose extents may be written
     and re-carved out of order (spans), so lazy re-zeroing never trusts
     the fresh-mapping flag. *)
  let mmap t ~len ~slices ~slice_len ~site ?(clean = true) () =
    Rt.syscall t.rt;
    Rt.Atomic.incr t.mmap_calls;
    Rt.obs_event t.rt Rt.Obs.Mmap site;
    Space.add_mapped t.space (round_pages len);
    let bytes = Bytes.make len '\000' in
    List.init slices (fun i ->
        let id = fresh_id t in
        install t id { bytes; base = i * slice_len; len = slice_len; clean };
        id)

  let alloc_superblock t =
    Rt.Atomic.incr t.sb_allocs;
    match Ts.pop t.sb_pool with
    | Some id ->
        (* Reuse of pooled bytes: no syscall, no mmap — the mapping never
           went away. Counted separately ([sb_reuses]) so the OS census
           distinguishes real mmap traffic from pool hits; the stale
           contents are zeroed lazily by [init_free_list] (the region's
           [clean] flag), never by an eager full-superblock fill. *)
        Rt.Atomic.incr t.sb_reuses;
        if not t.hyperblocks then Space.add_mapped t.space t.sbsize;
        Addr.make ~region:id ~offset:0
    | None ->
        if t.hyperblocks then begin
          let ids =
            mmap t
              ~len:(t.sbsize * t.sbs_per_hyper)
              ~slices:t.sbs_per_hyper ~slice_len:t.sbsize ~site:"store.mmap" ()
          in
          match ids with
          | first :: rest ->
              List.iter (fun id -> Ts.push t.sb_pool id) rest;
              Addr.make ~region:first ~offset:0
          | [] -> assert false
        end
        else
          let ids =
            mmap t ~len:t.sbsize ~slices:1 ~slice_len:t.sbsize
              ~site:"store.mmap" ()
          in
          Addr.make ~region:(List.hd ids) ~offset:0

  let free_superblock t addr =
    if Addr.offset addr <> 0 then
      invalid_arg "Store.free_superblock: not a region base";
    Rt.Atomic.incr t.sb_frees;
    if not t.hyperblocks then begin
      Rt.syscall t.rt;
      Rt.Atomic.incr t.munmap_calls;
      Space.add_mapped t.space (-t.sbsize)
    end;
    (match Rt.Atomic.get t.regions.(Addr.region addr) with
    | Some r -> r.clean <- false
    | None -> ());
    Ts.push t.sb_pool (Addr.region addr)

  let alloc_large t ~len =
    if len <= 0 then invalid_arg "Store.alloc_large: len must be positive";
    Rt.Atomic.incr t.large_mmaps;
    let ids = mmap t ~len ~slices:1 ~slice_len:len ~site:"store.mmap.large" () in
    Addr.make ~region:(List.hd ids) ~offset:0

  (* Unmap a whole region (large block or losing span candidate). *)
  let unmap_region t addr ~what =
    if Addr.offset addr <> 0 then
      invalid_arg (Printf.sprintf "Store.%s: not a region base" what);
    let id = Addr.region addr in
    match Rt.Atomic.get t.regions.(id) with
    | None -> invalid_arg (Printf.sprintf "Store.%s: dead region" what)
    | Some r ->
        Rt.syscall t.rt;
        Rt.Atomic.incr t.munmap_calls;
        Space.add_mapped t.space (-round_pages r.len);
        Rt.Atomic.set t.regions.(id) None;
        Ts.push t.free_ids id

  let free_large t addr =
    Rt.Atomic.incr t.large_munmaps;
    unmap_region t addr ~what:"free_large"

  (* Spans (lib/pages): one page-multiple mapping per span, carved into
     extents by the buddy. Installed dirty ([clean:false]) because large
     payloads are written into carved extents and later re-carved into
     superblocks, which must then lazily re-zero. *)
  let alloc_span t ~pages =
    if pages < 1 then invalid_arg "Store.alloc_span: pages must be positive";
    let len = pages * page in
    let ids =
      mmap t ~len ~slices:1 ~slice_len:len ~site:"store.mmap.span" ~clean:false
        ()
    in
    Addr.make ~region:(List.hd ids) ~offset:0

  let free_span t addr = unmap_region t addr ~what:"free_span"

  let note_buddy_grant t ~requested ~granted =
    ignore (Rt.Atomic.fetch_and_add t.pages_requested requested);
    ignore (Rt.Atomic.fetch_and_add t.pages_granted granted)

  let region_of t addr =
    let id = Addr.region addr in
    if id <= 0 || id >= t.capacity then None else Rt.Atomic.get t.regions.(id)

  let region_len t addr =
    match region_of t addr with None -> 0 | Some r -> r.len

  let live_regions t =
    let n = ref 0 in
    Array.iter (fun a -> if Rt.Atomic.get a <> None then incr n) t.regions;
    !n

  (* A non-racy out-of-bounds word access is a miscomputed address — under
     simulation (where lib/check drives schedules) fail loudly so the
     explorer pins it; in real mode keep the tolerant unmapped-memory
     analogue. Dead regions stay tolerant in both modes: the paper's racy
     reads can legitimately target a region retired between the read of
     the anchor and the dereference, and [~racy:true] grants the same
     licence to in-region offsets read under a race. *)
  let oob_check _t addr off len ~racy ~what =
    if (not racy) && Rt.is_sim then
      failwith
        (Printf.sprintf "Store.%s: out-of-bounds offset %d (region len %d) at %d"
           what off len addr)

  (* On the real runtime the word accessors inline the exact body of
     {!Real_rt.read_word}/[write_word] (a bare little-endian [Bytes]
     access), skipping the indirect call through the functor argument and
     the cache-line attribution only the simulator consumes — the same
     [Rt.is_sim] constant-fold [write_payload_round] uses below. *)

  let read_word ?(racy = false) t addr =
    match region_of t addr with
    | None -> 0
    | Some r ->
        let off = Addr.offset addr in
        if off < 0 || off + 8 > r.len then begin
          oob_check t addr off r.len ~racy ~what:"read_word";
          0
        end
        else if Rt.is_sim then
          Rt.read_word t.rt r.bytes (r.base + off) ~line:(Addr.line addr)
        else Int64.to_int (Bytes.get_int64_le r.bytes (r.base + off))

  let write_word ?(racy = false) t addr v =
    match region_of t addr with
    | None -> ()
    | Some r ->
        let off = Addr.offset addr in
        if off < 0 || off + 8 > r.len then
          oob_check t addr off r.len ~racy ~what:"write_word"
        else if Rt.is_sim then
          Rt.write_word t.rt r.bytes (r.base + off) ~line:(Addr.line addr) v
        else Bytes.set_int64_le r.bytes (r.base + off) (Int64.of_int v)

  (* Resolve a payload address against its 8-byte block prefix: follows an
     aligned_alloc offset word down to the block base. Returns
     (base payload, base prefix word, delta). *)
  let resolve t payload =
    let prefix = read_word t (payload - Block_prefix.prefix_bytes) in
    if Block_prefix.is_offset prefix then begin
      let delta = Block_prefix.offset_delta prefix in
      let base = payload - delta in
      (base, read_word t (base - Block_prefix.prefix_bytes), delta)
    end
    else (payload, prefix, 0)

  let init_free_list ?limit t addr ~sz ~maxcount =
    match region_of t addr with
    | None -> invalid_arg "Store.init_free_list: dead region"
    | Some r ->
        let off = Addr.offset addr in
        if off + (sz * maxcount) > r.len then
          invalid_arg "Store.init_free_list: out of bounds";
        (* [limit] confines the lazy re-zeroing to the superblock's own
           extent — a superblock carved out of a span must not touch its
           neighbours' bytes. Without it the whole region is restored
           (whole-region superblocks, where the two are the same thing). *)
        let hi = match limit with None -> r.len | Some l -> min r.len (off + l) in
        if not r.clean then begin
          (* Recycled bytes: restore the zero state lazily, skipping the
             link words rewritten just below. One pass over the block
             bodies plus the tail the blocks don't cover. *)
          for i = 0 to maxcount - 1 do
            Bytes.fill r.bytes (r.base + off + (i * sz) + 8) (sz - 8) '\000'
          done;
          let covered = off + (sz * maxcount) in
          if covered < hi then
            Bytes.fill r.bytes (r.base + covered) (hi - covered) '\000';
          if limit = None && off > 0 then Bytes.fill r.bytes r.base off '\000'
        end;
        r.clean <- false;
        for i = 0 to maxcount - 1 do
          Bytes.set_int64_le r.bytes (r.base + off + (i * sz)) (Int64.of_int (i + 1))
        done;
        (* The superblock is private until published; charge the traffic as
           one cold streaming write. *)
        Rt.touch_batch t.rt ~line:(Addr.line addr) ~write:true ~count:maxcount

  let write_payload_round t addr ~len ~times =
    match region_of t addr with
    | None -> ()
    | Some r -> (
        let off = Addr.offset addr in
        let len = min len (max 0 (r.len - off)) in
        if len > 0 then
          if not Rt.is_sim then
            for _ = 1 to times do
              Bytes.unsafe_fill r.bytes (r.base + off) len 'w'
            done
          else begin
            (* Split into a few batches so concurrent writers to a shared
               line still ping-pong in the cache model. *)
            let total = len * times in
            let chunks = min 8 (max 1 times) in
            let per = max 1 (total / chunks) in
            let remaining = ref total in
            while !remaining > 0 do
              let n = min per !remaining in
              Rt.touch_batch t.rt ~line:(Addr.line addr) ~write:true ~count:n;
              remaining := !remaining - n
            done
          end)
end
