(* Derived allocation operations (calloc / realloc / aligned_alloc),
   built generically on any allocator instance. *)

open Alloc_intf

let calloc inst ~count ~size =
  if count < 0 || size < 0 then invalid_arg "Alloc_ops.calloc: negative";
  let n = count * size in
  let addr = instance_malloc inst n in
  let words = (n + 7) / 8 in
  for w = 0 to words - 1 do
    instance_write_word inst (addr + (8 * w)) 0
  done;
  addr

let realloc inst addr n =
  if n < 0 then invalid_arg "Alloc_ops.realloc: negative size";
  if addr = Addr.null then instance_malloc inst n
  else begin
    let old_usable = instance_usable inst addr in
    if n <= old_usable then addr
    else begin
      let fresh = instance_malloc inst n in
      let words = (old_usable + 7) / 8 in
      for w = 0 to words - 1 do
        instance_write_word inst (fresh + (8 * w))
          (instance_read_word inst (addr + (8 * w)))
      done;
      instance_free inst addr;
      fresh
    end
  end

let is_pow2 n = n > 0 && n land (n - 1) = 0

let aligned_alloc inst ~align n =
  if not (is_pow2 align) then
    invalid_arg "Alloc_ops.aligned_alloc: alignment must be a power of two";
  if n < 0 then invalid_arg "Alloc_ops.aligned_alloc: negative size";
  if align <= 8 then instance_malloc inst n
  else begin
    (* Payloads are 8-aligned; over-allocate so an aligned position with
       [n] bytes of room always exists, and leave space for the offset
       word below it. *)
    let raw = instance_malloc inst (n + align) in
    let aligned = (raw + align - 1) / align * align in
    if aligned = raw then raw
    else begin
      instance_write_word inst
        (aligned - Block_prefix.prefix_bytes)
        (Block_prefix.offset ~delta:(aligned - raw));
      aligned
    end
  end
