(** The runtime-erased allocator instance — what workloads, experiments
    and tests pass around.

    Since the allocator stack is functorized over
    {!Mm_runtime.Runtime_intf.S} (DESIGN.md §18), an allocator's store
    type differs per runtime, so the old first-class-module packaging
    (one [ALLOCATOR] signature sharing a single [Store.t]) can no longer
    exist. An [instance] is instead a record of closures over one heap:
    each allocator functor provides an [instance] constructor with typed
    access to its own store and space meters, and everything above the
    allocator layer stays runtime-agnostic.

    Addresses returned by [malloc] point at the block payload (the 8-byte
    prefix sits just below, as in the paper); payload words are accessed
    through the [read_word]/[write_word] closures, which delegate to the
    instance's own store. *)

type instance = {
  name : string;  (** short identifier used in experiment output *)
  rt : Mm_runtime.Rt.t;
      (** value-level runtime handle: spawning threads and labelling
          result rows dispatch once per run, never per operation *)
  malloc : int -> int;
  free : int -> unit;
  usable_size : int -> int;
  read_word : ?racy:bool -> int -> int;
  write_word : ?racy:bool -> int -> int -> unit;
  write_payload_round : int -> len:int -> times:int -> unit;
  space : unit -> Space.snapshot;
  os_stats : unit -> Store.os_stats;
  check : unit -> unit;  (** validate invariants; requires quiescence *)
}

let instance_name i = i.name
let instance_rt i = i.rt
let instance_malloc i n = i.malloc n
let instance_free i addr = i.free addr
let instance_usable i addr = i.usable_size addr
let instance_read_word ?racy i addr = i.read_word ?racy addr
let instance_write_word ?racy i addr v = i.write_word ?racy addr v

let instance_write_payload_round i addr ~len ~times =
  i.write_payload_round addr ~len ~times

let instance_space i = i.space ()
let instance_os_stats i = i.os_stats ()
let instance_check i = i.check ()

(** Shared instance-construction plumbing for the allocator functors:
    [Pack (Rt)] knows the runtime's store/space instantiations, so each
    allocator only supplies its heap-specific closures. Applicative
    functor semantics make [Pack(Rt).Store.t] equal to the allocator's
    own [Store.Make(Rt).t]. *)
module Pack (Rt : Mm_runtime.Runtime_intf.S) = struct
  module Store = Store.Make (Rt)
  module Space = Space.Make (Rt)

  let make ~name ~rt ~store ~malloc ~free ~usable_size ~check =
    {
      name;
      rt;
      malloc;
      free;
      usable_size;
      read_word = (fun ?racy addr -> Store.read_word ?racy store addr);
      write_word = (fun ?racy addr v -> Store.write_word ?racy store addr v);
      write_payload_round =
        (fun addr ~len ~times ->
          Store.write_payload_round store addr ~len ~times);
      space = (fun () -> Space.read (Store.space store));
      os_stats = (fun () -> Store.os_stats store);
      check;
    }
end
