(** Configuration shared by all allocators in the repository.

    Defaults mirror the paper's setup: 16 KiB superblocks, [MAXCREDITS] =
    64, one processor heap per (simulated) CPU per size class, FIFO
    partial lists, hazard-pointer descriptor freelist. The alternatives
    are the paper's own design options and are exercised by the ablation
    benchmarks (see DESIGN.md §4). *)

type partial_policy =
  | Fifo  (** §3.2.6 preferred: MS-queue; reduces contention/false sharing *)
  | Lifo  (** §3.2.6 alternative: lock-free LIFO list *)

type desc_pool_kind =
  | Hazard  (** Fig. 7 with SafeCAS via hazard pointers (paper default) *)
  | Tagged  (** IBM tag in the freelist head word (paper [18] alternative) *)
  | Reuse
      (** "Reuse, don't Recycle" (Arbel-Raviv & Brown, DESIGN.md §17):
          descriptors are immortal per-slot objects reused in place —
          a per-thread LIFO of retired descriptors backed by a shared
          tagged spill stack. No hazard pointers, no retire list, no
          [hp.scan]: ABA safety comes from the anchor/IBM tag
          discipline that already guards every descriptor CAS. *)

type lock_kind =
  | Tas_backoff  (** "lightweight" test-and-set lock of §4 *)
  | Ticket  (** FIFO-fair ticket lock *)
  | Mcs  (** Mellor-Crummey–Scott queue lock: FIFO, local spinning *)
  | Pthread_like  (** models a heavier kernel-assisted mutex *)

type free_lists =
  [ `Anchor
    (** paper-verbatim: every free CASes its superblock's anchor
        (Fig. 6), every pop CASes it back out (Fig. 4). *)
  | `Owner_biased
    (** scalloc-style split free lists (DESIGN.md §19): the thread that
        owns a superblock frees into a private plain-write LIFO and
        claims the public remote-free list in one CAS; remote frees
        push onto the public tagged list ([pub.push], one CAS). The
        anchor of an owned superblock is frozen at FULL and written
        only under public-list ownership, so [sb_cache],
        [partial_list] and the EMPTY/FULL state machine are
        unchanged. *) ]

type t = {
  nheaps : int;
      (** processor heaps per size class; 1 enables the §4.2.4 uniprocessor
          optimization. 0 means "one per runtime CPU". *)
  sbsize : int;  (** superblock size in bytes (power of two) *)
  maxcredits : int;  (** at most 64: credits live in 6 bits of Active *)
  partial_policy : partial_policy;
  desc_pool : desc_pool_kind;
  hyperblocks : bool;  (** §3.2.5 batch superblock mmaps *)
  store_capacity : int;  (** region-table slots in the store *)
  lock_kind : lock_kind;  (** lock used by the lock-based baselines *)
  arena_limit : int;  (** Ptmalloc baseline: max arenas (paper observes it
                          creating more arenas than threads) *)
  anchor_tag : bool;
      (** include the ABA tag in anchor pop CASes (the paper's design).
          [false] is a {e deliberately broken} variant kept ONLY as the
          planted bug for [lib/check]'s schedule explorer — it must find
          the descriptor-recycling/ABA interleaving this opens up. Never
          disable it elsewhere. *)
  desc_scan_threshold : int;
      (** hazard-pointer scan threshold for the descriptor pool; 0 means
          the hazard-pointer default. Small values make descriptor
          recycling frequent, which the checking subsystem uses to widen
          the ABA surface it explores. *)
  cache : bool;
      (** enable the per-thread block-cache frontend ({!Mm_core.Block_cache},
          DESIGN.md §13). [false] (the default) preserves the verbatim paper
          allocator: every malloc/free goes straight to the Fig. 4/6 paths. *)
  cache_blocks : int;
      (** per-thread, per-size-class cache capacity in blocks (>= 1). *)
  cache_batch : int;
      (** blocks moved per batched refill or flush, in [1, cache_blocks].
          A refill reserves up to this many credits in one CAS on Active;
          an overflow or remote-free flush pushes this many blocks back
          through the Fig. 6 path in one anchor CAS per superblock. *)
  sb_cache_depth : int;
      (** warm-superblock cache depth per size class
          ({!Mm_core.Sb_cache}, DESIGN.md §14). [0] (the default)
          disables the cache and preserves the paper-verbatim EMPTY path:
          an emptied superblock is munmapped at the transition and its
          descriptor retired. [> 0] parks up to this many EMPTY
          descriptors per size class — superblock bytes, intact free
          list and anchor tag preserved — for adoption by
          [MallocFromNewSB]; overflow beyond the watermark is genuinely
          unmapped, so {!Space} peak accounting stays honest. *)
  page_manager : bool;
      (** route large blocks and superblock carving through the
          [lib/pages] span reservoir + lock-free buddy (DESIGN.md §15)
          instead of one mmap/munmap per large block or superblock.
          [false] (the default) preserves the paper-verbatim OS paths
          bit for bit. *)
  span_pages : int;
      (** pages per reserved span when [page_manager] is on (positive
          power of two; default 64 = 256 KiB spans). *)
  free_lists : free_lists;
      (** which free-list discipline the core allocator's small-block
          paths use. [`Anchor] (the default) is bit-identical to the
          paper's figures; [`Owner_biased] collapses anchor contention
          by routing frees through per-superblock private/public lists
          (DESIGN.md §19). *)
}

val default : t

val make :
  ?nheaps:int ->
  ?sbsize:int ->
  ?maxcredits:int ->
  ?partial_policy:partial_policy ->
  ?desc_pool:desc_pool_kind ->
  ?hyperblocks:bool ->
  ?store_capacity:int ->
  ?lock_kind:lock_kind ->
  ?arena_limit:int ->
  ?anchor_tag:bool ->
  ?desc_scan_threshold:int ->
  ?cache:bool ->
  ?cache_blocks:int ->
  ?cache_batch:int ->
  ?sb_cache_depth:int ->
  ?page_manager:bool ->
  ?span_pages:int ->
  ?free_lists:free_lists ->
  unit ->
  t
(** [default] with overrides; validates ranges. *)

val resolve_nheaps : t -> num_cpus:int -> int
(** Resolves [nheaps = 0] to the given CPU count (the caller asks its
    runtime — the config itself is runtime-agnostic). *)
