(** The simulated OS memory substrate.

    Plays the role of [mmap]/[munmap] plus raw memory in the paper: it
    hands out {e regions} (superblock-sized, or arbitrary-sized for large
    blocks) addressed by {!Addr} and backed by host [Bytes.t], and gives
    word-level access to them, charged through the runtime so the
    simulator sees the cache-line traffic. All four allocators share this
    substrate, so OS-call and space statistics are directly comparable.

    Concurrency: region allocation uses a lock-free id counter plus
    lock-free recycling stacks; region slots are published through atomics.
    Reading through a stale address (a block freed and its region reused —
    possible only for code outside the allocator's safety argument)
    returns harmless garbage, never a crash, mirroring real address-space
    reuse.

    Superblock recycling and hyperblocks (paper §3.2.5): with
    [hyperblocks:false], every superblock allocation/free is a simulated
    mmap/munmap (one syscall each); with [hyperblocks:true], superblocks
    are carved 64 at a time from 1 MiB hyperblock mappings, so the syscall
    rate drops by that factor — the ablation benchmark measures exactly
    this. Freed hyperblocks are kept pooled rather than unmapped (the
    paper returns them eventually; the difference is invisible to every
    measured quantity except long-run RSS, which the simulation does not
    model). *)

type os_stats = {
  mmap_calls : int;
  munmap_calls : int;
  sb_allocs : int;  (** superblock allocations served (incl. recycled) *)
  sb_frees : int;
  sb_reuses : int;
      (** superblock allocations served from the recycling pool without
          a new mapping — no syscall, no mmap event, no eager re-zeroing
          (stale bytes are cleared lazily by {!init_free_list}). Always
          [sb_reuses <= sb_allocs]; [sb_allocs - sb_reuses] superblocks
          came from real (possibly hyperblock-batched) mmaps. *)
  large_mmaps : int;  (** direct large-block mappings ({!alloc_large}) *)
  large_munmaps : int;  (** direct large-block unmappings ({!free_large}) *)
  pages_requested : int;
      (** pages actually needed by buddy-served requests (page-rounded
          request sizes), accumulated via {!note_buddy_grant} *)
  pages_granted : int;
      (** pages granted for them (power-of-two buddy extents); the gap to
          [pages_requested] is the buddy's internal fragmentation *)
}

val page : int
(** The simulated OS page size (4 KiB) — the unit the page manager's
    buddy allocator works in and the granularity of space accounting. *)

module Make (Rt : Mm_runtime.Runtime_intf.S) : sig
  type t

  val page : int
  (** = the toplevel {!page}, re-exported for functorized clients. *)

  val create :
    Rt.t ->
    ?capacity:int ->
    ?sbsize:int ->
    ?hyperblocks:bool ->
    unit ->
    t
  (** Defaults: capacity 65536 regions, 16 KiB superblocks, no hyperblocks. *)

  val rt : t -> Rt.t
  val sbsize : t -> int
  val space : t -> Space.Make(Rt).t
  val os_stats : t -> os_stats


  (** {2 Regions} *)

  val alloc_superblock : t -> int
  (** Address of a fresh superblock ([sbsize] bytes). A newly mapped
      superblock is zero-filled; a recycled one (see [sb_reuses]) carries
      stale bytes until {!init_free_list} lazily restores the
      all-zero-but-links state — callers thread the free list before
      publishing the superblock, so no stale byte is ever observable. *)

  val free_superblock : t -> int -> unit
  (** [addr] must be the base address of a live superblock. *)

  val alloc_large : t -> len:int -> int
  (** A dedicated region of at least [len] bytes; space is accounted
      page-rounded (4 KiB), as a real mmap would. *)

  val free_large : t -> int -> unit
  (** [addr] must be the base address of a live large region. *)

  (** {2 Spans}

      Backing for the page manager (DESIGN.md §15): a span is one
      page-multiple region reserved up front and carved into page-aligned
      extents by a lock-free buddy, so large blocks and superblocks stop
      costing one mmap each. Span regions are installed {e dirty}
      ([clean = false]): extents are written and re-carved out of order,
      so a superblock carved from a span always pays {!init_free_list}'s
      lazy re-zeroing of its own bytes (bounded by [?limit]). *)

  val alloc_span : t -> pages:int -> int
  (** A dedicated region of exactly [pages] simulated pages (one mmap,
      observability site ["store.mmap.span"]). *)

  val free_span : t -> int -> unit
  (** Unmap a span region ([addr] must be its base) — only ever a losing
      candidate from a span-publish race; published spans stay mapped. *)

  val note_buddy_grant : t -> requested:int -> granted:int -> unit
  (** Record one buddy grant in the internal-fragmentation census:
      [requested] pages were needed, [granted] (>= requested, a power of
      two) were handed out. *)

  val region_len : t -> int -> int
  (** Length of the region containing [addr]; 0 if dead. *)

  val live_regions : t -> int
  (** Number of currently mapped regions (quiescent snapshot; tests). *)

  (** {2 Word access}

      [addr] is a full address (region + byte offset); words are 8 bytes.
      Dead-region reads return 0 and writes are dropped — the memory-safe
      analogue of touching unmapped memory. An out-of-bounds {e offset}
      into a live region gets the same tolerant treatment in real mode,
      but under simulation it raises unless [~racy:true]: a non-racy OOB
      offset is a miscomputed address, and failing loudly lets the
      [lib/check] explorer catch it. [~racy:true] marks the paper's
      deliberate racy dereferences (e.g. reading a free-list link that a
      concurrent pop may already have recycled, validated afterwards by a
      tagged CAS), where garbage addresses are expected and harmless. *)

  val read_word : ?racy:bool -> t -> int -> int
  val write_word : ?racy:bool -> t -> int -> int -> unit

  val resolve : t -> int -> int * int * int
  (** [resolve t payload] follows the 8-byte block prefix below [payload]
      (and, for [Alloc_ops.aligned_alloc] results, its offset word) down
      to the block base: returns [(base_payload, base_prefix, delta)].
      Allocator [free]/[usable_size] paths use this to accept aligned
      addresses. *)

  val init_free_list : ?limit:int -> t -> int -> sz:int -> maxcount:int -> unit
  (** Thread the in-block free list of a fresh superblock: block [i]'s first
      word is set to [i + 1] ("organize blocks in a linked list starting
      with index 0", Fig. 4). Charged as one streaming write, since the
      superblock is still private to its creator. On a recycled superblock
      this also clears every byte the links don't cover (lazy zeroing —
      the only full-superblock fill a pool hit ever pays). [limit] bounds
      the zeroed window to [limit] bytes from the superblock's base: a
      superblock carved out of a span owns only its own extent and must
      not clear its neighbours' bytes. Without [limit] the whole region is
      restored (whole-region superblocks, where the two coincide). *)

  val write_payload_round : t -> int -> len:int -> times:int -> unit
  (** Model the benchmark pattern "write [times] times to each of the [len]
      payload bytes at [addr]": real runtime performs the actual byte
      writes (creating genuine cache traffic, e.g. false sharing);
      simulation charges the equivalent line accesses in a few batched
      events so line ping-pong between CPUs is still exhibited. *)
end
