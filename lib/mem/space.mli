(** Space accounting, shared by all allocators so that the paper's
    §4.2.5 space-efficiency comparison is apples-to-apples.

    Two meters: [mapped] is address space currently held from the
    (simulated) OS — the quantity the paper tracks as "maximum space used"
    — and [used] is the total size of blocks currently handed out by
    malloc. Both carry high-water marks maintained with CAS so they are
    exact under concurrency. *)

type snapshot = {
  mapped : int;
  mapped_peak : int;
  used : int;
  used_peak : int;
}

module Make (Rt : Mm_runtime.Runtime_intf.S) : sig
  type t

  val create : Rt.t -> t

  val add_mapped : t -> int -> unit
  (** Positive on mmap, negative on munmap. *)

  val add_used : t -> int -> unit
  (** Positive on malloc, negative on free. *)

  val read : t -> snapshot

  val reset_peaks : t -> unit
  (** Reset high-water marks to current values (between workload phases). *)
end
