type partial_policy = Fifo | Lifo
type desc_pool_kind = Hazard | Tagged | Reuse
type lock_kind = Tas_backoff | Ticket | Mcs | Pthread_like
type free_lists = [ `Anchor | `Owner_biased ]

type t = {
  nheaps : int;
  sbsize : int;
  maxcredits : int;
  partial_policy : partial_policy;
  desc_pool : desc_pool_kind;
  hyperblocks : bool;
  store_capacity : int;
  lock_kind : lock_kind;
  arena_limit : int;
  anchor_tag : bool;
  desc_scan_threshold : int;
  cache : bool;
  cache_blocks : int;
  cache_batch : int;
  sb_cache_depth : int;
  page_manager : bool;
  span_pages : int;
  free_lists : free_lists;
}

let default =
  {
    nheaps = 0;
    sbsize = 16 * 1024;
    maxcredits = 64;
    partial_policy = Fifo;
    desc_pool = Hazard;
    hyperblocks = false;
    store_capacity = 65536;
    lock_kind = Tas_backoff;
    arena_limit = 64;
    anchor_tag = true;
    desc_scan_threshold = 0;
    cache = false;
    cache_blocks = 64;
    cache_batch = 16;
    sb_cache_depth = 0;
    page_manager = false;
    span_pages = 64;
    free_lists = `Anchor;
  }

let make ?(nheaps = default.nheaps) ?(sbsize = default.sbsize)
    ?(maxcredits = default.maxcredits)
    ?(partial_policy = default.partial_policy)
    ?(desc_pool = default.desc_pool) ?(hyperblocks = default.hyperblocks)
    ?(store_capacity = default.store_capacity)
    ?(lock_kind = default.lock_kind) ?(arena_limit = default.arena_limit)
    ?(anchor_tag = default.anchor_tag)
    ?(desc_scan_threshold = default.desc_scan_threshold)
    ?(cache = default.cache) ?(cache_blocks = default.cache_blocks)
    ?(cache_batch = default.cache_batch)
    ?(sb_cache_depth = default.sb_cache_depth)
    ?(page_manager = default.page_manager) ?(span_pages = default.span_pages)
    ?(free_lists = default.free_lists) () =
  if nheaps < 0 then invalid_arg "Alloc_config: nheaps must be >= 0";
  if maxcredits < 1 || maxcredits > 64 then
    invalid_arg "Alloc_config: maxcredits must be in [1, 64]";
  if arena_limit < 1 then invalid_arg "Alloc_config: arena_limit must be >= 1";
  if desc_scan_threshold < 0 then
    invalid_arg "Alloc_config: desc_scan_threshold must be >= 0";
  if cache_blocks < 1 then
    invalid_arg "Alloc_config: cache_blocks must be >= 1";
  if cache_batch < 1 || cache_batch > cache_blocks then
    invalid_arg "Alloc_config: cache_batch must be in [1, cache_blocks]";
  if sb_cache_depth < 0 then
    invalid_arg "Alloc_config: sb_cache_depth must be >= 0";
  if span_pages < 1 || span_pages land (span_pages - 1) <> 0 then
    invalid_arg "Alloc_config: span_pages must be a positive power of two";
  {
    nheaps;
    sbsize;
    maxcredits;
    partial_policy;
    desc_pool;
    hyperblocks;
    store_capacity;
    lock_kind;
    arena_limit;
    anchor_tag;
    desc_scan_threshold;
    cache;
    cache_blocks;
    cache_batch;
    sb_cache_depth;
    page_manager;
    span_pages;
    free_lists;
  }

let resolve_nheaps t ~num_cpus =
  if t.nheaps > 0 then t.nheaps else max 1 num_cpus
