(** Derived allocation operations — the rest of the familiar C API
    (calloc / realloc / aligned_alloc), built generically on top of any
    {!Alloc_intf.instance}.

    Aligned allocation over-allocates and advances the payload to the
    requested alignment, recording the distance in an {e offset prefix}
    word just below the advanced payload ({!Block_prefix}); [free] and
    [usable_size] in every allocator resolve such payloads back to the
    underlying block first. *)

val calloc : Alloc_intf.instance -> count:int -> size:int -> int
(** Allocate [count * size] bytes, zero-filled. *)

val realloc : Alloc_intf.instance -> int -> int -> int
(** [realloc inst addr n] resizes the block at [addr] to at least [n]
    payload bytes, preserving the first [min old_usable n] bytes.
    [realloc inst Addr.null n] behaves like malloc; growing allocates,
    copies word-wise and frees the old block; shrinking within the
    block's usable size returns [addr] unchanged. *)

val aligned_alloc : Alloc_intf.instance -> align:int -> int -> int
(** [aligned_alloc inst ~align n] returns a payload address that is a
    multiple of [align] (a power of two) with at least [n] usable bytes.
    The result is freed with the ordinary [free]. *)
