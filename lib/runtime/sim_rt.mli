(** The simulated backend of {!Runtime_intf.S}: every operation charges
    the deterministic simulated multiprocessor ({!Sim}), with semantics
    bit-identical to the historical value-dispatch runtime — same
    [Sim.step_*] sequence, same synthetic cache-line ids, same
    physical-equality CAS — so explorer schedules and census counters
    are reproduced exactly. *)

include Runtime_intf.S with type t = Sim.t
