(* State shared by every runtime backend.

   The observability hook, label attribution, synthetic cache-line
   counter and thread-identity key must be global: the value-dispatch
   layer ({!Rt}) and the two specialized backends ({!Real_rt},
   {!Sim_rt}) all feed the same tracer (lib/obs), and a tracer
   installed through [Rt.Obs.set_hook] must see events no matter which
   layer emitted them. *)

let max_threads = 64

(* ------------------------------------------------------------------ *)
(* Synthetic cache lines for atomics: negative ids, so they can never
   collide with memory-derived lines (which are non-negative). *)

let line_counter = Stdlib.Atomic.make 0
let fresh_line () = -1 - Stdlib.Atomic.fetch_and_add line_counter 1

(* ------------------------------------------------------------------ *)
(* Thread identity (declared early: the observability hook below needs
   it to attribute events on the real runtime). *)

let dls_self : int Domain.DLS.key = Domain.DLS.new_key (fun () -> 0)

(* ------------------------------------------------------------------ *)
(* Observability hook (lib/obs).

   Recording runs on the HOST side only: it never calls Sim.step_* and
   never goes through an atomic wrapper, so a simulated run produces
   the same schedule, cycle counts and counters whether tracing is on
   or off. Timestamps are Sim.now_cycles under simulation and a global
   event ordinal on the real runtime. *)

module Obs = struct
  type kind = Cas_ok | Cas_fail | Transition | Hp_scan | Mmap

  (* Compile-time master switch: flip to [false] and every recording
     site folds to dead code, so the zero-tracing build carries no
     hot-path cost at all. With it [true] (the default) and no hook
     installed, each site costs one load and one branch. *)
  let compiled = true

  let no_label = "(none)"

  (* CAS attribution: the last label each thread passed. One writer per
     slot (the thread itself) and the only reader is that same thread's
     next CAS event, so plain stores suffice. *)
  let last_label = Array.make max_threads no_label

  let hook :
      (tid:int -> kind:kind -> label:string -> cycle:int -> unit) option ref =
    ref None

  let set_hook h =
    (match h with
    | Some _ -> Array.fill last_label 0 max_threads no_label
    | None -> ());
    hook := h

  let hook_installed () = match !hook with Some _ -> true | None -> false

  (* Event ordinals for the real runtime, which has no virtual clock. *)
  let real_clock = Stdlib.Atomic.make 0
end

let obs_tid ~in_sim =
  if in_sim then Sim.self_tid () else Domain.DLS.get dls_self

let obs_cycle ~in_sim =
  if in_sim then Sim.now_cycles ()
  else Stdlib.Atomic.fetch_and_add Obs.real_clock 1

let obs_cas ~in_sim ok =
  match !Obs.hook with
  | None -> ()
  | Some f ->
      let tid = obs_tid ~in_sim in
      f ~tid
        ~kind:(if ok then Obs.Cas_ok else Obs.Cas_fail)
        ~label:Obs.last_label.(tid) ~cycle:(obs_cycle ~in_sim)

(* ------------------------------------------------------------------ *)
(* Real-runtime label hook. [noop_label] is the physical default: the
   specialized real backend skips the hook call entirely while the ref
   still holds it, making labels one load + one compare when neither a
   tracer nor a fault injector is installed. *)

let noop_label : string -> unit = fun _ -> ()
let real_label_hook : (string -> unit) ref = ref noop_label

(* Per-domain opaque sink so real [work] loops are not optimized away.
   Domain-local (rather than one shared ref) so concurrent real threads
   never race on it. *)
let work_sink : int ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0)

let real_work n =
  let sink = Domain.DLS.get work_sink in
  let acc = ref !sink in
  for i = 1 to n do
    acc := (!acc * 25214903917) + i
  done;
  sink := Sys.opaque_identity !acc

(* ------------------------------------------------------------------ *)
(* Running threads. *)

type run_result = { elapsed : float; sim_result : Sim.result option }
