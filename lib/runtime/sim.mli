(** Deterministic simulated shared-memory multiprocessor.

    This is the hardware substitute for the paper's 16-way POWER3 / 8-way
    POWER4 machines (see DESIGN.md §2): the reproduction container has a
    single physical CPU, so parallel speedups are *simulated* rather than
    measured. Threads run as effect-handler continuations multiplexed over
    [cpus] virtual processors. Every shared-memory operation performed
    through {!Rt} yields an effect that the scheduler charges against the
    issuing CPU's virtual clock using {!Cost}, including a MESI-style
    cache-line ownership model, so contention, false sharing and lock
    convoys cost virtual time exactly where they would cost real time.

    Properties the rest of the repository relies on:
    - {b Determinism}: a run is a pure function of (config, thread bodies);
      the same seed always yields the same schedule, clocks and counters.
    - {b Preemption}: a thread that exhausts its quantum while another
      thread waits on the same CPU is context-switched, so lock-holder
      preemption pathologies are reproduced.
    - {b Fault injection}: threads can be blocked or killed at labelled
      points inside the allocator ({!Rt.label}), which is how the paper's
      availability and kill-tolerance claims are tested. *)

type t

(** Decision taken when a thread reaches a labelled point; see
    {!val-create}'s [on_label]. *)
type action =
  | Continue  (** proceed normally *)
  | Block_until of (unit -> bool)
      (** park the thread until the predicate becomes true; the predicate
          is re-evaluated between scheduling steps *)
  | Kill  (** terminate the thread instantly, as if the OS killed it *)

(** A scheduling decision point presented to an external strategy; see
    {!val-create}'s [sched]. *)
type sched_point = {
  sp_runnable : int list;
      (** tids that can take a step now, in ascending order; never empty *)
  sp_current : int;
      (** tid that executed the previous segment, or [-1] before the first *)
  sp_label : string option;
      (** label at which [sp_current] stopped, if it stopped at one *)
}

type counters = {
  atomics : int;  (** atomic operations executed *)
  plain : int;  (** plain word accesses executed *)
  fences : int;
  transfers : int;  (** cache lines pulled from a remote modified copy *)
  invalidations : int;  (** shared lines upgraded for writing *)
  syscalls : int;
  ctx_switches : int;
  yields : int;
  killed : int;
}

type result = {
  makespan_cycles : int;  (** max virtual clock over all CPUs at the end *)
  cpu_cycles : int array;  (** final per-CPU virtual clocks *)
  counters : counters;
}

exception Progress_timeout of string
(** Raised when the run exceeds its cycle budget — e.g. threads spinning on
    a lock whose holder was killed. The lock-freedom tests rely on this to
    distinguish "survivors finished" from "survivors livelocked". *)

exception Deadlock of string
(** Raised when unfinished threads remain but none is runnable. *)

val create :
  ?cpus:int ->
  ?costs:Cost.t ->
  ?seed:int ->
  ?max_cycles:int ->
  ?on_label:(tid:int -> string -> action) ->
  ?sched:(sched_point -> int) ->
  unit ->
  t
(** [create ()] builds a simulator instance. Defaults: 16 CPUs, default
    costs, seed 1, a large cycle budget, and no label interception.

    When [sched] is given the simulator runs in {e controlled} mode — the
    substrate of [lib/check]'s systematic schedule exploration. The
    cost-model scheduler (per-CPU clocks, quanta, preemption) no longer
    decides who runs: instead, whenever the current thread reaches a
    decision point the strategy is consulted with the set of runnable
    threads and its answer runs next, uninterrupted, until the following
    decision point. Decision points are exactly: the start of the run,
    every {!Rt.label} and {!Rt.yield} executed by the current thread, and
    the current thread finishing, blocking or being killed. [on_label]
    still applies first at labels (it can block or kill the arriving
    thread); [sched] then picks among whoever remains runnable. The
    strategy must return a member of [sp_runnable] or the run fails.
    Virtual clocks and counters are still maintained, and [max_cycles]
    still bounds the run, so controlled runs detect livelock the same way
    free-running ones do. A run is a pure function of (config, bodies,
    strategy decisions), which is what makes recorded schedules
    replayable. *)

val cpus : t -> int
val costs : t -> Cost.t

val run : t -> (int -> unit) array -> result
(** [run t bodies] executes [bodies.(i)] as thread [i] (pinned to CPU
    [i mod cpus]) until all threads are done or killed. Not reentrant: a
    body must not call [run]. The instance can be reused for further runs;
    clocks and counters restart from zero. *)

val unblocked_survivors : result -> unit
(** No-op helper kept for documentation symmetry; results carry all data. *)

(** {2 Hooks used by {!Rt} — not for direct use by application code} *)

val in_sim : unit -> bool
(** True while the calling code is executing inside some [run]. *)

val current : unit -> t
(** The instance owning the calling thread. Raises if [not (in_sim ())]. *)

val self_tid : unit -> int
val self_cpu : unit -> int
val now_cycles : unit -> int

val step_atomic : line:int -> write:bool -> unit
val step_mem : line:int -> write:bool -> unit

val step_mem_batch : line:int -> write:bool -> count:int -> unit
(** [count] same-line plain accesses charged as a single event: one
    coherence action plus [count] cache hits. *)

val step_fence : unit -> unit
val step_work : int -> unit
val step_yield : unit -> unit
val step_syscall : unit -> unit
val step_label : string -> unit
