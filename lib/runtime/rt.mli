(** Execution runtime abstraction.

    Every allocator, lock and workload in this repository is written
    against this module instead of using [Stdlib.Atomic] / [Domain]
    directly, so the same code runs in two ways:

    - {!real}: operations map 1:1 onto OCaml 5 multicore primitives
      ([Atomic], [Domain]); used for genuine-hardware latency measurements
      (paper Table 1) and for concurrency stress tests.
    - {!simulated}: operations become events of a deterministic simulated
      multiprocessor ({!Sim}); used to regenerate the paper's 16-processor
      scalability figures on this single-CPU container, and to inject
      thread blocking/killing for the lock-freedom tests.

    Shared words carry a {e cache-line id} so the simulator can model
    contention and false sharing: words stored in simulated memory derive
    their line from their address; loose atomics (descriptor anchors, heap
    Active words, lock words) get a synthetic line from {!fresh_line}. *)

type t

val real : t
(** The OCaml-multicore-backed runtime. *)

val simulated : Sim.t -> t
(** A runtime backed by the given simulator instance. *)

val is_sim : t -> bool
val sim : t -> Sim.t option

val controllable : t -> bool
(** Whether this runtime exposes the simulator's control facilities
    (deterministic schedules, label interception, kill/stall injection).
    Code outside [lib/runtime] and [lib/check] may only reach those
    facilities behind this flag (ROADMAP item 4, lint R6), so every
    backend keeps the same observable surface. *)

val name : t -> string

val max_threads : int
(** Upper bound on concurrently running threads (sizes hazard-pointer
    tables and per-thread slots). *)

(** {2 Atomics} *)

type 'a atomic

module Atomic : sig
  val make : t -> ?line:int -> 'a -> 'a atomic
  (** [make rt v] allocates an atomic holding [v]. Under simulation it is
      placed on cache line [line] (default: a fresh private line). *)

  val get : 'a atomic -> 'a
  val set : 'a atomic -> 'a -> unit

  val compare_and_set : 'a atomic -> 'a -> 'a -> bool
  (** CAS with physical (immediate-value) comparison, the analogue of the
      paper's 64-bit [CAS]. All CASed values in this repository are either
      immediates (packed words) or heap nodes compared by identity. *)

  val fetch_and_add : int atomic -> int -> int
  val incr : int atomic -> unit
end

val fresh_line : unit -> int
(** A synthetic cache-line id never used by simulated memory. Consecutive
    calls return distinct lines (no false sharing between them). *)

(** {2 Word access to simulated memory}

    [off] is a byte offset; words are 64-bit little-endian, truncated to
    OCaml's 63-bit [int] (all stored values fit — see [Mm_mem.Addr]). *)

val read_word : t -> Bytes.t -> int -> line:int -> int
val write_word : t -> Bytes.t -> int -> line:int -> int -> unit

val touch : t -> line:int -> write:bool -> unit
(** Charge a plain access without touching host memory (used to model
    payload traffic whose contents don't matter). *)

val touch_batch : t -> line:int -> write:bool -> count:int -> unit
(** Charge [count] same-line plain accesses as a single simulated event
    (one coherence action + [count] cache hits). No-op on the real
    runtime, where callers perform the real accesses instead. *)

(** {2 Control} *)

val fence : t -> unit
(** Full barrier. Real: [Atomic.get] on a dummy (seq_cst already dominates
    OCaml atomics); simulated: charges {!Cost.t.fence}. The paper's
    explicit fence points call this so their cost is accounted. *)

val cpu_relax : t -> unit
(** Spin-wait pause (backoff loops). *)

val work : t -> int -> unit
(** [work rt n] performs [n] units of application-local computation. *)

val yield : t -> unit
(** Voluntary processor yield. *)

val syscall : t -> unit
(** Charge one kernel round-trip (simulated mmap/munmap cost). Real: no-op
    beyond the host's actual work. *)

val label : t -> string -> unit
(** Named instrumentation point inside lock-free code. Under simulation the
    scheduler may preempt, block or kill the thread here (fault-injection
    tests); under the real runtime it calls {!real_label_hook}. *)

val real_label_hook : (string -> unit) ref
(** Hook invoked by {!label} on the real runtime; defaults to a no-op.
    Real-runtime stress tests install yield/noise injectors here. *)

(** {2 Observability}

    Event recording for [lib/obs] (DESIGN.md §12). The hook runs on the
    {e host} side: it is never charged to the simulator's cost model and
    never goes through {!Atomic}, so a simulated run is bit-identical —
    same schedule, cycles, counters — with tracing on or off. *)

module Obs : sig
  type kind = Rt_base.Obs.kind =
    | Cas_ok  (** a {!Atomic.compare_and_set} that succeeded *)
    | Cas_fail  (** a {!Atomic.compare_and_set} that failed (one retry) *)
    | Transition  (** superblock state change (lib/core) *)
    | Hp_scan  (** hazard-pointer scan (lib/lockfree) *)
    | Mmap  (** simulated mmap syscall (lib/mem) *)

  val compiled : bool
  (** Compile-time master switch (a literal in [rt.ml]): when flipped to
      [false] every recording site folds to dead code and the build has
      no tracing cost at all. [true] by default; with no hook installed
      each site then costs one load and one branch. *)

  val set_hook :
    (tid:int -> kind:kind -> label:string -> cycle:int -> unit) option ->
    unit
  (** Install (or, with [None], remove) the recording hook. The hook is
      called from the recording thread and must be allocation-free and
      non-blocking (lib/obs writes into a per-thread ring). [label] is
      the event's site: for CAS events, the last {!label} the thread
      passed; [cycle] is [Sim.now_cycles] under simulation, a global
      event ordinal on the real runtime. Installing resets the per-thread
      label attribution. *)

  val hook_installed : unit -> bool
end

val obs_event : t -> Obs.kind -> string -> unit
(** Emit one explicit event ({!Obs.Transition} / {!Obs.Hp_scan} /
    {!Obs.Mmap}) with the given site name. No-op unless a hook is
    installed; never charged to the simulation. *)

val self : t -> int
(** Dense id of the calling thread: the body index under {!parallel_run},
    0 on the main thread. *)

val num_cpus : t -> int
val now : t -> float
(** Seconds: wall-clock (real) or virtual (simulated). *)

(** {2 Running threads} *)

type run_result = Rt_base.run_result = {
  elapsed : float;  (** wall seconds (real) or virtual seconds (sim) *)
  sim_result : Sim.result option;  (** simulation counters, if simulated *)
}

val parallel_run : t -> (int -> unit) array -> run_result
(** [parallel_run rt bodies] runs [bodies.(i)] as thread [i] to completion:
    as one [Domain] each on the real runtime, as simulated threads
    otherwise. Exceptions raised by bodies are re-raised. *)
