(* The simulated backend of {!Runtime_intf.S}.

   Bit-identical to the historical value-dispatch semantics: the same
   [Sim.step_*] calls in the same order, the same [fresh_line]
   consumption, the same physical-equality CAS — so every schedule the
   explorer found before the specialization refactor is reproduced
   exactly, and census counters match event for event. *)

type t = Sim.t
type 'a atomic = { mutable v : 'a; line : int }

let name = "sim"
let is_sim = true
let controllable = true
let max_threads = Rt_base.max_threads
let fresh_line = Rt_base.fresh_line

module Obs = Rt_base.Obs

module Atomic = struct
  let make _s ?line v =
    let line = match line with Some l -> l | None -> Rt_base.fresh_line () in
    { v; line }

  let get r =
    if Sim.in_sim () then Sim.step_atomic ~line:r.line ~write:false;
    r.v

  let set r v =
    if Sim.in_sim () then Sim.step_atomic ~line:r.line ~write:true;
    r.v <- v

  let compare_and_set r expected desired =
    (* Even a failing CAS acquires the line exclusively. *)
    if Sim.in_sim () then Sim.step_atomic ~line:r.line ~write:true;
    let ok = r.v == expected in
    if ok then r.v <- desired;
    if Obs.compiled then Rt_base.obs_cas ~in_sim:(Sim.in_sim ()) ok;
    ok

  let fetch_and_add (r : int atomic) n =
    if Sim.in_sim () then Sim.step_atomic ~line:r.line ~write:true;
    let old = r.v in
    r.v <- old + n;
    old

  let incr r = ignore (fetch_and_add r 1)
end

let read_word _s bytes off ~line =
  if Sim.in_sim () then Sim.step_mem ~line ~write:false;
  Int64.to_int (Bytes.get_int64_le bytes off)

let write_word _s bytes off ~line v =
  if Sim.in_sim () then Sim.step_mem ~line ~write:true;
  Bytes.set_int64_le bytes off (Int64.of_int v)

let touch _s ~line ~write = if Sim.in_sim () then Sim.step_mem ~line ~write

let touch_batch _s ~line ~write ~count =
  if Sim.in_sim () then Sim.step_mem_batch ~line ~write ~count

let fence _s = if Sim.in_sim () then Sim.step_fence ()
let cpu_relax _s = if Sim.in_sim () then Sim.step_work 8
let work _s n = if Sim.in_sim () then Sim.step_work n
let yield _s = if Sim.in_sim () then Sim.step_yield ()
let syscall _s = if Sim.in_sim () then Sim.step_syscall ()

let label _s l =
  (if Obs.compiled && Rt_base.Obs.hook_installed () then
     Rt_base.Obs.last_label.(Rt_base.obs_tid ~in_sim:(Sim.in_sim ())) <- l);
  if Sim.in_sim () then Sim.step_label l

let obs_event _s kind name =
  if Obs.compiled then
    match !Rt_base.Obs.hook with
    | None -> ()
    | Some f ->
        let in_sim = Sim.in_sim () in
        f
          ~tid:(Rt_base.obs_tid ~in_sim)
          ~kind ~label:name
          ~cycle:(Rt_base.obs_cycle ~in_sim)

let self _s = if Sim.in_sim () then Sim.self_tid () else 0
let num_cpus s = Sim.cpus s

let now s =
  if Sim.in_sim () then
    float_of_int (Sim.now_cycles ()) /. (Sim.costs s).Cost.cycles_per_sec
  else 0.0

let parallel_run s bodies =
  let n = Array.length bodies in
  if n = 0 then { Rt_base.elapsed = 0.0; sim_result = None }
  else if n > max_threads then
    invalid_arg
      (Printf.sprintf "Rt.parallel_run: %d threads exceeds max_threads=%d" n
         max_threads)
  else begin
    let r = Sim.run s bodies in
    {
      Rt_base.elapsed =
        float_of_int r.Sim.makespan_cycles /. (Sim.costs s).Cost.cycles_per_sec;
      sim_result = Some r;
    }
  end
