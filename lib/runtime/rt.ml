(* Value-level runtime dispatch.

   Harness, workload and test code that picks a runtime at run time
   goes through this module; it delegates every operation to the two
   specialized backends ({!Real_rt}, {!Sim_rt}), which are what the
   allocator stack itself is functorized over (ROADMAP item 4 /
   DESIGN.md §18). This layer pays one variant match per operation —
   fine for spawning threads and reading counters, never on an
   allocator hot path. *)

type t = Real | Simulated of Sim.t

let real = Real
let simulated sim = Simulated sim
let is_sim = function Real -> false | Simulated _ -> true
let sim = function Real -> None | Simulated s -> Some s

(* The capability flag of ROADMAP item 4: controlled schedules, label
   interception and kill/stall exploration exist only on backends that
   expose them. Callers outside lib/runtime and lib/check must consult
   this flag before touching any Sim control facility (lint R6). *)
let controllable = function Real -> false | Simulated _ -> true
let name = function Real -> Real_rt.name | Simulated _ -> Sim_rt.name
let max_threads = Rt_base.max_threads
let fresh_line = Rt_base.fresh_line

module Obs = Rt_base.Obs

type 'a atomic = Real_at of 'a Real_rt.atomic | Sim_at of 'a Sim_rt.atomic

module Atomic = struct
  let make rt ?line v =
    match rt with
    | Real -> Real_at (Real_rt.Atomic.make () ?line v)
    | Simulated s -> Sim_at (Sim_rt.Atomic.make s ?line v)

  let get = function
    | Real_at a -> Real_rt.Atomic.get a
    | Sim_at a -> Sim_rt.Atomic.get a

  let set at v =
    match at with
    | Real_at a -> Real_rt.Atomic.set a v
    | Sim_at a -> Sim_rt.Atomic.set a v

  let compare_and_set at expected desired =
    match at with
    | Real_at a -> Real_rt.Atomic.compare_and_set a expected desired
    | Sim_at a -> Sim_rt.Atomic.compare_and_set a expected desired

  let fetch_and_add at n =
    match at with
    | Real_at a -> Real_rt.Atomic.fetch_and_add a n
    | Sim_at a -> Sim_rt.Atomic.fetch_and_add a n

  let incr at = ignore (fetch_and_add at 1)
end

let read_word rt bytes off ~line =
  match rt with
  | Real -> Real_rt.read_word () bytes off ~line
  | Simulated s -> Sim_rt.read_word s bytes off ~line

let write_word rt bytes off ~line v =
  match rt with
  | Real -> Real_rt.write_word () bytes off ~line v
  | Simulated s -> Sim_rt.write_word s bytes off ~line v

let touch rt ~line ~write =
  match rt with
  | Real -> ()
  | Simulated s -> Sim_rt.touch s ~line ~write

let touch_batch rt ~line ~write ~count =
  match rt with
  | Real -> ()
  | Simulated s -> Sim_rt.touch_batch s ~line ~write ~count

let fence = function Real -> Real_rt.fence () | Simulated s -> Sim_rt.fence s

let cpu_relax = function
  | Real -> Real_rt.cpu_relax ()
  | Simulated s -> Sim_rt.cpu_relax s

let work rt n =
  match rt with Real -> Real_rt.work () n | Simulated s -> Sim_rt.work s n

let yield = function Real -> Real_rt.yield () | Simulated s -> Sim_rt.yield s

let syscall = function
  | Real -> Real_rt.syscall ()
  | Simulated s -> Sim_rt.syscall s

let real_label_hook = Rt_base.real_label_hook

let label rt l =
  match rt with Real -> Real_rt.label () l | Simulated s -> Sim_rt.label s l

let obs_event rt kind name =
  match rt with
  | Real -> Real_rt.obs_event () kind name
  | Simulated s -> Sim_rt.obs_event s kind name

let self = function
  | Real -> Real_rt.self ()
  | Simulated s -> Sim_rt.self s

let num_cpus = function
  | Real -> Real_rt.num_cpus ()
  | Simulated s -> Sim_rt.num_cpus s

let now = function Real -> Real_rt.now () | Simulated s -> Sim_rt.now s

type run_result = Rt_base.run_result = {
  elapsed : float;
  sim_result : Sim.result option;
}

let parallel_run rt bodies =
  match rt with
  | Real -> Real_rt.parallel_run () bodies
  | Simulated s -> Sim_rt.parallel_run s bodies
