type t = Real | Simulated of Sim.t

let real = Real
let simulated sim = Simulated sim
let is_sim = function Real -> false | Simulated _ -> true
let sim = function Real -> None | Simulated s -> Some s

(* The capability flag of ROADMAP item 4: controlled schedules, label
   interception and kill/stall exploration exist only on backends that
   expose them. Callers outside lib/runtime and lib/check must consult
   this flag before touching any Sim control facility (lint R6). *)
let controllable = function Real -> false | Simulated _ -> true
let name = function Real -> "real" | Simulated _ -> "sim"
let max_threads = 64

(* ------------------------------------------------------------------ *)
(* Synthetic cache lines for atomics: negative ids, so they can never
   collide with memory-derived lines (which are non-negative). *)

let line_counter = Stdlib.Atomic.make 0

let fresh_line () = -1 - Stdlib.Atomic.fetch_and_add line_counter 1

(* ------------------------------------------------------------------ *)
(* Thread identity (declared early: the observability hook below needs
   it to attribute events on the real runtime). *)

let dls_self : int Domain.DLS.key = Domain.DLS.new_key (fun () -> 0)

(* ------------------------------------------------------------------ *)
(* Observability hook (lib/obs).

   Recording runs on the HOST side only: it never calls Sim.step_* and
   never goes through Rt.atomic, so a simulated run produces the same
   schedule, cycle counts and counters whether tracing is on or off.
   Timestamps are Sim.now_cycles under simulation and a global event
   ordinal on the real runtime. *)

module Obs = struct
  type kind = Cas_ok | Cas_fail | Transition | Hp_scan | Mmap

  (* Compile-time master switch: flip to [false] and every recording
     site in this file folds to dead code, so the zero-tracing build
     carries no hot-path cost at all. With it [true] (the default) and
     no hook installed, each site costs one load and one branch. *)
  let compiled = true

  let no_label = "(none)"

  (* CAS attribution: the last label each thread passed. One writer per
     slot (the thread itself) and the only reader is that same thread's
     next CAS event, so plain stores suffice. *)
  let last_label = Array.make max_threads no_label

  let hook :
      (tid:int -> kind:kind -> label:string -> cycle:int -> unit) option ref =
    ref None

  let set_hook h =
    (match h with
    | Some _ -> Array.fill last_label 0 max_threads no_label
    | None -> ());
    hook := h

  let hook_installed () = match !hook with Some _ -> true | None -> false

  (* Event ordinals for the real runtime, which has no virtual clock. *)
  let real_clock = Stdlib.Atomic.make 0
end

let obs_tid ~in_sim =
  if in_sim then Sim.self_tid () else Domain.DLS.get dls_self

let obs_cycle ~in_sim =
  if in_sim then Sim.now_cycles ()
  else Stdlib.Atomic.fetch_and_add Obs.real_clock 1

let obs_cas ~in_sim ok =
  match !Obs.hook with
  | None -> ()
  | Some f ->
      let tid = obs_tid ~in_sim in
      f ~tid
        ~kind:(if ok then Obs.Cas_ok else Obs.Cas_fail)
        ~label:Obs.last_label.(tid) ~cycle:(obs_cycle ~in_sim)

let obs_event rt kind name =
  if Obs.compiled then
    match !Obs.hook with
    | None -> ()
    | Some f ->
        let in_sim =
          match rt with Real -> false | Simulated _ -> Sim.in_sim ()
        in
        f ~tid:(obs_tid ~in_sim) ~kind ~label:name ~cycle:(obs_cycle ~in_sim)

(* ------------------------------------------------------------------ *)
(* Atomics. *)

type 'a atomic =
  | Real_at of 'a Stdlib.Atomic.t
  | Sim_at of { mutable v : 'a; line : int }

module Atomic = struct
  let make rt ?line v =
    match rt with
    | Real -> Real_at (Stdlib.Atomic.make v)
    | Simulated _ ->
        let line = match line with Some l -> l | None -> fresh_line () in
        Sim_at { v; line }

  let get = function
    | Real_at a -> Stdlib.Atomic.get a
    | Sim_at r ->
        if Sim.in_sim () then Sim.step_atomic ~line:r.line ~write:false;
        r.v

  let set at v =
    match at with
    | Real_at a -> Stdlib.Atomic.set a v
    | Sim_at r ->
        if Sim.in_sim () then Sim.step_atomic ~line:r.line ~write:true;
        r.v <- v

  let compare_and_set at expected desired =
    match at with
    | Real_at a ->
        let ok = Stdlib.Atomic.compare_and_set a expected desired in
        if Obs.compiled then obs_cas ~in_sim:false ok;
        ok
    | Sim_at r ->
        (* Even a failing CAS acquires the line exclusively. *)
        if Sim.in_sim () then Sim.step_atomic ~line:r.line ~write:true;
        let ok = r.v == expected in
        if ok then r.v <- desired;
        if Obs.compiled then obs_cas ~in_sim:(Sim.in_sim ()) ok;
        ok

  let fetch_and_add (at : int atomic) n =
    match at with
    | Real_at a -> Stdlib.Atomic.fetch_and_add a n
    | Sim_at r ->
        if Sim.in_sim () then Sim.step_atomic ~line:r.line ~write:true;
        let old = r.v in
        r.v <- old + n;
        old

  let incr at = ignore (fetch_and_add at 1)
end

(* ------------------------------------------------------------------ *)
(* Word access to simulated memory. *)

let read_word rt bytes off ~line =
  (match rt with
  | Real -> ()
  | Simulated _ ->
      if Sim.in_sim () then Sim.step_mem ~line ~write:false);
  Int64.to_int (Bytes.get_int64_le bytes off)

let write_word rt bytes off ~line v =
  (match rt with
  | Real -> ()
  | Simulated _ -> if Sim.in_sim () then Sim.step_mem ~line ~write:true);
  Bytes.set_int64_le bytes off (Int64.of_int v)

let touch rt ~line ~write =
  match rt with
  | Real -> ()
  | Simulated _ -> if Sim.in_sim () then Sim.step_mem ~line ~write

let touch_batch rt ~line ~write ~count =
  match rt with
  | Real -> ()
  | Simulated _ -> if Sim.in_sim () then Sim.step_mem_batch ~line ~write ~count

(* ------------------------------------------------------------------ *)
(* Control. *)

let fence_dummy = Stdlib.Atomic.make 0

let fence = function
  | Real -> ignore (Stdlib.Atomic.get fence_dummy)
  | Simulated _ -> if Sim.in_sim () then Sim.step_fence ()

let cpu_relax = function
  | Real -> Domain.cpu_relax ()
  | Simulated _ -> if Sim.in_sim () then Sim.step_work 8

(* Opaque sink so real [work] loops are not optimized away. *)
let work_sink = ref 0

let work rt n =
  match rt with
  | Real ->
      let acc = ref !work_sink in
      for i = 1 to n do
        acc := (!acc * 25214903917) + i
      done;
      work_sink := Sys.opaque_identity !acc
  | Simulated _ -> if Sim.in_sim () then Sim.step_work n

let yield = function
  | Real ->
      (* A genuine scheduler yield: on an oversubscribed host, spinning
         with PAUSE alone can leave the thread we wait on unscheduled
         for a whole quantum. *)
      (try Unix.sleepf 1e-6 with Unix.Unix_error _ -> Domain.cpu_relax ())
  | Simulated _ -> if Sim.in_sim () then Sim.step_yield ()

let syscall = function
  | Real -> ()
  | Simulated _ -> if Sim.in_sim () then Sim.step_syscall ()

let real_label_hook : (string -> unit) ref = ref (fun _ -> ())

let label rt l =
  (if Obs.compiled && Obs.hook_installed () then
     let in_sim =
       match rt with Real -> false | Simulated _ -> Sim.in_sim ()
     in
     Obs.last_label.(obs_tid ~in_sim) <- l);
  match rt with
  | Real -> !real_label_hook l
  | Simulated _ -> if Sim.in_sim () then Sim.step_label l

(* ------------------------------------------------------------------ *)
(* Thread identity. *)

let self = function
  | Real -> Domain.DLS.get dls_self
  | Simulated _ -> if Sim.in_sim () then Sim.self_tid () else 0

let num_cpus = function
  | Real -> Domain.recommended_domain_count ()
  | Simulated s -> Sim.cpus s

let now = function
  | Real -> Unix.gettimeofday ()
  | Simulated s ->
      if Sim.in_sim () then
        float_of_int (Sim.now_cycles ()) /. (Sim.costs s).Cost.cycles_per_sec
      else 0.0

(* ------------------------------------------------------------------ *)
(* Running threads. *)

type run_result = { elapsed : float; sim_result : Sim.result option }

let parallel_run rt bodies =
  let n = Array.length bodies in
  if n = 0 then { elapsed = 0.0; sim_result = None }
  else if n > max_threads then
    invalid_arg
      (Printf.sprintf "Rt.parallel_run: %d threads exceeds max_threads=%d" n
         max_threads)
  else
    match rt with
    | Real ->
        let t0 = Unix.gettimeofday () in
        let domains =
          Array.init n (fun i ->
              Domain.spawn (fun () ->
                  Domain.DLS.set dls_self i;
                  bodies.(i) i))
        in
        let failure = ref None in
        Array.iter
          (fun d ->
            match Domain.join d with
            | () -> ()
            | exception e -> if !failure = None then failure := Some e)
          domains;
        (match !failure with Some e -> raise e | None -> ());
        { elapsed = Unix.gettimeofday () -. t0; sim_result = None }
    | Simulated s ->
        let r = Sim.run s bodies in
        {
          elapsed =
            float_of_int r.Sim.makespan_cycles
            /. (Sim.costs s).Cost.cycles_per_sec;
          sim_result = Some r;
        }
