type action = Continue | Block_until of (unit -> bool) | Kill

type sched_point = {
  sp_runnable : int list;
  sp_current : int;
  sp_label : string option;
}

type counters = {
  atomics : int;
  plain : int;
  fences : int;
  transfers : int;
  invalidations : int;
  syscalls : int;
  ctx_switches : int;
  yields : int;
  killed : int;
}

type result = {
  makespan_cycles : int;
  cpu_cycles : int array;
  counters : counters;
}

exception Progress_timeout of string
exception Deadlock of string

type op =
  | Atomic_op of { line : int; write : bool }
  | Mem_op of { line : int; write : bool }
  | Mem_batch_op of { line : int; write : bool; count : int }
  | Fence_op
  | Work_op of int
  | Yield_op
  | Syscall_op
  | Label_op of string

type _ Effect.t += Step : op -> unit Effect.t

(* A line is either shared read-only by a set of CPUs or exclusively
   modified by one. The model only needs to know who pays on the next
   access, not the full MESI state machine. *)
type line_state = Shared of int list | Modified of int

type cont =
  | Not_started of (unit -> unit)
  | Paused of (unit, unit) Effect.Deep.continuation
  | No_cont

type status = Ready | Blocked of (unit -> bool) | Done | Killed_status

type thread = {
  tid : int;
  cpu : int;
  mutable status : status;
  mutable cont : cont;
  mutable failure : exn option;
}

type mutable_counters = {
  mutable c_atomics : int;
  mutable c_plain : int;
  mutable c_fences : int;
  mutable c_transfers : int;
  mutable c_invalidations : int;
  mutable c_syscalls : int;
  mutable c_ctx : int;
  mutable c_yields : int;
  mutable c_killed : int;
}

type t = {
  n_cpus : int;
  cost : Cost.t;
  seed : int;
  max_cycles : int;
  on_label : tid:int -> string -> action;
  sched : (sched_point -> int) option;
  (* Controlled-mode decision bookkeeping: [ctrl_decide] is set when the
     current thread passes a decision point (label/yield) and the external
     strategy must be consulted before the next step; [ctrl_label] carries
     the label name that caused it. *)
  mutable ctrl_decide : bool;
  mutable ctrl_label : string option;
  (* per-run state *)
  mutable clock : int array;
  mutable slice_start : int array;
  cache : (int, line_state) Hashtbl.t;
  cnt : mutable_counters;
  mutable threads : thread array;
  mutable running : thread option array;  (* per cpu *)
  mutable queues : thread Queue.t array;  (* per cpu *)
  mutable rng : Prng.t;
  mutable active : bool;
}

let create ?(cpus = 16) ?(costs = Cost.default) ?(seed = 1)
    ?(max_cycles = 1_000_000_000) ?(on_label = fun ~tid:_ _ -> Continue)
    ?sched () =
  if cpus < 1 then invalid_arg "Sim.create: cpus must be >= 1";
  {
    n_cpus = cpus;
    cost = costs;
    seed;
    max_cycles;
    on_label;
    sched;
    ctrl_decide = false;
    ctrl_label = None;
    clock = Array.make cpus 0;
    slice_start = Array.make cpus 0;
    cache = Hashtbl.create 4096;
    cnt =
      {
        c_atomics = 0;
        c_plain = 0;
        c_fences = 0;
        c_transfers = 0;
        c_invalidations = 0;
        c_syscalls = 0;
        c_ctx = 0;
        c_yields = 0;
        c_killed = 0;
      };
    threads = [||];
    running = Array.make cpus None;
    queues = Array.init cpus (fun _ -> Queue.create ());
    rng = Prng.create seed;
    active = false;
  }

let cpus t = t.n_cpus
let costs t = t.cost

(* ------------------------------------------------------------------ *)
(* Current-thread tracking. The simulator is single-threaded (it *is*
   the substitute for parallel hardware), so a single global suffices. *)

let cur : (t * thread) option ref = ref None

let in_sim () = !cur <> None

let current () =
  match !cur with
  | Some (st, _) -> st
  | None -> failwith "Sim.current: not inside a simulation"

let current_thread () =
  match !cur with
  | Some (_, th) -> th
  | None -> failwith "Sim: not inside a simulation"

let self_tid () = (current_thread ()).tid
let self_cpu () = (current_thread ()).cpu
let now_cycles () =
  let st = current () in
  st.clock.((current_thread ()).cpu)

(* ------------------------------------------------------------------ *)
(* Cache-line cost model. *)

let list_mem_int (c : int) l = List.exists (fun x -> x = c) l

let cache_access st ~cpu ~line ~write =
  let state = Hashtbl.find_opt st.cache line in
  if write then
    match state with
    | None ->
        Hashtbl.replace st.cache line (Modified cpu);
        0
    | Some (Modified m) when m = cpu -> 0
    | Some (Modified _) ->
        st.cnt.c_transfers <- st.cnt.c_transfers + 1;
        Hashtbl.replace st.cache line (Modified cpu);
        st.cost.line_transfer
    | Some (Shared l) ->
        Hashtbl.replace st.cache line (Modified cpu);
        if l = [ cpu ] then 0
        else begin
          st.cnt.c_invalidations <- st.cnt.c_invalidations + 1;
          st.cost.line_invalidate
        end
  else
    match state with
    | None ->
        Hashtbl.replace st.cache line (Shared [ cpu ]);
        0
    | Some (Modified m) when m = cpu -> 0
    | Some (Modified m) ->
        st.cnt.c_transfers <- st.cnt.c_transfers + 1;
        Hashtbl.replace st.cache line (Shared [ cpu; m ]);
        st.cost.line_transfer
    | Some (Shared l) ->
        if not (list_mem_int cpu l) then
          Hashtbl.replace st.cache line (Shared (cpu :: l));
        0

(* ------------------------------------------------------------------ *)
(* Scheduling. *)

let charge st cpu cycles =
  let jitter = Prng.int st.rng 3 in
  st.clock.(cpu) <- st.clock.(cpu) + cycles + jitter

let requeue_after_step st th =
  (* Called when [th] performed a chargeable step and remains runnable. *)
  let c = th.cpu in
  let quantum_expired =
    st.clock.(c) - st.slice_start.(c) >= st.cost.quantum
  in
  if quantum_expired && not (Queue.is_empty st.queues.(c)) then begin
    st.cnt.c_ctx <- st.cnt.c_ctx + 1;
    st.clock.(c) <- st.clock.(c) + st.cost.ctx_switch;
    Queue.push th st.queues.(c);
    st.running.(c) <- None
  end
  (* otherwise [th] stays as the running thread of its cpu *)

let apply_op st th op =
  let c = th.cpu in
  let controlled = st.sched <> None in
  (* In controlled mode the external strategy owns all interleaving: no
     quantum preemption, and no per-CPU queue juggling. *)
  let after_step () = if not controlled then requeue_after_step st th in
  (match op with
  | Atomic_op { line; write } ->
      st.cnt.c_atomics <- st.cnt.c_atomics + 1;
      let extra = cache_access st ~cpu:c ~line ~write in
      charge st c (st.cost.atomic_op + extra);
      after_step ()
  | Mem_op { line; write } ->
      st.cnt.c_plain <- st.cnt.c_plain + 1;
      let extra = cache_access st ~cpu:c ~line ~write in
      charge st c (st.cost.plain_access + extra);
      after_step ()
  | Mem_batch_op { line; write; count } ->
      (* [count] same-line accesses as one event: one coherence action,
         then cache hits. *)
      st.cnt.c_plain <- st.cnt.c_plain + count;
      let extra = cache_access st ~cpu:c ~line ~write in
      charge st c ((st.cost.plain_access * count) + extra);
      after_step ()
  | Fence_op ->
      st.cnt.c_fences <- st.cnt.c_fences + 1;
      charge st c st.cost.fence;
      after_step ()
  | Work_op n ->
      charge st c n;
      after_step ()
  | Yield_op ->
      st.cnt.c_yields <- st.cnt.c_yields + 1;
      charge st c st.cost.yield;
      if controlled then st.ctrl_decide <- true
        (* A voluntary yield always gives the CPU away if anyone waits. *)
      else if Queue.is_empty st.queues.(c) then ()
      else begin
        Queue.push th st.queues.(c);
        st.running.(c) <- None
      end
  | Syscall_op ->
      st.cnt.c_syscalls <- st.cnt.c_syscalls + 1;
      charge st c st.cost.syscall;
      after_step ()
  | Label_op name -> (
      if controlled then begin
        st.ctrl_decide <- true;
        st.ctrl_label <- Some name
      end;
      match st.on_label ~tid:th.tid name with
      | Continue -> after_step ()
      | Block_until p ->
          th.status <- Blocked p;
          st.running.(c) <- None
      | Kill ->
          th.status <- Killed_status;
          th.cont <- No_cont;
          st.cnt.c_killed <- st.cnt.c_killed + 1;
          st.running.(c) <- None))

let make_handler st th : (unit, unit) Effect.Deep.handler =
  {
    retc =
      (fun () ->
        th.status <- Done;
        st.running.(th.cpu) <- None);
    exnc =
      (fun e ->
        th.status <- Done;
        th.failure <- Some e;
        st.running.(th.cpu) <- None);
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Step op ->
            Some
              (fun (k : (a, unit) Effect.Deep.continuation) ->
                th.cont <- Paused k;
                apply_op st th op)
        | _ -> None);
  }

let resume st th =
  cur := Some (st, th);
  (match th.cont with
  | Not_started f ->
      th.cont <- No_cont;
      Effect.Deep.match_with f () (make_handler st th)
  | Paused k ->
      th.cont <- No_cont;
      Effect.Deep.continue k ()
  | No_cont -> assert false);
  cur := None

(* Move any blocked thread whose predicate has become true back to its
   CPU's ready queue. Returns how many were unblocked. *)
let unblock_ready st =
  let n = ref 0 in
  Array.iter
    (fun th ->
      match th.status with
      | Blocked p when p () ->
          th.status <- Ready;
          incr n;
          Queue.push th st.queues.(th.cpu)
      | _ -> ())
    st.threads;
  !n

let pick_cpu st =
  (* Choose the non-idle CPU with the smallest virtual clock. *)
  let best = ref (-1) in
  for c = 0 to st.n_cpus - 1 do
    let busy =
      st.running.(c) <> None || not (Queue.is_empty st.queues.(c))
    in
    if busy && (!best = -1 || st.clock.(c) < st.clock.(!best)) then best := c
  done;
  !best

let snapshot_counters st =
  {
    atomics = st.cnt.c_atomics;
    plain = st.cnt.c_plain;
    fences = st.cnt.c_fences;
    transfers = st.cnt.c_transfers;
    invalidations = st.cnt.c_invalidations;
    syscalls = st.cnt.c_syscalls;
    ctx_switches = st.cnt.c_ctx;
    yields = st.cnt.c_yields;
    killed = st.cnt.c_killed;
  }

let reset_run_state st nthreads =
  st.clock <- Array.make st.n_cpus 0;
  st.slice_start <- Array.make st.n_cpus 0;
  Hashtbl.reset st.cache;
  st.cnt.c_atomics <- 0;
  st.cnt.c_plain <- 0;
  st.cnt.c_fences <- 0;
  st.cnt.c_transfers <- 0;
  st.cnt.c_invalidations <- 0;
  st.cnt.c_syscalls <- 0;
  st.cnt.c_ctx <- 0;
  st.cnt.c_yields <- 0;
  st.cnt.c_killed <- 0;
  st.running <- Array.make st.n_cpus None;
  st.queues <- Array.init st.n_cpus (fun _ -> Queue.create ());
  st.rng <- Prng.create st.seed;
  st.ctrl_decide <- false;
  st.ctrl_label <- None;
  ignore nthreads

let run st bodies =
  if st.active then failwith "Sim.run: nested runs are not supported";
  if in_sim () then failwith "Sim.run: cannot run a simulation inside another";
  st.active <- true;
  let n = Array.length bodies in
  reset_run_state st n;
  st.threads <-
    Array.init n (fun i ->
        {
          tid = i;
          cpu = i mod st.n_cpus;
          status = Ready;
          cont = Not_started (fun () -> bodies.(i) i);
          failure = None;
        });
  if st.sched = None then
    Array.iter (fun th -> Queue.push th st.queues.(th.cpu)) st.threads;
  let finish () =
    st.active <- false;
    let makespan = Array.fold_left max 0 st.clock in
    Array.iter
      (fun th -> match th.failure with Some e -> raise e | None -> ())
      st.threads;
    {
      makespan_cycles = makespan;
      cpu_cycles = Array.copy st.clock;
      counters = snapshot_counters st;
    }
  in
  (* Controlled mode: the external strategy picks who runs at each
     decision point; queues, quanta and CPU clocks play no scheduling
     role (clocks still accumulate for the cycle budget). *)
  let run_controlled sched =
    let unblock () =
      Array.iter
        (fun th ->
          match th.status with
          | Blocked p when p () -> th.status <- Ready
          | _ -> ())
        st.threads
    in
    let runnable () =
      Array.fold_right
        (fun th acc -> if th.status = Ready then th.tid :: acc else acc)
        st.threads []
    in
    let rec loop current =
      unblock ();
      match runnable () with
      | [] ->
          if
            Array.exists
              (fun th ->
                match th.status with Blocked _ -> true | _ -> false)
              st.threads
          then begin
            st.active <- false;
            raise
              (Deadlock
                 "Sim.run: blocked threads remain and no thread is runnable")
          end
      | rs ->
          let maxclk = Array.fold_left max 0 st.clock in
          if maxclk > st.max_cycles then begin
            st.active <- false;
            raise
              (Progress_timeout
                 (Printf.sprintf
                    "Sim.run: cycle budget exceeded (clock=%d > max=%d)"
                    maxclk st.max_cycles))
          end;
          let need_decision =
            st.ctrl_decide || current < 0
            || st.threads.(current).status <> Ready
          in
          let tid =
            if not need_decision then current
            else begin
              st.ctrl_decide <- false;
              let lbl = st.ctrl_label in
              st.ctrl_label <- None;
              let choice =
                sched
                  { sp_runnable = rs; sp_current = current; sp_label = lbl }
              in
              if not (List.mem choice rs) then begin
                st.active <- false;
                failwith
                  (Printf.sprintf
                     "Sim.run: strategy chose non-runnable thread %d" choice)
              end;
              choice
            end
          in
          resume st st.threads.(tid);
          loop tid
    in
    loop (-1)
  in
  let rec loop () =
    ignore (unblock_ready st);
    (* Ensure every busy CPU has a running thread. *)
    for c = 0 to st.n_cpus - 1 do
      if st.running.(c) = None && not (Queue.is_empty st.queues.(c)) then begin
        let th = Queue.pop st.queues.(c) in
        st.slice_start.(c) <- st.clock.(c);
        st.running.(c) <- Some th
      end
    done;
    let c = pick_cpu st in
    if c = -1 then begin
      let blocked =
        Array.exists
          (fun th -> match th.status with Blocked _ -> true | _ -> false)
          st.threads
      in
      if blocked then begin
        st.active <- false;
        raise
          (Deadlock
             "Sim.run: blocked threads remain and no thread is runnable")
      end
    end
    else begin
      if st.clock.(c) > st.max_cycles then begin
        st.active <- false;
        raise
          (Progress_timeout
             (Printf.sprintf
                "Sim.run: cycle budget exceeded (clock=%d > max=%d)"
                st.clock.(c) st.max_cycles))
      end;
      (match st.running.(c) with
      | Some th -> resume st th
      | None -> assert false);
      loop ()
    end
  in
  (try match st.sched with Some s -> run_controlled s | None -> loop ()
   with e ->
     st.active <- false;
     cur := None;
     raise e);
  finish ()

let unblocked_survivors (_ : result) = ()

(* ------------------------------------------------------------------ *)
(* Step entry points used by Rt. *)

let step_atomic ~line ~write = Effect.perform (Step (Atomic_op { line; write }))
let step_mem ~line ~write = Effect.perform (Step (Mem_op { line; write }))

let step_mem_batch ~line ~write ~count =
  if count > 0 then Effect.perform (Step (Mem_batch_op { line; write; count }))
let step_fence () = Effect.perform (Step Fence_op)
let step_work n = if n > 0 then Effect.perform (Step (Work_op n))
let step_yield () = Effect.perform (Step Yield_op)
let step_syscall () = Effect.perform (Step Syscall_op)
let step_label name = Effect.perform (Step (Label_op name))
