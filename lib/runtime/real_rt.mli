(** The dispatch-free real backend of {!Runtime_intf.S}: atomics are
    OCaml 5 [Stdlib.Atomic] values with no wrapper, word access is a
    bare [Bytes] load/store, and labels/fences/obs sites compile to one
    load and one branch unless a hook is installed. The allocator stack
    functorized over this module is what the real-hardware benchmarks
    (BENCH_*.json) measure. *)

include Runtime_intf.S with type t = unit
