(** The RUNTIME signature: everything the allocator stack may ask of
    its execution environment.

    Every module in [lib/lockfree], [lib/mem], [lib/pages], [lib/core]
    and [lib/baselines] is a functor over this signature, specialized
    exactly twice:

    - {!Real_rt}: [t = unit], atomics are [Stdlib.Atomic.t] directly,
      memory/label/fence instrumentation compiles to straight-line code
      with no [Sim] check on any path. This is the dispatch-free backend
      behind the real-hardware benchmarks.
    - {!Sim_rt}: [t = Sim.t], every operation charges the deterministic
      simulated multiprocessor, bit-identical to the historical
      value-dispatch semantics (same [Sim.step_*] sequence, same
      synthetic cache-line ids).

    The value-level {!Rt} module remains for harness code that picks a
    runtime at run time; allocator hot paths never go through it.

    Capability flags: [is_sim] marks backends whose memory is purely
    simulated (enables e.g. out-of-bounds poisoning checks);
    [controllable] marks backends exposing controlled schedules, label
    interception and kill/stall injection (lib/check only — lint R6). *)

module type S = sig
  type t
  (** Runtime handle threaded through every structure: [unit] on the
      real backend, the simulator instance on the simulated one. *)

  type 'a atomic

  val name : string
  val is_sim : bool
  val controllable : bool

  val max_threads : int
  (** Upper bound on concurrently running threads (sizes hazard-pointer
      tables and per-thread slots). *)

  val fresh_line : unit -> int
  (** A synthetic cache-line id never used by simulated memory. *)

  module Obs : sig
    type kind = Rt_base.Obs.kind =
      | Cas_ok
      | Cas_fail
      | Transition
      | Hp_scan
      | Mmap
  end

  module Atomic : sig
    val make : t -> ?line:int -> 'a -> 'a atomic
    val get : 'a atomic -> 'a
    val set : 'a atomic -> 'a -> unit

    val compare_and_set : 'a atomic -> 'a -> 'a -> bool
    (** CAS with physical (immediate-value) comparison. *)

    val fetch_and_add : int atomic -> int -> int
    val incr : int atomic -> unit
  end

  val read_word : t -> Bytes.t -> int -> line:int -> int
  val write_word : t -> Bytes.t -> int -> line:int -> int -> unit
  val touch : t -> line:int -> write:bool -> unit
  val touch_batch : t -> line:int -> write:bool -> count:int -> unit
  val fence : t -> unit
  val cpu_relax : t -> unit
  val work : t -> int -> unit
  val yield : t -> unit
  val syscall : t -> unit

  val label : t -> string -> unit
  (** Named instrumentation point inside lock-free code. Free (one load
      and one branch) on the real backend unless a hook is installed. *)

  val obs_event : t -> Obs.kind -> string -> unit
  val self : t -> int
  val num_cpus : t -> int
  val now : t -> float
  val parallel_run : t -> (int -> unit) array -> Rt_base.run_result
end
