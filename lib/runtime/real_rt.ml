(* The dispatch-free real backend of {!Runtime_intf.S}.

   This is the only module in the repository (outside the simulator's
   own host bookkeeping in {!Rt_base}) allowed to touch [Stdlib.Atomic]
   and [Domain] directly (mm-lint R2): an ['a atomic] IS an
   ['a Stdlib.Atomic.t], word access is a bare [Bytes] load/store, and
   labels/fences/obs sites cost one load and one branch when no hook is
   installed. No [Sim.in_sim] check appears on any path. *)

type t = unit
type 'a atomic = 'a Stdlib.Atomic.t

let name = "real"
let is_sim = false
let controllable = false
let max_threads = Rt_base.max_threads
let fresh_line = Rt_base.fresh_line

module Obs = Rt_base.Obs

module Atomic = struct
  let make () ?line v =
    ignore line;
    Stdlib.Atomic.make v

  let get = Stdlib.Atomic.get
  let set = Stdlib.Atomic.set

  let compare_and_set a expected desired =
    let ok = Stdlib.Atomic.compare_and_set a expected desired in
    (* Hook deref inlined here: [obs_cas] re-checks it, but going through
       the call just to find no hook installed costs a cross-module call
       on every CAS of the hot path. *)
    if Obs.compiled then begin
      match !Obs.hook with
      | None -> ()
      | Some _ -> Rt_base.obs_cas ~in_sim:false ok
    end;
    ok

  let fetch_and_add = Stdlib.Atomic.fetch_and_add
  let incr a = ignore (Stdlib.Atomic.fetch_and_add a 1)
end

let read_word () bytes off ~line:_ = Int64.to_int (Bytes.get_int64_le bytes off)

let write_word () bytes off ~line:_ v =
  Bytes.set_int64_le bytes off (Int64.of_int v)

let touch () ~line:_ ~write:_ = ()
let touch_batch () ~line:_ ~write:_ ~count:_ = ()
let fence_dummy = Stdlib.Atomic.make 0
let fence () = ignore (Stdlib.Atomic.get fence_dummy)
let cpu_relax () = Domain.cpu_relax ()
let work () n = Rt_base.real_work n

let yield () =
  (* A genuine scheduler yield: on an oversubscribed host, spinning
     with PAUSE alone can leave the thread we wait on unscheduled for a
     whole quantum. *)
  try Unix.sleepf 1e-6 with Unix.Unix_error _ -> Domain.cpu_relax ()

let syscall () = ()

let label () l =
  (if Obs.compiled then
     match !Rt_base.Obs.hook with
     | None -> ()
     | Some _ ->
         Rt_base.Obs.last_label.(Domain.DLS.get Rt_base.dls_self) <- l);
  let h = !Rt_base.real_label_hook in
  if h != Rt_base.noop_label then h l

let obs_event () kind name =
  if Obs.compiled then
    match !Rt_base.Obs.hook with
    | None -> ()
    | Some f ->
        f
          ~tid:(Rt_base.obs_tid ~in_sim:false)
          ~kind ~label:name
          ~cycle:(Rt_base.obs_cycle ~in_sim:false)

let self () = Domain.DLS.get Rt_base.dls_self
let num_cpus () = Domain.recommended_domain_count ()
let now () = Unix.gettimeofday ()

let parallel_run () bodies =
  let n = Array.length bodies in
  if n = 0 then { Rt_base.elapsed = 0.0; sim_result = None }
  else if n > max_threads then
    invalid_arg
      (Printf.sprintf "Rt.parallel_run: %d threads exceeds max_threads=%d" n
         max_threads)
  else begin
    let t0 = Unix.gettimeofday () in
    let domains =
      Array.init n (fun i ->
          Domain.spawn (fun () ->
              Domain.DLS.set Rt_base.dls_self i;
              bodies.(i) i))
    in
    let failure = ref None in
    Array.iter
      (fun d ->
        match Domain.join d with
        | () -> ()
        | exception e -> if !failure = None then failure := Some e)
      domains;
    (match !failure with Some e -> raise e | None -> ());
    { Rt_base.elapsed = Unix.gettimeofday () -. t0; sim_result = None }
  end
