open Mm_runtime
module Cfg = Mm_mem.Alloc_config
module W = Mm_workloads
module Metrics = W.Metrics
module Locks_real = Mm_baselines.Locks.Make (Mm_runtime.Real_rt)

type mode = Quick | Full

type outcome = {
  id : string;
  title : string;
  runtime : string;  (* "real" | "simulated" — honest label for JSON *)
  expectation : string;
  lines : string list;
}

let sim_cpus = 16
let allocators = Allocators.names

(* Ample virtual-cycle budget; individual experiments stay far below. *)
let sim_budget = 100_000_000_000

let make_sim ?(cpus = sim_cpus) ~seed () =
  Sim.create ~cpus ~seed ~max_cycles:sim_budget ()

(* ------------------------------------------------------------------ *)
(* OS-traffic census: every experiment table ends with the lock-free
   allocator's simulated syscall and superblock-pool traffic, summed
   over every "new" data point the experiment ran and normalized per 1k
   workload ops. This is the denominator the warm-superblock-cache
   ablation (DESIGN.md §14) and the scripts/ci.sh mmap gate guard. *)

type os_census = {
  census_ops : int;
  census_mmaps : int;
  census_munmaps : int;
  census_sb_allocs : int;
  census_sb_reuses : int;
  census_large_mmaps : int;
  census_large_munmaps : int;
  census_pages_requested : int;
  census_pages_granted : int;
}

let zero_census =
  {
    census_ops = 0;
    census_mmaps = 0;
    census_munmaps = 0;
    census_sb_allocs = 0;
    census_sb_reuses = 0;
    census_large_mmaps = 0;
    census_large_munmaps = 0;
    census_pages_requested = 0;
    census_pages_granted = 0;
  }

let census = ref zero_census

let note_census name (m : Metrics.t) =
  if name = "new" then begin
    let os = m.Metrics.os in
    let c = !census in
    census :=
      {
        census_ops = c.census_ops + m.Metrics.ops;
        census_mmaps = c.census_mmaps + os.Mm_mem.Store.mmap_calls;
        census_munmaps = c.census_munmaps + os.Mm_mem.Store.munmap_calls;
        census_sb_allocs = c.census_sb_allocs + os.Mm_mem.Store.sb_allocs;
        census_sb_reuses = c.census_sb_reuses + os.Mm_mem.Store.sb_reuses;
        census_large_mmaps =
          c.census_large_mmaps + os.Mm_mem.Store.large_mmaps;
        census_large_munmaps =
          c.census_large_munmaps + os.Mm_mem.Store.large_munmaps;
        census_pages_requested =
          c.census_pages_requested + os.Mm_mem.Store.pages_requested;
        census_pages_granted =
          c.census_pages_granted + os.Mm_mem.Store.pages_granted;
      }
  end

let census_pairs c =
  [
    ("ops", c.census_ops);
    ("mmap_calls", c.census_mmaps);
    ("munmap_calls", c.census_munmaps);
    ("sb_allocs", c.census_sb_allocs);
    ("sb_reuses", c.census_sb_reuses);
    ("large_mmaps", c.census_large_mmaps);
    ("large_munmaps", c.census_large_munmaps);
    ("pages_requested", c.census_pages_requested);
    ("pages_granted", c.census_pages_granted);
  ]

let per1k n ops =
  if ops = 0 then "-"
  else Printf.sprintf "%.2f" (1000.0 *. float_of_int n /. float_of_int ops)

(* Internal fragmentation of buddy-served requests: the share of granted
   pages the power-of-two rounding wasted. "-" when nothing went through
   the buddy (page manager off, or no large/new-superblock traffic). *)
let frag_pct c =
  if c.census_pages_granted = 0 then "-"
  else
    Printf.sprintf "%.1f%%"
      (100.0
      *. float_of_int (c.census_pages_granted - c.census_pages_requested)
      /. float_of_int c.census_pages_granted)

let census_line c =
  if c.census_ops = 0 then
    "os census (new): no simulated data points in this experiment"
  else
    Printf.sprintf
      "os census (new, per 1k ops over %d): mmap %s, munmap %s, sb_allocs \
       %s, sb_reuses %s, large_mmap %s, large_munmap %s, buddy frag %s"
      c.census_ops
      (per1k c.census_mmaps c.census_ops)
      (per1k c.census_munmaps c.census_ops)
      (per1k c.census_sb_allocs c.census_ops)
      (per1k c.census_sb_reuses c.census_ops)
      (per1k c.census_large_mmaps c.census_ops)
      (per1k c.census_large_munmaps c.census_ops)
      (frag_pct c)

(* Per-experiment censuses from the latest [run]/[run_all], for the
   structured MM_BENCH_JSON payload. *)
let censuses : (string, (string * int) list) Hashtbl.t = Hashtbl.create 32
let os_census id = Option.value (Hashtbl.find_opt censuses id) ~default:[]

(* One simulated data point: fresh machine, fresh heap. *)
let sim_point ?(cpus = sim_cpus) ?(cfg = Cfg.default) ~seed name workload
    ~threads =
  let sim = make_sim ~cpus ~seed () in
  let rt = Rt.simulated sim in
  let inst = Allocators.make name rt cfg in
  let m = workload inst ~threads in
  note_census name m;
  m

(* Real-runtime heaps get the paper's multiprocessor shape (16 heaps)
   unless an experiment overrides it. *)
let real_cfg = Cfg.make ~nheaps:16 ()

(* Wall-clock timing on a shared host is noisy; take the best of a few
   fresh runs (the paper's own methodology of reporting representative
   contention-free numbers). *)
let real_point ?(cfg = real_cfg) ?(repeats = 3) name workload ~threads =
  let best = ref None in
  for _ = 1 to repeats do
    let inst = Allocators.make name Rt.real cfg in
    let m = workload inst ~threads in
    note_census name m;
    match !best with
    | Some b when b.Metrics.throughput >= m.Metrics.throughput -> ()
    | _ -> best := Some m
  done;
  Option.get !best

let threads_list = function
  | Quick -> [ 1; 2; 4; 8; 16 ]
  | Full -> List.init 16 (fun i -> i + 1)

(* ------------------------------------------------------------------ *)
(* Workload selections per mode. *)

let linux_params = function
  | Quick -> { W.Linux_scalability.quick with pairs = 2_000 }
  | Full -> { W.Linux_scalability.quick with pairs = 20_000 }

let threadtest_params = function
  | Quick -> Traced.threadtest_quick
  | Full -> { W.Threadtest.quick with iterations = 10; blocks = 2_000 }

let active_false_params = function
  | Quick -> { W.False_sharing.quick_active with pairs = 200 }
  | Full -> { W.False_sharing.quick_active with pairs = 2_000 }

let passive_false_params m =
  { (active_false_params m) with W.False_sharing.passive = true }

let larson_params = function
  | Quick -> { W.Larson.quick with rounds = 2_000 }
  | Full -> { W.Larson.quick with slots_per_thread = 256; rounds = 10_000 }

let pc_params ~work = function
  | Quick -> Traced.pc_quick ~work
  | Full -> { (W.Producer_consumer.with_work W.Producer_consumer.quick work)
              with W.Producer_consumer.tasks = 3_000 }

(* Real-runtime (latency) parameter sets: big enough to time reliably. *)
let real_linux = function
  | Quick -> { W.Linux_scalability.quick with pairs = 300_000 }
  | Full -> { W.Linux_scalability.quick with pairs = 3_000_000 }

let real_threadtest = function
  | Quick -> { W.Threadtest.quick with iterations = 30; blocks = 10_000 }
  | Full -> { W.Threadtest.quick with iterations = 100; blocks = 30_000 }

let real_larson = function
  | Quick -> { W.Larson.default with rounds = 300_000 }
  | Full -> { W.Larson.default with rounds = 3_000_000 }

(* ------------------------------------------------------------------ *)
(* Scalability figures: speedup over contention-free (t=1) libc. *)

(* Scalability figures run on real domains whenever the host has any
   parallelism to measure ([Rt.num_cpus Rt.real] > 1, i.e.
   [Domain.recommended_domain_count] behind the Real runtime); on a
   single-CPU host they fall back to the deterministic 16-CPU simulated
   machine. Either way the runtime is labelled honestly in the title
   and the [runtime] field of the JSON payload. *)
let figure ~id ~title ~expectation ~workload mode seed =
  let threads = threads_list mode in
  let real_cpus = Rt.num_cpus Rt.real in
  if real_cpus > 1 then begin
    let base = real_point "libc" workload ~threads:1 in
    let rows =
      List.map
        (fun t ->
          ( string_of_int t,
            List.map
              (fun name ->
                let m = real_point name workload ~threads:t in
                Metrics.speedup m ~baseline:base)
              allocators ))
        threads
    in
    {
      id;
      title = Printf.sprintf "%s (real, %d CPUs)" title real_cpus;
      runtime = "real";
      expectation;
      lines =
        Render.series ~col_title:"allocator" ~cols:allocators ~row_title:"t"
          ~rows;
    }
  end
  else begin
    let base = sim_point ~seed "libc" workload ~threads:1 in
    let rows =
      List.map
        (fun t ->
          ( string_of_int t,
            List.map
              (fun name ->
                let m = sim_point ~seed name workload ~threads:t in
                Metrics.speedup m ~baseline:base)
              allocators ))
        threads
    in
    {
      id;
      title = Printf.sprintf "%s (simulated, %d CPUs)" title sim_cpus;
      runtime = "simulated";
      expectation;
      lines =
        Render.series ~col_title:"allocator" ~cols:allocators ~row_title:"t"
          ~rows;
    }
  end

(* ------------------------------------------------------------------ *)
(* Table 1 and §4.2.1 latency. *)

let table1 mode seed =
  ignore seed;
  let workloads =
    [
      ("linux-scalability",
       fun inst ~threads -> W.Linux_scalability.run inst ~threads (real_linux mode));
      ("threadtest",
       fun inst ~threads -> W.Threadtest.run inst ~threads (real_threadtest mode));
      ("larson",
       fun inst ~threads -> W.Larson.run inst ~threads (real_larson mode));
    ]
  in
  let rows =
    List.map
      (fun (wname, wl) ->
        let base = real_point "libc" wl ~threads:1 in
        wname
        :: List.filter_map
             (fun name ->
               if name = "libc" then None
               else
                 let m = real_point name wl ~threads:1 in
                 Some (Render.fmt_speedup (Metrics.speedup m ~baseline:base)))
             allocators)
      workloads
  in
  {
    id = "table1";
    runtime = "real";
    title = "Table 1: contention-free speedup over libc malloc (real runtime)";
    expectation =
      "Paper (POWER3/POWER4): New 2.18-2.95, Hoard 1.11-2.37, Ptmalloc \
       1.83-2.67; New highest on every benchmark.";
    lines =
      Render.table
        ~header:("benchmark" :: List.filter (fun n -> n <> "libc") allocators)
        ~rows;
  }

let latency mode seed =
  ignore seed;
  let pairs = match mode with Quick -> 200_000 | Full -> 2_000_000 in
  let pair_ns name =
    let inst = Allocators.make name Rt.real real_cfg in
    let m =
      W.Linux_scalability.run inst ~threads:1
        { W.Linux_scalability.pairs; size = 8 }
    in
    1e9 /. m.Metrics.throughput
  in
  let lock_pair_ns kind =
    let lock = Locks_real.create () kind in
    let t0 = Rt.now Rt.real in
    for _ = 1 to pairs do
      Locks_real.acquire lock;
      Locks_real.release lock
    done;
    (Rt.now Rt.real -. t0) *. 1e9 /. float_of_int pairs
  in
  let alloc_rows =
    List.map (fun n -> [ "malloc+free (" ^ n ^ ")"; Render.fmt_ns (pair_ns n) ])
      allocators
  in
  let lock_rows =
    [
      [ "lock acq+rel (tas-backoff)"; Render.fmt_ns (lock_pair_ns Cfg.Tas_backoff) ];
      [ "lock acq+rel (ticket)"; Render.fmt_ns (lock_pair_ns Cfg.Ticket) ];
      [ "lock acq+rel (pthread-like)"; Render.fmt_ns (lock_pair_ns Cfg.Pthread_like) ];
    ]
  in
  {
    id = "latency";
    runtime = "real";
    title = "§4.2.1: contention-free pair latency (real runtime, 1 thread)";
    expectation =
      "Paper (POWER4): New pair 282ns vs 165ns for a bare lightweight \
       lock pair — under 2x a minimal critical section; New lowest among \
       allocators.";
    lines = Render.table ~header:[ "operation"; "latency" ]
        ~rows:(alloc_rows @ lock_rows);
  }

(* ------------------------------------------------------------------ *)
(* §4.2.5 space efficiency. *)

let space mode seed =
  let t = 16 in
  (* Space effects need enough live blocks per thread to matter; these
     are larger than the throughput-figure parameter sets. *)
  let scale = match mode with Quick -> 1 | Full -> 4 in
  let workloads =
    [
      ("threadtest",
       fun inst ~threads ->
         W.Threadtest.run inst ~threads
           { W.Threadtest.quick with iterations = 3; blocks = 4_000 * scale });
      ("larson",
       fun inst ~threads ->
         W.Larson.run inst ~threads
           { W.Larson.quick with slots_per_thread = 512 * scale;
             rounds = 4_000 * scale });
      ("producer-consumer",
       fun inst ~threads ->
         W.Producer_consumer.run inst ~threads
           { (pc_params ~work:750 mode) with
             W.Producer_consumer.tasks = 1_500 * scale;
             queue_cap = 1_000 });
    ]
  in
  let rows =
    List.map
      (fun (wname, wl) ->
        let peaks =
          List.map
            (fun name ->
              let m = sim_point ~seed name wl ~threads:t in
              (name, m.Metrics.space.Mm_mem.Space.mapped_peak))
            allocators
        in
        let peak n = List.assoc n peaks in
        wname
        :: (List.map (fun n -> Render.fmt_bytes (peak n)) allocators
           @ [ Printf.sprintf "%.2f"
                 (float_of_int (peak "ptmalloc") /. float_of_int (peak "new"));
             ])
      )
      workloads
  in
  {
    id = "space";
    runtime = "simulated";
    title = "§4.2.5: maximum space mapped from the OS (simulated, 16 threads)";
    expectation =
      "Paper: New <= Hoard < Ptmalloc everywhere; Ptmalloc/New ratio 1.16 \
       (Threadtest) to 3.83 (Larson) on 16 processors.";
    lines =
      Render.table
        ~header:(("benchmark" :: allocators) @ [ "ptmalloc/new" ])
        ~rows;
  }

(* ------------------------------------------------------------------ *)
(* §4.2.4 uniprocessor optimization. *)

let uniproc mode seed =
  ignore seed;
  let params = real_linux mode in
  let run_with nheaps =
    let cfg = Cfg.make ~nheaps () in
    let m =
      real_point ~cfg "new"
        (fun inst ~threads -> W.Linux_scalability.run inst ~threads params)
        ~threads:1
    in
    m.Metrics.throughput
  in
  let multi = run_with 16 in
  let single = run_with 1 in
  {
    id = "uniproc";
    runtime = "real";
    title = "§4.2.4: uniprocessor optimization (single heap, real runtime)";
    expectation =
      "Paper: using one heap (no thread-id lookup across heaps) gained \
       ~15% contention-free speedup on Linux-scalability.";
    lines =
      Render.table ~header:[ "config"; "throughput"; "vs 16 heaps" ]
        ~rows:
          [
            [ "16 heaps"; Render.fmt_throughput multi; "1.00" ];
            [ "1 heap (uniproc)"; Render.fmt_throughput single;
              Render.fmt_speedup (single /. multi) ];
          ];
  }

(* ------------------------------------------------------------------ *)
(* Ablations. *)

let ablation_rows ~seed ~threads ~configs ~workloads =
  List.concat_map
    (fun (wname, wl) ->
      List.map
        (fun (cname, cfg) ->
          let m = sim_point ~cfg ~seed "new" wl ~threads in
          [ wname; cname; Render.fmt_throughput m.Metrics.throughput ])
        configs)
    workloads

let ablation_partial mode seed =
  let workloads =
    [
      ("larson",
       fun inst ~threads -> W.Larson.run inst ~threads (larson_params mode));
      ("producer-consumer",
       fun inst ~threads ->
         W.Producer_consumer.run inst ~threads (pc_params ~work:750 mode));
    ]
  in
  let configs =
    [
      ("fifo (paper)", Cfg.make ~partial_policy:Cfg.Fifo ());
      ("lifo", Cfg.make ~partial_policy:Cfg.Lifo ());
    ]
  in
  {
    id = "ablation-partial";
    runtime = "simulated";
    title = "§3.2.6 ablation: FIFO vs LIFO size-class partial lists";
    expectation =
      "Paper prefers FIFO to reduce contention and false sharing; both \
       must be correct, FIFO no slower.";
    lines =
      Render.table ~header:[ "benchmark"; "policy"; "throughput" ]
        ~rows:(ablation_rows ~seed ~threads:8 ~configs ~workloads);
  }

let ablation_desc mode seed =
  let workloads =
    [
      ("threadtest",
       fun inst ~threads -> W.Threadtest.run inst ~threads (threadtest_params mode));
      ("larson",
       fun inst ~threads -> W.Larson.run inst ~threads (larson_params mode));
    ]
  in
  let configs =
    [
      ("hazard pointers (paper)", Cfg.make ~desc_pool:Cfg.Hazard ());
      ("IBM tag", Cfg.make ~desc_pool:Cfg.Tagged ());
    ]
  in
  {
    id = "ablation-desc";
    runtime = "simulated";
    title = "Fig. 7 ablation: descriptor freelist ABA prevention";
    expectation =
      "Both schemes are correct; descriptor operations are rare, so \
       throughput is comparable.";
    lines =
      Render.table ~header:[ "benchmark"; "scheme"; "throughput" ]
        ~rows:(ablation_rows ~seed ~threads:8 ~configs ~workloads);
  }

(* DESIGN.md §17: what does descriptor reclamation cost, and what does
   reuse-in-place eliminate? Same one-heap 16-thread shape as
   contention-sites, traced, one row per reclamation variant. The
   hazard scans and the freelist CAS windows come from the obs layer;
   the spill/steal retry rates are the allocator's own striped census
   (the two agree — tested in test_obs). *)
let ablation_reclaim mode seed =
  let wl inst ~threads =
    W.Threadtest.run inst ~threads (threadtest_params mode)
  in
  (* The shared-freelist hand-off windows of the retiring variants:
     Fig. 7 pop/refill/push for the hazard pool, plus the tagged pool's
     internal Tis CASes (its pops/pushes are the freelist hand-off);
     reuse-in-place has none of them. With the warm-superblock cache off
     the tagged descriptor pool is the only default-label Tis instance,
     so the tis.* labels are unambiguous here. *)
  let freelist_windows =
    Mm_core.Labels.[ desc_alloc; desc_refill; desc_push ]
    @ Mm_lockfree.Lf_labels.[ tis_push_cas; tis_pop_cas ]
  in
  let rows =
    List.map
      (fun (vname, alloc_name) ->
        (* Eager scan threshold so the hazard baseline exhibits its scan
           cost at quick scale (the default amortises over 2*max_threads
           retirements and never fires here); only the hazard pool reads
           it, so the other rows are unaffected. *)
        let c =
          Traced.capture ~nheaps:1 ~allocator:alloc_name ~name:"threadtest"
            ~threads:16 ~seed ~desc_scan_threshold:4 wl
        in
        note_census "new" c.Traced.metric;
        let agg = Option.get c.Traced.metric.Metrics.obs in
        let m = c.Traced.trace.Mm_obs.Trace_file.meta in
        let ops = m.Mm_obs.Trace_file.mallocs + m.Mm_obs.Trace_file.frees in
        let hp = Traced.trace_hp_scans c.Traced.trace in
        let freelist_cas =
          Mm_obs.Agg.retries agg ~labels:freelist_windows
        in
        let retry site =
          Option.value (List.assoc_opt site c.Traced.retry_counts) ~default:0
        in
        [
          vname;
          Render.fmt_throughput c.Traced.metric.Metrics.throughput;
          string_of_int hp;
          per1k hp ops;
          string_of_int freelist_cas;
          string_of_int (retry "desc.spill" + retry "desc.steal");
        ])
      [
        ("hazard pointers (paper)", "new");
        ("IBM tag", "new-tagged");
        ("reuse-in-place", "new-reuse");
      ]
  in
  {
    id = "ablation-reclaim";
    runtime = "simulated";
    title =
      "DESIGN.md §17 ablation: descriptor reclamation (hazard scans vs \
       IBM-tag freelist vs reuse-in-place), traced threadtest, ONE \
       shared heap, 16 threads";
    expectation =
      "Retiring variants pay a reclamation tax: hazard pointers scan the \
       retirement list (hp.scan events) and both retiring variants CAS \
       through the shared freelist on every descriptor hand-off. \
       Reuse-in-place records ZERO hp.scans and no freelist windows at \
       all — its only shared traffic is the rare spill/steal residue — \
       at the cost of never returning descriptor slots.";
    lines =
      Render.table
        ~header:
          [
            "variant"; "throughput"; "hp.scan"; "scan/1k";
            "freelist CAS fail"; "spill+steal retries";
          ]
        ~rows;
  }

(* DESIGN.md §19: what does anchor contention cost, and what does the
   owner-biased private/public split eliminate? Same one-heap 16-thread
   shape as contention-sites, traced, one row per free-list mode and
   workload. The anchor column sums the two hot per-superblock sites
   (anchor.pop + anchor.free); the pub column sums the owner-biased
   mode's replacement windows (pub.push + pub.claim). *)
let ablation_ownerbias mode seed =
  let workloads =
    [
      ("threadtest x16",
       fun inst ~threads ->
         W.Threadtest.run inst ~threads (threadtest_params mode));
      ("larson x16",
       fun inst ~threads -> W.Larson.run inst ~threads (larson_params mode));
    ]
  in
  let rows =
    List.concat_map
      (fun (wname, wl) ->
        List.map
          (fun (vname, alloc_name) ->
            let c =
              Traced.capture ~nheaps:1 ~allocator:alloc_name ~name:wname
                ~threads:16 ~seed wl
            in
            note_census alloc_name c.Traced.metric;
            let m = c.Traced.trace.Mm_obs.Trace_file.meta in
            let ops =
              m.Mm_obs.Trace_file.mallocs + m.Mm_obs.Trace_file.frees
            in
            let retry site =
              Option.value
                (List.assoc_opt site c.Traced.retry_counts)
                ~default:0
            in
            let anchor = retry "anchor.pop" + retry "anchor.free" in
            let pub = retry "pub.push" + retry "pub.claim" in
            [
              wname; vname;
              Render.fmt_throughput c.Traced.metric.Metrics.throughput;
              string_of_int anchor; per1k anchor ops;
              string_of_int pub; per1k pub ops;
            ])
          [ ("anchor (paper)", "new"); ("owner-biased", "new-ob") ])
      workloads
  in
  {
    id = "ablation-ownerbias";
    runtime = "simulated";
    title =
      "DESIGN.md §19 ablation: anchor vs owner-biased free lists \
       (traced, ONE shared heap, 16 threads)";
    expectation =
      "Owner-local frees become plain private-list writes and remote \
       frees one pub.push each, so the combined anchor.pop+anchor.free \
       failed-CAS rate collapses (>=10x) while throughput holds or \
       improves; the residual pub.* retries stay far below the anchor \
       traffic they replace.";
    lines =
      Render.table
        ~header:
          [
            "benchmark"; "free lists"; "throughput"; "anchor CAS fail";
            "anchor/1k"; "pub CAS fail"; "pub/1k";
          ]
        ~rows;
  }

let ablation_credits mode seed =
  let workloads =
    [
      ("threadtest",
       fun inst ~threads -> W.Threadtest.run inst ~threads (threadtest_params mode));
    ]
  in
  let configs =
    List.map
      (fun c -> (Printf.sprintf "MAXCREDITS=%d" c, Cfg.make ~maxcredits:c ()))
      [ 1; 8; 64 ]
  in
  {
    id = "ablation-credits";
    runtime = "simulated";
    title = "§3.2.1 ablation: credits batch size";
    expectation =
      "Few credits force a reservation round-trip through the anchor per \
       batch of allocations: throughput grows with MAXCREDITS.";
    lines =
      Render.table ~header:[ "benchmark"; "config"; "throughput" ]
        ~rows:(ablation_rows ~seed ~threads:8 ~configs ~workloads);
  }

let ablation_locks mode seed =
  let wl inst ~threads =
    W.Linux_scalability.run inst ~threads (linux_params mode)
  in
  let rows =
    List.concat_map
      (fun name ->
        List.map
          (fun (lname, kind) ->
            let cfg = Cfg.make ~lock_kind:kind () in
            let one = sim_point ~cfg ~seed name wl ~threads:1 in
            let many = sim_point ~cfg ~seed name wl ~threads:8 in
            [
              name; lname;
              Render.fmt_throughput one.Metrics.throughput;
              Render.fmt_throughput many.Metrics.throughput;
            ])
          [ ("pthread-like", Cfg.Pthread_like); ("lightweight", Cfg.Tas_backoff) ])
      [ "hoard"; "ptmalloc" ]
  in
  {
    id = "ablation-locks";
    runtime = "simulated";
    title = "§4 ablation: baseline lock implementation";
    expectation =
      "Paper: replacing pthread mutexes with lightweight locks cut \
       Ptmalloc's contention-free latency by >50% and improved its \
       scalability; Hoard gained similarly.";
    lines =
      Render.table
        ~header:[ "allocator"; "lock"; "thr t=1"; "thr t=8" ]
        ~rows;
  }

let ablation_hyper mode seed =
  let wl inst ~threads =
    W.Threadtest.run inst ~threads (threadtest_params mode)
  in
  let rows =
    List.map
      (fun (cname, cfg) ->
        let m = sim_point ~cfg ~seed "new" wl ~threads:8 in
        [
          cname;
          Render.fmt_throughput m.Metrics.throughput;
          string_of_int m.Metrics.os.Mm_mem.Store.mmap_calls;
          string_of_int m.Metrics.os.Mm_mem.Store.sb_allocs;
        ])
      [
        ("plain superblocks", Cfg.make ~hyperblocks:false ());
        ("1MB hyperblocks", Cfg.make ~hyperblocks:true ());
      ]
  in
  {
    id = "ablation-hyper";
    runtime = "simulated";
    title = "§3.2.5 ablation: hyperblock batching of superblock mmaps";
    expectation =
      "Batching superblock allocation into 1MB hyperblocks divides the \
       mmap call count by the batch factor with no throughput loss.";
    lines =
      Render.table
        ~header:[ "config"; "throughput"; "mmap calls"; "sb allocs" ]
        ~rows;
  }

let ablation_sbcache mode seed =
  (* One shared heap concentrates the EMPTY churn (threadtest's
     alloc-all/free-all phases empty superblocks constantly, and every
     lost MallocFromNewSB install race frees a just-built superblock);
     this is the same shape as the contention-sites census. *)
  let workloads =
    [
      ("threadtest x16",
       fun inst ~threads -> W.Threadtest.run inst ~threads (threadtest_params mode));
      ("larson x16",
       fun inst ~threads -> W.Larson.run inst ~threads (larson_params mode));
    ]
  in
  let configs =
    [
      ("cache off (paper)", Cfg.make ~nheaps:1 ());
      ("cache depth 8", Cfg.make ~nheaps:1 ~sb_cache_depth:8 ());
      ("cache depth 64", Cfg.make ~nheaps:1 ~sb_cache_depth:64 ());
    ]
  in
  let rows =
    List.concat_map
      (fun (wname, wl) ->
        List.map
          (fun (cname, cfg) ->
            let m = sim_point ~cfg ~seed "new" wl ~threads:16 in
            let os = m.Metrics.os in
            let syscalls =
              os.Mm_mem.Store.mmap_calls + os.Mm_mem.Store.munmap_calls
            in
            [
              wname; cname;
              Render.fmt_throughput m.Metrics.throughput;
              per1k os.Mm_mem.Store.mmap_calls m.Metrics.ops;
              per1k os.Mm_mem.Store.munmap_calls m.Metrics.ops;
              per1k syscalls m.Metrics.ops;
              per1k os.Mm_mem.Store.sb_reuses m.Metrics.ops;
              Render.fmt_bytes m.Metrics.space.Mm_mem.Space.mapped_peak;
            ])
          configs)
      workloads
  in
  {
    id = "ablation-sbcache";
    runtime = "simulated";
    title =
      "DESIGN.md §14 ablation: warm superblock cache (EMPTY superblocks \
       parked per size class instead of unmapped)";
    expectation =
      "The paper returns EMPTY superblocks to the OS unconditionally, so \
       churn phases pay a munmap per EMPTY transition (and an mmap + \
       free-list init to come back). Parking them on the lock-free \
       per-class cache collapses that OS traffic to the watermark \
       overflow residue — syscalls per 1k ops drop by an order of \
       magnitude on churn — while mapped peak stays within \
       sb_cache_depth superblocks per active size class of the \
       cache-off peak.";
    lines =
      Render.table
        ~header:
          [
            "benchmark"; "config"; "throughput"; "mmap/1k"; "munmap/1k";
            "syscalls/1k"; "reuse/1k"; "mapped peak";
          ]
        ~rows;
  }

let large_alloc_params = function
  | Quick -> W.Large_alloc.quick
  | Full -> { W.Large_alloc.default with W.Large_alloc.rounds = 20_000 }

(* Mixed small/large churn across every allocator: the workload the
   page-manager ablation below optimizes, measured first on the stock
   configurations. *)
let large_alloc mode seed =
  let wl inst ~threads =
    W.Large_alloc.run inst ~threads (large_alloc_params mode)
  in
  let rows =
    List.map
      (fun name ->
        let m = sim_point ~seed name wl ~threads:8 in
        let os = m.Metrics.os in
        [
          name;
          Render.fmt_throughput m.Metrics.throughput;
          per1k os.Mm_mem.Store.mmap_calls m.Metrics.ops;
          per1k os.Mm_mem.Store.munmap_calls m.Metrics.ops;
          Render.fmt_bytes m.Metrics.space.Mm_mem.Space.mapped_peak;
        ])
      allocators
  in
  {
    id = "large-alloc";
    runtime = "simulated";
    title =
      "Extension workload: mixed sizes straddling the large-allocation \
       threshold (simulated, 8 threads)";
    expectation =
      "Not in the paper: every allocator serves above-threshold blocks \
       with one mmap/munmap per block (Fig. 4 lines 2-3), so OS traffic, \
       not heap contention, dominates — the motivation for the \
       DESIGN.md §15 page manager.";
    lines =
      Render.table
        ~header:[ "allocator"; "throughput"; "mmap/1k"; "munmap/1k";
                  "mapped peak" ]
        ~rows;
  }

let ablation_pages mode seed =
  let workloads =
    [
      ("large-alloc x8",
       fun inst ~threads ->
         W.Large_alloc.run inst ~threads (large_alloc_params mode));
      ("threadtest x8",
       fun inst ~threads ->
         W.Threadtest.run inst ~threads (threadtest_params mode));
    ]
  in
  let configs =
    [
      ("pages off (paper)", Cfg.make ());
      ("pages on, 64p spans", Cfg.make ~page_manager:true ());
      ("pages on, 256p spans", Cfg.make ~page_manager:true ~span_pages:256 ());
    ]
  in
  let rows =
    List.concat_map
      (fun (wname, wl) ->
        List.map
          (fun (cname, cfg) ->
            let m = sim_point ~cfg ~seed "new" wl ~threads:8 in
            let os = m.Metrics.os in
            let frag =
              frag_pct
                {
                  zero_census with
                  census_pages_requested = os.Mm_mem.Store.pages_requested;
                  census_pages_granted = os.Mm_mem.Store.pages_granted;
                }
            in
            [
              wname; cname;
              Render.fmt_throughput m.Metrics.throughput;
              per1k os.Mm_mem.Store.large_mmaps m.Metrics.ops;
              per1k os.Mm_mem.Store.large_munmaps m.Metrics.ops;
              per1k
                (os.Mm_mem.Store.mmap_calls + os.Mm_mem.Store.munmap_calls)
                m.Metrics.ops;
              frag;
              Render.fmt_bytes m.Metrics.space.Mm_mem.Space.mapped_peak;
            ])
          configs)
      workloads
  in
  {
    id = "ablation-pages";
    runtime = "simulated";
    title =
      "DESIGN.md §15 ablation: span reservoir + lock-free buddy vs \
       one-mmap-per-request large blocks and superblocks";
    expectation =
      "The paper direct-maps everything above the size-class threshold, \
       so large-alloc pays ~one mmap+munmap per large block. Routing \
       those blocks (and superblock carving) through reserved spans \
       collapses large-path syscalls to the span-reservation residue — \
       well over 5x fewer large mmaps — at the cost of power-of-two \
       internal fragmentation inside spans and span-granular mapped \
       peak; threadtest shows the superblock-carving path is not \
       slower.";
    lines =
      Render.table
        ~header:
          [
            "benchmark"; "config"; "throughput"; "lg mmap/1k";
            "lg munmap/1k"; "syscalls/1k"; "frag"; "mapped peak";
          ]
        ~rows;
  }

(* ------------------------------------------------------------------ *)
(* Preemption tolerance: oversubscribe the simulated CPUs. *)

let preempt mode seed =
  let cpus = 4 in
  let wl inst ~threads =
    W.Threadtest.run inst ~threads (threadtest_params mode)
  in
  let rows =
    List.map
      (fun name ->
        let fit = sim_point ~cpus ~seed name wl ~threads:cpus in
        let over = sim_point ~cpus ~seed name wl ~threads:(2 * cpus) in
        (* Per-op efficiency: ops per virtual second; oversubscription
           doubles the work, so perfect preemption tolerance keeps
           throughput flat. *)
        [
          name;
          Render.fmt_throughput fit.Metrics.throughput;
          Render.fmt_throughput over.Metrics.throughput;
          Render.fmt_speedup
            (over.Metrics.throughput /. fit.Metrics.throughput);
        ])
      allocators
  in
  {
    id = "preempt";
    runtime = "simulated";
    title =
      "§1 preemption-tolerance: threads = 2x CPUs (simulated, 4 CPUs, \
       preemptive quanta)";
    expectation =
      "Lock-based allocators suffer when a lock holder is preempted \
       (spinners burn their quanta); the lock-free allocator's \
       throughput is unaffected by oversubscription.";
    lines =
      Render.table
        ~header:[ "allocator"; "thr t=cpus"; "thr t=2xcpus"; "ratio" ]
        ~rows;
  }

(* ------------------------------------------------------------------ *)
(* Extension workloads beyond the paper's six: realloc churn (shbench
   style) and replay of a generated cross-thread allocation trace. *)

let extra_workloads mode seed =
  let shbench_params =
    match mode with
    | Quick -> { W.Shbench.quick with W.Shbench.rounds = 1_500 }
    | Full -> { W.Shbench.quick with W.Shbench.rounds = 15_000 }
  in
  let trace =
    W.Trace.generate ~seed ~threads:8
      ~ops:(match mode with Quick -> 4_000 | Full -> 40_000)
      ()
  in
  let rows =
    List.map
      (fun name ->
        let sh =
          sim_point ~seed name
            (fun inst ~threads -> W.Shbench.run inst ~threads shbench_params)
            ~threads:8
        in
        let tr =
          sim_point ~seed name
            (fun inst ~threads:_ -> W.Trace.run inst trace)
            ~threads:8
        in
        [
          name;
          Render.fmt_throughput sh.Metrics.throughput;
          Render.fmt_throughput tr.Metrics.throughput;
          Render.fmt_bytes tr.Metrics.space.Mm_mem.Space.mapped_peak;
        ])
      allocators
  in
  {
    id = "extra-workloads";
    runtime = "simulated";
    title =
      "Extension workloads: shbench-style realloc churn and cross-thread \
       trace replay (simulated, 8 threads)";
    expectation =
      "Not in the paper; the lock-free allocator's advantage persists on \
       realloc-heavy and trace-driven mixes, with bounded space.";
    lines =
      Render.table
        ~header:[ "allocator"; "shbench thr"; "trace thr"; "trace peak" ]
        ~rows;
  }

(* ------------------------------------------------------------------ *)
(* Tail latency under contention: the robustness story behind the
   scalability curves. Lock-based allocators queue whole operations
   behind a held lock (and behind preempted holders), fattening the
   tail; lock-free operations interleave at CAS granularity. *)

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0
  else sorted.(min (n - 1) (int_of_float (p *. float_of_int n)))

let tail_latency mode seed =
  let threads = 16 in
  let pairs = match mode with Quick -> 400 | Full -> 4_000 in
  let rows =
    List.map
      (fun name ->
        let sim = make_sim ~seed () in
        let rt = Rt.simulated sim in
        let inst = Allocators.make name rt Cfg.default in
        let samples = Array.make (threads * pairs) 0 in
        let body tid =
          for i = 0 to pairs - 1 do
            let t0 = Sim.now_cycles () in
            let a = Mm_mem.Alloc_intf.instance_malloc inst 8 in
            Mm_mem.Alloc_intf.instance_free inst a;
            samples.((tid * pairs) + i) <- Sim.now_cycles () - t0
          done
        in
        ignore (Sim.run sim (Array.make threads (fun i -> body i)));
        Array.sort compare samples;
        [
          name;
          string_of_int (percentile samples 0.50);
          string_of_int (percentile samples 0.90);
          string_of_int (percentile samples 0.99);
          string_of_int samples.(Array.length samples - 1);
        ])
      allocators
  in
  {
    id = "tail-latency";
    runtime = "simulated";
    title =
      "Robustness: malloc+free pair latency distribution under full \
       contention (simulated cycles, 16 threads)";
    expectation =
      "Lock-free operations interleave at CAS granularity, so the p99/max \
       tail stays near the median; lock-based allocators serialize whole \
       operations and queue behind preempted holders, fattening the tail \
       by orders of magnitude.";
    lines =
      Render.table
        ~header:[ "allocator"; "p50"; "p90"; "p99"; "max" ]
        ~rows;
  }

(* Where does interference land inside the lock-free allocator? *)
let contention_sites mode seed =
  let workloads =
    [
      ("threadtest x16",
       fun inst ~threads -> W.Threadtest.run inst ~threads (threadtest_params mode));
      ("producer-consumer x16",
       fun inst ~threads ->
         W.Producer_consumer.run inst ~threads (pc_params ~work:500 mode));
    ]
  in
  let rows =
    (* Counters come from the observability layer (lib/obs), the same
       computation `bin/trace.exe report` performs — not from a bespoke
       census. Tracing is host-side only, so these numbers are identical
       to an untraced run's striped retry counters (tested in
       test_obs). *)
    List.concat_map
      (fun (wname, wl) ->
        let c =
          Traced.capture ~nheaps:1 ~name:wname ~threads:16 ~seed wl
        in
        note_census "new" c.Traced.metric;
        let agg = Option.get c.Traced.metric.Metrics.obs in
        let m = c.Traced.trace.Mm_obs.Trace_file.meta in
        let ops = m.Mm_obs.Trace_file.mallocs + m.Mm_obs.Trace_file.frees in
        List.map
          (fun (site, n) ->
            [
              wname; site;
              string_of_int n;
              Printf.sprintf "%.2f" (1000.0 *. float_of_int n /. float_of_int ops);
            ])
          (Traced.core_retry_counts agg))
      workloads
  in
  {
    id = "contention-sites";
    runtime = "simulated";
    title =
      "§4.2.3: failed-CAS counts per contention site (lock-free \
       allocator, ONE shared heap, 16 threads)";
    expectation =
      "Interference concentrates on the shared Active word and the \
       anchors of hot superblocks; even under maximal contention the \
       retry rate stays a small fraction of operations, because \
       read-modify-write segments are short and successful operations \
       overlap in time.";
    lines =
      Render.table
        ~header:[ "workload"; "site"; "failed CAS"; "per 1k ops" ]
        ~rows;
  }

(* ------------------------------------------------------------------ *)
(* Availability: kill threads mid-operation. *)

let kill mode seed =
  ignore mode;
  let cpus = 4 and threads = 4 in
  let pairs = 2_000 in
  let try_alloc name ~kill_label =
    let killed = ref 0 in
    let on_label ~tid l =
      if l = kill_label && tid = 1 && !killed = 0 then begin
        incr killed;
        Sim.Kill
      end
      else Sim.Continue
    in
    let sim =
      Sim.create ~cpus ~seed ~max_cycles:80_000_000 ~on_label ()
    in
    let rt = Rt.simulated sim in
    (* Kill injection is a controlled-schedule facility: only runtimes
       that advertise the capability may run this experiment. *)
    if not (Rt.controllable rt) then "SKIPPED: runtime not controllable"
    else
    (* One shared heap: every thread depends on the same structures, so a
       dead lock holder blocks all lock-based survivors. *)
    let inst = Allocators.make name rt (Cfg.make ~nheaps:1 ()) in
    let body _ =
      for _ = 1 to pairs do
        let a = Mm_mem.Alloc_intf.instance_malloc inst 8 in
        Mm_mem.Alloc_intf.instance_free inst a
      done
    in
    match Sim.run sim (Array.make threads (fun i -> body i)) with
    | r ->
        Printf.sprintf "survivors completed (%d killed, %d ops done)"
          r.Sim.counters.Sim.killed
          ((threads - 1) * pairs)
    | exception Sim.Progress_timeout _ -> "LIVELOCK: survivors never finish"
    | exception Sim.Deadlock _ -> "DEADLOCK"
  in
  let rows =
    [
      [ "new"; Mm_core.Labels.ma_reserved; try_alloc "new" ~kill_label:Mm_core.Labels.ma_reserved ];
      [ "new"; Mm_core.Labels.free_cas; try_alloc "new" ~kill_label:Mm_core.Labels.free_cas ];
      [ "libc"; Mm_baselines.Locks.holder_label;
        try_alloc "libc" ~kill_label:Mm_baselines.Locks.holder_label ];
      [ "hoard"; Mm_baselines.Locks.holder_label;
        try_alloc "hoard" ~kill_label:Mm_baselines.Locks.holder_label ];
    ]
  in
  {
    id = "kill";
    runtime = "simulated";
    title = "§1 availability: kill a thread mid-malloc/free (simulated)";
    expectation =
      "Paper: a lock-free allocator guarantees progress even if threads \
       are killed arbitrarily; lock-based allocators deadlock when a \
       lock holder dies.";
    lines = Render.table ~header:[ "allocator"; "killed at"; "outcome" ] ~rows;
  }

(* ------------------------------------------------------------------ *)
(* Catalogue. *)

let fig id letter ~title ~expectation ~workload =
  (id, fun mode seed -> figure ~id ~title:(Printf.sprintf "Fig. 8(%s): %s" letter title) ~expectation ~workload:(workload mode) mode seed)

let experiments : (string * (mode -> int -> outcome)) list =
  [
    ("table1", table1);
    ("latency", latency);
    fig "fig8a" "a"
      ~title:"Linux scalability — speedup over contention-free libc"
      ~expectation:
        "Paper: New, Ptmalloc, Hoard scale ~linearly (slopes ordered by \
         their latency, New steepest); libc drops to 0.4 at t=2 and keeps \
         declining (331x gap to New at 16)."
      ~workload:(fun mode inst ~threads ->
        W.Linux_scalability.run inst ~threads (linux_params mode));
    fig "fig8b" "b" ~title:"Threadtest"
      ~expectation:
        "Paper: New and Hoard scale in proportion to their contention-free \
         latencies; Ptmalloc scales at a lower rate under high contention; \
         libc flat."
      ~workload:(fun mode inst ~threads ->
        W.Threadtest.run inst ~threads (threadtest_params mode));
    fig "fig8c" "c" ~title:"Active false sharing"
      ~expectation:
        "Paper: New and Hoard avoid inducing false sharing and scale; \
         Ptmalloc and libc degrade."
      ~workload:(fun mode inst ~threads ->
        W.False_sharing.run inst ~threads (active_false_params mode));
    fig "fig8d" "d" ~title:"Passive false sharing"
      ~expectation:
        "Paper: same ordering as Active-false; blocks handed out by one \
         thread keep hurting Ptmalloc and libc after being freed."
      ~workload:(fun mode inst ~threads ->
        W.False_sharing.run inst ~threads (passive_false_params mode));
    fig "fig8e" "e" ~title:"Larson"
      ~expectation:
        "Paper: New and Hoard scale; Ptmalloc does not (threads hop \
         between arenas, 22 arenas for 16 threads); New highest."
      ~workload:(fun mode inst ~threads ->
        W.Larson.run inst ~threads (larson_params mode));
    fig "fig8f" "f" ~title:"Producer-consumer, work=500"
      ~expectation:
        "Paper: New scales up to the application's knee (~13); Hoard \
         suffers contention on the producer's heap; Ptmalloc in between."
      ~workload:(fun mode inst ~threads ->
        W.Producer_consumer.run inst ~threads (pc_params ~work:500 mode));
    fig "fig8g" "g" ~title:"Producer-consumer, work=750"
      ~expectation:"Paper: New scales ~perfectly; gap to Hoard persists."
      ~workload:(fun mode inst ~threads ->
        W.Producer_consumer.run inst ~threads (pc_params ~work:750 mode));
    fig "fig8h" "h" ~title:"Producer-consumer, work=1000"
      ~expectation:
        "Paper: the benchmark is less allocator-bound; all allocators \
         closer, New still >= others."
      ~workload:(fun mode inst ~threads ->
        W.Producer_consumer.run inst ~threads (pc_params ~work:1000 mode));
    ("space", space);
    ("uniproc", uniproc);
    ("ablation-partial", ablation_partial);
    ("ablation-desc", ablation_desc);
    ("ablation-reclaim", ablation_reclaim);
    ("ablation-credits", ablation_credits);
    ("ablation-locks", ablation_locks);
    ("ablation-hyper", ablation_hyper);
    ("ablation-sbcache", ablation_sbcache);
    ("ablation-ownerbias", ablation_ownerbias);
    ("large-alloc", large_alloc);
    ("ablation-pages", ablation_pages);
    ("preempt", preempt);
    ("extra-workloads", extra_workloads);
    ("tail-latency", tail_latency);
    ("contention-sites", contention_sites);
    ("kill", kill);
  ]

let catalogue =
  List.map
    (fun (id, f) ->
      (* Titles without running: re-derive cheaply for the figures. *)
      ignore f;
      (id, id))
    experiments

(* Reset the census, run the experiment, append the census line to its
   table and remember the raw counters for the MM_BENCH_JSON payload. *)
let with_census id f mode seed =
  census := zero_census;
  let o = f mode seed in
  Hashtbl.replace censuses id (census_pairs !census);
  { o with lines = o.lines @ [ census_line !census ] }

let run id ~mode ~seed =
  match List.assoc_opt id experiments with
  | Some f -> with_census id f mode seed
  | None -> invalid_arg ("Experiments.run: unknown experiment " ^ id)

let run_all ~mode ~seed =
  List.map (fun (id, f) -> with_census id f mode seed) experiments

let print_outcome fmt o =
  Format.fprintf fmt "== %s: %s [%s runtime]@." o.id o.title o.runtime;
  Format.fprintf fmt "   paper: %s@." o.expectation;
  List.iter (fun l -> Format.fprintf fmt "   %s@." l) o.lines;
  Format.fprintf fmt "@."
