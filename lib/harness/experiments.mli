(** The experiment catalogue: one entry per table/figure of the paper's
    evaluation (§4) plus the ablations DESIGN.md §4 calls out. Each
    experiment runs the relevant workloads over the relevant allocators —
    scalability figures on the 16-CPU simulated machine, latency tables on
    the real runtime — and renders a paper-style table together with the
    paper's qualitative expectation, so EXPERIMENTS.md can record
    paper-vs-measured side by side. *)

type mode = Quick | Full

type outcome = {
  id : string;
  title : string;
  runtime : string;
      (** ["real"] or ["simulated"] — which runtime produced the numbers.
          Scalability figures use real domains whenever the host has more
          than one CPU and fall back to the 16-CPU simulation otherwise;
          the label keeps titles and the JSON payload honest either way. *)
  expectation : string;  (** what the paper reports, in one sentence *)
  lines : string list;  (** rendered result table *)
}

val catalogue : (string * string) list
(** (id, title) of every experiment, in DESIGN.md order. *)

val run : string -> mode:mode -> seed:int -> outcome
(** Raises [Invalid_argument] on an unknown id. Every outcome's table
    ends with an OS-traffic census line for the lock-free allocator
    (simulated mmap/munmap syscalls and superblock pool traffic per 1k
    workload ops, summed over the experiment's "new" data points). *)

val os_census : string -> (string * int) list
(** Raw OS-census counters ([ops]/[mmap_calls]/[munmap_calls]/
    [sb_allocs]/[sb_reuses]) recorded by the latest [run] of the given
    experiment id; [[]] if it has not run. Serialized per experiment
    into the MM_BENCH_JSON payload by [bench/main.ml]. *)

val run_all : mode:mode -> seed:int -> outcome list

val print_outcome : Format.formatter -> outcome -> unit
