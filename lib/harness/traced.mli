(** Traced workload runs: a workload executed under an [Mm_obs] tracer
    on the deterministic simulator, plus the allocator-specific reading
    of the resulting counters. Shared by [bin/trace.exe] and the
    [contention-sites] experiment, so the EXPERIMENTS.md census and the
    CLI report are the same computation. *)

val threadtest_quick : Mm_workloads.Threadtest.params
(** The quick-mode parameters shared with [Experiments] (so the CLI
    report and the EXPERIMENTS.md census describe the same run). *)

val pc_quick : work:int -> Mm_workloads.Producer_consumer.params

type capture = {
  trace : Mm_obs.Trace_file.t;
  metric : Mm_workloads.Metrics.t;  (** with [obs] populated *)
  retry_counts : (string * int) list;
      (** the lock-free allocator's own striped retry census
          ([Lf_alloc.retry_counts]); [[]] for other allocators. Obs
          must agree with it — tested in [test_obs]. *)
}

val capture :
  ?cpus:int ->
  ?nheaps:int ->
  ?capacity:int ->
  ?allocator:string ->
  ?sb_cache:int ->
  ?page_manager:bool ->
  ?desc_scan_threshold:int ->
  name:string ->
  threads:int ->
  seed:int ->
  (Mm_mem.Alloc_intf.instance -> threads:int -> Mm_workloads.Metrics.t) ->
  capture
(** Fresh simulator (16 CPUs, the experiments' cycle budget), fresh
    heap of [allocator] (default ["new"]) with [nheaps] processor heaps
    (default = [cpus]), tracer installed around the workload body.
    Allocator ["new-reuse"] is the paper allocator over the
    reuse-in-place descriptor pool (DESIGN.md §17), captured with the
    same typed handle as ["new"] so its striped retry census (incl.
    [desc.spill]/[desc.steal]) is reported; ["new-tagged"] is likewise
    the IBM-tag descriptor-freelist ablation, and ["new-ob"] the
    owner-biased private/public free-list mode (DESIGN.md §19, census
    incl. [pub.push]/[pub.claim]).
    [sb_cache] (default 0 = off, the paper-verbatim path) sets the
    warm-superblock cache depth per size class (DESIGN.md §14);
    [page_manager] (default [false] = off, likewise paper-verbatim)
    routes large blocks and superblock carving through the [lib/pages]
    span reservoir (DESIGN.md §15). [desc_scan_threshold] (default 0 =
    the hazard-pointer module's own [2 * max_threads * k] amortised
    default) lowers the hazard pool's scan trigger so quick-scale runs
    exhibit the scan cost the reuse-in-place pool eliminates — only the
    [Hazard] descriptor pool reads it. Tracing is host-side only: the
    simulated run is bit-identical to an untraced one. *)

(** {2 The paper's §4.2.3 contention sites}

    Label groups from PR 1's CAS-site audit, derived from the label
    registries ([Mm_core.Labels.census_sites] then
    [Mm_pages.Pg_labels.census_sites]): one site may be CASed from
    several figure lines, hence several labels. *)

val core_sites : (string * string list) list
val core_retry_counts : Mm_obs.Agg.t -> (string * int) list

val trace_mmaps : Mm_obs.Trace_file.t -> int
(** Simulated mmap calls recorded in the trace (equals the store's
    [mmap_calls]; pool and warm-cache reuses emit no event). Used by the
    [bin/trace.exe report --max-mmap-per-1k] CI gate. *)

val trace_large_mmaps : Mm_obs.Trace_file.t -> int
(** Large-path mmap calls only (the ["store.mmap.large"] site — requests
    above the size-class threshold going straight to the OS). Used by
    the [bin/trace.exe report --max-large-mmap-per-1k] CI gate; the
    page manager (DESIGN.md §15) exists to collapse this number. *)

val trace_failed_cas : Mm_obs.Trace_file.t -> sites:string list -> int
(** Summed failed-CAS count of the named contention-census sites
    (names from [core_sites]; unknown names raise [Invalid_argument]).
    Used by the [bin/trace.exe report --max-failed-cas-per-1k] CI gate;
    the owner-biased free-list mode (DESIGN.md §19) exists to collapse
    the [anchor.pop]+[anchor.free] sum. *)

val trace_hp_scans : Mm_obs.Trace_file.t -> int
(** Hazard-pointer scans recorded in the trace. Used by the
    [bin/trace.exe report --max-hp-scan] CI gate; the reuse-in-place
    descriptor pool (DESIGN.md §17) exists to make this number zero. *)

(** {2 Named workloads (quick parameters) for the CLI} *)

val workloads :
  (string
  * (Mm_mem.Alloc_intf.instance -> threads:int -> Mm_workloads.Metrics.t))
  list

val find_workload :
  string ->
  (Mm_mem.Alloc_intf.instance -> threads:int -> Mm_workloads.Metrics.t)
  option

val report_lines : Mm_obs.Trace_file.t -> string list
(** The [bin/trace.exe report] rendering: run header, per-site retry
    table (retries per 1k allocator ops when op counts are available),
    per-label CAS table, transition census, scan/mmap counts. *)

val report_json : Mm_obs.Trace_file.t -> Mm_obs.Json.t
(** Machine-readable form of the same report (the CI artifact). *)
