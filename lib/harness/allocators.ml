let names = [ "new"; "new-cached"; "hoard"; "ptmalloc"; "libc"; "bw" ]

(* One allocator stack per runtime backend, specialized at compile time
   (DESIGN.md §18). [make] below picks the instantiation from the
   value-level runtime handle — the only dispatch left, paid once per
   heap creation instead of once per operation. Applicative functor
   semantics keep [Stack(Mm_runtime.Sim_rt).Lf.t] equal to
   [Mm_core.Lf_alloc.Make(Mm_runtime.Sim_rt).t], so typed clients
   (lib/check, Traced) interoperate with instances built here. *)
module Stack (Rt : Mm_runtime.Runtime_intf.S) = struct
  module Lf = Mm_core.Lf_alloc.Make (Rt)
  module Bc = Mm_core.Block_cache.Make (Rt)
  module Bw = Mm_baselines.Bw_alloc.Make (Rt)
  module Hoard = Mm_baselines.Hoard_alloc.Make (Rt)
  module Ptmalloc = Mm_baselines.Ptmalloc_alloc.Make (Rt)
  module Libc = Mm_baselines.Libc_alloc.Make (Rt)

  let make name vrt h cfg =
    match name with
    | "new" -> Lf.instance vrt (Lf.create h cfg)
    | "new-reuse" ->
        (* The paper allocator over the reuse-in-place descriptor pool
           (DESIGN.md §17); the name forces Reuse whatever the config
           says, so "new" and "new-reuse" differ in exactly that one
           field. Not in [names]: it is an ablation variant (experiment
           ablation-reclaim), not a comparison allocator. *)
        Lf.instance vrt
          (Lf.create h
             { cfg with Mm_mem.Alloc_config.desc_pool = Mm_mem.Alloc_config.Reuse })
    | "new-ob" ->
        (* The paper allocator with owner-biased private/public free
           lists (DESIGN.md §19); the name forces the mode whatever the
           config says, so "new" and "new-ob" differ in exactly that one
           field. Not in [names]: it is an ablation variant (experiment
           ablation-ownerbias), not a comparison allocator. *)
        Lf.instance vrt
          (Lf.create h
             {
               cfg with
               Mm_mem.Alloc_config.free_lists = `Owner_biased;
             })
    | "bw" -> Bw.instance vrt (Bw.create h cfg)
    | "new-cached" ->
        (* The paper allocator behind the per-thread block-cache frontend;
           the name forces the cache on whatever the config says, so
           "new" and "new-cached" differ in exactly that one bit. *)
        Bc.instance vrt
          (Bc.create h { cfg with Mm_mem.Alloc_config.cache = true })
    | "hoard" -> Hoard.instance vrt (Hoard.create h cfg)
    | "ptmalloc" -> Ptmalloc.instance vrt (Ptmalloc.create h cfg)
    | "libc" -> Libc.instance vrt (Libc.create h cfg)
    | other -> invalid_arg ("Allocators.make: unknown allocator " ^ other)
end

module Real_stack = Stack (Mm_runtime.Real_rt)
module Sim_stack = Stack (Mm_runtime.Sim_rt)

let make name rt cfg =
  match Mm_runtime.Rt.sim rt with
  | None -> Real_stack.make name rt () cfg
  | Some s -> Sim_stack.make name rt s cfg
