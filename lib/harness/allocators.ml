open Mm_mem.Alloc_intf

let names = [ "new"; "new-cached"; "hoard"; "ptmalloc"; "libc"; "bw" ]

let make name rt cfg =
  match name with
  | "new" -> Inst ((module Mm_core.Lf_alloc), Mm_core.Lf_alloc.create rt cfg)
  | "new-reuse" ->
      (* The paper allocator over the reuse-in-place descriptor pool
         (DESIGN.md §17); the name forces Reuse whatever the config
         says, so "new" and "new-reuse" differ in exactly that one
         field. Not in [names]: it is an ablation variant (experiment
         ablation-reclaim), not a comparison allocator. *)
      Inst
        ( (module Mm_core.Lf_alloc),
          Mm_core.Lf_alloc.create rt
            { cfg with Mm_mem.Alloc_config.desc_pool = Mm_mem.Alloc_config.Reuse }
        )
  | "bw" ->
      Inst
        ( (module Mm_baselines.Bw_alloc),
          Mm_baselines.Bw_alloc.create rt cfg )
  | "new-cached" ->
      (* The paper allocator behind the per-thread block-cache frontend;
         the name forces the cache on whatever the config says, so
         "new" and "new-cached" differ in exactly that one bit. *)
      Inst
        ( (module Mm_core.Block_cache),
          Mm_core.Block_cache.create rt
            { cfg with Mm_mem.Alloc_config.cache = true } )
  | "hoard" ->
      Inst
        ( (module Mm_baselines.Hoard_alloc),
          Mm_baselines.Hoard_alloc.create rt cfg )
  | "ptmalloc" ->
      Inst
        ( (module Mm_baselines.Ptmalloc_alloc),
          Mm_baselines.Ptmalloc_alloc.create rt cfg )
  | "libc" ->
      Inst
        ( (module Mm_baselines.Libc_alloc),
          Mm_baselines.Libc_alloc.create rt cfg )
  | other -> invalid_arg ("Allocators.make: unknown allocator " ^ other)
