(** Registry of the allocators under comparison: the paper's four plus
    the block-cache frontend extension and the Blelloch–Wei
    constant-time baseline. *)

val names : string list
(** ["new"; "new-cached"; "hoard"; "ptmalloc"; "libc"; "bw"] — "new" is
    the paper's lock-free allocator; "new-cached" is the same allocator
    behind the per-thread block-cache frontend ([Mm_core.Block_cache],
    forced on regardless of the config's [cache] bit); "bw" is the
    Blelloch–Wei-style constant-time fixed-size allocator
    ([Mm_baselines.Bw_alloc]). [make] additionally accepts "new-reuse"
    (the paper allocator with [desc_pool = Reuse] forced on —
    DESIGN.md §17), which is not a comparison column but the
    ablation-reclaim variant. *)

val make :
  string -> Mm_runtime.Rt.t -> Mm_mem.Alloc_config.t ->
  Mm_mem.Alloc_intf.instance
(** Fresh heap of the named allocator. Raises [Invalid_argument] on an
    unknown name. *)
