(** Registry of the allocators under comparison: the paper's four plus
    the block-cache frontend extension. *)

val names : string list
(** ["new"; "new-cached"; "hoard"; "ptmalloc"; "libc"] — "new" is the
    paper's lock-free allocator; "new-cached" is the same allocator
    behind the per-thread block-cache frontend
    ([Mm_core.Block_cache], forced on regardless of the config's
    [cache] bit). *)

val make :
  string -> Mm_runtime.Rt.t -> Mm_mem.Alloc_config.t ->
  Mm_mem.Alloc_intf.instance
(** Fresh heap of the named allocator. Raises [Invalid_argument] on an
    unknown name. *)
