open Mm_runtime
module Cfg = Mm_mem.Alloc_config
module W = Mm_workloads
module Lf = Mm_core.Lf_alloc.Make (Sim_rt)
module Bc = Mm_core.Block_cache.Make (Sim_rt)
module L = Mm_core.Labels
module Pg = Mm_pages.Pg_labels
module Obs_agg = Mm_obs.Agg
module Trace_file = Mm_obs.Trace_file
module Json = Mm_obs.Json

(* Same machine shape and cycle budget as Experiments (which shares
   these workload parameters via the definitions below). *)
let sim_cpus = 16
let sim_budget = 100_000_000_000

(* Quick-mode parameter sets shared with Experiments, so a trace report
   and the EXPERIMENTS.md contention-sites census describe the same
   runs. *)
let threadtest_quick = { W.Threadtest.quick with iterations = 4; blocks = 500 }

let pc_quick ~work =
  {
    (W.Producer_consumer.with_work W.Producer_consumer.quick work) with
    W.Producer_consumer.tasks = 300;
  }

type capture = {
  trace : Trace_file.t;
  metric : W.Metrics.t;
  retry_counts : (string * int) list;
}

let capture ?(cpus = sim_cpus) ?nheaps ?(capacity = 1 lsl 16)
    ?(allocator = "new") ?(sb_cache = 0) ?(page_manager = false)
    ?(desc_scan_threshold = 0) ~name ~threads ~seed wl =
  let nheaps = Option.value nheaps ~default:cpus in
  let sim = Sim.create ~cpus ~seed ~max_cycles:sim_budget () in
  let rt = Rt.simulated sim in
  let cfg =
    Cfg.make ~nheaps ~sb_cache_depth:sb_cache ~page_manager
      ~desc_scan_threshold ()
  in
  (* Keep a typed handle on the lock-free allocator so the capture can
     report its op counts and its independent striped retry census. For
     "new-cached" the retry census comes from the wrapped backend while
     the op counts are the frontend's (what the application issued), so
     per-1k-op retry rates show the cache absorbing CAS traffic. *)
  let lf, bc, inst =
    match allocator with
    | "new" ->
        let t = Lf.create sim cfg in
        (Some t, None, Lf.instance rt t)
    | "new-reuse" ->
        (* The paper allocator over the reuse-in-place descriptor pool
           (DESIGN.md §17) — same typed handle as "new" so the striped
           retry census (incl. desc.spill/desc.steal) is reported. *)
        let t = Lf.create sim { cfg with Cfg.desc_pool = Cfg.Reuse } in
        (Some t, None, Lf.instance rt t)
    | "new-ob" ->
        (* Owner-biased private/public free lists (DESIGN.md §19) —
           same typed handle as "new" so the striped retry census
           (incl. pub.push/pub.claim) is reported. *)
        let t = Lf.create sim { cfg with Cfg.free_lists = `Owner_biased } in
        (Some t, None, Lf.instance rt t)
    | "new-tagged" ->
        (* The IBM-tag descriptor-freelist ablation (the paper's Fig. 7
           alternative), traced for the ablation-reclaim comparison. *)
        let t = Lf.create sim { cfg with Cfg.desc_pool = Cfg.Tagged } in
        (Some t, None, Lf.instance rt t)
    | "new-cached" ->
        let t = Bc.create sim { cfg with Cfg.cache = true } in
        (Some (Bc.backend t), Some t, Bc.instance rt t)
    | _ -> (None, None, Allocators.make allocator rt cfg)
  in
  let metric, tracer =
    Mm_obs.Tracer.with_tracing ~capacity (fun () -> wl inst ~threads)
  in
  let events = Mm_obs.Tracer.events tracer in
  let dropped = Mm_obs.Tracer.dropped tracer in
  let agg = Obs_agg.of_events ~dropped events in
  let mallocs, frees =
    match (bc, lf) with
    | Some t, _ -> Bc.op_counts t
    | None, Some t -> Lf.op_counts t
    | None, None -> (0, 0)
  in
  let meta =
    {
      Trace_file.workload = name;
      allocator;
      threads;
      seed;
      nheaps;
      cpus;
      ops = metric.W.Metrics.ops;
      mallocs;
      frees;
      capacity;
    }
  in
  {
    trace = { Trace_file.meta; dropped; events };
    metric = { metric with W.Metrics.obs = Some agg };
    retry_counts =
      (match lf with Some t -> Lf.retry_counts t | None -> []);
  }

(* ------------------------------------------------------------------ *)
(* §4.2.3 contention sites: the label groups of PR 1's CAS-site audit,
   taken straight from the label registries so the trace census, the
   allocator's striped [Lf_alloc.retry_counts] and the EXPERIMENTS.md
   tables can never list different rows. A site may be CASed from
   several figure lines (the Active word from MallocFromActive's
   reserve and MallocFromPartial's install; the anchor pop from both
   malloc paths), hence label {e groups}. *)

let core_sites = L.census_sites @ Pg.census_sites

let core_retry_counts agg =
  List.map (fun (site, labels) -> (site, Obs_agg.retries agg ~labels)) core_sites

(* Simulated mmap calls recorded in a trace (one Mmap event per real
   mapping; superblock-pool and warm-cache reuses emit none), so the CI
   mmap gate works on recorded traces as well as fresh runs. *)
let trace_mmaps (tf : Trace_file.t) =
  let agg = Trace_file.agg tf in
  List.fold_left
    (fun n (s : Obs_agg.site) -> n + s.Obs_agg.mmaps)
    0 agg.Obs_agg.sites

(* Large-path mappings only (site "store.mmap.large" — Fig. 4 lines 2-3
   going straight to the OS). The page manager exists to make this
   number collapse; the CI gate bounds it per 1k allocator ops. *)
let trace_large_mmaps (tf : Trace_file.t) =
  let agg = Trace_file.agg tf in
  match Obs_agg.site agg "store.mmap.large" with
  | Some s -> s.Obs_agg.mmaps
  | None -> 0

(* Summed failed-CAS count of named contention-census sites. Unknown
   site names are a caller error (the CLI validates against
   [core_sites] before calling), so raise rather than return 0 — a
   typo'd gate that silently measures nothing is worse than no gate. *)
let trace_failed_cas (tf : Trace_file.t) ~sites =
  let counts = core_retry_counts (Trace_file.agg tf) in
  List.fold_left
    (fun n site ->
      match List.assoc_opt site counts with
      | Some c -> n + c
      | None -> invalid_arg ("trace_failed_cas: unknown census site " ^ site))
    0 sites

(* Hazard-pointer scans recorded in a trace. The reuse-in-place
   descriptor pool (DESIGN.md §17) exists to make this number zero; the
   CI gate asserts exactly that on the traced threadtest. *)
let trace_hp_scans (tf : Trace_file.t) =
  let agg = Trace_file.agg tf in
  List.fold_left
    (fun n (s : Obs_agg.site) -> n + s.Obs_agg.hp_scans)
    0 agg.Obs_agg.sites

(* ------------------------------------------------------------------ *)
(* Named workloads (quick parameters) for bin/trace.exe. *)

let workloads =
  [
    ("threadtest", fun inst ~threads -> W.Threadtest.run inst ~threads threadtest_quick);
    ( "producer-consumer",
      fun inst ~threads -> W.Producer_consumer.run inst ~threads (pc_quick ~work:500) );
    ( "linux-scalability",
      fun inst ~threads ->
        W.Linux_scalability.run inst ~threads
          { W.Linux_scalability.quick with pairs = 2_000 } );
    ( "larson",
      fun inst ~threads ->
        W.Larson.run inst ~threads { W.Larson.quick with rounds = 2_000 } );
    ( "active-false",
      fun inst ~threads ->
        W.False_sharing.run inst ~threads
          { W.False_sharing.quick_active with pairs = 200 } );
    ( "passive-false",
      fun inst ~threads ->
        W.False_sharing.run inst ~threads
          { W.False_sharing.quick_active with pairs = 200; passive = true } );
    ("shbench", fun inst ~threads -> W.Shbench.run inst ~threads W.Shbench.quick);
    ( "large-alloc",
      fun inst ~threads -> W.Large_alloc.run inst ~threads W.Large_alloc.quick );
  ]

let find_workload name = List.assoc_opt name workloads

(* ------------------------------------------------------------------ *)
(* Report rendering. *)

let per1k n d =
  if d = 0 then "-"
  else Printf.sprintf "%.2f" (1000.0 *. float_of_int n /. float_of_int d)

let report_lines (tf : Trace_file.t) =
  let m = tf.Trace_file.meta in
  let agg = Trace_file.agg tf in
  let aops = m.mallocs + m.frees in
  let header =
    [
      Printf.sprintf
        "trace: %s x%d, allocator=%s, sim seed %d, %d cpus, %d heap%s"
        m.workload m.threads m.allocator m.seed m.cpus m.nheaps
        (if m.nheaps = 1 then "" else "s");
      Printf.sprintf
        "events: %d recorded, %d dropped (ring capacity %d/thread)"
        agg.Obs_agg.total tf.dropped m.capacity;
      Printf.sprintf
        "ops: %d workload units; allocator: %d mallocs + %d frees" m.ops
        m.mallocs m.frees;
    ]
  in
  let sites_tbl =
    if
      m.allocator <> "new" && m.allocator <> "new-reuse"
      && m.allocator <> "new-tagged" && m.allocator <> "new-cached"
      && m.allocator <> "new-ob"
    then []
    else
      "" :: "contention sites (failed CAS = one retry):"
      :: Render.table
           ~header:[ "site"; "failed CAS"; "per 1k ops" ]
           ~rows:
             (List.map
                (fun (site, n) -> [ site; string_of_int n; per1k n aops ])
                (core_retry_counts agg))
  in
  let label_rows =
    List.filter_map
      (fun (s : Obs_agg.site) ->
        if s.Obs_agg.cas_ok + s.Obs_agg.cas_fail = 0 then None
        else
          Some
            [
              s.Obs_agg.label;
              string_of_int s.Obs_agg.cas_ok;
              string_of_int s.Obs_agg.cas_fail;
              per1k s.Obs_agg.cas_fail aops;
            ])
      agg.Obs_agg.sites
  in
  let labels_tbl =
    if label_rows = [] then []
    else
      "" :: "per-label CAS census:"
      :: Render.table
           ~header:[ "label"; "CAS ok"; "CAS fail"; "fail per 1k ops" ]
           ~rows:label_rows
  in
  let tr_rows =
    List.filter_map
      (fun (s : Obs_agg.site) ->
        if s.Obs_agg.transitions = 0 then None
        else Some [ s.Obs_agg.label; string_of_int s.Obs_agg.transitions ])
      agg.Obs_agg.sites
  in
  let tr_tbl =
    if tr_rows = [] then []
    else
      "" :: "superblock transition census:"
      :: Render.table ~header:[ "transition"; "count" ] ~rows:tr_rows
  in
  let total kind =
    List.fold_left
      (fun n (s : Obs_agg.site) ->
        n
        +
        match kind with
        | `Hp -> s.Obs_agg.hp_scans
        | `Mmap -> s.Obs_agg.mmaps)
      0 agg.Obs_agg.sites
  in
  header @ sites_tbl @ labels_tbl @ tr_tbl
  @ [
      "";
      Printf.sprintf "hp scans: %d; mmap calls: %d" (total `Hp) (total `Mmap);
    ]

let report_json (tf : Trace_file.t) =
  let m = tf.Trace_file.meta in
  let agg = Trace_file.agg tf in
  let aops = m.mallocs + m.frees in
  let rate n =
    if aops = 0 then Json.Null
    else Json.Float (1000.0 *. float_of_int n /. float_of_int aops)
  in
  Json.Obj
    [
      ("workload", Json.Str m.workload);
      ("allocator", Json.Str m.allocator);
      ("threads", Json.Int m.threads);
      ("seed", Json.Int m.seed);
      ("nheaps", Json.Int m.nheaps);
      ("cpus", Json.Int m.cpus);
      ("ops", Json.Int m.ops);
      ("mallocs", Json.Int m.mallocs);
      ("frees", Json.Int m.frees);
      ("events", Json.Int agg.Obs_agg.total);
      ("dropped", Json.Int tf.dropped);
      ( "contention_sites",
        Json.Arr
          (List.map
             (fun (site, n) ->
               Json.Obj
                 [
                   ("site", Json.Str site);
                   ("failed_cas", Json.Int n);
                   ("per_1k_ops", rate n);
                 ])
             (core_retry_counts agg)) );
      ( "labels",
        Json.Arr
          (List.map
             (fun (s : Obs_agg.site) ->
               Json.Obj
                 [
                   ("label", Json.Str s.Obs_agg.label);
                   ("cas_ok", Json.Int s.Obs_agg.cas_ok);
                   ("cas_fail", Json.Int s.Obs_agg.cas_fail);
                   ("transitions", Json.Int s.Obs_agg.transitions);
                   ("hp_scans", Json.Int s.Obs_agg.hp_scans);
                   ("mmaps", Json.Int s.Obs_agg.mmaps);
                 ])
             agg.Obs_agg.sites) );
    ]
