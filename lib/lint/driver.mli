(** Orchestration: discover files, parse, run every rule, apply
    in-source suppressions. *)

type result = Mm_report.Output.result = {
  tool : string;  (** "mm-lint" *)
  findings : Finding.t list;  (** live findings, sorted, deduplicated *)
  suppressed : Finding.t list;  (** silenced by mm-lint comments *)
  errors : (string * string) list;
      (** (path, message): unparseable files, unknown suppression rules *)
  files : int;
}

val collect : root:string -> string list -> string list
(** All .ml files under the root-relative paths (skips dot-dirs and
    _build), sorted. *)

val load : root:string -> string list -> Source.t list * (string * string) list

val lint_sources : Source.t list -> result
(** Lint pre-parsed sources; lets tests lint modified in-memory trees. *)

val run : root:string -> paths:string list -> result
