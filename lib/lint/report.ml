(* Rendering is the shared Mm_report.Output schema; Driver.result is an
   alias of Mm_report.Output.result with tool = "mm-lint". *)

let summary = Mm_report.Output.summary
let text = Mm_report.Output.text
let json = Mm_report.Output.json
