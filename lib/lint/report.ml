let summary (r : Driver.result) =
  Printf.sprintf "%d finding%s, %d suppressed, %d error%s, %d files scanned"
    (List.length r.Driver.findings)
    (if List.length r.Driver.findings = 1 then "" else "s")
    (List.length r.Driver.suppressed)
    (List.length r.Driver.errors)
    (if List.length r.Driver.errors = 1 then "" else "s")
    r.Driver.files

let text fmt (r : Driver.result) =
  List.iter
    (fun (path, msg) -> Format.fprintf fmt "%s: error: %s@." path msg)
    r.Driver.errors;
  List.iter (fun f -> Format.fprintf fmt "%a@." Finding.pp f) r.Driver.findings;
  if r.Driver.findings = [] && r.Driver.errors = [] then
    Format.fprintf fmt "mm-lint: clean (%s)@." (summary r)
  else Format.fprintf fmt "mm-lint: %s@." (summary r)

(* ------------------------------------------------------------------ *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let finding_json (f : Finding.t) =
  Printf.sprintf
    {|{"rule":"%s","file":"%s","line":%d,"col":%d,"message":"%s"}|}
    (Rule.name f.Finding.rule)
    (json_escape f.Finding.file)
    f.Finding.line f.Finding.col
    (json_escape f.Finding.message)

let json fmt (r : Driver.result) =
  let list xs f = String.concat "," (List.map f xs) in
  Format.fprintf fmt
    {|{"version":1,"files_scanned":%d,"clean":%b,"findings":[%s],"suppressed":[%s],"errors":[%s]}@.|}
    r.Driver.files
    (r.Driver.findings = [] && r.Driver.errors = [])
    (list r.Driver.findings finding_json)
    (list r.Driver.suppressed finding_json)
    (list r.Driver.errors (fun (path, msg) ->
         Printf.sprintf {|{"file":"%s","message":"%s"}|} (json_escape path)
           (json_escape msg)))
