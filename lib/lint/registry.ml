(* R5, cross-file half: the label registries (lib/core/labels.ml as
   [Labels], lib/lockfree/lf_labels.ml as [Lf_labels],
   lib/pages/pg_labels.ml as [Pg_labels]) must be exact —
   every binding is a distinct string, listed in [all], and referenced
   from the instrumented sections. The fault-injection suites and the
   schedule explorer iterate [all]; a stale or missing entry silently
   shrinks their coverage. *)

open Parsetree

type entry = { ename : string; evalue : string; eline : int; ecol : int }

type registry = {
  rmodule : string;  (* qualifier used at call sites: Labels / Lf_labels *)
  rfile : string;
  entries : entry list;
  all_names : string list;
  all_line : int;
  has_all : bool;
}

let registry_module (src : Source.t) =
  match (src.Source.section, Filename.basename src.Source.path) with
  | Source.Core, "labels.ml" -> Some "Labels"
  | Source.Lockfree, "lf_labels.ml" -> Some "Lf_labels"
  | Source.Pages, "pg_labels.ml" -> Some "Pg_labels"
  | _ -> None

let rec list_idents acc e =
  match e.pexp_desc with
  | Pexp_construct ({ txt = Longident.Lident "[]"; _ }, None) -> List.rev acc
  | Pexp_construct
      ( { txt = Longident.Lident "::"; _ },
        Some { pexp_desc = Pexp_tuple [ hd; tl ]; _ } ) ->
      let acc =
        match hd.pexp_desc with
        | Pexp_ident { txt = Longident.Lident n; _ } -> n :: acc
        | _ -> acc
      in
      list_idents acc tl
  | _ -> List.rev acc

let parse_registry rmodule (src : Source.t) =
  let entries = ref [] and all_names = ref [] in
  let all_line = ref 0 and has_all = ref false in
  List.iter
    (fun si ->
      match si.pstr_desc with
      | Pstr_value (_, bindings) ->
          List.iter
            (fun vb ->
              match vb.pvb_pat.ppat_desc with
              | Ppat_var { txt = name; loc } -> (
                  let eline = loc.loc_start.pos_lnum in
                  let ecol = loc.loc_start.pos_cnum - loc.loc_start.pos_bol in
                  match vb.pvb_expr.pexp_desc with
                  | Pexp_constant (Pconst_string (v, _, _)) ->
                      entries :=
                        { ename = name; evalue = v; eline; ecol } :: !entries
                  | _ when name = "all" ->
                      has_all := true;
                      all_line := eline;
                      all_names := list_idents [] vb.pvb_expr
                  | _ -> ())
              | _ -> ())
            bindings
      | _ -> ())
    src.Source.structure;
  {
    rmodule;
    rfile = src.Source.path;
    entries = List.rev !entries;
    all_names = !all_names;
    all_line = !all_line;
    has_all = !has_all;
  }

(* A use of [M.x] is any reference whose flattened path contains the
   adjacent pair (M, x) — covers Labels.x, Mm_core.Labels.x, etc. *)
let uses_entry rmodule ename (r : Scan.reference) =
  let rec go = function
    | m :: n :: _ when m = rmodule && n = ename -> true
    | _ :: rest -> go rest
    | [] -> false
  in
  go r.Scan.rpath

let check (sources : Source.t list) =
  let registries =
    List.filter_map
      (fun src ->
        Option.map (fun m -> parse_registry m src) (registry_module src))
      sources
  in
  let scope_refs =
    (* references from the instrumented sections, registries excluded *)
    List.concat_map
      (fun (src : Source.t) ->
        if
          Source.in_lockfree_scope src.Source.section
          && registry_module src = None
        then Scan.refs src.Source.structure
        else [])
      sources
  in
  let findings = ref [] in
  let add ~file ~line ~col fmt =
    Printf.ksprintf
      (fun message ->
        findings :=
          Finding.v ~rule:Rule.Label_registry ~file ~line ~col message
          :: !findings)
      fmt
  in
  (* Duplicate strings, across registries too: two instrumentation
     points with one name are indistinguishable to the explorer. *)
  let seen : (string, string) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun reg ->
      List.iter
        (fun e ->
          let key = e.evalue in
          (match Hashtbl.find_opt seen key with
          | Some first ->
              add ~file:reg.rfile ~line:e.eline ~col:e.ecol
                "label string %S bound to both %s and %s.%s" e.evalue first
                reg.rmodule e.ename
          | None ->
              Hashtbl.add seen key
                (Printf.sprintf "%s.%s" reg.rmodule e.ename));
          if reg.has_all && not (List.mem e.ename reg.all_names) then
            add ~file:reg.rfile ~line:e.eline ~col:e.ecol
              "label %s.%s (%S) is not listed in [all]; fault injection and \
               exploration would never visit it"
              reg.rmodule e.ename e.evalue;
          if
            not
              (List.exists
                 (fun r -> uses_entry reg.rmodule e.ename r)
                 scope_refs)
          then
            add ~file:reg.rfile ~line:e.eline ~col:e.ecol
              "label %s.%s (%S) is never used in lib/core, lib/lockfree, \
               lib/mem or lib/pages"
              reg.rmodule e.ename e.evalue)
        reg.entries;
      if not reg.has_all then
        add ~file:reg.rfile ~line:1 ~col:0
          "registry %s has no [all] list" reg.rmodule
      else begin
        (* [all] entries that name nothing, or repeat. *)
        let names = List.map (fun e -> e.ename) reg.entries in
        let tbl = Hashtbl.create 16 in
        List.iter
          (fun n ->
            if not (List.mem n names) then
              add ~file:reg.rfile ~line:reg.all_line ~col:0
                "[all] lists %s, which is not a string binding of this \
                 registry"
                n;
            if Hashtbl.mem tbl n then
              add ~file:reg.rfile ~line:reg.all_line ~col:0
                "[all] lists %s twice" n;
            Hashtbl.replace tbl n ())
          reg.all_names
      end)
    registries;
  List.rev !findings
