(** Lexical event extraction from a parsetree: per top-level item, every
    identifier reference and every application with its source position.
    Rules work on these flat, offset-ordered streams rather than on the
    tree, because the disciplines they prove are about {e lexical
    windows} (read → label → CAS; protect → re-read → dereference). *)

type kind =
  | Value  (** idents and (expression-position) constructors *)
  | Field
  | Type
  | Module

type reference = {
  rpath : string list;  (** flattened longident, e.g. ["Rt";"Atomic";"get"] *)
  rkind : kind;
  rline : int;
  rcol : int;
  rcnum : int;  (** absolute character offset, orders events *)
}

type app = {
  fn : string list;
  args : (Asttypes.arg_label * Parsetree.expression) list;
  aline : int;
  acol : int;
  acnum : int;
  abranch : int list;
      (** path of enclosing if/match/try/function branches within the
          item; conditions and scrutinees evaluate at the parent path *)
}

type item = {
  start_line : int;
  end_line : int;
  start_cnum : int;
  refs : reference list;
  apps : app list;
}

val items : Parsetree.structure -> item list
val refs : Parsetree.structure -> reference list

val ends_with : suffix:string list -> string list -> bool
val is_atomic_get : string list -> bool
val is_cas : string list -> bool
val is_label : string list -> bool
val is_hp_protect : string list -> bool

val string_arg : app -> string option
(** First literal-string argument of an application, if any. *)

val dominates : int list -> int list -> bool
(** [dominates p q]: an event at branch path [p] runs on every path to
    an event at [q] — [p] is a prefix of [q]. *)
