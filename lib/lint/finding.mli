(** A single lint diagnostic, anchored to a source position. *)

type t = {
  rule : Rule.t;
  file : string;  (** root-relative path *)
  line : int;  (** 1-based *)
  col : int;  (** 0-based, compiler convention *)
  message : string;
}

val v : rule:Rule.t -> file:string -> line:int -> col:int -> string -> t
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
