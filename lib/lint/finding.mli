(** A single lint diagnostic, anchored to a source position. The record
    is {!Mm_report.Finding.t}; the rule field carries {!Rule.name}. *)

type t = Mm_report.Finding.t

val v : rule:Rule.t -> file:string -> line:int -> col:int -> string -> t
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
