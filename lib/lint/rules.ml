(* Per-file rules R1-R4, plus R5's literal-label check. The cross-file
   half of R5 (registry consistency and usage) lives in Registry. *)

let path_str p = String.concat "." p

(* R1: every CAS must carry a label inside its read->CAS window. The
   window of a CAS at offset [c] starts at the lexically nearest
   preceding Rt.Atomic.get in the same top-level item (or the item start
   when the CAS has no preceding read, e.g. an install CAS whose
   expected value is a constant). An adversarial scheduler can only
   interpose in windows that contain an Rt.label — and only a label
   that {e dominates} the CAS counts: a label in a sibling branch (the
   other arm of the if in a two-armed retry loop, say) never runs on
   the path that reaches this CAS. *)
let r1 (src : Source.t) (it : Scan.item) =
  let gets =
    List.filter_map
      (fun (a : Scan.app) ->
        if Scan.is_atomic_get a.fn then Some a.acnum else None)
      it.apps
  in
  let labels =
    List.filter_map
      (fun (a : Scan.app) ->
        if Scan.is_label a.fn then Some (a.acnum, a.abranch) else None)
      it.apps
  in
  List.filter_map
    (fun (a : Scan.app) ->
      if not (Scan.is_cas a.fn) then None
      else
        let window_start =
          List.fold_left
            (fun acc g -> if g < a.acnum && g > acc then g else acc)
            it.start_cnum gets
        in
        if
          List.exists
            (fun (l, lb) ->
              window_start < l && l < a.acnum
              && Scan.dominates lb a.abranch)
            labels
        then None
        else
          Some
            (Finding.v ~rule:Rule.Unlabelled_cas_window ~file:src.Source.path
               ~line:a.aline ~col:a.acol
               (Printf.sprintf
                  "%s has no Rt.label between the shared-word read and the \
                   CAS; the retry window is invisible to the schedule \
                   explorer and the kill/stall monitor"
                  (path_str a.fn))))
    it.apps

(* R2: raw multicore primitives are confined to the real runtime
   backend (real_rt.ml and its base rt_base.ml) — the one place that is
   allowed to know about OCaml multicore. Everything else, including the
   rest of lib/runtime and the baseline allocators, goes through an
   [Rt] instantiation so it runs under both backends. *)
let raw_roots = [ "Atomic"; "Domain"; "Mutex"; "Condition"; "Thread" ]

let raw_impl_basenames = [ "real_rt.ml"; "rt_base.ml" ]

let is_raw = function
  | root :: _ when List.mem root raw_roots -> true
  | "Stdlib" :: next :: _ when List.mem next raw_roots -> true
  | _ -> false

let r2 (src : Source.t) (it : Scan.item) =
  List.filter_map
    (fun (r : Scan.reference) ->
      if is_raw r.rpath then
        Some
          (Finding.v ~rule:Rule.Raw_primitive ~file:src.Source.path
             ~line:r.rline ~col:r.rcol
             (Printf.sprintf
                "raw primitive %s outside the real runtime backend \
                 (lib/runtime/real_rt.ml, rt_base.ml); go through a \
                 RUNTIME instantiation so the code also runs under the \
                 simulated runtime"
                (path_str r.rpath)))
      else None)
    it.refs

(* R3: nothing in the lock-free sections may reach the blocking lock
   substrate. (The dune dependency graph already forbids mm_core ->
   mm_baselines; this proves it at the source level, including against
   future dune edits.) *)
let blocking_roots = [ "Locks"; "Mm_baselines" ]

let r3 (src : Source.t) (it : Scan.item) =
  List.filter_map
    (fun (r : Scan.reference) ->
      match r.rpath with
      | root :: _ when List.mem root blocking_roots ->
          Some
            (Finding.v ~rule:Rule.Blocking_in_lockfree ~file:src.Source.path
               ~line:r.rline ~col:r.rcol
               (Printf.sprintf
                  "blocking %s reachable from lock-free code; lock-freedom \
                   must hold by construction"
                  (path_str r.rpath)))
      | _ -> None)
    it.refs

(* R4: descriptors are type-stable and reused (never freed back to the
   GC), so reading a descriptor's freelist link after popping it from a
   shared head is only safe once a hazard pointer protects it AND the
   head has been re-read to prove the descriptor was still reachable
   after the protection was published (Fig. 7; Michael's SafeRead).
   Lexically: every read of a [next_d] field must be preceded, within
   the same top-level item, by an Hp.protect that is itself followed by
   another Rt.Atomic.get before the dereference. *)
let r4 (src : Source.t) (it : Scan.item) =
  let gets =
    List.filter_map
      (fun (a : Scan.app) ->
        if Scan.is_atomic_get a.fn then Some a.acnum else None)
      it.apps
  in
  let protects =
    List.filter_map
      (fun (a : Scan.app) ->
        if Scan.is_hp_protect a.fn then Some a.acnum else None)
      it.apps
  in
  List.filter_map
    (fun (r : Scan.reference) ->
      let is_link_read =
        r.rkind = Scan.Field
        && match List.rev r.rpath with "next_d" :: _ -> true | _ -> false
      in
      if not is_link_read then None
      else if
        List.exists
          (fun p ->
            p < r.rcnum
            && List.exists (fun g -> p < g && g < r.rcnum) gets)
          protects
      then None
      else
        Some
          (Finding.v ~rule:Rule.Hp_protect ~file:src.Source.path ~line:r.rline
             ~col:r.rcol
             (Printf.sprintf
                "%s read without a hazard-pointer protect followed by a \
                 re-validating read; a concurrently reused descriptor makes \
                 this dereference garbage"
                (path_str r.rpath))))
    it.refs

(* R5 (per-file half): Rt.label must be fed from the registries, never a
   literal, so the registry provably covers every instrumentation
   point. *)
let r5_literal (src : Source.t) (it : Scan.item) =
  List.filter_map
    (fun (a : Scan.app) ->
      if not (Scan.is_label a.fn) then None
      else
        match Scan.string_arg a with
        | None -> None
        | Some s ->
            Some
              (Finding.v ~rule:Rule.Label_registry ~file:src.Source.path
                 ~line:a.aline ~col:a.acol
                 (Printf.sprintf
                    "literal label %S; labels must come from Labels / \
                     Lf_labels so the checker can enumerate every \
                     instrumentation point"
                    s)))
    it.apps

(* R6: simulator-only control facilities — controlled schedules, label
   interception, kill/stall injection — are capabilities of one runtime
   backend, not of the Rt surface. Outside lib/runtime (which implements
   them) and lib/check (the explorer/monitor, which exists to drive
   them), a top-level item that touches any of them must also consult
   the [Rt.controllable] capability flag, so the behaviour stays gated
   on what the backend advertises (ROADMAP item 4). *)
let sim_facilities =
  [
    "current";
    "Kill";
    "Block_until";
    "Continue";
    "action";
    "sched_point";
    "sp_runnable";
    "sp_current";
    "sp_label";
  ]

let is_sim_facility = function
  | path -> (
      match List.rev path with
      | x :: "Sim" :: _ -> List.mem x sim_facilities
      | _ -> false)

let is_controlled_create (a : Scan.app) =
  Scan.ends_with ~suffix:[ "Sim"; "create" ] a.fn
  && List.exists
       (fun ((l : Asttypes.arg_label), _) ->
         match l with
         | Asttypes.Labelled ("on_label" | "sched")
         | Asttypes.Optional ("on_label" | "sched") ->
             true
         | _ -> false)
       a.args

let r6 (src : Source.t) (it : Scan.item) =
  let consults_capability =
    List.exists
      (fun (r : Scan.reference) ->
        Scan.ends_with ~suffix:[ "Rt"; "controllable" ] r.rpath)
      it.refs
  in
  if consults_capability then []
  else
    let of_refs =
      List.filter_map
        (fun (r : Scan.reference) ->
          if is_sim_facility r.rpath then
            Some
              (Finding.v ~rule:Rule.Sim_capability ~file:src.Source.path
                 ~line:r.rline ~col:r.rcol
                 (Printf.sprintf
                    "simulator control facility %s outside lib/runtime and \
                     lib/check without consulting Rt.controllable; gate \
                     sim-only behaviour on the runtime capability flag"
                    (path_str r.rpath)))
          else None)
        it.refs
    in
    let of_apps =
      List.filter_map
        (fun (a : Scan.app) ->
          if is_controlled_create a then
            Some
              (Finding.v ~rule:Rule.Sim_capability ~file:src.Source.path
                 ~line:a.aline ~col:a.acol
                 "Sim.create with a control hook (~on_label / ~sched) \
                  outside lib/runtime and lib/check without consulting \
                  Rt.controllable; gate sim-only behaviour on the runtime \
                  capability flag")
          else None)
        it.apps
    in
    of_refs @ of_apps

let check_file (src : Source.t) =
  let items = Scan.items src.Source.structure in
  let section = src.Source.section in
  let lockfree = Source.in_lockfree_scope section in
  let raw_allowed =
    match section with
    | Source.Runtime ->
        List.mem (Filename.basename src.Source.path) raw_impl_basenames
    | _ -> false
  in
  let sim_control_allowed =
    match section with
    | Source.Runtime | Source.Check -> true
    | _ -> false
  in
  List.concat_map
    (fun it ->
      List.concat
        [
          (if lockfree then r1 src it else []);
          (if raw_allowed then [] else r2 src it);
          (if lockfree then r3 src it else []);
          (if section = Source.Core then r4 src it else []);
          (if lockfree then r5_literal src it else []);
          (if sim_control_allowed then [] else r6 src it);
        ])
    items
