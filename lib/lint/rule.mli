(** The mm-lint rule set, each keyed to the paper's progress argument
    (DESIGN.md §11). Rule names are the tokens used by findings, the
    [--rule] CLI filter and in-source suppressions
    [(* mm-lint: allow <rule> *)]. *)

type t =
  | Unlabelled_cas_window  (** R1 *)
  | Raw_primitive  (** R2 *)
  | Blocking_in_lockfree  (** R3 *)
  | Hp_protect  (** R4 *)
  | Label_registry  (** R5 *)
  | Sim_capability  (** R6 — the capability boundary of ROADMAP item 4 *)

val all : t list
val name : t -> string
val of_name : string -> t option
val describe : t -> string
