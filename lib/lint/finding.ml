(* mm-lint findings are the shared Mm_report diagnostics; the rule is
   stored by its registered name (one report schema across tools). *)

type t = Mm_report.Finding.t

let v ~rule ~file ~line ~col message =
  Mm_report.Finding.v ~rule:(Rule.name rule) ~file ~line ~col message

let compare = Mm_report.Finding.compare
let pp = Mm_report.Finding.pp
