type t = {
  rule : Rule.t;
  file : string;
  line : int;
  col : int;
  message : string;
}

let v ~rule ~file ~line ~col message = { rule; file; line; col; message }

let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c
      else String.compare (Rule.name a.rule) (Rule.name b.rule)

let pp fmt t =
  Format.fprintf fmt "%s:%d:%d: [%s] %s" t.file t.line t.col
    (Rule.name t.rule) t.message
