(** Rendering of lint results: compiler-style text diagnostics, and a
    stable JSON document for CI artifacts (the shared
    {!Mm_report.Output} schema). *)

val text : Format.formatter -> Driver.result -> unit
val json : Format.formatter -> Driver.result -> unit
val summary : Driver.result -> string
