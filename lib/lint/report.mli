(** Rendering of lint results: compiler-style text diagnostics, and a
    stable JSON document for CI artifacts. *)

val text : Format.formatter -> Driver.result -> unit
val json : Format.formatter -> Driver.result -> unit
val summary : Driver.result -> string
