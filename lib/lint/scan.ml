open Parsetree

type kind = Value | Field | Type | Module

type reference = {
  rpath : string list;
  rkind : kind;
  rline : int;
  rcol : int;
  rcnum : int;
}

type app = {
  fn : string list;
  args : (Asttypes.arg_label * expression) list;
  aline : int;
  acol : int;
  acnum : int;
  abranch : int list;
      (** path of enclosing if/match/try/function branches within the
          item; [p] dominates [q] iff [p] is a prefix of [q] *)
}

type item = {
  start_line : int;
  end_line : int;
  start_cnum : int;
  refs : reference list;  (** lexical order *)
  apps : app list;  (** lexical order *)
}

let pos_of (loc : Location.t) =
  ( loc.loc_start.pos_lnum,
    loc.loc_start.pos_cnum - loc.loc_start.pos_bol,
    loc.loc_start.pos_cnum )

let collect_item (si : structure_item) =
  let refs = ref [] and apps = ref [] in
  let add_ref rkind lid (loc : Location.t) =
    let rline, rcol, rcnum = pos_of loc in
    refs := { rpath = Longident.flatten lid; rkind; rline; rcol; rcnum } :: !refs
  in
  (* Branch paths: conditions and scrutinees evaluate at the parent
     path; each then/else arm and each match/try/function case gets a
     fresh child id. A label dominates a CAS (runs on every path to it)
     iff the label's path is a prefix of the CAS's. *)
  let cur_branch = ref [] and fresh_branch = ref 0 in
  let in_child f =
    incr fresh_branch;
    let saved = !cur_branch in
    cur_branch := saved @ [ !fresh_branch ];
    f ();
    cur_branch := saved
  in
  let default = Ast_iterator.default_iterator in
  let iterator =
    {
      default with
      expr =
        (fun self e ->
          match e.pexp_desc with
          | Pexp_ifthenelse (c, t, e_opt) ->
              self.expr self c;
              in_child (fun () -> self.expr self t);
              Option.iter
                (fun e2 -> in_child (fun () -> self.expr self e2))
                e_opt
          | Pexp_match (scrut, cases) ->
              self.expr self scrut;
              List.iter (fun c -> in_child (fun () -> self.case self c)) cases
          | Pexp_try (body, cases) ->
              self.expr self body;
              List.iter (fun c -> in_child (fun () -> self.case self c)) cases
          | Pexp_function cases ->
              List.iter (fun c -> in_child (fun () -> self.case self c)) cases
          | _ ->
              (match e.pexp_desc with
              | Pexp_ident { txt; loc } -> add_ref Value txt loc
              | Pexp_construct ({ txt; loc }, _) -> add_ref Value txt loc
              | Pexp_field (_, { txt; loc }) -> add_ref Field txt loc
              | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args)
                ->
                  let aline, acol, acnum = pos_of e.pexp_loc in
                  apps :=
                    {
                      fn = Longident.flatten txt;
                      args;
                      aline;
                      acol;
                      acnum;
                      abranch = !cur_branch;
                    }
                    :: !apps
              | _ -> ());
              default.expr self e);
      typ =
        (fun self t ->
          (match t.ptyp_desc with
          | Ptyp_constr ({ txt; loc }, _) -> add_ref Type txt loc
          | _ -> ());
          default.typ self t);
      module_expr =
        (fun self m ->
          (match m.pmod_desc with
          | Pmod_ident { txt; loc } -> add_ref Module txt loc
          | _ -> ());
          default.module_expr self m);
    }
  in
  iterator.structure_item iterator si;
  let by_cnum a b = Int.compare a b in
  {
    start_line = si.pstr_loc.loc_start.pos_lnum;
    end_line = si.pstr_loc.loc_end.pos_lnum;
    start_cnum = si.pstr_loc.loc_start.pos_cnum;
    refs = List.sort (fun a b -> by_cnum a.rcnum b.rcnum) !refs;
    apps = List.sort (fun a b -> by_cnum a.acnum b.acnum) !apps;
  }

(* A functorized source file is a single top-level [module Make (Rt : _)
   = struct ... end] item; the per-item lexical scoping of the rules
   (R4's protect-then-revalidate window, R6's branch domination) must
   keep working on the definitions inside it, so module bodies —
   through functor parameters and signature constraints — are split
   back into their constituent items. *)
let rec flatten_item (si : structure_item) =
  (* Only functors are transparent: a plain nested [module M = struct
     ... end] stays one item, exactly as before the functorization, so
     a suppression comment ahead of it still covers its whole body. *)
  let rec functor_body_items (me : module_expr) =
    match me.pmod_desc with
    | Pmod_functor (_, body) -> (
        let rec items (me : module_expr) =
          match me.pmod_desc with
          | Pmod_structure items -> Some items
          | Pmod_functor (_, body) -> items body
          | Pmod_constraint (m, _) -> items m
          | _ -> None
        in
        items body)
    | Pmod_constraint (m, _) -> functor_body_items m
    | _ -> None
  in
  match si.pstr_desc with
  | Pstr_module { pmb_expr; _ } -> (
      match functor_body_items pmb_expr with
      | Some items -> List.concat_map flatten_item items
      | None -> [ si ])
  | _ -> [ si ]

let items structure =
  List.map collect_item (List.concat_map flatten_item structure)

let refs structure = List.concat_map (fun i -> i.refs) (items structure)

(* ------------------------------------------------------------------ *)
(* Recognizers shared by the rules. *)

let rec ends_with ~suffix path =
  let lp = List.length path and ls = List.length suffix in
  if lp < ls then false
  else if lp = ls then path = suffix
  else match path with [] -> false | _ :: tl -> ends_with ~suffix tl

let is_atomic_get fn = ends_with ~suffix:[ "Atomic"; "get" ] fn
let is_cas fn = ends_with ~suffix:[ "Atomic"; "compare_and_set" ] fn
let is_label fn = ends_with ~suffix:[ "Rt"; "label" ] fn

let is_hp_protect fn =
  match List.rev fn with
  | "protect" :: m :: _ -> m = "Hp" || m = "Hazard_pointers"
  | _ -> false

let rec dominates p q =
  match (p, q) with
  | [], _ -> true
  | a :: p', b :: q' -> a = b && dominates p' q'
  | _ :: _, [] -> false

let string_arg (a : app) =
  List.find_map
    (fun (_, e) ->
      match e.pexp_desc with
      | Pexp_constant (Pconst_string (s, _, _)) -> Some s
      | _ -> None)
    a.args
