type t =
  | Unlabelled_cas_window
  | Raw_primitive
  | Blocking_in_lockfree
  | Hp_protect
  | Label_registry
  | Sim_capability

let all =
  [
    Unlabelled_cas_window;
    Raw_primitive;
    Blocking_in_lockfree;
    Hp_protect;
    Label_registry;
    Sim_capability;
  ]

let name = function
  | Unlabelled_cas_window -> "unlabelled-cas-window"
  | Raw_primitive -> "raw-primitive"
  | Blocking_in_lockfree -> "blocking-in-lockfree"
  | Hp_protect -> "hp-protect"
  | Label_registry -> "label-registry"
  | Sim_capability -> "sim-capability"

let of_name s = List.find_opt (fun r -> name r = s) all

let describe = function
  | Unlabelled_cas_window ->
      "every Rt.Atomic.compare_and_set in lib/core, lib/lockfree and \
       lib/mem must have an Rt.label between the shared-word read and \
       the CAS (Figs. 4-7: the overlapping read-modify-write windows the \
       schedule explorer and fault injector interpose at)"
  | Raw_primitive ->
      "no Stdlib.Atomic, Domain, Mutex or Condition outside the real \
       runtime backend (lib/runtime/real_rt.ml and rt_base.ml); \
       everything else — baselines included — is functorized over \
       RUNTIME so it runs under both the real and the simulated runtime"
  | Blocking_in_lockfree ->
      "no Locks.* reachable from lib/core, lib/lockfree or lib/mem: \
       lock-freedom holds by construction"
  | Hp_protect ->
      "a descriptor reached from a shared freelist head must be \
       hazard-pointer protected and the head re-validated before its \
       link field is dereferenced (Fig. 7 DescAlloc / SafeRead)"
  | Label_registry ->
      "every Rt.label string comes from Labels.all / Lf_labels.all; \
       registry entries are unique, listed in [all], and used"
  | Sim_capability ->
      "simulator-only control facilities (controlled schedules, label \
       interception, kill/stall exploration) may only be referenced \
       outside lib/runtime and lib/check in items that consult the \
       Rt.controllable capability flag, so every runtime backend keeps \
       the same observable surface (ROADMAP item 4)"
