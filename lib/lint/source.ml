type section =
  | Core
  | Lockfree
  | Mem
  | Pages
  | Runtime
  | Baselines
  | Check
  | Lib_other
  | Binx
  | Other

type t = {
  path : string;
  section : section;
  text : string;
  structure : Parsetree.structure;
  suppressions : Mm_report.Suppress.t list;
  bad_suppressions : (int * string) list;
}

let section_name = function
  | Core -> "core"
  | Lockfree -> "lockfree"
  | Mem -> "mem"
  | Pages -> "pages"
  | Runtime -> "runtime"
  | Baselines -> "baselines"
  | Check -> "check"
  | Lib_other -> "lib"
  | Binx -> "bin"
  | Other -> "other"

(* Classification is by path segments, so both the real tree and fixture
   trees that mirror it (test/lint_fixtures/lib/core/...) classify the
   same way. *)
let section_of_path path =
  let segs = String.split_on_char '/' path in
  let rec after_lib = function
    | "lib" :: next :: _ -> (
        match next with
        | "core" -> Some Core
        | "lockfree" -> Some Lockfree
        | "mem" -> Some Mem
        | "pages" -> Some Pages
        | "runtime" -> Some Runtime
        | "baselines" -> Some Baselines
        | "check" -> Some Check
        | _ -> Some Lib_other)
    | _ :: rest -> after_lib rest
    | [] -> None
  in
  match after_lib segs with
  | Some s -> s
  | None -> if List.mem "bin" segs then Binx else Other

let in_lockfree_scope = function
  | Core | Lockfree | Mem | Pages -> true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Suppression comments, via the shared scanner (Mm_report.Suppress):
   (* mm-lint: allow <rule> *) or (* mm-lint: allow <rule>: <reason> *). *)

let scan_suppressions text =
  Mm_report.Suppress.scan ~marker:"mm-lint:"
    ~known:(fun token -> Rule.of_name token <> None)
    text

(* ------------------------------------------------------------------ *)

let parse ~path text =
  let lexbuf = Lexing.from_string text in
  Lexing.set_filename lexbuf path;
  match Parse.implementation lexbuf with
  | structure ->
      let suppressions, bad_suppressions = scan_suppressions text in
      Ok
        {
          path;
          section = section_of_path path;
          text;
          structure;
          suppressions;
          bad_suppressions;
        }
  | exception exn ->
      let msg =
        match Location.error_of_exn exn with
        | Some (`Ok e) -> Format.asprintf "%a" Location.print_report e
        | _ -> Printexc.to_string exn
      in
      Error (String.concat " " (String.split_on_char '\n' msg))

let load ~root ~path =
  let full = Filename.concat root path in
  match
    let ic = open_in_bin full in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | text -> parse ~path text
  | exception Sys_error e -> Error e
