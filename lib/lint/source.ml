type section =
  | Core
  | Lockfree
  | Mem
  | Pages
  | Runtime
  | Baselines
  | Lib_other
  | Binx
  | Other

type suppression = {
  sup_rule : Rule.t;
  sup_line : int;
  sup_reason : string option;
}

type t = {
  path : string;
  section : section;
  text : string;
  structure : Parsetree.structure;
  suppressions : suppression list;
  bad_suppressions : (int * string) list;
}

let section_name = function
  | Core -> "core"
  | Lockfree -> "lockfree"
  | Mem -> "mem"
  | Pages -> "pages"
  | Runtime -> "runtime"
  | Baselines -> "baselines"
  | Lib_other -> "lib"
  | Binx -> "bin"
  | Other -> "other"

(* Classification is by path segments, so both the real tree and fixture
   trees that mirror it (test/lint_fixtures/lib/core/...) classify the
   same way. *)
let section_of_path path =
  let segs = String.split_on_char '/' path in
  let rec after_lib = function
    | "lib" :: next :: _ -> (
        match next with
        | "core" -> Some Core
        | "lockfree" -> Some Lockfree
        | "mem" -> Some Mem
        | "pages" -> Some Pages
        | "runtime" -> Some Runtime
        | "baselines" -> Some Baselines
        | _ -> Some Lib_other)
    | _ :: rest -> after_lib rest
    | [] -> None
  in
  match after_lib segs with
  | Some s -> s
  | None -> if List.mem "bin" segs then Binx else Other

let in_lockfree_scope = function
  | Core | Lockfree | Mem | Pages -> true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Suppression comments: (* mm-lint: allow <rule> *) or
   (* mm-lint: allow <rule>: <reason> *). The scan is textual (comments
   are not in the parsetree). A marker not followed by "allow" plus a
   non-empty rule token is not a suppression attempt — that keeps prose
   mentions of the syntax (docs, this linter's own sources) inert — but
   a non-empty token naming no rule is an error, so typos cannot
   silently fail to suppress. *)

let is_token_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  || c = '-' || c = '_'

let line_of_offset text off =
  let n = ref 1 in
  for i = 0 to off - 1 do
    if text.[i] = '\n' then incr n
  done;
  !n

let scan_suppressions text =
  let marker = "mm-lint:" in
  let ok = ref [] and bad = ref [] in
  let len = String.length text in
  let rec find from =
    match
      if from >= len then None
      else
        let rec at i =
          if i + String.length marker > len then None
          else if String.sub text i (String.length marker) = marker then
            Some i
          else at (i + 1)
        in
        at from
    with
    | None -> ()
    | Some i ->
        let j = ref (i + String.length marker) in
        while !j < len && (text.[!j] = ' ' || text.[!j] = '\t') do incr j done;
        let line = line_of_offset text i in
        (if !j + 5 <= len && String.sub text !j 5 = "allow" then begin
           j := !j + 5;
           while !j < len && (text.[!j] = ' ' || text.[!j] = '\t') do
             incr j
           done;
           let start = !j in
           while !j < len && is_token_char text.[!j] do incr j done;
           let token = String.sub text start (!j - start) in
           if token = "" then ()
           else
             match Rule.of_name token with
             | Some r ->
                 let reason =
                   if !j < len && text.[!j] = ':' then
                     let rs = !j + 1 in
                     let re = ref rs in
                     while
                       !re + 1 < len
                       && not (text.[!re] = '*' && text.[!re + 1] = ')')
                     do
                       incr re
                     done;
                     Some (String.trim (String.sub text rs (!re - rs)))
                   else None
                 in
                 ok :=
                   { sup_rule = r; sup_line = line; sup_reason = reason }
                   :: !ok
             | None -> bad := (line, token) :: !bad
         end);
        find !j
  in
  find 0;
  (List.rev !ok, List.rev !bad)

(* ------------------------------------------------------------------ *)

let parse ~path text =
  let lexbuf = Lexing.from_string text in
  Lexing.set_filename lexbuf path;
  match Parse.implementation lexbuf with
  | structure ->
      let suppressions, bad_suppressions = scan_suppressions text in
      Ok
        {
          path;
          section = section_of_path path;
          text;
          structure;
          suppressions;
          bad_suppressions;
        }
  | exception exn ->
      let msg =
        match Location.error_of_exn exn with
        | Some (`Ok e) -> Format.asprintf "%a" Location.print_report e
        | _ -> Printexc.to_string exn
      in
      Error (String.concat " " (String.split_on_char '\n' msg))

let load ~root ~path =
  let full = Filename.concat root path in
  match
    let ic = open_in_bin full in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | text -> parse ~path text
  | exception Sys_error e -> Error e
