type result = Mm_report.Output.result = {
  tool : string;
  findings : Finding.t list;
  suppressed : Finding.t list;
  errors : (string * string) list;
  files : int;
}

(* ------------------------------------------------------------------ *)
(* File discovery: every .ml under the given root-relative paths,
   skipping dot-directories (dune object dirs) and _build. *)

let collect ~root paths =
  let out = ref [] in
  let rec walk rel =
    let full = Filename.concat root rel in
    if Sys.is_directory full then
      Array.iter
        (fun name ->
          if name.[0] <> '.' && name <> "_build" then
            walk (Filename.concat rel name))
        (Sys.readdir full)
    else if Filename.check_suffix rel ".ml" then out := rel :: !out
  in
  List.iter
    (fun p -> if Sys.file_exists (Filename.concat root p) then walk p)
    paths;
  List.sort String.compare !out

let load ~root paths =
  let sources = ref [] and errors = ref [] in
  List.iter
    (fun path ->
      match Source.load ~root ~path with
      | Ok src -> sources := src :: !sources
      | Error msg -> errors := (path, msg) :: !errors)
    paths;
  (List.rev !sources, List.rev !errors)

(* ------------------------------------------------------------------ *)
(* Suppression coverage is the shared policy in Mm_report.Suppress:
   a comment covers its rule to the end of the enclosing top-level item
   (or the next item when it sits between items) — never a whole file. *)

let split_suppressed (src : Source.t) findings =
  let item_spans =
    List.map
      (fun (it : Scan.item) -> (it.Scan.start_line, it.Scan.end_line))
      (Scan.items src.Source.structure)
  in
  List.partition
    (fun f ->
      not (Mm_report.Suppress.covers ~item_spans src.Source.suppressions f))
    findings

(* ------------------------------------------------------------------ *)

let lint_sources (sources : Source.t list) =
  let kept = ref [] and dropped = ref [] and errors = ref [] in
  let by_path =
    List.map (fun (s : Source.t) -> (s.Source.path, s)) sources
  in
  let route (f : Finding.t) =
    match List.assoc_opt f.Mm_report.Finding.file by_path with
    | None -> kept := f :: !kept
    | Some src ->
        let keep, drop = split_suppressed src [ f ] in
        kept := keep @ !kept;
        dropped := drop @ !dropped
  in
  List.iter
    (fun (src : Source.t) ->
      List.iter
        (fun (line, token) ->
          errors :=
            ( src.Source.path,
              Printf.sprintf
                "line %d: mm-lint suppression names no known rule (%s)" line
                token )
            :: !errors)
        src.Source.bad_suppressions;
      List.iter route (Rules.check_file src))
    sources;
  List.iter route (Registry.check sources);
  {
    tool = "mm-lint";
    findings = List.sort_uniq Finding.compare !kept;
    suppressed = List.sort_uniq Finding.compare !dropped;
    errors = List.rev !errors;
    files = List.length sources;
  }

let run ~root ~paths =
  let files = collect ~root paths in
  let sources, load_errors = load ~root files in
  let r = lint_sources sources in
  { r with errors = load_errors @ r.errors }
