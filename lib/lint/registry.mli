(** The cross-file half of R5 label-registry: parses
    [lib/core/labels.ml] and [lib/lockfree/lf_labels.ml] out of the
    scanned source set and checks that every entry is a distinct string,
    listed in [all], and referenced from the instrumented sections. *)

val check : Source.t list -> Finding.t list
