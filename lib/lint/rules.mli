(** The per-file rules: R1 unlabelled-cas-window, R2 raw-primitive,
    R3 blocking-in-lockfree, R4 hp-protect, and R5's literal-label
    check. Which rules apply is decided by the file's {!Source.section};
    the cross-file half of R5 is {!Registry.check}. *)

val check_file : Source.t -> Finding.t list
(** Findings in source order, before suppression filtering. *)
