(** A parsed source file, classified by repository section, with its
    in-source lint suppressions. *)

type section =
  | Core  (** lib/core *)
  | Lockfree  (** lib/lockfree *)
  | Mem  (** lib/mem *)
  | Pages  (** lib/pages — the span reservoir + buddy page manager *)
  | Runtime  (** lib/runtime — may use raw multicore primitives *)
  | Baselines  (** lib/baselines — lock-based, may use raw primitives *)
  | Check  (** lib/check — invariant checkers, drives the simulator *)
  | Lib_other  (** other lib/ subsystems (harness, workloads, lint, sa) *)
  | Binx  (** bin/ *)
  | Other

type t = {
  path : string;
  section : section;
  text : string;
  structure : Parsetree.structure;
  suppressions : Mm_report.Suppress.t list;
  bad_suppressions : (int * string) list;
      (** mm-lint comments naming no known rule: (line, token) *)
}

val section_of_path : string -> section
val section_name : section -> string

val in_lockfree_scope : section -> bool
(** The sections whose code carries the paper's progress argument
    (lib/core, lib/lockfree, lib/mem, lib/pages). *)

val parse : path:string -> string -> (t, string) result
val load : root:string -> path:string -> (t, string) result
