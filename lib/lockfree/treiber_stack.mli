(** Treiber's lock-free LIFO stack (IBM System/370 freelist push/pop, the
    paper's reference [8]).

    Nodes are freshly allocated, immutable OCaml records; under garbage
    collection a node's identity can never be reused while reachable, so
    the classic ABA hazard of the pop operation cannot arise and no tag or
    hazard pointer is needed here. (The descriptor freelist in [Mm_core],
    which {e does} recycle its nodes, uses hazard pointers or tags — see
    [Desc_pool].) *)

module Make (Rt : Mm_runtime.Runtime_intf.S) : sig
  type 'a t

  val create : Rt.t -> 'a t
  val push : 'a t -> 'a -> unit
  val pop : 'a t -> 'a option
  val peek : 'a t -> 'a option
  val is_empty : 'a t -> bool

  val length : 'a t -> int
  (** Linear-time snapshot length; only meaningful quiescently (tests). *)

  val to_list : 'a t -> 'a list
  (** Top-first snapshot; only meaningful quiescently (tests). *)
end
