module Make (Rt : Mm_runtime.Runtime_intf.S) = struct

  type 'a t = {
    rt : Rt.t;
    k : int;
    scan_threshold : int;
    reuse : 'a -> unit;
    hp : 'a option Rt.atomic array;  (* Rt.max_threads * k slots *)
    retired : 'a list array;  (* private per-thread retirement lists *)
    retired_len : int array;
  }

  let create ?(k = 1) ?scan_threshold rt ~reuse =
    if k < 1 then invalid_arg "Hazard_pointers.create: k must be >= 1";
    let scan_threshold =
      match scan_threshold with
      | Some s -> s
      | None -> 2 * Rt.max_threads * k
    in
    {
      rt;
      k;
      scan_threshold;
      reuse;
      hp = Array.init (Rt.max_threads * k) (fun _ -> Rt.Atomic.make rt None);
      retired = Array.make Rt.max_threads [];
      retired_len = Array.make Rt.max_threads 0;
    }

  let slot_index t ~slot =
    if slot < 0 || slot >= t.k then invalid_arg "Hazard_pointers: bad slot";
    (Rt.self t.rt * t.k) + slot

  let protect t ~slot v = Rt.Atomic.set t.hp.(slot_index t ~slot) (Some v)

  let clear t ~slot = Rt.Atomic.set t.hp.(slot_index t ~slot) None

  (* Collect the set of currently protected nodes. Physical identity is the
     right notion: hazard pointers protect nodes, not values. *)
  let protected_snapshot t =
    let acc = ref [] in
    Array.iter
      (fun a ->
        match Rt.Atomic.get a with Some v -> acc := v :: !acc | None -> ())
      t.hp;
    !acc

  let scan t =
    Rt.obs_event t.rt Rt.Obs.Hp_scan "hp.scan";
    let me = Rt.self t.rt in
    let plist = protected_snapshot t in
    (* Detach each node from the retirement list BEFORE handing it to
       [reuse]: the reuse path performs shared-memory CASes, so under
       simulation the thread can be killed inside it. With the node already
       detached, a kill leaks that node (the bounded leak the paper's
       availability argument allows) instead of leaving it queued for a
       second, corrupting reuse by a later scan. *)
    let keep = ref [] and kept = ref 0 in
    let rec drain () =
      match t.retired.(me) with
      | [] -> ()
      | node :: rest ->
          t.retired.(me) <- rest;
          t.retired_len.(me) <- t.retired_len.(me) - 1;
          if List.memq node plist then begin
            keep := node :: !keep;
            incr kept
          end
          else t.reuse node;
          drain ()
    in
    drain ();
    t.retired.(me) <- !keep @ t.retired.(me);
    t.retired_len.(me) <- t.retired_len.(me) + !kept

  let retire t v =
    let me = Rt.self t.rt in
    t.retired.(me) <- v :: t.retired.(me);
    t.retired_len.(me) <- t.retired_len.(me) + 1;
    if t.retired_len.(me) >= t.scan_threshold then scan t

  let flush t =
    (* Quiescent-only: steal every thread's retirement list and scan it as
       if it were ours. *)
    let plist = protected_snapshot t in
    for tid = 0 to Rt.max_threads - 1 do
      let keep = ref [] and kept = ref 0 in
      List.iter
        (fun node ->
          if List.memq node plist then begin
            keep := node :: !keep;
            incr kept
          end
          else t.reuse node)
        t.retired.(tid);
      t.retired.(tid) <- !keep;
      t.retired_len.(tid) <- !kept
    done

  let retired_count t = Array.fold_left ( + ) 0 t.retired_len

  let protected_count t = List.length (protected_snapshot t)
end
