(** Bounded exponential backoff for CAS-retry loops.

    Failed CAS attempts indicate interference; backing off reduces
    coherence traffic on the contended line. Used by every retry loop in
    the allocator and the lock substrate. *)

module Make (Rt : Mm_runtime.Runtime_intf.S) : sig
  type t

  val create : ?min_spins:int -> ?max_spins:int -> Rt.t -> t
  (** Fresh backoff state (not thread-safe: one per thread per loop).
      Defaults: 1 to 256 spins. *)

  val once : t -> unit
  (** Spin for the current delay and double it (saturating). *)

  val reset : t -> unit
  (** Return the delay to its minimum (call after a successful operation). *)

  val initial : int
  (** Allocation-free variant for hot retry loops: thread the spin count
      through the loop as a plain [int] seeded with [initial] instead of
      allocating a [t] per operation. Spin-for-spin identical to a
      default [create]/[once] sequence, so swapping one for the other
      cannot perturb a simulated schedule. *)

  val spin : Rt.t -> int -> int
  (** [spin rt spins] spins for [spins] and returns the next (doubled,
      saturating) count — the [once] step over the unboxed state. *)
end
