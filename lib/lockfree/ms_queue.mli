(** Michael & Scott's lock-free FIFO queue (PODC 1996 — the paper's
    reference [20]).

    Used for the per-size-class lists of partial superblocks (§3.2.6 of
    the paper, FIFO variant) and as the task queue of the
    Producer-consumer benchmark (§4.1). Nodes are garbage-collected OCaml
    records, which subsumes the "optimized memory management" the paper
    applies to this queue: node reuse — and hence ABA on node pointers —
    cannot occur while a thread still holds a reference. *)

module Make (Rt : Mm_runtime.Runtime_intf.S) : sig
  type 'a t

  val create : Rt.t -> 'a t

  val enqueue : 'a t -> 'a -> unit
  (** Enqueue at the tail; lock-free with the standard tail-swing helping. *)

  val dequeue : 'a t -> 'a option
  (** Dequeue from the head, or [None] if the queue is observed empty. *)

  val is_empty : 'a t -> bool

  val length : 'a t -> int
  (** Linear-time snapshot; only meaningful quiescently (tests). *)

  val to_list : 'a t -> 'a list
  (** Head-first snapshot; only meaningful quiescently (tests). *)
end
