(** Lock-free LIFO freelist over small integer ids with IBM tag-based ABA
    prevention (System/370 freelist, the paper's reference [8]).

    This is the alternative to hazard pointers for the descriptor freelist
    (see the paper §3.2.5 and reference [18]): the head word packs
    [(tag, id)] into one CAS-able immediate; every pop increments the tag,
    so a pop that raced with a free-and-reuse of the same id fails. The
    "next" links live outside the stack (in the descriptor records),
    supplied by the [get_next]/[set_next] callbacks.

    Ids must lie in [\[0, 2^24)]; the tag occupies the remaining 38 bits
    of the OCaml immediate, wrapping only after ~3·10^11 pops. *)

module Make (Rt : Mm_runtime.Runtime_intf.S) : sig
  type t

  val create :
    Rt.t ->
    ?push_label:string ->
    ?pop_label:string ->
    ?on_push_retry:(unit -> unit) ->
    ?on_pop_retry:(unit -> unit) ->
    get_next:(int -> int) ->
    set_next:(int -> int -> unit) ->
    unit ->
    t
  (** [get_next id] / [set_next id n] read and write the link cell of node
      [id]; a link value of [-1] means "no next". Reading the link of a node
      that was concurrently popped and reused must be safe (it is: links are
      plain int reads and the subsequent CAS fails on the tag).

      [push_label] / [pop_label] name the two CAS windows to the schedule
      explorer and the observability census (defaults:
      {!Lf_labels.tis_push_cas} / {!Lf_labels.tis_pop_cas}); a client
      embedding the stack in a larger structure (e.g. the warm-superblock
      cache) passes its own registry entries so faults and retries are
      attributed to the embedding site. [on_push_retry] / [on_pop_retry]
      run once per failed CAS, letting the client mirror the failure into
      its own striped retry counters (census equality, DESIGN.md §12). *)

  val push : t -> int -> unit
  val pop : t -> int option
  val is_empty : t -> bool

  val to_list : t -> int list
  (** Top-first snapshot; only meaningful quiescently (tests). *)
end
