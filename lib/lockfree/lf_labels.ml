let msq_enq_cas = "msq.enq_cas"
let msq_enq_swing = "msq.enq_swing"
let msq_deq_cas = "msq.deq_cas"
let msq_deq_help = "msq.deq_help"
let ts_push_cas = "ts.push_cas"
let ts_pop_cas = "ts.pop_cas"
let tis_push_cas = "tis.push_cas"
let tis_pop_cas = "tis.pop_cas"

let all =
  [
    msq_enq_cas;
    msq_enq_swing;
    msq_deq_cas;
    msq_deq_help;
    ts_push_cas;
    ts_pop_cas;
    tis_push_cas;
    tis_pop_cas;
  ]
