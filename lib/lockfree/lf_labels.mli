(** Instrumentation points inside the lock-free building blocks, the
    counterpart of [Mm_core.Labels] for this layer (same audit rule:
    every CAS retry loop carries a label between the read of the shared
    word and the CAS on it, so fault injection and [lib/check]'s schedule
    explorer can interpose in every read-modify-write window).

    Audit notes for structures without labels of their own:
    - {b Hazard pointers} have no CAS retry loops — protect/clear are
      plain atomic stores and scan reads a snapshot — so they need no
      labels; the descriptor-pool reuse path they trigger is labelled in
      [Mm_core] ([desc.push]).
    - {b Backoff} only spins ([cpu_relax]); no shared writes. *)

val msq_enq_cas : string
(** MS queue enqueue: before the tail.next link CAS. *)

val msq_enq_swing : string
(** MS queue enqueue: lagging tail observed, before the helping swing
    CAS. *)

val msq_deq_cas : string
(** MS queue dequeue: before the head swing CAS. *)

val msq_deq_help : string
(** MS queue dequeue: head = tail but non-empty, before the helping tail
    swing CAS. *)

val ts_push_cas : string
(** Treiber stack push: before the head CAS. *)

val ts_pop_cas : string
(** Treiber stack pop: before the head CAS. *)

val tis_push_cas : string
(** Tagged id stack push: before the head CAS. *)

val tis_pop_cas : string
(** Tagged id stack pop: before the tag-bumping head CAS. *)

val all : string list
