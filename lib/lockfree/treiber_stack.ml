module Make (Rt : Mm_runtime.Runtime_intf.S) = struct
  module Backoff = Backoff.Make (Rt)


  type 'a node = { value : 'a; next : 'a node option }

  type 'a t = { rt : Rt.t; head : 'a node option Rt.atomic }

  let create rt = { rt; head = Rt.Atomic.make rt None }

  let push t v =
    let b = Backoff.create t.rt in
    let rec go () =
      let old = Rt.Atomic.get t.head in
      let node = Some { value = v; next = old } in
      Rt.label t.rt Lf_labels.ts_push_cas;
      if not (Rt.Atomic.compare_and_set t.head old node) then begin
        Backoff.once b;
        go ()
      end
    in
    go ()

  let pop t =
    let b = Backoff.create t.rt in
    let rec go () =
      match Rt.Atomic.get t.head with
      | None -> None
      | Some n as old ->
          Rt.label t.rt Lf_labels.ts_pop_cas;
          if Rt.Atomic.compare_and_set t.head old n.next then Some n.value
          else begin
            Backoff.once b;
            go ()
          end
    in
    go ()

  let peek t =
    match Rt.Atomic.get t.head with None -> None | Some n -> Some n.value

  let is_empty t = Rt.Atomic.get t.head = None

  let to_list t =
    let rec go acc = function
      | None -> List.rev acc
      | Some n -> go (n.value :: acc) n.next
    in
    go [] (Rt.Atomic.get t.head)

  let length t = List.length (to_list t)
end
