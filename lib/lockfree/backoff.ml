module Make (Rt : Mm_runtime.Runtime_intf.S) = struct

  type t = {
    rt : Rt.t;
    min_spins : int;
    max_spins : int;
    mutable spins : int;
  }

  let create ?(min_spins = 1) ?(max_spins = 256) rt =
    if min_spins < 1 || max_spins < min_spins then
      invalid_arg "Backoff.create: need 1 <= min_spins <= max_spins";
    { rt; min_spins; max_spins; spins = min_spins }

  let once t =
    for _ = 1 to t.spins do
      Rt.cpu_relax t.rt
    done;
    if t.spins < t.max_spins then t.spins <- t.spins * 2

  let reset t = t.spins <- t.min_spins

  (* Unboxed mirror of the default [create]/[once] pair: same 1..256
     doubling, same [cpu_relax] sequence per retry, no record per
     operation. *)
  let initial = 1
  let max_default = 256

  let spin rt spins =
    for _ = 1 to spins do
      Rt.cpu_relax rt
    done;
    if spins < max_default then spins * 2 else spins
end
