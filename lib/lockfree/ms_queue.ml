module Make (Rt : Mm_runtime.Runtime_intf.S) = struct
  module Backoff = Backoff.Make (Rt)


  (* The dummy-headed Michael-Scott queue. [head] points at the dummy; the
     first real element is the dummy's successor. [value] is [None] only in
     nodes currently serving as the dummy. *)
  type 'a node = { mutable value : 'a option; next : 'a node option Rt.atomic }

  type 'a t = { rt : Rt.t; head : 'a node Rt.atomic; tail : 'a node Rt.atomic }

  let create rt =
    let dummy = { value = None; next = Rt.Atomic.make rt None } in
    { rt; head = Rt.Atomic.make rt dummy; tail = Rt.Atomic.make rt dummy }

  let enqueue t v =
    let node = { value = Some v; next = Rt.Atomic.make t.rt None } in
    let b = Backoff.create t.rt in
    let rec go () =
      let tail = Rt.Atomic.get t.tail in
      match Rt.Atomic.get tail.next with
      | None ->
          Rt.label t.rt Lf_labels.msq_enq_cas;
          if Rt.Atomic.compare_and_set tail.next None (Some node) then
            (* Linearized; swing the tail (failure means someone helped). *)
            ignore (Rt.Atomic.compare_and_set t.tail tail node)
          else begin
            Backoff.once b;
            go ()
          end
      | Some next ->
          (* Tail is lagging: help swing it, then retry. *)
          Rt.label t.rt Lf_labels.msq_enq_swing;
          ignore (Rt.Atomic.compare_and_set t.tail tail next);
          go ()
    in
    go ()

  let dequeue t =
    let b = Backoff.create t.rt in
    let rec go () =
      let head = Rt.Atomic.get t.head in
      let tail = Rt.Atomic.get t.tail in
      match Rt.Atomic.get head.next with
      | None -> None
      | Some next ->
          if head == tail then begin
            (* Non-empty but tail lags behind head's successor: help. *)
            Rt.label t.rt Lf_labels.msq_deq_help;
            ignore (Rt.Atomic.compare_and_set t.tail tail next);
            go ()
          end
          else begin
            Rt.label t.rt Lf_labels.msq_deq_cas;
            if Rt.Atomic.compare_and_set t.head head next then begin
              let v = next.value in
              (* [next] is the new dummy; drop its payload so the GC does
                 not retain dequeued values through the queue. *)
              next.value <- None;
              v
            end
            else begin
              Backoff.once b;
              go ()
            end
          end
    in
    go ()

  let is_empty t =
    let head = Rt.Atomic.get t.head in
    Rt.Atomic.get head.next = None

  let to_list t =
    let rec go acc node =
      match Rt.Atomic.get node.next with
      | None -> List.rev acc
      | Some n ->
          let acc = match n.value with Some v -> v :: acc | None -> acc in
          go acc n
    in
    go [] (Rt.Atomic.get t.head)

  let length t = List.length (to_list t)
end
