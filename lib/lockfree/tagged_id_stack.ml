module Make (Rt : Mm_runtime.Runtime_intf.S) = struct
  module Backoff = Backoff.Make (Rt)


  (* Head word: (tag lsl 25) lor (id + 1); id+1 = 0 encodes the empty
     stack. 24-bit ids, 38-bit tag. *)

  let id_bits = 24
  let id_mask = (1 lsl (id_bits + 1)) - 1
  let max_id = (1 lsl id_bits) - 1

  type t = {
    rt : Rt.t;
    head : int Rt.atomic;
    get_next : int -> int;
    set_next : int -> int -> unit;
    push_label : string;
    pop_label : string;
    on_push_retry : unit -> unit;
    on_pop_retry : unit -> unit;
  }

  let pack ~tag ~id = (tag lsl (id_bits + 1)) lor (id + 1)
  let unpack_id w = (w land id_mask) - 1
  let unpack_tag w = w lsr (id_bits + 1)

  let nop () = ()

  let create rt ?(push_label = Lf_labels.tis_push_cas)
      ?(pop_label = Lf_labels.tis_pop_cas) ?(on_push_retry = nop)
      ?(on_pop_retry = nop) ~get_next ~set_next () =
    {
      rt;
      head = Rt.Atomic.make rt (pack ~tag:0 ~id:(-1));
      get_next;
      set_next;
      push_label;
      pop_label;
      on_push_retry;
      on_pop_retry;
    }

  let push t id =
    if id < 0 || id > max_id then invalid_arg "Tagged_id_stack.push: bad id";
    let b = Backoff.create t.rt in
    let rec go () =
      let old = Rt.Atomic.get t.head in
      t.set_next id (unpack_id old);
      Rt.fence t.rt;
      (* Pushes reuse the old tag: only pops need to change it, because only
         a pop can complete erroneously under ABA. *)
      let desired = pack ~tag:(unpack_tag old) ~id in
      Rt.label t.rt t.push_label;
      if not (Rt.Atomic.compare_and_set t.head old desired) then begin
        t.on_push_retry ();
        Backoff.once b;
        go ()
      end
    in
    go ()

  let pop t =
    let b = Backoff.create t.rt in
    let rec go () =
      let old = Rt.Atomic.get t.head in
      let id = unpack_id old in
      if id < 0 then None
      else begin
        let next = t.get_next id in
        let desired = pack ~tag:(unpack_tag old + 1) ~id:next in
        Rt.label t.rt t.pop_label;
        if Rt.Atomic.compare_and_set t.head old desired then Some id
        else begin
          t.on_pop_retry ();
          Backoff.once b;
          go ()
        end
      end
    in
    go ()

  let is_empty t = unpack_id (Rt.Atomic.get t.head) < 0

  let to_list t =
    let rec go acc id =
      if id < 0 then List.rev acc else go (id :: acc) (t.get_next id)
    in
    go [] (unpack_id (Rt.Atomic.get t.head))
end
