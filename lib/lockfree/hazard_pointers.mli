(** Hazard pointers (Michael, TPDS 2004 — the paper's references [17,19]).

    Safe memory reclamation for lock-free structures whose nodes are
    recycled. The allocator's descriptor freelist recycles descriptors
    (Fig. 7 of the paper uses [SafeCAS], "i.e. ABA-safe"), so a popping
    thread publishes a hazard pointer to the candidate head before
    dereferencing it; retired descriptors are only handed back for reuse
    once a scan finds no hazard pointer to them.

    Each participating thread owns [k] hazard slots indexed by its dense
    runtime id ({!Mm_runtime.Rt.self}) and a private retirement list, so
    all operations except [scan] are contention-free. *)

module Make (Rt : Mm_runtime.Runtime_intf.S) : sig
  type 'a t

  val create : ?k:int -> ?scan_threshold:int -> Rt.t ->
    reuse:('a -> unit) -> 'a t
  (** [create rt ~reuse] builds a hazard-pointer domain whose [reuse] callback
      receives each retired node once it is provably unreferenced. [k] is the
      number of slots per thread (default 1); [scan_threshold] the retirement
      list length that triggers a scan (default [2 * max_threads * k]). *)

  val protect : 'a t -> slot:int -> 'a -> unit
  (** Publish a hazard pointer to the value. The caller must re-validate its
      source pointer after publishing (standard protocol). *)

  val clear : 'a t -> slot:int -> unit
  (** Retract the calling thread's hazard pointer in [slot]. *)

  val retire : 'a t -> 'a -> unit
  (** Declare the node removed from the data structure; it will be passed to
      [reuse] after some later scan proves no thread protects it. *)

  val scan : 'a t -> unit
  (** Force the calling thread's scan: every node it has retired that no
      current hazard pointer protects is released to [reuse]. *)

  val flush : 'a t -> unit
  (** Test/teardown helper: repeatedly scan the retirement lists of all
      threads (quiescence required) until everything unprotected is
      released. *)

  val retired_count : 'a t -> int
  (** Total nodes awaiting reuse across all threads (quiescent snapshot). *)

  val protected_count : 'a t -> int
  (** Number of currently published hazard pointers (quiescent snapshot). *)
end
