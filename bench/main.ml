(* Benchmark harness.

   Two parts:
   1. Bechamel microbenchmarks on the real runtime — the contention-free
      per-operation latencies behind the paper's Table 1 and §4.2.1 (one
      Test.make per measured row).
   2. The experiment catalogue (lib/harness): every table and figure of
      the paper's evaluation plus the DESIGN.md ablations, printed as
      paper-style tables with the paper's expectation alongside.

   MM_BENCH_FULL=1 selects the full parameter sets (slower);
   MM_BENCH_SEED overrides the simulation seed.
   MM_BENCH_JSON=path (or --json [path], default BENCH.json) also writes
   every bechamel estimate and experiment table as machine-readable JSON
   so bench trajectories are diffable across commits (BENCH_0.json is
   the seed of that trajectory; scripts/ci.sh archives the current
   run). *)

open Bechamel
open Toolkit
module Cfg = Mm_mem.Alloc_config
module I = Mm_mem.Alloc_intf
module Json = Mm_obs.Json

let real_cfg = Cfg.make ~nheaps:16 ()

let pair_test name =
  let inst = Mm_harness.Allocators.make name Mm_runtime.Rt.real real_cfg in
  Test.make
    ~name:(Printf.sprintf "malloc+free/%s" name)
    (Staged.stage (fun () -> I.instance_free inst (I.instance_malloc inst 8)))

let lock_test (label, kind) =
  let lock = Mm_baselines.Locks.create Mm_runtime.Rt.real kind in
  Test.make
    ~name:(Printf.sprintf "lock-pair/%s" label)
    (Staged.stage (fun () ->
         Mm_baselines.Locks.acquire lock;
         Mm_baselines.Locks.release lock))

let larson_test name =
  (* One Larson replacement step: free a random slot, allocate into it. *)
  let inst = Mm_harness.Allocators.make name Mm_runtime.Rt.real real_cfg in
  let rng = Mm_runtime.Prng.create 99 in
  let slots =
    Array.init 1024 (fun _ ->
        I.instance_malloc inst (Mm_runtime.Prng.int_in rng 16 80))
  in
  Test.make
    ~name:(Printf.sprintf "larson-step/%s" name)
    (Staged.stage (fun () ->
         let s = Mm_runtime.Prng.int rng 1024 in
         I.instance_free inst slots.(s);
         slots.(s) <- I.instance_malloc inst (Mm_runtime.Prng.int_in rng 16 80)))

let run_bechamel () =
  let tests =
    Test.make_grouped ~name:"latency"
      (List.map pair_test Mm_harness.Allocators.names
      @ List.map larson_test Mm_harness.Allocators.names
      @ List.map lock_test
          [
            ("tas-backoff", Cfg.Tas_backoff);
            ("ticket", Cfg.Ticket);
            ("pthread-like", Cfg.Pthread_like);
          ])
  in
  (* stabilize:false — GC stabilization between samples perturbs these
     sub-microsecond measurements far more than the GC itself does. *)
  let cfg_b =
    Benchmark.cfg ~limit:3000 ~quota:(Time.second 0.5) ~stabilize:false
      ~kde:None ()
  in
  let raw = Benchmark.all cfg_b [ Instance.monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let estimates =
    Hashtbl.fold
      (fun name ols acc ->
        let est =
          match Analyze.OLS.estimates ols with
          | Some (e :: _) -> Some e
          | _ -> None
        in
        (name, est) :: acc)
      results []
    |> List.sort compare
  in
  print_endline
    "== Bechamel: contention-free latency (real runtime, 1 thread) ==";
  List.iter print_endline
    (Mm_harness.Render.table ~header:[ "benchmark"; "ns/op" ]
       ~rows:
         (List.map
            (fun (name, est) ->
              [
                name;
                (match est with
                | Some e -> Printf.sprintf "%.1f ns" e
                | None -> "n/a");
              ])
            estimates));
  print_newline ();
  estimates

(* ------------------------------------------------------------------ *)
(* Machine-readable results. *)

let json_path () =
  match Sys.getenv_opt "MM_BENCH_JSON" with
  | Some p -> Some p
  | None ->
      let rec find = function
        | "--json" :: p :: _ when String.length p > 0 && p.[0] <> '-' ->
            Some p
        | [ "--json" ] | "--json" :: _ -> Some "BENCH.json"
        | _ :: rest -> find rest
        | [] -> None
      in
      find (Array.to_list Sys.argv)

let bench_json ~full ~seed estimates outcomes =
  Json.Obj
    [
      ("format", Json.Str "mm-bench/1");
      ("mode", Json.Str (if full then "full" else "quick"));
      ("seed", Json.Int seed);
      ( "bechamel",
        Json.Arr
          (List.map
             (fun (name, est) ->
               Json.Obj
                 [
                   ("name", Json.Str name);
                   ( "ns_per_op",
                     match est with
                     | Some e -> Json.Float e
                     | None -> Json.Null );
                 ])
             estimates) );
      ( "experiments",
        Json.Arr
          (List.map
             (fun (o : Mm_harness.Experiments.outcome) ->
               Json.Obj
                 [
                   ("id", Json.Str o.Mm_harness.Experiments.id);
                   ("title", Json.Str o.Mm_harness.Experiments.title);
                   ( "expectation",
                     Json.Str o.Mm_harness.Experiments.expectation );
                   ( "lines",
                     Json.Arr
                       (List.map
                          (fun l -> Json.Str l)
                          o.Mm_harness.Experiments.lines) );
                   (* Raw OS-traffic counters for the lock-free
                      allocator (the per-1k census line's inputs), so
                      mmap/munmap trajectories diff cleanly. *)
                   ( "os",
                     Json.Obj
                       (List.map
                          (fun (k, v) -> (k, Json.Int v))
                          (Mm_harness.Experiments.os_census
                             o.Mm_harness.Experiments.id)) );
                 ])
             outcomes) );
    ]

let () =
  let full = Sys.getenv_opt "MM_BENCH_FULL" = Some "1" in
  let seed =
    match Sys.getenv_opt "MM_BENCH_SEED" with
    | Some s -> (try int_of_string s with _ -> 1)
    | None -> 1
  in
  let mode =
    if full then Mm_harness.Experiments.Full else Mm_harness.Experiments.Quick
  in
  Printf.printf "mmalloc bench harness (%s mode, seed %d)\n\n%!"
    (if full then "full" else "quick")
    seed;
  let estimates = run_bechamel () in
  let outcomes =
    List.map
      (fun (id, _) ->
        let o = Mm_harness.Experiments.run id ~mode ~seed in
        Format.printf "%a%!" Mm_harness.Experiments.print_outcome o;
        o)
      Mm_harness.Experiments.catalogue
  in
  match json_path () with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      output_string oc (Json.to_string (bench_json ~full ~seed estimates outcomes));
      output_char oc '\n';
      close_out oc;
      Printf.printf "results written to %s\n%!" path
