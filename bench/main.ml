(* Benchmark harness.

   Two parts:
   1. Bechamel microbenchmarks on the real runtime — the contention-free
      per-operation latencies behind the paper's Table 1 and §4.2.1 (one
      Test.make per measured row).
   2. The experiment catalogue (lib/harness): every table and figure of
      the paper's evaluation plus the DESIGN.md ablations, printed as
      paper-style tables with the paper's expectation alongside.

   MM_BENCH_FULL=1 selects the full parameter sets (slower);
   MM_BENCH_SEED overrides the simulation seed.
   MM_BENCH_JSON=path (or --json [path], default BENCH.json) also writes
   every bechamel estimate and experiment table as machine-readable JSON
   so bench trajectories are diffable across commits (BENCH_0.json is
   the seed of that trajectory; scripts/ci.sh archives the current
   run).
   --max-ns-per-op NAME:BOUND (repeatable) turns the run into a latency
   gate: exit 2 if the named bechamel estimate exceeds BOUND ns;
   --gate-only additionally skips the experiment catalogue (the CI
   real-runtime regression gate). *)

open Bechamel
open Toolkit
module Cfg = Mm_mem.Alloc_config
module I = Mm_mem.Alloc_intf
module Json = Mm_obs.Json

let real_cfg = Cfg.make ~nheaps:16 ()

let pair_test name =
  let inst = Mm_harness.Allocators.make name Mm_runtime.Rt.real real_cfg in
  Test.make
    ~name:(Printf.sprintf "malloc+free/%s" name)
    (Staged.stage (fun () -> I.instance_free inst (I.instance_malloc inst 8)))

module Locks_real = Mm_baselines.Locks.Make (Mm_runtime.Real_rt)

let lock_test (label, kind) =
  let lock = Locks_real.create () kind in
  Test.make
    ~name:(Printf.sprintf "lock-pair/%s" label)
    (Staged.stage (fun () ->
         Locks_real.acquire lock;
         Locks_real.release lock))

(* Dispatch-overhead microbench (DESIGN.md §18): the same get+CAS
   increment against (a) Stdlib.Atomic directly — the floor, (b) the
   value-level dispatched runtime [Mm_runtime.Rt] — what every hot-path
   operation paid before the functorization, and (c) the specialized
   [Real_rt] instantiation — what the allocator stack pays now. (b)-(a)
   is the cost the old representation added per atomic op (boxed atomic
   variant + match + unconditional hook plumbing); (c)-(a) is the
   residue left by zero-dispatch specialization. *)
let dispatch_tests () =
  let raw = Stdlib.Atomic.make 0 in
  let vrt = Mm_runtime.Rt.real in
  let disp = Mm_runtime.Rt.Atomic.make vrt 0 in
  let spec = Mm_runtime.Real_rt.Atomic.make () 0 in
  [
    Test.make ~name:"cas/raw"
      (Staged.stage (fun () ->
           let v = Stdlib.Atomic.get raw in
           ignore (Stdlib.Atomic.compare_and_set raw v (v + 1))));
    Test.make ~name:"cas/dispatched"
      (Staged.stage (fun () ->
           let v = Mm_runtime.Rt.Atomic.get disp in
           ignore (Mm_runtime.Rt.Atomic.compare_and_set disp v (v + 1))));
    Test.make ~name:"cas/specialized"
      (Staged.stage (fun () ->
           let v = Mm_runtime.Real_rt.Atomic.get spec in
           ignore (Mm_runtime.Real_rt.Atomic.compare_and_set spec v (v + 1))));
  ]

let larson_test name =
  (* One Larson replacement step: free a random slot, allocate into it. *)
  let inst = Mm_harness.Allocators.make name Mm_runtime.Rt.real real_cfg in
  let rng = Mm_runtime.Prng.create 99 in
  let slots =
    Array.init 1024 (fun _ ->
        I.instance_malloc inst (Mm_runtime.Prng.int_in rng 16 80))
  in
  Test.make
    ~name:(Printf.sprintf "larson-step/%s" name)
    (Staged.stage (fun () ->
         let s = Mm_runtime.Prng.int rng 1024 in
         I.instance_free inst slots.(s);
         slots.(s) <- I.instance_malloc inst (Mm_runtime.Prng.int_in rng 16 80)))

let run_bechamel () =
  let groups =
    [
      Test.make_grouped ~name:"latency"
        (List.map pair_test Mm_harness.Allocators.names
        @ List.map larson_test Mm_harness.Allocators.names
        @ List.map lock_test
            [
              ("tas-backoff", Cfg.Tas_backoff);
              ("ticket", Cfg.Ticket);
              ("pthread-like", Cfg.Pthread_like);
            ]);
      Test.make_grouped ~name:"dispatch" (dispatch_tests ());
    ]
  in
  (* stabilize:false — GC stabilization between samples perturbs these
     sub-microsecond measurements far more than the GC itself does. *)
  let cfg_b =
    Benchmark.cfg ~limit:3000 ~quota:(Time.second 0.5) ~stabilize:false
      ~kde:None ()
  in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let estimates =
    List.concat_map
      (fun tests ->
        let raw = Benchmark.all cfg_b [ Instance.monotonic_clock ] tests in
        let results = Analyze.all ols Instance.monotonic_clock raw in
        Hashtbl.fold
          (fun name ols acc ->
            let est =
              match Analyze.OLS.estimates ols with
              | Some (e :: _) -> Some e
              | _ -> None
            in
            (name, est) :: acc)
          results [])
      groups
    |> List.sort compare
  in
  print_endline
    "== Bechamel: contention-free latency (real runtime, 1 thread) ==";
  List.iter print_endline
    (Mm_harness.Render.table ~header:[ "benchmark"; "ns/op" ]
       ~rows:
         (List.map
            (fun (name, est) ->
              [
                name;
                (match est with
                | Some e -> Printf.sprintf "%.1f ns" e
                | None -> "n/a");
              ])
            estimates));
  print_newline ();
  estimates

(* ------------------------------------------------------------------ *)
(* Contended throughput (simulated, deterministic): 16 threads on ONE
   shared processor heap — the shape where per-superblock anchor
   contention dominates — for every comparison allocator plus the
   owner-biased ablation ("new-ob", DESIGN.md §19), under an
   owner-local workload (threadtest) and a remote-free one (larson). *)

let contended_names =
  match Mm_harness.Allocators.names with
  | "new" :: rest -> "new" :: "new-ob" :: rest
  | l -> l @ [ "new-ob" ]

let run_contended ~seed =
  let cfg = Cfg.make ~nheaps:1 () in
  let workloads =
    [
      ( "threadtest x16",
        fun inst ~threads ->
          Mm_workloads.Threadtest.run inst ~threads
            Mm_harness.Traced.threadtest_quick );
      ( "larson x16",
        fun inst ~threads ->
          Mm_workloads.Larson.run inst ~threads
            { Mm_workloads.Larson.quick with Mm_workloads.Larson.rounds = 2_000 }
      );
    ]
  in
  let rows =
    List.concat_map
      (fun (wname, wl) ->
        List.map
          (fun name ->
            let sim =
              Mm_runtime.Sim.create ~cpus:16 ~seed
                ~max_cycles:100_000_000_000 ()
            in
            let rt = Mm_runtime.Rt.simulated sim in
            let inst = Mm_harness.Allocators.make name rt cfg in
            let m = wl inst ~threads:16 in
            (wname, name, m.Mm_workloads.Metrics.throughput))
          contended_names)
      workloads
  in
  print_endline
    "== Contended throughput (simulated, 16 threads, ONE shared heap) ==";
  List.iter print_endline
    (Mm_harness.Render.table
       ~header:[ "workload"; "allocator"; "throughput" ]
       ~rows:
         (List.map
            (fun (w, a, thr) ->
              [ w; a; Mm_harness.Render.fmt_throughput thr ])
            rows));
  print_newline ();
  rows

(* ------------------------------------------------------------------ *)
(* Machine-readable results. *)

let json_path () =
  match Sys.getenv_opt "MM_BENCH_JSON" with
  | Some p -> Some p
  | None ->
      let rec find = function
        | "--json" :: p :: _ when String.length p > 0 && p.[0] <> '-' ->
            Some p
        | [ "--json" ] | "--json" :: _ -> Some "BENCH.json"
        | _ :: rest -> find rest
        | [] -> None
      in
      find (Array.to_list Sys.argv)

let bench_json ~full ~seed estimates contended outcomes =
  Json.Obj
    [
      ("format", Json.Str "mm-bench/1");
      ("mode", Json.Str (if full then "full" else "quick"));
      ("seed", Json.Int seed);
      ( "bechamel",
        Json.Arr
          (List.map
             (fun (name, est) ->
               Json.Obj
                 [
                   ("name", Json.Str name);
                   ( "ns_per_op",
                     match est with
                     | Some e -> Json.Float e
                     | None -> Json.Null );
                 ])
             estimates) );
      ( "contended",
        Json.Arr
          (List.map
             (fun (w, a, thr) ->
               Json.Obj
                 [
                   ("workload", Json.Str w);
                   ("allocator", Json.Str a);
                   ("throughput", Json.Float thr);
                 ])
             contended) );
      ( "experiments",
        Json.Arr
          (List.map
             (fun (o : Mm_harness.Experiments.outcome) ->
               Json.Obj
                 [
                   ("id", Json.Str o.Mm_harness.Experiments.id);
                   ("title", Json.Str o.Mm_harness.Experiments.title);
                   ("runtime", Json.Str o.Mm_harness.Experiments.runtime);
                   ( "expectation",
                     Json.Str o.Mm_harness.Experiments.expectation );
                   ( "lines",
                     Json.Arr
                       (List.map
                          (fun l -> Json.Str l)
                          o.Mm_harness.Experiments.lines) );
                   (* Raw OS-traffic counters for the lock-free
                      allocator (the per-1k census line's inputs), so
                      mmap/munmap trajectories diff cleanly. *)
                   ( "os",
                     Json.Obj
                       (List.map
                          (fun (k, v) -> (k, Json.Int v))
                          (Mm_harness.Experiments.os_census
                             o.Mm_harness.Experiments.id)) );
                 ])
             outcomes) );
    ]

(* ------------------------------------------------------------------ *)
(* Latency gates (CI): --max-ns-per-op NAME:BOUND (repeatable) fails
   the run (exit 2) when the named bechamel estimate exceeds BOUND
   nanoseconds; --gate-only skips the experiment catalogue, so the CI
   real-runtime gate stays fast. NAME matches a full bechamel test name
   or any "/"-separated suffix of one ("malloc+free/new-cached"). *)

let gates () =
  let rec parse = function
    | "--max-ns-per-op" :: spec :: rest -> (
        match String.rindex_opt spec ':' with
        | Some i ->
            let name = String.sub spec 0 i
            and bound = String.sub spec (i + 1) (String.length spec - i - 1) in
            (match float_of_string_opt bound with
            | Some b -> (name, b) :: parse rest
            | None ->
                Printf.eprintf "bench: bad --max-ns-per-op bound %S\n%!" spec;
                exit 1)
        | None ->
            Printf.eprintf
              "bench: --max-ns-per-op wants NAME:BOUND, got %S\n%!" spec;
            exit 1)
    | _ :: rest -> parse rest
    | [] -> []
  in
  parse (Array.to_list Sys.argv)

let gate_only () = Array.exists (( = ) "--gate-only") Sys.argv

let apply_gates gates estimates =
  let matches name (ename, _) =
    ename = name || String.ends_with ~suffix:("/" ^ name) ename
  in
  let failed =
    List.filter_map
      (fun (name, bound) ->
        match List.find_opt (matches name) estimates with
        | None | Some (_, None) ->
            Some (Printf.sprintf "%s: no estimate (bound %.1f ns)" name bound)
        | Some (ename, Some e) ->
            if e > bound then
              Some
                (Printf.sprintf "%s: %.1f ns/op exceeds the %.1f ns gate"
                   ename e bound)
            else begin
              Printf.printf "gate ok: %s at %.1f ns/op (bound %.1f ns)\n%!"
                ename e bound;
              None
            end)
      gates
  in
  if failed <> [] then begin
    List.iter (fun m -> Printf.eprintf "gate FAILED: %s\n%!" m) failed;
    exit 2
  end

let () =
  let full = Sys.getenv_opt "MM_BENCH_FULL" = Some "1" in
  let seed =
    match Sys.getenv_opt "MM_BENCH_SEED" with
    | Some s -> (try int_of_string s with _ -> 1)
    | None -> 1
  in
  let mode =
    if full then Mm_harness.Experiments.Full else Mm_harness.Experiments.Quick
  in
  Printf.printf "mmalloc bench harness (%s mode, seed %d)\n\n%!"
    (if full then "full" else "quick")
    seed;
  let estimates = run_bechamel () in
  apply_gates (gates ()) estimates;
  if gate_only () then exit 0;
  let contended = run_contended ~seed in
  let outcomes =
    List.map
      (fun (id, _) ->
        let o = Mm_harness.Experiments.run id ~mode ~seed in
        Format.printf "%a%!" Mm_harness.Experiments.print_outcome o;
        o)
      Mm_harness.Experiments.catalogue
  in
  match json_path () with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      output_string oc
        (Json.to_string (bench_json ~full ~seed estimates contended outcomes));
      output_char oc '\n';
      close_out oc;
      Printf.printf "results written to %s\n%!" path
