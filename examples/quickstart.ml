(* Quickstart: the lock-free allocator as a library.

   Creates a heap specialized to the real OCaml-multicore runtime
   (compile-time instantiation, DESIGN.md §18), allocates and frees
   blocks from several domains, stores data in the blocks through the
   memory substrate, and prints space/OS statistics.

     dune exec examples/quickstart.exe
*)

open Mm_runtime
module A = Mm_core.Lf_alloc.Make (Real_rt)
module Store = Mm_mem.Store.Make (Real_rt)
module Space = Mm_mem.Space.Make (Real_rt)

let () =
  let heap = A.create () (Mm_mem.Alloc_config.make ~nheaps:4 ()) in
  let store = A.store heap in

  (* Single-threaded use: allocate, write, read, free. *)
  let a = A.malloc heap 24 in
  let b = A.malloc heap 24 in
  Store.write_word store a 42;
  Store.write_word store b 1337;
  Printf.printf "block a @%#x holds %d; block b @%#x holds %d\n" a
    (Store.read_word store a) b
    (Store.read_word store b);
  A.free heap a;
  A.free heap b;

  (* Concurrent use: 4 domains hammer the same heap; every operation is
     lock-free, so no domain ever blocks another. *)
  let ops_per_domain = 50_000 in
  let body tid =
    let rng = Prng.create (tid + 1) in
    let slots = Array.make 64 0 in
    for i = 0 to (ops_per_domain - 1) do
      let s = i mod 64 in
      if slots.(s) <> 0 then A.free heap slots.(s);
      slots.(s) <- A.malloc heap (Prng.int_in rng 8 200)
    done;
    Array.iter (fun a -> if a <> 0 then A.free heap a) slots
  in
  let r = Rt.parallel_run Rt.real (Array.make 4 body) in
  let mallocs, frees = A.op_counts heap in
  Printf.printf "4 domains: %d mallocs / %d frees in %.3fs\n" mallocs frees
    r.Rt.elapsed;

  (* The rest of the C API surface: calloc / realloc / aligned_alloc,
     over the runtime-erased instance packaging of the same heap. *)
  let inst = A.instance Rt.real heap in
  let z = Mm_mem.Alloc_ops.calloc inst ~count:16 ~size:8 in
  assert (Store.read_word store z = 0);
  let z = Mm_mem.Alloc_ops.realloc inst z 4_096 in
  let al = Mm_mem.Alloc_ops.aligned_alloc inst ~align:256 100 in
  Printf.printf "realloc'd block has %d usable bytes; aligned block @%#x\n"
    (A.usable_size heap z) al;
  assert (al mod 256 = 0);
  A.free heap z;
  A.free heap al;

  (* The heap is quiescent again: its structural invariants must hold. *)
  A.check_invariants heap;
  Format.printf "%a" A.pp_heap_summary heap;
  let s = Space.read (Store.space store) in
  let os = Store.os_stats store in
  Printf.printf
    "space: %d KB mapped now, %d KB at peak; %d mmaps, %d munmaps\n"
    (s.Mm_mem.Space.mapped / 1024)
    (s.Mm_mem.Space.mapped_peak / 1024)
    os.Mm_mem.Store.mmap_calls os.Mm_mem.Store.munmap_calls;
  print_endline "quickstart OK"
