(* Rendering and the experiment harness. *)

module R = Mm_harness.Render
module E = Mm_harness.Experiments
open Util

let table_shape () =
  let lines =
    R.table ~header:[ "a"; "bb" ] ~rows:[ [ "1"; "2" ]; [ "333"; "4" ] ]
  in
  Alcotest.(check int) "header + separator + rows" 4 (List.length lines);
  (* All lines equally wide (fixed-width columns). *)
  let widths = List.map String.length lines in
  Alcotest.(check bool) "aligned" true
    (List.for_all (fun w -> w = List.hd widths) widths)

let formatting () =
  Alcotest.(check string) "speedup" "2.50" (R.fmt_speedup 2.5);
  Alcotest.(check string) "throughput M" "3.00M/s" (R.fmt_throughput 3e6);
  Alcotest.(check string) "throughput k" "1.5k/s" (R.fmt_throughput 1500.0);
  Alcotest.(check string) "throughput raw" "500/s" (R.fmt_throughput 500.0);
  Alcotest.(check string) "ns" "120ns" (R.fmt_ns 120.0);
  Alcotest.(check string) "KB" "4KB" (R.fmt_bytes 4096);
  Alcotest.(check string) "MB" "2.0MB" (R.fmt_bytes (2 * 1024 * 1024))

let series_shape () =
  let lines =
    R.series ~col_title:"alloc" ~cols:[ "x"; "y" ] ~row_title:"t"
      ~rows:[ ("1", [ 1.0; 2.0 ]); ("2", [ 3.0; 4.0 ]) ]
  in
  Alcotest.(check int) "lines" 4 (List.length lines)

let catalogue_complete () =
  let ids = List.map fst E.catalogue in
  Alcotest.(check int) "unique ids" (List.length ids)
    (List.length (List.sort_uniq compare ids));
  (* Every DESIGN.md experiment is present. *)
  List.iter
    (fun id ->
      Alcotest.(check bool) ("catalogue has " ^ id) true (List.mem id ids))
    [
      "table1"; "latency"; "fig8a"; "fig8b"; "fig8c"; "fig8d"; "fig8e";
      "fig8f"; "fig8g"; "fig8h"; "space"; "uniproc"; "ablation-partial";
      "ablation-desc"; "ablation-credits"; "ablation-locks"; "ablation-hyper";
      "preempt"; "extra-workloads"; "tail-latency"; "contention-sites"; "kill";
    ]

let unknown_rejected () =
  Alcotest.(check bool) "unknown id" true
    (match E.run "nonsense" ~mode:E.Quick ~seed:1 with
    | _ -> false
    | exception Invalid_argument _ -> true)

let kill_experiment_runs () =
  let o = E.run "kill" ~mode:E.Quick ~seed:1 in
  Alcotest.(check string) "id" "kill" o.E.id;
  Alcotest.(check bool) "has expectation" true
    (String.length o.E.expectation > 0);
  Alcotest.(check bool) "has result lines" true (List.length o.E.lines > 2);
  (* The experiment's substance: the lock-free rows survive, the
     lock-based libc row does not. *)
  let body = String.concat "\n" o.E.lines in
  let contains sub =
    let n = String.length sub and m = String.length body in
    let rec go i = i + n <= m && (String.sub body i n = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "new survives" true (contains "survivors completed");
  Alcotest.(check bool) "libc stuck" true
    (contains "LIVELOCK" || contains "DEADLOCK")

let ablation_hyper_runs () =
  let o = E.run "ablation-hyper" ~mode:E.Quick ~seed:1 in
  Alcotest.(check bool) "renders" true (List.length o.E.lines >= 4)

let cases =
  [
    case "table shape" table_shape;
    case "formatting" formatting;
    case "series shape" series_shape;
    case "catalogue complete" catalogue_complete;
    case "unknown id rejected" unknown_rejected;
    slow_case "kill experiment end-to-end" kill_experiment_runs;
    slow_case "hyper ablation end-to-end" ablation_hyper_runs;
  ]
