(* Trace generation, serialization and replay. *)

open Mm_runtime
module Tr = Mm_workloads.Trace
module I = Mm_mem.Alloc_intf
open Util

let well_formed (t : Tr.t) =
  (* Every id malloc'd exactly once, freed exactly once, free after
     malloc in logical order. *)
  let seen_m = Array.make t.Tr.mallocs false in
  let seen_f = Array.make t.Tr.mallocs false in
  Array.iter
    (fun e ->
      match e with
      | Tr.Malloc { id; size; thread } ->
          if seen_m.(id) then Alcotest.failf "id %d malloc'd twice" id;
          seen_m.(id) <- true;
          if size < 0 then Alcotest.fail "negative size";
          if thread < 0 || thread >= t.Tr.threads then
            Alcotest.fail "bad thread"
      | Tr.Free { id; thread } ->
          if not seen_m.(id) then Alcotest.failf "id %d freed before malloc" id;
          if seen_f.(id) then Alcotest.failf "id %d freed twice" id;
          seen_f.(id) <- true;
          if thread < 0 || thread >= t.Tr.threads then
            Alcotest.fail "bad thread")
    t.Tr.events;
  Array.iteri
    (fun id f -> if not f then Alcotest.failf "id %d never freed" id)
    seen_f

let generation () =
  let t = Tr.generate ~seed:3 ~threads:4 ~ops:1_000 () in
  well_formed t;
  Alcotest.(check bool) "has events" true (Array.length t.Tr.events > 1_000);
  Alcotest.(check bool) "live peak sane" true (Tr.max_live t > 10);
  Alcotest.(check bool) "bytes accumulated" true (Tr.total_bytes t > 0)

let deterministic () =
  let a = Tr.generate ~seed:5 () and b = Tr.generate ~seed:5 () in
  Alcotest.(check bool) "same seed, same trace" true (a = b);
  let c = Tr.generate ~seed:6 () in
  Alcotest.(check bool) "different seed differs" true (a <> c)

let serialization_roundtrip =
  qcheck ~count:30 "to_string/of_string roundtrip"
    QCheck2.Gen.(int_range 1 5_000)
    (fun seed ->
      let t = Tr.generate ~seed ~ops:200 () in
      Tr.of_string (Tr.to_string t) = t)

let of_string_rejects () =
  Alcotest.(check bool) "garbage rejected" true
    (match Tr.of_string "nonsense" with
    | _ -> false
    | exception Failure _ -> true)

let replay_all_allocators () =
  let trace = Tr.generate ~seed:7 ~threads:4 ~ops:800 () in
  List.iter
    (fun name ->
      let s = sim ~cpus:4 () in
      let inst = instance name (Rt.simulated s) in
      let m = Tr.run inst trace in
      Alcotest.(check int) "all events replayed"
        (Array.length trace.Tr.events)
        m.Mm_workloads.Metrics.ops;
      I.instance_check inst)
    all_allocators

let replay_real_runtime () =
  let trace = Tr.generate ~seed:11 ~threads:4 ~ops:1_500 () in
  let inst = instance "new" Rt.real in
  ignore (Tr.run inst trace);
  I.instance_check inst

let cross_thread_waits () =
  (* With a 100% cross-thread trace the replay exercises the
     publish/wait protocol hard. *)
  let trace =
    Tr.generate ~seed:13 ~threads:4 ~ops:600 ~cross_thread_fraction:1.0 ()
  in
  let s = sim ~cpus:4 () in
  let inst = instance "new" (Rt.simulated s) in
  ignore (Tr.run inst trace);
  I.instance_check inst

let cases =
  [
    case "generation well-formed" generation;
    case "generation deterministic" deterministic;
    serialization_roundtrip;
    case "of_string rejects garbage" of_string_rejects;
    case "replay on all allocators (sim)" replay_all_allocators;
    case "replay on real runtime" replay_real_runtime;
    case "fully cross-thread replay" cross_thread_waits;
  ]
