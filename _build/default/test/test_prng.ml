open Mm_runtime
open Util

let determinism () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 1000 do
    Alcotest.(check int64) "same stream" (Prng.next_int64 a)
      (Prng.next_int64 b)
  done

let seeds_differ () =
  let a = Prng.create 1 and b = Prng.create 2 in
  let same = ref 0 in
  for _ = 1 to 100 do
    if Prng.next_int64 a = Prng.next_int64 b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 5)

let copy_independent () =
  let a = Prng.create 7 in
  ignore (Prng.next a);
  let b = Prng.copy a in
  let xs = List.init 10 (fun _ -> Prng.next a) in
  let ys = List.init 10 (fun _ -> Prng.next b) in
  Alcotest.(check (list int)) "copy continues identically" xs ys

let split_differs () =
  let a = Prng.create 9 in
  let b = Prng.split a in
  let same = ref 0 in
  for _ = 1 to 100 do
    if Prng.next a = Prng.next b then incr same
  done;
  Alcotest.(check bool) "split stream independent" true (!same < 5)

let int_bounds =
  qcheck "int within bound"
    QCheck2.Gen.(pair (int_range 0 1000) (int_range 1 10_000))
    (fun (seed, bound) ->
      let g = Prng.create seed in
      let v = Prng.int g bound in
      v >= 0 && v < bound)

let int_in_bounds =
  qcheck "int_in within range"
    QCheck2.Gen.(triple (int_range 0 1000) (int_range (-50) 50) (int_range 0 100))
    (fun (seed, lo, span) ->
      let g = Prng.create seed in
      let v = Prng.int_in g lo (lo + span) in
      v >= lo && v <= lo + span)

let float_bounds =
  qcheck "float within bound" QCheck2.Gen.(int_range 0 1000) (fun seed ->
      let g = Prng.create seed in
      let v = Prng.float g 3.5 in
      v >= 0.0 && v < 3.5)

let shuffle_permutes =
  qcheck "shuffle is a permutation"
    QCheck2.Gen.(pair (int_range 0 1000) (int_range 0 50))
    (fun (seed, n) ->
      let g = Prng.create seed in
      let a = Array.init n (fun i -> i) in
      Prng.shuffle g a;
      List.sort compare (Array.to_list a) = List.init n (fun i -> i))

let int_rejects_bad_bound () =
  let g = Prng.create 1 in
  Alcotest.check_raises "bound 0" (Invalid_argument
    "Prng.int: bound must be positive") (fun () -> ignore (Prng.int g 0))

let rough_uniformity () =
  (* 10k draws over 10 buckets: each bucket within 3x of expectation. *)
  let g = Prng.create 123 in
  let buckets = Array.make 10 0 in
  for _ = 1 to 10_000 do
    let v = Prng.int g 10 in
    buckets.(v) <- buckets.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      if c < 700 || c > 1400 then
        Alcotest.failf "bucket %d has suspicious count %d" i c)
    buckets

let cases =
  [
    case "determinism" determinism;
    case "seeds differ" seeds_differ;
    case "copy independent" copy_independent;
    case "split differs" split_differs;
    case "int rejects bad bound" int_rejects_bad_bound;
    case "rough uniformity" rough_uniformity;
    int_bounds;
    int_in_bounds;
    float_bounds;
    shuffle_permutes;
  ]
