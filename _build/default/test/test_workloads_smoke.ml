(* Temporary exploration smoke for workloads; superseded by the full
   suites later. *)

open Mm_runtime
module Cfg = Mm_mem.Alloc_config
module W = Mm_workloads

let run_all () =
  List.iter
    (fun name ->
      let sim = Sim.create ~cpus:8 ~seed:3 ~max_cycles:2_000_000_000 () in
      let rt = Rt.simulated sim in
      let inst = Mm_harness.Allocators.make name rt (Cfg.make ()) in
      let m =
        W.Linux_scalability.run inst ~threads:4
          { W.Linux_scalability.quick with pairs = 500 }
      in
      Format.printf "%a@." W.Metrics.pp m;
      let m2 = W.Larson.run inst ~threads:4 W.Larson.quick in
      Format.printf "%a@." W.Metrics.pp m2;
      let m3 =
        W.Producer_consumer.run inst ~threads:4 W.Producer_consumer.quick
      in
      Format.printf "%a@." W.Metrics.pp m3;
      Mm_mem.Alloc_intf.instance_check inst)
    Mm_harness.Allocators.names

let cases = [ Alcotest.test_case "workloads x allocators (sim)" `Quick run_all ]
