(* The runtime abstraction over both implementations. *)

open Mm_runtime
open Util

let both name f =
  [
    case (name ^ " (real)") (fun () -> f Rt.real);
    case (name ^ " (sim)") (fun () ->
        let s = sim () in
        let rt = Rt.simulated s in
        (* Exercise the function inside a run so sim steps are legal. *)
        ignore (Sim.run s [| (fun _ -> f rt) |]));
  ]

let atomic_semantics rt =
  let a = Rt.Atomic.make rt 10 in
  Alcotest.(check int) "get" 10 (Rt.Atomic.get a);
  Rt.Atomic.set a 42;
  Alcotest.(check int) "set" 42 (Rt.Atomic.get a);
  Alcotest.(check bool) "cas success" true (Rt.Atomic.compare_and_set a 42 43);
  Alcotest.(check bool) "cas failure" false (Rt.Atomic.compare_and_set a 42 44);
  Alcotest.(check int) "cas result" 43 (Rt.Atomic.get a);
  Alcotest.(check int) "faa returns old" 43 (Rt.Atomic.fetch_and_add a 7);
  Alcotest.(check int) "faa applied" 50 (Rt.Atomic.get a);
  Rt.Atomic.incr a;
  Alcotest.(check int) "incr" 51 (Rt.Atomic.get a)

let atomic_boxed rt =
  (* CAS on boxed values uses physical identity. *)
  let x = ref 1 and y = ref 2 in
  let a = Rt.Atomic.make rt x in
  Alcotest.(check bool) "physical cas ok" true
    (Rt.Atomic.compare_and_set a x y);
  Alcotest.(check bool) "stale cas fails" false
    (Rt.Atomic.compare_and_set a x y)

let word_access rt =
  let b = Bytes.make 64 '\000' in
  Rt.write_word rt b 8 ~line:1 123456;
  Alcotest.(check int) "word roundtrip" 123456 (Rt.read_word rt b 8 ~line:1);
  Rt.write_word rt b 8 ~line:1 (-1);
  Alcotest.(check bool) "negative words truncate to 64-bit" true
    (Rt.read_word rt b 8 ~line:1 <> 0)

let control_noops rt =
  Rt.fence rt;
  Rt.cpu_relax rt;
  Rt.work rt 100;
  Rt.yield rt;
  Rt.syscall rt;
  Rt.touch rt ~line:5 ~write:true;
  Rt.touch_batch rt ~line:5 ~write:false ~count:10;
  Rt.label rt "anything"

let fresh_lines () =
  let a = Rt.fresh_line () and b = Rt.fresh_line () in
  Alcotest.(check bool) "distinct" true (a <> b);
  Alcotest.(check bool) "negative (never a memory line)" true (a < 0 && b < 0)

let real_parallel_ids () =
  let n = 8 in
  let ids = Array.make n (-1) in
  ignore
    (Rt.parallel_run Rt.real
       (Array.init n (fun i -> fun arg ->
            ids.(i) <- Rt.self Rt.real;
            assert (arg = i))));
  Array.iteri (fun i v -> Alcotest.(check int) "dense id" i v) ids

let real_parallel_exn () =
  Alcotest.check_raises "exception propagates" Exit (fun () ->
      ignore
        (Rt.parallel_run Rt.real [| (fun _ -> ()); (fun _ -> raise Exit) |]))

let parallel_too_many () =
  Alcotest.(check bool) "max_threads guard" true
    (match
       Rt.parallel_run Rt.real
         (Array.make (Rt.max_threads + 1) (fun _ -> ()))
     with
    | _ -> false
    | exception Invalid_argument _ -> true)

let atomics_usable_outside_sim () =
  (* Setup/teardown code runs outside Sim.run; atomics must not perform
     effects there. *)
  let s = sim () in
  let rt = Rt.simulated s in
  let a = Rt.Atomic.make rt 5 in
  Rt.Atomic.set a 6;
  Alcotest.(check int) "outside-run access" 6 (Rt.Atomic.get a);
  Rt.fence rt;
  Rt.work rt 10;
  Alcotest.(check int) "self outside run" 0 (Rt.self rt)

let now_monotone_real () =
  let t0 = Rt.now Rt.real in
  Rt.work Rt.real 100_000;
  Alcotest.(check bool) "wall clock advances" true (Rt.now Rt.real >= t0)

let now_virtual_sim () =
  let s = sim () in
  let rt = Rt.simulated s in
  let observed = ref 0.0 in
  ignore
    (Sim.run s
       [|
         (fun _ ->
           Rt.work rt 1_000_000;
           observed := Rt.now rt);
       |]);
  Alcotest.(check bool) "virtual seconds from cycles" true
    (!observed >= 1_000_000.0 /. Cost.default.Cost.cycles_per_sec)

let real_label_hook () =
  let hits = ref [] in
  Rt.real_label_hook := (fun l -> hits := l :: !hits);
  Rt.label Rt.real "x";
  Rt.label Rt.real "y";
  Rt.real_label_hook := (fun _ -> ());
  Alcotest.(check (list string)) "hook called" [ "y"; "x" ] !hits

let run_result_elapsed () =
  let r = Rt.parallel_run Rt.real [| (fun _ -> Rt.work Rt.real 1000) |] in
  Alcotest.(check bool) "elapsed non-negative" true (r.Rt.elapsed >= 0.0);
  Alcotest.(check bool) "no sim result on real" true (r.Rt.sim_result = None)

let cases =
  both "atomic semantics" atomic_semantics
  @ both "atomic boxed identity" atomic_boxed
  @ both "word access" word_access
  @ both "control operations" control_noops
  @ [
      case "fresh lines" fresh_lines;
      case "real parallel dense ids" real_parallel_ids;
      case "real parallel exception" real_parallel_exn;
      case "too many threads rejected" parallel_too_many;
      case "sim atomics usable outside run" atomics_usable_outside_sim;
      case "real clock" now_monotone_real;
      case "sim virtual clock" now_virtual_sim;
      case "real label hook" real_label_hook;
      case "run result fields" run_result_elapsed;
    ]
