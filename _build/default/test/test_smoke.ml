(* Early end-to-end smoke tests for the lock-free allocator on both
   runtimes; the full suites live in the test_* modules. *)

open Mm_runtime
module Cfg = Mm_mem.Alloc_config
module A = Mm_core.Lf_alloc

let cfg = Cfg.make ~nheaps:4 ()

let seq_malloc_free rt () =
  let t = A.create rt cfg in
  let addrs = Array.init 100 (fun i -> A.malloc t (8 * (1 + (i mod 16)))) in
  let distinct = List.sort_uniq compare (Array.to_list addrs) in
  Alcotest.(check int) "distinct addresses" 100 (List.length distinct);
  (* Payload integrity: write a stamp in each block, read all back. *)
  Array.iteri (fun i a -> Mm_mem.Store.write_word (A.store t) a (i * 7)) addrs;
  Array.iteri
    (fun i a ->
      Alcotest.(check int)
        "payload intact" (i * 7)
        (Mm_mem.Store.read_word (A.store t) a))
    addrs;
  Array.iter (A.free t) addrs;
  A.check_invariants t

let seq_real () = seq_malloc_free Rt.real ()

let seq_sim () =
  let sim = Sim.create ~cpus:4 () in
  let rt = Rt.simulated sim in
  let t = A.create rt cfg in
  let r =
    Sim.run sim
      [|
        (fun _ ->
          let addrs = Array.init 50 (fun i -> A.malloc t (16 * (1 + (i mod 8)))) in
          Array.iter (A.free t) addrs);
      |]
  in
  Alcotest.(check bool) "made progress" true (r.Sim.makespan_cycles > 0);
  A.check_invariants t

let par_sim () =
  let sim = Sim.create ~cpus:8 ~seed:42 () in
  let rt = Rt.simulated sim in
  let t = A.create rt cfg in
  let body _ =
    let addrs = Array.init 200 (fun i -> A.malloc t (8 * (1 + (i mod 20)))) in
    Array.iter (A.free t) addrs
  in
  ignore (Sim.run sim (Array.make 8 body));
  A.check_invariants t;
  let m, f = A.op_counts t in
  Alcotest.(check int) "mallocs" (8 * 200) m;
  Alcotest.(check int) "frees" (8 * 200) f

let par_real () =
  let t = A.create Rt.real cfg in
  let body _ =
    for round = 1 to 20 do
      let addrs =
        Array.init 50 (fun i -> A.malloc t (8 * (1 + ((i + round) mod 20))))
      in
      Array.iter (A.free t) addrs
    done
  in
  ignore (Rt.parallel_run Rt.real (Array.make 4 body));
  A.check_invariants t

let cases =
  [
    Alcotest.test_case "seq real" `Quick seq_real;
    Alcotest.test_case "seq sim" `Quick seq_sim;
    Alcotest.test_case "par sim" `Quick par_sim;
    Alcotest.test_case "par real" `Quick par_real;
  ]
