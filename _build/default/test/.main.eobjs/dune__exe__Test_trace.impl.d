test/test_trace.ml: Alcotest Array List Mm_mem Mm_runtime Mm_workloads QCheck2 Rt Util
