test/test_codecs.ml: Alcotest List Mm_core Mm_mem Printf QCheck2 Util
