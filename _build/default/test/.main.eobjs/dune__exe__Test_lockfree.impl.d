test/test_lockfree.ml: Alcotest Array List Mm_lockfree Mm_runtime Option Printf Prng QCheck2 Queue Rt Sim Util
