test/test_locks.ml: Alcotest Array List Mm_baselines Mm_mem Mm_runtime Printf Prng Rt Sim Util
