test/test_rt.ml: Alcotest Array Bytes Cost Mm_runtime Rt Sim Util
