test/test_harness.ml: Alcotest List Mm_harness String Util
