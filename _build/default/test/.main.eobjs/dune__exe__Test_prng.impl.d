test/test_prng.ml: Alcotest Array List Mm_runtime Prng QCheck2 Util
