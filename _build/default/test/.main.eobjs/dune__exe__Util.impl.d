test/util.ml: Alcotest Mm_harness Mm_mem Mm_runtime QCheck2 QCheck_alcotest Rt Sim
