test/test_fault_injection.ml: Alcotest Array Domain Fun Hashtbl List Mm_core Mm_mem Mm_runtime Printf Prng Random Rt Sim Util
