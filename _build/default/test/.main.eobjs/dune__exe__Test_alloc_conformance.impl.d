test/test_alloc_conformance.ml: Alcotest Array List Mm_mem Mm_runtime Printf Prng Rt Sim Util
