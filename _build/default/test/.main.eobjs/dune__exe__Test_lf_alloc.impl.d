test/test_lf_alloc.ml: Alcotest Array Hashtbl List Mm_core Mm_mem Mm_runtime Option Printf Prng Rt Sim Util
