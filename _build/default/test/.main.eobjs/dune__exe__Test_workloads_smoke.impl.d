test/test_workloads_smoke.ml: Alcotest Format List Mm_harness Mm_mem Mm_runtime Mm_workloads Rt Sim
