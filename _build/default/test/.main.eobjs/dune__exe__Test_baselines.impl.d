test/test_baselines.ml: Alcotest Array List Mm_baselines Mm_mem Mm_runtime Option Printf Prng Rt Sim Util
