test/test_model.ml: Alcotest List Mm_mem Mm_runtime QCheck2 Rt Util
