test/main.mli:
