test/test_desc.ml: Alcotest Array List Mm_core Mm_mem Mm_runtime Option Printf Rt Sim Util
