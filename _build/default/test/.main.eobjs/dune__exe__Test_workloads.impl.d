test/test_workloads.ml: Alcotest List Mm_core Mm_mem Mm_runtime Mm_workloads Rt Util
