test/test_sim.ml: Alcotest Array Cost List Mm_runtime Printf Rt Sim Util
