test/test_store.ml: Alcotest Array List Mm_mem Mm_runtime Rt Sim Util
