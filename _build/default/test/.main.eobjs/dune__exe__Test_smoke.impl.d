test/test_smoke.ml: Alcotest Array List Mm_core Mm_mem Mm_runtime Rt Sim
