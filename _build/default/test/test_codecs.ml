(* Property tests for the pure packed-word codecs: Addr, Block_prefix,
   Anchor, Active_word, and the Size_class table. *)

open Util
module Addr = Mm_mem.Addr
module Prefix = Mm_mem.Block_prefix
module Sc = Mm_mem.Size_class
module Anchor = Mm_core.Anchor
module Aw = Mm_core.Active_word

(* ---------------- Addr ---------------- *)

let addr_gen =
  QCheck2.Gen.(pair (int_range 0 Addr.max_region) (int_range 0 Addr.max_offset))

let addr_roundtrip =
  qcheck "addr pack/unpack roundtrip" addr_gen (fun (region, offset) ->
      let a = Addr.make ~region ~offset in
      Addr.region a = region && Addr.offset a = offset)

let addr_arith =
  qcheck "addr offset arithmetic" addr_gen (fun (region, offset) ->
      let offset = min offset (Addr.max_offset - 64) in
      let a = Addr.make ~region ~offset in
      Addr.offset (a + 64) = offset + 64 && Addr.region (a + 64) = region)

let addr_line =
  qcheck "line distinguishes 64-byte windows" addr_gen (fun (region, offset) ->
      let offset = min offset (Addr.max_offset - 64) in
      let a = Addr.make ~region ~offset in
      Addr.line a <> Addr.line (a + 64))

let addr_bounds () =
  Alcotest.check_raises "region too big"
    (Invalid_argument "Addr.make: region") (fun () ->
      ignore (Addr.make ~region:(Addr.max_region + 1) ~offset:0));
  Alcotest.check_raises "negative offset"
    (Invalid_argument "Addr.make: offset") (fun () ->
      ignore (Addr.make ~region:0 ~offset:(-1)));
  Alcotest.(check int) "null is region 0 offset 0" 0 Addr.null

(* ---------------- Block_prefix ---------------- *)

let prefix_small =
  qcheck "small prefix roundtrip" QCheck2.Gen.(int_range 1 (1 lsl 30))
    (fun id ->
      let w = Prefix.small ~desc_id:id in
      (not (Prefix.is_large w)) && Prefix.desc_id w = id)

let prefix_large =
  qcheck "large prefix roundtrip" QCheck2.Gen.(int_range 1 (1 lsl 40))
    (fun len ->
      let w = Prefix.large ~total_len:len in
      Prefix.is_large w && (not (Prefix.is_offset w)) && Prefix.large_len w = len)

let prefix_offset =
  qcheck "offset prefix roundtrip" QCheck2.Gen.(int_range 1 (1 lsl 20))
    (fun delta ->
      let w = Prefix.offset ~delta in
      Prefix.is_offset w && (not (Prefix.is_large w))
      && Prefix.offset_delta w = delta)

let prefix_kinds_disjoint =
  qcheck "prefix kinds disjoint" QCheck2.Gen.(int_range 1 (1 lsl 20))
    (fun v ->
      let s = Prefix.small ~desc_id:v in
      (not (Prefix.is_large s)) && not (Prefix.is_offset s))

(* ---------------- Anchor ---------------- *)

let state_gen =
  QCheck2.Gen.oneofl [ Anchor.Active; Anchor.Full; Anchor.Partial; Anchor.Empty ]

let anchor_gen =
  QCheck2.Gen.(
    map
      (fun (a, c, s, t) -> (a, c, s, t))
      (quad (int_range 0 Anchor.max_count) (int_range 0 Anchor.max_count)
         state_gen (int_range 0 (1 lsl 36))))

let anchor_roundtrip =
  qcheck "anchor pack/unpack roundtrip" anchor_gen
    (fun (avail, count, state, tag) ->
      let a = Anchor.make ~avail ~count ~state ~tag in
      Anchor.avail a = avail && Anchor.count a = count
      && Anchor.state a = state && Anchor.tag a = tag)

let anchor_setters =
  qcheck "anchor setters touch one field" anchor_gen
    (fun (avail, count, state, tag) ->
      let a = Anchor.make ~avail ~count ~state ~tag in
      let a1 = Anchor.set_avail a ((avail + 1) land Anchor.max_count) in
      let a2 = Anchor.set_count a1 ((count + 7) land Anchor.max_count) in
      let a3 = Anchor.set_state a2 Anchor.Partial in
      Anchor.avail a3 = (avail + 1) land Anchor.max_count
      && Anchor.count a3 = (count + 7) land Anchor.max_count
      && Anchor.state a3 = Anchor.Partial
      && Anchor.tag a3 = tag)

let anchor_tag_increments =
  qcheck "incr_tag leaves other fields" anchor_gen
    (fun (avail, count, state, tag) ->
      let a = Anchor.make ~avail ~count ~state ~tag in
      let b = Anchor.incr_tag a in
      Anchor.avail b = avail && Anchor.count b = count
      && Anchor.state b = state
      && (Anchor.tag b = tag + 1 || (Anchor.tag b = 0 && tag = (1 lsl 37) - 1)))

let anchor_tag_changes_word =
  qcheck "incr_tag always changes the packed word" anchor_gen
    (fun (avail, count, state, tag) ->
      let a = Anchor.make ~avail ~count ~state ~tag in
      Anchor.incr_tag a <> a)

let anchor_fits_int () =
  (* The packed anchor must be a valid OCaml immediate for any field
     values — i.e. construction never overflows into the sign bit. *)
  let a =
    Anchor.make ~avail:Anchor.max_count ~count:Anchor.max_count
      ~state:Anchor.Empty ~tag:((1 lsl 37) - 1)
  in
  Alcotest.(check bool) "non-negative" true (a >= 0)

let anchor_bounds () =
  Alcotest.check_raises "avail too big" (Invalid_argument "Anchor.make: avail")
    (fun () ->
      ignore
        (Anchor.make ~avail:(Anchor.max_count + 1) ~count:0
           ~state:Anchor.Active ~tag:0))

(* ---------------- Active_word ---------------- *)

let active_roundtrip =
  qcheck "active word roundtrip"
    QCheck2.Gen.(pair (int_range 1 (1 lsl 40)) (int_range 0 Aw.max_credits))
    (fun (desc_id, credits) ->
      let w = Aw.make ~desc_id ~credits in
      (not (Aw.is_null w)) && Aw.desc_id w = desc_id && Aw.credits w = credits)

let active_dec =
  qcheck "dec_credits = reservation"
    QCheck2.Gen.(pair (int_range 1 (1 lsl 40)) (int_range 1 Aw.max_credits))
    (fun (desc_id, credits) ->
      let w = Aw.make ~desc_id ~credits in
      let w' = Aw.dec_credits w in
      Aw.desc_id w' = desc_id && Aw.credits w' = credits - 1)

let active_null () =
  Alcotest.(check bool) "null is null" true (Aw.is_null Aw.null);
  Alcotest.check_raises "dec on zero credits"
    (Invalid_argument "Active_word.dec_credits: no credits") (fun () ->
      ignore (Aw.dec_credits (Aw.make ~desc_id:3 ~credits:0)))

(* ---------------- Size_class ---------------- *)

let sc = Sc.make ()

let sc_monotone () =
  for i = 1 to Sc.count sc - 1 do
    if Sc.block_size sc i <= Sc.block_size sc (i - 1) then
      Alcotest.failf "class sizes not strictly increasing at %d" i
  done

let sc_smallest_fit =
  qcheck "class_of_request picks the smallest adequate class"
    QCheck2.Gen.(int_range 0 4000)
    (fun n ->
      match Sc.class_of_request sc n with
      | None -> n > Sc.large_threshold sc
      | Some c ->
          let fits c = Sc.block_size sc c - 8 >= n in
          fits c && (c = 0 || not (fits (c - 1))))

let sc_block_geometry () =
  for i = 0 to Sc.count sc - 1 do
    let b = Sc.block_size sc i in
    if b mod 16 <> 0 && b mod 8 <> 0 then
      Alcotest.failf "class %d size %d not 8-aligned" i b;
    if Sc.blocks_per_superblock sc i < 8 then
      Alcotest.failf "class %d has <8 blocks per superblock" i;
    if Sc.blocks_per_superblock sc i > Mm_core.Anchor.max_count + 1 then
      Alcotest.failf "class %d exceeds anchor field width" i
  done

let sc_large_threshold () =
  let t = Sc.large_threshold sc in
  Alcotest.(check bool) "threshold request is small" true
    (Sc.class_of_request sc t <> None);
  Alcotest.(check (option int)) "beyond threshold is large" None
    (Sc.class_of_request sc (t + 1))

let sc_sbsize_validation () =
  Alcotest.check_raises "non power of two"
    (Invalid_argument "Size_class.make: sbsize must be a power of two >= 4096")
    (fun () -> ignore (Sc.make ~sbsize:5000 ()))

let sc_other_sbsizes () =
  List.iter
    (fun sbsize ->
      let sc = Sc.make ~sbsize () in
      Alcotest.(check bool)
        (Printf.sprintf "sbsize %d has classes" sbsize)
        true
        (Sc.count sc > 4))
    [ 4096; 8192; 32768; 65536 ]

let cases =
  [
    addr_roundtrip;
    addr_arith;
    addr_line;
    case "addr bounds" addr_bounds;
    prefix_small;
    prefix_large;
    prefix_offset;
    prefix_kinds_disjoint;
    anchor_roundtrip;
    anchor_setters;
    anchor_tag_increments;
    anchor_tag_changes_word;
    case "anchor fits in an immediate" anchor_fits_int;
    case "anchor bounds" anchor_bounds;
    active_roundtrip;
    active_dec;
    case "active null" active_null;
    case "size classes monotone" sc_monotone;
    sc_smallest_fit;
    case "size class geometry" sc_block_geometry;
    case "large threshold boundary" sc_large_threshold;
    case "sbsize validation" sc_sbsize_validation;
    case "other sbsizes" sc_other_sbsizes;
  ]
