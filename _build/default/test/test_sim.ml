(* The simulated multiprocessor: determinism, cost model, scheduling,
   fault injection, failure detection. *)

open Mm_runtime
open Util

let counter_body _rt counter n _tid =
  for _ = 1 to n do
    Rt.Atomic.incr counter
  done

let determinism () =
  let results =
    List.init 3 (fun _ ->
        let s = sim ~cpus:4 ~seed:7 () in
        let rt = Rt.simulated s in
        let c = Rt.Atomic.make rt 0 in
        let r = Sim.run s (Array.make 4 (counter_body rt c 500)) in
        (r.Sim.makespan_cycles, Rt.Atomic.get c, r.Sim.counters))
  in
  match results with
  | [ a; b; c ] ->
      Alcotest.(check bool) "same seed, identical runs" true (a = b && b = c)
  | _ -> assert false

let seeds_vary () =
  let go seed =
    let s = sim ~cpus:4 ~seed () in
    let rt = Rt.simulated s in
    let c = Rt.Atomic.make rt 0 in
    (Sim.run s (Array.make 4 (counter_body rt c 500))).Sim.makespan_cycles
  in
  Alcotest.(check bool) "different seeds change the schedule" true
    (go 1 <> go 2)

let atomicity () =
  (* 8 threads × 1000 atomic increments = exactly 8000 under any
     interleaving. *)
  let s = sim ~cpus:4 () in
  let rt = Rt.simulated s in
  let c = Rt.Atomic.make rt 0 in
  ignore (Sim.run s (Array.make 8 (counter_body rt c 1000)));
  Alcotest.(check int) "no lost updates" 8000 (Rt.Atomic.get c)

let cas_contention_charged () =
  (* Two threads hammering one line must cost more per op than two
     threads on private lines. *)
  let shared =
    let s = sim ~cpus:2 () in
    let rt = Rt.simulated s in
    let c = Rt.Atomic.make rt 0 in
    (Sim.run s (Array.make 2 (counter_body rt c 1000))).Sim.makespan_cycles
  in
  let private_ =
    let s = sim ~cpus:2 () in
    let rt = Rt.simulated s in
    let cs = Array.init 2 (fun _ -> Rt.Atomic.make rt 0) in
    (Sim.run s
       (Array.init 2 (fun i _ ->
            for _ = 1 to 1000 do
              Rt.Atomic.incr cs.(i)
            done)))
      .Sim.makespan_cycles
  in
  Alcotest.(check bool)
    (Printf.sprintf "shared line dearer (%d vs %d)" shared private_)
    true
    (shared > private_ * 2)

let transfers_counted () =
  let s = sim ~cpus:2 () in
  let rt = Rt.simulated s in
  let c = Rt.Atomic.make rt 0 in
  let r = Sim.run s (Array.make 2 (counter_body rt c 100)) in
  Alcotest.(check bool) "remote transfers observed" true
    (r.Sim.counters.Sim.transfers > 50);
  Alcotest.(check int) "atomic count exact" 200 r.Sim.counters.Sim.atomics

let work_advances_clock () =
  let s = sim ~cpus:1 () in
  let rt = Rt.simulated s in
  let r = Sim.run s [| (fun _ -> Rt.work rt 100_000) |] in
  Alcotest.(check bool) "clock advanced by work" true
    (r.Sim.makespan_cycles >= 100_000)

let per_cpu_clocks () =
  let s = sim ~cpus:4 () in
  let rt = Rt.simulated s in
  (* Thread i does i*10_000 work; cpu clocks must be ordered. *)
  let r = Sim.run s (Array.init 4 (fun i _ -> Rt.work rt (i * 10_000))) in
  Alcotest.(check bool) "cpu 3 ran longest" true
    (r.Sim.cpu_cycles.(3) > r.Sim.cpu_cycles.(1));
  Alcotest.(check int) "makespan = max cpu clock"
    (Array.fold_left max 0 r.Sim.cpu_cycles)
    r.Sim.makespan_cycles

let preemption () =
  (* 8 threads on 2 cpus, each long enough to exceed quanta. *)
  let s = sim ~cpus:2 () in
  let rt = Rt.simulated s in
  let r =
    Sim.run s
      (Array.make 8 (fun _ ->
           for _ = 1 to 50 do
             Rt.work rt 10_000
           done))
  in
  Alcotest.(check bool) "context switches happened" true
    (r.Sim.counters.Sim.ctx_switches > 0)

let self_ids () =
  let s = sim ~cpus:2 () in
  let rt = Rt.simulated s in
  let seen = Array.make 6 (-1) in
  ignore
    (Sim.run s
       (Array.init 6 (fun i -> fun arg ->
            seen.(i) <- Rt.self rt;
            Alcotest.(check int) "body arg = tid" i arg)));
  Array.iteri (fun i v -> Alcotest.(check int) "self = tid" i v) seen

let exceptions_propagate () =
  let s = sim ~cpus:2 () in
  let rt = Rt.simulated s in
  Alcotest.check_raises "body exception re-raised" Exit (fun () ->
      ignore
        (Sim.run s
           [| (fun _ -> Rt.work rt 10); (fun _ -> raise Exit) |]))

let block_until () =
  let s_done = ref false in
  let order = ref [] in
  let on_label ~tid l =
    if l = "gate" && tid = 0 then Sim.Block_until (fun () -> !s_done)
    else Sim.Continue
  in
  let s = sim ~cpus:2 ~on_label () in
  let rt = Rt.simulated s in
  ignore
    (Sim.run s
       [|
         (fun _ ->
           Rt.label rt "gate";
           order := `A :: !order);
         (fun _ ->
           Rt.work rt 50_000;
           order := `B :: !order;
           s_done := true);
       |]);
  Alcotest.(check bool) "blocked thread resumed after gate" true
    (!order = [ `A; `B ])

let kill_action () =
  let on_label ~tid l =
    if l = "die" && tid = 1 then Sim.Kill else Sim.Continue
  in
  let s = sim ~cpus:2 ~on_label () in
  let rt = Rt.simulated s in
  let done_ = Array.make 2 false in
  let r =
    Sim.run s
      (Array.init 2 (fun i -> fun _ ->
           if i = 1 then Rt.label rt "die";
           done_.(i) <- true))
  in
  Alcotest.(check bool) "survivor finished" true done_.(0);
  Alcotest.(check bool) "victim did not" false done_.(1);
  Alcotest.(check int) "killed counted" 1 r.Sim.counters.Sim.killed

let deadlock_detected () =
  let on_label ~tid:_ l =
    if l = "forever" then Sim.Block_until (fun () -> false) else Sim.Continue
  in
  let s = sim ~cpus:1 ~on_label () in
  let rt = Rt.simulated s in
  (match Sim.run s [| (fun _ -> Rt.label rt "forever") |] with
  | _ -> Alcotest.fail "expected Deadlock"
  | exception Sim.Deadlock _ -> ());
  (* The instance is reusable afterwards. *)
  ignore (Sim.run s [| (fun _ -> Rt.work rt 10) |])

let timeout_detected () =
  let s = sim ~cpus:1 ~max_cycles:100_000 () in
  let rt = Rt.simulated s in
  match
    Sim.run s
      [|
        (fun _ ->
          while true do
            Rt.work rt 1_000
          done);
      |]
  with
  | _ -> Alcotest.fail "expected Progress_timeout"
  | exception Sim.Progress_timeout _ -> ()

let mem_batch_accounting () =
  let s = sim ~cpus:1 () in
  let r =
    Sim.run s
      [|
        (fun _ -> Sim.step_mem_batch ~line:1234 ~write:true ~count:500);
      |]
  in
  Alcotest.(check int) "batch counted as 500 accesses" 500
    r.Sim.counters.Sim.plain;
  Alcotest.(check bool) "charged ~500 plain accesses" true
    (r.Sim.makespan_cycles >= 500 * Cost.default.Cost.plain_access)

let nested_run_rejected () =
  let s = sim ~cpus:1 () in
  let s2 = sim ~cpus:1 () in
  Alcotest.check_raises "nested"
    (Failure "Sim.run: cannot run a simulation inside another") (fun () ->
      ignore
        (Sim.run s [| (fun _ -> ignore (Sim.run s2 [| (fun _ -> ()) |])) |]))

let yield_gives_cpu () =
  (* Two threads pinned to one cpu; A yields in a loop until B sets a
     flag. Without yield rescheduling this would time out. *)
  let s = sim ~cpus:1 ~max_cycles:50_000_000 () in
  let rt = Rt.simulated s in
  let flag = Rt.Atomic.make rt 0 in
  ignore
    (Sim.run s
       [|
         (fun _ ->
           while Rt.Atomic.get flag = 0 do
             Rt.yield rt
           done);
         (fun _ -> Rt.Atomic.set flag 1);
       |]);
  ()

let no_contention_costs () =
  (* With the no-contention cost table, shared vs private lines cost
     roughly the same. *)
  let run costs =
    let s = Sim.create ~cpus:2 ~costs ~seed:1 () in
    let rt = Rt.simulated s in
    let c = Rt.Atomic.make rt 0 in
    (Sim.run s (Array.make 2 (counter_body rt c 1000))).Sim.makespan_cycles
  in
  let flat = run Cost.no_contention in
  let real = run Cost.default in
  Alcotest.(check bool) "contention costs matter" true (real > flat)

let cases =
  [
    case "determinism" determinism;
    case "seeds vary schedules" seeds_vary;
    case "atomic increments never lost" atomicity;
    case "contended line costs more" cas_contention_charged;
    case "transfers counted" transfers_counted;
    case "work advances clock" work_advances_clock;
    case "per-cpu clocks" per_cpu_clocks;
    case "preemption on oversubscription" preemption;
    case "self ids are dense" self_ids;
    case "exceptions propagate" exceptions_propagate;
    case "block_until" block_until;
    case "kill" kill_action;
    case "deadlock detected" deadlock_detected;
    case "timeout detected" timeout_detected;
    case "mem batch accounting" mem_batch_accounting;
    case "nested run rejected" nested_run_rejected;
    case "yield gives cpu away" yield_gives_cpu;
    case "cost table sensitivity" no_contention_costs;
  ]
