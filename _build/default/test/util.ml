(* Shared helpers for the test suites. *)

open Mm_runtime

let qcheck ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count ~name gen prop)

let case name f = Alcotest.test_case name `Quick f
let slow_case name f = Alcotest.test_case name `Slow f

(* A small simulated machine for concurrency tests. *)
let sim ?(cpus = 4) ?(seed = 1) ?(max_cycles = 2_000_000_000) ?on_label () =
  match on_label with
  | Some on_label -> Sim.create ~cpus ~seed ~max_cycles ~on_label ()
  | None -> Sim.create ~cpus ~seed ~max_cycles ()

let run_sim ?cpus ?seed ?max_cycles ?on_label bodies =
  let s = sim ?cpus ?seed ?max_cycles ?on_label () in
  Sim.run s bodies

(* Fresh allocator instances on either runtime. *)
let instance ?(cfg = Mm_mem.Alloc_config.default) name rt =
  Mm_harness.Allocators.make name rt cfg

let all_allocators = Mm_harness.Allocators.names

(* Fuzzing helper: run [mk_bodies] under several simulated schedules and
   apply [check] after each. *)
let fuzz_schedules ?(cpus = 4) ?(seeds = 10) ?(max_cycles = 2_000_000_000)
    ~mk ~check () =
  for seed = 1 to seeds do
    let s = sim ~cpus ~seed ~max_cycles () in
    let ctx, bodies = mk (Rt.simulated s) in
    let r = Sim.run s bodies in
    check ~seed ctx r
  done
