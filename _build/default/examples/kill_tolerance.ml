(* Kill-tolerant availability (paper §1).

   Uses the simulator's fault injection to kill one thread at *every*
   labelled step of the lock-free malloc/free algorithms in turn, then
   shows the surviving threads completing their work each time. The same
   scenario against the libc baseline kills a lock holder and the
   survivors spin forever.

     dune exec examples/kill_tolerance.exe
*)

open Mm_runtime
module Cfg = Mm_mem.Alloc_config
module I = Mm_mem.Alloc_intf

let threads = 4
let pairs = 1_000

let scenario ~alloc_name ~kill_label =
  let killed = ref false in
  let on_label ~tid l =
    if l = kill_label && tid = 0 && not !killed then begin
      killed := true;
      Sim.Kill
    end
    else Sim.Continue
  in
  let sim = Sim.create ~cpus:4 ~seed:5 ~max_cycles:300_000_000 ~on_label () in
  let inst =
    Mm_harness.Allocators.make alloc_name (Rt.simulated sim)
      (Cfg.make ~nheaps:1 ())
  in
  let body _ =
    for _ = 1 to pairs do
      let a = I.instance_malloc inst 16 in
      I.instance_free inst a
    done
  in
  match Sim.run sim (Array.make threads (fun i -> body i)) with
  | _ -> if !killed then "survivors finished" else "(label never reached)"
  | exception Sim.Progress_timeout _ -> "SURVIVORS STUCK (livelock)"
  | exception Sim.Deadlock _ -> "SURVIVORS STUCK (deadlock)"

let () =
  print_endline "killing one thread at every step of the lock-free allocator:";
  List.iter
    (fun label ->
      Printf.printf "  new   killed at %-20s -> %s\n%!" label
        (scenario ~alloc_name:"new" ~kill_label:label))
    Mm_core.Labels.all;
  print_newline ();
  print_endline "the same exercise against a lock-based allocator:";
  Printf.printf "  libc  killed at %-20s -> %s\n" Mm_baselines.Locks.holder_label
    (scenario ~alloc_name:"libc"
       ~kill_label:Mm_baselines.Locks.holder_label)
