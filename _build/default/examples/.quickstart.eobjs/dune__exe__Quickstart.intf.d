examples/quickstart.mli:
