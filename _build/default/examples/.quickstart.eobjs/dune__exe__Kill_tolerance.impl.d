examples/kill_tolerance.ml: Array List Mm_baselines Mm_core Mm_harness Mm_mem Mm_runtime Printf Rt Sim
