examples/quickstart.ml: Array Format Mm_core Mm_mem Mm_runtime Printf Prng Rt
