examples/kill_tolerance.mli:
