examples/false_sharing.ml: List Mm_harness Mm_mem Mm_runtime Mm_workloads Printf Rt Sim
