examples/producer_consumer.ml: List Mm_harness Mm_mem Mm_runtime Mm_workloads Printf Rt Sim
