(* Allocator-induced false sharing (paper §4.2.2, Fig. 8(c)).

   Each thread repeatedly allocates a small block and writes to it. An
   allocator that hands blocks from the same cache line to different
   threads makes those writes ping-pong the line between CPUs. The
   simulator counts the remote-line transfers, so the effect is directly
   visible: the per-processor-heap allocators ("new", Hoard) induce almost
   none, the shared-arena allocators (Ptmalloc under pressure, libc)
   plenty.

     dune exec examples/false_sharing.exe
*)

open Mm_runtime
module W = Mm_workloads

let () =
  let params = { W.False_sharing.quick_active with W.False_sharing.pairs = 200 } in
  Printf.printf "%-10s  %-12s  %-16s\n" "allocator" "throughput"
    "line transfers";
  List.iter
    (fun name ->
      let sim = Sim.create ~cpus:8 ~seed:2 ~max_cycles:20_000_000_000 () in
      let inst =
        Mm_harness.Allocators.make name (Rt.simulated sim)
          Mm_mem.Alloc_config.default
      in
      let m = W.False_sharing.run inst ~threads:8 params in
      let transfers =
        match m.W.Metrics.sim with
        | Some c -> c.Sim.transfers
        | None -> 0
      in
      Printf.printf "%-10s  %-12.0f  %-16d\n%!" name
        m.W.Metrics.throughput transfers)
    Mm_harness.Allocators.names
