(* The paper's producer-consumer scenario as an application (§4.1).

   One producer fills a lock-free Michael-Scott queue with tasks whose
   payloads live in allocator blocks; consumers build histograms over a
   shared database and release the blocks — every block is freed by a
   different thread than the one that allocated it, the pattern that
   breaks pure per-thread heaps. Runs on the simulated 16-CPU machine so
   the scaling printout is deterministic.

     dune exec examples/producer_consumer.exe
*)

open Mm_runtime
module W = Mm_workloads

let () =
  let params =
    { W.Producer_consumer.quick with W.Producer_consumer.tasks = 1_000 }
  in
  Printf.printf
    "producer-consumer on a simulated 16-CPU machine (work=%d)\n"
    params.W.Producer_consumer.work;
  Printf.printf "%-8s  %-12s  %-12s\n" "threads" "new" "hoard";
  List.iter
    (fun threads ->
      let point name =
        let sim = Sim.create ~cpus:16 ~seed:1 ~max_cycles:50_000_000_000 () in
        let inst =
          Mm_harness.Allocators.make name (Rt.simulated sim)
            Mm_mem.Alloc_config.default
        in
        let m = W.Producer_consumer.run inst ~threads params in
        m.W.Metrics.throughput
      in
      Printf.printf "%-8d  %-12.0f  %-12.0f\n%!" threads (point "new")
        (point "hoard"))
    [ 1; 2; 4; 8; 16 ];
  print_endline
    "(tasks/second of virtual time; the lock-free allocator scales while \
     Hoard serializes on the producer's heap lock)"
