(** Named instrumentation points inside the lock-free allocator.

    Each label marks a place where the paper's progress argument says a
    thread may be {e arbitrarily delayed or killed} without blocking other
    threads. The allocator calls [Rt.label] at each; under simulation the
    fault-injection tests pause or kill a victim thread at every one of
    them and assert system-wide progress (DESIGN.md §6). Zero cost on the
    real runtime unless a hook is installed. *)

val ma_read_active : string
(** MallocFromActive: read Active, before the reservation CAS. *)

val ma_reserved : string
(** MallocFromActive: reservation CAS succeeded, before the pop. *)

val ma_pop_cas : string
(** MallocFromActive: before the anchor pop CAS. *)

val ma_popped : string
(** MallocFromActive: block popped, before UpdateActive / prefix write. *)

val ua_install : string
(** UpdateActive: before the CAS reinstalling the superblock. *)

val ua_return_credits : string
(** UpdateActive: install failed, before returning credits to the anchor. *)

val mp_got_partial : string
(** MallocFromPartial: obtained a partial descriptor. *)

val mp_reserve_cas : string
(** MallocFromPartial: before the block-reservation CAS. *)

val mp_pop_cas : string
(** MallocFromPartial: before the reserved-block pop CAS. *)

val mnsb_install : string
(** MallocFromNewSB: before the CAS installing the new superblock. *)

val free_cas : string
(** free: before the anchor push CAS. *)

val free_empty : string
(** free: superblock became EMPTY, before returning it to the OS. *)

val free_put_partial : string
(** HeapPutPartial: before the Partial-slot swap CAS. *)

val desc_alloc : string
(** DescAlloc: before the freelist pop CAS. *)

val desc_retire : string
(** DescRetire: before making the descriptor available again. *)

val all : string list
(** Every label above; fault-injection tests iterate this list. *)
