lib/core/anchor.mli: Format
