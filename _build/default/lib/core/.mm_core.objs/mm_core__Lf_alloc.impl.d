lib/core/lf_alloc.ml: Active_word Anchor Array Desc_pool Descriptor Format Hashtbl Labels List Mm_lockfree Mm_mem Mm_runtime Option Partial_list Printf Rt String
