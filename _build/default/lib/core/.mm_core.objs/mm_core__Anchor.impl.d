lib/core/anchor.ml: Format
