lib/core/labels.mli:
