lib/core/desc_pool.mli: Descriptor Mm_mem Mm_runtime
