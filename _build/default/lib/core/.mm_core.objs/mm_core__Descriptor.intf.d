lib/core/descriptor.mli: Mm_runtime
