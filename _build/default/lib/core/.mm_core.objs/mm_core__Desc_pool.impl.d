lib/core/desc_pool.ml: Descriptor Labels List Mm_lockfree Mm_mem Mm_runtime Rt
