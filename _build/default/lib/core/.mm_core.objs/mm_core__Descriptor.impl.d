lib/core/descriptor.ml: Anchor Array List Mm_lockfree Mm_mem Mm_runtime Rt
