lib/core/partial_list.mli: Descriptor Mm_mem Mm_runtime
