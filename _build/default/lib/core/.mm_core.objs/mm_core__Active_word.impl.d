lib/core/active_word.ml:
