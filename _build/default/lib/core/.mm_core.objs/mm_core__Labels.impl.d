lib/core/labels.ml:
