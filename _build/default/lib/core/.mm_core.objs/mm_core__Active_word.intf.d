lib/core/active_word.mli:
