lib/core/partial_list.ml: Anchor Descriptor List Mm_lockfree Mm_mem Mm_runtime Rt
