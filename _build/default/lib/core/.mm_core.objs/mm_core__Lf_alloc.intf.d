lib/core/lf_alloc.mli: Desc_pool Descriptor Format Mm_mem Partial_list
