(** The superblock descriptor's [Anchor] word (paper Fig. 3).

    All four subfields are packed into one OCaml immediate so that they
    can be read and CASed together atomically — the analogue of the
    paper's 64-bit anchor:

    {v
    bits 0..11   avail  index of the first available block (12 bits)
    bits 12..23  count  number of unreserved available blocks (12 bits)
    bits 24..25  state  ACTIVE | FULL | PARTIAL | EMPTY
    bits 26..62  tag    ABA tag, incremented on every pop (37 bits)
    v}

    The paper uses 10/10/2/42; we widen [avail]/[count] to 12 bits (up to
    4096 blocks per superblock) and keep 37 tag bits, which wrap only
    after ~10^11 pops of one descriptor. Values of this type are plain
    [int]s so they flow through [Rt.Atomic] unboxed. *)

type state = Active | Full | Partial | Empty

val max_count : int
(** 4095: largest representable [avail]/[count]. *)

val make : avail:int -> count:int -> state:state -> tag:int -> int
val avail : int -> int
val count : int -> int
val state : int -> state
val tag : int -> int

val set_avail : int -> int -> int
val set_count : int -> int -> int
val set_state : int -> state -> int
val incr_tag : int -> int
(** Wraps silently at 2^37. *)

val state_to_string : state -> string
val pp : Format.formatter -> int -> unit
