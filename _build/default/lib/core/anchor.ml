type state = Active | Full | Partial | Empty

let field_bits = 12
let max_count = (1 lsl field_bits) - 1
let count_shift = field_bits
let state_shift = 2 * field_bits
let tag_shift = state_shift + 2
let tag_bits = 62 - tag_shift
let tag_mask = (1 lsl tag_bits) - 1
let field_mask = max_count

let int_of_state = function Active -> 0 | Full -> 1 | Partial -> 2 | Empty -> 3

let state_of_int = function
  | 0 -> Active
  | 1 -> Full
  | 2 -> Partial
  | _ -> Empty

let make ~avail ~count ~state ~tag =
  if avail < 0 || avail > max_count then invalid_arg "Anchor.make: avail";
  if count < 0 || count > max_count then invalid_arg "Anchor.make: count";
  avail
  lor (count lsl count_shift)
  lor (int_of_state state lsl state_shift)
  lor ((tag land tag_mask) lsl tag_shift)

let avail a = a land field_mask
let count a = (a lsr count_shift) land field_mask
let state a = state_of_int ((a lsr state_shift) land 3)
let tag a = (a lsr tag_shift) land tag_mask

let set_avail a v =
  if v < 0 || v > max_count then invalid_arg "Anchor.set_avail";
  a land lnot field_mask lor v

let set_count a v =
  if v < 0 || v > max_count then invalid_arg "Anchor.set_count";
  a land lnot (field_mask lsl count_shift) lor (v lsl count_shift)

let set_state a s =
  a land lnot (3 lsl state_shift) lor (int_of_state s lsl state_shift)

let incr_tag a =
  let t = (tag a + 1) land tag_mask in
  a land lnot (tag_mask lsl tag_shift) lor (t lsl tag_shift)

let state_to_string = function
  | Active -> "ACTIVE"
  | Full -> "FULL"
  | Partial -> "PARTIAL"
  | Empty -> "EMPTY"

let pp fmt a =
  Format.fprintf fmt "{avail=%d; count=%d; state=%s; tag=%d}" (avail a)
    (count a)
    (state_to_string (state a))
    (tag a)
