let credit_bits = 6
let max_credits = (1 lsl credit_bits) - 1
let null = 0
let is_null w = w = 0

let make ~desc_id ~credits =
  if desc_id < 1 then invalid_arg "Active_word.make: desc_id must be >= 1";
  if credits < 0 || credits > max_credits then
    invalid_arg "Active_word.make: credits out of range";
  (desc_id lsl credit_bits) lor credits

let desc_id w = w lsr credit_bits
let credits w = w land max_credits

let dec_credits w =
  if credits w = 0 then invalid_arg "Active_word.dec_credits: no credits";
  w - 1
