(** The processor heap's [Active] word (paper Fig. 3).

    A pointer to the descriptor of the heap's active superblock with a
    [credits] subfield carved out of its alignment bits:

    {v
    bits 0..5   credits  blocks reservable through this word, minus one
    bits 6..62  desc_id  descriptor id (0 = NULL)
    v}

    If the word is non-null with [credits = n], the active superblock is
    guaranteed to hold [n+1] blocks available for reservation (§3.2.1).
    A malloc in the common case reserves a block by CASing [w] to [w-1] —
    decrementing [credits] — which is why credits occupy the low bits. *)

val null : int
(** The NULL Active word (0). *)

val is_null : int -> bool

val max_credits : int
(** 63: the most that fits in the credits subfield; the paper's
    [MAXCREDITS-1] bound. *)

val make : desc_id:int -> credits:int -> int
(** [credits] must be in [\[0, max_credits\]]; [desc_id] ≥ 1. *)

val desc_id : int -> int
val credits : int -> int

val dec_credits : int -> int
(** The reservation step: same word with one less credit (requires
    [credits > 0]); callers CAS the old word to this. *)
