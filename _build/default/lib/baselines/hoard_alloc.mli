(** Hoard-style baseline: lock-based per-processor heaps plus a global
    heap; malloc takes one lock in the common case, free two; empty
    superblocks migrate to the global heap, bounding space blowup
    (Berger et al., ASPLOS 2000; paper §2.2). *)

include Mm_mem.Alloc_intf.ALLOCATOR
