(** Libc-style baseline: one serial heap behind a single pthread-style
    mutex, with heavyweight per-operation bookkeeping — the paper's
    "default AIX 5.1 libc malloc" stand-in and the denominator of every
    reported speedup. See the implementation header for details. *)

include Mm_mem.Alloc_intf.ALLOCATOR
