lib/baselines/hoard_alloc.mli: Mm_mem
