lib/baselines/libc_alloc.mli: Mm_mem
