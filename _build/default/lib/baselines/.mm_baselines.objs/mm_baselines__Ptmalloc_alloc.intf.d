lib/baselines/ptmalloc_alloc.mli: Mm_mem
