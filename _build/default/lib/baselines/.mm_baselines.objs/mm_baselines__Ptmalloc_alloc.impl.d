lib/baselines/ptmalloc_alloc.ml: Array Locks Mm_mem Mm_runtime Rt Sb_heap
