lib/baselines/hoard_alloc.ml: Array List Locks Mm_mem Mm_runtime Rt Sb_heap
