lib/baselines/locks.ml: Array Mm_lockfree Mm_mem Mm_runtime Rt
