lib/baselines/sb_heap.ml: Array Format List Locks Mm_lockfree Mm_mem Mm_runtime Rt
