lib/baselines/sb_heap.mli: Locks Mm_mem Mm_runtime
