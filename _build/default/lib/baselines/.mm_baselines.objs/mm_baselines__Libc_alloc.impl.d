lib/baselines/libc_alloc.ml: Locks Mm_mem Sb_heap
