lib/baselines/locks.mli: Mm_mem Mm_runtime
