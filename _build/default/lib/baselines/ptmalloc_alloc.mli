(** Ptmalloc-style baseline: serial heaps ("arenas") each behind one lock;
    malloc trylocks its last arena, sweeps the others, and creates new
    arenas when all are busy; free locks the owning arena (paper §2.2). *)

include Mm_mem.Alloc_intf.ALLOCATOR

val arena_count : t -> int
(** Arenas currently in the list — the paper observes this exceeding the
    thread count under Larson (22 arenas for 16 threads). *)
