lib/lockfree/treiber_stack.ml: Backoff List Mm_runtime Rt
