lib/lockfree/ms_queue.mli: Mm_runtime
