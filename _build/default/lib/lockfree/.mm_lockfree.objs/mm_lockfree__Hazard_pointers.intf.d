lib/lockfree/hazard_pointers.mli: Mm_runtime
