lib/lockfree/tagged_id_stack.mli: Mm_runtime
