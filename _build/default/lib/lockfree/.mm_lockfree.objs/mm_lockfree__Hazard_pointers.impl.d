lib/lockfree/hazard_pointers.ml: Array List Mm_runtime Rt
