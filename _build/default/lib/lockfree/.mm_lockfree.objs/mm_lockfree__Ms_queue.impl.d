lib/lockfree/ms_queue.ml: Backoff List Mm_runtime Rt
