lib/lockfree/tagged_id_stack.ml: Backoff List Mm_runtime Rt
