lib/lockfree/treiber_stack.mli: Mm_runtime
