lib/lockfree/backoff.ml: Mm_runtime Rt
