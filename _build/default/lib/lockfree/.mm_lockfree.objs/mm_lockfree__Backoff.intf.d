lib/lockfree/backoff.mli: Mm_runtime
