(** Bounded exponential backoff for CAS-retry loops.

    Failed CAS attempts indicate interference; backing off reduces
    coherence traffic on the contended line. Used by every retry loop in
    the allocator and the lock substrate. *)

type t

val create : ?min_spins:int -> ?max_spins:int -> Mm_runtime.Rt.t -> t
(** Fresh backoff state (not thread-safe: one per thread per loop).
    Defaults: 1 to 256 spins. *)

val once : t -> unit
(** Spin for the current delay and double it (saturating). *)

val reset : t -> unit
(** Return the delay to its minimum (call after a successful operation). *)
