(** Lock-free LIFO freelist over small integer ids with IBM tag-based ABA
    prevention (System/370 freelist, the paper's reference [8]).

    This is the alternative to hazard pointers for the descriptor freelist
    (see the paper §3.2.5 and reference [18]): the head word packs
    [(tag, id)] into one CAS-able immediate; every pop increments the tag,
    so a pop that raced with a free-and-reuse of the same id fails. The
    "next" links live outside the stack (in the descriptor records),
    supplied by the [get_next]/[set_next] callbacks.

    Ids must lie in [\[0, 2^24)]; the tag occupies the remaining 38 bits
    of the OCaml immediate, wrapping only after ~3·10^11 pops. *)

type t

val create :
  Mm_runtime.Rt.t -> get_next:(int -> int) -> set_next:(int -> int -> unit) -> t
(** [get_next id] / [set_next id n] read and write the link cell of node
    [id]; a link value of [-1] means "no next". Reading the link of a node
    that was concurrently popped and reused must be safe (it is: links are
    plain int reads and the subsequent CAS fails on the tag). *)

val push : t -> int -> unit
val pop : t -> int option
val is_empty : t -> bool

val to_list : t -> int list
(** Top-first snapshot; only meaningful quiescently (tests). *)
