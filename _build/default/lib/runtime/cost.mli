(** Cost model for the simulated multiprocessor.

    All costs are in cycles of virtual time. The defaults are loosely
    calibrated to a 2000s-era shared-memory multiprocessor (the paper's
    POWER3/POWER4 machines): an uncontended atomic read-modify-write costs
    tens of cycles, pulling a cache line modified by another processor costs
    roughly a hundred cycles, and a trip into the kernel costs thousands.
    The absolute values only set the scale of reported virtual time; the
    reproduced *shapes* (scaling slopes, crossovers) come from the ratios —
    chiefly [line_transfer] versus [work] — and remain stable across
    reasonable calibrations (see the cost-sensitivity tests). *)

type t = {
  plain_access : int;  (** cache-hit load/store of a word *)
  atomic_op : int;  (** uncontended atomic load/store/CAS/fetch-add *)
  line_transfer : int;  (** fetching a line last written by another CPU *)
  line_invalidate : int;  (** upgrading a shared line for writing *)
  fence : int;  (** full memory barrier *)
  yield : int;  (** voluntary processor yield *)
  ctx_switch : int;  (** involuntary context switch (preemption) *)
  syscall : int;  (** kernel entry/exit, e.g. mmap/munmap *)
  quantum : int;  (** scheduling quantum before preemption *)
  cycles_per_sec : float;  (** converts virtual cycles to seconds *)
}

val default : t
(** The calibration described above. *)

val no_contention : t
(** A variant where cache-line transfers cost the same as hits; used by
    tests to isolate algorithmic work from contention effects. *)
