lib/runtime/cost.ml:
