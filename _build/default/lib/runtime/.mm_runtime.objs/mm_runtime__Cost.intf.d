lib/runtime/cost.mli:
