lib/runtime/prng.mli:
