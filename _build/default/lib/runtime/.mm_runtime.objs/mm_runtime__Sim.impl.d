lib/runtime/sim.ml: Array Cost Effect Hashtbl List Printf Prng Queue
