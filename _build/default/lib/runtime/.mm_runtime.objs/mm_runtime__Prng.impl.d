lib/runtime/prng.ml: Array Int64
