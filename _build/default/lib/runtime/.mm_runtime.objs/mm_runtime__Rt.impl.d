lib/runtime/rt.ml: Array Bytes Cost Domain Int64 Printf Sim Stdlib Sys Unix
