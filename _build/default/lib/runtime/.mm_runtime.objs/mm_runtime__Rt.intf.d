lib/runtime/rt.mli: Bytes Sim
