lib/runtime/sim.mli: Cost
