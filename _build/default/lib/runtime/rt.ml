type t = Real | Simulated of Sim.t

let real = Real
let simulated sim = Simulated sim
let is_sim = function Real -> false | Simulated _ -> true
let sim = function Real -> None | Simulated s -> Some s
let name = function Real -> "real" | Simulated _ -> "sim"
let max_threads = 64

(* ------------------------------------------------------------------ *)
(* Synthetic cache lines for atomics: negative ids, so they can never
   collide with memory-derived lines (which are non-negative). *)

let line_counter = Stdlib.Atomic.make 0

let fresh_line () = -1 - Stdlib.Atomic.fetch_and_add line_counter 1

(* ------------------------------------------------------------------ *)
(* Atomics. *)

type 'a atomic =
  | Real_at of 'a Stdlib.Atomic.t
  | Sim_at of { mutable v : 'a; line : int }

module Atomic = struct
  let make rt ?line v =
    match rt with
    | Real -> Real_at (Stdlib.Atomic.make v)
    | Simulated _ ->
        let line = match line with Some l -> l | None -> fresh_line () in
        Sim_at { v; line }

  let get = function
    | Real_at a -> Stdlib.Atomic.get a
    | Sim_at r ->
        if Sim.in_sim () then Sim.step_atomic ~line:r.line ~write:false;
        r.v

  let set at v =
    match at with
    | Real_at a -> Stdlib.Atomic.set a v
    | Sim_at r ->
        if Sim.in_sim () then Sim.step_atomic ~line:r.line ~write:true;
        r.v <- v

  let compare_and_set at expected desired =
    match at with
    | Real_at a -> Stdlib.Atomic.compare_and_set a expected desired
    | Sim_at r ->
        (* Even a failing CAS acquires the line exclusively. *)
        if Sim.in_sim () then Sim.step_atomic ~line:r.line ~write:true;
        if r.v == expected then begin
          r.v <- desired;
          true
        end
        else false

  let fetch_and_add (at : int atomic) n =
    match at with
    | Real_at a -> Stdlib.Atomic.fetch_and_add a n
    | Sim_at r ->
        if Sim.in_sim () then Sim.step_atomic ~line:r.line ~write:true;
        let old = r.v in
        r.v <- old + n;
        old

  let incr at = ignore (fetch_and_add at 1)
end

(* ------------------------------------------------------------------ *)
(* Word access to simulated memory. *)

let read_word rt bytes off ~line =
  (match rt with
  | Real -> ()
  | Simulated _ ->
      if Sim.in_sim () then Sim.step_mem ~line ~write:false);
  Int64.to_int (Bytes.get_int64_le bytes off)

let write_word rt bytes off ~line v =
  (match rt with
  | Real -> ()
  | Simulated _ -> if Sim.in_sim () then Sim.step_mem ~line ~write:true);
  Bytes.set_int64_le bytes off (Int64.of_int v)

let touch rt ~line ~write =
  match rt with
  | Real -> ()
  | Simulated _ -> if Sim.in_sim () then Sim.step_mem ~line ~write

let touch_batch rt ~line ~write ~count =
  match rt with
  | Real -> ()
  | Simulated _ -> if Sim.in_sim () then Sim.step_mem_batch ~line ~write ~count

(* ------------------------------------------------------------------ *)
(* Control. *)

let fence_dummy = Stdlib.Atomic.make 0

let fence = function
  | Real -> ignore (Stdlib.Atomic.get fence_dummy)
  | Simulated _ -> if Sim.in_sim () then Sim.step_fence ()

let cpu_relax = function
  | Real -> Domain.cpu_relax ()
  | Simulated _ -> if Sim.in_sim () then Sim.step_work 8

(* Opaque sink so real [work] loops are not optimized away. *)
let work_sink = ref 0

let work rt n =
  match rt with
  | Real ->
      let acc = ref !work_sink in
      for i = 1 to n do
        acc := (!acc * 25214903917) + i
      done;
      work_sink := Sys.opaque_identity !acc
  | Simulated _ -> if Sim.in_sim () then Sim.step_work n

let yield = function
  | Real ->
      (* A genuine scheduler yield: on an oversubscribed host, spinning
         with PAUSE alone can leave the thread we wait on unscheduled
         for a whole quantum. *)
      (try Unix.sleepf 1e-6 with Unix.Unix_error _ -> Domain.cpu_relax ())
  | Simulated _ -> if Sim.in_sim () then Sim.step_yield ()

let syscall = function
  | Real -> ()
  | Simulated _ -> if Sim.in_sim () then Sim.step_syscall ()

let real_label_hook : (string -> unit) ref = ref (fun _ -> ())

let label rt l =
  match rt with
  | Real -> !real_label_hook l
  | Simulated _ -> if Sim.in_sim () then Sim.step_label l

(* ------------------------------------------------------------------ *)
(* Thread identity. *)

let dls_self : int Domain.DLS.key = Domain.DLS.new_key (fun () -> 0)

let self = function
  | Real -> Domain.DLS.get dls_self
  | Simulated _ -> if Sim.in_sim () then Sim.self_tid () else 0

let num_cpus = function
  | Real -> Domain.recommended_domain_count ()
  | Simulated s -> Sim.cpus s

let now = function
  | Real -> Unix.gettimeofday ()
  | Simulated s ->
      if Sim.in_sim () then
        float_of_int (Sim.now_cycles ()) /. (Sim.costs s).Cost.cycles_per_sec
      else 0.0

(* ------------------------------------------------------------------ *)
(* Running threads. *)

type run_result = { elapsed : float; sim_result : Sim.result option }

let parallel_run rt bodies =
  let n = Array.length bodies in
  if n = 0 then { elapsed = 0.0; sim_result = None }
  else if n > max_threads then
    invalid_arg
      (Printf.sprintf "Rt.parallel_run: %d threads exceeds max_threads=%d" n
         max_threads)
  else
    match rt with
    | Real ->
        let t0 = Unix.gettimeofday () in
        let domains =
          Array.init n (fun i ->
              Domain.spawn (fun () ->
                  Domain.DLS.set dls_self i;
                  bodies.(i) i))
        in
        let failure = ref None in
        Array.iter
          (fun d ->
            match Domain.join d with
            | () -> ()
            | exception e -> if !failure = None then failure := Some e)
          domains;
        (match !failure with Some e -> raise e | None -> ());
        { elapsed = Unix.gettimeofday () -. t0; sim_result = None }
    | Simulated s ->
        let r = Sim.run s bodies in
        {
          elapsed =
            float_of_int r.Sim.makespan_cycles
            /. (Sim.costs s).Cost.cycles_per_sec;
          sim_result = Some r;
        }
