(** Deterministic pseudo-random number generation (SplitMix64).

    Every source of randomness in the repository — simulated schedules,
    workload block sizes, shuffles — goes through this module so that an
    experiment is fully reproducible from its seed.  The generator is
    SplitMix64 (Steele, Lea & Flood, OOPSLA 2014): tiny state, good
    statistical quality, and a [split] operation that derives independent
    streams, which we use to give each simulated thread its own stream. *)

type t

val create : int -> t
(** [create seed] returns a fresh generator. Equal seeds give equal
    streams. *)

val copy : t -> t
(** Independent copy with identical future output. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent of [t]'s. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val next : t -> int
(** Next non-negative 62-bit integer. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] (inclusive).
    Requires [lo <= hi]. *)

val bool : t -> bool
(** Uniform boolean. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
