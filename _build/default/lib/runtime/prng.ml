(* SplitMix64. Reference: Steele, Lea & Flood, "Fast splittable
   pseudorandom number generators", OOPSLA 2014. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let seed = next_int64 t in
  { state = seed }

let next t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let rec go () =
    let r = next t in
    let v = r mod bound in
    if r - v > (max_int lsr 2) * 4 - bound + 1 then go () else v
  in
  if bound land (bound - 1) = 0 then next t land (bound - 1) else go ()

let int_in t lo hi =
  if lo > hi then invalid_arg "Prng.int_in: lo > hi";
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (next_int64 t) 1L = 1L

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  r /. 9007199254740992.0 *. bound

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
