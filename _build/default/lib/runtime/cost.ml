type t = {
  plain_access : int;
  atomic_op : int;
  line_transfer : int;
  line_invalidate : int;
  fence : int;
  yield : int;
  ctx_switch : int;
  syscall : int;
  quantum : int;
  cycles_per_sec : float;
}

let default =
  {
    plain_access = 2;
    atomic_op = 30;
    line_transfer = 120;
    line_invalidate = 60;
    fence = 20;
    yield = 60;
    ctx_switch = 2_000;
    syscall = 4_000;
    quantum = 100_000;
    cycles_per_sec = 1.0e9;
  }

let no_contention =
  { default with line_transfer = default.plain_access;
                 line_invalidate = default.plain_access }
