(** Active-false and Passive-false (from Hoard; paper §4.1): allocators
    that pack blocks handed to different threads into one cache line
    induce false sharing, which these benchmarks expose. Each thread
    performs [pairs] rounds of: obtain a [size]-byte block, write
    [writes_per_byte] times to each of its bytes, free it.

    - {e Active}: every thread allocates its own blocks each round; false
      sharing arises if the allocator co-locates blocks of concurrently
      allocating threads.
    - {e Passive}: one thread allocates the {e initial} block of every
      thread and hands them out; the other threads free them immediately
      and continue as in Active — exposing allocators whose free returns
      a block to a place where it will be handed to a co-located
      neighbour again.

    The paper uses 10,000 rounds of 8-byte blocks with 1,000 writes per
    byte. *)

type params = {
  pairs : int;
  size : int;
  writes_per_byte : int;
  passive : bool;
}

val default_active : params
val default_passive : params
val quick_active : params
val quick_passive : params

val run :
  Mm_mem.Alloc_intf.instance -> threads:int -> params -> Metrics.t
