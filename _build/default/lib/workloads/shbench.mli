(** An shbench-style workload (MicroQuill SmartHeap benchmark family):
    per-thread pools of blocks continuously churned by malloc, realloc to
    a new random size, and free, across a wide size range. Unlike the
    paper's six benchmarks this exercises in-place growth decisions and
    the copy path of realloc under concurrency; included as an extension
    workload for the derived {!Mm_mem.Alloc_ops} API. *)

type params = {
  slots : int;  (** live blocks per thread *)
  rounds : int;  (** operations per thread *)
  min_size : int;
  max_size : int;
  seed : int;
}

val default : params
val quick : params

val run :
  Mm_mem.Alloc_intf.instance -> threads:int -> params -> Metrics.t
