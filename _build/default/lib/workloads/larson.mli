(** Larson (Larson & Krishnan, ISMM 1998; paper §4.1) — a server-style
    workload. A warmup thread allocates and frees random-sized blocks in
    random order, then [slots_per_thread] blocks are handed to each
    thread. In the parallel phase each thread repeatedly picks a random
    slot, frees the block there, and allocates a new random-sized block
    ([min_size]–[max_size] bytes) in its place — so blocks are routinely
    freed by a different thread than the one that allocated them.
    Captures robustness of latency and scalability under irregular sizes
    and deallocation order.

    The paper hands out 1024 blocks of 16–80 bytes per thread and runs
    for 30 seconds; we run a fixed number of [rounds] per thread for
    determinism and let the harness scale rounds to the budget. *)

type params = {
  slots_per_thread : int;
  min_size : int;
  max_size : int;
  rounds : int;  (** free/malloc pairs per thread in the parallel phase *)
  seed : int;
}

val default : params
val quick : params

val run :
  Mm_mem.Alloc_intf.instance -> threads:int -> params -> Metrics.t
