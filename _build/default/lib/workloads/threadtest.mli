(** Threadtest (from Hoard; paper §4.1): each thread performs
    [iterations] rounds of allocating [blocks] [size]-byte blocks and
    then freeing them in allocation order. Regular private allocation
    with deep live heaps. The paper runs 100 iterations of 100,000
    8-byte blocks. *)

type params = { iterations : int; blocks : int; size : int }

val default : params
val quick : params

val run :
  Mm_mem.Alloc_intf.instance -> threads:int -> params -> Metrics.t
