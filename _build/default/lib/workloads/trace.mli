(** Allocation-trace generation and replay.

    A trace is an explicit schedule of malloc/free events partitioned
    over threads, with cross-thread frees (block allocated by one thread,
    freed by another — the pattern of §4.1's Producer-consumer and of the
    server workloads Larson models). Traces are deterministic, can be
    serialized to a portable text form, and replay against any allocator
    instance — giving reproducible workloads beyond the paper's six
    microbenchmarks.

    Replay runs each thread's event list concurrently; a free whose block
    was allocated by a different thread waits (yielding) until that block
    has been published. Generated traces free every block, so the heap is
    quiescent and checkable after a replay. *)

type event =
  | Malloc of { id : int; size : int; thread : int }
  | Free of { id : int; thread : int }

type t = {
  events : event array;  (** in generation (logical) order *)
  threads : int;
  mallocs : int;  (** number of Malloc events; ids are [0..mallocs-1] *)
}

val generate :
  ?seed:int ->
  ?threads:int ->
  ?ops:int ->
  ?live_target:int ->
  ?cross_thread_fraction:float ->
  unit ->
  t
(** A birth–death process holding roughly [live_target] blocks live, with
    a size mixture of small/medium/large requests and the given fraction
    of frees performed by a thread other than the allocating one.
    Defaults: seed 1, 4 threads, 2000 ops, 200 live, 0.3 cross-thread.
    All blocks are freed by the end. *)

val to_string : t -> string
val of_string : string -> t
(** Round-trips with {!to_string}; raises [Failure] on malformed input. *)

val max_live : t -> int
(** Peak number of simultaneously live blocks. *)

val total_bytes : t -> int
(** Sum of all requested sizes. *)

val run : Mm_mem.Alloc_intf.instance -> t -> Metrics.t
