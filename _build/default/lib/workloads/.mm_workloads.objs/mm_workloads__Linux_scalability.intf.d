lib/workloads/linux_scalability.mli: Metrics Mm_mem
