lib/workloads/shbench.ml: Array Metrics Mm_mem Mm_runtime Prng Rt
