lib/workloads/producer_consumer.ml: Array Metrics Mm_lockfree Mm_mem Mm_runtime Prng Rt
