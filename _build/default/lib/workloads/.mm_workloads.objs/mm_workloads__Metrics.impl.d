lib/workloads/metrics.ml: Format Mm_mem Mm_runtime Rt Sim
