lib/workloads/threadtest.ml: Array Metrics Mm_mem Mm_runtime Rt
