lib/workloads/trace.mli: Metrics Mm_mem
