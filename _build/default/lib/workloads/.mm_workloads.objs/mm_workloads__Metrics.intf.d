lib/workloads/metrics.mli: Format Mm_mem Mm_runtime
