lib/workloads/trace.ml: Array Buffer List Metrics Mm_mem Mm_runtime Printf Prng Rt String
