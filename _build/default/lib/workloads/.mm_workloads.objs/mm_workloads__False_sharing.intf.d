lib/workloads/false_sharing.mli: Metrics Mm_mem
