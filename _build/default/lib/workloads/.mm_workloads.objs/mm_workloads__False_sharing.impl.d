lib/workloads/false_sharing.ml: Array Metrics Mm_mem Mm_runtime Rt
