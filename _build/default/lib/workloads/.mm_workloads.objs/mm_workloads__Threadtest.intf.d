lib/workloads/threadtest.mli: Metrics Mm_mem
