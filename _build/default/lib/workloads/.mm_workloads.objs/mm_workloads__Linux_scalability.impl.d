lib/workloads/linux_scalability.ml: Array Metrics Mm_mem Mm_runtime Rt
