lib/workloads/larson.mli: Metrics Mm_mem
