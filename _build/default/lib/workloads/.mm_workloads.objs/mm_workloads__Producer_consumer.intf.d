lib/workloads/producer_consumer.mli: Metrics Mm_mem
