lib/workloads/shbench.mli: Metrics Mm_mem
