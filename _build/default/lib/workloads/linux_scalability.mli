(** Benchmark 1 of Linux Scalability (Lever & Boreham, FREENIX 2000;
    paper §4.1): each thread performs [pairs] malloc/free pairs of
    [size]-byte blocks in a tight loop. Captures allocator latency and
    scalability under regular private allocation. The paper runs 10
    million pairs of 8-byte blocks per thread. *)

type params = { pairs : int; size : int }

val default : params
(** The paper's parameters (10M pairs, 8 bytes). *)

val quick : params
(** Scaled down for simulation and tests (10k pairs). *)

val run :
  Mm_mem.Alloc_intf.instance -> threads:int -> params -> Metrics.t
