(** The paper's lock-free Producer-consumer benchmark (§4.1) — the
    sharing pattern that breaks naive per-thread allocation: blocks are
    allocated by one thread and freed by another.

    One producer and [threads - 1] consumers share a lock-free FIFO task
    queue ({!Mm_lockfree.Ms_queue}). Per task the producer selects a
    random set of [set_min]–[set_max] database indexes, allocates a block
    of matching size to record them, a fixed 32-byte task structure and a
    16-byte queue node (3 mallocs), and enqueues the task. A consumer
    dequeues, builds histograms over the 1M-item database for the indexes
    in the task, performs [work] units of task-local computation,
    allocates a histogram block and releases everything (1 malloc, 4
    frees). When the queue exceeds [queue_cap] tasks the producer helps
    by consuming a task itself. With [threads = 1] the producer drains
    its own queue. *)

type params = {
  tasks : int;
  work : int;  (** the paper sweeps 500 / 750 / 1000 *)
  db_size : int;
  set_min : int;
  set_max : int;
  queue_cap : int;
  seed : int;
}

val default : params
(** work=750, 1M-item database. *)

val quick : params

val with_work : params -> int -> params

val run :
  Mm_mem.Alloc_intf.instance -> threads:int -> params -> Metrics.t
