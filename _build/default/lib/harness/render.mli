(** Plain-text rendering of experiment results (tables and series). *)

val table : header:string list -> rows:string list list -> string list
(** Fixed-width ASCII table, one output line per list element. *)

val fmt_speedup : float -> string
val fmt_throughput : float -> string
val fmt_ns : float -> string
val fmt_bytes : int -> string

val series :
  col_title:string ->
  cols:string list ->
  row_title:string ->
  rows:(string * float list) list ->
  string list
(** A figure-like series table: one row per x value (e.g. thread count),
    one column per line (e.g. allocator). *)
