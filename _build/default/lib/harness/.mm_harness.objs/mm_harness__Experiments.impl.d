lib/harness/experiments.ml: Allocators Array Format List Mm_baselines Mm_core Mm_mem Mm_runtime Mm_workloads Option Printf Render Rt Sim
