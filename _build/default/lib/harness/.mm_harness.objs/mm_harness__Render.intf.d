lib/harness/render.mli:
