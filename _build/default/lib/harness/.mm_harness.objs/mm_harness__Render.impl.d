lib/harness/render.ml: List Option Printf String
