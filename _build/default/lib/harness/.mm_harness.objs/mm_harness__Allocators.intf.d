lib/harness/allocators.mli: Mm_mem Mm_runtime
