lib/harness/allocators.ml: Mm_baselines Mm_core Mm_mem
