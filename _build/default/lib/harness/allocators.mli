(** Registry of the four allocators the paper compares. *)

val names : string list
(** ["new"; "hoard"; "ptmalloc"; "libc"] — "new" is the paper's lock-free
    allocator. *)

val make :
  string -> Mm_runtime.Rt.t -> Mm_mem.Alloc_config.t ->
  Mm_mem.Alloc_intf.instance
(** Fresh heap of the named allocator. Raises [Invalid_argument] on an
    unknown name. *)
