open Mm_mem.Alloc_intf

let names = [ "new"; "hoard"; "ptmalloc"; "libc" ]

let make name rt cfg =
  match name with
  | "new" -> Inst ((module Mm_core.Lf_alloc), Mm_core.Lf_alloc.create rt cfg)
  | "hoard" ->
      Inst
        ( (module Mm_baselines.Hoard_alloc),
          Mm_baselines.Hoard_alloc.create rt cfg )
  | "ptmalloc" ->
      Inst
        ( (module Mm_baselines.Ptmalloc_alloc),
          Mm_baselines.Ptmalloc_alloc.create rt cfg )
  | "libc" ->
      Inst
        ( (module Mm_baselines.Libc_alloc),
          Mm_baselines.Libc_alloc.create rt cfg )
  | other -> invalid_arg ("Allocators.make: unknown allocator " ^ other)
