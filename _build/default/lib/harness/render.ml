let pad width s =
  let n = String.length s in
  if n >= width then s else s ^ String.make (width - n) ' '

let table ~header ~rows =
  let all = header :: rows in
  let ncols = List.fold_left (fun m r -> max m (List.length r)) 0 all in
  let width c =
    List.fold_left
      (fun m row ->
        match List.nth_opt row c with
        | Some s -> max m (String.length s)
        | None -> m)
      0 all
  in
  let widths = List.init ncols width in
  let render_row row =
    String.concat "  "
      (List.mapi
         (fun c w -> pad w (Option.value (List.nth_opt row c) ~default:""))
         widths)
  in
  let sep =
    String.concat "  " (List.map (fun w -> String.make w '-') widths)
  in
  render_row header :: sep :: List.map render_row rows

let fmt_speedup v = Printf.sprintf "%.2f" v

let fmt_throughput v =
  if v >= 1e6 then Printf.sprintf "%.2fM/s" (v /. 1e6)
  else if v >= 1e3 then Printf.sprintf "%.1fk/s" (v /. 1e3)
  else Printf.sprintf "%.0f/s" v

let fmt_ns v = Printf.sprintf "%.0fns" v

let fmt_bytes n =
  if n >= 1 lsl 20 then Printf.sprintf "%.1fMB" (float_of_int n /. 1048576.0)
  else Printf.sprintf "%dKB" (n / 1024)

let series ~col_title ~cols ~row_title ~rows =
  let header = (row_title ^ "\\" ^ col_title) :: cols in
  let body =
    List.map
      (fun (label, values) -> label :: List.map fmt_speedup values)
      rows
  in
  table ~header ~rows:body
