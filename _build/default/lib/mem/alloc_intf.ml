(** The interface every allocator in this repository implements — the
    lock-free allocator of the paper ([Mm_core.Lf_alloc]) and the three
    baselines it is evaluated against ([Mm_baselines.Libc_alloc],
    [Mm_baselines.Hoard_alloc], [Mm_baselines.Ptmalloc_alloc]).

    Addresses returned by [malloc] point at the block payload (the 8-byte
    prefix sits just below, as in the paper); payload words are accessed
    through the allocator's {!Store}. *)

module type ALLOCATOR = sig
  type t

  val name : string
  (** Short identifier used in experiment output ("new", "hoard", ...). *)

  val create : Mm_runtime.Rt.t -> Alloc_config.t -> t
  (** A fresh, independent heap (own store, own descriptors). Thread-safe
      for concurrent [malloc]/[free] once created. *)

  val malloc : t -> int -> int
  (** [malloc t n] allocates a block with at least [n] payload bytes and
      returns its payload address (never {!Addr.null}; raises
      [Invalid_argument] on negative [n], [Failure] on substrate
      exhaustion). [malloc t 0] returns a valid unique block. *)

  val free : t -> int -> unit
  (** Returns a block to the heap. [free t Addr.null] is a no-op. Freeing
      an address not obtained from [malloc] (or freeing twice) is a
      programming error with undefined (but memory-safe) behaviour, as in
      C. *)

  val usable_size : t -> int -> int
  (** Payload bytes actually available at an address returned by [malloc]
      (or [Alloc_ops.aligned_alloc]); at least the requested size. *)

  val store : t -> Store.t
  val rt : t -> Mm_runtime.Rt.t

  val check_invariants : t -> unit
  (** Validate internal invariants; requires quiescence (no concurrent
      operations). Raises [Failure] with a diagnostic on violation. *)
end

(** An allocator packaged with one of its heaps — what workloads and
    experiments pass around. *)
type instance = Inst : (module ALLOCATOR with type t = 'a) * 'a -> instance

let instance_name (Inst ((module A), _)) = A.name
let instance_malloc (Inst ((module A), h)) n = A.malloc h n
let instance_free (Inst ((module A), h)) addr = A.free h addr
let instance_usable (Inst ((module A), h)) addr = A.usable_size h addr
let instance_store (Inst ((module A), h)) = A.store h
let instance_rt (Inst ((module A), h)) = A.rt h
let instance_check (Inst ((module A), h)) = A.check_invariants h
let instance_space (Inst ((module A), h)) = Space.read (Store.space (A.store h))
