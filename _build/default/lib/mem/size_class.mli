(** Size classes (paper §3.1).

    Superblocks are partitioned among size classes by block size; a block
    comprises the user payload plus the 8-byte descriptor-pointer prefix.
    Classes run in multiples of 16 bytes up to 256 and then in coarser
    geometric steps up to [sbsize / 8], so every superblock holds at least
    8 blocks; larger requests bypass the superblock machinery and go
    straight to the OS, as in the paper. *)

type t

val make : ?sbsize:int -> unit -> t
(** [make ~sbsize ()] builds the class table for superblocks of [sbsize]
    bytes (default 16 KiB; must be a power of two ≥ 4 KiB). *)

val sbsize : t -> int
val count : t -> int
(** Number of classes. *)

val block_size : t -> int -> int
(** Block size (payload + prefix) of class [i]. Monotonically increasing. *)

val blocks_per_superblock : t -> int -> int
(** [sbsize / block_size i]. *)

val large_threshold : t -> int
(** Largest request (payload bytes) served from superblocks. *)

val class_of_request : t -> int -> int option
(** Smallest class whose blocks fit a request of [n] payload bytes, or
    [None] if the request must be served as a large block. [n >= 0]. *)
