lib/mem/store.mli: Mm_runtime Space
