lib/mem/alloc_ops.mli: Alloc_intf Store
