lib/mem/alloc_ops.ml: Addr Alloc_intf Block_prefix Store
