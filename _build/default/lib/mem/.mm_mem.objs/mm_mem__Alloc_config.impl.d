lib/mem/alloc_config.ml: Mm_runtime
