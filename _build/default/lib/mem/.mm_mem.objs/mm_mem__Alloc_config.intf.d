lib/mem/alloc_config.mli: Mm_runtime
