lib/mem/block_prefix.mli:
