lib/mem/addr.ml:
