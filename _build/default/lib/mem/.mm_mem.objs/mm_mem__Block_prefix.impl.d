lib/mem/block_prefix.ml:
