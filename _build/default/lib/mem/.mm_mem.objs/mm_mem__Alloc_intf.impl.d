lib/mem/alloc_intf.ml: Alloc_config Mm_runtime Space Store
