lib/mem/store.ml: Addr Array Bytes Int64 List Mm_lockfree Mm_runtime Rt Space
