lib/mem/space.ml: Mm_runtime Rt
