lib/mem/addr.mli:
