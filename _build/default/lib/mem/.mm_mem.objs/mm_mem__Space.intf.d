lib/mem/space.mli: Mm_runtime
