let offset_bits = 32
let max_offset = (1 lsl offset_bits) - 1
let max_region = (1 lsl (62 - offset_bits)) - 1

let make ~region ~offset =
  if region < 0 || region > max_region then invalid_arg "Addr.make: region";
  if offset < 0 || offset > max_offset then invalid_arg "Addr.make: offset";
  (region lsl offset_bits) lor offset

let region addr = addr lsr offset_bits
let offset addr = addr land max_offset
let line addr = addr lsr 6
let null = 0
