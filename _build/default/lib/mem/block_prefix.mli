(** The 8-byte block prefix (paper §3.1, Fig. 6 lines 2–5).

    Every allocated block is preceded by one word. For a small block it
    holds a pointer to (here: the id of) the descriptor of its superblock;
    for a large block it holds the block's total length with a tag bit
    set — the paper's "large block bit" ("desc holds sz+1"). [free]
    dispatches on this word.

    Beyond the paper, a third kind supports [aligned_alloc]
    ({!Alloc_ops}): an {e offset} word sits just below an
    alignment-advanced payload and records the distance back to the
    underlying block's payload. *)

val small : desc_id:int -> int
val large : total_len:int -> int
val offset : delta:int -> int

val is_large : int -> bool
val is_offset : int -> bool

val desc_id : int -> int
(** Only meaningful for small prefixes. *)

val large_len : int -> int
(** Only meaningful when [is_large w]. *)

val offset_delta : int -> int
(** Only meaningful when [is_offset w]. *)

val prefix_bytes : int
(** 8: the distance between a block's base and its payload. *)
