let prefix_bytes = 8

(* Two tag bits: 0 = small (descriptor id), 1 = large (total length),
   2 = offset (aligned-allocation marker: the payload was advanced by
   [delta] bytes from the underlying block's payload). *)

let small ~desc_id = desc_id lsl 2
let large ~total_len = (total_len lsl 2) lor 1
let offset ~delta = (delta lsl 2) lor 2

let is_large w = w land 3 = 1
let is_offset w = w land 3 = 2
let desc_id w = w lsr 2
let large_len w = w lsr 2
let offset_delta w = w lsr 2
