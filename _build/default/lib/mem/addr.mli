(** Simulated 63-bit addresses.

    The paper's allocator works on a raw 64-bit address space; our
    substitute packs a {e region id} (a simulated mmap'd range backed by a
    [Bytes.t]) and a byte {e offset} within it into one OCaml immediate:

    [addr = (region_id lsl 32) lor offset]

    Pointer arithmetic inside a region is ordinary integer arithmetic on
    the address, exactly like the paper's
    [addr = sb + avail * sz] / [(ptr - sb) / sz] computations. Addresses
    are also the source of cache-line ids for the simulator: line
    [addr lsr 6] models 64-byte lines, and lines of distinct regions never
    collide. The null address is [0] (region 0 is reserved). *)

val offset_bits : int
val max_offset : int
val max_region : int

val make : region:int -> offset:int -> int
(** Pack. Raises [Invalid_argument] if out of range. *)

val region : int -> int
val offset : int -> int

val line : int -> int
(** Cache line id of the 64-byte-aligned window containing [addr]. *)

val null : int
(** The null address (region 0, offset 0). *)
