let prefix_bytes = 8

type t = {
  sbsize : int;
  sizes : int array;
  lookup : int array;  (* ceil(request/8) -> class index *)
  large_threshold : int;
}

let is_pow2 n = n > 0 && n land (n - 1) = 0

let build_sizes sbsize =
  let max_block = sbsize / 8 in
  let acc = ref [] in
  (* Fine-grained: multiples of 16 up to 256. *)
  let s = ref 16 in
  while !s <= min 256 max_block do
    acc := !s :: !acc;
    s := !s + 16
  done;
  (* Coarse: quarter-steps of the enclosing power of two, Hoard-style. *)
  let s = ref 320 in
  let step = ref 64 in
  while !s <= max_block do
    acc := !s :: !acc;
    (* step doubles at each power of two: 320,384,448,512,640,768,896,
       1024,1280,... *)
    if is_pow2 !s then step := !s / 4;
    s := !s + !step
  done;
  Array.of_list (List.rev !acc)

let make ?(sbsize = 16 * 1024) () =
  if not (is_pow2 sbsize) || sbsize < 4096 then
    invalid_arg "Size_class.make: sbsize must be a power of two >= 4096";
  let sizes = build_sizes sbsize in
  let largest = sizes.(Array.length sizes - 1) in
  let large_threshold = largest - prefix_bytes in
  let slots = (large_threshold / 8) + 1 in
  let lookup = Array.make slots 0 in
  let ci = ref 0 in
  for slot = 0 to slots - 1 do
    let request = slot * 8 in
    while sizes.(!ci) - prefix_bytes < request do
      incr ci
    done;
    lookup.(slot) <- !ci
  done;
  { sbsize; sizes; lookup; large_threshold }

let sbsize t = t.sbsize
let count t = Array.length t.sizes
let block_size t i = t.sizes.(i)
let blocks_per_superblock t i = t.sbsize / t.sizes.(i)
let large_threshold t = t.large_threshold

let class_of_request t n =
  if n < 0 then invalid_arg "Size_class.class_of_request: negative size";
  if n > t.large_threshold then None
  else Some t.lookup.((n + 7) / 8)
