(* CLI over the experiment catalogue: list experiments, run one, several
   or all, in quick or full mode, with a chosen simulation seed.

     dune exec bin/experiments.exe -- list
     dune exec bin/experiments.exe -- run table1 fig8a
     dune exec bin/experiments.exe -- run --full --seed 7        (all)
*)

open Cmdliner
module E = Mm_harness.Experiments

let list_cmd =
  let doc = "List the available experiments (one per paper table/figure)." in
  let run () =
    List.iter (fun (id, _) -> print_endline id) E.catalogue;
    0
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let run_cmd =
  let doc = "Run experiments by id (default: all)." in
  let ids =
    Arg.(value & pos_all string [] & info [] ~docv:"ID"
           ~doc:"Experiment ids (see $(b,list)); empty runs everything.")
  in
  let full =
    Arg.(value & flag & info [ "full" ]
           ~doc:"Use the full (paper-scale) parameter sets; much slower.")
  in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N"
           ~doc:"Simulation seed (schedules are deterministic per seed).")
  in
  let run ids full seed =
    let mode = if full then E.Full else E.Quick in
    let ids =
      match ids with [] -> List.map fst E.catalogue | ids -> ids
    in
    try
      List.iter
        (fun id ->
          let o = E.run id ~mode ~seed in
          Format.printf "%a%!" E.print_outcome o)
        ids;
      0
    with Invalid_argument msg ->
      Format.eprintf "error: %s@." msg;
      1
  in
  Cmd.v (Cmd.info "run" ~doc) Term.(const run $ ids $ full $ seed)

let () =
  let doc =
    "Reproduce the evaluation of 'Scalable Lock-Free Dynamic Memory \
     Allocation' (Michael, PLDI 2004)."
  in
  let info = Cmd.info "experiments" ~doc in
  exit (Cmd.eval' (Cmd.group info [ list_cmd; run_cmd ]))
