(* CLI over the checking subsystem (lib/check): systematic schedule
   exploration, counterexample replay and the lock-freedom monitor.

     dune exec bin/check.exe -- list
     dune exec bin/check.exe -- explore --target lf_alloc_notag \
         --threads 2 --bound 2 --budget 100000
     dune exec bin/check.exe -- explore --target lf_alloc --pct \
         --runs 10000
     dune exec bin/check.exe -- replay --target lf_alloc_notag \
         --schedule "7:1,12:0"
     dune exec bin/check.exe -- monitor --target lf_alloc
     dune exec bin/check.exe -- quick

   Exit codes: 0 = ran and expectations met; 1 = usage error; 2 =
   violation found (explore/replay) or monitor/quick failure.
*)

open Cmdliner
module T = Mm_check.Target
module S = Mm_check.Schedule
module E = Mm_check.Explore
module M = Mm_check.Monitor

let find_target name =
  match T.find name with
  | Some t -> Ok t
  | None ->
      Error
        (Printf.sprintf "unknown target %s (see `check list')" name)

let resolve_threads target = function 0 -> target.T.default_threads | n -> n

let print_report target threads (r : E.report) =
  Printf.printf "target %s, %d threads: %d execution%s, %d decision points%s\n"
    target.T.name threads r.E.executions
    (if r.E.executions = 1 then "" else "s")
    r.E.decision_points
    (if r.E.complete then ", complete" else "");
  match r.E.finding with
  | None ->
      if r.E.complete then print_endline "no violations"
      else print_endline "no violations (budget exhausted before the space)"
  | Some f ->
      Printf.printf "VIOLATION: %s\n" f.E.error;
      Printf.printf "schedule:  %s\n" (S.to_string f.E.schedule);
      Printf.printf "minimized: %s\n" (S.to_string f.E.minimized);
      Printf.printf
        "replay:    check replay --target %s --threads %d --schedule \"%s\"\n"
        target.T.name threads
        (S.to_string f.E.minimized)

(* Target / thread-count options shared by the subcommands. *)
let target_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "target" ] ~docv:"NAME" ~doc:"System under test (see $(b,list)).")

let threads_arg =
  Arg.(
    value & opt int 0
    & info [ "threads" ] ~docv:"N"
        ~doc:"Thread count (default: the target's own default).")

let list_cmd =
  let doc = "List the checkable targets." in
  let run () =
    List.iter
      (fun t ->
        Printf.printf "%-16s %d threads, %2d labels  %s\n" t.T.name
          t.T.default_threads
          (List.length t.T.labels)
          t.T.doc)
      T.all;
    0
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let explore_cmd =
  let doc =
    "Explore schedules: bounded-exhaustive by default, randomized with \
     $(b,--pct)."
  in
  let bound =
    Arg.(
      value & opt int 2
      & info [ "bound" ] ~docv:"B"
          ~doc:"Exhaustive: maximum preemptive deviations per schedule.")
  in
  let budget =
    Arg.(
      value & opt int 100_000
      & info [ "budget" ] ~docv:"K"
          ~doc:"Exhaustive: maximum executions before truncating.")
  in
  let pct =
    Arg.(
      value & flag
      & info [ "pct" ] ~doc:"Sample random-priority schedules instead.")
  in
  let runs =
    Arg.(
      value & opt int 10_000
      & info [ "runs" ] ~docv:"K" ~doc:"PCT: number of sampled schedules.")
  in
  let depth =
    Arg.(
      value & opt int 3
      & info [ "depth" ] ~docv:"D" ~doc:"PCT: targeted bug depth.")
  in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"PCT: seed.")
  in
  let run target threads bound budget pct runs depth seed =
    match find_target target with
    | Error e ->
        prerr_endline e;
        1
    | Ok t ->
        let threads = resolve_threads t threads in
        let r =
          if pct then E.pct t ~threads ~depth ~runs ~seed
          else E.exhaustive t ~threads ~bound ~budget
        in
        print_report t threads r;
        if r.E.finding = None then 0 else 2
  in
  Cmd.v (Cmd.info "explore" ~doc)
    Term.(
      const run $ target_arg $ threads_arg $ bound $ budget $ pct $ runs
      $ depth $ seed)

let replay_cmd =
  let doc = "Re-execute a recorded schedule and report its outcome." in
  let schedule =
    Arg.(
      required
      & opt (some string) None
      & info [ "schedule" ] ~docv:"SCHED"
          ~doc:"Deviation list, e.g. \"7:1,12:0\"; \"\" is the default \
                schedule.")
  in
  let run target threads schedule =
    match find_target target with
    | Error e ->
        prerr_endline e;
        1
    | Ok t -> (
        match S.of_string schedule with
        | exception Invalid_argument e ->
            prerr_endline e;
            1
        | sched -> (
            let threads = resolve_threads t threads in
            let tr = E.replay t ~threads sched in
            match tr.E.outcome with
            | Ok () ->
                Printf.printf "ok (%d decision points)\n"
                  (Array.length tr.E.points);
                0
            | Error e ->
                Printf.printf "VIOLATION: %s\n" e;
                2))
  in
  Cmd.v (Cmd.info "replay" ~doc)
    Term.(const run $ target_arg $ threads_arg $ schedule)

let monitor_cmd =
  let doc =
    "Kill or stall a thread at every label of the target; the others \
     must still complete (lock-freedom)."
  in
  let mode =
    Arg.(
      value
      & opt (enum [ ("kill", [ M.Kill ]); ("stall", [ M.Stall ]);
                    ("both", [ M.Kill; M.Stall ]) ])
          [ M.Kill; M.Stall ]
      & info [ "mode" ] ~docv:"MODE" ~doc:"kill, stall or both.")
  in
  let rounds =
    Arg.(
      value & opt int 3
      & info [ "rounds" ] ~docv:"R"
          ~doc:"Schedules per (label, mode): the default one plus R-1 \
                random ones.")
  in
  let run target threads modes rounds =
    match find_target target with
    | Error e ->
        prerr_endline e;
        1
    | Ok t ->
        let threads = resolve_threads t threads in
        let r = M.run t ~threads ~modes ~rounds in
        let fired, silent =
          List.partition (fun e -> e.M.fired) r.M.entries
        in
        List.iter
          (fun (e : M.entry) ->
            match e.M.result with
            | Ok () -> ()
            | Error msg ->
                Printf.printf "FAIL %s %s round %d: %s\n" e.M.label
                  (M.mode_name e.M.mode) e.M.round msg)
          fired;
        let unreached =
          List.sort_uniq compare (List.map (fun e -> e.M.label) silent)
        in
        List.iter
          (fun l ->
            if not (List.exists (fun e -> e.M.label = l) fired) then
              Printf.printf "note: label %s not reached by this workload\n" l)
          unreached;
        Printf.printf "%d probes, %d fired, %s\n" (List.length r.M.entries)
          (List.length fired)
          (if r.M.ok then "all clean" else "FAILURES");
        if r.M.ok then 0 else 2
  in
  Cmd.v (Cmd.info "monitor" ~doc)
    Term.(const run $ target_arg $ threads_arg $ mode $ rounds)

let quick_cmd =
  let doc =
    "CI gate: the planted bug must be found, minimized and replayable; \
     the real allocator must survive the same exploration and the \
     kill/stall monitor."
  in
  let run () =
    let fail fmt = Printf.ksprintf (fun s -> prerr_endline s; raise Exit) fmt in
    try
      (* 1. The planted ABA bug: bounded-exhaustive exploration must
         find it, and the minimized schedule must still reproduce it.
         (The bug needs 3 preemptions: the victim parked at its pop CAS,
         plus two switches arranging the anchor back to its snapshot.) *)
      let notag = Option.get (T.find "lf_alloc_notag") in
      let threads = notag.T.default_threads in
      let r = E.exhaustive notag ~threads ~bound:3 ~budget:20_000 in
      (match r.E.finding with
      | None -> fail "planted bug not found in %d executions" r.E.executions
      | Some f ->
          let tr = E.replay notag ~threads f.E.minimized in
          (match tr.E.outcome with
          | Ok () ->
              fail "minimized schedule %s does not replay"
                (S.to_string f.E.minimized)
          | Error _ -> ());
          Printf.printf
            "planted bug: found in %d executions, minimized to \"%s\" (%s)\n"
            r.E.executions
            (S.to_string f.E.minimized)
            f.E.error);
      (* 2. The real allocator under the same exhaustive budget... *)
      let real = Option.get (T.find "lf_alloc") in
      let r = E.exhaustive real ~threads ~bound:3 ~budget:20_000 in
      (match r.E.finding with
      | Some f -> fail "lf_alloc violation: %s (%s)" f.E.error
                    (S.to_string f.E.minimized)
      | None ->
          Printf.printf "lf_alloc exhaustive: clean (%d executions%s)\n"
            r.E.executions
            (if r.E.complete then ", complete" else ""));
      (* 3. ...and under 10k PCT samples. *)
      let r = E.pct real ~threads ~depth:3 ~runs:10_000 ~seed:1 in
      (match r.E.finding with
      | Some f -> fail "lf_alloc PCT violation: %s (%s)" f.E.error
                    (S.to_string f.E.minimized)
      | None ->
          Printf.printf "lf_alloc pct: clean (%d executions)\n"
            r.E.executions);
      (* 4. Kill/stall monitor over every allocator label. *)
      let m = M.run real ~threads ~modes:[ M.Kill; M.Stall ] ~rounds:2 in
      if not m.M.ok then begin
        List.iter
          (fun (e : M.entry) ->
            match e.M.result with
            | Error msg when e.M.fired ->
                Printf.eprintf "monitor %s %s round %d: %s\n" e.M.label
                  (M.mode_name e.M.mode) e.M.round msg
            | _ -> ())
          m.M.entries;
        fail "lock-freedom monitor failed"
      end;
      Printf.printf "monitor: %d probes clean\n" (List.length m.M.entries);
      (* 5. The block-cache frontend under the same exhaustive budget
         and kill/stall monitor: batched refill/flush must preserve
         address exclusivity, and a thread killed mid-refill/flush must
         only leak its cached blocks, never double-allocate them. *)
      let cached = Option.get (T.find "lf_alloc_cached") in
      let r = E.exhaustive cached ~threads ~bound:3 ~budget:20_000 in
      (match r.E.finding with
      | Some f ->
          fail "lf_alloc_cached violation: %s (%s)" f.E.error
            (S.to_string f.E.minimized)
      | None ->
          Printf.printf "lf_alloc_cached exhaustive: clean (%d executions%s)\n"
            r.E.executions
            (if r.E.complete then ", complete" else ""));
      let m = M.run cached ~threads ~modes:[ M.Kill; M.Stall ] ~rounds:2 in
      if not m.M.ok then begin
        List.iter
          (fun (e : M.entry) ->
            match e.M.result with
            | Error msg when e.M.fired ->
                Printf.eprintf "monitor %s %s round %d: %s\n" e.M.label
                  (M.mode_name e.M.mode) e.M.round msg
            | _ -> ())
          m.M.entries;
        fail "cached-frontend lock-freedom monitor failed"
      end;
      Printf.printf "cached monitor: %d probes clean\n"
        (List.length m.M.entries);
      (* 6. The warm-superblock cache under the same exhaustive budget
         and kill/stall monitor: the park/adopt windows (sbc.park,
         sbc.adopt) must
         preserve address exclusivity and the parked free lists, and a
         thread killed mid-park/adopt must only leak its superblock,
         never let it be adopted twice. *)
      let sbcache = Option.get (T.find "lf_alloc_sbcache") in
      let r = E.exhaustive sbcache ~threads ~bound:3 ~budget:20_000 in
      (match r.E.finding with
      | Some f ->
          fail "lf_alloc_sbcache violation: %s (%s)" f.E.error
            (S.to_string f.E.minimized)
      | None ->
          Printf.printf
            "lf_alloc_sbcache exhaustive: clean (%d executions%s)\n"
            r.E.executions
            (if r.E.complete then ", complete" else ""));
      let m = M.run sbcache ~threads ~modes:[ M.Kill; M.Stall ] ~rounds:2 in
      if not m.M.ok then begin
        List.iter
          (fun (e : M.entry) ->
            match e.M.result with
            | Error msg when e.M.fired ->
                Printf.eprintf "monitor %s %s round %d: %s\n" e.M.label
                  (M.mode_name e.M.mode) e.M.round msg
            | _ -> ())
          m.M.entries;
        fail "warm-superblock-cache lock-freedom monitor failed"
      end;
      Printf.printf "sbcache monitor: %d probes clean\n"
        (List.length m.M.entries);
      (* 6b. The owner-biased free-list mode under the same exhaustive
         budget and kill/stall monitor: the remote-free push and
         bulk-claim windows (pub.push, pub.claim) must preserve
         address exclusivity across ownership handoffs and rescues,
         and a thread killed mid-push/claim must only leak its chain,
         never double-serve a block. *)
      let ob = Option.get (T.find "lf_alloc_owner_biased") in
      let r = E.exhaustive ob ~threads ~bound:3 ~budget:20_000 in
      (match r.E.finding with
      | Some f ->
          fail "lf_alloc_owner_biased violation: %s (%s)" f.E.error
            (S.to_string f.E.minimized)
      | None ->
          Printf.printf
            "lf_alloc_owner_biased exhaustive: clean (%d executions%s)\n"
            r.E.executions
            (if r.E.complete then ", complete" else ""));
      let m = M.run ob ~threads ~modes:[ M.Kill; M.Stall ] ~rounds:2 in
      if not m.M.ok then begin
        List.iter
          (fun (e : M.entry) ->
            match e.M.result with
            | Error msg when e.M.fired ->
                Printf.eprintf "monitor %s %s round %d: %s\n" e.M.label
                  (M.mode_name e.M.mode) e.M.round msg
            | _ -> ())
          m.M.entries;
        fail "owner-biased lock-freedom monitor failed"
      end;
      Printf.printf "owner-biased monitor: %d probes clean\n"
        (List.length m.M.entries);
      (* 7. The page manager's buddy backend under the same exhaustive
         budget and kill/stall monitor: concurrent split/coalesce must
         never hand out overlapping page extents, and a thread killed
         inside any buddy.*/span.reserve window must only strand its
         own extent, never corrupt the tree for the survivors. *)
      let buddy = Option.get (T.find "buddy") in
      let r = E.exhaustive buddy ~threads ~bound:3 ~budget:20_000 in
      (match r.E.finding with
      | Some f ->
          fail "buddy violation: %s (%s)" f.E.error
            (S.to_string f.E.minimized)
      | None ->
          Printf.printf "buddy exhaustive: clean (%d executions%s)\n"
            r.E.executions
            (if r.E.complete then ", complete" else ""));
      let m = M.run buddy ~threads ~modes:[ M.Kill; M.Stall ] ~rounds:2 in
      if not m.M.ok then begin
        List.iter
          (fun (e : M.entry) ->
            match e.M.result with
            | Error msg when e.M.fired ->
                Printf.eprintf "monitor %s %s round %d: %s\n" e.M.label
                  (M.mode_name e.M.mode) e.M.round msg
            | _ -> ())
          m.M.entries;
        fail "buddy lock-freedom monitor failed"
      end;
      Printf.printf "buddy monitor: %d probes clean\n"
        (List.length m.M.entries);
      (* 8. The reuse-in-place descriptor pool (DESIGN.md §17) under the
         same exhaustive budget and kill/stall monitor: the spill/steal
         hand-off (desc.spill, desc.steal) must keep reused slots
         exclusively owned with monotonically increasing tags, and a
         thread killed mid-hand-off must only leak its own chain. *)
      let reuse = Option.get (T.find "desc_pool_reuse") in
      let r = E.exhaustive reuse ~threads ~bound:3 ~budget:20_000 in
      (match r.E.finding with
      | Some f ->
          fail "desc_pool_reuse violation: %s (%s)" f.E.error
            (S.to_string f.E.minimized)
      | None ->
          Printf.printf "desc_pool_reuse exhaustive: clean (%d executions%s)\n"
            r.E.executions
            (if r.E.complete then ", complete" else ""));
      let m = M.run reuse ~threads ~modes:[ M.Kill; M.Stall ] ~rounds:2 in
      if not m.M.ok then begin
        List.iter
          (fun (e : M.entry) ->
            match e.M.result with
            | Error msg when e.M.fired ->
                Printf.eprintf "monitor %s %s round %d: %s\n" e.M.label
                  (M.mode_name e.M.mode) e.M.round msg
            | _ -> ())
          m.M.entries;
        fail "reuse-pool lock-freedom monitor failed"
      end;
      Printf.printf "desc_pool_reuse monitor: %d probes clean\n"
        (List.length m.M.entries);
      0
    with Exit -> 2
  in
  Cmd.v (Cmd.info "quick" ~doc) Term.(const run $ const ())

let () =
  let doc =
    "Systematic concurrency checking of the lock-free allocator and its \
     building blocks (schedule exploration, linearizability oracles, \
     lock-freedom monitor)."
  in
  let info = Cmd.info "check" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [ list_cmd; explore_cmd; replay_cmd; monitor_cmd; quick_cmd ]))
