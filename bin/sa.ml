(* mm-sa CLI: flow-sensitive static analysis over the compiler's typed
   ASTs. Reads .cmt files out of _build, so build them first:

     dune build @check
     dune exec bin/sa.exe --
     dune exec bin/sa.exe -- --format json
     dune exec bin/sa.exe -- --analysis label-dominance lib/core

   Suppress a finding in source, adjacent to the code it excuses:

     (* mm-sa: allow <analysis>: <reason> *)

   Exit codes: 0 = clean; 1 = usage error, missing .cmt or unknown
   suppression token; 2 = findings. *)

open Cmdliner
module D = Mm_sa.Driver
module A = Mm_sa.Analysis

let find_root () =
  let rec up dir =
    if Sys.file_exists (Filename.concat dir "dune-project") then Some dir
    else
      let parent = Filename.dirname dir in
      if parent = dir then None else up parent
  in
  up (Sys.getcwd ())

let root_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "root" ] ~docv:"DIR"
        ~doc:
          "Repository root; paths are relative to it (default: the \
           nearest ancestor directory containing dune-project).")

let paths_arg =
  Arg.(
    value & pos_all string []
    & info [] ~docv:"PATH"
        ~doc:
          "Root-relative directories or files to analyze (default: \
           lib/core lib/lockfree lib/mem lib/pages).")

let format_arg =
  Arg.(
    value
    & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
    & info [ "format" ] ~docv:"FMT" ~doc:"Output format: text or json.")

let analyses_arg =
  let aconv =
    Arg.conv
      ( (fun s ->
          match A.of_name s with
          | Some a -> Ok a
          | None ->
              Error
                (`Msg
                  (Printf.sprintf "unknown analysis %s (analyses: %s)" s
                     (String.concat ", " (List.map A.name A.all))))),
        fun fmt a -> Format.pp_print_string fmt (A.name a) )
  in
  Arg.(
    value & opt_all aconv []
    & info [ "analysis" ] ~docv:"ANALYSIS"
        ~doc:"Only run $(docv) (repeatable).")

let run root paths format analyses =
  let root =
    match root with
    | Some r -> Ok r
    | None -> (
        match find_root () with
        | Some r -> Ok r
        | None -> Error "no dune-project found above the current directory")
  in
  match root with
  | Error e ->
      prerr_endline ("sa: " ^ e);
      1
  | Ok root ->
      let analyses = if analyses = [] then A.all else analyses in
      let paths = if paths = [] then D.default_paths else paths in
      let r = D.run ~root ~analyses ~paths () in
      let fmt = Format.std_formatter in
      (match format with
      | `Text -> Mm_report.Output.text fmt r
      | `Json -> Mm_report.Output.json fmt r);
      if r.D.errors <> [] then 1 else if r.D.findings <> [] then 2 else 0

let () =
  let doc =
    "Flow-sensitive static analysis of the lock-free allocator's CAS \
     protocols over typed ASTs (analyses: "
    ^ String.concat ", " (List.map A.name A.all)
    ^ ")."
  in
  let info = Cmd.info "sa" ~doc in
  exit
    (Cmd.eval'
       (Cmd.v info
          Term.(const run $ root_arg $ paths_arg $ format_arg $ analyses_arg)))
