(* CLI over the observability layer (lib/obs): record a traced workload
   run on the deterministic simulator, report per-site counters, export
   chrome://tracing JSON.

     dune exec bin/trace.exe -- list
     dune exec bin/trace.exe -- record threadtest --threads 16 \
         --heaps 1 -o /tmp/threadtest.trace.json
     dune exec bin/trace.exe -- report threadtest --threads 16 --heaps 1
     dune exec bin/trace.exe -- report -i /tmp/threadtest.trace.json
     dune exec bin/trace.exe -- export --chrome \
         -i /tmp/threadtest.trace.json -o /tmp/threadtest.chrome.json

   Exit codes: 0 = ok; 1 = usage error / unreadable input.
*)

open Cmdliner
module H = Mm_harness.Traced
module TF = Mm_obs.Trace_file

let workload_arg =
  Arg.(
    value
    & pos 0 string "threadtest"
    & info [] ~docv:"WORKLOAD"
        ~doc:"Workload to run (see $(b,list)); quick-mode parameters.")

let threads_arg =
  Arg.(
    value & opt int 16
    & info [ "threads" ] ~docv:"N" ~doc:"Thread count.")

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"Simulator seed.")

let cpus_arg =
  Arg.(
    value & opt int 16
    & info [ "cpus" ] ~docv:"P" ~doc:"Simulated processors.")

let heaps_arg =
  Arg.(
    value & opt int 0
    & info [ "heaps" ] ~docv:"H"
        ~doc:"Processor heaps (default: one per simulated CPU; the \
              EXPERIMENTS.md contention census uses 1).")

let capacity_arg =
  Arg.(
    value & opt int 65536
    & info [ "capacity" ] ~docv:"E"
        ~doc:"Per-thread event-ring capacity; overflow drops (and \
              counts) events.")

let allocator_arg =
  Arg.(
    value & opt string "new"
    & info [ "allocator" ] ~docv:"A"
        ~doc:"Allocator under trace (new, new-reuse, new-ob, new-cached, bw, \
              hoard, ptmalloc, libc). new-reuse is the $(b,new) \
              allocator over the reuse-in-place descriptor pool \
              (DESIGN.md S17).")

let sb_cache_arg =
  Arg.(
    value & opt int 0
    & info [ "sb-cache" ] ~docv:"D"
        ~doc:"Warm-superblock cache depth per size class for the               $(b,new) allocator (0 = off, the paper-verbatim path).")

let page_manager_arg =
  Arg.(
    value & flag
    & info [ "page-manager" ]
        ~doc:"Route the $(b,new) allocator's large blocks and superblock \
              carving through the span reservoir + lock-free buddy \
              (DESIGN.md S15; off = the paper-verbatim \
              one-mmap-per-request path).")

let input_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "i"; "input" ] ~docv:"FILE"
        ~doc:"Read a recorded trace instead of running a workload.")

let capture ~workload ~threads ~seed ~cpus ~heaps ~capacity ~allocator
    ~sb_cache ~page_manager =
  match H.find_workload workload with
  | None ->
      Error (Printf.sprintf "unknown workload %s (see `trace list')" workload)
  | Some wl ->
      let nheaps = if heaps = 0 then None else Some heaps in
      Ok
        (H.capture ~cpus ?nheaps ~capacity ~allocator ~sb_cache ~page_manager
           ~name:workload ~threads ~seed wl)

let obtain input workload threads seed cpus heaps capacity allocator sb_cache
    page_manager =
  match input with
  | Some path -> TF.load path
  | None ->
      Result.map
        (fun c -> c.H.trace)
        (capture ~workload ~threads ~seed ~cpus ~heaps ~capacity ~allocator
           ~sb_cache ~page_manager)

let usage_err e =
  prerr_endline e;
  1

let list_cmd =
  let doc = "List the traceable workloads." in
  let run () =
    List.iter (fun (name, _) -> print_endline name) H.workloads;
    0
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let record_cmd =
  let doc = "Run a workload under the tracer and save the trace file." in
  let out =
    Arg.(
      value & opt string "trace.json"
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output trace file.")
  in
  let run workload threads seed cpus heaps capacity allocator sb_cache
      page_manager out =
    match
      capture ~workload ~threads ~seed ~cpus ~heaps ~capacity ~allocator
        ~sb_cache ~page_manager
    with
    | Error e -> usage_err e
    | Ok c ->
        TF.save out c.H.trace;
        let m = c.H.trace.TF.meta in
        Printf.printf
          "recorded %s x%d (%s, seed %d): %d events, %d dropped -> %s\n"
          m.TF.workload m.TF.threads m.TF.allocator m.TF.seed
          (List.length c.H.trace.TF.events)
          c.H.trace.TF.dropped out;
        0
  in
  Cmd.v (Cmd.info "record" ~doc)
    Term.(
      const run $ workload_arg $ threads_arg $ seed_arg $ cpus_arg
      $ heaps_arg $ capacity_arg $ allocator_arg $ sb_cache_arg
      $ page_manager_arg $ out)

let report_cmd =
  let doc =
    "Aggregate a trace (from $(b,-i) or a fresh run) into per-site \
     counters."
  in
  let format =
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
      & info [ "format" ] ~docv:"FMT" ~doc:"text or json.")
  in
  let max_mmap =
    Arg.(
      value
      & opt (some float) None
      & info [ "max-mmap-per-1k" ] ~docv:"X"
          ~doc:"CI gate: exit 2 when the run's simulated mmap calls per \
                1k allocator ops exceed $(docv) (guards the \
                superblock-recycling paths against regression).")
  in
  let max_large_mmap =
    Arg.(
      value
      & opt (some float) None
      & info [ "max-large-mmap-per-1k" ] ~docv:"X"
          ~doc:"CI gate: exit 2 when the run's large-path mmap calls \
                (site store.mmap.large) per 1k allocator ops exceed \
                $(docv) (guards the page-manager large-block routing \
                against regression).")
  in
  let max_hp_scan =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-hp-scan" ] ~docv:"N"
          ~doc:"CI gate: exit 2 when the run records more than $(docv) \
                hazard-pointer scans (absolute count; the reuse-in-place \
                descriptor pool, DESIGN.md S17, is gated at 0).")
  in
  let max_failed_cas =
    Arg.(
      value & opt_all string []
      & info [ "max-failed-cas-per-1k" ] ~docv:"SITES:X"
          ~doc:"CI gate (repeatable): exit 2 when the summed failed-CAS \
                count of the named contention-census sites, joined with \
                $(b,+) (e.g. anchor.pop+anchor.free:5.0), exceeds X per \
                1k allocator ops. The owner-biased free-list mode \
                (DESIGN.md S19) is gated on the anchor sites it \
                collapses.")
  in
  let run input workload threads seed cpus heaps capacity allocator sb_cache
      page_manager format max_mmap max_large_mmap max_hp_scan max_failed_cas =
    match
      obtain input workload threads seed cpus heaps capacity allocator
        sb_cache page_manager
    with
    | Error e -> usage_err e
    | Ok trace -> (
        (match format with
        | `Text -> List.iter print_endline (H.report_lines trace)
        | `Json ->
            print_endline (Mm_obs.Json.to_string (H.report_json trace)));
        let m = trace.TF.meta in
        let aops = m.TF.mallocs + m.TF.frees in
        let rate n =
          if aops = 0 then Float.infinity
          else 1000.0 *. float_of_int n /. float_of_int aops
        in
        let gate what limit n =
          let r = rate n in
          if r > limit then begin
            Printf.eprintf
              "%s gate FAILED: %.2f per 1k ops (%d / %d ops) > limit %.2f\n"
              what r n aops limit;
            2
          end
          else begin
            Printf.printf "%s gate ok: %.2f per 1k ops <= %.2f\n" what r
              limit;
            0
          end
        in
        let count_gate what limit n =
          if n > limit then begin
            Printf.eprintf "%s gate FAILED: %d > limit %d\n" what n limit;
            2
          end
          else begin
            Printf.printf "%s gate ok: %d <= %d\n" what n limit;
            0
          end
        in
        let failed_cas_gate spec =
          match String.rindex_opt spec ':' with
          | None ->
              usage_err
                (spec ^ ": expected SITE[+SITE..]:BOUND (see `trace report \
                         --help')")
          | Some i -> (
              let sites =
                String.split_on_char '+' (String.sub spec 0 i)
              in
              let bound =
                float_of_string_opt
                  (String.sub spec (i + 1) (String.length spec - i - 1))
              in
              let known = List.map fst H.core_sites in
              match
                ( bound,
                  List.find_opt (fun s -> not (List.mem s known)) sites )
              with
              | None, _ -> usage_err (spec ^ ": bound is not a number")
              | _, Some bad ->
                  usage_err
                    (bad ^ ": not a contention-census site (see `trace \
                            report' output)")
              | Some b, None ->
                  gate
                    (String.concat "+" sites ^ " failed-CAS")
                    b
                    (H.trace_failed_cas trace ~sites))
        in
        let codes =
          List.filter_map Fun.id
            [
              Option.map
                (fun l -> gate "mmap" l (H.trace_mmaps trace))
                max_mmap;
              Option.map
                (fun l -> gate "large-mmap" l (H.trace_large_mmaps trace))
                max_large_mmap;
              Option.map
                (fun l -> count_gate "hp-scan" l (H.trace_hp_scans trace))
                max_hp_scan;
            ]
          @ List.map failed_cas_gate max_failed_cas
        in
        List.fold_left max 0 codes)
  in
  Cmd.v (Cmd.info "report" ~doc)
    Term.(
      const run $ input_arg $ workload_arg $ threads_arg $ seed_arg
      $ cpus_arg $ heaps_arg $ capacity_arg $ allocator_arg $ sb_cache_arg
      $ page_manager_arg $ format $ max_mmap $ max_large_mmap $ max_hp_scan
      $ max_failed_cas)

let export_cmd =
  let doc =
    "Export a trace (from $(b,-i) or a fresh run) as \
     chrome://tracing-compatible JSON."
  in
  let chrome =
    Arg.(
      value & flag
      & info [ "chrome" ]
          ~doc:"Chrome Trace Event Format (the default and only format).")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Output file (default: stdout).")
  in
  let run input workload threads seed cpus heaps capacity allocator sb_cache
      page_manager _chrome out =
    match
      obtain input workload threads seed cpus heaps capacity allocator
        sb_cache page_manager
    with
    | Error e -> usage_err e
    | Ok trace ->
        let s =
          Mm_obs.Chrome.to_string
            ~process_name:
              (Printf.sprintf "mmalloc %s x%d" trace.TF.meta.TF.workload
                 trace.TF.meta.TF.threads)
            ~dropped:trace.TF.dropped trace.TF.events
        in
        (match out with
        | None -> print_endline s
        | Some path ->
            let oc = open_out path in
            output_string oc s;
            output_char oc '\n';
            close_out oc;
            Printf.printf "wrote %s (%d events)\n" path
              (List.length trace.TF.events));
        0
  in
  Cmd.v (Cmd.info "export" ~doc)
    Term.(
      const run $ input_arg $ workload_arg $ threads_arg $ seed_arg
      $ cpus_arg $ heaps_arg $ capacity_arg $ allocator_arg $ sb_cache_arg
      $ page_manager_arg $ chrome $ out)

let () =
  let doc = "Lock-free allocator observability: record / report / export." in
  let info = Cmd.info "trace" ~doc ~version:"%%VERSION%%" in
  exit
    (Cmd.eval'
       (Cmd.group info [ list_cmd; record_cmd; report_cmd; export_cmd ]))
