(* mm-lint CLI: static analysis of the repository's own sources.

     dune exec bin/lint.exe --                      # lint lib/ and bin/
     dune exec bin/lint.exe -- --format json
     dune exec bin/lint.exe -- --root . lib/core
     dune exec bin/lint.exe -- --rule unlabelled-cas-window lib

   Suppress a finding in source, adjacent to the code it excuses:

     (* mm-lint: allow <rule>: <reason> *)

   Exit codes: 0 = clean; 1 = usage error, unreadable/unparseable file
   or unknown suppression rule; 2 = findings. *)

open Cmdliner
module D = Mm_lint.Driver
module R = Mm_lint.Rule

let find_root () =
  let rec up dir =
    if Sys.file_exists (Filename.concat dir "dune-project") then Some dir
    else
      let parent = Filename.dirname dir in
      if parent = dir then None else up parent
  in
  up (Sys.getcwd ())

let root_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "root" ] ~docv:"DIR"
        ~doc:
          "Repository root; paths are relative to it (default: the \
           nearest ancestor directory containing dune-project).")

let paths_arg =
  Arg.(
    value & pos_all string []
    & info [] ~docv:"PATH"
        ~doc:"Root-relative directories or files to lint (default: lib bin).")

let format_arg =
  Arg.(
    value
    & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
    & info [ "format" ] ~docv:"FMT" ~doc:"Output format: text or json.")

let rules_arg =
  let rule_conv =
    Arg.conv
      ( (fun s ->
          match R.of_name s with
          | Some r -> Ok r
          | None ->
              Error
                (`Msg
                  (Printf.sprintf "unknown rule %s (rules: %s)" s
                     (String.concat ", " (List.map R.name R.all))))),
        fun fmt r -> Format.pp_print_string fmt (R.name r) )
  in
  Arg.(
    value & opt_all rule_conv []
    & info [ "rule" ] ~docv:"RULE"
        ~doc:"Only report findings of $(docv) (repeatable).")

let run root paths format rules =
  let root =
    match root with
    | Some r -> Ok r
    | None -> (
        match find_root () with
        | Some r -> Ok r
        | None -> Error "no dune-project found above the current directory")
  in
  match root with
  | Error e ->
      prerr_endline ("lint: " ^ e);
      1
  | Ok root ->
      let paths = if paths = [] then [ "lib"; "bin" ] else paths in
      let r = D.run ~root ~paths in
      let r =
        if rules = [] then r
        else
          let names = List.map R.name rules in
          let keep (f : Mm_lint.Finding.t) =
            List.mem f.Mm_report.Finding.rule names
          in
          {
            r with
            D.findings = List.filter keep r.D.findings;
            D.suppressed = List.filter keep r.D.suppressed;
          }
      in
      let fmt = Format.std_formatter in
      (match format with
      | `Text -> Mm_lint.Report.text fmt r
      | `Json -> Mm_lint.Report.json fmt r);
      if r.D.errors <> [] then 1 else if r.D.findings <> [] then 2 else 0

let () =
  let doc =
    "Static analysis proving the label/atomics/hazard-pointer discipline \
     of the lock-free allocator sources (rules: "
    ^ String.concat ", " (List.map R.name R.all)
    ^ ")."
  in
  let info = Cmd.info "lint" ~doc in
  exit
    (Cmd.eval'
       (Cmd.v info Term.(const run $ root_arg $ paths_arg $ format_arg $ rules_arg)))
