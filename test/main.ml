let () =
  Alcotest.run "mmalloc"
    [
      ("smoke", Test_smoke.cases);
      ("specialization", Test_specialization.cases);
      ("owner-bias", Test_owner_bias.cases);
      ("workloads-smoke", Test_workloads_smoke.cases);
      ("prng", Test_prng.cases);
      ("codecs", Test_codecs.cases);
      ("sim", Test_sim.cases);
      ("rt", Test_rt.cases);
      ("lockfree", Test_lockfree.cases);
      ("store", Test_store.cases);
      ("desc", Test_desc.cases);
      ("conformance", Test_alloc_conformance.cases);
      ("lf-alloc", Test_lf_alloc.cases);
      ("locks", Test_locks.cases);
      ("baselines", Test_baselines.cases);
      ("fault-injection", Test_fault_injection.cases);
      ("block-cache", Test_block_cache.cases);
      ("sb-cache", Test_sb_cache.cases);
      ("pages", Test_pages.cases);
      ("workloads", Test_workloads.cases);
      ("alloc-ops", Test_alloc_ops.cases);
      ("trace", Test_trace.cases);
      ("model", Test_model.cases);
      ("harness", Test_harness.cases);
      ("metrics", Test_metrics.cases);
      ("check", Test_check.cases);
      ("lint", Test_lint.cases);
      ("sa-cfg", Test_sa_cfg.cases);
      ("sa", Test_sa.cases);
      ("obs", Test_obs.cases);
    ]
