(* Deep tests of the lock-free allocator: superblock state machine,
   credits discipline, forced execution of every algorithm path via
   schedule control, the paper's ABA scenario, and negative tests of the
   invariant checker. *)

open Mm_runtime
module A = Mm_core.Lf_alloc.Make (Real_rt)
module As = Mm_core.Lf_alloc.Make (Sim_rt)
module L = Mm_core.Labels
module Anchor = Mm_core.Anchor
module D = Mm_core.Descriptor.Make (Real_rt)
module Pl = Mm_core.Partial_list.Make (Real_rt)
module Pool = Mm_core.Desc_pool.Make (Real_rt)
module Cfg = Mm_mem.Alloc_config

module Store = struct
  include Mm_mem.Store
  include Mm_mem.Store.Make (Real_rt)
end

module Store_s = Mm_mem.Store.Make (Sim_rt)
open Util

(* Small superblocks make state transitions cheap to reach. *)
let small_cfg = Cfg.make ~nheaps:1 ~sbsize:4096 ()
let probe_kill_cfg = Cfg.make ~nheaps:1 ~sbsize:4096 ~maxcredits:1 ()

let blocks_per_sb t = Mm_mem.Size_class.blocks_per_superblock (A.size_classes t) 0
let blocks_per_sb_s t =
  Mm_mem.Size_class.blocks_per_superblock (As.size_classes t) 0

(* ---------------- sequential state machine ---------------- *)

let fill_superblock () =
  let t = A.create () small_cfg in
  let n = blocks_per_sb t in
  (* Fill the first superblock completely. *)
  let addrs = Array.init n (fun _ -> A.malloc t 8) in
  (* Find the descriptor through a block prefix. *)
  let prefix = Store.read_word (A.store t) (addrs.(0) - 8) in
  let d = D.get (A.descriptor_table t) (Mm_mem.Block_prefix.desc_id prefix) in
  Alcotest.(check bool) "superblock is FULL" true
    (Anchor.state (Real_rt.Atomic.get d.D.anchor) = Anchor.Full);
  Alcotest.(check int) "count 0" 0 (Anchor.count (Real_rt.Atomic.get d.D.anchor));
  (* First free makes it PARTIAL and parks it in the heap Partial slot. *)
  A.free t addrs.(0);
  Alcotest.(check bool) "PARTIAL after first free" true
    (Anchor.state (Real_rt.Atomic.get d.D.anchor) = Anchor.Partial);
  (match A.heap_partial_desc t ~sc:0 ~heap:0 with
  | Some d' -> Alcotest.(check bool) "in Partial slot" true (d' == d)
  | None ->
      (* It may instead be in the size-class list if the slot was taken. *)
      Alcotest.(check bool) "in partial structures" true
        (List.memq d (Pl.to_list (A.partial_list t ~sc:0))));
  A.check_invariants t;
  (* Freeing everything else empties the superblock and returns it. *)
  let munmaps_before = (Store.os_stats (A.store t)).Store.munmap_calls in
  for i = 1 to n - 1 do
    A.free t addrs.(i)
  done;
  Alcotest.(check bool) "EMPTY at the end" true
    (Anchor.state (Real_rt.Atomic.get d.D.anchor) = Anchor.Empty);
  Alcotest.(check int) "superblock munmapped" (munmaps_before + 1)
    (Store.os_stats (A.store t)).Store.munmap_calls;
  A.check_invariants t

let malloc_from_partial_path () =
  let hits = Hashtbl.create 16 in
  let on_label ~tid:_ l =
    Hashtbl.replace hits l (1 + Option.value (Hashtbl.find_opt hits l) ~default:0);
    Sim.Continue
  in
  let s = sim ~cpus:1 ~on_label () in
  let t = As.create s small_cfg in
  let n = blocks_per_sb_s t in
  ignore
    (Sim.run s
       [|
         (fun _ ->
           let addrs = Array.init n (fun _ -> As.malloc t 8) in
           As.free t addrs.(0);
           (* Active is gone (FULL), one block in the Partial slot:
              the next malloc must take the MallocFromPartial path. *)
           let b = As.malloc t 8 in
           Alcotest.(check int) "recycled the freed slot" addrs.(0) b;
           As.free t b;
           Array.iteri (fun i a -> if i > 0 then As.free t a) addrs);
       |]);
  List.iter
    (fun l ->
      Alcotest.(check bool) ("hit " ^ l) true (Hashtbl.mem hits l))
    [ L.mp_got_partial; L.mp_reserve_cas; L.mp_pop_cas; L.free_empty ];
  As.check_invariants t

let credits_bounds () =
  let t = A.create () (Cfg.make ~nheaps:1 ~maxcredits:64 ()) in
  let a = A.malloc t 8 in
  (match A.heap_active_desc t ~sc:0 ~heap:0 with
  | Some (_, credits) ->
      Alcotest.(check bool) "credits within field bound" true
        (credits >= 0 && credits <= 63)
  | None -> Alcotest.fail "expected an active superblock");
  A.free t a;
  A.check_invariants t

let maxcredits_one () =
  (* The degenerate credits configuration exercises UpdateActive on
     every allocation. *)
  let t = A.create () (Cfg.make ~nheaps:1 ~maxcredits:1 ()) in
  let addrs = Array.init 500 (fun _ -> A.malloc t 8) in
  Alcotest.(check int) "distinct" 500
    (List.length (List.sort_uniq compare (Array.to_list addrs)));
  Array.iter (A.free t) addrs;
  A.check_invariants t

let op_counts () =
  let t = A.create () small_cfg in
  let addrs = Array.init 10 (fun _ -> A.malloc t 8) in
  Array.iter (A.free t) addrs;
  Alcotest.(check (pair int int)) "counts" (10, 10) (A.op_counts t)

(* ---------------- schedule-forced paths ---------------- *)

(* UpdateActive install race (Fig. 4 UpdateActive lines 4-8): thread 0
   holds morecredits and blocks just before reinstalling; thread 1
   installs a new superblock first; thread 0 must return the credits and
   make its superblock PARTIAL. *)
let ua_return_credits_path () =
  let t1_done = ref false in
  let ua_returned = ref 0 in
  let blocked_once = ref false in
  let on_label ~tid l =
    if l = L.ua_install && tid = 0 && not !blocked_once then begin
      blocked_once := true;
      Sim.Block_until (fun () -> !t1_done)
    end
    else begin
      if l = L.ua_return_credits then incr ua_returned;
      Sim.Continue
    end
  in
  let s = sim ~cpus:2 ~on_label () in
  let t = As.create s (Cfg.make ~nheaps:1 ~maxcredits:1 ()) in
  ignore
    (Sim.run s
       [|
         (fun _ ->
           (* With maxcredits=1 the second malloc reaches UpdateActive. *)
           let a = As.malloc t 8 in
           let b = As.malloc t 8 in
           As.free t a;
           As.free t b);
         (fun _ ->
           while not !blocked_once do
             Sim_rt.yield (As.rt t)
           done;
           let c = As.malloc t 8 in
           As.free t c;
           t1_done := true);
       |]);
  Alcotest.(check bool) "took the return-credits path" true (!ua_returned >= 1);
  As.check_invariants t

(* MallocFromNewSB race (Fig. 4 lines 16-17): both threads build a new
   superblock; the loser must free its superblock and retire the
   descriptor. *)
let mnsb_race_path () =
  let t1_done = ref false in
  let blocked_once = ref false in
  let on_label ~tid l =
    if l = L.mnsb_install && tid = 0 && not !blocked_once then begin
      blocked_once := true;
      Sim.Block_until (fun () -> !t1_done)
    end
    else Sim.Continue
  in
  let s = sim ~cpus:2 ~on_label () in
  let t = As.create s (Cfg.make ~nheaps:1 ()) in
  let results = Array.make 2 0 in
  ignore
    (Sim.run s
       [|
         (fun _ -> results.(0) <- As.malloc t 8);
         (fun _ ->
           while not !blocked_once do
             Sim_rt.yield (As.rt t)
           done;
           results.(1) <- As.malloc t 8;
           t1_done := true);
       |]);
  Alcotest.(check bool) "both mallocs succeeded, distinct" true
    (results.(0) <> 0 && results.(1) <> 0 && results.(0) <> results.(1));
  (* The losing superblock went straight back to the OS. *)
  let os = Store_s.os_stats (As.store t) in
  Alcotest.(check int) "loser freed its superblock" 1 os.Store.sb_frees;
  As.free t results.(0);
  As.free t results.(1);
  As.check_invariants t

(* The paper's §3.2.3 ABA scenario: thread 0 pauses between reading the
   anchor (and the next pointer) and its pop CAS; thread 1 pops that
   very block, pops another, and frees the first back — restoring the
   same avail index with different successors. The tag must make thread
   0's CAS fail and retry (observable as a second visit to the pop-CAS
   label). *)
let aba_tag_defence () =
  let t1_done = ref false in
  let blocked_once = ref false in
  let pop_visits = ref 0 in
  let on_label ~tid l =
    if l = L.ma_pop_cas && tid = 0 then begin
      incr pop_visits;
      if not !blocked_once then begin
        blocked_once := true;
        Sim.Block_until (fun () -> !t1_done)
      end
      else Sim.Continue
    end
    else Sim.Continue
  in
  let s = sim ~cpus:2 ~on_label () in
  let t = As.create s (Cfg.make ~nheaps:1 ()) in
  let warm = ref 0 and a0 = ref 0 in
  let t1_addrs = ref [] in
  ignore
    (Sim.run s
       [|
         (fun _ ->
           (* Warm the heap so thread 0's next malloc pops from the
              active superblock. *)
           warm := As.malloc t 8;
           a0 := As.malloc t 8);
         (fun _ ->
           while not !blocked_once do
             Sim_rt.yield (As.rt t)
           done;
           (* Reproduce A-B-A on the free list head. *)
           let x = As.malloc t 8 in
           let y = As.malloc t 8 in
           As.free t x;
           (* x is free again: thread 0's retried pop may legitimately
              return it. Only y remains live from this thread. *)
           t1_addrs := [ y ];
           t1_done := true);
       |]);
  Alcotest.(check bool) "thread 0 retried its pop CAS" true (!pop_visits >= 2);
  (* No live block handed out twice. *)
  let live = !warm :: !a0 :: !t1_addrs in
  Alcotest.(check int) "no double allocation among live blocks"
    (List.length live)
    (List.length (List.sort_uniq compare live));
  As.check_invariants t

(* ---------------- invariant checker self-test ---------------- *)

let checker_detects_prefix_corruption () =
  let t = A.create () small_cfg in
  let a = A.malloc t 8 in
  Store.write_word (A.store t) (a - 8) (Mm_mem.Block_prefix.small ~desc_id:77);
  Alcotest.(check bool) "corrupt prefix detected" true
    (match A.check_invariants t with
    | _ -> false
    | exception Failure _ -> true)

let checker_detects_freelist_corruption () =
  let t = A.create () small_cfg in
  let a = A.malloc t 8 in
  let b = A.malloc t 8 in
  A.free t a;
  A.free t b;
  (* b is the free-list head; smash its next link out of range. *)
  Store.write_word (A.store t) (b - 8) 4095;
  Alcotest.(check bool) "corrupt free list detected" true
    (match A.check_invariants t with
    | _ -> false
    | exception Failure _ -> true)

(* ---------------- config variations ---------------- *)

let config_matrix () =
  List.iter
    (fun cfg ->
      let t = A.create () cfg in
      let addrs = Array.init 400 (fun i -> A.malloc t (1 + (i mod 200))) in
      Alcotest.(check int) "distinct" 400
        (List.length (List.sort_uniq compare (Array.to_list addrs)));
      Array.iter (A.free t) addrs;
      A.check_invariants t)
    [
      Cfg.make ~sbsize:4096 ();
      Cfg.make ~sbsize:65536 ();
      Cfg.make ~partial_policy:Cfg.Lifo ();
      Cfg.make ~desc_pool:Cfg.Tagged ();
      Cfg.make ~hyperblocks:true ();
      Cfg.make ~nheaps:1 ();
      Cfg.make ~nheaps:32 ();
      Cfg.make ~maxcredits:2 ();
    ]

let uniproc_concurrent () =
  (* nheaps=1 under 4 simulated threads: everything contends on one
     heap and must still be correct. *)
  for seed = 1 to 5 do
    let s = sim ~cpus:4 ~seed () in
    let t = As.create s (Cfg.make ~nheaps:1 ()) in
    let body tid =
      let rng = Prng.create tid in
      let slots = Array.make 16 0 in
      for _ = 1 to 300 do
        let i = Prng.int rng 16 in
        if slots.(i) <> 0 then begin
          As.free t slots.(i);
          slots.(i) <- 0
        end
        else slots.(i) <- As.malloc t (Prng.int_in rng 1 100)
      done;
      Array.iter (fun a -> if a <> 0 then As.free t a) slots
    in
    ignore (Sim.run s (Array.init 4 (fun i _ -> body i)));
    As.check_invariants t
  done

let introspection () =
  let t = A.create () small_cfg in
  Alcotest.(check bool) "no active before first malloc" true
    (A.heap_active_desc t ~sc:0 ~heap:0 = None);
  let a = A.malloc t 8 in
  Alcotest.(check bool) "active after malloc" true
    (A.heap_active_desc t ~sc:0 ~heap:0 <> None);
  Alcotest.(check int) "nheaps honours config" 1 (A.nheaps t);
  Alcotest.(check bool) "pool reachable" true (Pool.available (A.desc_pool t) >= 0);
  A.free t a

let wild_free_guard () =
  let t = A.create () small_cfg in
  let a = A.malloc t 8 in
  (* Interior pointer: not a block boundary. *)
  Alcotest.(check bool) "interior pointer rejected" true
    (match A.free t (a + 4) with
    | _ -> false
    | exception Invalid_argument _ -> true);
  A.free t a;
  A.check_invariants t

let multi_kill_fuzz () =
  (* Kill several threads at random labelled points (seeded), across
     schedules: survivors always finish. *)
  for seed = 1 to 8 do
    let rng = Prng.create (seed * 7) in
    let to_kill = 1 + Prng.int rng 2 in
    let killed = ref 0 in
    let on_label ~tid:_ _ =
      if !killed < to_kill && Prng.int rng 400 = 0 then begin
        incr killed;
        Sim.Kill
      end
      else Sim.Continue
    in
    let s = sim ~cpus:4 ~seed ~max_cycles:50_000_000_000 ~on_label () in
    let t = As.create s probe_kill_cfg in
    let completed = ref 0 in
    let body tid =
      let rng = Prng.create tid in
      let burst = Array.make 200 0 in
      for _ = 1 to 3 do
        for i = 0 to 199 do
          burst.(i) <- As.malloc t 8
        done;
        Prng.shuffle rng burst;
        Array.iter (As.free t) burst
      done;
      incr completed
    in
    let r = Sim.run s (Array.init 4 (fun i _ -> body i)) in
    Alcotest.(check int)
      (Printf.sprintf "seed %d: completions + kills = threads" seed)
      4
      (!completed + r.Sim.counters.Sim.killed)
  done

let cases =
  [
    case "superblock state machine" fill_superblock;
    case "wild free rejected" wild_free_guard;
    case "multi-kill fuzz (sim x8)" multi_kill_fuzz;
    case "malloc-from-partial path" malloc_from_partial_path;
    case "credits bounds" credits_bounds;
    case "maxcredits=1" maxcredits_one;
    case "op counts" op_counts;
    case "forced UpdateActive credit return" ua_return_credits_path;
    case "forced new-superblock race" mnsb_race_path;
    case "ABA defence via anchor tag" aba_tag_defence;
    case "checker detects prefix corruption" checker_detects_prefix_corruption;
    case "checker detects freelist corruption"
      checker_detects_freelist_corruption;
    case "config matrix" config_matrix;
    case "uniproc heap under contention (sim x5)" uniproc_concurrent;
    case "introspection" introspection;
  ]
