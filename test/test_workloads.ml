(* Workload suite: op accounting, determinism, post-run consistency. *)

open Mm_runtime
module W = Mm_workloads
module I = Mm_mem.Alloc_intf
module Cfg = Mm_mem.Alloc_config
open Util

let sim_instance ?(cpus = 4) ?(seed = 1) name =
  let s = sim ~cpus ~seed ~max_cycles:50_000_000_000 () in
  instance name (Rt.simulated s)

let check_metrics m ~workload ~ops =
  Alcotest.(check string) "workload name" workload m.W.Metrics.workload;
  Alcotest.(check int) "ops" ops m.W.Metrics.ops;
  Alcotest.(check bool) "elapsed positive" true (m.W.Metrics.elapsed > 0.0);
  Alcotest.(check bool) "throughput positive" true
    (m.W.Metrics.throughput > 0.0);
  Alcotest.(check bool) "peak space positive" true
    (m.W.Metrics.space.Mm_mem.Space.mapped_peak > 0)

let linux_scalability () =
  let inst = sim_instance "new" in
  let m =
    W.Linux_scalability.run inst ~threads:3
      { W.Linux_scalability.pairs = 500; size = 8 }
  in
  check_metrics m ~workload:"linux-scalability" ~ops:1500;
  I.instance_check inst

let threadtest () =
  let inst = sim_instance "new" in
  let m =
    W.Threadtest.run inst ~threads:2
      { W.Threadtest.iterations = 3; blocks = 200; size = 8 }
  in
  check_metrics m ~workload:"threadtest" ~ops:1200;
  I.instance_check inst

let false_sharing_both () =
  List.iter
    (fun passive ->
      let inst = sim_instance "new" in
      let m =
        W.False_sharing.run inst ~threads:3
          { W.False_sharing.pairs = 100; size = 8; writes_per_byte = 20;
            passive }
      in
      check_metrics m
        ~workload:(if passive then "passive-false" else "active-false")
        ~ops:300;
      I.instance_check inst)
    [ false; true ]

let larson () =
  let inst = sim_instance "new" in
  let m =
    W.Larson.run inst ~threads:3
      { W.Larson.slots_per_thread = 32; min_size = 16; max_size = 80;
        rounds = 300; seed = 3 }
  in
  check_metrics m ~workload:"larson" ~ops:900;
  (* Larson drains its slots afterwards: heap must be quiescent and
     consistent, and mallocs == frees. *)
  I.instance_check inst;
  ignore (I.instance_name inst : string)

let producer_consumer_counts () =
  let inst = sim_instance ~cpus:8 "new" in
  let p = { W.Producer_consumer.quick with W.Producer_consumer.tasks = 150 } in
  let m = W.Producer_consumer.run inst ~threads:4 p in
  check_metrics m ~workload:"producer-consumer" ~ops:150;
  I.instance_check inst

let producer_consumer_single_thread () =
  let inst = sim_instance "new" in
  let p = { W.Producer_consumer.quick with W.Producer_consumer.tasks = 60 } in
  let m = W.Producer_consumer.run inst ~threads:1 p in
  check_metrics m ~workload:"producer-consumer" ~ops:60;
  I.instance_check inst

let pc_no_leaks () =
  (* Every task's four blocks are freed: for the lock-free allocator,
     mallocs == frees after the run. *)
  let s = sim ~cpus:4 ~max_cycles:50_000_000_000 () in
  let module As = Mm_core.Lf_alloc.Make (Sim_rt) in
  let t = As.create s Cfg.default in
  let inst = As.instance (Rt.simulated s) t in
  let p = { W.Producer_consumer.quick with W.Producer_consumer.tasks = 100 } in
  ignore (W.Producer_consumer.run inst ~threads:3 p);
  let m, f = As.op_counts t in
  Alcotest.(check int) "no leaked blocks" m f

let determinism () =
  let go () =
    let inst = sim_instance ~seed:9 "hoard" in
    let m =
      W.Larson.run inst ~threads:4
        { W.Larson.quick with W.Larson.rounds = 300 }
    in
    m.W.Metrics.elapsed
  in
  Alcotest.(check bool) "same seed, same virtual time" true (go () = go ())

let metrics_speedup () =
  let inst = sim_instance "new" in
  let m =
    W.Linux_scalability.run inst ~threads:1
      { W.Linux_scalability.pairs = 200; size = 8 }
  in
  Alcotest.(check bool) "self speedup = 1" true
    (abs_float (W.Metrics.speedup m ~baseline:m -. 1.0) < 1e-9)

let real_runtime_workloads () =
  (* Every workload also runs on real domains. *)
  let inst = instance "new" Rt.real in
  ignore
    (W.Linux_scalability.run inst ~threads:2
       { W.Linux_scalability.pairs = 1_000; size = 8 });
  ignore
    (W.Threadtest.run inst ~threads:2
       { W.Threadtest.iterations = 2; blocks = 200; size = 8 });
  ignore
    (W.False_sharing.run inst ~threads:2
       { W.False_sharing.pairs = 50; size = 8; writes_per_byte = 50;
         passive = false });
  ignore
    (W.Larson.run inst ~threads:2 { W.Larson.quick with W.Larson.rounds = 500 });
  ignore
    (W.Producer_consumer.run inst ~threads:2
       { W.Producer_consumer.quick with W.Producer_consumer.tasks = 100 });
  I.instance_check inst

let shbench_all_allocators () =
  List.iter
    (fun name ->
      let inst = sim_instance name in
      let m =
        W.Shbench.run inst ~threads:4
          { W.Shbench.quick with W.Shbench.rounds = 300 }
      in
      Alcotest.(check int) "ops" 1200 m.W.Metrics.ops;
      I.instance_check inst)
    all_allocators

let all_allocators_complete () =
  List.iter
    (fun name ->
      let inst = sim_instance name in
      ignore
        (W.Larson.run inst ~threads:4
           { W.Larson.quick with W.Larson.rounds = 200 });
      I.instance_check inst)
    all_allocators

let cases =
  [
    case "linux scalability" linux_scalability;
    case "threadtest" threadtest;
    case "false sharing (active+passive)" false_sharing_both;
    case "larson" larson;
    case "producer-consumer counts" producer_consumer_counts;
    case "producer-consumer single thread" producer_consumer_single_thread;
    case "producer-consumer no leaks" pc_no_leaks;
    case "sim determinism" determinism;
    case "metrics speedup" metrics_speedup;
    case "workloads on real runtime" real_runtime_workloads;
    case "all allocators complete larson" all_allocators_complete;
    case "shbench on all allocators" shbench_all_allocators;
  ]
