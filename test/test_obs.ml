(* The observability layer (lib/obs, DESIGN.md §12): ring semantics
   (overflow drops are counted, never silent), snapshot consistency
   under the lib/check schedule explorer, codec round-trips, and the
   load-bearing property of the whole design — obs counters agree
   exactly with the allocator's own striped retry census, and tracing
   does not perturb the simulated run at all. *)

open Mm_runtime
module Obs = Mm_obs
module W = Mm_workloads
module Traced = Mm_harness.Traced

(* ------------------------------------------------------------------ *)
(* Ring semantics. *)

let ring_basic () =
  let r = Obs.Ring.create ~tid:3 ~capacity:8 in
  Alcotest.(check int) "empty" 0 (Obs.Ring.length r);
  Obs.Ring.record r ~kind:Obs.Event.Cas_ok ~label:"a" ~cycle:10;
  Obs.Ring.record r ~kind:Obs.Event.Cas_fail ~label:"b" ~cycle:20;
  Obs.Ring.record r ~kind:Obs.Event.Mmap ~label:"c" ~cycle:30;
  Alcotest.(check int) "length" 3 (Obs.Ring.length r);
  Alcotest.(check int) "no drops" 0 (Obs.Ring.dropped r);
  let snap = Obs.Ring.snapshot r in
  Alcotest.(check int) "snapshot length" 3 (Array.length snap);
  let e = snap.(1) in
  Alcotest.(check int) "tid" 3 e.Obs.Event.tid;
  Alcotest.(check string) "label" "b" e.Obs.Event.label;
  Alcotest.(check int) "cycle" 20 e.Obs.Event.cycle;
  Alcotest.(check bool) "kind" true (e.Obs.Event.kind = Obs.Event.Cas_fail)

let ring_overflow_counts () =
  let r = Obs.Ring.create ~tid:0 ~capacity:4 in
  for i = 0 to 9 do
    Obs.Ring.record r ~kind:Obs.Event.Transition ~label:(string_of_int i)
      ~cycle:i
  done;
  Alcotest.(check int) "capped length" 4 (Obs.Ring.length r);
  Alcotest.(check int) "drops counted" 6 (Obs.Ring.dropped r);
  (* Drop policy keeps the published prefix, never overwrites it. *)
  let snap = Obs.Ring.snapshot r in
  Array.iteri
    (fun i (e : Obs.Event.t) ->
      Alcotest.(check string)
        (Printf.sprintf "slot %d intact" i)
        (string_of_int i) e.Obs.Event.label)
    snap

(* ------------------------------------------------------------------ *)
(* Snapshot consistency under the schedule explorer: one writer thread
   publishing into a capacity-4 ring, one reader snapshotting
   concurrently. Over every explored interleaving the snapshot must be
   a prefix of what the writer published: events [0..len), each with
   the value the writer wrote — and at quiescence length + dropped must
   account for every record call. *)

let ring_writes = 6
let ring_cap = 4

let ring_target =
  let open Mm_check in
  let run ~threads ?on_label ?notify_done ?quiescent_checks:_ ~sched () =
    let cpus = max threads 1 in
    let s =
      match on_label with
      | Some on_label ->
          Sim.create ~cpus ~max_cycles:1_000_000_000 ~on_label ~sched ()
      | None -> Sim.create ~cpus ~max_cycles:1_000_000_000 ~sched ()
    in
    let rt = Rt.simulated s in
    let ring = Obs.Ring.create ~tid:0 ~capacity:ring_cap in
    let check_snapshot () =
      let snap = Obs.Ring.snapshot ring in
      if Array.length snap > ring_cap then
        failwith "snapshot exceeds capacity";
      Array.iteri
        (fun i (e : Obs.Event.t) ->
          if e.Obs.Event.cycle <> i || e.Obs.Event.label <> string_of_int i
          then failwith "torn or out-of-order snapshot")
        snap
    in
    let body tid =
      if tid = 0 then
        for i = 0 to ring_writes - 1 do
          Rt.label rt "obs.write";
          Obs.Ring.record ring ~kind:Obs.Event.Cas_ok
            ~label:(string_of_int i) ~cycle:i
        done
      else
        for _ = 1 to 3 do
          Rt.label rt "obs.read";
          check_snapshot ()
        done
    in
    let wrap tid _ =
      body tid;
      match notify_done with Some f -> f tid | None -> ()
    in
    try
      ignore (Sim.run s (Array.init threads (fun tid -> wrap tid)));
      check_snapshot ();
      if Obs.Ring.length ring + Obs.Ring.dropped ring <> ring_writes then
        Error "record calls not accounted as published + dropped"
      else Ok ()
    with
    | Failure msg -> Error ("invariant: " ^ msg)
    | Sim.Deadlock msg -> Error ("deadlock: " ^ msg)
    | Sim.Progress_timeout msg -> Error ("livelock: " ^ msg)
  in
  {
    Target.name = "obs_ring";
    doc = "single-writer event ring vs concurrent snapshot";
    default_threads = 2;
    labels = [ "obs.write"; "obs.read" ];
    run;
  }

let snapshot_under_explorer () =
  let module E = Mm_check.Explore in
  let r = E.exhaustive ring_target ~threads:2 ~bound:3 ~budget:20_000 in
  (match r.E.finding with
  | None -> ()
  | Some f -> Alcotest.failf "explorer found: %s" f.E.error);
  Alcotest.(check bool)
    "explored a real space" true (r.E.executions > 50)

(* ------------------------------------------------------------------ *)
(* Codec round-trips. *)

let sample_events =
  [
    { Obs.Event.tid = 0; label = "ma.pop_cas"; kind = Obs.Event.Cas_fail; cycle = 17 };
    { Obs.Event.tid = 5; label = "sb.full->partial"; kind = Obs.Event.Transition; cycle = 99 };
    { Obs.Event.tid = 1; label = "a \"quoted\"\\ label\n"; kind = Obs.Event.Hp_scan; cycle = 0 };
    { Obs.Event.tid = 63; label = "store.mmap"; kind = Obs.Event.Mmap; cycle = 123456789 };
  ]

let chrome_roundtrip () =
  let s = Obs.Chrome.to_string ~dropped:7 sample_events in
  match Obs.Chrome.of_string s with
  | Error e -> Alcotest.fail e
  | Ok (events, dropped) ->
      Alcotest.(check int) "dropped" 7 dropped;
      Alcotest.(check int) "count" (List.length sample_events)
        (List.length events);
      List.iter2
        (fun (a : Obs.Event.t) (b : Obs.Event.t) ->
          Alcotest.(check bool) "event" true (a = b))
        sample_events events

let trace_file_roundtrip () =
  let t =
    {
      Obs.Trace_file.meta =
        {
          Obs.Trace_file.workload = "threadtest";
          allocator = "new";
          threads = 16;
          seed = 1;
          nheaps = 1;
          cpus = 16;
          ops = 32000;
          mallocs = 32000;
          frees = 32000;
          capacity = 65536;
        };
      dropped = 3;
      events = sample_events;
    }
  in
  let path = Filename.temp_file "mmalloc-trace" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Obs.Trace_file.save path t;
      match Obs.Trace_file.load path with
      | Error e -> Alcotest.fail e
      | Ok t' ->
          Alcotest.(check bool) "meta" true (t'.Obs.Trace_file.meta = t.Obs.Trace_file.meta);
          Alcotest.(check int) "dropped" 3 t'.Obs.Trace_file.dropped;
          Alcotest.(check bool) "events" true
            (t'.Obs.Trace_file.events = sample_events))

let json_parser () =
  let ok s = match Obs.Json.of_string s with Ok v -> v | Error e -> Alcotest.fail e in
  (match ok {|[1, -2.5, "xA\n", null, true, {"k": []}]|} with
  | Obs.Json.Arr
      [ Int 1; Float f; Str "xA\n"; Null; Bool true; Obj [ ("k", Arr []) ] ]
    ->
      Alcotest.(check (float 1e-9)) "float" (-2.5) f
  | v -> Alcotest.failf "unexpected parse: %s" (Obs.Json.to_string v));
  (match Obs.Json.of_string "{broken" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted malformed JSON");
  (* encode -> decode is the identity on the trace value domain *)
  let v =
    Obs.Json.Obj
      [ ("s", Obs.Json.Str "tricky \"\\\n\t"); ("n", Obs.Json.Int (-42));
        ("l", Obs.Json.Arr [ Obs.Json.Bool false; Obs.Json.Null ]) ]
  in
  Alcotest.(check bool) "roundtrip" true (ok (Obs.Json.to_string v) = v)

(* ------------------------------------------------------------------ *)
(* The seeded sim run: obs counters must agree exactly with the
   allocator's own striped retry census, the mmap event count with the
   store's syscall stat — and installing the tracer must not move the
   simulated clock by a single cycle. *)

let small_threadtest inst ~threads =
  W.Threadtest.run inst ~threads
    { W.Threadtest.quick with iterations = 2; blocks = 100 }

let counters_match_census () =
  let c =
    Traced.capture ~nheaps:1 ~name:"threadtest" ~threads:8 ~seed:1
      small_threadtest
  in
  let agg = Option.get c.Traced.metric.W.Metrics.obs in
  Alcotest.(check int) "nothing dropped" 0 c.Traced.trace.Obs.Trace_file.dropped;
  List.iter2
    (fun (site, obs_n) (site', census_n) ->
      Alcotest.(check string) "site order" site' site;
      Alcotest.(check int) site census_n obs_n)
    (Traced.core_retry_counts agg)
    c.Traced.retry_counts;
  let mmaps =
    List.fold_left
      (fun n (s : Obs.Agg.site) -> n + s.Obs.Agg.mmaps)
      0 agg.Obs.Agg.sites
  in
  Alcotest.(check int) "mmap events = mmap_calls stat"
    c.Traced.metric.W.Metrics.os.Mm_mem.Store.mmap_calls mmaps;
  (* Transition census sanity: superblocks were installed. *)
  let installs =
    match Obs.Agg.site agg "sb.new->active" with
    | Some s -> s.Obs.Agg.transitions
    | None -> 0
  in
  Alcotest.(check bool) "saw sb.new->active" true (installs > 0)

let tracing_does_not_perturb () =
  let traced =
    Traced.capture ~nheaps:1 ~name:"threadtest" ~threads:8 ~seed:1
      small_threadtest
  in
  (* The same run, untraced, on an identically configured machine. *)
  let sim = Sim.create ~cpus:16 ~seed:1 ~max_cycles:100_000_000_000 () in
  let rt = Rt.simulated sim in
  let inst =
    Mm_harness.Allocators.make "new" rt (Mm_mem.Alloc_config.make ~nheaps:1 ())
  in
  let untraced = small_threadtest inst ~threads:8 in
  Alcotest.(check bool) "no tracer left installed" false
    (Rt.Obs.hook_installed ());
  Alcotest.(check (float 0.0))
    "virtual elapsed identical" untraced.W.Metrics.elapsed
    traced.Traced.metric.W.Metrics.elapsed;
  Alcotest.(check bool) "sim counters identical" true
    (untraced.W.Metrics.sim = traced.Traced.metric.W.Metrics.sim)

let cases =
  [
    Alcotest.test_case "ring-basic" `Quick ring_basic;
    Alcotest.test_case "ring-overflow-counts" `Quick ring_overflow_counts;
    Alcotest.test_case "snapshot-under-explorer" `Quick snapshot_under_explorer;
    Alcotest.test_case "chrome-roundtrip" `Quick chrome_roundtrip;
    Alcotest.test_case "trace-file-roundtrip" `Quick trace_file_roundtrip;
    Alcotest.test_case "json-parser" `Quick json_parser;
    Alcotest.test_case "counters-match-census" `Quick counters_match_census;
    Alcotest.test_case "tracing-does-not-perturb" `Quick tracing_does_not_perturb;
  ]
