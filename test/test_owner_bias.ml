(* Owner-biased private/public superblock free lists (DESIGN.md §19).

   Four regressions:

   - default-mode bit-identity: with [free_lists] explicitly [`Anchor]
     the allocator must replay the SAME golden sim-trace checksums as
     test_specialization.ml — the owner-biased machinery (the pub
     word, the owner/private fields, the mode dispatch) costs the
     paper-verbatim path nothing, not even one scheduling decision;

   - registry completeness: the census registries partition the label
     sets — every label is either a census site's member or a marker,
     for both [Mm_core.Labels] and [Mm_pages.Pg_labels] — so the
     derived censuses ([Lf_alloc.retry_counts], [Traced.core_sites])
     can never silently drop a site;

   - owner-biased census equality: the obs tracer's per-label failed-CAS
     aggregation agrees exactly with the allocator's own striped retry
     census under "new-ob", including the new pub.push/pub.claim rows
     (the same proof test_obs.ml gives for "new");

   - owner-biased correctness under load: a shared one-heap allocator
     with cross-thread frees passes the full invariant checker
     (private/public list walks, owned-slot cross-references) and
     conservation, across several seeds. *)

open Mm_runtime
module A = Mm_core.Lf_alloc.Make (Sim_rt)
module L = Mm_core.Labels
module Pg = Mm_pages.Pg_labels
module Cfg = Mm_mem.Alloc_config
module W = Mm_workloads
module Traced = Mm_harness.Traced
module Obs = Mm_obs
open Util

(* Same workload, same goldens as test_specialization.ml — here with
   the free-list mode spelled out, so a future default flip cannot
   silently retire the paper-verbatim regression. *)
let anchor_mode_bit_identical () =
  List.iter
    (fun (cpus, seed, expected) ->
      Alcotest.(check int)
        (Printf.sprintf "cpus=%d seed=%d trace checksum" cpus seed)
        expected
        (Test_specialization.checksum
           ~cfg:(Cfg.make ~free_lists:`Anchor ())
           ~cpus ~seed))
    Test_specialization.goldens

let registry_complete () =
  let check_registry what (sites : (string * string list) list) markers all =
    let covered = List.concat_map snd sites @ markers in
    List.iter
      (fun l ->
        if not (List.mem l covered) then
          Alcotest.failf "%s: label %s in neither census_sites nor markers"
            what l)
      all;
    List.iter
      (fun l ->
        if not (List.mem l all) then
          Alcotest.failf "%s: registry lists unknown label %s" what l)
      covered;
    Alcotest.(check int)
      (what ^ ": sites+markers partition the label set")
      (List.length all) (List.length covered)
  in
  check_registry "core" L.census_sites L.census_markers L.all;
  check_registry "pages" Pg.census_sites Pg.census_markers Pg.all

(* Larson's slot handoff makes every round a mix of owner-local and
   remote frees, so the pub.push/pub.claim rows are live. *)
let small_larson inst ~threads =
  W.Larson.run inst ~threads
    { W.Larson.quick with W.Larson.slots_per_thread = 16; rounds = 400 }

let ob_counters_match_census () =
  let c =
    Traced.capture ~nheaps:1 ~allocator:"new-ob" ~name:"larson" ~threads:8
      ~seed:1 small_larson
  in
  let agg = Option.get c.Traced.metric.W.Metrics.obs in
  Alcotest.(check int) "nothing dropped" 0
    c.Traced.trace.Obs.Trace_file.dropped;
  List.iter2
    (fun (site, obs_n) (site', census_n) ->
      Alcotest.(check string) "site order" site' site;
      Alcotest.(check int) site census_n obs_n)
    (Traced.core_retry_counts agg)
    c.Traced.retry_counts;
  (* The mode's signature transitions actually happened. *)
  let transitions name =
    match Obs.Agg.site agg name with
    | Some s -> s.Obs.Agg.transitions
    | None -> 0
  in
  Alcotest.(check bool) "saw sb.new->owned" true
    (transitions "sb.new->owned" > 0)

let ob_cfg = Cfg.make ~nheaps:1 ~sbsize:4096 ~free_lists:`Owner_biased ()

let ob_invariants_under_load () =
  for seed = 1 to 8 do
    let s = sim ~cpus:4 ~seed ~max_cycles:50_000_000_000 () in
    let t = A.create s ob_cfg in
    (* Per-thread slot churn plus a neighbour handoff slot: every
       round passes one block to the next thread, which frees it
       remotely (single-producer/single-consumer plain cells, as in
       the fault-injection probe). *)
    let mailbox = Array.make 4 0 in
    let body tid =
      let rng = Prng.create (seed + (tid * 13)) in
      let slots = Array.make 24 0 in
      for _ = 1 to 300 do
        let i = Prng.int rng 24 in
        if slots.(i) <> 0 then begin
          A.free t slots.(i);
          slots.(i) <- 0
        end
        else begin
          slots.(i) <- A.malloc t (Prng.int_in rng 1 1_000);
          let next = (tid + 1) mod 4 in
          if mailbox.(next) = 0 then begin
            mailbox.(next) <- slots.(i);
            slots.(i) <- 0
          end
        end;
        let incoming = mailbox.(tid) in
        if incoming <> 0 then begin
          mailbox.(tid) <- 0;
          A.free t incoming
        end
      done;
      Array.iter (fun a -> if a <> 0 then A.free t a) slots
    in
    ignore (Sim.run s (Array.init 4 (fun i _ -> body i)));
    (* Quiescent sweep of whatever the last rounds left in flight. *)
    ignore
      (Sim.run s
         [|
           (fun _ ->
             Array.iteri
               (fun i a ->
                 if a <> 0 then begin
                   mailbox.(i) <- 0;
                   A.free t a
                 end)
               mailbox);
         |]);
    (try A.check_invariants t
     with Failure msg -> Alcotest.failf "seed %d: %s" seed msg);
    let m, f = A.op_counts t in
    Alcotest.(check int) (Printf.sprintf "seed %d conservation" seed) m f
  done

let cases =
  [
    case "anchor mode bit-identical to the goldens" anchor_mode_bit_identical;
    case "census registries partition the label sets" registry_complete;
    case "new-ob obs census == striped census" ob_counters_match_census;
    case "owner-biased invariants + conservation (x8 seeds)"
      ob_invariants_under_load;
  ]
