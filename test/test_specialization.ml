(* Specialization equivalence (DESIGN.md §18): the functorization of
   the allocator stack over RUNTIME must not perturb the simulated
   runtime by a single scheduling decision.

   Two regressions pin that down:

   - golden sim traces: a seeded mixed malloc/free workload's address
     stream is reduced to a checksum and compared against values
     captured on the pre-functorization value-level runtime (commit
     54a1a6a, where every [Rt.Atomic] op dispatched on the [Rt.t]
     value). Bit-identical schedules mean bit-identical addresses mean
     equal checksums — across 1, 4 and 8 simulated CPUs.

   - explorer stability: bounded-exhaustive exploration of the lf_alloc
     check target is a pure function of (target, threads, bound,
     budget); two runs must visit the same number of executions and
     find nothing, so the explorer's schedule enumeration is unchanged
     over the functorized allocator.

   The striped-census == obs-census equality half of the equivalence
   claim lives in test_obs.ml (counters-match-census); the Real
   instantiation's conformance coverage is the `Real rows of
   test_alloc_conformance.ml. *)

open Mm_runtime
module As = Mm_core.Lf_alloc.Make (Sim_rt)
module Cfg = Mm_mem.Alloc_config
module E = Mm_check.Explore
module T = Mm_check.Target
open Util

(* The exact workload the golden values were captured with: per-thread
   seeded mix of mallocs (sizes 1..2500, spanning small classes and the
   large path) and frees over 24 slots, checksummed in allocation
   order. Any change here invalidates the goldens — re-capture them on
   the old runtime before touching it. *)
let checksum ~cfg ~cpus ~seed =
  let s = Sim.create ~cpus ~seed ~max_cycles:50_000_000_000 () in
  let t = As.create s cfg in
  let acc = Array.make cpus 0 in
  let body tid =
    let rng = Prng.create (tid + 11) in
    let slots = Array.make 24 0 in
    for _ = 1 to 400 do
      let i = Prng.int rng 24 in
      if slots.(i) <> 0 then begin
        As.free t slots.(i);
        slots.(i) <- 0
      end
      else begin
        let a = As.malloc t (Prng.int_in rng 1 2_500) in
        slots.(i) <- a;
        acc.(tid) <- (acc.(tid) * 1_000_003) + a
      end
    done;
    Array.iter (fun a -> if a <> 0 then As.free t a) slots
  in
  ignore (Sim.run s (Array.init cpus (fun i _ -> body i)));
  Array.fold_left (fun h a -> (h * 31) + (a land max_int)) 0 acc

let goldens =
  [
    (1, 1, 1035582064610360096);
    (4, 7, -310638667675535616);
    (8, 42, -2356413153057079624);
  ]

let sim_traces_bit_identical () =
  List.iter
    (fun (cpus, seed, expected) ->
      Alcotest.(check int)
        (Printf.sprintf "cpus=%d seed=%d trace checksum" cpus seed)
        expected
        (checksum ~cfg:(Cfg.make ()) ~cpus ~seed))
    goldens

let explorer_schedules_stable () =
  let go () = E.exhaustive T.lf_alloc ~threads:2 ~bound:2 ~budget:4_000 in
  let a = go () and b = go () in
  (match (a.E.finding, b.E.finding) with
  | None, None -> ()
  | Some f, _ | _, Some f ->
      Alcotest.failf "lf_alloc target violation: %s" f.E.error);
  Alcotest.(check int) "same executions both runs" a.E.executions
    b.E.executions;
  Alcotest.(check bool) "explored at least one schedule" true
    (a.E.executions > 0);
  Alcotest.(check bool) "same completion status" a.E.complete b.E.complete

let cases =
  [
    case "sim traces bit-identical to the value-level runtime"
      sim_traces_bit_identical;
    case "explorer schedule enumeration is stable" explorer_schedules_stable;
  ]
