(* The warm EMPTY-superblock cache (DESIGN.md §14): per-size-class
   lock-free recycle stacks that park an emptied superblock — bytes,
   free list and anchor tag intact — instead of unmapping it.

   What is verified here:
   - the preserved anchor tag strictly increases across park → adopt →
     park cycles of the same descriptor (the Fig. 5 ABA defense carries
     over to recycled superblocks);
   - depth 0 is the paper-verbatim path: the cache never touches a
     shared word, every EMPTY superblock is genuinely unmapped, and the
     default configuration keeps it off;
   - OS traffic: on a single-class churn loop the cache eliminates the
     per-EMPTY munmap, and the mapped-space peak stays within
     [depth * sbsize] of the cache-off peak (the hysteresis bound);
   - stats conservation: parks = adopts + still-parked descriptors;
   - the explorer's address-exclusivity oracle holds over the park and
     adopt windows, and killing a thread inside either CAS window never
     lets a block be allocated twice. *)

open Mm_runtime
module A = Mm_core.Lf_alloc.Make (Sim_rt)
module Sbc = Mm_core.Sb_cache.Make (Sim_rt)
module D = Mm_core.Descriptor.Make (Sim_rt)
module An = Mm_core.Anchor
module L = Mm_core.Labels
module Cfg = Mm_mem.Alloc_config
module Scls = Mm_mem.Size_class

module Store = struct
  include Mm_mem.Store
  include Mm_mem.Store.Make (Sim_rt)
end

module Space = struct
  include Mm_mem.Space
  include Mm_mem.Space.Make (Sim_rt)
end
module O = Mm_check.Oracle
module E = Mm_check.Explore
module T = Mm_check.Target
open Util

(* Small superblocks (4 KiB / 16-byte blocks = 256 per superblock) so a
   few hundred allocations cycle whole superblocks through EMPTY. *)
let sbc_cfg ~depth =
  Cfg.make ~nheaps:1 ~sbsize:4096 ~maxcredits:2 ~desc_scan_threshold:1
    ~sb_cache_depth:depth ()

(* Allocate more blocks than one superblock holds, then free them all:
   every superblock that filled up (and so left the Active slot) comes
   back down through FULL -> PARTIAL -> EMPTY. *)
let churn t ~blocks =
  let addrs = Array.init blocks (fun _ -> A.malloc t 8) in
  Array.iter (A.free t) addrs

let all_parked t =
  let sbc = A.sb_cache t in
  let nclasses = Scls.count (A.size_classes t) in
  List.concat (List.init nclasses (fun sc -> Sbc.parked sbc ~sc))

let anchor_tag t id =
  An.tag (Sim_rt.Atomic.get (D.get (A.descriptor_table t) id).D.anchor)

(* A parked descriptor's tag may only grow: adoption installs the
   anchor with tag+1 (MallocFromNewSB line 21 on the preserved value),
   and every pop afterwards bumps it again — so a CAS held over from the
   superblock's previous life can never succeed on its next one. *)
let tag_strictly_increases () =
  let s = sim ~cpus:1 () in
  let rt = s in
  let t = A.create rt (sbc_cfg ~depth:2) in
  let last = Hashtbl.create 8 in
  let strict = ref 0 in
  let body _ =
    for _ = 1 to 6 do
      churn t ~blocks:300;
      List.iter
        (fun id ->
          let tag = anchor_tag t id in
          (match Hashtbl.find_opt last id with
          | Some old ->
              if tag < old then
                Alcotest.failf
                  "descriptor %d re-parked with tag %d < earlier %d" id tag
                  old;
              if tag > old then incr strict
          | None -> ());
          Hashtbl.replace last id tag)
        (all_parked t)
    done
  in
  ignore (Sim.run s [| body |]);
  let st = Sbc.stats (A.sb_cache t) in
  Alcotest.(check bool) "descriptors were adopted" true (st.Sbc.adopts >= 1);
  Alcotest.(check bool)
    "an adopted descriptor re-parked with a strictly larger tag" true
    (!strict >= 1);
  A.check_invariants t

(* depth = 0: the paper-verbatim path. The cache never records an
   event, nothing is ever parked, the striped census carries no sbc
   retries, and every EMPTY superblock pays its munmap. *)
let depth0_paper_verbatim () =
  let s = sim ~cpus:1 () in
  let rt = s in
  let t = A.create rt (sbc_cfg ~depth:0) in
  let body _ = for _ = 1 to 4 do churn t ~blocks:300 done in
  ignore (Sim.run s [| body |]);
  let st = Sbc.stats (A.sb_cache t) in
  Alcotest.(check bool) "cache disabled" false (Sbc.enabled (A.sb_cache t));
  Alcotest.(check int) "no parks" 0 st.Sbc.parks;
  Alcotest.(check int) "no adopts" 0 st.Sbc.adopts;
  Alcotest.(check int) "no overflows" 0 st.Sbc.overflows;
  Alcotest.(check (list int)) "nothing parked" [] (all_parked t);
  List.iter
    (fun (site, n) ->
      if String.length site >= 4 && String.sub site 0 4 = "sbc." then
        Alcotest.(check int) ("no retries at " ^ site) 0 n)
    (A.retry_counts t);
  let os = Store.os_stats (A.store t) in
  Alcotest.(check int) "every superblock free is a genuine munmap"
    os.Store.sb_frees os.Store.munmap_calls;
  Alcotest.(check bool) "churn did unmap superblocks" true
    (os.Store.munmap_calls > 0);
  A.check_invariants t

let default_config_keeps_cache_off () =
  let s = sim ~cpus:1 () in
  let t = A.create s Cfg.default in
  Alcotest.(check bool) "Cfg.default leaves the warm cache off" false
    (Sbc.enabled (A.sb_cache t))

(* The tentpole's OS-traffic claim, deterministically: the same seeded
   single-class churn with and without the cache. Parking eliminates
   the per-EMPTY munmap (only watermark overflow still unmaps), and the
   retained superblocks cost at most depth * sbsize extra peak. *)
let munmap_collapse_and_space_bound () =
  let depth = 4 in
  let run ~depth =
    let s = sim ~cpus:1 () in
    let rt = s in
    let t = A.create rt (sbc_cfg ~depth) in
    let body _ = for _ = 1 to 10 do churn t ~blocks:300 done in
    ignore (Sim.run s [| body |]);
    A.check_invariants t;
    let store = A.store t in
    (Store.os_stats store, (Space.read (Store.space store)).Space.mapped_peak)
  in
  let os_off, peak_off = run ~depth:0 in
  let os_on, peak_on = run ~depth in
  Alcotest.(check bool)
    (Printf.sprintf "munmaps collapse (off %d, on %d)"
       os_off.Store.munmap_calls os_on.Store.munmap_calls)
    true
    (os_on.Store.munmap_calls * 4 <= os_off.Store.munmap_calls);
  Alcotest.(check bool)
    (Printf.sprintf "syscall total drops (off %d, on %d)"
       (os_off.Store.mmap_calls + os_off.Store.munmap_calls)
       (os_on.Store.mmap_calls + os_on.Store.munmap_calls))
    true
    (os_on.Store.mmap_calls + os_on.Store.munmap_calls
    < os_off.Store.mmap_calls + os_off.Store.munmap_calls);
  (* Single size class in use, so the hysteresis bound is depth
     superblocks. *)
  Alcotest.(check bool)
    (Printf.sprintf "peak within depth*sbsize (off %d, on %d)" peak_off
       peak_on)
    true
    (peak_on <= peak_off + (depth * 4096))

let stats_conserved () =
  let s = sim ~cpus:4 () in
  let rt = s in
  let t = A.create rt (sbc_cfg ~depth:2) in
  let body _ = for _ = 1 to 3 do churn t ~blocks:200 done in
  ignore (Sim.run s (Array.make 4 (fun i -> body i)));
  let st = Sbc.stats (A.sb_cache t) in
  Alcotest.(check int) "parks = adopts + still parked"
    (st.Sbc.adopts + List.length (all_parked t))
    st.Sbc.parks;
  Alcotest.(check bool) "overflows non-negative" true (st.Sbc.overflows >= 0);
  A.check_invariants t

(* Bounded-exhaustive schedule exploration over the sbcache target (the
   quick gate runs a bigger budget; this is the in-tree regression). *)
let explorer_exclusivity () =
  let r = E.exhaustive T.lf_alloc_sbcache ~threads:2 ~bound:2 ~budget:5_000 in
  match r.E.finding with
  | None -> ()
  | Some f -> Alcotest.failf "sbcache allocator violation: %s" f.E.error

(* Kill a thread inside each cache CAS window. A descriptor mid-park or
   mid-adopt may leak with its superblock, but the exclusivity oracle
   proves no survivor — nor a fresh wave afterwards — is ever handed a
   block twice. *)
let kill_in_window label () =
  let killed = ref (-1) in
  let on_label ~tid l =
    if l = label && !killed = -1 then begin
      killed := tid;
      Sim.Kill
    end
    else Sim.Continue
  in
  let s = sim ~cpus:4 ~max_cycles:50_000_000_000 ~on_label () in
  let rt = s in
  let t =
    A.create rt
      (Cfg.make ~nheaps:1 ~sbsize:4096 ~maxcredits:1 ~desc_scan_threshold:1
         ~sb_cache_depth:2 ())
  in
  let orc = O.create_alloc () in
  let m () =
    let a = A.malloc t 8 in
    O.malloc_returned orc a;
    a
  in
  let f a =
    let p = O.free_invoked orc a in
    A.free t a;
    O.free_returned orc p
  in
  let body _tid =
    for _ = 1 to 2 do
      let addrs = Array.init 120 (fun _ -> m ()) in
      Array.iter f addrs
    done
  in
  (try ignore (Sim.run s (Array.init 4 (fun _ -> body)))
   with O.Violation msg -> Alcotest.failf "exclusivity violated: %s" msg);
  Alcotest.(check bool) ("kill fired: " ^ label) true (!killed >= 0);
  (* Fresh wave on the same heap: anything the killed thread held —
     including a descriptor lost between stack pop and anchor install —
     must stay leaked, never re-issued. *)
  try
    ignore
      (Sim.run s
         [|
           (fun _ ->
             let addrs = Array.init 300 (fun _ -> m ()) in
             Array.iter f addrs);
         |])
  with O.Violation msg ->
    Alcotest.failf "leaked block re-allocated after kill: %s" msg

let cases =
  [
    case "anchor tag strictly increases across park/adopt cycles"
      tag_strictly_increases;
    case "depth 0 is the paper-verbatim path" depth0_paper_verbatim;
    case "default config keeps the cache off" default_config_keeps_cache_off;
    case "munmap collapse and hysteresis space bound"
      munmap_collapse_and_space_bound;
    case "stats conservation: parks = adopts + parked" stats_conserved;
    case "explorer: exclusivity with the warm cache on" explorer_exclusivity;
  ]
  @ List.map
      (fun l ->
        case ("kill inside " ^ l ^ " never double-allocates")
          (kill_in_window l))
      [ L.sbc_park; L.sbc_adopt ]
