(* Fixture: R5 label-registry (per-file half) — a literal label string
   the registries cannot enumerate. Never compiled — parsed only by
   mm-lint's tests. *)

let probe rt = Rt.label rt "fx-literal-probe"
