(* Fixture: clean labelled CAS windows, plus a working suppression.
   Never compiled — parsed only by mm-lint's tests. *)

let pop cell rt =
  let cur = Rt.Atomic.get cell in
  Rt.label rt Labels.fx_pop;
  Rt.Atomic.compare_and_set cell cur 0

let push cell rt =
  let cur = Rt.Atomic.get cell in
  Rt.label rt Labels.fx_push;
  ignore (Rt.Atomic.compare_and_set cell cur 1);
  (* uses, so only the intended registry findings fire on labels.ml *)
  ignore Labels.fx_push_dup;
  ignore Labels.fx_unlisted

(* mm-lint: allow unlabelled-cas-window: fixture demonstrating that a
   suppression moves the finding to the suppressed list *)
let quiet cell =
  let cur = Rt.Atomic.get cell in
  ignore (Rt.Atomic.compare_and_set cell cur 2)
