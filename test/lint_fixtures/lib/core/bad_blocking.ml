(* Fixture: R3 blocking-in-lockfree. The blocking lock substrate
   reached from a lock-free section. Never compiled — parsed only by
   mm-lint's tests. *)

let with_lock l f =
  Locks.acquire l;
  let r = f () in
  Locks.release l;
  r
