(* Fixture registry: R5 label-registry (cross-file half). fx_push_dup
   reuses fx_push's string, fx_orphan is never referenced, fx_unlisted
   is missing from [all]. Never compiled — parsed only by mm-lint's
   tests. *)

let fx_pop = "fx_pop"
let fx_push = "fx_push"
let fx_push_dup = "fx_push"
let fx_orphan = "fx_orphan"
let fx_unlisted = "fx_unlisted"
let all = [ fx_pop; fx_push; fx_push_dup; fx_orphan ]
