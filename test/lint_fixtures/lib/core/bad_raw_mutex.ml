(* Fixture: R2 raw-primitive. Raw multicore primitives outside
   lib/runtime and lib/baselines. Never compiled — parsed only by
   mm-lint's tests. *)

let m = Mutex.create ()
let counter = Stdlib.Atomic.make 0

let bump () =
  Mutex.lock m;
  Stdlib.Atomic.incr counter;
  Mutex.unlock m
