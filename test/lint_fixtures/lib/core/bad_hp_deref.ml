(* Fixture: R4 hp-protect, both failure shapes. Never compiled — parsed
   only by mm-lint's tests. *)

(* No hazard-pointer protection at all before the link read. *)
let walk_unprotected head =
  match Rt.Atomic.get head with
  | None -> 0
  | Some d -> (match d.Descriptor.next_d with None -> 0 | Some _ -> 1)

(* Protected, but the head is never re-read after the protection is
   published, so the descriptor may already have been recycled. *)
let pop_no_revalidate pool head =
  match Rt.Atomic.get head with
  | None -> None
  | Some d ->
      Hp.protect pool.hp 0 d;
      d.Descriptor.next_d
