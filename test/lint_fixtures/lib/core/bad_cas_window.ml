(* Fixture: R1 unlabelled-cas-window. The read->CAS retry window below
   carries no Rt.label, so the schedule explorer cannot interpose in it.
   Never compiled — parsed only by mm-lint's tests. *)

let bump cell v =
  let cur = Rt.Atomic.get cell in
  if not (Rt.Atomic.compare_and_set cell cur v) then ()
