(* Fixture registry for the pages section: clean on purpose — its
   entries are used by bad_buddy_cas.ml, so only that file's planted R1
   finding fires and the registry itself stays clean. Never compiled —
   parsed only by mm-lint's tests. *)

let fx_buddy_acq = "fx_buddy_acq"
let fx_buddy_rel = "fx_buddy_rel"
let all = [ fx_buddy_acq; fx_buddy_rel ]
