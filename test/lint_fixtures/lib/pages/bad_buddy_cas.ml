(* Fixture: R1 unlabelled-cas-window in the pages section. The first
   acquire's read->CAS retry window carries no Rt.label, so the
   schedule explorer cannot interpose in a buddy claim; the labelled
   variants below keep the Pg_labels fixture registry used, so exactly
   one finding fires. Never compiled — parsed only by mm-lint's
   tests. *)

let acquire_unlabelled node =
  let cur = Rt.Atomic.get node in
  Rt.Atomic.compare_and_set node cur 2

let acquire node rt =
  let cur = Rt.Atomic.get node in
  Rt.label rt Pg_labels.fx_buddy_acq;
  Rt.Atomic.compare_and_set node cur 2

let release node rt =
  let cur = Rt.Atomic.get node in
  Rt.label rt Pg_labels.fx_buddy_rel;
  ignore (Rt.Atomic.compare_and_set node cur 0)
