(* Fixture registry for the lockfree section: consistent on purpose —
   used together with lib/core/labels.ml to check that duplicates are
   detected across registries but a clean registry stays clean. Never
   compiled — parsed only by mm-lint's tests. *)

let fx_ring = "fx_ring"
let all = [ fx_ring ]
