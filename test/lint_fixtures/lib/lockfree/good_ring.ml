(* Fixture: clean lockfree-section file using the fixture registry.
   Never compiled — parsed only by mm-lint's tests. *)

let advance cell rt =
  let cur = Rt.Atomic.get cell in
  Rt.label rt Lf_labels.fx_ring;
  Rt.Atomic.compare_and_set cell cur (cur + 1)
