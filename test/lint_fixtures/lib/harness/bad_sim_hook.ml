(* Fixture: R6 sim-capability. Reaching the simulator's control plane
   (facility references, a hooked Sim.create) outside lib/runtime and
   lib/check without consulting Rt.controllable. The gated item at the
   bottom stays clean. Never compiled — parsed only by mm-lint's
   tests. *)

let kill_current sim = Sim.action sim Sim.Kill

let hooked_sim () = Sim.create ~cpus:2 ~on_label:(fun _ -> ()) ()

let gated rt sim = if Rt.controllable rt then Sim.action sim Sim.Kill else ()
