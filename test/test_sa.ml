(* mm-sa checked end-to-end: every planted fixture fires with its file
   and line, the real tree is clean modulo the three reasoned
   suppressions, the shared suppression machinery routes covered
   findings into the suppressed list, the --analysis filter narrows the
   run, and a typoed suppression token is an error.

   The fixture libraries under test/sa_fixtures are compiled (the test
   depends on @check), so mm-sa reads the same kind of .cmt artifacts
   here as it does for the real tree. *)

module D = Mm_sa.Driver
module A = Mm_sa.Analysis
module F = Mm_report.Finding
open Util

(* mm-sa needs the real repository root — both the sources and the
   _build tree holding the .cmt files. Under dune the test runs in
   _build/default/test, so walk up to the directory that contains
   _build/default (the _build mirror itself has no nested _build). *)
let repo_root () =
  let rec up dir =
    let probe = Filename.concat dir "_build/default" in
    if Sys.file_exists probe && Sys.is_directory probe then dir
    else
      let parent = Filename.dirname dir in
      if parent = dir then Alcotest.fail "cannot locate the repository root"
      else up parent
  in
  up (Sys.getcwd ())

let fixture_paths = D.default_paths @ [ "test/sa_fixtures" ]

let lines rule file r =
  List.sort compare
    (List.filter_map
       (fun (f : F.t) ->
         if f.F.rule = rule && f.F.file = file then Some f.F.line else None)
       r.D.findings)

let suppressed_pairs r =
  List.sort compare
    (List.map (fun (f : F.t) -> (f.F.file, f.F.rule)) r.D.suppressed)

let fixtures_flagged () =
  let r = D.run ~root:(repo_root ()) ~paths:fixture_paths () in
  (* every planted violation is reported, with its file and line *)
  Alcotest.(check (list int))
    "S1: raw deref, unvalidated deref, leaked slot" [ 18; 26; 37 ]
    (lines "hp-protocol" "test/sa_fixtures/lib/core/bad_hp.ml" r);
  Alcotest.(check (list int))
    "S2: stale expected + double commit" [ 14; 24 ]
    (lines "cas-loop-progress" "test/sa_fixtures/lib/core/bad_retry.ml" r);
  Alcotest.(check (list int))
    "S3: unfenced publish (fenced twin clean)" [ 16 ]
    (lines "write-before-publish" "test/sa_fixtures/lib/core/bad_publish.ml"
       r);
  Alcotest.(check (list int))
    "S4: unlabelled loop, undischarged window, escaped entry"
    [ 17; 21; 27 ]
    (lines "label-dominance" "test/sa_fixtures/lib/core/bad_label.ml" r);
  Alcotest.(check (list int))
    "S4: pages fixture" [ 9 ]
    (lines "label-dominance" "test/sa_fixtures/lib/pages/bad_order_cas.ml" r);
  (* ... and nothing else: the real tree contributes no findings *)
  Alcotest.(check int) "only fixture findings" 10
    (List.length r.D.findings);
  List.iter
    (fun (f : F.t) ->
      if not (String.starts_with ~prefix:"test/sa_fixtures/" f.F.file) then
        Alcotest.failf "real-tree finding: %s" (Format.asprintf "%a" F.pp f))
    r.D.findings;
  (* the covered fixture violation moved to the suppressed list,
     alongside the real tree's three documented suppressions *)
  Alcotest.(check (list (pair string string)))
    "suppressed"
    [
      ("lib/core/desc_pool.ml", "hp-protocol");
      ("lib/core/lf_alloc.ml", "write-before-publish");
      ("lib/mem/space.ml", "label-dominance");
      ("test/sa_fixtures/lib/core/sup_ok.ml", "write-before-publish");
    ]
    (suppressed_pairs r);
  (* a typoed token is an error, not a silent no-op *)
  Alcotest.(check (list (pair string string)))
    "unknown suppression token"
    [
      ( "test/sa_fixtures/lib/core/bad_token.ml",
        "line 4: mm-sa suppression names no known analysis (hp-protokol)" );
    ]
    r.D.errors

let real_tree_clean () =
  let r = D.run ~root:(repo_root ()) () in
  Alcotest.(check (list (pair string string))) "no errors" [] r.D.errors;
  List.iter
    (fun (f : F.t) ->
      Alcotest.failf "real tree finding: %s" (Format.asprintf "%a" F.pp f))
    r.D.findings;
  Alcotest.(check (list (pair string string)))
    "documented suppressions"
    [
      ("lib/core/desc_pool.ml", "hp-protocol");
      ("lib/core/lf_alloc.ml", "write-before-publish");
      ("lib/mem/space.ml", "label-dominance");
    ]
    (suppressed_pairs r)

let analysis_filter () =
  let r =
    D.run ~root:(repo_root ())
      ~analyses:[ A.Write_before_publish ]
      ~paths:fixture_paths ()
  in
  List.iter
    (fun (f : F.t) ->
      Alcotest.(check string) "filtered rule only" "write-before-publish"
        f.F.rule)
    r.D.findings;
  Alcotest.(check (list int))
    "S3 fixture still fires" [ 16 ]
    (lines "write-before-publish" "test/sa_fixtures/lib/core/bad_publish.ml"
       r);
  Alcotest.(check int) "S4 fixtures filtered out" 1
    (List.length r.D.findings)

let cases =
  [
    case "fixtures: every analysis fires where planted" fixtures_flagged;
    case "real tree is sa-clean" real_tree_clean;
    case "--analysis narrows the run" analysis_filter;
  ]
