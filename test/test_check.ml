(* The checking subsystem checked: the schedule codec round-trips,
   controlled runs replay deterministically, the explorer finds the
   planted tag-less-anchor ABA bug (exhaustively and with PCT), its
   minimized counterexample still reproduces, and the structures that
   are supposed to be correct come out of the same exploration clean. *)

module S = Mm_check.Schedule
module T = Mm_check.Target
module E = Mm_check.Explore
module M = Mm_check.Monitor
module O = Mm_check.Oracle
open Util

let target name =
  match T.find name with
  | Some t -> t
  | None -> Alcotest.failf "unknown check target %s" name

let schedule_roundtrip () =
  let cases = [ ""; "7:2"; "3:1,6:0,18:1"; "0:0,1:1,2:2" ] in
  List.iter
    (fun s ->
      Alcotest.(check string) ("roundtrip " ^ s) s
        (S.to_string (S.of_string s)))
    cases;
  List.iter
    (fun bad ->
      match S.of_string bad with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.failf "accepted malformed schedule %S" bad)
    [ "x"; "1:2,1:3"; "5:1,3:0"; "1"; "-1:0" ]

let schedule_ops () =
  let s = S.add (S.add S.empty ~at:3 ~tid:1) ~at:7 ~tid:0 in
  Alcotest.(check int) "length" 2 (S.length s);
  Alcotest.(check int) "last_at" 7 (S.last_at s);
  Alcotest.(check (option int)) "find hit" (Some 1) (S.find s 3);
  Alcotest.(check (option int)) "find miss" None (S.find s 5);
  Alcotest.(check string) "remove" "7:0"
    (S.to_string (S.remove_nth s 0));
  match S.add s ~at:7 ~tid:1 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "accepted non-increasing index"

let oracle_alloc () =
  let o = O.create_alloc () in
  O.malloc_returned o 0x10;
  (* Double allocation with no free in flight must trip. *)
  (match O.malloc_returned o 0x10 with
  | exception O.Violation _ -> ()
  | _ -> Alcotest.fail "double allocation accepted");
  (* An in-flight free legalizes one re-issue, and only one. *)
  let p = O.free_invoked o 0x10 in
  O.malloc_returned o 0x10;
  (match O.malloc_returned o 0x10 with
  | exception O.Violation _ -> ()
  | _ -> Alcotest.fail "second re-issue accepted");
  O.free_returned o p;
  (* The consumed free must NOT deallocate: address is live again. *)
  Alcotest.(check int) "live" 1 (O.live_count o);
  (* Free of a never-allocated address must trip. *)
  match O.free_invoked o 0x99 with
  | exception O.Violation _ -> ()
  | _ -> Alcotest.fail "free of non-live address accepted"

let oracle_fifo () =
  let o = O.create_fifo () in
  O.enqueued o ~tid:0 1;
  O.enqueued o ~tid:0 2;
  O.dequeued o ~producer:0 1;
  O.dequeued o ~producer:0 2;
  O.fifo_check o;
  let o = O.create_fifo () in
  O.enqueued o ~tid:0 1;
  O.enqueued o ~tid:0 2;
  O.dequeued o ~producer:0 2;
  O.dequeued o ~producer:0 1;
  match O.fifo_check o with
  | exception O.Violation _ -> ()
  | _ -> Alcotest.fail "out-of-order dequeue accepted"

let deterministic_replay () =
  let t = target "lf_alloc" in
  let tr1 = E.replay t ~threads:2 S.empty in
  let tr2 = E.replay t ~threads:2 S.empty in
  Alcotest.(check bool) "outcome ok" true (Result.is_ok tr1.E.outcome);
  Alcotest.(check int) "same length" (Array.length tr1.E.points)
    (Array.length tr2.E.points);
  Array.iteri
    (fun i (p : E.point) ->
      let q = tr2.E.points.(i) in
      if p.E.pt_chosen <> q.E.pt_chosen
         || p.E.pt_runnable <> q.E.pt_runnable
      then Alcotest.failf "runs diverge at decision point %d" i)
    tr1.E.points

let planted_bug_exhaustive () =
  let t = target "lf_alloc_notag" in
  let r = E.exhaustive t ~threads:2 ~bound:3 ~budget:5_000 in
  match r.E.finding with
  | None ->
      Alcotest.failf "planted ABA bug not found in %d executions"
        r.E.executions
  | Some f ->
      (* The minimized schedule still fails, replayably, and is minimal:
         dropping any single deviation makes the failure vanish. *)
      let m = f.E.minimized in
      Alcotest.(check bool) "minimized replays" true
        (Result.is_error (E.replay t ~threads:2 m).E.outcome);
      Alcotest.(check bool) "nonempty" true (S.length m > 0);
      for i = 0 to S.length m - 1 do
        let weaker = S.remove_nth m i in
        if Result.is_error (E.replay t ~threads:2 weaker).E.outcome then
          Alcotest.failf "minimized schedule %s is not 1-minimal"
            (S.to_string m)
      done

let planted_bug_pct () =
  let t = target "lf_alloc_notag" in
  let r = E.pct t ~threads:2 ~depth:4 ~runs:6_000 ~seed:3 in
  match r.E.finding with
  | None ->
      Alcotest.failf "PCT missed the planted bug in %d runs" r.E.executions
  | Some f ->
      Alcotest.(check bool) "pct counterexample replays" true
        (Result.is_error (E.replay t ~threads:2 f.E.minimized).E.outcome)

let real_allocator_clean () =
  let t = target "lf_alloc" in
  let r = E.exhaustive t ~threads:2 ~bound:2 ~budget:5_000 in
  Alcotest.(check bool) "complete" true r.E.complete;
  match r.E.finding with
  | None -> ()
  | Some f ->
      Alcotest.failf "violation in the real allocator: %s (%s)" f.E.error
        (S.to_string f.E.schedule)

let building_blocks_clean () =
  List.iter
    (fun name ->
      let t = target name in
      let r = E.exhaustive t ~threads:2 ~bound:2 ~budget:5_000 in
      Alcotest.(check bool) (name ^ " complete") true r.E.complete;
      match r.E.finding with
      | None -> ()
      | Some f -> Alcotest.failf "%s: %s" name f.E.error)
    [ "ms_queue"; "desc_pool"; "treiber_stack"; "tagged_id_stack" ]

(* Every label declared in the registries is exercised by some target
   (so the kill/stall monitor can reach it), no registry entry is
   duplicated, and targets only name registered labels. mm-lint checks
   the registries statically (rule label-registry); this is the runtime
   side of the same contract, against what `check list` enumerates. *)
let registries_match_targets () =
  let registered =
    Mm_core.Labels.all @ Mm_lockfree.Lf_labels.all @ Mm_pages.Pg_labels.all
  in
  let sorted = List.sort_uniq compare registered in
  Alcotest.(check int) "no duplicate registry entries"
    (List.length registered) (List.length sorted);
  let enumerated =
    List.sort_uniq compare
      (List.concat_map (fun t -> t.T.labels) T.all)
  in
  Alcotest.(check (list string)) "targets enumerate the registries"
    sorted enumerated

let monitor_lock_freedom () =
  let t = target "lf_alloc" in
  let r = M.run t ~threads:2 ~modes:[ M.Kill; M.Stall ] ~rounds:2 in
  let fired = List.filter (fun e -> e.M.fired) r.M.entries in
  Alcotest.(check bool) "some labels reached" true (List.length fired > 0);
  List.iter
    (fun (e : M.entry) ->
      match e.M.result with
      | Ok () -> ()
      | Error msg ->
          Alcotest.failf "%s under %s (round %d): %s" e.M.label
            (M.mode_name e.M.mode) e.M.round msg)
    fired

let cases =
  [
    case "schedule string roundtrip" schedule_roundtrip;
    case "schedule operations" schedule_ops;
    case "alloc oracle rules" oracle_alloc;
    case "fifo oracle rules" oracle_fifo;
    case "controlled runs replay deterministically" deterministic_replay;
    case "explorer finds the planted ABA bug" planted_bug_exhaustive;
    case "PCT finds the planted ABA bug" planted_bug_pct;
    case "real allocator survives exploration" real_allocator_clean;
    case "queue, pool and stacks survive exploration"
      building_blocks_clean;
    case "label registries match check targets" registries_match_targets;
    case "kill/stall monitor: survivors complete" monitor_lock_freedom;
  ]
