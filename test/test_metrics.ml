(* Metrics records: construction from a real run, formatting, and the
   speedup edge cases (zero baseline, zero elapsed). *)

open Mm_runtime
module Metrics = Mm_workloads.Metrics
open Util

let mk ~ops f =
  let inst = instance "libc" Rt.real in
  let run =
    Rt.parallel_run Rt.real
      [| (fun _ -> f inst) |]
  in
  Metrics.make ~workload:"unit" ~instance:inst ~threads:1 ~ops ~run ()

let burst inst =
  let addrs =
    Array.init 100 (fun _ -> Mm_mem.Alloc_intf.instance_malloc inst 64)
  in
  Array.iter (Mm_mem.Alloc_intf.instance_free inst) addrs

let make_and_pp () =
  let m = mk ~ops:200 burst in
  Alcotest.(check string) "workload" "unit" m.Metrics.workload;
  Alcotest.(check string) "allocator" "libc" m.Metrics.allocator;
  Alcotest.(check int) "ops" 200 m.Metrics.ops;
  Alcotest.(check bool) "throughput positive" true
    (m.Metrics.throughput > 0.0);
  let s = Format.asprintf "%a" Metrics.pp m in
  let contains needle =
    let n = String.length needle and l = String.length s in
    let rec go i = i + n <= l && (String.sub s i n = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun needle ->
      if not (contains needle) then
        Alcotest.failf "pp output %S lacks %S" s needle)
    [ "unit"; "libc"; "t=1"; "ops=200" ]

let speedup_ratio () =
  let base = mk ~ops:100 burst in
  let fast =
    { base with Metrics.throughput = base.Metrics.throughput *. 2.0 }
  in
  let r = Metrics.speedup fast ~baseline:base in
  Alcotest.(check bool) "ratio ~2" true (abs_float (r -. 2.0) < 1e-9)

let speedup_zero_baseline () =
  (* ops = 0 gives throughput 0; dividing by it must yield 0, not nan or
     an exception (the experiment tables print this directly). *)
  let base = mk ~ops:0 (fun _ -> ()) in
  Alcotest.(check (float 0.0)) "baseline throughput" 0.0
    base.Metrics.throughput;
  let m = mk ~ops:100 burst in
  Alcotest.(check (float 0.0)) "speedup" 0.0
    (Metrics.speedup m ~baseline:base)

let zero_elapsed_throughput () =
  (* A run too fast to measure must not produce inf. *)
  let m = mk ~ops:100 burst in
  let frozen = { m with Metrics.elapsed = 0.0; throughput = 0.0 } in
  Alcotest.(check (float 0.0)) "self-speedup of frozen run" 0.0
    (Metrics.speedup m ~baseline:frozen)

let cases =
  [
    case "make + pp fields" make_and_pp;
    case "speedup ratio" speedup_ratio;
    case "speedup with zero baseline" speedup_zero_baseline;
    case "zero elapsed handled" zero_elapsed_throughput;
  ]
