(* Lock-free building blocks: Treiber stack, MS queue, hazard pointers,
   tagged id stack, backoff. Sequential semantics plus concurrent
   conservation under both runtimes and several simulated schedules. *)

open Mm_runtime

(* Sequential semantics run on the real instantiation; schedule-driven
   concurrency tests on the simulated one. *)
module Ts = Mm_lockfree.Treiber_stack.Make (Real_rt)
module Msq = Mm_lockfree.Ms_queue.Make (Real_rt)
module Hp = Mm_lockfree.Hazard_pointers.Make (Real_rt)
module Tis = Mm_lockfree.Tagged_id_stack.Make (Real_rt)
module Backoff = Mm_lockfree.Backoff.Make (Real_rt)
module Msq_s = Mm_lockfree.Ms_queue.Make (Sim_rt)
module Hp_s = Mm_lockfree.Hazard_pointers.Make (Sim_rt)
module Tis_s = Mm_lockfree.Tagged_id_stack.Make (Sim_rt)
open Util

(* ---------------- Treiber stack ---------------- *)

let treiber_seq () =
  let s = Ts.create () in
  Alcotest.(check bool) "empty" true (Ts.is_empty s);
  Alcotest.(check (option int)) "pop empty" None (Ts.pop s);
  Ts.push s 1;
  Ts.push s 2;
  Ts.push s 3;
  Alcotest.(check (option int)) "peek" (Some 3) (Ts.peek s);
  Alcotest.(check (list int)) "to_list top-first" [ 3; 2; 1 ] (Ts.to_list s);
  Alcotest.(check int) "length" 3 (Ts.length s);
  Alcotest.(check (option int)) "lifo" (Some 3) (Ts.pop s);
  Alcotest.(check (option int)) "lifo" (Some 2) (Ts.pop s);
  Alcotest.(check (option int)) "lifo" (Some 1) (Ts.pop s);
  Alcotest.(check (option int)) "drained" None (Ts.pop s)

let treiber_qcheck =
  qcheck "treiber matches list model (sequential)"
    QCheck2.Gen.(list (int_range 0 2))
    (fun ops ->
      let s = Ts.create () in
      let model = ref [] in
      List.iteri
        (fun i op ->
          if op < 2 then begin
            Ts.push s i;
            model := i :: !model
          end
          else begin
            let got = Ts.pop s in
            let expect =
              match !model with
              | [] -> None
              | x :: tl ->
                  model := tl;
                  Some x
            in
            if got <> expect then raise Exit
          end)
        ops;
      Ts.to_list s = !model)

(* Conservation: [producers] push disjoint values, [consumers] pop;
   nothing lost, nothing duplicated. Runtime-generic, instantiated for
   both backends. *)
module Conserve (Rt : Mm_runtime.Runtime_intf.S) = struct
  module Ts = Mm_lockfree.Treiber_stack.Make (Rt)

  let stack_conservation h mk_run =
    let s = Ts.create h in
    let n = 200 and producers = 2 and consumers = 2 in
    let popped = Array.make (producers * n) false in
    let producer p _ =
      for i = 0 to n - 1 do
        Ts.push s ((p * n) + i)
      done
    in
    let consumer _ _ =
      for _ = 1 to n do
        match Ts.pop s with
        | Some v ->
            assert (not popped.(v));
            popped.(v) <- true
        | None -> ()
      done
    in
    let bodies =
      Array.init (producers + consumers) (fun i ->
          if i < producers then producer i else consumer i)
    in
    mk_run bodies;
    (* Drain what remains. *)
    let rec drain () =
      match Ts.pop s with
      | Some v ->
          assert (not popped.(v));
          popped.(v) <- true;
          drain ()
      | None -> ()
    in
    drain ();
    Array.iteri
      (fun i seen -> if not seen then Alcotest.failf "value %d lost" i)
      popped
end

module Conserve_r = Conserve (Real_rt)
module Conserve_s = Conserve (Sim_rt)

let treiber_conc_real () =
  Conserve_r.stack_conservation () (fun bodies ->
      ignore (Rt.parallel_run Rt.real bodies))

let treiber_conc_sim () =
  for seed = 1 to 10 do
    let s = sim ~cpus:4 ~seed () in
    Conserve_s.stack_conservation s (fun bodies -> ignore (Sim.run s bodies))
  done

(* ---------------- MS queue ---------------- *)

let msq_seq () =
  let q = Msq.create () in
  Alcotest.(check bool) "empty" true (Msq.is_empty q);
  Alcotest.(check (option int)) "dequeue empty" None (Msq.dequeue q);
  Msq.enqueue q 1;
  Msq.enqueue q 2;
  Msq.enqueue q 3;
  Alcotest.(check (list int)) "to_list head-first" [ 1; 2; 3 ] (Msq.to_list q);
  Alcotest.(check int) "length" 3 (Msq.length q);
  Alcotest.(check (option int)) "fifo" (Some 1) (Msq.dequeue q);
  Alcotest.(check (option int)) "fifo" (Some 2) (Msq.dequeue q);
  Msq.enqueue q 4;
  Alcotest.(check (option int)) "fifo" (Some 3) (Msq.dequeue q);
  Alcotest.(check (option int)) "fifo" (Some 4) (Msq.dequeue q);
  Alcotest.(check (option int)) "drained" None (Msq.dequeue q);
  Alcotest.(check bool) "empty again" true (Msq.is_empty q)

let msq_qcheck =
  qcheck "ms queue matches queue model (sequential)"
    QCheck2.Gen.(list (int_range 0 2))
    (fun ops ->
      let q = Msq.create () in
      let model = Queue.create () in
      List.iteri
        (fun i op ->
          if op < 2 then begin
            Msq.enqueue q i;
            Queue.push i model
          end
          else begin
            let got = Msq.dequeue q in
            let expect = Queue.take_opt model in
            if got <> expect then raise Exit
          end)
        ops;
      Msq.to_list q = List.of_seq (Queue.to_seq model))

(* FIFO per producer: each producer's values are dequeued in their
   production order. *)
let msq_per_producer_fifo () =
  for seed = 1 to 10 do
    let s = sim ~cpus:4 ~seed () in
    let q = Msq_s.create s in
    let n = 150 and producers = 3 in
    let dequeued = ref [] in
    let bodies =
      Array.init (producers + 1) (fun i ->
          if i < producers then fun _ ->
            for k = 0 to n - 1 do
              Msq_s.enqueue q ((i * n) + k)
            done
          else fun _ ->
            for _ = 1 to producers * n do
              match Msq_s.dequeue q with
              | Some v -> dequeued := v :: !dequeued
              | None -> Sim_rt.yield s
            done)
    in
    ignore (Sim.run s bodies);
    let rec drain () =
      match Msq_s.dequeue q with
      | Some v ->
          dequeued := v :: !dequeued;
          drain ()
      | None -> ()
    in
    drain ();
    let seq = List.rev !dequeued in
    Alcotest.(check int) "all values seen" (producers * n) (List.length seq);
    for p = 0 to producers - 1 do
      let mine = List.filter (fun v -> v / n = p) seq in
      let expected = List.init n (fun k -> (p * n) + k) in
      if mine <> expected then
        Alcotest.failf "seed %d: producer %d order violated" seed p
    done
  done

(* ---------------- Hazard pointers ---------------- *)

let hp_basic () =
  let reused = ref [] in
  let hp = Hp.create () ~scan_threshold:4 ~reuse:(fun n -> reused := n :: !reused) in
  let a = ref 1 and b = ref 2 in
  Hp.protect hp ~slot:0 a;
  Hp.retire hp a;
  Hp.retire hp b;
  Hp.scan hp;
  Alcotest.(check bool) "unprotected b reused" true (List.memq b !reused);
  Alcotest.(check bool) "protected a not reused" true
    (not (List.memq a !reused));
  Alcotest.(check int) "a still pending" 1 (Hp.retired_count hp);
  Hp.clear hp ~slot:0;
  Hp.scan hp;
  Alcotest.(check bool) "a reused after clear" true (List.memq a !reused);
  Alcotest.(check int) "nothing pending" 0 (Hp.retired_count hp)

let hp_threshold_triggers_scan () =
  let reused = ref 0 in
  let hp = Hp.create () ~scan_threshold:8 ~reuse:(fun _ -> incr reused) in
  for i = 1 to 8 do
    Hp.retire hp (ref i)
  done;
  Alcotest.(check int) "scan fired at threshold" 8 !reused

let hp_multi_slot () =
  let reused = ref [] in
  let hp =
    Hp.create () ~k:2 ~scan_threshold:100
      ~reuse:(fun n -> reused := n :: !reused)
  in
  let a = ref 1 and b = ref 2 in
  Hp.protect hp ~slot:0 a;
  Hp.protect hp ~slot:1 b;
  Alcotest.(check int) "two protected" 2 (Hp.protected_count hp);
  Hp.retire hp a;
  Hp.retire hp b;
  Hp.scan hp;
  Alcotest.(check (list reject)) "none reused" [] !reused;
  Hp.clear hp ~slot:0;
  Hp.clear hp ~slot:1;
  Hp.flush hp;
  Alcotest.(check int) "both reused after flush" 2 (List.length !reused)

(* The safety property under concurrency: a node is never handed to
   [reuse] while some thread's hazard pointer covers it. We track the
   protection windows with host-side state updated around the sim
   steps. *)
let hp_concurrent_safety () =
  for seed = 1 to 8 do
    let s = sim ~cpus:4 ~seed () in
    let protected_now = Array.make 4 None in
    let violations = ref 0 in
    let reuse node =
      Array.iter
        (fun p -> if p == Some node then incr violations)
        protected_now
    in
    let hp = Hp_s.create s ~scan_threshold:6 ~reuse in
    let body tid =
      let rng = Prng.create (seed + tid) in
      for i = 1 to 100 do
        let node = ref ((tid * 1000) + i) in
        Hp_s.protect hp ~slot:0 node;
        protected_now.(tid) <- Some node;
        Sim_rt.work s (Prng.int rng 50);
        protected_now.(tid) <- None;
        Hp_s.clear hp ~slot:0;
        Hp_s.retire hp node
      done
    in
    ignore (Sim.run s (Array.init 4 (fun i _ -> body i)));
    Alcotest.(check int)
      (Printf.sprintf "seed %d: no protected node reused" seed)
      0 !violations
  done

(* ---------------- Tagged id stack ---------------- *)

let tagged_seq () =
  let next = Array.make 64 (-1) in
  let s =
    Tis.create ()
      ~get_next:(fun i -> next.(i))
      ~set_next:(fun i v -> next.(i) <- v)
      ()
  in
  Alcotest.(check bool) "empty" true (Tis.is_empty s);
  Alcotest.(check (option int)) "pop empty" None (Tis.pop s);
  Tis.push s 5;
  Tis.push s 9;
  Alcotest.(check (list int)) "to_list" [ 9; 5 ] (Tis.to_list s);
  Alcotest.(check (option int)) "lifo" (Some 9) (Tis.pop s);
  (* Reuse after pop: the classic ABA shape — push 5's id again. *)
  Tis.push s 9;
  Alcotest.(check (option int)) "reused id pops fine" (Some 9) (Tis.pop s);
  Alcotest.(check (option int)) "then 5" (Some 5) (Tis.pop s);
  Alcotest.(check (option int)) "drained" None (Tis.pop s)

let tagged_bad_id () =
  let s =
    Tis.create () ~get_next:(fun _ -> -1) ~set_next:(fun _ _ -> ()) ()
  in
  Alcotest.check_raises "negative id"
    (Invalid_argument "Tagged_id_stack.push: bad id") (fun () -> Tis.push s (-1))

let tagged_conservation () =
  for seed = 1 to 10 do
    let s = sim ~cpus:4 ~seed () in
    let next = Array.make 1024 (-1) in
    let stack =
      Tis_s.create s
        ~get_next:(fun i -> next.(i))
        ~set_next:(fun i v -> next.(i) <- v)
        ()
    in
    (* Pre-fill with ids 0..255; threads pop/push randomly; at the end
       every id is present exactly once (in stack or never popped). *)
    for i = 0 to 255 do
      Tis_s.push stack i
    done;
    let body tid =
      let rng = Prng.create (seed * 100 + tid) in
      let held = ref [] in
      for _ = 1 to 200 do
        if Prng.bool rng && !held <> [] then begin
          match !held with
          | id :: rest ->
              held := rest;
              Tis_s.push stack id
          | [] -> ()
        end
        else
          match Tis_s.pop stack with
          | Some id -> held := id :: !held
          | None -> ()
      done;
      List.iter (Tis_s.push stack) !held
    in
    ignore (Sim.run s (Array.init 4 (fun i _ -> body i)));
    let final = List.sort compare (Tis_s.to_list stack) in
    Alcotest.(check (list int))
      (Printf.sprintf "seed %d: ids conserved" seed)
      (List.init 256 (fun i -> i))
      final
  done

(* ---------------- Backoff ---------------- *)

let backoff_basics () =
  let b = Backoff.create ~min_spins:2 ~max_spins:8 () in
  Backoff.once b;
  Backoff.once b;
  Backoff.once b;
  Backoff.once b;
  (* saturates without error *)
  Backoff.reset b;
  Backoff.once b;
  Alcotest.check_raises "bad bounds"
    (Invalid_argument "Backoff.create: need 1 <= min_spins <= max_spins")
    (fun () -> ignore (Backoff.create ~min_spins:0 ()))

let cases =
  [
    case "treiber sequential" treiber_seq;
    treiber_qcheck;
    case "treiber conservation (real)" treiber_conc_real;
    case "treiber conservation (sim x10 seeds)" treiber_conc_sim;
    case "ms queue sequential" msq_seq;
    msq_qcheck;
    case "ms queue per-producer fifo (sim x10 seeds)" msq_per_producer_fifo;
    case "hazard basic protection" hp_basic;
    case "hazard scan threshold" hp_threshold_triggers_scan;
    case "hazard multi-slot" hp_multi_slot;
    case "hazard concurrent safety (sim x8 seeds)" hp_concurrent_safety;
    case "tagged stack sequential + reuse" tagged_seq;
    case "tagged stack id validation" tagged_bad_id;
    case "tagged stack conservation (sim x10 seeds)" tagged_conservation;
    case "backoff basics" backoff_basics;
  ]
