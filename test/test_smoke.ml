(* Early end-to-end smoke tests for the lock-free allocator on both
   runtime instantiations (DESIGN.md §18); the full suites live in the
   test_* modules. *)

open Mm_runtime
module Cfg = Mm_mem.Alloc_config

let cfg = Cfg.make ~nheaps:4 ()

(* The sequential body is runtime-generic: instantiate it once per
   backend and the same source drives both specializations. *)
module Seq (Rt : Mm_runtime.Runtime_intf.S) = struct
  module A = Mm_core.Lf_alloc.Make (Rt)
  module Store = Mm_mem.Store.Make (Rt)

  let run h =
    let t = A.create h cfg in
    let addrs = Array.init 100 (fun i -> A.malloc t (8 * (1 + (i mod 16)))) in
    let distinct = List.sort_uniq compare (Array.to_list addrs) in
    Alcotest.(check int) "distinct addresses" 100 (List.length distinct);
    (* Payload integrity: write a stamp in each block, read all back. *)
    Array.iteri (fun i a -> Store.write_word (A.store t) a (i * 7)) addrs;
    Array.iteri
      (fun i a ->
        Alcotest.(check int)
          "payload intact" (i * 7)
          (Store.read_word (A.store t) a))
      addrs;
    Array.iter (A.free t) addrs;
    A.check_invariants t
end

module Seq_real = Seq (Real_rt)
module Seq_sim = Seq (Sim_rt)
module Ar = Mm_core.Lf_alloc.Make (Real_rt)
module As = Mm_core.Lf_alloc.Make (Sim_rt)

let seq_real () = Seq_real.run ()

let seq_sim () =
  let sim = Sim.create ~cpus:4 () in
  Seq_sim.run sim

let par_sim () =
  let sim = Sim.create ~cpus:8 ~seed:42 () in
  let t = As.create sim cfg in
  let body _ =
    let addrs = Array.init 200 (fun i -> As.malloc t (8 * (1 + (i mod 20)))) in
    Array.iter (As.free t) addrs
  in
  ignore (Sim.run sim (Array.make 8 body));
  As.check_invariants t;
  let m, f = As.op_counts t in
  Alcotest.(check int) "mallocs" (8 * 200) m;
  Alcotest.(check int) "frees" (8 * 200) f

let par_real () =
  let t = Ar.create () cfg in
  let body _ =
    for round = 1 to 20 do
      let addrs =
        Array.init 50 (fun i -> Ar.malloc t (8 * (1 + ((i + round) mod 20))))
      in
      Array.iter (Ar.free t) addrs
    done
  in
  ignore (Rt.parallel_run Rt.real (Array.make 4 body));
  Ar.check_invariants t

let cases =
  [
    Alcotest.test_case "seq real" `Quick seq_real;
    Alcotest.test_case "seq sim" `Quick seq_sim;
    Alcotest.test_case "par sim" `Quick par_sim;
    Alcotest.test_case "par real" `Quick par_real;
  ]
