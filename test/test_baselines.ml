(* Baseline-specific behaviour: the serial heap core, Ptmalloc's arena
   dynamics, Hoard's superblock migration, libc's total serialization. *)

open Mm_runtime
module Sb = Mm_baselines.Sb_heap.Make (Real_rt)
module Pt = Mm_baselines.Ptmalloc_alloc.Make (Sim_rt)
module Hd = Mm_baselines.Hoard_alloc.Make (Real_rt)
module Lc = Mm_baselines.Libc_alloc.Make (Real_rt)
module Cfg = Mm_mem.Alloc_config

module Store = struct
  include Mm_mem.Store
  include Mm_mem.Store.Make (Real_rt)
end

module Store_s = Mm_mem.Store.Make (Sim_rt)
module Space_r = Mm_mem.Space.Make (Real_rt)
module Space_s = Mm_mem.Space.Make (Sim_rt)
open Util

(* ---------------- serial heap core ---------------- *)

let ctx_and_heap () =
  let ctx = Sb.create_ctx () (Cfg.make ~sbsize:4096 ()) ~op_overhead:0 in
  let heap = Sb.create_heap ctx ~lock_kind:Cfg.Tas_backoff in
  (ctx, heap)

let sb_pop_push () =
  let ctx, heap = ctx_and_heap () in
  Alcotest.(check (option int)) "empty heap has no block" None
    (Sb.pop_block ctx heap 0);
  let d = Sb.new_superblock ctx heap 0 in
  let n = d.Sb.Sdesc.maxcount in
  Alcotest.(check int) "fresh superblock full of free blocks" n
    (Sb.free_blocks heap);
  let addrs = List.init n (fun _ -> Option.get (Sb.pop_block ctx heap 0)) in
  Alcotest.(check int) "distinct" n
    (List.length (List.sort_uniq compare addrs));
  Alcotest.(check (option int)) "exhausted" None (Sb.pop_block ctx heap 0);
  List.iteri
    (fun i a ->
      let st = Sb.push_block ctx d a in
      if i = n - 1 then
        Alcotest.(check bool) "last push empties" true
          (st = `Superblock_empty))
    addrs;
  Sb.check_heap_invariants ctx heap

let sb_release_and_stats () =
  let ctx, heap = ctx_and_heap () in
  let d = Sb.new_superblock ctx heap 0 in
  Sb.release_superblock ctx heap d;
  Alcotest.(check int) "no blocks left" 0 (Sb.total_blocks heap);
  Alcotest.(check int) "munmapped" 1 (Store.os_stats (Sb.store ctx)).Store.munmap_calls;
  Sb.check_heap_invariants ctx heap

let sb_migration () =
  let ctx, h1 = ctx_and_heap () in
  let h2 = Sb.create_heap ctx ~lock_kind:Cfg.Tas_backoff in
  let d = Sb.new_superblock ctx h1 0 in
  Sb.detach_superblock ctx h1 d;
  Sb.attach_superblock ctx h2 d;
  Alcotest.(check int) "owner updated" (Sb.heap_uid h2) d.Sb.Sdesc.owner;
  Alcotest.(check int) "h1 empty" 0 (Sb.total_blocks h1);
  Alcotest.(check bool) "h2 holds it" true (Sb.total_blocks h2 > 0);
  Sb.check_heap_invariants ctx h1;
  Sb.check_heap_invariants ctx h2

let sb_take_prefers_emptiest () =
  let ctx, heap = ctx_and_heap () in
  let d1 = Sb.new_superblock ctx heap 0 in
  let _d2 = Sb.new_superblock ctx heap 0 in
  (* Drain some blocks from d1 so d2 is emptier. *)
  let taken = List.init 10 (fun _ -> Option.get (Sb.pop_block ctx heap 0)) in
  (* pop_block takes from the MRU head, which is d2; make d1 emptier
     instead by checking counts. *)
  let got = Option.get (Sb.take_superblock ctx heap 0) in
  Alcotest.(check bool) "returns the fullest-of-free (emptiest)" true
    (got.Sb.Sdesc.count >= d1.Sb.Sdesc.count);
  List.iter (fun a -> ignore (Sb.push_block ctx (Sb.sdesc_of_prefix ctx (Store.read_word (Sb.store ctx) (a - 8))) a)) taken

let sb_checker_detects () =
  let ctx, heap = ctx_and_heap () in
  let d = Sb.new_superblock ctx heap 0 in
  d.Sb.Sdesc.count <- d.Sb.Sdesc.count - 1 (* lie *);
  Alcotest.(check bool) "corruption detected" true
    (match Sb.check_heap_invariants ctx heap with
    | _ -> false
    | exception Failure _ -> true)

let sb_maybe_release_hysteresis () =
  let ctx, heap = ctx_and_heap () in
  let d1 = Sb.new_superblock ctx heap 0 in
  let d2 = Sb.new_superblock ctx heap 0 in
  (* Both empty. surplus=1 allows keeping one extra: releasing d1 with
     two empties present goes through; then d2 alone stays. *)
  Sb.maybe_release ctx heap d1 ~surplus:1;
  Alcotest.(check int) "released one" 1
    (Store.os_stats (Sb.store ctx)).Store.munmap_calls;
  Sb.maybe_release ctx heap d2 ~surplus:1;
  Alcotest.(check int) "kept the last one" 1
    (Store.os_stats (Sb.store ctx)).Store.munmap_calls

(* ---------------- ptmalloc ---------------- *)

let pt_arena_growth () =
  (* Threads that collide on arena locks cause new arenas to appear —
     the paper's observation (22 arenas for 16 threads). *)
  for seed = 1 to 3 do
    let s = sim ~cpus:8 ~seed ~max_cycles:20_000_000_000 () in
    let rt = s in
    let t = Pt.create rt (Cfg.make ()) in
    let body tid =
      let rng = Prng.create tid in
      let slots = Array.make 32 0 in
      for _ = 1 to 400 do
        let i = Prng.int rng 32 in
        if slots.(i) <> 0 then begin
          Pt.free t slots.(i);
          slots.(i) <- 0
        end
        else slots.(i) <- Pt.malloc t (Prng.int_in rng 16 80)
      done;
      Array.iter (fun a -> if a <> 0 then Pt.free t a) slots
    in
    ignore (Sim.run s (Array.init 8 (fun i _ -> body i)));
    Alcotest.(check bool)
      (Printf.sprintf "seed %d: arenas grew under contention (%d)" seed
         (Pt.arena_count t))
      true
      (Pt.arena_count t >= 2);
    Pt.check_invariants t
  done

let pt_arena_limit () =
  let s = sim ~cpus:8 () in
  let rt = s in
  let t = Pt.create rt (Cfg.make ~arena_limit:3 ()) in
  let body _ =
    for _ = 1 to 300 do
      let a = Pt.malloc t 32 in
      Pt.free t a
    done
  in
  ignore (Sim.run s (Array.make 8 body));
  Alcotest.(check bool) "limit respected" true (Pt.arena_count t <= 3);
  Pt.check_invariants t

let pt_free_goes_home () =
  (* A block freed by another thread lands back in its source arena:
     space stays bounded when a producer feeds a consumer. *)
  let s = sim ~cpus:2 () in
  let rt = s in
  let t = Pt.create rt (Cfg.make ()) in
  let handoff = Array.make 2_000 0 in
  let round = Sim_rt.Atomic.make rt 0 in
  ignore
    (Sim.run s
       [|
         (fun _ ->
           for r = 0 to 9 do
             for i = 0 to 199 do
               handoff.(i) <- Pt.malloc t 32
             done;
             Sim_rt.Atomic.set round (r + 1);
             while Sim_rt.Atomic.get round >= 0 && Sim_rt.Atomic.get round <> -(r + 1)
             do
               Sim_rt.yield rt
             done
           done);
         (fun _ ->
           for r = 0 to 9 do
             while Sim_rt.Atomic.get round <> r + 1 do
               Sim_rt.yield rt
             done;
             for i = 0 to 199 do
               Pt.free t handoff.(i)
             done;
             Sim_rt.Atomic.set round (-(r + 1))
           done);
       |]);
  let space = Space_s.read (Store_s.space (Pt.store t)) in
  Alcotest.(check bool) "bounded space under producer-consumer" true
    (space.Mm_mem.Space.mapped_peak <= 20 * 16 * 1024);
  Pt.check_invariants t

(* ---------------- hoard ---------------- *)

let hoard_empty_sb_migrates () =
  let t = Hd.create () (Cfg.make ~nheaps:2 ~sbsize:4096 ()) in
  (* Allocate several superblocks' worth, then free everything: Hoard's
     invariant moves empty superblocks to the global heap instead of
     letting the processor heap hoard them. *)
  let addrs = Array.init 2_000 (fun _ -> Hd.malloc t 8) in
  Array.iter (Hd.free t) addrs;
  Hd.check_invariants t;
  (* Allocating again must not mmap fresh superblocks: they come back
     from the global heap. *)
  let mmaps_before = (Store.os_stats (Hd.store t)).Store.mmap_calls in
  let again = Array.init 2_000 (fun _ -> Hd.malloc t 8) in
  let mmaps_after = (Store.os_stats (Hd.store t)).Store.mmap_calls in
  Alcotest.(check bool) "reused superblocks from global heap" true
    (mmaps_after - mmaps_before <= 1);
  Array.iter (Hd.free t) again;
  Hd.check_invariants t

let hoard_space_bounded () =
  (* The Hoard invariant bounds blowup under repeated burst/free
     cycles. *)
  let t = Hd.create () (Cfg.make ~nheaps:2 ~sbsize:4096 ()) in
  for _ = 1 to 10 do
    let addrs = Array.init 1_000 (fun _ -> Hd.malloc t 8) in
    Array.iter (Hd.free t) addrs
  done;
  let space = Space_r.read (Store.space (Hd.store t)) in
  Alcotest.(check bool) "peak bounded across bursts" true
    (space.Mm_mem.Space.mapped_peak <= 40 * 4096);
  Hd.check_invariants t

(* ---------------- libc ---------------- *)

let libc_serializes () =
  (* Every operation takes the single lock: acquisitions ~= op count. *)
  let t = Lc.create () (Cfg.make ()) in
  let addrs = Array.init 100 (fun _ -> Lc.malloc t 8) in
  Array.iter (Lc.free t) addrs;
  Lc.check_invariants t

let cases =
  [
    case "serial heap pop/push" sb_pop_push;
    case "serial heap release + stats" sb_release_and_stats;
    case "serial heap migration" sb_migration;
    case "take_superblock prefers emptiest" sb_take_prefers_emptiest;
    case "serial checker detects corruption" sb_checker_detects;
    case "maybe_release hysteresis" sb_maybe_release_hysteresis;
    case "ptmalloc arena growth (sim x3)" pt_arena_growth;
    case "ptmalloc arena limit" pt_arena_limit;
    case "ptmalloc free goes home" pt_free_goes_home;
    case "hoard empty superblocks migrate" hoard_empty_sb_migrates;
    case "hoard space bounded" hoard_space_bounded;
    case "libc basic serialization" libc_serializes;
  ]
