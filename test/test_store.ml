(* Simulated OS memory substrate: regions, word access, recycling,
   hyperblocks, accounting. *)

open Mm_runtime

(* Real-runtime instantiations, plus the runtime-independent types
   (os_stats / snapshot fields) from the enclosing modules. *)
module Store = struct
  include Mm_mem.Store
  include Mm_mem.Store.Make (Real_rt)
end

module Space = struct
  include Mm_mem.Space
  include Mm_mem.Space.Make (Real_rt)
end

module Store_s = Mm_mem.Store.Make (Sim_rt)
module Space_s = Mm_mem.Space.Make (Sim_rt)
module Addr = Mm_mem.Addr
open Util

let fresh ?(hyperblocks = false) ?(sbsize = 16 * 1024) () =
  Store.create () ~capacity:4096 ~sbsize ~hyperblocks ()

let superblock_basics () =
  let st = fresh () in
  let sb = Store.alloc_superblock st in
  Alcotest.(check int) "base offset 0" 0 (Addr.offset sb);
  Alcotest.(check int) "sb length" (16 * 1024) (Store.region_len st sb);
  Store.write_word st (sb + 128) 999;
  Alcotest.(check int) "word roundtrip" 999 (Store.read_word st (sb + 128));
  Alcotest.(check int) "zero-initialized" 0 (Store.read_word st (sb + 256));
  Store.free_superblock st sb;
  let os = Store.os_stats st in
  Alcotest.(check int) "one mmap" 1 os.Store.mmap_calls;
  Alcotest.(check int) "one munmap" 1 os.Store.munmap_calls

let superblock_recycled_lazily_zeroed () =
  let st = fresh () in
  let sb = Store.alloc_superblock st in
  Store.write_word st sb 777;
  Store.write_word st (sb + 8) 888;
  Store.free_superblock st sb;
  let mmaps_before = (Store.os_stats st).Store.mmap_calls in
  let sb2 = Store.alloc_superblock st in
  Alcotest.(check int) "recycled region id" (Addr.region sb) (Addr.region sb2);
  let os = Store.os_stats st in
  Alcotest.(check int) "pool hit counts a reuse, not an mmap" mmaps_before
    os.Store.mmap_calls;
  Alcotest.(check int) "one sb_reuse" 1 os.Store.sb_reuses;
  Alcotest.(check int) "two sb_allocs" 2 os.Store.sb_allocs;
  (* Stale bytes are cleared lazily: init_free_list writes the links and
     zeroes everything else, so after it the superblock is
     indistinguishable from a fresh mapping. *)
  Store.init_free_list st sb2 ~sz:64 ~maxcount:256;
  Alcotest.(check int) "link word rewritten" 1 (Store.read_word st sb2);
  Alcotest.(check int) "stale non-link word zeroed" 0
    (Store.read_word st (sb2 + 8))

let large_blocks () =
  let st = fresh () in
  let a = Store.alloc_large st ~len:100_000 in
  Alcotest.(check bool) "len at least requested" true
    (Store.region_len st a >= 100_000);
  Store.write_word st (a + 99_992) 5;
  Alcotest.(check int) "tail word" 5 (Store.read_word st (a + 99_992));
  let space = Space.read (Store.space st) in
  Alcotest.(check bool) "page-rounded accounting" true
    (space.Space.mapped >= 100_000 && space.Space.mapped < 100_000 + 4096);
  Store.free_large st a;
  let space = Space.read (Store.space st) in
  Alcotest.(check int) "unmapped" 0 space.Space.mapped;
  Alcotest.(check bool) "dead region reads 0" true (Store.read_word st a = 0);
  (* id recycled for the next large region *)
  let b = Store.alloc_large st ~len:64 in
  Alcotest.(check int) "large region id recycled" (Addr.region a)
    (Addr.region b)

let bounds_are_safe () =
  let st = fresh () in
  let sb = Store.alloc_superblock st in
  Alcotest.(check int) "read past end" 0
    (Store.read_word st (sb + (16 * 1024) - 4));
  Store.write_word st (sb + (16 * 1024) - 4) 1;
  Alcotest.(check int) "write past end dropped" 0
    (Store.read_word st (sb + (16 * 1024) - 4));
  Alcotest.(check int) "unknown region" 0
    (Store.read_word st (Addr.make ~region:4000 ~offset:0))

let sim_bounds_assert () =
  (* In simulation a non-racy out-of-bounds word access is a bug in the
     allocator, not a benign miss — it must trip the assertion. Racy
     accesses keep the tolerant behaviour (the paper's reads of
     possibly-reused memory). *)
  let s = sim ~cpus:1 () in
  ignore
    (Sim.run s
       [|
         (fun _ ->
           let st = Store_s.create s ~capacity:4096 ~sbsize:(16 * 1024) () in
           let sb = Store_s.alloc_superblock st in
           let oob = sb + (16 * 1024) - 4 in
           (try
              ignore (Store_s.read_word st oob);
              Alcotest.fail "sim OOB read did not assert"
            with Failure msg ->
              Alcotest.(check bool) "read diagnostic names the offset" true
                (String.length msg > 0));
           (try
              Store_s.write_word st oob 1;
              Alcotest.fail "sim OOB write did not assert"
            with Failure _ -> ());
           Alcotest.(check int) "racy OOB read stays tolerant" 0
             (Store_s.read_word ~racy:true st oob);
           Store_s.write_word ~racy:true st oob 1;
           (* Dead regions stay tolerant in both modes: racy reads may
              legitimately target retired superblocks. *)
           Store_s.free_superblock st sb;
           Alcotest.(check int) "dead region reads 0" 0
             (Store_s.read_word st sb));
       |])

let init_free_list () =
  let st = fresh () in
  let sb = Store.alloc_superblock st in
  Store.init_free_list st sb ~sz:64 ~maxcount:256;
  for i = 0 to 255 do
    Alcotest.(check int) "link" (i + 1) (Store.read_word st (sb + (i * 64)))
  done

let hyperblocks_batch () =
  let st = fresh ~hyperblocks:true () in
  let sbs = List.init 64 (fun _ -> Store.alloc_superblock st) in
  let os = Store.os_stats st in
  Alcotest.(check int) "one mmap for 64 superblocks" 1 os.Store.mmap_calls;
  Alcotest.(check int) "64 sb allocations" 64 os.Store.sb_allocs;
  (* all base addresses distinct, all writable independently *)
  List.iteri (fun i sb -> Store.write_word st sb i) sbs;
  List.iteri
    (fun i sb -> Alcotest.(check int) "independent" i (Store.read_word st sb))
    sbs;
  ignore (Store.alloc_superblock st);
  Alcotest.(check int) "65th superblock needs a second hyperblock" 2
    (Store.os_stats st).Store.mmap_calls;
  (* frees recycle without munmap *)
  List.iter (Store.free_superblock st) sbs;
  Alcotest.(check int) "no munmap with hyperblocks" 0
    (Store.os_stats st).Store.munmap_calls

let space_peaks () =
  let st = fresh () in
  let a = Store.alloc_superblock st in
  let b = Store.alloc_superblock st in
  Store.free_superblock st a;
  Store.free_superblock st b;
  let s = Space.read (Store.space st) in
  Alcotest.(check int) "current 0" 0 s.Space.mapped;
  Alcotest.(check int) "peak was 2 superblocks" (32 * 1024)
    s.Space.mapped_peak

let live_regions_count () =
  let st = fresh () in
  let sb = Store.alloc_superblock st in
  let l = Store.alloc_large st ~len:64 in
  Alcotest.(check int) "two live" 2 (Store.live_regions st);
  Store.free_large st l;
  Alcotest.(check int) "one live" 1 (Store.live_regions st);
  ignore sb

let concurrent_region_alloc () =
  (* Region ids handed out concurrently never collide. *)
  for seed = 1 to 5 do
    let s = sim ~cpus:4 ~seed () in
    let st = Store_s.create s ~capacity:4096 () in
    let got = Array.make 4 [] in
    let body tid =
      for _ = 1 to 25 do
        got.(tid) <- Store_s.alloc_superblock st :: got.(tid)
      done
    in
    ignore (Sim.run s (Array.init 4 (fun i _ -> body i)));
    let all = List.concat (Array.to_list got) in
    let distinct = List.sort_uniq compare all in
    Alcotest.(check int) "100 distinct superblocks" 100 (List.length distinct)
  done

let validation () =
  let st = fresh () in
  let sb = Store.alloc_superblock st in
  Alcotest.check_raises "free_superblock needs base"
    (Invalid_argument "Store.free_superblock: not a region base") (fun () ->
      Store.free_superblock st (sb + 8));
  Alcotest.check_raises "alloc_large needs positive len"
    (Invalid_argument "Store.alloc_large: len must be positive") (fun () ->
      ignore (Store.alloc_large st ~len:0))

let payload_round_real () =
  (* On the real runtime write_payload_round really writes. *)
  let st = fresh () in
  let sb = Store.alloc_superblock st in
  Store.write_payload_round st (sb + 8) ~len:8 ~times:3;
  Alcotest.(check bool) "bytes written" true (Store.read_word st (sb + 8) <> 0)

(* ---------------- Space ---------------- *)

let space_concurrent_peaks () =
  let s = sim ~cpus:4 () in
  let sp = Space_s.create s in
  let body _ =
    for _ = 1 to 100 do
      Space_s.add_used sp 10;
      Space_s.add_used sp (-10)
    done
  in
  ignore (Sim.run s (Array.make 4 body));
  let r = Space_s.read sp in
  Alcotest.(check int) "used back to zero" 0 r.Space.used;
  Alcotest.(check bool) "peak within bounds" true
    (r.Space.used_peak >= 10 && r.Space.used_peak <= 40)

let space_reset_peaks () =
  let sp = Space.create () in
  Space.add_mapped sp 100;
  Space.add_mapped sp (-50);
  Space.reset_peaks sp;
  let r = Space.read sp in
  Alcotest.(check int) "peak reset to current" 50 r.Space.mapped_peak

let cases =
  [
    case "superblock basics" superblock_basics;
    case "recycled superblocks reused without mmap, zeroed lazily"
      superblock_recycled_lazily_zeroed;
    case "large blocks" large_blocks;
    case "bounds are memory-safe" bounds_are_safe;
    case "sim mode asserts on non-racy OOB" sim_bounds_assert;
    case "init_free_list links" init_free_list;
    case "hyperblock batching" hyperblocks_batch;
    case "space peaks" space_peaks;
    case "live region count" live_regions_count;
    case "concurrent region alloc (sim x5 seeds)" concurrent_region_alloc;
    case "argument validation" validation;
    case "payload round writes (real)" payload_round_real;
    case "space concurrent peaks" space_concurrent_peaks;
    case "space reset peaks" space_reset_peaks;
  ]
