(* Model-based testing: random operation sequences against a reference
   model. The model tracks live blocks as address intervals; the
   allocator must hand out non-overlapping intervals, remember payloads,
   and satisfy its own structural invariants at every quiescent point. *)

open Mm_runtime
module I = Mm_mem.Alloc_intf
module Ops = Mm_mem.Alloc_ops
open Util

type op = Malloc of int | Free of int | Realloc of int * int

let op_gen =
  QCheck2.Gen.(
    oneof
      [
        map (fun n -> Malloc n) (int_range 0 3_000);
        map (fun i -> Free i) (int_range 0 1_000);
        map2 (fun i n -> Realloc (i, n)) (int_range 0 1_000) (int_range 0 3_000);
      ])

(* Live blocks: (payload addr, usable, stamp). *)
let overlaps (a1, u1) (a2, u2) = a1 < a2 + u2 && a2 < a1 + u1

let run_ops name ops =
  let inst = instance name Rt.real in
  let live = ref [] in
  let stamp = ref 0 in
  let add addr =
    let u = I.instance_usable inst addr in
    (* Non-overlap with every live block. *)
    List.iter
      (fun (a, u', _) ->
        if overlaps (addr, u) (a, u') then
          Alcotest.failf "%s: block %#x+%d overlaps %#x+%d" name addr u a u')
      !live;
    incr stamp;
    I.instance_write_word inst addr !stamp;
    live := (addr, u, !stamp) :: !live
  in
  List.iter
    (fun op ->
      match op with
      | Malloc n -> add (I.instance_malloc inst n)
      | Free i -> (
          match !live with
          | [] -> ()
          | l ->
              let k = i mod List.length l in
              let a, _, st = List.nth l k in
              Alcotest.(check int) "stamp intact before free" st
                (I.instance_read_word inst a);
              live := List.filteri (fun j _ -> j <> k) l;
              I.instance_free inst a)
      | Realloc (i, n) -> (
          match !live with
          | [] -> ()
          | l ->
              let k = i mod List.length l in
              let a, _, st = List.nth l k in
              live := List.filteri (fun j _ -> j <> k) l;
              let a' = Ops.realloc inst a n in
              let u' = I.instance_usable inst a' in
              Alcotest.(check bool) "realloc grew enough" true (u' >= n);
              Alcotest.(check int) "stamp survives realloc" st
                (I.instance_read_word inst a');
              List.iter
                (fun (b, ub, _) ->
                  if overlaps (a', u') (b, ub) then
                    Alcotest.fail "realloc result overlaps live block")
                !live;
              live := (a', u', st) :: !live))
    ops;
  (* Final stamps all intact, then drain and check invariants. *)
  List.iter
    (fun (a, _, st) ->
      Alcotest.(check int) "final stamp" st (I.instance_read_word inst a);
      I.instance_free inst a)
    !live;
  I.instance_check inst

let model_case name =
  qcheck ~count:25 ("model sequence vs " ^ name)
    QCheck2.Gen.(list_size (int_range 30 120) op_gen)
    (fun ops ->
      run_ops name ops;
      true)

let cases = List.map model_case all_allocators
