(* The block-cache frontend (DESIGN.md §13): per-thread LIFO caches in
   front of the paper's allocator, refilled by batched credit
   reservation and drained by batched flushes.

   What is verified here:
   - batch accounting: hits/misses/refills/flushes relate to the
     operation stream exactly as the design says;
   - the disabled frontend is a bit-identical passthrough — same seeded
     simulation, same address trace as the bare allocator;
   - remote frees never enter a local cache; they are buffered and
     pushed back in batches of [cache_batch];
   - the explorer's address-exclusivity oracle holds with the cache on;
   - killing a thread inside any batched bc.* CAS window leaks its
     blocks but never lets them be allocated twice. *)

open Mm_runtime
module A = Mm_core.Lf_alloc.Make (Sim_rt)
module Bc = Mm_core.Block_cache.Make (Sim_rt)
module L = Mm_core.Labels
module Cfg = Mm_mem.Alloc_config
module O = Mm_check.Oracle
module E = Mm_check.Explore
module T = Mm_check.Target
open Util

let cached_cfg =
  Cfg.make ~nheaps:1 ~sbsize:4096 ~maxcredits:8 ~desc_scan_threshold:1
    ~cache:true ~cache_blocks:4 ~cache_batch:2 ()

(* Single-thread accounting: every stats field is determined by the
   operation stream and the cache geometry, independent of scheduling. *)
let batch_accounting () =
  let s = sim ~cpus:1 () in
  let rt = s in
  let t = Bc.create rt cached_cfg in
  let body _ =
    let n = 6 in
    let addrs = Array.init n (fun _ -> Bc.malloc t 8) in
    let distinct = Hashtbl.create n in
    Array.iter
      (fun a ->
        if Hashtbl.mem distinct a then
          Alcotest.failf "address %d handed out twice" a;
        Hashtbl.add distinct a ())
      addrs;
    let s1 = Bc.stats t in
    Alcotest.(check int) "hits+misses = mallocs" n
      (s1.Bc.hits + s1.Bc.misses);
    Alcotest.(check bool) "at least one batched refill" true
      (s1.Bc.refills >= 1);
    (* Every refill hands one block to the caller and caches the rest;
       cached leftovers are whatever hits have not yet consumed. *)
    Alcotest.(check int) "refilled = refills + hits + still cached"
      s1.Bc.refilled_blocks
      (s1.Bc.refills + s1.Bc.hits + Bc.cached_blocks t);
    Alcotest.(check int) "no flush before any free" 0 s1.Bc.flushes;
    Array.iter (Bc.free t) addrs;
    let s2 = Bc.stats t in
    (* Before flush_current every flush is an overflow or remote-batch
       flush, both exactly cache_batch blocks. *)
    Alcotest.(check int) "flushes are batch-sized"
      (s2.Bc.flushes * cached_cfg.Cfg.cache_batch)
      s2.Bc.flushed_blocks;
    Alcotest.(check bool) "overflow flush fired" true (s2.Bc.flushes >= 1);
    Alcotest.(check bool) "cache bounded" true
      (Bc.cached_blocks t
      <= Sim_rt.max_threads * cached_cfg.Cfg.cache_blocks);
    Bc.flush_current t;
    Alcotest.(check int) "flush_current drains the cache" 0
      (Bc.cached_blocks t);
    let m, f = Bc.op_counts t in
    Alcotest.(check int) "frontend conservation" m f;
    Bc.check_invariants t
  in
  ignore (Sim.run s [| body |])

(* The same seeded simulation through the bare allocator and through a
   cache-disabled frontend must produce the same address trace: the
   default configuration is the verbatim paper allocator. *)
let trace_workload mk =
  let s = sim ~cpus:4 ~seed:7 () in
  let rt = s in
  let malloc, free = mk rt in
  let logs = Array.init 4 (fun _ -> ref []) in
  let body tid =
    let rng = Prng.create (tid + 5) in
    let live = Queue.create () in
    for _ = 1 to 60 do
      if Queue.length live > 0 && Prng.int rng 3 = 0 then
        free (Queue.pop live)
      else begin
        let a = malloc (Prng.int_in rng 1 200) in
        logs.(tid) := a :: !(logs.(tid));
        Queue.push a live
      end
    done;
    Queue.iter free live
  in
  ignore (Sim.run s (Array.init 4 (fun i _ -> body i)));
  Array.to_list (Array.map (fun r -> List.rev !r) logs)

let disabled_is_passthrough () =
  let cfg = Cfg.make ~nheaps:2 () in
  let bare =
    trace_workload (fun rt ->
        let t = A.create rt cfg in
        (A.malloc t, A.free t))
  in
  let fronted =
    trace_workload (fun rt ->
        let t = Bc.create rt cfg in
        (Bc.malloc t, Bc.free t))
  in
  Alcotest.(check (list (list int)))
    "cache:false trace is bit-identical to the bare allocator" bare fronted

(* Remote frees: with two processor heaps, thread 1 freeing thread 0's
   blocks must route them through the remote buffer (never its local
   cache) and push them back in exact batches. *)
let remote_free_batching () =
  let cfg =
    Cfg.make ~nheaps:2 ~sbsize:4096 ~maxcredits:8 ~desc_scan_threshold:1
      ~cache:true ~cache_blocks:4 ~cache_batch:2 ()
  in
  let s = sim ~cpus:2 () in
  let rt = s in
  let t = Bc.create rt cfg in
  let blocks = Array.make 4 0 in
  let ready = ref false in
  let producer _ =
    for i = 0 to 3 do
      blocks.(i) <- Bc.malloc t 8
    done;
    ready := true
  in
  let consumer _ =
    while not !ready do
      Sim_rt.yield rt
    done;
    Array.iter (Bc.free t) blocks
  in
  ignore (Sim.run s [| (fun _ -> producer 0); (fun _ -> consumer 1) |]);
  let st = Bc.stats t in
  Alcotest.(check int) "all four frees were remote" 4 st.Bc.remote_frees;
  Alcotest.(check int) "two batch flushes of two" 2 st.Bc.flushes;
  Alcotest.(check int) "flushed in exact batches" 4 st.Bc.flushed_blocks;
  Bc.check_invariants t

(* Schedule exploration with the oracle from lib/check: bounded
   exhaustive over the cached target (the quick gate runs a bigger
   budget; this is the in-tree regression). *)
let explorer_exclusivity () =
  let target = T.lf_alloc_cached in
  let r = E.exhaustive target ~threads:2 ~bound:2 ~budget:5_000 in
  match r.E.finding with
  | None -> ()
  | Some f -> Alcotest.failf "cached allocator violation: %s" f.E.error

(* Kill a thread inside each batched CAS window. Its reserved or cached
   blocks leak, but the exclusivity oracle proves no survivor — nor a
   fresh wave afterwards — is ever handed one of them. *)
let kill_in_window label () =
  let killed = ref (-1) in
  let on_label ~tid l =
    if l = label && !killed = -1 then begin
      killed := tid;
      Sim.Kill
    end
    else Sim.Continue
  in
  let s = sim ~cpus:4 ~max_cycles:50_000_000_000 ~on_label () in
  let rt = s in
  let t = Bc.create rt cached_cfg in
  let orc = O.create_alloc () in
  let m () =
    let a = Bc.malloc t 8 in
    O.malloc_returned orc a;
    a
  in
  let f a =
    let p = O.free_invoked orc a in
    Bc.free t a;
    O.free_returned orc p
  in
  let body _tid =
    for _ = 1 to 2 do
      let addrs = Array.init 30 (fun _ -> m ()) in
      Array.iter f addrs
    done
  in
  (try ignore (Sim.run s (Array.init 4 (fun _ -> body)))
   with O.Violation msg -> Alcotest.failf "exclusivity violated: %s" msg);
  Alcotest.(check bool) ("kill fired: " ^ label) true (!killed >= 0);
  (* Fresh wave on the same heap: the killed thread's blocks must stay
     leaked — the oracle still holds them and would reject a re-issue. *)
  try
    ignore
      (Sim.run s
         [|
           (fun _ ->
             let addrs = Array.init 100 (fun _ -> m ()) in
             Array.iter f addrs);
         |])
  with O.Violation msg ->
    Alcotest.failf "leaked block re-allocated after kill: %s" msg

let bc_labels = [ L.bc_reserve_cas; L.bc_pop_cas; L.bc_flush_cas ]

let cases =
  [
    case "batched refill/flush accounting" batch_accounting;
    case "cache:false is a bit-identical passthrough" disabled_is_passthrough;
    case "remote frees flushed in exact batches" remote_free_batching;
    case "explorer: exclusivity with cache enabled" explorer_exclusivity;
  ]
  @ List.map
      (fun l -> case ("kill inside " ^ l ^ " never double-allocates")
          (kill_in_window l))
      bc_labels
