(* Derived operations (calloc / realloc / aligned_alloc / usable_size)
   across all four allocators. *)

open Mm_runtime
module I = Mm_mem.Alloc_intf
module Ops = Mm_mem.Alloc_ops
open Util

let with_inst name f = f (instance name Rt.real)

let usable_at_least name () =
  with_inst name (fun inst ->
      List.iter
        (fun n ->
          let a = I.instance_malloc inst n in
          let u = I.instance_usable inst a in
          Alcotest.(check bool)
            (Printf.sprintf "usable %d >= %d" u n)
            true (u >= n);
          (* The whole usable range is writable and readable. *)
          I.instance_write_word inst (a + ((u / 8 * 8) - 8)) 7;
          I.instance_free inst a)
        [ 0; 1; 8; 100; 2040; 2041; 100_000 ])

let calloc_zeroes name () =
  with_inst name (fun inst ->
      (* Dirty a block, free it, calloc the same class: must be zero. *)
      let d = I.instance_malloc inst 64 in
      for w = 0 to 7 do
        I.instance_write_word inst (d + (8 * w)) max_int
      done;
      I.instance_free inst d;
      let a = Ops.calloc inst ~count:8 ~size:8 in
      for w = 0 to 7 do
        Alcotest.(check int) "zeroed" 0
          (I.instance_read_word inst (a + (8 * w)))
      done;
      I.instance_free inst a)

let realloc_semantics name () =
  with_inst name (fun inst ->
      (* null -> malloc *)
      let a = Ops.realloc inst 0 16 in
      Alcotest.(check bool) "realloc null allocates" true (a <> 0);
      I.instance_write_word inst a 11;
      I.instance_write_word inst (a + 8) 22;
      (* shrink: same block *)
      let b = Ops.realloc inst a 8 in
      Alcotest.(check int) "shrink in place" a b;
      (* grow into a different class preserving contents *)
      let c = Ops.realloc inst b 5_000 in
      Alcotest.(check bool) "grow reallocates" true (c <> b);
      Alcotest.(check int) "word 0 preserved" 11 (I.instance_read_word inst c);
      Alcotest.(check int) "word 1 preserved" 22
        (I.instance_read_word inst (c + 8));
      Alcotest.(check bool) "grown usable" true
        (I.instance_usable inst c >= 5_000);
      (* grow a large block further *)
      let d = Ops.realloc inst c 50_000 in
      Alcotest.(check int) "contents survive large growth" 11
        (I.instance_read_word inst d);
      I.instance_free inst d;
      I.instance_check inst)

let aligned_alloc_works name () =
  with_inst name (fun inst ->
      List.iter
        (fun align ->
          let addrs =
            List.init 20 (fun i ->
                let a = Ops.aligned_alloc inst ~align (16 + (8 * i)) in
                Alcotest.(check int)
                  (Printf.sprintf "aligned to %d" align)
                  0 (a mod align);
                Alcotest.(check bool) "usable covers request" true
                  (I.instance_usable inst a >= 16 + (8 * i));
                I.instance_write_word inst a a;
                a)
          in
          List.iter
            (fun a ->
              Alcotest.(check int) "payload intact" a (I.instance_read_word inst a);
              I.instance_free inst a)
            addrs)
        [ 16; 64; 256; 4096 ];
      I.instance_check inst)

let aligned_alloc_validation () =
  with_inst "new" (fun inst ->
      Alcotest.(check bool) "non-power-of-two rejected" true
        (match Ops.aligned_alloc inst ~align:24 8 with
        | _ -> false
        | exception Invalid_argument _ -> true))

let realloc_concurrent () =
  (* realloc churn from several simulated threads. *)
  let s = sim ~cpus:4 () in
  let inst = instance "new" (Rt.simulated s) in
  let body tid =
    let rng = Prng.create (tid + 5) in
    let a = ref (I.instance_malloc inst 8) in
    for _ = 1 to 200 do
      a := Ops.realloc inst !a (Prng.int_in rng 1 600)
    done;
    I.instance_free inst !a
  in
  ignore (Sim.run s (Array.init 4 (fun i _ -> body i)));
  I.instance_check inst

let cases =
  List.concat_map
    (fun name ->
      [
        case (name ^ "/usable_size") (usable_at_least name);
        case (name ^ "/calloc zeroes") (calloc_zeroes name);
        case (name ^ "/realloc") (realloc_semantics name);
        case (name ^ "/aligned_alloc") (aligned_alloc_works name);
      ])
    all_allocators
  @ [
      case "aligned_alloc validation" aligned_alloc_validation;
      case "realloc concurrent" realloc_concurrent;
    ]
