(* The lock-freedom evidence (paper §1, §3): at EVERY labelled step of
   malloc/free a thread may be delayed indefinitely or killed outright,
   and all other threads must still complete their operations.

   Three families:
   - coverage: the probe workload actually reaches every label;
   - pause: a thread blocks at the label until everyone else is done —
     if that thread's progress were required (as with a held lock), the
     run would deadlock;
   - kill: the thread dies at the label; survivors complete and the
     allocator remains usable afterwards.

   The probe runs five phases per thread: the bare allocator (reaching
   every backend label), the block-cache frontend (reaching the batched
   bc.* refill/flush labels, DESIGN.md §13), the warm-superblock cache
   (sbc.* labels, DESIGN.md §14), a reuse-in-place descriptor pool
   driven directly with batch_size 1 so the spill/steal hand-off labels
   fire (desc.spill / desc.steal, DESIGN.md §17), and a SHARED
   owner-biased allocator whose threads hand blocks to their neighbour
   so remote frees push public lists (pub.push) and handoffs, rescues
   and owner refills claim them (pub.claim, DESIGN.md §19).

   Plus schedule fuzzing: many seeds of a mixed workload with full
   invariant checks. *)

open Mm_runtime
module A = Mm_core.Lf_alloc.Make (Sim_rt)
module Ar = Mm_core.Lf_alloc.Make (Real_rt)
module Bc = Mm_core.Block_cache.Make (Sim_rt)
module D = Mm_core.Descriptor.Make (Sim_rt)
module L = Mm_core.Labels
module Cfg = Mm_mem.Alloc_config
open Util

(* A configuration and workload designed to reach every label:
   maxcredits=1 exercises UpdateActive on nearly every malloc; one heap
   maximizes interference; tiny superblocks make FULL / EMPTY cycles
   frequent; scan threshold 1 makes every descriptor retirement run the
   hazard-pointer scan, so descriptor reuse ([desc.push]) fires within
   the probe run (retirement lists are per-thread and each thread only
   retires a few descriptors). *)
let probe_cfg =
  Cfg.make ~nheaps:1 ~sbsize:4096 ~maxcredits:1 ~desc_scan_threshold:1 ()

(* The cached phase needs maxcredits > 1, or every batched refill
   degenerates to a single-block reservation and the bc.pop walk never
   covers more than one link; a small cache with batch 2 makes overflow
   flushes (bc.flush_cas) fire within one drain. *)
let cached_cfg =
  Cfg.make ~nheaps:1 ~sbsize:4096 ~maxcredits:8 ~desc_scan_threshold:1
    ~cache:true ~cache_blocks:4 ~cache_batch:2 ()

(* The warm-superblock phase needs a shallow cache so both parks
   (sbc.park) and watermark overflows fire, and the burst/drain cycle
   adopts parked superblocks back (sbc.adopt) on the next burst. *)
let sbc_cfg =
  Cfg.make ~nheaps:1 ~sbsize:4096 ~maxcredits:1 ~desc_scan_threshold:1
    ~sb_cache_depth:2 ()

let probe_body ~malloc ~free n tid =
  let rng = Prng.create (tid + 31) in
  let burst = Array.make 300 0 in
  for _ = 1 to n do
    (* Burst fill: drives superblocks FULL, spills to new superblocks. *)
    for i = 0 to Array.length burst - 1 do
      burst.(i) <- malloc 8
    done;
    (* Random-order drain: drives PARTIAL and EMPTY transitions. *)
    Prng.shuffle rng burst;
    Array.iter free burst
  done

(* The owner-biased phase shares ONE allocator between all threads:
   one heap, tiny superblocks, so a 300-block burst outgrows a
   superblock and forces an owner handoff (pub.claim), and the blocks
   each thread mails to its neighbour come back as remote frees
   (pub.push) that trigger rescues and owner refills (pub.claim). *)
let ob_cfg =
  Cfg.make ~nheaps:1 ~sbsize:4096 ~maxcredits:1 ~desc_scan_threshold:1
    ~free_lists:`Owner_biased ()

let threads = 4

(* Mailbox ring: cell [i] is written only by thread [i-1] and drained
   only by thread [i]. Plain list operations run without a simulation
   point in between, so producer cons and consumer take are each
   atomic under the simulated scheduler; draining never waits, so a
   paused or killed neighbour just leaves its slice unconsumed
   (leaked, not corrupted). *)
let probe_ob t mailbox n tid =
  let next = (tid + 1) mod threads in
  let burst = Array.make 300 0 in
  for _ = 1 to n do
    for i = 0 to Array.length burst - 1 do
      burst.(i) <- A.malloc t 8
    done;
    (* Mail the head of the burst to the neighbour, free the rest
       locally (private-LIFO pushes, or pub.push + rescue for blocks
       of an already handed-off superblock). *)
    for i = 0 to 49 do
      mailbox.(next) <- burst.(i) :: mailbox.(next)
    done;
    for i = 50 to Array.length burst - 1 do
      A.free t burst.(i)
    done;
    (* Non-blocking drain: every one of these is a remote free. *)
    let mine = mailbox.(tid) in
    mailbox.(tid) <- [];
    List.iter (A.free t) mine
  done

(* The reuse-pool phase drives a Reuse descriptor pool directly with
   batch_size 1: the private LIFO holds one descriptor, so every
   second retire spills to the shared stack (desc.spill) and a drained
   LIFO steals a spilled descriptor back (desc.steal). *)
module P = Mm_core.Desc_pool.Make (Sim_rt)

let probe_reuse pool n =
  for _ = 1 to n do
    let a = P.alloc pool in
    let b = P.alloc pool in
    P.retire pool a;
    P.retire pool b;
    (* a comes back off the private LIFO; the next alloc must steal *)
    let c = P.alloc pool in
    let d = P.alloc pool in
    P.retire pool c;
    P.retire pool d
  done

(* Four allocators and a reuse pool on one runtime, and a body running
   the plain phase, the cached phase, the warm-superblock phase, the
   reuse-pool phase, then the shared owner-biased phase — together
   they reach every label in L.all. *)
let probe_pair rt =
  let t = A.create rt probe_cfg in
  let tc = Bc.create rt cached_cfg in
  let ts = A.create rt sbc_cfg in
  let tob = A.create rt ob_cfg in
  let mailbox = Array.make threads [] in
  let table = D.create_table rt ~capacity:256 in
  let pool = P.create rt table ~kind:Cfg.Reuse ~batch_size:1 () in
  let body n tid =
    probe_body ~malloc:(A.malloc t) ~free:(A.free t) n tid;
    probe_body ~malloc:(Bc.malloc tc) ~free:(Bc.free tc) n tid;
    probe_body ~malloc:(A.malloc ts) ~free:(A.free ts) n tid;
    probe_reuse pool n;
    probe_ob tob mailbox n tid
  in
  (t, tc, ts, tob, pool, body)

let coverage () =
  let hits = Hashtbl.create 32 in
  let on_label ~tid:_ l =
    Hashtbl.replace hits l ();
    Sim.Continue
  in
  let s = sim ~cpus:threads ~max_cycles:50_000_000_000 ~on_label () in
  let t, tc, ts, tob, _pool, body = probe_pair s in
  ignore (Sim.run s (Array.init threads (fun _ -> body 4)));
  List.iter
    (fun l ->
      if not (Hashtbl.mem hits l) then
        Alcotest.failf "probe workload never reaches label %s" l)
    L.all;
  A.check_invariants t;
  Bc.check_invariants tc;
  A.check_invariants ts;
  A.check_invariants tob

let pause_at label () =
  (* The first thread to reach [label] parks there until every other
     thread has finished its whole workload. *)
  let victim = ref (-1) in
  let finished = Array.make threads false in
  let others_done () =
    let ok = ref true in
    Array.iteri
      (fun i f -> if i <> !victim && not f then ok := false)
      finished;
    !ok
  in
  let on_label ~tid l =
    if l = label && !victim = -1 then begin
      victim := tid;
      Sim.Block_until others_done
    end
    else Sim.Continue
  in
  let s = sim ~cpus:threads ~max_cycles:50_000_000_000 ~on_label () in
  let t, tc, ts, tob, _pool, pbody = probe_pair s in
  let body tid =
    pbody 3 tid;
    finished.(tid) <- true
  in
  ignore (Sim.run s (Array.init threads (fun i _ -> body i)));
  Alcotest.(check bool) ("label reached: " ^ label) true (!victim >= 0);
  Array.iteri
    (fun i f ->
      if not f then Alcotest.failf "thread %d did not finish" i)
    finished;
  (* The victim resumed and completed too, so the heap is quiescent and
     fully consistent (cached blocks remain allocated by design). *)
  A.check_invariants t;
  Bc.check_invariants tc;
  A.check_invariants ts;
  A.check_invariants tob

let kill_at label () =
  let killed = ref (-1) in
  let on_label ~tid l =
    if l = label && !killed = -1 then begin
      killed := tid;
      Sim.Kill
    end
    else Sim.Continue
  in
  let s = sim ~cpus:threads ~max_cycles:50_000_000_000 ~on_label () in
  let t, tc, ts, tob, pool, pbody = probe_pair s in
  let completed = Array.make threads false in
  let body tid =
    pbody 3 tid;
    completed.(tid) <- true
  in
  let r = Sim.run s (Array.init threads (fun i _ -> body i)) in
  Alcotest.(check bool) ("kill fired: " ^ label) true (!killed >= 0);
  Alcotest.(check int) "one thread killed" 1 r.Sim.counters.Sim.killed;
  Array.iteri
    (fun i f ->
      if i <> !killed && not f then
        Alcotest.failf "survivor %d did not finish" i)
    completed;
  (* Both allocators remain functional after the kill: run a fresh wave
     (the killed thread's reservations and cached blocks are leaked,
     not corrupted — exclusivity holds, conservation does not). *)
  let s2_ok = ref false in
  (* Reuse the same sim instance for a follow-up run. *)
  let r2 =
    Sim.run s
      [|
        (fun _ ->
          let addrs = Array.init 200 (fun _ -> A.malloc t 8) in
          Array.iter (A.free t) addrs;
          let addrs = Array.init 200 (fun _ -> Bc.malloc tc 8) in
          Array.iter (Bc.free tc) addrs;
          let addrs = Array.init 200 (fun _ -> A.malloc ts 8) in
          Array.iter (A.free ts) addrs;
          let addrs = Array.init 200 (fun _ -> A.malloc tob 8) in
          Array.iter (A.free tob) addrs;
          probe_reuse pool 2;
          s2_ok := true);
      |]
  in
  ignore r2;
  Alcotest.(check bool) "allocator usable after kill" true !s2_ok

let fuzz_invariants () =
  for seed = 1 to 20 do
    let s = sim ~cpus:4 ~seed ~max_cycles:50_000_000_000 () in
    let t = A.create s probe_cfg in
    ignore
      (Sim.run s
         (Array.init 4 (fun _ ->
              probe_body ~malloc:(A.malloc t) ~free:(A.free t) 2)));
    (try A.check_invariants t
     with Failure msg -> Alcotest.failf "seed %d: %s" seed msg);
    let m, f = A.op_counts t in
    Alcotest.(check int) (Printf.sprintf "seed %d conservation" seed) m f
  done

let fuzz_ob_invariants () =
  (* The owner-biased mode under many schedules: the full checker
     (including the private/public list walks and owned-slot
     cross-references) plus conservation once the surviving mailbox
     slices are drained. *)
  for seed = 1 to 15 do
    let s = sim ~cpus:threads ~seed ~max_cycles:50_000_000_000 () in
    let t = A.create s ob_cfg in
    let mailbox = Array.make threads [] in
    ignore
      (Sim.run s (Array.init threads (fun i _ -> probe_ob t mailbox 2 i)));
    ignore
      (Sim.run s
         [|
           (fun _ ->
             Array.iteri
               (fun i mail ->
                 mailbox.(i) <- [];
                 List.iter (A.free t) mail)
               mailbox);
         |]);
    (try A.check_invariants t
     with Failure msg -> Alcotest.failf "seed %d: %s" seed msg);
    let m, f = A.op_counts t in
    Alcotest.(check int) (Printf.sprintf "seed %d conservation" seed) m f
  done

let fuzz_default_config () =
  (* Same fuzz with the paper-default configuration (many heaps, full
     credits, hazard pool) and mixed sizes. *)
  for seed = 1 to 10 do
    let s = sim ~cpus:8 ~seed ~max_cycles:50_000_000_000 () in
    let t = A.create s (Cfg.make ()) in
    let body tid =
      let rng = Prng.create (seed + (tid * 17)) in
      let slots = Array.make 48 0 in
      for _ = 1 to 500 do
        let i = Prng.int rng 48 in
        if slots.(i) <> 0 then begin
          A.free t slots.(i);
          slots.(i) <- 0
        end
        else slots.(i) <- A.malloc t (Prng.int_in rng 1 2_500)
      done;
      Array.iter (fun a -> if a <> 0 then A.free t a) slots
    in
    ignore (Sim.run s (Array.init 8 (fun i _ -> body i)));
    try A.check_invariants t
    with Failure msg -> Alcotest.failf "seed %d: %s" seed msg
  done

let real_runtime_stress () =
  (* Domains on real hardware with the label hook injecting yields to
     widen race windows. *)
  Rt.real_label_hook := (fun _ -> if Random.int 50 = 0 then Domain.cpu_relax ());
  Fun.protect
    ~finally:(fun () -> Rt.real_label_hook := (fun _ -> ()))
    (fun () ->
      let t = Ar.create () probe_cfg in
      let body tid = probe_body ~malloc:(Ar.malloc t) ~free:(Ar.free t) 3 tid in
      ignore (Rt.parallel_run Rt.real (Array.init 4 (fun i _ -> body i)));
      Ar.check_invariants t;
      let m, f = Ar.op_counts t in
      Alcotest.(check int) "conservation" m f)

let cases =
  [ case "label coverage of probe workload" coverage ]
  @ List.map (fun l -> case ("pause at " ^ l) (pause_at l)) L.all
  @ List.map (fun l -> case ("kill at " ^ l) (kill_at l)) L.all
  @ [
      case "schedule fuzz, probe config (x20 seeds)" fuzz_invariants;
      case "schedule fuzz, owner-biased config (x15 seeds)" fuzz_ob_invariants;
      case "schedule fuzz, default config (x10 seeds)" fuzz_default_config;
      case "real-runtime stress with label noise" real_runtime_stress;
    ]
