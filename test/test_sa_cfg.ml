(* CFG construction and alias tracking, exercised on snippets
   re-typechecked in-process against the compiled interfaces — the same
   machinery the label-deletion walk uses, so these tests also pin that
   path down. Structural assertions look straight at the event nodes
   and edges; behavioural ones run the full analysis stack on the
   snippet. *)

module Cfg = Mm_sa.Cfg
module D = Mm_sa.Driver
module F = Mm_report.Finding
open Util

let tc ?(path = "lib/core/sa_cfg_snippet.ml") src =
  match Mm_sa.Tast.typecheck ~root:(Test_sa.repo_root ()) ~path src with
  | Ok u -> u
  | Error e -> Alcotest.failf "snippet does not typecheck: %s" e

let analyze u =
  let r = D.analyze_units [ u ] in
  Alcotest.(check (list (pair string string))) "no errors" [] r.D.errors;
  r.D.findings

let count rule fs =
  List.length (List.filter (fun (f : F.t) -> f.F.rule = rule) fs)

let the_function u =
  match Cfg.functions_of_unit u with
  | [ fn ] -> fn
  | l -> Alcotest.failf "expected 1 function, got %d" (List.length l)

let cas_nodes (fn : Cfg.fn) =
  Array.to_list fn.Cfg.cfg.Cfg.nodes
  |> List.filter_map (fun (n : Cfg.node) ->
         match n.Cfg.n_ev with
         | Cfg.Ecas { cell; used; _ } -> Some (cell, used)
         | _ -> None)

let read_cells (fn : Cfg.fn) =
  Array.to_list fn.Cfg.cfg.Cfg.nodes
  |> List.filter_map (fun (n : Cfg.node) ->
         match n.Cfg.n_ev with Cfg.Eread { cell } -> Some cell | _ -> None)

let has_edge kind (fn : Cfg.fn) =
  Array.exists
    (fun (n : Cfg.node) -> List.exists (fun (k, _) -> k = kind) n.Cfg.n_succ)
    fn.Cfg.cfg.Cfg.nodes

(* An or-pattern binds the payload of the scrutinee read on both
   branches; the deref in the nested match is then recognized as
   touching a read-derived descriptor and flagged. *)
let nested_match_or_pattern () =
  let fs =
    analyze
      (tc
         "open Mm_runtime\n\
          type nd = { mutable next_d : nd option; tag : int }\n\
          let peek (t : nd option Rt.atomic) =\n\
         \  match Rt.Atomic.get t with\n\
         \  | Some ({ tag = 0; _ } as d) | Some d ->\n\
         \      (match d.next_d with Some _ -> 1 | None -> 0)\n\
         \  | None -> 0\n")
  in
  Alcotest.(check int) "deref flagged through the or-pattern" 1
    (count "hp-protocol" fs);
  Alcotest.(check int) "nothing else" 1 (List.length fs)

(* A while-CAS loop is a strong (retry) backedge: no stale-expected
   complaint for a constant expected value, but the label obligation
   recurs every iteration. *)
let while_cas_loop () =
  let u =
    tc
      "open Mm_runtime\n\
       let lock (f : bool Rt.atomic) =\n\
      \  while not (Rt.Atomic.compare_and_set f false true) do () done\n"
  in
  let fn = the_function u in
  (match cas_nodes fn with
  | [ (_, used) ] -> Alcotest.(check bool) "result-bearing" true used
  | l -> Alcotest.failf "expected 1 CAS node, got %d" (List.length l));
  Alcotest.(check bool) "strong backedge" true (has_edge Cfg.Back_strong fn);
  Alcotest.(check bool) "no weak backedge" false (has_edge Cfg.Back_weak fn);
  let fs = analyze u in
  Alcotest.(check int) "constant expected is not stale" 0
    (count "cas-loop-progress" fs);
  Alcotest.(check int) "unlabelled retry CAS" 1 (count "label-dominance" fs)

(* Alias tracking: the atomic reached through a let-bound field alias
   resolves to the same cell at the read and at the CAS, so the
   stale-expected check sees through the alias. *)
let alias_tracking () =
  let u =
    tc
      "open Mm_runtime\n\
       type h = { mutable w : int Rt.atomic }\n\
       let stale (hh : h) =\n\
      \  let cell = hh.w in\n\
      \  let seen = Rt.Atomic.get cell in\n\
      \  let rec go () =\n\
      \    if Rt.Atomic.compare_and_set cell seen (seen + 1) then () else go \
       ()\n\
      \  in\n\
      \  go ()\n"
  in
  let fn = the_function u in
  (match (read_cells fn, cas_nodes fn) with
  | [ rc ], [ (cc, _) ] ->
      Alcotest.(check string) "read and CAS name one cell" rc cc
  | _ -> Alcotest.fail "expected exactly one read and one CAS");
  let fs = analyze u in
  Alcotest.(check int) "stale expected seen through the alias" 1
    (count "cas-loop-progress" fs)

(* Partial application walks as a plain call; an iterator lambda
   inlines as a weak loop, so the label armed before List.iter still
   dominates the helping CAS inside it. *)
let partial_application_weak_loop () =
  let u =
    tc
      "open Mm_runtime\n\
       open Mm_core\n\
       let push_all rt (c : int Rt.atomic) xs =\n\
      \  Rt.label rt Labels.desc_alloc;\n\
      \  let bump = ( + ) 1 in\n\
      \  List.iter\n\
      \    (fun x ->\n\
      \      let v = Rt.Atomic.get c in\n\
      \      ignore (Rt.Atomic.compare_and_set c v (bump v + x)))\n\
      \    xs\n"
  in
  let fn = the_function u in
  (match cas_nodes fn with
  | [ (_, used) ] ->
      Alcotest.(check bool) "ignore (CAS ...) is a helping CAS" false used
  | l -> Alcotest.failf "expected 1 CAS node, got %d" (List.length l));
  Alcotest.(check bool) "weak backedge" true (has_edge Cfg.Back_weak fn);
  Alcotest.(check bool) "no strong backedge" false
    (has_edge Cfg.Back_strong fn);
  Alcotest.(check (list (pair string string))) "clean" []
    (List.map
       (fun (f : F.t) -> (f.F.rule, f.F.message))
       (analyze u))

let cases =
  [
    case "or-patterns bind read payloads on every branch"
      nested_match_or_pattern;
    case "while-CAS loops are strong backedges" while_cas_loop;
    case "let-bound field aliases resolve to one cell" alias_tracking;
    case "partial application and weak iterator loops"
      partial_application_weak_loop;
  ]
