(* Descriptor table, descriptor pool (all three reclamation variants:
   hazard pointers, IBM tags, reuse-in-place) and size-class partial
   lists (both policies). *)

open Mm_runtime
module D = Mm_core.Descriptor.Make (Real_rt)
module Pool = Mm_core.Desc_pool.Make (Real_rt)
module Pl = Mm_core.Partial_list.Make (Real_rt)
module D_s = Mm_core.Descriptor.Make (Sim_rt)
module Pool_s = Mm_core.Desc_pool.Make (Sim_rt)
module Anchor = Mm_core.Anchor
module Cfg = Mm_mem.Alloc_config
open Util

(* ---------------- Descriptor table ---------------- *)

let table_basics () =
  let tbl = D.create_table () ~capacity:128 in
  let batch = D.alloc_batch tbl 10 in
  Alcotest.(check int) "batch size" 10 (List.length batch);
  let ids = List.map (fun d -> d.D.id) batch in
  Alcotest.(check int) "ids unique" 10 (List.length (List.sort_uniq compare ids));
  List.iter (fun d -> Alcotest.(check bool) "id >= 1" true (d.D.id >= 1)) batch;
  List.iter
    (fun d -> Alcotest.(check bool) "get roundtrip" true (D.get tbl d.D.id == d))
    batch;
  Alcotest.(check int) "live count" 10 (D.live_count tbl)

let table_discard_recycles () =
  let tbl = D.create_table () ~capacity:128 in
  let d = List.hd (D.alloc_batch tbl 1) in
  let id = d.D.id in
  D.discard tbl d;
  Alcotest.(check bool) "dead id raises" true
    (match D.get tbl id with
    | _ -> false
    | exception Invalid_argument _ -> true);
  let d2 = List.hd (D.alloc_batch tbl 1) in
  Alcotest.(check int) "id recycled" id d2.D.id

let table_bounds () =
  let tbl = D.create_table () ~capacity:8 in
  Alcotest.(check bool) "id 0 is null" true
    (match D.get tbl 0 with
    | _ -> false
    | exception Invalid_argument _ -> true);
  Alcotest.(check bool) "exhaustion detected" true
    (match D.alloc_batch tbl 20 with
    | _ -> false
    | exception Failure _ -> true)

(* ---------------- Desc pool ---------------- *)

let pool_kinds =
  [ ("hazard", Cfg.Hazard); ("tagged", Cfg.Tagged); ("reuse", Cfg.Reuse) ]

let pool_alloc_retire kind () =
  let tbl = D.create_table () ~capacity:1024 in
  let pool = Pool.create () tbl ~kind ~batch_size:8 () in
  let d1 = Pool.alloc pool in
  let d2 = Pool.alloc pool in
  Alcotest.(check bool) "distinct descriptors" true (d1 != d2);
  Pool.retire pool d1;
  Pool.retire pool d2;
  Pool.flush pool;
  Alcotest.(check bool) "available after retire+flush" true
    (Pool.available pool >= 2)

let pool_exclusive kind () =
  (* Concurrent allocs never hand the same descriptor to two threads. *)
  for seed = 1 to 8 do
    let s = sim ~cpus:4 ~seed () in
    let tbl = D_s.create_table s ~capacity:4096 in
    let pool = Pool_s.create s tbl ~kind ~batch_size:4 () in
    let owned = Array.make 4 [] in
    let body tid =
      for _ = 1 to 50 do
        let d = Pool_s.alloc pool in
        owned.(tid) <- d :: owned.(tid);
        (* Return roughly half, keep the rest. *)
        if List.length owned.(tid) > 3 then begin
          match owned.(tid) with
          | d :: rest ->
              owned.(tid) <- rest;
              Pool_s.retire pool d
          | [] -> ()
        end
      done
    in
    ignore (Sim.run s (Array.init 4 (fun i _ -> body i)));
    (* No descriptor may be held by two threads at once. *)
    let all = List.concat (Array.to_list owned) in
    let ids = List.map (fun d -> d.D_s.id) all in
    Alcotest.(check int)
      (Printf.sprintf "seed %d: held descriptors unique" seed)
      (List.length ids)
      (List.length (List.sort_uniq compare ids))
  done

let pool_reuses kind () =
  let tbl = D.create_table () ~capacity:256 in
  let pool = Pool.create () tbl ~kind ~batch_size:4 () in
  let d = Pool.alloc pool in
  Pool.retire pool d;
  Pool.flush pool;
  (* Among the next few allocations the retired descriptor must
     reappear (the freelist is LIFO-ish, but batch refills may
     interleave). *)
  let seen = ref false in
  for _ = 1 to 8 do
    if Pool.alloc pool == d then seen := true
  done;
  Alcotest.(check bool) "retired descriptor reused" true !seen

(* ---------------- Reuse-in-place specifics (DESIGN.md §17) -------- *)

let reuse_slot_identity () =
  (* batch_size 1: the second retire spills, so the two reallocations
     exercise both return paths — private LIFO and shared-stack steal —
     and both must hand back the very same immortal slots. *)
  let tbl = D.create_table () ~capacity:256 in
  let pool = Pool.create () tbl ~kind:Cfg.Reuse ~batch_size:1 () in
  let a = Pool.alloc pool in
  let b = Pool.alloc pool in
  let live = D.live_count tbl in
  Pool.retire pool a;
  Pool.retire pool b;
  let a' = Pool.alloc pool in
  let b' = Pool.alloc pool in
  Alcotest.(check bool) "LIFO returns the same slot" true (a' == a);
  Alcotest.(check bool) "steal returns the same slot" true (b' == b);
  Alcotest.(check int) "no slot discarded, none created" live
    (D.live_count tbl);
  Alcotest.(check bool) "table binding stable" true (D.get tbl a.D.id == a)

let reuse_tag_monotonic () =
  (* Model reuse lives the way the allocator uses a descriptor: each
     life performs one tag-bumping anchor update. Reuse-in-place never
     resets the anchor, so the tag a slot comes back with is exactly the
     tag its last life left — the per-slot tag sequence is strictly
     increasing across lives, which is the whole ABA argument for
     skipping reclamation (DESIGN.md §17). *)
  let tbl = D.create_table () ~capacity:64 in
  let pool = Pool.create () tbl ~kind:Cfg.Reuse ~batch_size:1 () in
  let last = Hashtbl.create 8 in
  for _ = 1 to 16 do
    let a = Pool.alloc pool in
    let b = Pool.alloc pool in
    List.iter
      (fun (d : D.t) ->
        let w = Real_rt.Atomic.get d.D.anchor in
        let tag = Anchor.tag w in
        (match Hashtbl.find_opt last d.D.id with
        | Some prev ->
            Alcotest.(check int)
              (Printf.sprintf "slot %d tag preserved across reuse" d.D.id)
              prev tag
        | None -> ());
        let w' = Anchor.incr_tag w in
        Real_rt.Atomic.set d.D.anchor w';
        Hashtbl.replace last d.D.id (Anchor.tag w'))
      [ a; b ];
    Pool.retire pool a;
    Pool.retire pool b
  done

let reuse_kill_in_window label () =
  (* Kill the first thread to enter the new spill/steal CAS window: the
     survivors must finish their rounds and the pool must stay usable —
     the dead thread leaks at most its own private chain. *)
  let killed = ref (-1) in
  let on_label ~tid l =
    if l = label && !killed = -1 then begin
      killed := tid;
      Sim.Kill
    end
    else Sim.Continue
  in
  let s = sim ~cpus:4 ~on_label () in
  let tbl = D_s.create_table s ~capacity:4096 in
  let pool = Pool_s.create s tbl ~kind:Cfg.Reuse ~batch_size:1 () in
  let body _tid =
    for _ = 1 to 12 do
      let a = Pool_s.alloc pool in
      let b = Pool_s.alloc pool in
      Pool_s.retire pool a;
      Pool_s.retire pool b
    done
  in
  let r = Sim.run s (Array.init 4 (fun i _ -> body i)) in
  Alcotest.(check bool) ("kill fired: " ^ label) true (!killed >= 0);
  Alcotest.(check int) "one thread killed" 1 r.Sim.counters.Sim.killed;
  let ok = ref false in
  ignore
    (Sim.run s
       [|
         (fun _ ->
           let a = Pool_s.alloc pool in
           let b = Pool_s.alloc pool in
           Pool_s.retire pool a;
           Pool_s.retire pool b;
           ok := true);
       |]);
  Alcotest.(check bool) "pool usable after kill" true !ok

(* ---------------- Partial list ---------------- *)

let policies = [ ("fifo", Cfg.Fifo); ("lifo", Cfg.Lifo) ]

let mk_desc tbl state =
  let d = List.hd (D.alloc_batch tbl 1) in
  Real_rt.Atomic.set d.D.anchor (Anchor.make ~avail:0 ~count:1 ~state ~tag:0);
  d

let pl_put_get policy () =
  let tbl = D.create_table () ~capacity:128 in
  let l = Pl.create () policy in
  Alcotest.(check bool) "get empty" true (Pl.get l = None);
  let a = mk_desc tbl Anchor.Partial in
  let b = mk_desc tbl Anchor.Partial in
  Pl.put l a;
  Pl.put l b;
  Alcotest.(check int) "length" 2 (Pl.length l);
  let first = Option.get (Pl.get l) in
  (match policy with
  | Cfg.Fifo -> Alcotest.(check bool) "fifo order" true (first == a)
  | Cfg.Lifo -> Alcotest.(check bool) "lifo order" true (first == b));
  ignore (Pl.get l);
  Alcotest.(check bool) "drained" true (Pl.get l = None)

let pl_remove_empty policy () =
  let tbl = D.create_table () ~capacity:128 in
  let l = Pl.create () policy in
  let e1 = mk_desc tbl Anchor.Empty in
  let p1 = mk_desc tbl Anchor.Partial in
  let e2 = mk_desc tbl Anchor.Empty in
  Pl.put l e1;
  Pl.put l p1;
  Pl.put l e2;
  let retired = ref [] in
  Pl.remove_empty l ~retire:(fun d -> retired := d :: !retired);
  Alcotest.(check bool) "retired at least one empty" true
    (List.length !retired >= 1);
  List.iter
    (fun d ->
      Alcotest.(check bool) "only empties retired" true (d == e1 || d == e2))
    !retired;
  (* The partial descriptor must still be reachable. *)
  let rec contains () =
    match Pl.get l with
    | None -> false
    | Some d -> d == p1 || contains ()
  in
  Alcotest.(check bool) "partial survives" true (contains ())

let pl_remove_empty_buried_fifo () =
  (* Regression: the FIFO arm scans up to its bound (4) of non-empty
     descriptors, so one call reclaims an EMPTY descriptor buried behind
     three partials (the old bound of two moves left it stranded). *)
  let tbl = D.create_table () ~capacity:128 in
  let l = Pl.create () Cfg.Fifo in
  let ps = List.init 3 (fun _ -> mk_desc tbl Anchor.Partial) in
  let e = mk_desc tbl Anchor.Empty in
  List.iter (Pl.put l) ps;
  Pl.put l e;
  let retired = ref [] in
  Pl.remove_empty l ~retire:(fun d -> retired := d :: !retired);
  Alcotest.(check bool) "buried empty retired in one call" true
    (!retired = [ e ]);
  Alcotest.(check int) "partials all retained" 3 (Pl.length l)

let pl_remove_empty_on_empty_list policy () =
  let l = Pl.create () policy in
  Pl.remove_empty l ~retire:(fun _ -> Alcotest.fail "nothing to retire")

let pl_remove_empty_all_partial policy () =
  (* A list with only non-empty descriptors loses nothing and keeps all
     descriptors reachable. *)
  let tbl = D.create_table () ~capacity:128 in
  let l = Pl.create () policy in
  let ds = List.init 5 (fun _ -> mk_desc tbl Anchor.Partial) in
  List.iter (Pl.put l) ds;
  Pl.remove_empty l ~retire:(fun _ -> Alcotest.fail "retired a partial");
  Alcotest.(check int) "all retained" 5 (Pl.length l)

let cases =
  [
    case "table basics" table_basics;
    case "table discard recycles ids" table_discard_recycles;
    case "table bounds" table_bounds;
  ]
  @ List.concat_map
      (fun (name, kind) ->
        [
          case ("pool alloc/retire " ^ name) (pool_alloc_retire kind);
          case ("pool exclusivity (sim x8) " ^ name) (pool_exclusive kind);
          case ("pool reuse " ^ name) (pool_reuses kind);
        ])
      pool_kinds
  @ [
      case "reuse slot identity across free->alloc" reuse_slot_identity;
      case "reuse anchor tag monotone across lives" reuse_tag_monotonic;
      case "reuse kill in spill window"
        (reuse_kill_in_window Mm_core.Labels.desc_spill);
      case "reuse kill in steal window"
        (reuse_kill_in_window Mm_core.Labels.desc_steal);
    ]
  @ List.concat_map
      (fun (name, policy) ->
        [
          case ("partial list put/get " ^ name) (pl_put_get policy);
          case ("partial list remove_empty " ^ name) (pl_remove_empty policy);
          case
            ("partial list remove_empty on empty " ^ name)
            (pl_remove_empty_on_empty_list policy);
          case
            ("partial list keeps partials " ^ name)
            (pl_remove_empty_all_partial policy);
        ])
      policies
  @ [ case "partial list reclaims buried empty (fifo)" pl_remove_empty_buried_fifo ]
