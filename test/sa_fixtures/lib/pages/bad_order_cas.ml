(* Fixture: S4 label-dominance in the pages section — a buddy-style
   bitmap reservation retried with no label in the loop. *)

open Mm_runtime

let rec reserve rt (word : int Rt.atomic) bits =
  let cur = Rt.Atomic.get word in
  if cur land bits <> 0 then false
  else if Rt.Atomic.compare_and_set word cur (cur lor bits) then true
  else reserve rt word bits
