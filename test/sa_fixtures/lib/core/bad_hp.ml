(* Fixture: S1 hp-protocol. Three planted violations of the hazard
   protocol (protect -> re-validating read -> deref -> release on every
   path), one per failure shape — planted inside a [Make (Rt)] functor
   body, as the real tree is written (DESIGN.md §18), so this fixture
   also pins down that mm-sa descends into functor bodies. Compiled
   only so mm-sa can read its typed AST; nothing links against it. *)

module Make (Rt : Mm_runtime.Runtime_intf.S) = struct
  module Hp = Mm_lockfree.Hazard_pointers.Make (Rt)

  type nd = { mutable next_d : nd option; mutable seq : int }
  type t = { head : nd option Rt.atomic; hp : nd Hp.t }

  (* 1: dereference with no hazard protection at all *)
  let peek_raw t =
    match Rt.Atomic.get t.head with
    | None -> 0
    | Some d -> ( match d.next_d with Some _ -> 1 | None -> 0)

  (* 2: protected, but never re-validated by a fresh read of the source *)
  let peek_protected_stale t =
    match Rt.Atomic.get t.head with
    | None -> None
    | Some d ->
        Hp.protect t.hp ~slot:0 d;
        let n = d.next_d in
        Hp.clear t.hp ~slot:0;
        n

  (* 3: slot released on the validated path only — leaked when the
     re-validating read disagrees *)
  let pop_leaky t =
    match Rt.Atomic.get t.head with
    | None -> None
    | Some d ->
        Hp.protect t.hp ~slot:0 d;
        if Rt.Atomic.get t.head == Some d then begin
          let n = d.next_d in
          Hp.clear t.hp ~slot:0;
          n
        end
        else None
end
