(* Fixture: S2 cas-loop-progress. Both planted failure shapes: a retry
   loop whose expected value was read before the loop (can never
   succeed once the word moves), and two result-bearing CASes under one
   label (two linearization points with one name). *)

open Mm_runtime
open Mm_core

(* 1: stale expected — v is read once, outside the retry cycle *)
let bump_stale rt (c : int Rt.atomic) =
  let v = Rt.Atomic.get c in
  let rec go () =
    Rt.label rt Labels.desc_alloc;
    if Rt.Atomic.compare_and_set c v (v + 1) then () else go ()
  in
  go ()

(* 2: second result-bearing CAS in the same labelled window *)
let double_commit rt (c : int Rt.atomic) =
  Rt.label rt Labels.desc_alloc;
  let a = Rt.Atomic.get c in
  let _ = Rt.Atomic.compare_and_set c a 1 in
  let b = Rt.Atomic.get c in
  if Rt.Atomic.compare_and_set c b 2 then () else ()
