(* Fixture: S3 write-before-publish. The block fed to the publishing
   CAS is initialized by plain stores with no Rt.fence in between; the
   fenced twin below it must stay clean. *)

open Mm_runtime
open Mm_core

type blk = { mutable hdr : int; mutable body : int }

(* 1: unfenced initialization published by the CAS *)
let publish_unfenced rt (head : blk option Rt.atomic) (b : blk) =
  b.hdr <- 1;
  b.body <- 2;
  Rt.label rt Labels.desc_alloc;
  let cur = Rt.Atomic.get head in
  if Rt.Atomic.compare_and_set head cur (Some b) then () else ()

(* clean twin: the fence orders the stores before the publish *)
let publish_fenced rt (head : blk option Rt.atomic) (b : blk) =
  b.hdr <- 1;
  b.body <- 2;
  Rt.fence rt;
  Rt.label rt Labels.desc_alloc;
  let cur = Rt.Atomic.get head in
  if Rt.Atomic.compare_and_set head cur (Some b) then () else ()
