(* Fixture: S4 label-dominance. Three planted shapes: an unlabelled
   CAS retry loop; a call into a parameterized CAS window
   (Tagged_id_stack.pop) from a retry loop with no dominating label and
   no create-time override; and an unlabelled straight-line CAS whose
   obligation escapes to the exported entry point. All planted inside a
   [Make (Rt)] functor body like the real tree (DESIGN.md §18), so the
   parameterized-window demand also proves the interprocedural lookup
   resolves a [Tis = Tagged_id_stack.Make (Rt)] functor-application
   alias. *)

module Make (Rt : Mm_runtime.Runtime_intf.S) = struct
  module Tis = Mm_lockfree.Tagged_id_stack.Make (Rt)

  (* 1: CAS retried with no label re-established in the loop *)
  let rec spin (c : int Rt.atomic) =
    let v = Rt.Atomic.get c in
    if Rt.Atomic.compare_and_set c v (v + 1) then () else spin c

  (* 2: parameterized window called from an unlabelled retry loop *)
  let rec drain (s : Tis.t) =
    match Tis.pop s with Some _ -> drain s | None -> ()

  (* 3: no label anywhere; nothing analyzed calls [once], so the
     obligation reaches the public API *)
  let once rt (c : int Rt.atomic) =
    let v = Rt.Atomic.get c in
    if Rt.Atomic.compare_and_set c v 9 then Rt.yield rt
end
