(* Fixture: S4 label-dominance. Three planted shapes: an unlabelled
   CAS retry loop; a call into a parameterized CAS window
   (Tagged_id_stack.pop) from a retry loop with no dominating label and
   no create-time override; and an unlabelled straight-line CAS whose
   obligation escapes to the exported entry point. *)

open Mm_runtime
module Tis = Mm_lockfree.Tagged_id_stack

(* 1: CAS retried with no label re-established in the loop *)
let rec spin rt (c : int Rt.atomic) =
  let v = Rt.Atomic.get c in
  if Rt.Atomic.compare_and_set c v (v + 1) then () else spin rt c

(* 2: parameterized window called from an unlabelled retry loop *)
let rec drain (s : Tis.t) =
  match Tis.pop s with Some _ -> drain s | None -> ()

(* 3: no label anywhere; nothing analyzed calls [once], so the
   obligation reaches the public API *)
let once rt (c : int Rt.atomic) =
  let v = Rt.Atomic.get c in
  if Rt.Atomic.compare_and_set c v 9 then Rt.yield rt
