(* Fixture: the shared suppression machinery. The violation below is
   real (same shape as bad_publish) but carries an adjacent reasoned
   suppression, so it must land in the suppressed list, not the
   findings. *)

open Mm_runtime
open Mm_core

type blk = { mutable hdr : int }

(* mm-sa: allow write-before-publish: fixture — the suppression comment
   itself is what is under test here. *)
let publish_suppressed rt (head : blk option Rt.atomic) (b : blk) =
  b.hdr <- 1;
  Rt.label rt Labels.desc_alloc;
  let cur = Rt.Atomic.get head in
  if Rt.Atomic.compare_and_set head cur (Some b) then () else ()
