(* Fixture: a suppression naming no known analysis must surface as an
   error, never silently fail to suppress. *)

(* mm-sa: allow hp-protokol: typo *)
let x = 1
