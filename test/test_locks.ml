(* Lock substrate: mutual exclusion under adversarial schedules,
   try_acquire semantics, fairness, counters. *)

open Mm_runtime

module Locks = struct
  include Mm_baselines.Locks
  include Mm_baselines.Locks.Make (Real_rt)
end

module Locks_s = Mm_baselines.Locks.Make (Sim_rt)
module Cfg = Mm_mem.Alloc_config
open Util

let kinds =
  [
    ("tas", Cfg.Tas_backoff);
    ("ticket", Cfg.Ticket);
    ("mcs", Cfg.Mcs);
    ("pthread", Cfg.Pthread_like);
  ]

(* Mutual exclusion: concurrent unprotected increments of a plain cell
   would lose updates; under the lock the count is exact. *)
let mutual_exclusion kind () =
  for seed = 1 to 6 do
    let s = sim ~cpus:4 ~seed () in
    let lock = Locks_s.create s kind in
    let cell = ref 0 in
    let body _ =
      for _ = 1 to 200 do
        Locks_s.with_lock lock (fun () ->
            let v = !cell in
            (* A deliberate preemption window inside the critical
               section. *)
            Sim_rt.work s 5;
            cell := v + 1)
      done
    in
    ignore (Sim.run s (Array.make 4 body));
    Alcotest.(check int)
      (Printf.sprintf "seed %d exact count" seed)
      800 !cell
  done

let mutual_exclusion_real kind () =
  (* Modest iteration count: on a single-core host, queue-lock handoffs
     to descheduled threads cost scheduler quanta. *)
  let lock = Locks.create () kind in
  let cell = ref 0 in
  let body _ =
    for _ = 1 to 1_000 do
      Locks.with_lock lock (fun () -> incr cell)
    done
  in
  ignore (Rt.parallel_run Rt.real (Array.make 4 body));
  Alcotest.(check int) "exact count" 4_000 !cell

let try_acquire_semantics kind () =
  let lock = Locks.create () kind in
  Alcotest.(check bool) "free lock acquired" true (Locks.try_acquire lock);
  Alcotest.(check bool) "held lock refused" false (Locks.try_acquire lock);
  Locks.release lock;
  Alcotest.(check bool) "released lock acquired" true (Locks.try_acquire lock);
  Locks.release lock

let counters kind () =
  let lock = Locks.create () kind in
  for _ = 1 to 10 do
    Locks.acquire lock;
    Locks.release lock
  done;
  Alcotest.(check bool) "acquisitions counted" true
    (Locks.acquisitions lock >= 10);
  Alcotest.(check int) "uncontended so far" 0
    (Locks.contended_acquisitions lock)

let contention_counted () =
  let s = sim ~cpus:2 () in
  let lock = Locks_s.create s Cfg.Tas_backoff in
  let body _ =
    for _ = 1 to 100 do
      Locks_s.with_lock lock (fun () -> Sim_rt.work s 200)
    done
  in
  ignore (Sim.run s (Array.make 2 body));
  Alcotest.(check bool) "contention observed" true
    (Locks_s.contended_acquisitions lock > 0)

let mcs_fifo_fairness () =
  (* MCS grants in queue order too. *)
  let s = sim ~cpus:2 () in
  let lock = Locks_s.create s Cfg.Mcs in
  let seq = ref [] in
  let body tid =
    for _ = 1 to 50 do
      Locks_s.acquire lock;
      seq := tid :: !seq;
      Sim_rt.work s 100;
      Locks_s.release lock
    done
  in
  ignore (Sim.run s (Array.init 2 (fun i _ -> body i)));
  Alcotest.(check int) "all acquisitions" 100 (List.length !seq)

let mcs_baseline_allocators () =
  (* The baseline allocators run correctly with MCS locks. *)
  let s = sim ~cpus:4 () in
  let inst =
    instance ~cfg:(Cfg.make ~lock_kind:Cfg.Mcs ()) "hoard" (Rt.simulated s)
  in
  let body tid =
    let rng = Prng.create tid in
    let addrs = Array.init 200 (fun _ -> Mm_mem.Alloc_intf.instance_malloc inst (Prng.int_in rng 8 100)) in
    Array.iter (Mm_mem.Alloc_intf.instance_free inst) addrs
  in
  ignore (Sim.run s (Array.init 4 (fun i _ -> body i)));
  Mm_mem.Alloc_intf.instance_check inst

let ticket_fairness () =
  (* Ticket locks grant in FIFO order: with two threads alternating,
     neither can starve. Record the acquisition sequence and check no
     thread acquires 3+ times in a row while the other is waiting. *)
  let s = sim ~cpus:2 () in
  let lock = Locks_s.create s Cfg.Ticket in
  let seq = ref [] in
  let body tid =
    for _ = 1 to 50 do
      Locks_s.acquire lock;
      seq := tid :: !seq;
      Sim_rt.work s 100;
      Locks_s.release lock
    done
  in
  ignore (Sim.run s (Array.init 2 (fun i _ -> body i)));
  let rec max_streak best cur last = function
    | [] -> best
    | x :: tl ->
        let cur = if x = last then cur + 1 else 1 in
        max_streak (max best cur) cur x tl
  in
  let streak = max_streak 0 0 (-1) (List.rev !seq) in
  Alcotest.(check bool)
    (Printf.sprintf "fair interleaving (max streak %d)" streak)
    true (streak <= 3)

let holder_label_emitted () =
  let hits = ref 0 in
  let on_label ~tid:_ l =
    if l = Locks.holder_label then incr hits;
    Sim.Continue
  in
  let s = sim ~cpus:1 ~on_label () in
  let lock = Locks_s.create s Cfg.Tas_backoff in
  ignore
    (Sim.run s
       [|
         (fun _ ->
           Locks_s.acquire lock;
           Locks_s.release lock);
       |]);
  Alcotest.(check int) "holder label once per acquisition" 1 !hits

let preempted_holder_progress () =
  (* A preempted holder on an oversubscribed CPU must eventually run
     again (spinners yield), so the system finishes. *)
  let s = sim ~cpus:1 ~max_cycles:5_000_000_000 () in
  let lock = Locks_s.create s Cfg.Tas_backoff in
  let body _ =
    for _ = 1 to 20 do
      Locks_s.with_lock lock (fun () -> Sim_rt.work s 200_000)
    done
  in
  ignore (Sim.run s (Array.make 3 body))

let cases =
  List.concat_map
    (fun (name, kind) ->
      [
        case ("mutual exclusion (sim x6) " ^ name) (mutual_exclusion kind);
        case ("mutual exclusion (real) " ^ name) (mutual_exclusion_real kind);
        case ("try_acquire " ^ name) (try_acquire_semantics kind);
        case ("counters " ^ name) (counters kind);
      ])
    kinds
  @ [
      case "contention counted" contention_counted;
      case "ticket fairness" ticket_fairness;
      case "mcs fifo completion" mcs_fifo_fairness;
      case "mcs-locked baseline allocator" mcs_baseline_allocators;
      case "holder label" holder_label_emitted;
      case "preempted holder progress" preempted_holder_progress;
    ]
