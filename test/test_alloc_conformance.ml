(* Allocator conformance suite.

   Every behaviour here is required of every registered allocator (the
   lock-free allocator, its cached frontend, the three lock-based
   baselines and the Blelloch–Wei constant-time baseline), on both the
   real and the simulated runtime — 12 combinations, one alcotest case
   per (behaviour, combination). *)

open Mm_runtime
module I = Mm_mem.Alloc_intf
module Store = Mm_mem.Store
module Space = Mm_mem.Space
module Sc = Mm_mem.Size_class
module Cfg = Mm_mem.Alloc_config
open Util

type env = {
  inst : I.instance;
  run : (int -> unit) array -> unit;  (* parallel run on the matching rt *)
  is_sim : bool;
}

let with_env ?(cfg = Cfg.make ~nheaps:4 ()) name kind f =
  match kind with
  | `Real ->
      f
        {
          inst = instance ~cfg name Rt.real;
          run = (fun bodies -> ignore (Rt.parallel_run Rt.real bodies));
          is_sim = false;
        }
  | `Sim ->
      let s = sim ~cpus:4 () in
      f
        {
          inst = instance ~cfg name (Rt.simulated s);
          run = (fun bodies -> ignore (Sim.run s bodies));
          is_sim = true;
        }

let malloc e = I.instance_malloc e.inst
let free e = I.instance_free e.inst
let check e = I.instance_check e.inst

(* ---------------- behaviours ---------------- *)

let distinct_addresses e =
  let addrs =
    Array.init 300 (fun i -> malloc e (1 + (i mod 97)))
  in
  let sorted = List.sort_uniq compare (Array.to_list addrs) in
  Alcotest.(check int) "all distinct" 300 (List.length sorted);
  Array.iter
    (fun a -> Alcotest.(check int) "8-aligned payload" 0 (a mod 8))
    addrs;
  Array.iter (free e) addrs;
  check e

let malloc_zero e =
  let a = malloc e 0 and b = malloc e 0 in
  Alcotest.(check bool) "valid distinct" true (a <> b && a <> 0 && b <> 0);
  free e a;
  free e b;
  check e

let payload_integrity e =
  let n = 200 in
  let addrs = Array.init n (fun i -> malloc e (8 + (8 * (i mod 30)))) in
  Array.iteri (fun i a -> I.instance_write_word e.inst a (i * 1_000_003)) addrs;
  (* Free every third block, then re-check the remaining payloads. *)
  Array.iteri (fun i a -> if i mod 3 = 0 then free e a) addrs;
  Array.iteri
    (fun i a ->
      if i mod 3 <> 0 then
        Alcotest.(check int) "payload survives other frees" (i * 1_000_003)
          (I.instance_read_word e.inst a))
    addrs;
  Array.iteri (fun i a -> if i mod 3 <> 0 then free e a) addrs;
  check e

let memory_reused e =
  (* A malloc/free loop must not keep consuming address space. *)
  for _ = 1 to 5_000 do
    free e (malloc e 24)
  done;
  let s = I.instance_space e.inst in
  Alcotest.(check bool)
    (Printf.sprintf "peak %d bounded" s.Space.mapped_peak)
    true
    (s.Space.mapped_peak <= 64 * (Cfg.make ()).Cfg.sbsize);
  check e

let large_blocks e =
  let threshold = 2040 in
  let sizes = [ threshold + 1; 5_000; 100_000; 1 lsl 20 ] in
  let addrs = List.map (fun n -> (n, malloc e n)) sizes in
  List.iter
    (fun (n, a) ->
      I.instance_write_word e.inst a n;
      I.instance_write_word e.inst (a + n - 8) (n * 2))
    addrs;
  List.iter
    (fun (n, a) ->
      Alcotest.(check int) "head word" n (I.instance_read_word e.inst a);
      Alcotest.(check int) "tail word" (n * 2)
        (I.instance_read_word e.inst (a + n - 8)))
    addrs;
  let before = (I.instance_os_stats e.inst).Store.munmap_calls in
  List.iter (fun (_, a) -> free e a) addrs;
  let after = (I.instance_os_stats e.inst).Store.munmap_calls in
  Alcotest.(check int) "large blocks munmapped" (before + 4) after;
  check e

let negative_size_rejected e =
  Alcotest.(check bool) "raises" true
    (match malloc e (-1) with
    | _ -> false
    | exception Invalid_argument _ -> true)

let free_null_noop e =
  free e 0;
  check e

let free_orders e =
  let rng = Prng.create 5 in
  List.iter
    (fun order ->
      let addrs = Array.init 500 (fun _ -> malloc e 40) in
      (match order with
      | `Lifo ->
          for i = 499 downto 0 do
            free e addrs.(i)
          done
      | `Fifo -> Array.iter (free e) addrs
      | `Random ->
          Prng.shuffle rng addrs;
          Array.iter (free e) addrs);
      check e)
    [ `Lifo; `Fifo; `Random ]

let whole_superblock_cycle e =
  (* More blocks than one superblock holds: exercises FULL transitions
     and the partial/new-superblock paths of every allocator. *)
  let sc = Sc.make () in
  let count = 3 * Sc.blocks_per_superblock sc 0 in
  let addrs = Array.init count (fun _ -> malloc e 8) in
  let sorted = List.sort_uniq compare (Array.to_list addrs) in
  Alcotest.(check int) "distinct across superblocks" count
    (List.length sorted);
  Array.iter (free e) addrs;
  check e

let all_classes e =
  let sc = Sc.make () in
  let addrs =
    List.init (Sc.count sc) (fun c ->
        let n = Sc.block_size sc c - 8 in
        let a = malloc e n in
        I.instance_write_word e.inst a n;
        (n, a))
  in
  List.iter
    (fun (n, a) ->
      Alcotest.(check int) "class payload" n (I.instance_read_word e.inst a))
    addrs;
  List.iter (fun (_, a) -> free e a) addrs;
  check e

let cross_thread_free e =
  (* Producer-consumer in miniature: thread 0 allocates, thread 1
     frees. *)
  let n = 300 in
  let handoff = Array.make n 0 in
  let ready = Rt.Atomic.make (I.instance_rt e.inst) 0 in
  e.run
    [|
      (fun _ ->
        for i = 0 to n - 1 do
          handoff.(i) <- malloc e 16
        done;
        Rt.Atomic.set ready 1);
      (fun _ ->
        while Rt.Atomic.get ready = 0 do
          Rt.yield (I.instance_rt e.inst)
        done;
        for i = 0 to n - 1 do
          free e handoff.(i)
        done);
    |];
  check e

let concurrent_stress e =
  let body tid =
    let rng = Prng.create (tid + 99) in
    let slots = Array.make 32 0 in
    for _ = 1 to 600 do
      let s = Prng.int rng 32 in
      if slots.(s) <> 0 then begin
        free e slots.(s);
        slots.(s) <- 0
      end
      else slots.(s) <- malloc e (Prng.int_in rng 1 300)
    done;
    Array.iter (fun a -> if a <> 0 then free e a) slots
  in
  e.run (Array.init 4 (fun i _ -> body i));
  check e

let stats_sane e =
  let a = malloc e 100 in
  let s = I.instance_space e.inst in
  let os = I.instance_os_stats e.inst in
  Alcotest.(check bool) "mapped positive" true (s.Space.mapped > 0);
  Alcotest.(check bool) "peak >= current" true
    (s.Space.mapped_peak >= s.Space.mapped);
  Alcotest.(check bool) "superblock allocated" true (os.Store.sb_allocs >= 1);
  free e a

let behaviours =
  [
    ("distinct addresses", distinct_addresses);
    ("malloc 0", malloc_zero);
    ("payload integrity", payload_integrity);
    ("memory reused", memory_reused);
    ("large blocks", large_blocks);
    ("negative size rejected", negative_size_rejected);
    ("free null noop", free_null_noop);
    ("free orders", free_orders);
    ("whole superblock cycle", whole_superblock_cycle);
    ("all size classes", all_classes);
    ("cross-thread free", cross_thread_free);
    ("concurrent stress", concurrent_stress);
    ("stats sane", stats_sane);
  ]

let cases =
  List.concat_map
    (fun name ->
      List.concat_map
        (fun (kind, klabel) ->
          List.map
            (fun (bname, b) ->
              case
                (Printf.sprintf "%s/%s/%s" name klabel bname)
                (fun () -> with_env name kind b))
            behaviours)
        [ (`Real, "real"); (`Sim, "sim") ])
    all_allocators
