(* mm-lint checked: every rule fires on its planted fixture, the real
   tree is clean (modulo the documented suppressions), and deleting
   any Rt.label line from the lock-free sections is caught — by R1 when
   the label guards a CAS window, by R5's unused-entry check otherwise.

   The tests run against the _build source mirror: dune copies every
   library source there because the test links every library, so the
   linted tree is exactly the one being compiled. *)

module D = Mm_lint.Driver
module F = Mm_lint.Finding
module R = Mm_lint.Rule
module Src = Mm_lint.Source
open Util

(* cwd is _build/default/test; its parent holds lib/ and test/. Falls
   back to dune-project for runs from the real root. *)
let tree_root () =
  let is_dir p = Sys.file_exists p && Sys.is_directory p in
  let looks_like_root dir =
    Sys.file_exists (Filename.concat dir "dune-project")
    || (is_dir (Filename.concat dir "lib")
       && is_dir (Filename.concat dir "test"))
  in
  let rec up dir =
    if looks_like_root dir then dir
    else
      let parent = Filename.dirname dir in
      if parent = dir then Alcotest.fail "cannot locate the source tree"
      else up parent
  in
  up (Sys.getcwd ())

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec at i = i + n <= m && (String.sub s i n = sub || at (i + 1)) in
  n = 0 || at 0

let count rule file r =
  List.length
    (List.filter
       (fun f -> f.F.rule = rule && f.F.file = file)
       r.D.findings)

let fixtures_flagged () =
  let root = Filename.concat (tree_root ()) "test/lint_fixtures" in
  let r = D.run ~root ~paths:[ "lib" ] in
  Alcotest.(check (list (pair string string))) "no errors" [] r.D.errors;
  Alcotest.(check int) "R1 fixture" 1
    (count R.Unlabelled_cas_window "lib/core/bad_cas_window.ml" r);
  Alcotest.(check int) "R1 fixture (pages)" 1
    (count R.Unlabelled_cas_window "lib/pages/bad_buddy_cas.ml" r);
  Alcotest.(check int) "R2 fixture" 5
    (count R.Raw_primitive "lib/core/bad_raw_mutex.ml" r);
  Alcotest.(check int) "R3 fixture" 2
    (count R.Blocking_in_lockfree "lib/core/bad_blocking.ml" r);
  Alcotest.(check int) "R4 fixture: both failure shapes" 2
    (count R.Hp_protect "lib/core/bad_hp_deref.ml" r);
  Alcotest.(check int) "R5 fixture: literal label" 1
    (count R.Label_registry "lib/core/bad_literal_label.ml" r);
  Alcotest.(check int) "R5 fixture: dup + orphan + unlisted" 3
    (count R.Label_registry "lib/core/labels.ml" r);
  (* the clean fixtures stay clean *)
  List.iter
    (fun file ->
      List.iter
        (fun rule ->
          Alcotest.(check int) ("clean " ^ file) 0 (count rule file r))
        R.all)
    [ "lib/core/good_labelled.ml"; "lib/lockfree/good_ring.ml";
      "lib/lockfree/lf_labels.ml"; "lib/pages/pg_labels.ml" ];
  (* the fixture suppression moved its finding to the suppressed list *)
  Alcotest.(check int) "suppressed count" 1 (List.length r.D.suppressed);
  match r.D.suppressed with
  | [ f ] ->
      Alcotest.(check string) "suppressed file" "lib/core/good_labelled.ml"
        f.F.file;
      Alcotest.(check string) "suppressed rule" "unlabelled-cas-window"
        (R.name f.F.rule)
  | _ -> Alcotest.fail "expected exactly one suppressed finding"

let unknown_suppression_rule_is_error () =
  match
    Src.parse ~path:"lib/core/x.ml"
      "(* mm-lint: allow hp-protekt: typo *)\nlet x = 1\n"
  with
  | Error e -> Alcotest.failf "fixture did not parse: %s" e
  | Ok src -> (
      Alcotest.(check int) "no suppression accepted" 0
        (List.length src.Src.suppressions);
      match src.Src.bad_suppressions with
      | [ (1, "hp-protekt") ] -> ()
      | _ -> Alcotest.fail "typoed rule token was not flagged")

let real_tree_clean () =
  let r = D.run ~root:(tree_root ()) ~paths:[ "lib" ] in
  Alcotest.(check (list (pair string string))) "no errors" [] r.D.errors;
  List.iter
    (fun f ->
      Alcotest.failf "real tree finding: %s" (Format.asprintf "%a" F.pp f))
    r.D.findings;
  (* exactly the documented suppressions (space.ml bump_peak,
     desc_pool.ml available, and the obs ring's host-side cursor —
     four references inside one module item, DESIGN.md §12) *)
  Alcotest.(check (list (pair string string)))
    "documented suppressions"
    [
      ("lib/core/desc_pool.ml", "hp-protect");
      ("lib/mem/space.ml", "unlabelled-cas-window");
      ("lib/obs/ring.ml", "raw-primitive");
      ("lib/obs/ring.ml", "raw-primitive");
      ("lib/obs/ring.ml", "raw-primitive");
      ("lib/obs/ring.ml", "raw-primitive");
    ]
    (List.sort compare
       (List.map (fun f -> (f.F.file, R.name f.F.rule)) r.D.suppressed))

(* Deleting any Rt.label line must be caught — by R1 when the label
   guards a CAS window, by R5's unused-entry check otherwise. Sole
   known-undetectable site: the desc_alloc label of the pool's tagged
   alloc variant — its item has no CAS of its own (the window lives
   inside Tis.pop) and the registry entry stays used by the hazard
   variant, so neither R1 nor R5 can see that deletion. The test
   asserts the undetected set is exactly that one line. *)
let label_deletion_detected () =
  let root = tree_root () in
  let files =
    D.collect ~root [ "lib/core"; "lib/lockfree"; "lib/mem"; "lib/pages" ]
  in
  let sources, errs = D.load ~root files in
  Alcotest.(check (list (pair string string))) "sources load" [] errs;
  let deletions = ref 0 and undetected = ref [] in
  List.iter
    (fun (src : Src.t) ->
      let lines = String.split_on_char '\n' src.Src.text in
      List.iteri
        (fun i line ->
          if contains ~sub:"Rt.label" line then begin
            incr deletions;
            let text' =
              String.concat "\n"
                (List.filteri (fun j _ -> j <> i) lines)
            in
            match Src.parse ~path:src.Src.path text' with
            | Error e ->
                Alcotest.failf "%s minus line %d no longer parses: %s"
                  src.Src.path (i + 1) e
            | Ok src' ->
                let tree =
                  List.map
                    (fun (s : Src.t) ->
                      if s.Src.path = src.Src.path then src' else s)
                    sources
                in
                let r = D.lint_sources tree in
                if r.D.findings = [] then
                  undetected :=
                    (src.Src.path, String.trim line) :: !undetected
          end)
        lines)
    sources;
  (* the walk actually exercised the instrumentation points *)
  Alcotest.(check bool) "saw many label sites" true (!deletions > 20);
  match !undetected with
  | [ (file, line) ]
    when Filename.basename file = "desc_pool.ml"
         && contains ~sub:"Labels.desc_alloc" line ->
      ()
  | [] ->
      Alcotest.fail
        "expected the tagged-variant desc_alloc deletion to be \
         undetectable; the known blind spot moved"
  | l ->
      Alcotest.failf "undetected label deletions: %s"
        (String.concat "; "
           (List.map (fun (f, ln) -> f ^ ": " ^ ln) l))

let cases =
  [
    case "fixtures: every rule fires where planted" fixtures_flagged;
    case "unknown suppression rule is an error" unknown_suppression_rule_is_error;
    case "real tree is lint-clean" real_tree_clean;
    case "deleting any Rt.label is detected" label_deletion_detected;
  ]
