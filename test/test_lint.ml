(* mm-lint checked: every rule fires on its planted fixture, the real
   tree is clean (modulo the documented suppressions), and deleting
   any Rt.label line from the lock-free sections is caught — by R1 when
   the label guards a CAS window, by R5's unused-entry check otherwise.

   The tests run against the _build source mirror: dune copies every
   library source there because the test links every library, so the
   linted tree is exactly the one being compiled. *)

module D = Mm_lint.Driver
module F = Mm_report.Finding
module R = Mm_lint.Rule
module Src = Mm_lint.Source
open Util

(* cwd is _build/default/test; its parent holds lib/ and test/. Falls
   back to dune-project for runs from the real root. *)
let tree_root () =
  let is_dir p = Sys.file_exists p && Sys.is_directory p in
  let looks_like_root dir =
    Sys.file_exists (Filename.concat dir "dune-project")
    || (is_dir (Filename.concat dir "lib")
       && is_dir (Filename.concat dir "test"))
  in
  let rec up dir =
    if looks_like_root dir then dir
    else
      let parent = Filename.dirname dir in
      if parent = dir then Alcotest.fail "cannot locate the source tree"
      else up parent
  in
  up (Sys.getcwd ())

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec at i = i + n <= m && (String.sub s i n = sub || at (i + 1)) in
  n = 0 || at 0

let count rule file r =
  List.length
    (List.filter
       (fun (f : F.t) -> f.F.rule = R.name rule && f.F.file = file)
       r.D.findings)

let fixtures_flagged () =
  let root = Filename.concat (tree_root ()) "test/lint_fixtures" in
  let r = D.run ~root ~paths:[ "lib" ] in
  Alcotest.(check (list (pair string string))) "no errors" [] r.D.errors;
  Alcotest.(check int) "R1 fixture" 1
    (count R.Unlabelled_cas_window "lib/core/bad_cas_window.ml" r);
  Alcotest.(check int) "R1 fixture (pages)" 1
    (count R.Unlabelled_cas_window "lib/pages/bad_buddy_cas.ml" r);
  Alcotest.(check int) "R2 fixture" 5
    (count R.Raw_primitive "lib/core/bad_raw_mutex.ml" r);
  Alcotest.(check int) "R3 fixture" 2
    (count R.Blocking_in_lockfree "lib/core/bad_blocking.ml" r);
  Alcotest.(check int) "R4 fixture: both failure shapes" 2
    (count R.Hp_protect "lib/core/bad_hp_deref.ml" r);
  Alcotest.(check int) "R5 fixture: literal label" 1
    (count R.Label_registry "lib/core/bad_literal_label.ml" r);
  Alcotest.(check int) "R5 fixture: dup + orphan + unlisted" 3
    (count R.Label_registry "lib/core/labels.ml" r);
  Alcotest.(check int) "R6 fixture: facilities + hooked create" 3
    (count R.Sim_capability "lib/harness/bad_sim_hook.ml" r);
  (* the clean fixtures stay clean *)
  List.iter
    (fun file ->
      List.iter
        (fun rule ->
          Alcotest.(check int) ("clean " ^ file) 0 (count rule file r))
        R.all)
    [ "lib/core/good_labelled.ml"; "lib/lockfree/good_ring.ml";
      "lib/lockfree/lf_labels.ml"; "lib/pages/pg_labels.ml" ];
  (* the fixture suppression moved its finding to the suppressed list *)
  Alcotest.(check int) "suppressed count" 1 (List.length r.D.suppressed);
  match r.D.suppressed with
  | [ f ] ->
      Alcotest.(check string) "suppressed file" "lib/core/good_labelled.ml"
        f.F.file;
      Alcotest.(check string) "suppressed rule" "unlabelled-cas-window"
        f.F.rule
  | _ -> Alcotest.fail "expected exactly one suppressed finding"

let unknown_suppression_rule_is_error () =
  match
    Src.parse ~path:"lib/core/x.ml"
      "(* mm-lint: allow hp-protekt: typo *)\nlet x = 1\n"
  with
  | Error e -> Alcotest.failf "fixture did not parse: %s" e
  | Ok src -> (
      Alcotest.(check int) "no suppression accepted" 0
        (List.length src.Src.suppressions);
      match src.Src.bad_suppressions with
      | [ (1, "hp-protekt") ] -> ()
      | _ -> Alcotest.fail "typoed rule token was not flagged")

let real_tree_clean () =
  let r = D.run ~root:(tree_root ()) ~paths:[ "lib" ] in
  Alcotest.(check (list (pair string string))) "no errors" [] r.D.errors;
  List.iter
    (fun f ->
      Alcotest.failf "real tree finding: %s" (Format.asprintf "%a" F.pp f))
    r.D.findings;
  (* exactly the documented suppressions (space.ml bump_peak,
     desc_pool.ml available, and the obs ring's host-side cursor —
     four references inside one module item, DESIGN.md §12) *)
  Alcotest.(check (list (pair string string)))
    "documented suppressions"
    [
      ("lib/core/desc_pool.ml", "hp-protect");
      ("lib/mem/space.ml", "unlabelled-cas-window");
      ("lib/obs/ring.ml", "raw-primitive");
      ("lib/obs/ring.ml", "raw-primitive");
      ("lib/obs/ring.ml", "raw-primitive");
      ("lib/obs/ring.ml", "raw-primitive");
    ]
    (List.sort compare
       (List.map (fun (f : F.t) -> (f.F.file, f.F.rule)) r.D.suppressed))

(* Deleting any Rt.label line must be caught by lint ∪ sa: by R1 when
   the label guards a syntactically visible CAS window, by R5's
   unused-entry check otherwise — and, where the window lives behind a
   parameterized call so no syntactic rule can see it, by mm-sa's
   label-dominance analysis. The pool's tagged-variant desc_alloc
   label is exactly that case (PR 2 documented it as the sole
   undetectable site): its item has no CAS of its own (the window is
   inside Tis.pop) and the registry entry stays used by the hazard
   variant. mm-sa's interprocedural demand on Tis.pop now closes that
   blind spot, so the undetected set must be empty — and the
   lint-blind-but-sa-caught set must be exactly that one line, the
   regression guard for the closure. *)
let label_deletion_detected () =
  let root = tree_root () in
  let sa_root = Test_sa.repo_root () in
  let files =
    D.collect ~root [ "lib/core"; "lib/lockfree"; "lib/mem"; "lib/pages" ]
  in
  let sources, errs = D.load ~root files in
  Alcotest.(check (list (pair string string))) "sources load" [] errs;
  (* .cmt loads are cached once; each sa probe re-typechecks only the
     modified unit against the compiled interfaces *)
  let sa_units, sa_errs =
    Mm_sa.Driver.load ~root:sa_root
      (Mm_sa.Driver.collect ~root:sa_root Mm_sa.Driver.default_paths)
  in
  Alcotest.(check (list (pair string string))) "units load" [] sa_errs;
  let sa_detects path text' =
    match Mm_sa.Tast.typecheck ~root:sa_root ~path text' with
    | Error e -> Alcotest.failf "%s no longer typechecks: %s" path e
    | Ok u' ->
        let units =
          List.map
            (fun (u : Mm_sa.Tast.unit_t) ->
              if u.Mm_sa.Tast.u_path = path then u' else u)
            sa_units
        in
        (Mm_sa.Driver.analyze_units units).Mm_sa.Driver.findings <> []
  in
  let deletions = ref 0 and undetected = ref [] and sa_only = ref [] in
  List.iter
    (fun (src : Src.t) ->
      let lines = String.split_on_char '\n' src.Src.text in
      List.iteri
        (fun i line ->
          if contains ~sub:"Rt.label" line then begin
            incr deletions;
            let text' =
              String.concat "\n"
                (List.filteri (fun j _ -> j <> i) lines)
            in
            match Src.parse ~path:src.Src.path text' with
            | Error e ->
                Alcotest.failf "%s minus line %d no longer parses: %s"
                  src.Src.path (i + 1) e
            | Ok src' ->
                let tree =
                  List.map
                    (fun (s : Src.t) ->
                      if s.Src.path = src.Src.path then src' else s)
                    sources
                in
                let r = D.lint_sources tree in
                if r.D.findings = [] then
                  if sa_detects src.Src.path text' then
                    sa_only := (src.Src.path, String.trim line) :: !sa_only
                  else
                    undetected :=
                      (src.Src.path, String.trim line) :: !undetected
          end)
        lines)
    sources;
  (* the walk actually exercised the instrumentation points *)
  Alcotest.(check bool) "saw many label sites" true (!deletions > 20);
  Alcotest.(check (list (pair string string)))
    "every label deletion is detected by lint or sa" []
    (List.rev !undetected);
  match !sa_only with
  | [ (file, line) ]
    when Filename.basename file = "desc_pool.ml"
         && contains ~sub:"Labels.desc_alloc" line ->
      ()
  | l ->
      Alcotest.failf
        "expected exactly the tagged-variant desc_alloc deletion to need \
         mm-sa; got: %s"
        (String.concat "; "
           (List.map (fun (f, ln) -> f ^ ": " ^ ln) l))

let cases =
  [
    case "fixtures: every rule fires where planted" fixtures_flagged;
    case "unknown suppression rule is an error" unknown_suppression_rule_is_error;
    case "real tree is lint-clean" real_tree_clean;
    case "deleting any Rt.label is detected" label_deletion_detected;
  ]
